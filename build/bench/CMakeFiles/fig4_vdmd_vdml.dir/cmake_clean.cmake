file(REMOVE_RECURSE
  "CMakeFiles/fig4_vdmd_vdml.dir/fig4_vdmd_vdml.cpp.o"
  "CMakeFiles/fig4_vdmd_vdml.dir/fig4_vdmd_vdml.cpp.o.d"
  "fig4_vdmd_vdml"
  "fig4_vdmd_vdml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vdmd_vdml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
