# Empty compiler generated dependencies file for fig4_vdmd_vdml.
# This may be replaced when dependencies are built.
