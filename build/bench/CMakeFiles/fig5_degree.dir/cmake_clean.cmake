file(REMOVE_RECURSE
  "CMakeFiles/fig5_degree.dir/fig5_degree.cpp.o"
  "CMakeFiles/fig5_degree.dir/fig5_degree.cpp.o.d"
  "fig5_degree"
  "fig5_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
