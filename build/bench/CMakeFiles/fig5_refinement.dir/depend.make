# Empty dependencies file for fig5_refinement.
# This may be replaced when dependencies are built.
