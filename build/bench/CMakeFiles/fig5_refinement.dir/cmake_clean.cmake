file(REMOVE_RECURSE
  "CMakeFiles/fig5_refinement.dir/fig5_refinement.cpp.o"
  "CMakeFiles/fig5_refinement.dir/fig5_refinement.cpp.o.d"
  "fig5_refinement"
  "fig5_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
