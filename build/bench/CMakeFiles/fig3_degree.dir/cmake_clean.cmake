file(REMOVE_RECURSE
  "CMakeFiles/fig3_degree.dir/fig3_degree.cpp.o"
  "CMakeFiles/fig3_degree.dir/fig3_degree.cpp.o.d"
  "fig3_degree"
  "fig3_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
