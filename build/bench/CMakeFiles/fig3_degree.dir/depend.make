# Empty dependencies file for fig3_degree.
# This may be replaced when dependencies are built.
