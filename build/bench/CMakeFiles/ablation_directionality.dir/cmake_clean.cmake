file(REMOVE_RECURSE
  "CMakeFiles/ablation_directionality.dir/ablation_directionality.cpp.o"
  "CMakeFiles/ablation_directionality.dir/ablation_directionality.cpp.o.d"
  "ablation_directionality"
  "ablation_directionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_directionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
