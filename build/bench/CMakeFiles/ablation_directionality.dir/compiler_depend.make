# Empty compiler generated dependencies file for ablation_directionality.
# This may be replaced when dependencies are built.
