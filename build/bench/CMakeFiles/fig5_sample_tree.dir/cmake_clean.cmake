file(REMOVE_RECURSE
  "CMakeFiles/fig5_sample_tree.dir/fig5_sample_tree.cpp.o"
  "CMakeFiles/fig5_sample_tree.dir/fig5_sample_tree.cpp.o.d"
  "fig5_sample_tree"
  "fig5_sample_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sample_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
