# Empty compiler generated dependencies file for fig5_sample_tree.
# This may be replaced when dependencies are built.
