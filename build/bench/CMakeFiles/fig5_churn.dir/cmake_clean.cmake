file(REMOVE_RECURSE
  "CMakeFiles/fig5_churn.dir/fig5_churn.cpp.o"
  "CMakeFiles/fig5_churn.dir/fig5_churn.cpp.o.d"
  "fig5_churn"
  "fig5_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
