# Empty dependencies file for fig5_churn.
# This may be replaced when dependencies are built.
