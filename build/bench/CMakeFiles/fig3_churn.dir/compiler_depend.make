# Empty compiler generated dependencies file for fig3_churn.
# This may be replaced when dependencies are built.
