# Empty dependencies file for fig3_nodes.
# This may be replaced when dependencies are built.
