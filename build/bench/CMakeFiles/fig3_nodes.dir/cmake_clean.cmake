file(REMOVE_RECURSE
  "CMakeFiles/fig3_nodes.dir/fig3_nodes.cpp.o"
  "CMakeFiles/fig3_nodes.dir/fig3_nodes.cpp.o.d"
  "fig3_nodes"
  "fig3_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
