file(REMOVE_RECURSE
  "CMakeFiles/fig5_mst_ratio.dir/fig5_mst_ratio.cpp.o"
  "CMakeFiles/fig5_mst_ratio.dir/fig5_mst_ratio.cpp.o.d"
  "fig5_mst_ratio"
  "fig5_mst_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mst_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
