# Empty dependencies file for fig5_mst_ratio.
# This may be replaced when dependencies are built.
