# Empty compiler generated dependencies file for vdmsim.
# This may be replaced when dependencies are built.
