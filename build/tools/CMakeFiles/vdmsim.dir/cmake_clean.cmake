file(REMOVE_RECURSE
  "CMakeFiles/vdmsim.dir/vdmsim.cpp.o"
  "CMakeFiles/vdmsim.dir/vdmsim.cpp.o.d"
  "vdmsim"
  "vdmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
