# Empty dependencies file for vdm_util.
# This may be replaced when dependencies are built.
