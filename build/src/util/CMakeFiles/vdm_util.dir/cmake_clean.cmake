file(REMOVE_RECURSE
  "CMakeFiles/vdm_util.dir/flags.cpp.o"
  "CMakeFiles/vdm_util.dir/flags.cpp.o.d"
  "CMakeFiles/vdm_util.dir/log.cpp.o"
  "CMakeFiles/vdm_util.dir/log.cpp.o.d"
  "CMakeFiles/vdm_util.dir/rng.cpp.o"
  "CMakeFiles/vdm_util.dir/rng.cpp.o.d"
  "CMakeFiles/vdm_util.dir/stats.cpp.o"
  "CMakeFiles/vdm_util.dir/stats.cpp.o.d"
  "CMakeFiles/vdm_util.dir/table.cpp.o"
  "CMakeFiles/vdm_util.dir/table.cpp.o.d"
  "libvdm_util.a"
  "libvdm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
