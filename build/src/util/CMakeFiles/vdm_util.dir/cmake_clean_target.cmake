file(REMOVE_RECURSE
  "libvdm_util.a"
)
