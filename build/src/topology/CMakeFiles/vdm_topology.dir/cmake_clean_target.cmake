file(REMOVE_RECURSE
  "libvdm_topology.a"
)
