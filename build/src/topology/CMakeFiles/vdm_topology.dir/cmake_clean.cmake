file(REMOVE_RECURSE
  "CMakeFiles/vdm_topology.dir/geo.cpp.o"
  "CMakeFiles/vdm_topology.dir/geo.cpp.o.d"
  "CMakeFiles/vdm_topology.dir/mst.cpp.o"
  "CMakeFiles/vdm_topology.dir/mst.cpp.o.d"
  "CMakeFiles/vdm_topology.dir/simple.cpp.o"
  "CMakeFiles/vdm_topology.dir/simple.cpp.o.d"
  "CMakeFiles/vdm_topology.dir/transit_stub.cpp.o"
  "CMakeFiles/vdm_topology.dir/transit_stub.cpp.o.d"
  "CMakeFiles/vdm_topology.dir/waxman.cpp.o"
  "CMakeFiles/vdm_topology.dir/waxman.cpp.o.d"
  "libvdm_topology.a"
  "libvdm_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
