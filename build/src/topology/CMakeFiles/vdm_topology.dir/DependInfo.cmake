
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/geo.cpp" "src/topology/CMakeFiles/vdm_topology.dir/geo.cpp.o" "gcc" "src/topology/CMakeFiles/vdm_topology.dir/geo.cpp.o.d"
  "/root/repo/src/topology/mst.cpp" "src/topology/CMakeFiles/vdm_topology.dir/mst.cpp.o" "gcc" "src/topology/CMakeFiles/vdm_topology.dir/mst.cpp.o.d"
  "/root/repo/src/topology/simple.cpp" "src/topology/CMakeFiles/vdm_topology.dir/simple.cpp.o" "gcc" "src/topology/CMakeFiles/vdm_topology.dir/simple.cpp.o.d"
  "/root/repo/src/topology/transit_stub.cpp" "src/topology/CMakeFiles/vdm_topology.dir/transit_stub.cpp.o" "gcc" "src/topology/CMakeFiles/vdm_topology.dir/transit_stub.cpp.o.d"
  "/root/repo/src/topology/waxman.cpp" "src/topology/CMakeFiles/vdm_topology.dir/waxman.cpp.o" "gcc" "src/topology/CMakeFiles/vdm_topology.dir/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
