# Empty dependencies file for vdm_topology.
# This may be replaced when dependencies are built.
