file(REMOVE_RECURSE
  "CMakeFiles/vdm_overlay.dir/membership.cpp.o"
  "CMakeFiles/vdm_overlay.dir/membership.cpp.o.d"
  "CMakeFiles/vdm_overlay.dir/metric.cpp.o"
  "CMakeFiles/vdm_overlay.dir/metric.cpp.o.d"
  "CMakeFiles/vdm_overlay.dir/scenario.cpp.o"
  "CMakeFiles/vdm_overlay.dir/scenario.cpp.o.d"
  "CMakeFiles/vdm_overlay.dir/session.cpp.o"
  "CMakeFiles/vdm_overlay.dir/session.cpp.o.d"
  "libvdm_overlay.a"
  "libvdm_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
