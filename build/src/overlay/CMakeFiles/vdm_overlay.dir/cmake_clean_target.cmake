file(REMOVE_RECURSE
  "libvdm_overlay.a"
)
