
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/membership.cpp" "src/overlay/CMakeFiles/vdm_overlay.dir/membership.cpp.o" "gcc" "src/overlay/CMakeFiles/vdm_overlay.dir/membership.cpp.o.d"
  "/root/repo/src/overlay/metric.cpp" "src/overlay/CMakeFiles/vdm_overlay.dir/metric.cpp.o" "gcc" "src/overlay/CMakeFiles/vdm_overlay.dir/metric.cpp.o.d"
  "/root/repo/src/overlay/scenario.cpp" "src/overlay/CMakeFiles/vdm_overlay.dir/scenario.cpp.o" "gcc" "src/overlay/CMakeFiles/vdm_overlay.dir/scenario.cpp.o.d"
  "/root/repo/src/overlay/session.cpp" "src/overlay/CMakeFiles/vdm_overlay.dir/session.cpp.o" "gcc" "src/overlay/CMakeFiles/vdm_overlay.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
