# Empty dependencies file for vdm_overlay.
# This may be replaced when dependencies are built.
