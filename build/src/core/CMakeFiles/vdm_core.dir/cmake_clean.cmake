file(REMOVE_RECURSE
  "CMakeFiles/vdm_core.dir/directionality.cpp.o"
  "CMakeFiles/vdm_core.dir/directionality.cpp.o.d"
  "CMakeFiles/vdm_core.dir/vdm_protocol.cpp.o"
  "CMakeFiles/vdm_core.dir/vdm_protocol.cpp.o.d"
  "libvdm_core.a"
  "libvdm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
