# Empty dependencies file for vdm_core.
# This may be replaced when dependencies are built.
