file(REMOVE_RECURSE
  "libvdm_core.a"
)
