file(REMOVE_RECURSE
  "libvdm_baselines.a"
)
