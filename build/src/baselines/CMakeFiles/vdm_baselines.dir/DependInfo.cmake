
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/btp_protocol.cpp" "src/baselines/CMakeFiles/vdm_baselines.dir/btp_protocol.cpp.o" "gcc" "src/baselines/CMakeFiles/vdm_baselines.dir/btp_protocol.cpp.o.d"
  "/root/repo/src/baselines/hmtp_protocol.cpp" "src/baselines/CMakeFiles/vdm_baselines.dir/hmtp_protocol.cpp.o" "gcc" "src/baselines/CMakeFiles/vdm_baselines.dir/hmtp_protocol.cpp.o.d"
  "/root/repo/src/baselines/mst_overlay.cpp" "src/baselines/CMakeFiles/vdm_baselines.dir/mst_overlay.cpp.o" "gcc" "src/baselines/CMakeFiles/vdm_baselines.dir/mst_overlay.cpp.o.d"
  "/root/repo/src/baselines/random_protocol.cpp" "src/baselines/CMakeFiles/vdm_baselines.dir/random_protocol.cpp.o" "gcc" "src/baselines/CMakeFiles/vdm_baselines.dir/random_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/vdm_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/vdm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
