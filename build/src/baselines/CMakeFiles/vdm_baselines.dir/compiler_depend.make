# Empty compiler generated dependencies file for vdm_baselines.
# This may be replaced when dependencies are built.
