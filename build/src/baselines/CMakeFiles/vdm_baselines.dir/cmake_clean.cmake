file(REMOVE_RECURSE
  "CMakeFiles/vdm_baselines.dir/btp_protocol.cpp.o"
  "CMakeFiles/vdm_baselines.dir/btp_protocol.cpp.o.d"
  "CMakeFiles/vdm_baselines.dir/hmtp_protocol.cpp.o"
  "CMakeFiles/vdm_baselines.dir/hmtp_protocol.cpp.o.d"
  "CMakeFiles/vdm_baselines.dir/mst_overlay.cpp.o"
  "CMakeFiles/vdm_baselines.dir/mst_overlay.cpp.o.d"
  "CMakeFiles/vdm_baselines.dir/random_protocol.cpp.o"
  "CMakeFiles/vdm_baselines.dir/random_protocol.cpp.o.d"
  "libvdm_baselines.a"
  "libvdm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
