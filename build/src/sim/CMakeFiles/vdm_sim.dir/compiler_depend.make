# Empty compiler generated dependencies file for vdm_sim.
# This may be replaced when dependencies are built.
