file(REMOVE_RECURSE
  "libvdm_sim.a"
)
