file(REMOVE_RECURSE
  "CMakeFiles/vdm_sim.dir/simulator.cpp.o"
  "CMakeFiles/vdm_sim.dir/simulator.cpp.o.d"
  "libvdm_sim.a"
  "libvdm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
