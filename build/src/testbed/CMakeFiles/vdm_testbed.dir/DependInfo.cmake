
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/controller.cpp" "src/testbed/CMakeFiles/vdm_testbed.dir/controller.cpp.o" "gcc" "src/testbed/CMakeFiles/vdm_testbed.dir/controller.cpp.o.d"
  "/root/repo/src/testbed/dot_export.cpp" "src/testbed/CMakeFiles/vdm_testbed.dir/dot_export.cpp.o" "gcc" "src/testbed/CMakeFiles/vdm_testbed.dir/dot_export.cpp.o.d"
  "/root/repo/src/testbed/node_pool.cpp" "src/testbed/CMakeFiles/vdm_testbed.dir/node_pool.cpp.o" "gcc" "src/testbed/CMakeFiles/vdm_testbed.dir/node_pool.cpp.o.d"
  "/root/repo/src/testbed/report.cpp" "src/testbed/CMakeFiles/vdm_testbed.dir/report.cpp.o" "gcc" "src/testbed/CMakeFiles/vdm_testbed.dir/report.cpp.o.d"
  "/root/repo/src/testbed/scenario_file.cpp" "src/testbed/CMakeFiles/vdm_testbed.dir/scenario_file.cpp.o" "gcc" "src/testbed/CMakeFiles/vdm_testbed.dir/scenario_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/vdm_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vdm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/vdm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vdm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
