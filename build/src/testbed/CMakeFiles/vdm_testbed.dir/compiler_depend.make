# Empty compiler generated dependencies file for vdm_testbed.
# This may be replaced when dependencies are built.
