file(REMOVE_RECURSE
  "libvdm_testbed.a"
)
