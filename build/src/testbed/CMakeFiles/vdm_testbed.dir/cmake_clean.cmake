file(REMOVE_RECURSE
  "CMakeFiles/vdm_testbed.dir/controller.cpp.o"
  "CMakeFiles/vdm_testbed.dir/controller.cpp.o.d"
  "CMakeFiles/vdm_testbed.dir/dot_export.cpp.o"
  "CMakeFiles/vdm_testbed.dir/dot_export.cpp.o.d"
  "CMakeFiles/vdm_testbed.dir/node_pool.cpp.o"
  "CMakeFiles/vdm_testbed.dir/node_pool.cpp.o.d"
  "CMakeFiles/vdm_testbed.dir/report.cpp.o"
  "CMakeFiles/vdm_testbed.dir/report.cpp.o.d"
  "CMakeFiles/vdm_testbed.dir/scenario_file.cpp.o"
  "CMakeFiles/vdm_testbed.dir/scenario_file.cpp.o.d"
  "libvdm_testbed.a"
  "libvdm_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
