file(REMOVE_RECURSE
  "CMakeFiles/vdm_net.dir/graph.cpp.o"
  "CMakeFiles/vdm_net.dir/graph.cpp.o.d"
  "CMakeFiles/vdm_net.dir/graph_underlay.cpp.o"
  "CMakeFiles/vdm_net.dir/graph_underlay.cpp.o.d"
  "CMakeFiles/vdm_net.dir/matrix_underlay.cpp.o"
  "CMakeFiles/vdm_net.dir/matrix_underlay.cpp.o.d"
  "CMakeFiles/vdm_net.dir/routing.cpp.o"
  "CMakeFiles/vdm_net.dir/routing.cpp.o.d"
  "libvdm_net.a"
  "libvdm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
