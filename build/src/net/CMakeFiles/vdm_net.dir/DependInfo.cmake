
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/vdm_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/vdm_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/graph_underlay.cpp" "src/net/CMakeFiles/vdm_net.dir/graph_underlay.cpp.o" "gcc" "src/net/CMakeFiles/vdm_net.dir/graph_underlay.cpp.o.d"
  "/root/repo/src/net/matrix_underlay.cpp" "src/net/CMakeFiles/vdm_net.dir/matrix_underlay.cpp.o" "gcc" "src/net/CMakeFiles/vdm_net.dir/matrix_underlay.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/vdm_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/vdm_net.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vdm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
