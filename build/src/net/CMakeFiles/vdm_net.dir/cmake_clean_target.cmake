file(REMOVE_RECURSE
  "libvdm_net.a"
)
