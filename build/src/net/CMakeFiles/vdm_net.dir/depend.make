# Empty dependencies file for vdm_net.
# This may be replaced when dependencies are built.
