file(REMOVE_RECURSE
  "CMakeFiles/vdm_metrics.dir/collector.cpp.o"
  "CMakeFiles/vdm_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/vdm_metrics.dir/tree_metrics.cpp.o"
  "CMakeFiles/vdm_metrics.dir/tree_metrics.cpp.o.d"
  "libvdm_metrics.a"
  "libvdm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
