# Empty compiler generated dependencies file for vdm_metrics.
# This may be replaced when dependencies are built.
