file(REMOVE_RECURSE
  "libvdm_metrics.a"
)
