# Empty compiler generated dependencies file for vdm_experiments.
# This may be replaced when dependencies are built.
