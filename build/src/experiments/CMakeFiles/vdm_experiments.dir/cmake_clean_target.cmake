file(REMOVE_RECURSE
  "libvdm_experiments.a"
)
