file(REMOVE_RECURSE
  "CMakeFiles/vdm_experiments.dir/runner.cpp.o"
  "CMakeFiles/vdm_experiments.dir/runner.cpp.o.d"
  "libvdm_experiments.a"
  "libvdm_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
