# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_underlay[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_mst[1]_include.cmake")
include("/root/repo/build/tests/test_membership[1]_include.cmake")
include("/root/repo/build/tests/test_directionality[1]_include.cmake")
include("/root/repo/build/tests/test_metric_providers[1]_include.cmake")
include("/root/repo/build/tests/test_vdm_join[1]_include.cmake")
include("/root/repo/build/tests/test_vdm_reconnect[1]_include.cmake")
include("/root/repo/build/tests/test_vdm_refine[1]_include.cmake")
include("/root/repo/build/tests/test_hmtp[1]_include.cmake")
include("/root/repo/build/tests/test_btp[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_tree_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_collector[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
