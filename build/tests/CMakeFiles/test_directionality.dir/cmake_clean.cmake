file(REMOVE_RECURSE
  "CMakeFiles/test_directionality.dir/test_directionality.cpp.o"
  "CMakeFiles/test_directionality.dir/test_directionality.cpp.o.d"
  "test_directionality"
  "test_directionality.pdb"
  "test_directionality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
