# Empty compiler generated dependencies file for test_directionality.
# This may be replaced when dependencies are built.
