file(REMOVE_RECURSE
  "CMakeFiles/test_metric_providers.dir/test_metric_providers.cpp.o"
  "CMakeFiles/test_metric_providers.dir/test_metric_providers.cpp.o.d"
  "test_metric_providers"
  "test_metric_providers.pdb"
  "test_metric_providers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metric_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
