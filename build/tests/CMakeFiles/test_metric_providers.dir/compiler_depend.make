# Empty compiler generated dependencies file for test_metric_providers.
# This may be replaced when dependencies are built.
