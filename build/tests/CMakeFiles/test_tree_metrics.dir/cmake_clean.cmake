file(REMOVE_RECURSE
  "CMakeFiles/test_tree_metrics.dir/test_tree_metrics.cpp.o"
  "CMakeFiles/test_tree_metrics.dir/test_tree_metrics.cpp.o.d"
  "test_tree_metrics"
  "test_tree_metrics.pdb"
  "test_tree_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
