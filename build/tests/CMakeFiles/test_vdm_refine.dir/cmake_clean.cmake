file(REMOVE_RECURSE
  "CMakeFiles/test_vdm_refine.dir/test_vdm_refine.cpp.o"
  "CMakeFiles/test_vdm_refine.dir/test_vdm_refine.cpp.o.d"
  "test_vdm_refine"
  "test_vdm_refine.pdb"
  "test_vdm_refine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vdm_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
