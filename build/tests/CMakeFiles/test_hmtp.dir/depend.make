# Empty dependencies file for test_hmtp.
# This may be replaced when dependencies are built.
