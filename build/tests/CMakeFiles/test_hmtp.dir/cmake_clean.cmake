file(REMOVE_RECURSE
  "CMakeFiles/test_hmtp.dir/test_hmtp.cpp.o"
  "CMakeFiles/test_hmtp.dir/test_hmtp.cpp.o.d"
  "test_hmtp"
  "test_hmtp.pdb"
  "test_hmtp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
