# Empty dependencies file for test_underlay.
# This may be replaced when dependencies are built.
