file(REMOVE_RECURSE
  "CMakeFiles/test_underlay.dir/test_underlay.cpp.o"
  "CMakeFiles/test_underlay.dir/test_underlay.cpp.o.d"
  "test_underlay"
  "test_underlay.pdb"
  "test_underlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_underlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
