file(REMOVE_RECURSE
  "CMakeFiles/test_membership.dir/test_membership.cpp.o"
  "CMakeFiles/test_membership.dir/test_membership.cpp.o.d"
  "test_membership"
  "test_membership.pdb"
  "test_membership[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
