# Empty compiler generated dependencies file for test_membership.
# This may be replaced when dependencies are built.
