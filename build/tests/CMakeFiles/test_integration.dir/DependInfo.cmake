
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/vdm_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/vdm_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vdm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vdm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/vdm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vdm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/vdm_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
