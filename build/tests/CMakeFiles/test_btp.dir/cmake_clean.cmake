file(REMOVE_RECURSE
  "CMakeFiles/test_btp.dir/test_btp.cpp.o"
  "CMakeFiles/test_btp.dir/test_btp.cpp.o.d"
  "test_btp"
  "test_btp.pdb"
  "test_btp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
