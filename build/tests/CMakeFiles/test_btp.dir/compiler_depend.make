# Empty compiler generated dependencies file for test_btp.
# This may be replaced when dependencies are built.
