file(REMOVE_RECURSE
  "CMakeFiles/test_vdm_join.dir/test_vdm_join.cpp.o"
  "CMakeFiles/test_vdm_join.dir/test_vdm_join.cpp.o.d"
  "test_vdm_join"
  "test_vdm_join.pdb"
  "test_vdm_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vdm_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
