# Empty dependencies file for test_vdm_join.
# This may be replaced when dependencies are built.
