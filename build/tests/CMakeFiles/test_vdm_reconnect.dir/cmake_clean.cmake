file(REMOVE_RECURSE
  "CMakeFiles/test_vdm_reconnect.dir/test_vdm_reconnect.cpp.o"
  "CMakeFiles/test_vdm_reconnect.dir/test_vdm_reconnect.cpp.o.d"
  "test_vdm_reconnect"
  "test_vdm_reconnect.pdb"
  "test_vdm_reconnect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vdm_reconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
