# Empty compiler generated dependencies file for test_vdm_reconnect.
# This may be replaced when dependencies are built.
