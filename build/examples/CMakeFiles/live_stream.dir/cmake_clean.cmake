file(REMOVE_RECURSE
  "CMakeFiles/live_stream.dir/live_stream.cpp.o"
  "CMakeFiles/live_stream.dir/live_stream.cpp.o.d"
  "live_stream"
  "live_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
