file(REMOVE_RECURSE
  "CMakeFiles/metric_aware.dir/metric_aware.cpp.o"
  "CMakeFiles/metric_aware.dir/metric_aware.cpp.o.d"
  "metric_aware"
  "metric_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
