# Empty dependencies file for metric_aware.
# This may be replaced when dependencies are built.
