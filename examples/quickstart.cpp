// Quickstart: build a small Internet-like topology, run a VDM multicast
// session with 30 members joining over two minutes, and print the tree and
// its quality metrics.
//
//   ./build/examples/quickstart [--members N] [--seed S]

#include <iostream>

#include "baselines/mst_overlay.hpp"
#include "core/vdm_protocol.hpp"
#include "metrics/tree_metrics.hpp"
#include "overlay/scenario.hpp"
#include "overlay/session.hpp"
#include "sim/simulator.hpp"
#include "topology/transit_stub.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace vdm;

namespace {

void print_tree(const overlay::Membership& tree, net::HostId node,
                const net::Underlay& underlay, net::HostId source, int depth) {
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "host "
            << node;
  if (node == source) {
    std::cout << " (source)";
  } else {
    std::cout << "  rtt-to-parent="
              << util::Table::fmt(1000.0 * underlay.rtt(node, tree.member(node).parent), 1)
              << "ms";
  }
  std::cout << '\n';
  for (const net::HostId c : tree.member(node).children) {
    print_tree(tree, c, underlay, source, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto members = static_cast<std::size_t>(flags.get_int("members", 30));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  // 1. A transit-stub "Internet" with enough end hosts for the session.
  util::Rng rng(seed);
  topo::TransitStubParams tp;  // defaults: 792 routers, GT-ITM style
  topo::HostAttachment hosts;
  hosts.num_hosts = members + 1;  // the members plus the source
  net::GraphUnderlay underlay = topo::make_transit_stub_underlay(tp, hosts, rng);

  // 2. A VDM session: host 0 is the streaming source.
  sim::Simulator simulator;
  core::VdmProtocol vdm;
  overlay::DelayMetric metric;
  overlay::SessionParams sp;
  sp.source = 0;
  overlay::Session session(simulator, underlay, vdm, metric, sp, rng.split(1));
  session.start();

  // 3. Members join at random times over the first two minutes.
  overlay::DegreeSpec degrees = overlay::DegreeSpec::uniform(2, 5);
  for (net::HostId h = 1; h <= members; ++h) {
    const sim::Time at = rng.uniform(0.1, 120.0);
    const int limit = degrees.sample(rng);
    simulator.schedule_at(at, [&session, h, limit] { session.join(h, limit); });
  }
  simulator.run_until(180.0);

  // 4. Inspect the result.
  std::cout << "== VDM overlay tree ==\n";
  print_tree(session.tree(), session.source(), underlay, session.source(), 0);

  const metrics::TreeMetrics m =
      metrics::measure_tree(session.tree(), session.source(), underlay);
  util::Table table({"metric", "value", "optimum"});
  table.add_row({"members", std::to_string(m.members), "-"});
  table.add_row({"stress (avg)", util::Table::fmt(m.stress_avg), "1.0 (IP multicast)"});
  table.add_row({"stretch (avg)", util::Table::fmt(m.stretch_avg), "1.0 (unicast)"});
  table.add_row({"hopcount (avg)", util::Table::fmt(m.hop_avg), "1.0 (star)"});
  table.add_row({"network usage (s)", util::Table::fmt(m.network_usage, 4), "MST cost"});
  table.add_row({"tree/MST cost ratio",
                 util::Table::fmt(baselines::mst_ratio(session.tree(),
                                                       session.source(), underlay)),
                 ">= 1.0"});
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\ncontrol messages: " << session.totals().control_messages
            << ", chunks emitted: " << session.totals().chunks_emitted
            << ", session loss rate: "
            << util::Table::fmt(
                   session.totals().chunks_expected
                       ? 100.0 * (1.0 - static_cast<double>(session.totals().chunks_delivered) /
                                            static_cast<double>(session.totals().chunks_expected))
                       : 0.0,
                   2)
            << "%\n";
  return 0;
}
