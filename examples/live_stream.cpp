// Live-streaming scenario: the workload from the paper's introduction — a
// single source streaming to a churning audience. Runs the same session
// under VDM and under HMTP on one Internet-like topology and reports the
// viewer experience (loss, startup) and the network bill (stress, usage,
// control overhead) side by side.
//
//   ./build/examples/live_stream [--viewers N] [--churn 0.05] [--seed S]

#include <iostream>

#include "baselines/hmtp_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "metrics/collector.hpp"
#include "overlay/scenario.hpp"
#include "topology/transit_stub.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace vdm;

namespace {

struct Outcome {
  double stress, stretch, loss, overhead, usage;
  double startup_avg, reconnect_avg;
};

Outcome run(overlay::Protocol& protocol, std::size_t viewers, double churn,
            std::uint64_t seed) {
  util::Rng root(seed);
  util::Rng topo_rng = root.split(1);

  topo::TransitStubParams tp;  // 792-router GT-ITM-style Internet
  topo::HostAttachment hosts;
  hosts.num_hosts = viewers + viewers * 3 / 5 + 8;  // spares for churn joins
  net::GraphUnderlay underlay = topo::make_transit_stub_underlay(tp, hosts, topo_rng);

  sim::Simulator simulator;
  overlay::DelayMetric metric;
  overlay::SessionParams sp;
  sp.source = 0;
  sp.chunk_rate = 2.0;  // light stand-in for the video stream
  overlay::Session session(simulator, underlay, protocol, metric, sp, root.split(3));
  metrics::Collector collector(session);

  overlay::ScenarioParams sc;
  sc.target_members = viewers;
  sc.join_phase = 600.0;
  sc.total_time = 4200.0;
  sc.churn_interval = 400.0;
  sc.settle_time = 100.0;
  sc.churn_rate = churn;
  overlay::ScenarioDriver driver(session, sc, root.split(2));
  driver.run([&](sim::Time at) { collector.capture(at); });

  Outcome o{};
  o.stress = collector.mean_stress(1);
  o.stretch = collector.mean_stretch(1);
  o.loss = collector.mean_loss(1);
  o.overhead = collector.mean_overhead(1);
  o.usage = collector.mean_network_usage(1);
  const auto startups = collector.all_startup_times();
  const auto reconnects = collector.all_reconnect_times();
  for (const double v : startups) o.startup_avg += v / static_cast<double>(startups.size());
  for (const double v : reconnects)
    o.reconnect_avg += v / static_cast<double>(std::max<std::size_t>(1, reconnects.size()));
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto viewers = static_cast<std::size_t>(flags.get_int("viewers", 80));
  const double churn = flags.get_double("churn", 0.05);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));

  std::cout << "Live stream: 1 source, " << viewers << " churning viewers ("
            << 100 * churn << "% per slot), one shared 792-router topology\n\n";

  core::VdmProtocol vdm;
  baselines::HmtpProtocol hmtp;  // 30 s refinement, as deployed on PlanetLab
  const Outcome a = run(vdm, viewers, churn, seed);
  const Outcome b = run(hmtp, viewers, churn, seed);

  util::Table t({"metric", "VDM", "HMTP", "better is"});
  auto row = [&](const std::string& name, double va, double vb, int prec,
                 const std::string& dir) {
    t.add_row({name, util::Table::fmt(va, prec), util::Table::fmt(vb, prec), dir});
  };
  row("link stress (avg)", a.stress, b.stress, 3, "lower");
  row("stretch vs unicast", a.stretch, b.stretch, 3, "lower");
  row("viewer loss rate", a.loss, b.loss, 5, "lower");
  row("network usage (s)", a.usage, b.usage, 2, "lower");
  row("control overhead", a.overhead, b.overhead, 4, "lower");
  row("startup time (s)", a.startup_avg, b.startup_avg, 3, "lower");
  row("reconnection time (s)", a.reconnect_avg, b.reconnect_avg, 3, "lower");
  t.print(std::cout);

  std::cout << "\nNote: HMTP's tree quality is bought with its periodic refinement\n"
               "messages (the overhead row); VDM places nodes once, by direction.\n";
  return 0;
}
