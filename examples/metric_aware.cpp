// Metric-aware trees (Chapter 4): the same VDM protocol builds different
// overlays depending on the application's sensitivity. A conferencing app
// wants delay (VDM-D), a streaming app wants loss (VDM-L), and a blended
// virtual distance interpolates. This example runs all three on one lossy
// topology and shows the per-target trade-off.
//
//   ./build/examples/metric_aware [--members N] [--seed S]

#include <iostream>
#include <memory>

#include "core/vdm_protocol.hpp"
#include "metrics/collector.hpp"
#include "overlay/scenario.hpp"
#include "topology/transit_stub.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace vdm;

namespace {

struct Outcome {
  double stretch, loss, stress, probe_cost;
};

Outcome run(const overlay::MetricProvider& metric, std::size_t members,
            std::uint64_t seed) {
  util::Rng root(seed);
  util::Rng topo_rng = root.split(1);

  topo::TransitStubParams tp;
  tp.loss_min = 0.0;
  tp.loss_max = 0.02;  // "each physical link is assigned a random error rate"
  topo::HostAttachment hosts;
  hosts.num_hosts = members + 10;
  net::GraphUnderlay underlay = topo::make_transit_stub_underlay(tp, hosts, topo_rng);

  core::VdmProtocol vdm;
  sim::Simulator simulator;
  overlay::SessionParams sp;
  sp.source = 0;
  sp.chunk_rate = 2.0;
  overlay::Session session(simulator, underlay, vdm, metric, sp, root.split(3));
  metrics::Collector collector(session);

  // Chapter-4 style: joins only (no churn), measured after each batch.
  overlay::ScenarioParams sc;
  sc.target_members = members;
  sc.batched_joins = true;
  sc.batch_size = members / 4;
  sc.churn_interval = 400.0;
  sc.settle_time = 100.0;
  sc.total_time = 400.0 * 5;
  overlay::ScenarioDriver driver(session, sc, root.split(2));
  driver.run([&](sim::Time at) { collector.capture(at); });

  Outcome o{};
  o.stretch = collector.samples().back().tree.stretch_avg;
  o.stress = collector.samples().back().tree.stress_avg;
  o.loss = collector.mean_loss(1);
  o.probe_cost = static_cast<double>(session.totals().control_messages);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto members = static_cast<std::size_t>(flags.get_int("members", 60));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  std::cout << "Metric-aware VDM trees on a lossy 792-router topology ("
            << members << " members, link error up to 2%)\n\n";

  const overlay::DelayMetric vdm_d;
  const overlay::LossMetric vdm_l;
  const overlay::BlendMetric blend(0.9, 0.1);

  util::Table t({"virtual distance", "stretch", "loss rate", "stress", "control msgs"});
  for (const auto& [name, metric] :
       std::initializer_list<std::pair<const char*, const overlay::MetricProvider*>>{
           {"VDM-D (delay)", &vdm_d},
           {"VDM-L (loss)", &vdm_l},
           {"blend 90/10 (delay-leaning)", &blend}}) {
    const Outcome o = run(*metric, members, seed);
    t.add_row({name, util::Table::fmt(o.stretch, 3), util::Table::fmt(o.loss, 4),
               util::Table::fmt(o.stress, 3), util::Table::fmt(o.probe_cost, 0)});
  }
  t.print(std::cout);

  std::cout << "\nVDM-L buys a lower loss rate with longer paths and a pricier\n"
               "probing phase (each measurement is a 20-packet burst); the blend\n"
               "sits in between. Same protocol, different virtual distance.\n";
  return 0;
}
