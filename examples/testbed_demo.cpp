// Testbed walkthrough: the full Chapter-5 pipeline as a user would drive
// it — synthesize a world-wide deployment, filter unusable nodes, write a
// scenario file to disk, replay it through the MainController, and inspect
// the resulting overlay tree and session statistics.
//
//   ./build/examples/testbed_demo [--nodes 80] [--members 30] [--seed S]
//                                 [--scenario out.scn] [--protocol vdm|hmtp]
//                                 [--dot tree.dot]

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "baselines/hmtp_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "testbed/controller.hpp"
#include "testbed/dot_export.hpp"
#include "testbed/node_pool.hpp"
#include "testbed/report.hpp"
#include "testbed/scenario_file.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace vdm;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto pool_size = static_cast<std::size_t>(flags.get_int("nodes", 80));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 30));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const std::string scenario_path = flags.get("scenario", "");
  const std::string protocol_name = flags.get("protocol", "vdm");

  util::Rng root(seed);
  util::Rng pool_rng = root.split(1);
  util::Rng scenario_rng = root.split(2);

  // 1. Deployment: a world-wide pool with realistic node health.
  testbed::PoolParams pp;
  pp.num_nodes = pool_size;
  const testbed::NodePool pool =
      testbed::make_pool(pp, topo::world_regions(), pool_rng);
  const testbed::FilterReport filt = testbed::filter_nodes(pool);
  std::cout << "Pool of " << filt.total << " nodes -> " << filt.usable
            << " usable after filtering (" << filt.dropped_unresponsive
            << " unresponsive, " << filt.dropped_no_ping_out
            << " cannot ping, " << filt.dropped_agent << " agent failures)\n";

  // 2. Scenario: warmup joins, then churn; written to a replayable file.
  testbed::ScenarioSpec spec;
  for (const net::HostId h : pool.usable_nodes()) {
    if (h != 0) spec.nodes.push_back(h);
  }
  spec.members = std::min(members, spec.nodes.size());
  spec.join_phase = 300.0;
  spec.total_time = 1500.0;
  spec.churn_interval = 300.0;
  spec.churn_rate = 0.10;
  spec.degree_min = 3;
  spec.degree_max = 5;
  const testbed::Scenario scenario = testbed::generate_scenario(spec, scenario_rng);

  std::ostringstream text;
  testbed::write_scenario(scenario, text);
  if (!scenario_path.empty()) {
    std::ofstream out(scenario_path);
    out << text.str();
    std::cout << "Scenario written to " << scenario_path << " ("
              << scenario.events.size() << " events)\n";
  }
  // Round-trip through the parser, as the MainController would on replay.
  const testbed::Scenario replay = testbed::parse_scenario(text.str());

  // 3. Session: agents + sender + transceivers driven by the controller.
  std::unique_ptr<overlay::Protocol> protocol;
  if (protocol_name == "hmtp") {
    protocol = std::make_unique<baselines::HmtpProtocol>();
  } else {
    protocol = std::make_unique<core::VdmProtocol>();
  }
  std::vector<double> slowness;
  for (const testbed::NodeHealth& h : pool.health) slowness.push_back(h.slowness);
  const testbed::FlakyMetric metric(std::make_unique<overlay::DelayMetric>(),
                                    std::move(slowness), 0.05);
  sim::Simulator simulator;
  testbed::ControllerParams cp;
  cp.source = 0;
  testbed::MainController controller(simulator, pool.topology.underlay,
                                     *protocol, metric, cp, root.split(3));
  const testbed::SessionReport report = controller.run(replay);

  // 4. Results: the tree, its geography and the session statistics.
  std::cout << "\n" << protocol->name() << " overlay tree at terminate:\n"
            << testbed::render_tree(controller.session().tree(), 0, pool.topology);

  const testbed::ClusterStats cs =
      testbed::cluster_stats(controller.session().tree(), 0, pool.topology);
  const util::Summary startup = util::summarize(report.startup_times);
  const util::Summary reconnect = util::summarize(report.reconnect_times);

  util::Table t({"statistic", "value"});
  t.add_row({"members at terminate", std::to_string(report.final_tree.members)});
  t.add_row({"avg stretch", util::Table::fmt(report.final_tree.stretch_avg)});
  t.add_row({"avg hopcount", util::Table::fmt(report.final_tree.hop_avg, 2)});
  t.add_row({"network usage (s)", util::Table::fmt(report.final_tree.network_usage)});
  t.add_row({"tree/MST cost ratio", util::Table::fmt(report.mst_ratio)});
  t.add_row({"startup time avg/max (s)",
             util::Table::fmt(startup.mean) + " / " + util::Table::fmt(startup.max)});
  t.add_row({"reconnection avg/max (s)",
             util::Table::fmt(reconnect.mean) + " / " + util::Table::fmt(reconnect.max)});
  t.add_row({"session loss rate", util::Table::fmt(report.loss_rate, 5)});
  t.add_row({"control msgs / chunk", util::Table::fmt(report.overhead_per_chunk, 4)});
  t.add_row({"intra-region edges",
             util::Table::fmt(100 * cs.intra_region_fraction(), 1) + "%"});
  t.add_row({"cross-continent edges",
             util::Table::fmt(100 * cs.cross_continent_fraction(), 1) + "%"});
  std::cout << '\n';
  t.print(std::cout);

  const std::string dot_path = flags.get("dot", "");
  if (!dot_path.empty()) {
    std::ofstream dot(dot_path);
    testbed::write_dot(controller.session().tree(), 0, pool.topology, dot);
    std::cout << "\nGraphviz tree written to " << dot_path
              << " (render with: dot -Tsvg " << dot_path << " -o tree.svg)\n";
  }
  return 0;
}
