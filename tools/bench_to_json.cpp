// Converts google-benchmark console output into the repo's perf-trajectory
// file. Reads the console table (stdin or --in), extracts every benchmark
// row, and appends one labeled run entry to a JSON array (--out, default
// BENCH_e2e.json in the current directory), creating the file on first use:
//
//   ./build/bench/bench_e2e | ./build/tools/bench_to_json --label fastpath
//
// --require <substring>[,<substring>...] makes the conversion fail unless
// every listed substring matches some parsed row name — use it to guarantee
// mandatory benchmarks (e.g. the crash-churn and flash-crowd runs) actually
// made it into the trajectory.
//
// --max-regress <pct> is the perf gate: before recording, every parsed row
// is compared against the most recent trajectory entry with a different
// label (the previous PR's run). If any shared benchmark's real time grew
// by more than <pct> percent, a comparison table is printed, nothing is
// written, and the exit code is non-zero. Benchmarks new in this run (no
// baseline row) are listed but never fail the gate.
//
// The trajectory file is an array of
//   {"label", "recorded_at_utc", "results": {name: {"real_time_ms",
//    "cpu_time_ms", "iterations", "counters": {...}}}}
// so successive PRs can diff entries (see README "Performance").

#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.hpp"

namespace {

struct BenchRow {
  std::string name;
  double real_time_ms = 0.0;
  double cpu_time_ms = 0.0;
  long long iterations = 0;
  std::map<std::string, double> counters;
};

double to_ms(double value, const std::string& unit) {
  if (unit == "ns") return value * 1e-6;
  if (unit == "us") return value * 1e-3;
  if (unit == "ms") return value;
  if (unit == "s") return value * 1e3;
  return value;  // unknown unit: pass through
}

/// Parses benchmark's humanized counter values ("1.698k", "23", "2.5M",
/// "766.754u" — sub-unit counters get m/u/n/p suffixes).
double parse_counter(const std::string& text) {
  std::size_t pos = 0;
  const double v = std::stod(text, &pos);
  if (pos < text.size()) {
    switch (text[pos]) {
      case 'k': return v * 1e3;
      case 'M': return v * 1e6;
      case 'G': return v * 1e9;
      case 'm': return v * 1e-3;
      case 'u': return v * 1e-6;
      case 'n': return v * 1e-9;
      case 'p': return v * 1e-12;
      default: break;
    }
  }
  return v;
}

/// A benchmark row looks like:
///   BM_Name/200   98.0 us   96.9 us   2807 counter=1.698k ...
bool parse_row(const std::string& line, BenchRow& row) {
  std::istringstream in(line);
  std::string name, real_unit, cpu_unit;
  double real_value = 0.0, cpu_value = 0.0;
  long long iters = 0;
  if (!(in >> name >> real_value >> real_unit >> cpu_value >> cpu_unit >> iters)) {
    return false;
  }
  if (name.rfind("BM_", 0) != 0) return false;
  row.name = name;
  row.real_time_ms = to_ms(real_value, real_unit);
  row.cpu_time_ms = to_ms(cpu_value, cpu_unit);
  row.iterations = iters;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    try {
      row.counters[token.substr(0, eq)] = parse_counter(token.substr(eq + 1));
    } catch (const std::exception&) {
      // Non-numeric counter; skip it.
    }
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string format_entry(const std::string& label, const std::vector<BenchRow>& rows) {
  std::ostringstream out;
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  out << "  {\n    \"label\": \"" << json_escape(label) << "\",\n"
      << "    \"recorded_at_utc\": \"" << stamp << "\",\n"
      << "    \"results\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "      \"" << json_escape(r.name) << "\": {"
        << "\"real_time_ms\": " << r.real_time_ms
        << ", \"cpu_time_ms\": " << r.cpu_time_ms
        << ", \"iterations\": " << r.iterations;
    if (!r.counters.empty()) {
      out << ", \"counters\": {";
      bool first = true;
      for (const auto& [key, value] : r.counters) {
        if (!first) out << ", ";
        first = false;
        out << "\"" << json_escape(key) << "\": " << value;
      }
      out << "}";
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "    }\n  }";
  return out.str();
}

/// Splits a trajectory array into its top-level entry objects. A tolerant
/// brace scanner (string-aware) rather than a JSON parser: the file is
/// machine-written, but hand edits should not silently corrupt it either —
/// returns false when the text is not a single well-formed array.
bool split_entries(const std::string& text, std::vector<std::string>& entries) {
  std::size_t depth = 0;
  bool in_string = false;
  bool seen_array = false;
  std::size_t entry_start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[':
        if (depth == 0) {
          if (seen_array) return false;  // two arrays side by side
          seen_array = true;
        }
        ++depth;
        break;
      case '{':
        if (depth == 1) entry_start = i;
        ++depth;
        break;
      case '}':
        if (depth == 0) return false;
        --depth;
        if (depth == 1) entries.push_back(text.substr(entry_start, i + 1 - entry_start));
        break;
      case ']':
        if (depth == 0) return false;
        --depth;
        break;
      default: break;
    }
  }
  return seen_array && depth == 0 && !in_string;
}

/// Extracts the value of the first "label" key of an entry.
std::string entry_label(const std::string& entry) {
  const std::string key = "\"label\": \"";
  const std::size_t at = entry.find(key);
  if (at == std::string::npos) return "";
  std::string out;
  for (std::size_t i = at + key.size(); i < entry.size(); ++i) {
    if (entry[i] == '\\' && i + 1 < entry.size()) { out.push_back(entry[++i]); continue; }
    if (entry[i] == '"') break;
    out.push_back(entry[i]);
  }
  return out;
}

/// Extracts {benchmark name -> real_time_ms} from a trajectory entry by
/// anchoring on the per-row "real_time_ms" key and backtracking to the
/// quoted row name in front of the row's opening brace.
std::map<std::string, double> entry_times(const std::string& entry) {
  std::map<std::string, double> out;
  const std::string marker = "\"real_time_ms\": ";
  for (std::size_t at = entry.find(marker); at != std::string::npos;
       at = entry.find(marker, at + marker.size())) {
    const std::size_t brace = entry.rfind('{', at);
    if (brace == std::string::npos || brace == 0) continue;
    const std::size_t name_close = entry.rfind('"', brace - 1);
    if (name_close == std::string::npos || name_close == 0) continue;
    const std::size_t name_open = entry.rfind('"', name_close - 1);
    if (name_open == std::string::npos) continue;
    try {
      out[entry.substr(name_open + 1, name_close - name_open - 1)] =
          std::stod(entry.substr(at + marker.size()));
    } catch (const std::exception&) {
      // Malformed number; skip the row.
    }
  }
  return out;
}

/// The perf-regression gate: compares every candidate row against the
/// baseline entry's time for the same benchmark. Returns false (after
/// printing the offending rows) when any shared benchmark slowed down by
/// more than `max_regress_pct`.
bool check_regressions(const std::vector<BenchRow>& rows, const std::string& baseline,
                       double max_regress_pct) {
  const std::map<std::string, double> base = entry_times(baseline);
  bool ok = true;
  std::fprintf(stderr, "bench_to_json: gating against \"%s\" (max regress %+.1f%%)\n",
               entry_label(baseline).c_str(), max_regress_pct);
  for (const BenchRow& r : rows) {
    const auto it = base.find(r.name);
    if (it == base.end()) {
      std::fprintf(stderr, "  %-40s %10.3f ms  (new, no baseline)\n", r.name.c_str(),
                   r.real_time_ms);
      continue;
    }
    const double delta_pct =
        it->second > 0.0 ? 100.0 * (r.real_time_ms - it->second) / it->second : 0.0;
    const bool regressed = delta_pct > max_regress_pct;
    std::fprintf(stderr, "  %-40s %10.3f ms  vs %10.3f ms  %+7.1f%%%s\n", r.name.c_str(),
                 r.real_time_ms, it->second, delta_pct, regressed ? "  REGRESSION" : "");
    if (regressed) ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const vdm::util::Flags flags(argc, argv);
  const std::string label = flags.get("label", "unlabeled");
  const std::string in_path = flags.get("in", "");
  const std::string out_path = flags.get("out", "BENCH_e2e.json");

  std::ifstream in_file;
  if (!in_path.empty()) {
    in_file.open(in_path);
    if (!in_file) {
      std::cerr << "bench_to_json: cannot read " << in_path << "\n";
      return 1;
    }
  }
  std::istream& in = in_path.empty() ? std::cin : in_file;

  std::vector<BenchRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    BenchRow row;
    if (parse_row(line, row)) rows.push_back(row);
  }
  if (rows.empty()) {
    std::cerr << "bench_to_json: no benchmark rows found in input\n";
    return 1;
  }
  // Comma-separated list; every substring must match some parsed row.
  const std::string required = flags.get("require", "");
  for (std::size_t pos = 0; pos < required.size();) {
    const std::size_t comma = required.find(',', pos);
    const std::string one =
        required.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
    pos = comma == std::string::npos ? required.size() : comma + 1;
    if (one.empty()) continue;
    bool found = false;
    for (const BenchRow& r : rows) {
      if (r.name.find(one) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "bench_to_json: required benchmark '" << one
                << "' missing from input\n";
      return 1;
    }
  }

  // Rewrite the trajectory array: re-running under an already-used label
  // replaces that entry in place (one entry per label — repeated local
  // bench runs must not pile up duplicates), a fresh label appends.
  std::string existing;
  {
    std::ifstream prior(out_path);
    if (prior) {
      std::ostringstream buf;
      buf << prior.rdbuf();
      existing = buf.str();
    }
  }

  std::vector<std::string> entries;
  bool has_content = false;
  for (const char c : existing) {
    if (!std::isspace(static_cast<unsigned char>(c))) { has_content = true; break; }
  }
  if (has_content && !split_entries(existing, entries)) {
    std::cerr << "bench_to_json: " << out_path
              << " is not a trajectory array; refusing to overwrite\n";
    return 1;
  }

  // Perf gate: compare against the most recent entry recorded under a
  // different label — the previous PR's trajectory point — before letting
  // this run into the file.
  if (flags.has("max-regress")) {
    const double max_regress = flags.get_double("max-regress", 0.0);
    const std::string* baseline = nullptr;
    for (const std::string& e : entries) {
      if (entry_label(e) != label) baseline = &e;
    }
    if (baseline == nullptr) {
      std::cerr << "bench_to_json: --max-regress: no prior entry with a "
                   "different label in " << out_path << "; nothing to gate against\n";
    } else if (!check_regressions(rows, *baseline, max_regress)) {
      std::cerr << "bench_to_json: perf regression beyond " << max_regress
                << "% — not recording \"" << label << "\"\n";
      return 1;
    }
  }

  bool replaced = false;
  const std::string entry = format_entry(label, rows);
  for (std::string& e : entries) {
    if (entry_label(e) == label) {
      e = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries.push_back(entry);

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "bench_to_json: cannot write " << out_path << "\n";
    return 1;
  }
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string& e = entries[i];
    const std::size_t start = e.find_first_not_of(" \t\n");
    out << "  " << (start == std::string::npos ? e : e.substr(start))
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "bench_to_json: " << (replaced ? "replaced" : "appended")
            << " \"" << label << "\" (" << rows.size() << " benchmarks) in "
            << out_path << "\n";
  return 0;
}
