// vdmsim — run a configurable overlay-multicast experiment from the command
// line and print (or CSV-export) the aggregate metrics. This is the
// downstream-user entry point: every knob of the reproduction is reachable
// without writing C++.
//
// Examples:
//   vdmsim --protocol vdm --members 200 --churn 0.05 --seeds 8
//   vdmsim --protocol hmtp --substrate geo-us --degree 4 --csv
//   vdmsim --protocol vdm --metric loss --link-loss 0.02 --members 100

#include <chrono>
#include <cstdio>
#include <iostream>
#include <span>
#include <string>

#include "experiments/runner.hpp"
#include "experiments/sweep.hpp"
#include "overlay/walk.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace vdm;
using namespace vdm::experiments;

namespace {

int usage() {
  std::cout <<
      "vdmsim — Virtual Direction Multicast experiment driver\n\n"
      "  --protocol   vdm | vdm-r | hmtp | btp | random     (default vdm)\n"
      "  --underlay   transit-stub | waxman | geo-us | geo-world |\n"
      "               coord-us | coord-world | coord-plane   (default transit-stub)\n"
      "               (--substrate is an accepted alias; coord-* underlays\n"
      "               compute delay O(1) from coordinates — use them for\n"
      "               large overlays, e.g. --underlay coord-plane --nodes 65536)\n"
      "  --metric     delay | loss | blend | cached-delay | cached-loss (default delay)\n"
      "  --members    overlay size (--nodes is an alias)    (default 200)\n"
      "  --churn      fraction replaced per interval        (default 0.05)\n"
      "  --degree-min / --degree-max  child capacity bounds (default 2 / 5)\n"
      "  --degree-avg fractional average degree (overrides min/max)\n"
      "  --join-phase / --total-time / --interval / --settle  timeline (s)\n"
      "  --chunk-rate data chunks per second                (default 1)\n"
      "  --join-mode  sequential | locating | concurrent    (default sequential)\n"
      "               locating: placement-index entry point; concurrent:\n"
      "               locating + batched same-timestamp join pipeline\n"
      "  --flash      N burst arrivals at one instant on top of --members\n"
      "               (default 0; --flash-at sets the instant, default =\n"
      "               end of the join phase)\n"
      "  --workload   slots | poisson | diurnal | pareto | trace:<file>\n"
      "               membership process (default slots = the paper's churn\n"
      "               timeline; the rest generate/replay an explicit event\n"
      "               trace — see README for the CSV trace format)\n"
      "  --mean-session   mean member session length, s     (default 2000)\n"
      "  --pareto-alpha   Pareto session shape, > 1         (default 1.5)\n"
      "  --diurnal-period / --diurnal-amplitude  arrival-rate wave\n"
      "               (defaults 4000 s / 0.8)\n"
      "  --save-trace <file>  write the run's workload event trace as CSV\n"
      "               (replay it bit-identically with --workload trace:<file>)\n"
      "  --trajectory print the first seed's per-measurement time series\n"
      "               (t, continuity, outage, overhead, members)\n"
      "  --link-loss  per-link error ceiling                (default 0)\n"
      "  --probe-noise RTT measurement noise std-dev        (default 0)\n"
      "  --hmtp-period / --no-hmtp-refine / --foster-child  HMTP controls\n"
      "  --buffer     playout buffer seconds               (default 0)\n"
      "  --crash-frac fraction of departures that crash    (default 0)\n"
      "  --heartbeat-period  parent probe period, s; 0 = instant detection\n"
      "  --heartbeat-misses  probes missed before declaring death (default 3)\n"
      "  --heartbeat-timeout wait after the last miss, s    (default 0.5)\n"
      "  --control-loss extra loss on control exchanges (enables retries)\n"
      "  --retry-timeout initial retransmission timeout, s  (default 0.25)\n"
      "  --mst / --no-mst  force the O(N^2) final-tree MST-ratio baseline\n"
      "               on/off (auto: off above 4096 members)\n"
      "  --seeds      independent repetitions               (default 8)\n"
      "  --seed       base seed                             (default 1)\n"
      "  --threads    worker cap for the seed sweep; 0 = hardware (default 0)\n"
      "  --run-threads  worker threads for the parallel phases inside one\n"
      "               seed (probe batches, chunk-flood shards); 0 = hardware\n"
      "               (default 1 = serial; results are bit-identical for\n"
      "               any value)\n"
      "  --profile    print a per-phase wall-time footer (join / refine /\n"
      "               flood / metrics, summed across seeds) after the table\n"
      "  --quiet      suppress the per-seed progress line on stderr\n"
      "  --trace-joins  print one line per tree-walk step (forces --threads 1;\n"
      "               pair with small --members/--seeds, it is verbose)\n"
      "  --csv        emit machine-readable CSV instead of a table\n"
      "  --help       this text\n";
  return 0;
}

/// --trace-joins sink: one line per walk iteration across every join,
/// reconnection and refinement walk of the run.
class StdoutWalkTrace final : public overlay::WalkObserver {
 public:
  void on_step(const overlay::WalkStep& s) override {
    const std::string_view decision = overlay::walk_decision_name(s.decision);
    std::printf(
        "walk joiner=%llu step=%d at=%llu probes=%d decision=%.*s next=%llu\n",
        static_cast<unsigned long long>(s.joiner), s.step,
        static_cast<unsigned long long>(s.node), s.probes,
        static_cast<int>(decision.size()), decision.data(),
        static_cast<unsigned long long>(s.next));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  if (flags.get_bool("help", false)) return usage();

  RunConfig cfg;
  const std::string proto = flags.get("protocol", "vdm");
  if (proto == "vdm") {
    cfg.protocol = Proto::kVdm;
  } else if (proto == "vdm-r") {
    cfg.protocol = Proto::kVdmRefine;
  } else if (proto == "hmtp") {
    cfg.protocol = Proto::kHmtp;
  } else if (proto == "btp") {
    cfg.protocol = Proto::kBtp;
  } else if (proto == "random") {
    cfg.protocol = Proto::kRandom;
  } else {
    std::cerr << "unknown --protocol '" << proto << "' (see --help)\n";
    return 2;
  }

  // --underlay is the documented spelling; --substrate stays as an alias so
  // existing scripts keep working. Unknown values are a hard usage error —
  // silently falling back to a default would bench the wrong substrate.
  const std::string substrate = flags.has("underlay")
                                    ? flags.get("underlay", "transit-stub")
                                    : flags.get("substrate", "transit-stub");
  if (substrate == "transit-stub") {
    cfg.substrate = Substrate::kTransitStub;
  } else if (substrate == "waxman") {
    cfg.substrate = Substrate::kWaxman;
  } else if (substrate == "geo-us") {
    cfg.substrate = Substrate::kGeoUs;
  } else if (substrate == "geo-world") {
    cfg.substrate = Substrate::kGeoWorld;
  } else if (substrate == "coord-us") {
    cfg.substrate = Substrate::kCoordUs;
  } else if (substrate == "coord-world") {
    cfg.substrate = Substrate::kCoordWorld;
  } else if (substrate == "coord-plane") {
    cfg.substrate = Substrate::kCoordPlane;
  } else {
    std::cerr << "unknown --underlay '" << substrate << "' (see --help)\n";
    return 2;
  }

  const std::string metric = flags.get("metric", "delay");
  if (metric == "delay") {
    cfg.metric = Metric::kDelay;
  } else if (metric == "loss") {
    cfg.metric = Metric::kLoss;
  } else if (metric == "blend") {
    cfg.metric = Metric::kBlend;
  } else if (metric == "cached-delay") {
    cfg.metric = Metric::kCachedDelay;
  } else if (metric == "cached-loss") {
    cfg.metric = Metric::kCachedLoss;
  } else {
    std::cerr << "unknown --metric '" << metric << "' (see --help)\n";
    return 2;
  }

  cfg.scenario.target_members = static_cast<std::size_t>(
      flags.has("nodes") ? flags.get_int("nodes", 200)
                         : flags.get_int("members", 200));
  cfg.scenario.churn_rate = flags.get_double("churn", 0.05);
  cfg.scenario.join_phase = flags.get_double("join-phase", 2000.0);
  cfg.scenario.total_time = flags.get_double("total-time", 10000.0);
  cfg.scenario.churn_interval = flags.get_double("interval", 400.0);
  cfg.scenario.settle_time = flags.get_double("settle", 100.0);
  if (flags.has("degree-avg")) {
    cfg.scenario.degrees = overlay::DegreeSpec::average(flags.get_double("degree-avg", 4.0));
  } else {
    cfg.scenario.degrees = overlay::DegreeSpec::uniform(
        static_cast<int>(flags.get_int("degree-min", 2)),
        static_cast<int>(flags.get_int("degree-max", 5)));
  }
  cfg.session.chunk_rate = flags.get_double("chunk-rate", 1.0);
  const std::string join_mode = flags.get("join-mode", "sequential");
  if (join_mode == "sequential") {
    cfg.session.join_mode = overlay::JoinMode::kSequential;
  } else if (join_mode == "locating") {
    cfg.session.join_mode = overlay::JoinMode::kLocating;
  } else if (join_mode == "concurrent") {
    cfg.session.join_mode = overlay::JoinMode::kConcurrent;
  } else {
    std::cerr << "unknown --join-mode '" << join_mode << "' (see --help)\n";
    return 2;
  }
  cfg.scenario.flash_count =
      static_cast<std::size_t>(flags.get_int("flash", 0));
  cfg.scenario.flash_at =
      flags.get_double("flash-at", cfg.scenario.join_phase);
  cfg.link_loss_max = flags.get_double("link-loss", 0.0);
  cfg.probe_noise = flags.get_double("probe-noise", 0.0);
  cfg.hmtp_refine_period = flags.get_double("hmtp-period", 30.0);
  cfg.hmtp_refinement = !flags.get_bool("no-hmtp-refine", false);
  cfg.hmtp_foster_child = flags.get_bool("foster-child", false);
  cfg.session.buffer_seconds = flags.get_double("buffer", 0.0);
  cfg.scenario.crash_fraction = flags.get_double("crash-frac", 0.0);
  cfg.session.faults.heartbeat_period = flags.get_double("heartbeat-period", 0.0);
  cfg.session.faults.heartbeat_misses =
      static_cast<int>(flags.get_int("heartbeat-misses", 3));
  cfg.session.faults.heartbeat_timeout = flags.get_double("heartbeat-timeout", 0.5);
  if (flags.has("control-loss")) {
    cfg.session.faults.lossy_control = true;
    cfg.session.faults.control_loss_extra = flags.get_double("control-loss", 0.0);
  }
  cfg.session.faults.retry_timeout = flags.get_double("retry-timeout", 0.25);
  cfg.session.threads = static_cast<int>(flags.get_int("run-threads", 1));
  cfg.session.profile = flags.get_bool("profile", false);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const std::string workload = flags.get("workload", "slots");
  if (!overlay::parse_workload_kind(workload, cfg.workload)) {
    std::cerr << "unknown --workload '" << workload << "' (see --help)\n";
    return 2;
  }
  cfg.workload.mean_session = flags.get_double("mean-session", 2000.0);
  cfg.workload.pareto_alpha = flags.get_double("pareto-alpha", 1.5);
  cfg.workload.diurnal_period = flags.get_double("diurnal-period", 4000.0);
  cfg.workload.diurnal_amplitude = flags.get_double("diurnal-amplitude", 0.8);
  const std::string save_trace = flags.get("save-trace", "");
  if (!save_trace.empty()) {
    if (cfg.workload.kind == overlay::WorkloadKind::kSlots) {
      std::cerr << "--save-trace needs an event-list workload "
                   "(--workload poisson|diurnal|pareto|trace:<file>)\n";
      return 2;
    }
    std::vector<overlay::WorkloadEvent> events;
    workload_events(cfg, events);
    overlay::write_trace_file(save_trace, events);
    if (!flags.get_bool("quiet", false)) {
      std::cerr << "wrote " << events.size() << " events (seed " << cfg.seed
                << ") to " << save_trace << '\n';
    }
  }
  const bool want_trajectory = flags.get_bool("trajectory", false);
  cfg.keep_trajectory = want_trajectory;

  // The MST-ratio baseline is an O(N^2) Prim pass over the final tree —
  // fine at paper scale, minutes at coordinate-substrate scale. Auto-off
  // above 4096 members; --mst / --no-mst override in either direction.
  cfg.compute_mst_ratio =
      cfg.scenario.target_members + cfg.scenario.flash_count <= 4096;
  if (flags.get_bool("mst", false)) cfg.compute_mst_ratio = true;
  if (flags.get_bool("no-mst", false)) cfg.compute_mst_ratio = false;
  if (!cfg.compute_mst_ratio && !flags.get_bool("no-mst", false) &&
      !flags.get_bool("quiet", false)) {
    std::cerr << "note: skipping O(N^2) mst_ratio above 4096 members "
                 "(--mst forces it)\n";
  }

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 8));

  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  StdoutWalkTrace trace;
  if (flags.get_bool("trace-joins", false)) {
    cfg.walk_observer = &trace;
    if (sweep.threads != 1) {
      std::cerr << "note: --trace-joins serializes the sweep; overriding "
                   "--threads "
                << sweep.threads << " (0 = hardware) to 1\n";
    }
    sweep.threads = 1;  // keep the interleaved trace deterministic
  }
  const auto start = std::chrono::steady_clock::now();
  if (!flags.get_bool("quiet", false)) {
    sweep.progress = [start](std::size_t done, std::size_t total) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      const double eta = done > 0 ? elapsed * static_cast<double>(total - done) /
                                        static_cast<double>(done)
                                  : 0.0;
      std::fprintf(stderr, "\r  seed %zu/%zu  elapsed %.1fs  eta %.1fs ", done,
                   total, elapsed, eta);
      if (done == total) std::fputc('\n', stderr);
      std::fflush(stderr);
    };
  }
  const AggregateResult agg =
      run_grid(std::span<const RunConfig>(&cfg, 1), seeds, sweep).front();

  util::Table t({"metric", "mean", "ci90", "min", "max"});
  auto row = [&](const std::string& name, const util::Summary& s, int prec = 4) {
    t.add_row({name, util::Table::fmt(s.mean, prec), util::Table::fmt(s.ci_halfwidth, prec),
               util::Table::fmt(s.min, prec), util::Table::fmt(s.max, prec)});
  };
  row("stress", agg.stress);
  row("stretch", agg.stretch);
  row("stretch_leaf", agg.stretch_leaf);
  row("hopcount", agg.hopcount);
  row("hop_max", agg.hop_max);
  row("loss_rate", agg.loss, 5);
  row("overhead", agg.overhead, 5);
  row("network_usage_s", agg.network_usage);
  row("startup_s", agg.startup_avg);
  row("startup_p50_s", agg.startup_p50);
  row("startup_p99_s", agg.startup_p99);
  row("joins_per_sec", agg.join_rate, 2);
  row("reconnect_s", agg.reconnect_avg);
  if (cfg.scenario.crash_fraction > 0.0) {
    row("detection_s", agg.detection_avg);
    row("outage_s", agg.outage_avg);
  }
  if (cfg.compute_mst_ratio) row("mst_ratio", agg.mst_ratio);

  if (flags.get_bool("csv", false)) {
    t.print_csv(std::cout);
  } else {
    std::cout << proto << " on " << substrate << ", "
              << cfg.scenario.target_members << " members, workload "
              << overlay::workload_kind_name(cfg.workload.kind) << ", churn "
              << 100 * cfg.scenario.churn_rate << "%, " << seeds << " seeds\n\n";
    t.print(std::cout);
  }

  if (cfg.session.profile) {
    double join = 0.0, refine = 0.0, flood = 0.0, metrics_t = 0.0;
    std::uint64_t par_floods = 0, par_batches = 0;
    for (const RunResult& r : agg.runs) {
      join += r.profile_join_secs;
      refine += r.profile_refine_secs;
      flood += r.profile_flood_secs;
      metrics_t += r.profile_metrics_secs;
      par_floods += r.parallel_floods;
      par_batches += r.parallel_probe_batches;
    }
    std::printf(
        "\nprofile (%zu seeds): join %.3fs  refine %.3fs  flood %.3fs  "
        "metrics %.3fs\n"
        "  run-threads %d (parallel floods %llu, parallel probe batches "
        "%llu), sweep workers %zu\n",
        agg.runs.size(), join, refine, flood, metrics_t, cfg.session.threads,
        static_cast<unsigned long long>(par_floods),
        static_cast<unsigned long long>(par_batches), sweep.threads);
  }

  if (want_trajectory && !agg.runs.empty()) {
    util::Table traj({"t", "continuity", "outage_s", "overhead", "members"});
    for (const TrajectoryPoint& p : agg.runs.front().trajectory) {
      traj.add_row({util::Table::fmt(p.at, 1), util::Table::fmt(p.continuity, 5),
                    util::Table::fmt(p.outage, 3), util::Table::fmt(p.overhead, 5),
                    std::to_string(p.members)});
    }
    if (flags.get_bool("csv", false)) {
      traj.print_csv(std::cout);
    } else {
      std::cout << "\ntrajectory (seed " << cfg.seed << ")\n\n";
      traj.print(std::cout);
    }
  }
  return 0;
}
