// vdmd — the real-socket VDM daemon (DESIGN.md §14).
//
// One binary, two roles:
//
//   vdmd --source --agents N [--spawn] [--scenario FILE] ...
//     The controller: the dissertation's MainController over real UDP. It
//     waits for N agents to hello on 127.0.0.1, builds a MeasuredUnderlay
//     whose delays are real probed RTTs, and runs the UNCHANGED protocol
//     core (Session / TreeWalk / Membership, the same objects every
//     simulation uses) on a UdpReactor. Every tree mutation the protocol
//     decides is mirrored to the agents as SetParent / Adopt / DropChild
//     (acked, retried per the PR 3 lossy-control-plane policy), and the
//     controller streams real chunks to its tree children.
//
//   vdmd --agent --controller ip:port
//     A thin relay: hellos in, answers pings and probe requests, obeys
//     re-parenting orders, heartbeats its parent, and forwards every chunk
//     to its adopted children.
//
// The centralized-controller shape is the paper's Chapter 5 deployment: the
// agents measure and relay; the protocol brain runs in one place.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/vdm_protocol.hpp"
#include "overlay/metric.hpp"
#include "overlay/session.hpp"
#include "testbed/controller.hpp"
#include "testbed/scenario_file.hpp"
#include "transport/measured_underlay.hpp"
#include "transport/transport.hpp"
#include "transport/udp.hpp"
#include "util/log.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "wire/wire.hpp"

namespace vdm {
namespace {

using transport::PeerAddr;

constexpr double kHelloTimeout = 0.2;
constexpr double kPingTimeout = 0.3;
constexpr int kPingAttempts = 3;
constexpr double kAgentProbeTimeout = 2.0;
constexpr double kHeartbeatPeriod = 0.5;

struct Options {
  bool source = false;
  bool agent = false;
  std::string controller;     // --agent: "ip:port" of the controller
  std::size_t agents = 4;     // --source: how many agents to expect
  bool spawn = false;         // --source: fork/exec our own agents
  std::string scenario_path;  // --source: scenario file (verbs) to execute
  double chunk_rate = 10.0;
  double stream_secs = 3.0;   // synthesized scenario: stream time after joins
  double deadline = 60.0;     // hard wall-clock cap on the whole run
  std::uint16_t port = 0;     // --source listen port (0 = ephemeral)
  std::string port_file;      // --source: write "ip:port\n" here when bound
  int degree = 4;             // degree limit handed to every join
  bool verbose = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --source [--agents N] [--spawn]\n"
      << "           [--scenario FILE] [--chunk-rate R] [--stream-secs S]\n"
      << "           [--deadline D] [--port P] [--port-file PATH]\n"
      << "           [--degree K] [--verbose]\n"
      << "       " << argv0 << " --agent --controller IP:PORT [--deadline D]\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--source") opt.source = true;
    else if (arg == "--agent") opt.agent = true;
    else if (arg == "--controller") opt.controller = value();
    else if (arg == "--agents") opt.agents = std::stoul(value());
    else if (arg == "--spawn") opt.spawn = true;
    else if (arg == "--scenario") opt.scenario_path = value();
    else if (arg == "--chunk-rate") opt.chunk_rate = std::stod(value());
    else if (arg == "--stream-secs") opt.stream_secs = std::stod(value());
    else if (arg == "--deadline") opt.deadline = std::stod(value());
    else if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::stoul(value()));
    else if (arg == "--port-file") opt.port_file = value();
    else if (arg == "--degree") opt.degree = std::stoi(value());
    else if (arg == "--verbose") opt.verbose = true;
    else usage(argv[0]);
  }
  if (opt.source == opt.agent) usage(argv[0]);
  if (opt.agent && opt.controller.empty()) usage(argv[0]);
  return opt;
}

void send_message(transport::UdpSocket& sock, const PeerAddr& to,
                  const wire::Message& m) {
  std::array<std::byte, wire::kMaxFrame> buf;
  const std::size_t n = wire::encode(m, buf);
  sock.send(to, std::span<const std::byte>(buf.data(), n));
}

// ---------------------------------------------------------------- agent role

/// The per-node relay: keeps a parent, a child set and counters, and reacts
/// to every controller/peer message. All state mutations happen inside the
/// reactor's single-threaded dispatch.
class Agent {
 public:
  Agent(const Options& opt)
      : controller_(transport::parse_peer(opt.controller)),
        sock_(PeerAddr{0x7f000001, 0}) {
    reactor_.add_socket(sock_, [this](const PeerAddr& from,
                                      std::span<const std::byte> frame) {
      on_datagram(from, frame);
    });
  }

  int run(double deadline) {
    if (!hello(deadline)) {
      std::cerr << "vdmd-agent: no welcome from "
                << transport::format_peer(controller_) << "\n";
      return 1;
    }
    transport::PeriodicTimer heartbeat(reactor_, kHeartbeatPeriod,
                                       [this] { heartbeat_tick(); });
    reactor_.run_until(deadline);
    return clean_exit_ ? 0 : 1;
  }

 private:
  bool hello(double deadline) {
    double timeout = kHelloTimeout;
    while (reactor_.now() < deadline && host_id_ == net::kInvalidHost) {
      send_message(sock_, controller_,
                   wire::Hello{.listen_port = sock_.local_addr().port});
      const double wait_until = std::min(deadline, reactor_.now() + timeout);
      while (reactor_.now() < wait_until && host_id_ == net::kInvalidHost) {
        reactor_.pump_io(wait_until - reactor_.now());
      }
      timeout = retry_.next_timeout(timeout);
    }
    return host_id_ != net::kInvalidHost;
  }

  void heartbeat_tick() {
    if (parent_ == net::kInvalidHost) return;
    ++heartbeats_sent_;
    send_message(sock_, parent_addr_,
                 wire::Heartbeat{.from_host = host_id_, .seq = heartbeat_seq_++});
  }

  /// Blocking ping transaction against a peer agent; returns the RTT of the
  /// first answered ping, or a large sentinel when all attempts time out.
  double ping_rtt(const PeerAddr& target) {
    double timeout = kPingTimeout;
    for (int attempt = 0; attempt < kPingAttempts; ++attempt) {
      const std::uint32_t token = ++ping_token_;
      awaited_pong_ = token;
      pong_seen_ = false;
      const double t0 = reactor_.now();
      send_message(sock_, target, wire::Ping{.token = token});
      const double wait_until = reactor_.now() + timeout;
      while (!pong_seen_ && reactor_.now() < wait_until) {
        reactor_.pump_io(wait_until - reactor_.now());
      }
      if (pong_seen_) return reactor_.now() - t0;
      timeout = retry_.next_timeout(timeout);
    }
    return 1.0;
  }

  void on_datagram(const PeerAddr& from, std::span<const std::byte> frame) {
    wire::Message m;
    const wire::DecodeError err = wire::decode(frame, m);
    if (!err.ok()) {
      VDM_WARN() << "vdmd-agent: dropping frame: " << wire::describe(err);
      return;
    }
    ++control_received_;
    std::visit([&](auto& body) { handle(from, body); }, m);
  }

  // Catch-all: message types an agent never receives (JoinRequest etc.).
  template <typename M>
  void handle(const PeerAddr&, const M&) {}

  void handle(const PeerAddr&, const wire::Welcome& m) {
    host_id_ = m.host_id;
  }
  void handle(const PeerAddr& from, const wire::Ping& m) {
    send_message(sock_, from, wire::Pong{.token = m.token});
  }
  void handle(const PeerAddr&, const wire::Pong& m) {
    if (m.token == awaited_pong_) pong_seen_ = true;
  }
  void handle(const PeerAddr& from, const wire::ProbeRequest& m) {
    // Duplicate request (our reply was lost): answer from the cache without
    // re-probing, so controller retries converge fast.
    const auto it = probe_cache_.find(m.token);
    const double rtt =
        it != probe_cache_.end()
            ? it->second
            : ping_rtt(PeerAddr{m.target_ip, m.target_port});
    probe_cache_[m.token] = rtt;
    send_message(sock_, from,
                 wire::ProbeReply{.token = m.token,
                                  .target_host = m.target_host,
                                  .rtt_seconds = rtt});
  }
  void handle(const PeerAddr& from, const wire::SetParent& m) {
    parent_ = m.parent_host;
    parent_addr_ = PeerAddr{m.parent_ip, m.parent_port};
    send_message(sock_, from, wire::Ack{.token = m.token});
  }
  void handle(const PeerAddr& from, const wire::Adopt& m) {
    if (std::find(child_ids_.begin(), child_ids_.end(), m.child_host) ==
        child_ids_.end()) {
      child_ids_.push_back(m.child_host);
      child_addrs_.push_back(PeerAddr{m.child_ip, m.child_port});
    }
    send_message(sock_, from, wire::Ack{.token = m.token});
  }
  void handle(const PeerAddr& from, const wire::DropChild& m) {
    const auto it = std::find(child_ids_.begin(), child_ids_.end(), m.child_host);
    if (it != child_ids_.end()) {
      const std::size_t at = static_cast<std::size_t>(it - child_ids_.begin());
      child_ids_.erase(it);
      child_addrs_.erase(child_addrs_.begin() + static_cast<std::ptrdiff_t>(at));
    }
    send_message(sock_, from, wire::Ack{.token = m.token});
  }
  void handle(const PeerAddr& from, const wire::Heartbeat& m) {
    send_message(sock_, from, wire::HeartbeatAck{.seq = m.seq});
  }
  void handle(const PeerAddr&, const wire::Chunk& m) {
    ++chunks_received_;
    // Relay down: re-encode once, fan out to every adopted child.
    std::array<std::byte, wire::kMaxFrame> buf;
    const std::size_t n = wire::encode(wire::Message{m}, buf);
    for (const PeerAddr& child : child_addrs_) {
      sock_.send(child, std::span<const std::byte>(buf.data(), n));
      ++chunks_relayed_;
    }
  }
  void handle(const PeerAddr& from, const wire::StatsRequest& m) {
    send_message(sock_, from,
                 wire::StatsReply{.token = m.token,
                                  .host = host_id_,
                                  .chunks_received = chunks_received_,
                                  .chunks_relayed = chunks_relayed_,
                                  .heartbeats_sent = heartbeats_sent_,
                                  .control_received = control_received_});
  }
  void handle(const PeerAddr& from, const wire::Shutdown& m) {
    send_message(sock_, from, wire::Ack{.token = m.token});
    clean_exit_ = true;
    reactor_.stop();
  }

  PeerAddr controller_;
  transport::UdpReactor reactor_;
  transport::UdpSocket sock_;
  transport::RetryPolicy retry_;

  net::HostId host_id_ = net::kInvalidHost;
  net::HostId parent_ = net::kInvalidHost;
  PeerAddr parent_addr_;
  std::vector<net::HostId> child_ids_;
  std::vector<PeerAddr> child_addrs_;

  std::uint32_t ping_token_ = 0;
  std::uint32_t awaited_pong_ = 0;
  bool pong_seen_ = false;
  std::unordered_map<std::uint32_t, double> probe_cache_;

  std::uint32_t heartbeat_seq_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t chunks_received_ = 0;
  std::uint64_t chunks_relayed_ = 0;
  std::uint64_t control_received_ = 0;
  bool clean_exit_ = false;
};

// ----------------------------------------------------------- controller role

/// The controller: ProbeService for the MeasuredUnderlay (real RTTs via the
/// agents), MembershipObserver mirroring every protocol decision out to the
/// agents, and the real chunk stream.
class Controller final : public transport::ProbeService,
                         public overlay::MembershipObserver {
 public:
  explicit Controller(const Options& opt)
      : opt_(opt),
        sock_(PeerAddr{0x7f000001, opt.port}),
        retry_(reactor_, sock_, reactor_.buffers(), transport::RetryPolicy{}) {
    reactor_.add_socket(sock_, [this](const PeerAddr& from,
                                      std::span<const std::byte> frame) {
      on_datagram(from, frame);
    });
    agents_.resize(opt.agents + 1);  // index == HostId; 0 is the controller
    agents_[0].addr = sock_.local_addr();
    agents_[0].ready = true;
  }

  int run() {
    std::cout << "vdmd: controller listening on "
              << transport::format_peer(sock_.local_addr()) << std::endl;
    if (!opt_.port_file.empty()) {
      std::ofstream pf(opt_.port_file);
      pf << transport::format_peer(sock_.local_addr()) << "\n";
    }
    if (opt_.spawn) spawn_agents();
    if (!gather_agents()) {
      std::cerr << "vdmd: only " << ready_agents() << "/" << opt_.agents
                << " agents helloed before the deadline\n";
      reap_agents(true);
      return 1;
    }
    std::cout << "vdmd: " << opt_.agents << " agents ready" << std::endl;

    transport::MeasuredUnderlay underlay(opt_.agents + 1, *this);
    core::VdmProtocol protocol;
    overlay::DelayMetric metric(0.0);
    testbed::ControllerParams params;
    params.source = 0;
    params.source_degree = opt_.degree + 1;  // root pays no uplink
    params.chunk_rate = opt_.chunk_rate;
    params.data_plane = false;  // chunks are real datagrams, not a model
    testbed::MainController controller(reactor_, underlay, protocol, metric,
                                       params, util::Rng(1));
    session_ = &controller.session();

    const testbed::Scenario scenario = build_scenario();
    // Session::start() resets the tree, which clears the observer slot; the
    // mirror must be installed after that but before the first join fires.
    // A zero-delay timer lands exactly in that window (scenario events are
    // shifted >= 0.1s into the future by build_scenario).
    reactor_.schedule_in(0.0, [this] { session_->tree().set_observer(this); });
    transport::PeriodicTimer stream(reactor_, 1.0 / opt_.chunk_rate,
                                    [this] { emit_chunk(); });
    const testbed::SessionReport report = controller.run(scenario);
    stream.stop();

    std::cout << "vdmd: members=" << session_->tree().alive_count()
              << " depth=" << tree_depth() << std::endl;
    std::cout << "vdmd: chunks emitted=" << chunks_emitted_
              << " fanned=" << chunks_fanned_ << std::endl;
    std::cout << "vdmd: control messages (modeled)="
              << report.totals.control_messages
              << " probes=" << probes_issued_
              << " retransmissions=" << retry_.retransmissions()
              << " give-ups=" << retry_.give_ups() << std::endl;

    const bool stats_ok = collect_stats();
    shutdown_agents();
    const bool reaped = reap_agents(false);
    session_ = nullptr;
    if (!stats_ok || !reaped) return 1;
    std::cout << "vdmd: clean shutdown" << std::endl;
    return 0;
  }

  // ---------------------------------------------------- ProbeService (real)
  double probe_rtt(net::HostId a, net::HostId b) override {
    ++probes_issued_;
    VDM_REQUIRE(a < agents_.size() && b < agents_.size());
    if (a == 0 || b == 0) return controller_ping(a == 0 ? b : a);
    // Delegated probe: ask agent a to ping agent b. Manual retry loop —
    // we are inside a blocked transaction, so only I/O pumps run here.
    double timeout = kPingTimeout;
    const double deadline = reactor_.now() + kAgentProbeTimeout;
    while (reactor_.now() < deadline) {
      const std::uint32_t token = retry_.next_token();
      awaited_probe_ = token;
      probe_result_.reset();
      send_message(sock_, agents_[a].addr,
                   wire::ProbeRequest{.token = token,
                                      .target_host = b,
                                      .target_ip = agents_[b].addr.ip,
                                      .target_port = agents_[b].addr.port});
      const double wait_until = std::min(deadline, reactor_.now() + timeout);
      while (!probe_result_ && reactor_.now() < wait_until) {
        reactor_.pump_io(wait_until - reactor_.now());
      }
      if (probe_result_) return *probe_result_;
      timeout = transport::RetryPolicy{}.next_timeout(timeout);
    }
    VDM_WARN() << "vdmd: probe " << a << "->" << b << " timed out";
    return 1.0;
  }

  // ------------------------------------------- MembershipObserver (mirror)
  void on_attach(net::HostId child, net::HostId parent) override {
    if (child == 0) return;
    send_tracked(child, wire::SetParent{.token = 0,
                                        .parent_host = parent,
                                        .parent_ip = agents_[parent].addr.ip,
                                        .parent_port = agents_[parent].addr.port});
    if (parent != 0) {
      send_tracked(parent, wire::Adopt{.token = 0,
                                       .child_host = child,
                                       .child_ip = agents_[child].addr.ip,
                                       .child_port = agents_[child].addr.port});
    }
  }
  void on_detach(net::HostId child, net::HostId parent) override {
    if (parent != 0 && parent != net::kInvalidHost) {
      send_tracked(parent, wire::DropChild{.token = 0, .child_host = child});
    }
    if (child != 0) {
      send_tracked(child, wire::SetParent{.token = 0,
                                          .parent_host = net::kInvalidHost,
                                          .parent_ip = 0,
                                          .parent_port = 0});
    }
  }

 private:
  struct AgentSlot {
    PeerAddr addr;
    bool ready = false;
    pid_t pid = -1;
    std::optional<wire::StatsReply> stats;
  };

  /// Stamps a fresh token into `m` and sends it through the acked/retried
  /// path (RetrySender timers fire while the session's reactor runs).
  template <typename M>
  void send_tracked(net::HostId to, M m) {
    m.token = retry_.next_token();
    retry_.send_tracked(m.token, agents_[to].addr, wire::Message{m});
  }

  std::size_t ready_agents() const {
    std::size_t n = 0;
    for (const AgentSlot& a : agents_) n += a.ready ? 1 : 0;
    return n - 1;  // minus the controller itself
  }

  void spawn_agents() {
    const std::string addr = transport::format_peer(sock_.local_addr());
    const std::string deadline = std::to_string(opt_.deadline);
    for (std::size_t i = 0; i < opt_.agents; ++i) {
      const pid_t pid = ::fork();
      VDM_REQUIRE_MSG(pid >= 0, "fork failed");
      if (pid == 0) {
        ::execlp(argv0_.c_str(), argv0_.c_str(), "--agent", "--controller",
                 addr.c_str(), "--deadline", deadline.c_str(),
                 static_cast<char*>(nullptr));
        std::perror("vdmd: execlp");
        std::_Exit(127);
      }
      agents_[i + 1].pid = pid;
    }
  }

  bool gather_agents() {
    const double deadline = std::min(opt_.deadline * 0.5, 20.0);
    while (reactor_.now() < deadline && ready_agents() < opt_.agents) {
      reactor_.pump_io(0.1);
    }
    return ready_agents() == opt_.agents;
  }

  testbed::Scenario build_scenario() {
    testbed::Scenario scenario;
    if (!opt_.scenario_path.empty()) {
      std::ifstream in(opt_.scenario_path);
      VDM_REQUIRE_MSG(in.good(), "cannot open scenario " + opt_.scenario_path);
      scenario = testbed::parse_scenario(in);
    } else {
      // Synthesized: join every agent back-to-back, then stream.
      for (std::size_t i = 1; i <= opt_.agents; ++i) {
        scenario.events.push_back(
            {0.05 * static_cast<double>(i), static_cast<net::HostId>(i),
             testbed::ScenarioEvent::Action::kJoin, opt_.degree});
      }
      scenario.end_time =
          0.05 * static_cast<double>(opt_.agents) + opt_.stream_secs;
      scenario.normalize();
    }
    // Scenario timestamps are relative to "now": setup (hello gathering)
    // already burned wall clock, and the reactor clock never rewinds.
    const double base = reactor_.now() + 0.1;
    for (testbed::ScenarioEvent& e : scenario.events) e.at += base;
    scenario.end_time += base;
    return scenario;
  }

  void emit_chunk() {
    if (session_ == nullptr) return;
    const overlay::MemberState& self = session_->tree().member(0);
    std::array<std::byte, 64> payload;
    payload.fill(std::byte{0x5a});
    std::array<std::byte, wire::kMaxFrame> buf;
    const std::size_t n = wire::encode(
        wire::Chunk{.seq = ++chunk_seq_,
                    .emitted_at = reactor_.now(),
                    .payload = payload},
        buf);
    ++chunks_emitted_;
    for (const net::HostId child : self.children) {
      sock_.send(agents_[child].addr, std::span<const std::byte>(buf.data(), n));
      ++chunks_fanned_;
    }
  }

  /// One blocking request/reply transaction with every agent.
  bool collect_stats() {
    bool all = true;
    for (std::size_t h = 1; h < agents_.size(); ++h) {
      double timeout = kPingTimeout;
      const double deadline = reactor_.now() + kAgentProbeTimeout;
      agents_[h].stats.reset();
      while (reactor_.now() < deadline && !agents_[h].stats) {
        const std::uint32_t token = retry_.next_token();
        send_message(sock_, agents_[h].addr, wire::StatsRequest{.token = token});
        const double wait_until = std::min(deadline, reactor_.now() + timeout);
        while (!agents_[h].stats && reactor_.now() < wait_until) {
          reactor_.pump_io(wait_until - reactor_.now());
        }
        timeout = transport::RetryPolicy{}.next_timeout(timeout);
      }
      if (agents_[h].stats) {
        const wire::StatsReply& s = *agents_[h].stats;
        std::cout << "vdmd: stats host=" << h
                  << " received=" << s.chunks_received
                  << " relayed=" << s.chunks_relayed
                  << " heartbeats=" << s.heartbeats_sent
                  << " control=" << s.control_received << std::endl;
      } else {
        std::cerr << "vdmd: no stats from host " << h << "\n";
        all = false;
      }
    }
    return all;
  }

  void shutdown_agents() {
    // Acked + retried; drive the retry timers with short run_until slices
    // until every shutdown is acknowledged (or retries exhaust).
    for (std::size_t h = 1; h < agents_.size(); ++h) {
      send_tracked(static_cast<net::HostId>(h), wire::Shutdown{.token = 0});
    }
    const double deadline = reactor_.now() + 5.0;
    while (retry_.in_flight() > 0 && reactor_.now() < deadline) {
      reactor_.resume();
      reactor_.run_until(reactor_.now() + 0.05);
    }
  }

  bool reap_agents(bool kill_now) {
    if (!opt_.spawn) return true;
    bool all = true;
    for (std::size_t h = 1; h < agents_.size(); ++h) {
      const pid_t pid = agents_[h].pid;
      if (pid < 0) continue;
      if (kill_now) ::kill(pid, SIGKILL);
      int status = 0;
      pid_t got = 0;
      const double deadline = reactor_.now() + 5.0;
      while ((got = ::waitpid(pid, &status, WNOHANG)) == 0 &&
             reactor_.now() < deadline) {
        reactor_.pump_io(0.05);
      }
      if (got == 0) {  // still running: force it down
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        all = false;
      } else if (!kill_now &&
                 (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
        std::cerr << "vdmd: agent " << h << " exited with status " << status
                  << "\n";
        all = false;
      }
    }
    return all || kill_now;
  }

  double controller_ping(net::HostId target) {
    double timeout = kPingTimeout;
    for (int attempt = 0; attempt < kPingAttempts; ++attempt) {
      const std::uint32_t token = retry_.next_token();
      awaited_pong_ = token;
      pong_seen_ = false;
      const double t0 = reactor_.now();
      send_message(sock_, agents_[target].addr, wire::Ping{.token = token});
      const double wait_until = reactor_.now() + timeout;
      while (!pong_seen_ && reactor_.now() < wait_until) {
        reactor_.pump_io(wait_until - reactor_.now());
      }
      if (pong_seen_) return reactor_.now() - t0;
      timeout = transport::RetryPolicy{}.next_timeout(timeout);
    }
    VDM_WARN() << "vdmd: ping of host " << target << " timed out";
    return 1.0;
  }

  void on_datagram(const PeerAddr& from, std::span<const std::byte> frame) {
    wire::Message m;
    const wire::DecodeError err = wire::decode(frame, m);
    if (!err.ok()) {
      VDM_WARN() << "vdmd: dropping frame: " << wire::describe(err);
      return;
    }
    std::visit([&](auto& body) { handle(from, body); }, m);
  }

  template <typename M>
  void handle(const PeerAddr&, const M&) {}

  void handle(const PeerAddr& from, const wire::Hello&) {
    // Source addr IS the agent's socket (one socket per agent); a duplicate
    // hello (lost welcome) just gets the same id again.
    for (std::size_t h = 1; h < agents_.size(); ++h) {
      if (agents_[h].ready && agents_[h].addr == from) {
        send_welcome(static_cast<net::HostId>(h), from);
        return;
      }
    }
    for (std::size_t h = 1; h < agents_.size(); ++h) {
      if (!agents_[h].ready) {
        agents_[h].ready = true;
        agents_[h].addr = from;
        send_welcome(static_cast<net::HostId>(h), from);
        return;
      }
    }
    VDM_WARN() << "vdmd: hello from " << transport::format_peer(from)
               << " but the roster is full";
  }
  void send_welcome(net::HostId h, const PeerAddr& to) {
    send_message(sock_, to,
                 wire::Welcome{.host_id = h,
                               .num_hosts = static_cast<std::uint32_t>(
                                   agents_.size())});
  }
  void handle(const PeerAddr&, const wire::Pong& m) {
    if (m.token == awaited_pong_) pong_seen_ = true;
  }
  void handle(const PeerAddr&, const wire::ProbeReply& m) {
    if (m.token == awaited_probe_) probe_result_ = m.rtt_seconds;
  }
  void handle(const PeerAddr&, const wire::Ack& m) { retry_.complete(m.token); }
  void handle(const PeerAddr& from, const wire::Heartbeat& m) {
    send_message(sock_, from, wire::HeartbeatAck{.seq = m.seq});
  }
  void handle(const PeerAddr&, const wire::StatsReply& m) {
    if (m.host >= 1 && m.host < agents_.size()) agents_[m.host].stats = m;
  }

  int tree_depth() const {
    int depth = 0;
    for (std::size_t h = 0; h < agents_.size(); ++h) {
      int d = 0;
      net::HostId cur = static_cast<net::HostId>(h);
      if (!session_->tree().member(cur).alive) continue;
      while (session_->tree().member(cur).parent != net::kInvalidHost) {
        cur = session_->tree().member(cur).parent;
        ++d;
      }
      depth = std::max(depth, d);
    }
    return depth;
  }

 public:
  std::string argv0_ = "vdmd";

 private:
  Options opt_;
  transport::UdpReactor reactor_;
  transport::UdpSocket sock_;
  transport::RetrySender retry_;
  std::vector<AgentSlot> agents_;
  overlay::Session* session_ = nullptr;

  std::uint32_t awaited_pong_ = 0;
  bool pong_seen_ = false;
  std::uint32_t awaited_probe_ = 0;
  std::optional<double> probe_result_;

  std::uint32_t chunk_seq_ = 0;
  std::uint64_t chunks_emitted_ = 0;
  std::uint64_t chunks_fanned_ = 0;
  std::uint64_t probes_issued_ = 0;
};

}  // namespace
}  // namespace vdm

int main(int argc, char** argv) {
  using namespace vdm;
  // Agents outlive a controller that dies mid-send; never crash on EPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  const Options opt = parse_options(argc, argv);
  if (opt.verbose) util::set_log_level(util::LogLevel::kInfo);
  try {
    if (opt.agent) {
      Agent agent(opt);
      return agent.run(opt.deadline);
    }
    Controller controller(opt);
    controller.argv0_ = argv[0];
    return controller.run();
  } catch (const std::exception& e) {
    std::cerr << "vdmd: fatal: " << e.what() << "\n";
    return 1;
  }
}
