// Round-trip and rejection tests of the wire codec (DESIGN.md §14): every
// message type must survive encode -> decode EXPECT_EQ-exact, and every way
// a frame can be malformed must be rejected with a line-precise error.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "util/require.hpp"
#include "wire/wire.hpp"

namespace vdm::wire {
namespace {

std::vector<std::byte> encode_to_vec(const Message& m) {
  std::vector<std::byte> buf(kMaxFrame);
  const std::size_t n = encode(m, buf);
  EXPECT_EQ(n, encoded_size(m)) << type_name(type_of(m));
  buf.resize(n);
  return buf;
}

void expect_round_trip(const Message& m) {
  const std::vector<std::byte> frame = encode_to_vec(m);
  // Header sanity: magic, version, type, length all as documented.
  ASSERT_GE(frame.size(), kHeaderBytes);
  EXPECT_EQ(std::to_integer<unsigned>(frame[0]), kMagic & 0xffu);
  EXPECT_EQ(std::to_integer<unsigned>(frame[1]), kMagic >> 8);
  EXPECT_EQ(std::to_integer<unsigned>(frame[2]), kVersion);
  EXPECT_EQ(std::to_integer<unsigned>(frame[3]),
            static_cast<unsigned>(type_of(m)));
  const std::size_t length = std::to_integer<std::size_t>(frame[4]) |
                             (std::to_integer<std::size_t>(frame[5]) << 8);
  EXPECT_EQ(length, frame.size() - kHeaderBytes);

  Message out;
  const DecodeError err = decode(frame, out);
  ASSERT_TRUE(err.ok()) << describe(err) << " for " << type_name(type_of(m));
  EXPECT_EQ(out, m) << "round trip mutated a " << type_name(type_of(m));
}

const std::array<std::byte, 5> kChunkBody = {
    std::byte{0xde}, std::byte{0xad}, std::byte{0xbe}, std::byte{0xef},
    std::byte{0x42}};

/// One fully-populated exemplar of every message type, every field set to a
/// value that would expose a swapped/omitted/truncated field.
std::vector<Message> all_messages() {
  std::vector<Message> all;
  all.push_back(Hello{.listen_port = 45123});
  all.push_back(Welcome{.host_id = 17, .num_hosts = 33});
  all.push_back(ProbeRequest{.token = 0xdeadbeef,
                             .target_host = 9,
                             .target_ip = 0x7f000001,
                             .target_port = 60001});
  all.push_back(
      ProbeReply{.token = 7, .target_host = 9, .rtt_seconds = 0.0123456789});
  all.push_back(Ping{.token = 0xffffffff});
  all.push_back(Pong{.token = 1});
  all.push_back(JoinRequest{.host = 12, .degree_limit = 4});
  all.push_back(JoinReply{.host = 12, .parent = 3, .accepted = 1});
  all.push_back(SetParent{.token = 55,
                          .parent_host = 2,
                          .parent_ip = 0x7f000001,
                          .parent_port = 40000});
  all.push_back(Adopt{.token = 56,
                      .child_host = 21,
                      .child_ip = 0x7f000001,
                      .child_port = 40001});
  all.push_back(DropChild{.token = 57, .child_host = 21});
  all.push_back(Ack{.token = 57});
  all.push_back(Heartbeat{.from_host = 8, .seq = 1024});
  all.push_back(HeartbeatAck{.seq = 1024});
  all.push_back(LeaveNotice{.host = 5});
  all.push_back(CrashNotice{.host = 6});
  all.push_back(
      Chunk{.seq = 99, .emitted_at = 12.5, .payload = kChunkBody});
  all.push_back(StatsRequest{.token = 77});
  all.push_back(StatsReply{.token = 77,
                           .host = 4,
                           .chunks_received = 100000,
                           .chunks_relayed = 0x1234567890abcdefULL,
                           .heartbeats_sent = 42,
                           .control_received = 7});
  all.push_back(Shutdown{.token = 88});
  return all;
}

TEST(Wire, CatalogueCoversEveryType) {
  const std::vector<Message> all = all_messages();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kMaxType));
  ASSERT_EQ(all.size(), std::variant_size_v<Message>);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(type_of(all[i])), i + 1)
        << "variant order diverges from Type numbering at " << i;
  }
}

TEST(Wire, RoundTripEveryMessageType) {
  for (const Message& m : all_messages()) expect_round_trip(m);
}

TEST(Wire, RoundTripDefaultConstructedMessages) {
  // All-zero / kInvalidHost fields are legal on the wire (e.g. SetParent's
  // detach form) and must survive too.
  expect_round_trip(Hello{});
  expect_round_trip(SetParent{});
  expect_round_trip(JoinReply{});
  expect_round_trip(Chunk{});
}

TEST(Wire, RoundTripDoubleBitPatterns) {
  // Doubles travel as IEEE-754 bits: denormals, negatives and exact binary
  // fractions must come back bit-identical, not printf-identical.
  for (const double rtt : {0.0, -0.0, 1e-308, 0.1, 0.062499999999999993}) {
    expect_round_trip(ProbeReply{.token = 1, .target_host = 2, .rtt_seconds = rtt});
  }
}

TEST(Wire, RoundTripMaxPayloadChunk) {
  // Chunk fields (seq + emitted_at) take 12 bytes; the body may fill the
  // remaining payload budget exactly.
  std::vector<std::byte> body(kMaxPayload - 12, std::byte{0xab});
  expect_round_trip(Chunk{.seq = 1, .emitted_at = 2.0, .payload = body});
}

TEST(Wire, OversizedChunkThrows) {
  std::vector<std::byte> body(kMaxPayload, std::byte{0xab});
  std::vector<std::byte> out(2 * kMaxFrame);
  EXPECT_THROW(
      encode(Chunk{.seq = 1, .emitted_at = 2.0, .payload = body}, out),
      util::InvariantError);
}

TEST(Wire, EncodeIntoTightBuffer) {
  // encode() must work with exactly encoded_size() bytes of room and REQUIRE
  // on one byte less.
  const Message m = Heartbeat{.from_host = 3, .seq = 9};
  std::vector<std::byte> tight(encoded_size(m));
  EXPECT_EQ(encode(m, tight), tight.size());
  std::vector<std::byte> short_buf(encoded_size(m) - 1);
  EXPECT_THROW(encode(m, short_buf), util::InvariantError);
}

// ------------------------------------------------------- malformed frames

TEST(Wire, RejectsTruncatedHeader) {
  const std::vector<std::byte> frame = encode_to_vec(Ack{.token = 1});
  for (std::size_t keep = 0; keep < kHeaderBytes; ++keep) {
    Message out;
    const DecodeError err =
        decode(std::span<const std::byte>(frame.data(), keep), out);
    EXPECT_EQ(err.status, DecodeStatus::kTruncatedHeader) << keep;
    EXPECT_EQ(err.offset, keep);
    EXPECT_EQ(err.expected, kHeaderBytes);
    EXPECT_EQ(err.actual, keep);
  }
  Message out;
  const DecodeError err = decode(std::span<const std::byte>(frame.data(), 3), out);
  EXPECT_EQ(describe(err),
            "wire: truncated header at byte 3: need 6 header bytes, got 3");
}

TEST(Wire, RejectsBadMagic) {
  std::vector<std::byte> frame = encode_to_vec(Ack{.token = 1});
  frame[0] = std::byte{0x00};
  Message out;
  const DecodeError err = decode(frame, out);
  EXPECT_EQ(err.status, DecodeStatus::kBadMagic);
  EXPECT_EQ(err.offset, 0u);
  EXPECT_EQ(err.expected, kMagic);
}

TEST(Wire, RejectsBadVersion) {
  std::vector<std::byte> frame = encode_to_vec(Ack{.token = 1});
  frame[2] = std::byte{9};
  Message out;
  const DecodeError err = decode(frame, out);
  EXPECT_EQ(err.status, DecodeStatus::kBadVersion);
  EXPECT_EQ(err.offset, 2u);
  EXPECT_EQ(err.expected, kVersion);
  EXPECT_EQ(err.actual, 9u);
  EXPECT_EQ(describe(err), "wire: unsupported version at byte 2: expected 1, got 9");
}

TEST(Wire, RejectsBadType) {
  std::vector<std::byte> frame = encode_to_vec(Ack{.token = 1});
  for (const unsigned bad : {0u, static_cast<unsigned>(kMaxType) + 1, 255u}) {
    frame[3] = static_cast<std::byte>(bad);
    Message out;
    const DecodeError err = decode(frame, out);
    EXPECT_EQ(err.status, DecodeStatus::kBadType) << bad;
    EXPECT_EQ(err.offset, 3u);
    EXPECT_EQ(err.actual, bad);
  }
}

TEST(Wire, RejectsOversizedLength) {
  std::vector<std::byte> frame = encode_to_vec(Ack{.token = 1});
  // Patch the length field to kMaxPayload + 1 (little-endian).
  const std::size_t huge = kMaxPayload + 1;
  frame[4] = static_cast<std::byte>(huge & 0xff);
  frame[5] = static_cast<std::byte>(huge >> 8);
  Message out;
  const DecodeError err = decode(frame, out);
  EXPECT_EQ(err.status, DecodeStatus::kOversizedLength);
  EXPECT_EQ(err.offset, 4u);
  EXPECT_EQ(err.actual, huge);
  EXPECT_EQ(describe(err),
            "wire: oversized length field at byte 4: 1401 exceeds max payload 1400");
}

TEST(Wire, RejectsTruncatedPayload) {
  const std::vector<std::byte> frame =
      encode_to_vec(StatsReply{.token = 1, .host = 2});
  Message out;
  const DecodeError err = decode(
      std::span<const std::byte>(frame.data(), frame.size() - 1), out);
  EXPECT_EQ(err.status, DecodeStatus::kTruncatedPayload);
  EXPECT_EQ(err.expected, frame.size());
  EXPECT_EQ(err.actual, frame.size() - 1);
}

TEST(Wire, RejectsTrailingBytes) {
  std::vector<std::byte> frame = encode_to_vec(Ping{.token = 3});
  frame.push_back(std::byte{0x00});
  Message out;
  const DecodeError err = decode(frame, out);
  EXPECT_EQ(err.status, DecodeStatus::kTrailingBytes);
  EXPECT_EQ(err.offset, frame.size() - 1);
  EXPECT_EQ(err.actual, frame.size());
  EXPECT_EQ(err.expected, frame.size() - 1);
}

TEST(Wire, RejectsShortPayloadForType) {
  // A Welcome whose header claims only 4 payload bytes: the second field
  // is missing, which the per-type decoder must flag (not silently zero).
  std::vector<std::byte> frame = encode_to_vec(Welcome{.host_id = 1, .num_hosts = 2});
  frame.resize(kHeaderBytes + 4);
  frame[4] = std::byte{4};
  frame[5] = std::byte{0};
  Message out;
  const DecodeError err = decode(frame, out);
  EXPECT_EQ(err.status, DecodeStatus::kShortPayload);
  EXPECT_EQ(err.offset, kHeaderBytes + 4);
}

TEST(Wire, RejectsExcessPayloadForType) {
  // An Ack padded with 2 extra declared payload bytes: length field and
  // frame agree, but the Ack decoder knows its exact size.
  std::vector<std::byte> frame = encode_to_vec(Ack{.token = 5});
  frame.push_back(std::byte{0x00});
  frame.push_back(std::byte{0x00});
  const std::size_t payload = frame.size() - kHeaderBytes;
  frame[4] = static_cast<std::byte>(payload & 0xff);
  frame[5] = static_cast<std::byte>(payload >> 8);
  Message out;
  const DecodeError err = decode(frame, out);
  EXPECT_EQ(err.status, DecodeStatus::kExcessPayload);
  EXPECT_EQ(err.actual, 2u);
}

TEST(Wire, RejectsEveryTruncationOfEveryType) {
  // Exhaustive: every proper prefix of every encoded message must be
  // rejected (never accepted, never crash), and the error must carry a
  // sensible offset within the frame.
  for (const Message& m : all_messages()) {
    const std::vector<std::byte> frame = encode_to_vec(m);
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
      Message out;
      const DecodeError err =
          decode(std::span<const std::byte>(frame.data(), keep), out);
      EXPECT_FALSE(err.ok())
          << type_name(type_of(m)) << " accepted a " << keep << "-byte prefix";
      EXPECT_LE(err.offset, frame.size()) << type_name(type_of(m));
    }
  }
}

TEST(Wire, ChunkPayloadIsViewIntoFrame) {
  const std::vector<std::byte> frame =
      encode_to_vec(Chunk{.seq = 1, .emitted_at = 0.5, .payload = kChunkBody});
  Message out;
  ASSERT_TRUE(decode(frame, out).ok());
  const Chunk& chunk = std::get<Chunk>(out);
  ASSERT_EQ(chunk.payload.size(), kChunkBody.size());
  // Zero copy: the decoded span points into the input buffer.
  EXPECT_GE(chunk.payload.data(), frame.data());
  EXPECT_LT(chunk.payload.data(), frame.data() + frame.size());
}

TEST(Wire, TypeNamesAreStable) {
  EXPECT_STREQ(type_name(Type::kHello), "hello");
  EXPECT_STREQ(type_name(Type::kChunk), "chunk");
  EXPECT_STREQ(type_name(Type::kShutdown), "shutdown");
}

}  // namespace
}  // namespace vdm::wire
