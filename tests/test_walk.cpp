#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "baselines/btp_protocol.hpp"
#include "baselines/hmtp_protocol.hpp"
#include "baselines/random_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "helpers.hpp"
#include "overlay/walk.hpp"
#include "walk_golden_configs.hpp"

namespace vdm::overlay {
namespace {

using testutil::Harness;
using testutil::line_underlay;

// ------------------------------------------------------------------ fixtures

enum class ProtoKind { kVdm, kHmtp, kBtp, kRandom };

const char* proto_kind_name(ProtoKind k) {
  switch (k) {
    case ProtoKind::kVdm: return "Vdm";
    case ProtoKind::kHmtp: return "Hmtp";
    case ProtoKind::kBtp: return "Btp";
    case ProtoKind::kRandom: return "Random";
  }
  return "?";
}

std::unique_ptr<Protocol> make_protocol(ProtoKind k) {
  switch (k) {
    case ProtoKind::kVdm: return std::make_unique<core::VdmProtocol>();
    case ProtoKind::kHmtp: return std::make_unique<baselines::HmtpProtocol>();
    case ProtoKind::kBtp: return std::make_unique<baselines::BtpProtocol>();
    case ProtoKind::kRandom: return std::make_unique<baselines::RandomProtocol>();
  }
  return nullptr;
}

/// Records every walk step and asserts, online, that no walk revisits a node
/// within one operation (step == 1 marks a new walk).
class RecordingObserver final : public WalkObserver {
 public:
  void on_step(const WalkStep& s) override {
    if (s.step == 1) current_walk_.clear();
    EXPECT_EQ(std::count(current_walk_.begin(), current_walk_.end(), s.node), 0)
        << "walk for joiner " << s.joiner << " revisited node " << s.node;
    current_walk_.push_back(s.node);
    steps_.push_back(s);
  }

  const std::vector<WalkStep>& steps() const { return steps_; }

  /// The first step at or after index `from` (the start of the walk issued
  /// after `from` steps had been recorded).
  const WalkStep& first_step_since(std::size_t from) const {
    EXPECT_LT(from, steps_.size());
    return steps_[from];
  }

 private:
  std::vector<net::HostId> current_walk_;
  std::vector<WalkStep> steps_;
};

/// A 24-host underlay with deterministic, irregular pairwise distances (no
/// ties, no 1-D shortcuts a protocol could exploit).
net::MatrixUnderlay scattered_underlay() {
  std::vector<double> position;
  for (int i = 0; i < 24; ++i) {
    position.push_back(static_cast<double>((i * 37) % 101) +
                       0.01 * static_cast<double>(i));
  }
  return line_underlay(position);
}

class WalkInvariants : public ::testing::TestWithParam<ProtoKind> {};

// -------------------------------------------------------- engine invariants

TEST_P(WalkInvariants, NoRevisitAndNoSaturatedParentUnderChurn) {
  const std::unique_ptr<Protocol> proto = make_protocol(GetParam());
  RecordingObserver obs;
  proto->set_walk_observer(&obs);
  Harness h(scattered_underlay(), *proto, /*source_degree=*/3);

  // Tight degree limits force saturated-node fallbacks; leaves force
  // reconnection walks (the observer asserts no-revisit on every step).
  for (net::HostId n = 1; n <= 16; ++n) h.join(n, 3);
  h.session.leave(3);
  h.session.leave(5);
  h.session.leave(1);
  for (net::HostId n = 17; n <= 20; ++n) h.join(n, 3);

  EXPECT_FALSE(obs.steps().empty());
  const Membership& tree = h.session.tree();
  for (const net::HostId m : tree.alive_members()) {
    const MemberState& ms = tree.member(m);
    EXPECT_LE(ms.overlay_links(), ms.degree_limit)
        << "member " << m << " over its degree limit";
  }
}

TEST_P(WalkInvariants, TerminatesUnderFullDegreeTrees) {
  const std::unique_ptr<Protocol> proto = make_protocol(GetParam());
  RecordingObserver obs;
  proto->set_walk_observer(&obs);
  Harness h(scattered_underlay(), *proto, /*source_degree=*/2);

  // Degree limit 2 everywhere: each member feeds at most one child beyond
  // its uplink, so the tree degenerates into chains and every join past the
  // first must walk deep and terminate via the capacity ladder.
  for (net::HostId n = 1; n <= 18; ++n) h.join(n, 2);

  const Membership& tree = h.session.tree();
  EXPECT_EQ(tree.alive_members().size(), 19u);
  for (const WalkStep& s : obs.steps()) {
    EXPECT_LE(s.step, 20) << "walk ran longer than the member count";
  }
}

TEST_P(WalkInvariants, StartFallbackEngagesForDeadAndSaturatedStarts) {
  const std::unique_ptr<Protocol> proto = make_protocol(GetParam());
  RecordingObserver obs;
  proto->set_walk_observer(&obs);
  Harness h(scattered_underlay(), *proto, /*source_degree=*/4);

  for (net::HostId n = 1; n <= 6; ++n) h.join(n, 4);
  // A degree-limit-1 member is a pure leaf: its single link is the uplink,
  // so its subtree has no attachment point at all.
  const net::HostId saturated_leaf = 7;
  h.join(saturated_leaf, 1);

  Membership& tree = h.session.tree();

  // Saturated start: the walk must restart from the source, not dead-end.
  std::size_t mark = obs.steps().size();
  tree.activate(20, 4);
  proto->execute_join(h.session, 20, saturated_leaf);
  EXPECT_EQ(obs.first_step_since(mark).node, h.session.source());
  EXPECT_EQ(obs.first_step_since(mark).step, 1);

  // Dead start (host 21 was never activated): same source fallback.
  mark = obs.steps().size();
  tree.activate(22, 4);
  proto->execute_join(h.session, 22, /*start=*/21);
  EXPECT_EQ(obs.first_step_since(mark).node, h.session.source());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, WalkInvariants,
                         ::testing::Values(ProtoKind::kVdm, ProtoKind::kHmtp,
                                           ProtoKind::kBtp, ProtoKind::kRandom),
                         [](const ::testing::TestParamInfo<ProtoKind>& param_info) {
                           return proto_kind_name(param_info.param);
                         });

// ------------------------------------------------- shared has-room predicate

/// Minimal policy: asserts the engine's view of the current node's room and
/// stops there (attaching is the caller's business in this test).
struct ProbeRoomPolicy {
  bool expect_room = false;
  void on_start(TreeWalk&, OpStats&) {}
  TreeWalk::Action step(TreeWalk& w, OpStats&) {
    EXPECT_EQ(w.can_accept(w.cur()), expect_room);
    return TreeWalk::Action::stop(WalkDecision::kAttach, w.cur());
  }
};

TEST(WalkPredicate, OwnParentCountsAsHavingRoomEvenWhenFull) {
  // P (host 1, limit 2) carries its uplink + child N -> full. N re-walking
  // from P must still see room there (the self-parent allowance the Random
  // baseline used to miss), while a stranger must not.
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 12.0, 30.0}), vdm);
  ASSERT_EQ(h.join(1, 2), 0u);
  ASSERT_EQ(h.join(2, 2), 1u);  // N = 2 under P = 1; P now full
  ASSERT_EQ(h.join(3, 2), 2u);  // keeps P's subtree capacity-bearing
  ASSERT_FALSE(h.session.tree().member(1).has_free_degree());

  OpStats stats;
  TreeWalk walk_as_child(h.session);
  ProbeRoomPolicy sees_room{/*expect_room=*/true};
  EXPECT_EQ(walk_as_child.run(2, 1, stats, sees_room).parent, 1u);

  // Host 3's parent is 2, not 1 — no allowance at 1 for it.
  TreeWalk walk_as_stranger(h.session);
  ProbeRoomPolicy sees_full{/*expect_room=*/false};
  EXPECT_EQ(walk_as_stranger.run(3, 1, stats, sees_full).parent, 1u);
}

// -------------------------------------------------- span-out measure overload

TEST(WalkMeasure, SpanOutOverloadMatchesVectorOverloadAndReusesCapacity) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0, 40.0}), vdm);
  for (net::HostId n = 1; n <= 4; ++n) h.join(n);

  const std::vector<net::HostId> targets{1, 2, 3, 4};
  OpStats s1, s2;
  const std::vector<double> vec = h.session.measure_parallel(2, targets, s1);
  std::vector<double> out;
  const std::span<const double> spanned =
      h.session.measure_parallel(2, targets, out, s2);
  ASSERT_EQ(vec.size(), spanned.size());
  for (std::size_t i = 0; i < vec.size(); ++i) EXPECT_EQ(vec[i], spanned[i]);
  EXPECT_EQ(s1.messages, s2.messages);
  EXPECT_EQ(s1.elapsed, s2.elapsed);

  // Steady-state reuse: a second call into the same buffer must not grow it.
  const std::size_t cap = out.capacity();
  h.session.measure_parallel(2, targets, out, s2);
  EXPECT_EQ(out.capacity(), cap);
}

// ------------------------------------------------------------- walk tracing

TEST(WalkTrace, VdmDescendThenAttachIsReportedStepByStep) {
  // Figure 3.9 worked example: N beyond child C1 -> Case III descend to C1,
  // then Case I attach there.
  core::VdmProtocol vdm;
  RecordingObserver obs;
  vdm.set_walk_observer(&obs);
  Harness h(line_underlay({0.0, 10.0, 18.0}), vdm);
  ASSERT_EQ(h.join(1), 0u);
  const std::size_t mark = obs.steps().size();
  ASSERT_EQ(h.join(2), 1u);

  ASSERT_EQ(obs.steps().size(), mark + 2);
  const WalkStep& first = obs.steps()[mark];
  EXPECT_EQ(first.joiner, 2u);
  EXPECT_EQ(first.node, 0u);
  EXPECT_EQ(first.step, 1);
  EXPECT_EQ(first.probes, 2);  // source + one kid
  EXPECT_EQ(first.decision, WalkDecision::kDirectionalDescend);
  EXPECT_EQ(first.next, 1u);
  const WalkStep& second = obs.steps()[mark + 1];
  EXPECT_EQ(second.node, 1u);
  EXPECT_EQ(second.step, 2);
  EXPECT_EQ(second.decision, WalkDecision::kAttach);
  EXPECT_EQ(second.next, 1u);
}

// ------------------------------------------------------- hexfloat bit-equality

/// run_once scalars recorded on the pre-TreeWalk hand-rolled protocol loops
/// (field order: testutil::run_result_scalars). The engine port must keep
/// every corner bit-identical — same measurement order, same rng draw order.
struct GoldenRun {
  const char* name;
  std::array<double, 23> want;
};

constexpr GoldenRun kGoldens[] = {
    {"fig3-vdm",
     {0x1.03489695d5145p+1, 0x1.835e50d79435ep+2, 0x1.28aac54e39a5p+1,
      0x1.571c4ad74abfep+1, 0x1.4f6b5886bcf9dp+2, 0x1p+0,
      0x1.7047dc11f7047p+2, 0x1.b17f126789p+2, 0x1.59435e50d7943p+3,
      0x1.0765cc70e93f9p-2, 0x1.1eef03da864cfp-7, 0x1.507019de95d3dp-2,
      0x1.bd4fc9f7f6905p+1, 0x1.25ee56359e71fp+1, 0x1.664d7696f627ap+2,
      0x1.add62870d85e5p-1, 0x1.29f241f7d9f5dp+2, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.9104e50ad22e8p+0, 0x1.88p+5}},
    {"fig3-hmtp",
     {0x1.cf5fd1e087bf9p+0, 0x1.179435e50d794p+2, 0x1.3a1030885ce25p+1,
      0x1.4eae20b07f6d3p+1, 0x1.1217572287192p+2, 0x1p+0,
      0x1.d411f7047dc11p+2, 0x1.12f9bc84e1a03p+3, 0x1.ad79435e50d79p+3,
      0x1.3405e9d39be9dp-2, 0x1.a2b0dfd487c04p-2, 0x1.cad2ba79cd56cp+3,
      0x1.265a243fc6025p+1, 0x1.6297b1695f43bp+1, 0x1.98ea0dfd2f98cp+2,
      0x1.6f68bba60d8e7p-1, 0x1.9306c0eb2cef8p+1, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.2647be5d44e65p+0, 0x1.88p+5}},
    {"fig3-btp",
     {0x1.131fb688d19bdp+1, 0x1.b5e50d79435e5p+2, 0x1.8aedb418b321bp+1,
      0x1.c22bab0e1be6ap+1, 0x1.2960e28816f7ap+3, 0x1p+0,
      0x1.4835e50d79436p+2, 0x1.8acce0aa03ff3p+2, 0x1.5ca1af286bca2p+3,
      0x1.0bdab20deb51p-2, 0x1.46be87751d363p-4, 0x1.81366f05edadp+1,
      0x1.152e2ecb2c158p+2, 0x1.0e9aa07b3087fp+0, 0x1.4dad5da9085bep+1,
      0x1.67aa0381a1aacp-1, 0x1.c8350ec23437ep+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.1a405fd0f64d4p+1, 0x1.88p+5}},
    {"fig3-random",
     {0x1.4c226464d25c2p+1, 0x1.0d79435e50d79p+4, 0x1.09b1bfd9ce1bbp+2,
      0x1.4b39af455a51dp+2, 0x1.2ce0504ea2e6p+4, 0x1p+0,
      0x1.9f9435e50d794p+1, 0x1.f424fd07fc6afp+1, 0x1.abca1af286bcap+2,
      0x1.c79dc364c0f0fp-3, 0x1.b824cc9aa138p-9, 0x1.14bfdd81e2e5ap-3,
      0x1.c229be1bbb54p+2, 0x1.83075734d41efp+0, 0x1.9d8672654a3e6p+1,
      0x1.44044cbb3af3bp+0, 0x1.9be891a58bd18p+1, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.ec0f272e4ed53p+1, 0x1.88p+5}},
    {"degree2-vdm",
     {0x1.fb9c9cdb71c3dp+0, 0x1.179435e50d794p+2, 0x1.53352943c1af3p+2,
      0x1.6bffb337b002p+2, 0x1.b26d3ddb52ae3p+3, 0x1p+0,
      0x1.68b3a62ce98b3p+3, 0x1.9435e50d79436p+3, 0x1.c79435e50d794p+4,
      0x1.1226e380de565p-8, 0x1.3fcef53dec701p-8, 0x1.df64c87d09298p-3,
      0x1.be701ae8b1885p+1, 0x1.398e113e72621p+2, 0x1.6fe693842fcbap+4,
      0x1.218cafaf876dap+0, 0x1.419c7bd5d77a7p+4, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.066d9c46e7341p+1, 0x1.88p+5}},
    {"degree2-hmtp",
     {0x1.2203a18c15419p+1, 0x1.15e50d79435e5p+3, 0x1.4ebf086804f4p+3,
      0x1.29864286c4d27p+3, 0x1.11682f8c496bfp+5, 0x1p+0,
      0x1.974c59d31674dp+3, 0x1.8p+3, 0x1.de50d79435e51p+4,
      0x1.fdb96f8cbdaf3p-11, 0x1.0470bff5fcd4ep-1, 0x1.875a46102b1dcp+4,
      0x1.42e12b4a56118p+2, 0x1.2f5d76075f598p+3, 0x1.99737efd91576p+4,
      0x1.93002626b7aa7p-1, 0x1.793fd9200633cp+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.54e5b419d2384p+1, 0x1.88p+5}},
    {"degree2-btp",
     {0x1.16da425cf8273p+1, 0x1.b5e50d79435e5p+2, 0x1.872e0034b0c83p+2,
      0x1.67be7fc05ea1ap+3, 0x1.637200b7822e1p+5, 0x1p+0,
      0x1.c4d79435e50d9p+2, 0x1.435e50d79435dp+3, 0x1.1a1af286bca1bp+4,
      0x1.d8e6c87a0da1bp-12, 0x1.94de599b110d8p-5, 0x1.303a34d11c908p+1,
      0x1.1f7e939c01f21p+2, 0x1.0211bcc04b8eap+2, 0x1.c90b4543bfb0fp+3,
      0x1.453be118f2205p-1, 0x1.18d1bf9335804p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.2c4fe05f20ea4p+1, 0x1.88p+5}},
    {"degree2-random",
     {0x1.46925f76726f1p+1, 0x1.dca1af286bca2p+3, 0x1.34eb2302b269cp+3,
      0x1.cf51be14ff667p+3, 0x1.05709b6354611p+7, 0x1p+0,
      0x1.67a62ce98b3a7p+2, 0x1.373dfa9c4b73dp+3, 0x1.aa1af286bca1bp+3,
      0x1.133cf427a5f5ep-11, 0x1.befff9b99bbap-10, 0x1.50089f87469a3p-4,
      0x1.d3f17e613fff8p+2, 0x1.71235f57292dfp+1, 0x1.74151565fdff9p+2,
      0x1.f7df665627794p-1, 0x1.699ef9874f292p+1, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.e8a17b7933e9bp+1, 0x1.88p+5}},
    {"fig5-vdmr",
     {0x1p+0, 0x1p+0, 0x1.2b7d4d1a81953p+0,
      0x1.4aafce7c8acc5p+0, 0x1.f68eea3f52a76p+0, 0x1.63375ed88fe23p-1,
      0x1.b0a1af286bca2p+1, 0x1.0ec065981c435p+2, 0x1.a1af286bca1afp+2,
      0x1.cb1582266ap-14, 0x1.30bd58dcd8242p-4, 0x1.312ff76078b96p+1,
      0x1.ad0920c6b958p-3, 0x1.b13740ac3ed76p-3, 0x1.1413ee0d8c058p-1,
      0x1.87fac6e2dde79p-4, 0x1.14bb96507597p-1, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.c6a58ba84e4c2p+0, 0x1.08p+5}},
    {"fig5-hmtp",
     {0x1p+0, 0x1p+0, 0x1.5425948d879e1p+0,
      0x1.6d7265bd01b19p+0, 0x1.63df16bf7657cp+1, 0x1.808526f67b0e2p-1,
      0x1.1faf286bca1afp+2, 0x1.56e2d51124f9cp+2, 0x1.3e50d79435e51p+3,
      0x1.33b4552b441afp-14, 0x1.8a98596cdc81ap-3, 0x1.8b13f0e8d3447p+2,
      0x1.46751fe12906ep-3, 0x1.16e9ff46b931dp-2, 0x1.7285262cabf08p-1,
      0x1.83a0e7739a20bp-4, 0x1.4ac41feb92513p-2, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.adb77ed41f2ddp+0, 0x1.08p+5}},
    {"fig5-btp",
     {0x1p+0, 0x1p+0, 0x1.df75b4037b4efp+0,
      0x1.fa34cd027dea3p+0, 0x1.0e8e0ded36747p+2, 0x1.9a7479559220ap-1,
      0x1.34f286bca1af3p+2, 0x1.726f840f86c9dp+2, 0x1.4p+3,
      0x1.350f8b11af943p-16, 0x1.e1f923b5f89bdp-5, 0x1.e2bec990fa127p+0,
      0x1.9c0bf82333cp-2, 0x1.3de37cb7e9441p-3, 0x1.4cff91feb7362p-2,
      0x1.f21fab1929f13p-4, 0x1.5df8f34767983p-2, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.02fde2d6bc17dp+2, 0x1.08p+5}},
    {"fig5-random",
     {0x1p+0, 0x1p+0, 0x1.20479ca78ae28p+2,
      0x1.28172e74afadap+2, 0x1.e22ec757abfd3p+4, 0x1.8720e4354122bp-1,
      0x1.5ef286bca1af3p+1, 0x1.acf9565206cf8p+1, 0x1.5435e50d79436p+2,
      0x1.e1889141c06bdp-16, 0x1.5adf4dbeb2103p-10, 0x1.5b9efd4e25bap-5,
      0x1.4fae54a5af482p-1, 0x1.adf52100aee4bp-3, 0x1.0629e65109d08p-1,
      0x1.4c61b2a5fc374p-3, 0x1.a3422e4f7d4b2p-2, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.64711fce399afp+2, 0x1.08p+5}},
    {"crash-vdm",
     {0x1.e94d361019c42p+0, 0x1.d0d79435e50d8p+2, 0x1.bdf71ef6f656p+0,
      0x1.0002926ad774ep+1, 0x1.48e8741addcd6p+2, 0x1p+0,
      0x1.fp+1, 0x1.1e5096f9118d8p+2, 0x1.daf286bca1af3p+2,
      0x1.0b8cef900d3p-8, 0x1.026dac905573cp+0, 0x1.817e8494bfdd8p+5,
      0x1.a3b26b51539d5p+1, 0x1.a11fb2f208addp+0, 0x1.08402b40551fdp+2,
      0x1.ab66e7144eb66p-1, 0x1.84838b10d21a1p+1, 0x1.7c3f74f0cfd3cp+1,
      0x1.bc28bbc62d8p+1, 0x1.e7192eb5e3817p+1, 0x1.6cdabf1caf5c3p+2,
      0x1.dd27ea91a84f7p+0, 0x1.88p+5}},
    {"crash-hmtp",
     {0x1.be5ac76df713bp+0, 0x1.6bca1af286bcap+2, 0x1.9bffd7d4b20d3p+0,
      0x1.b7c62da538b68p+0, 0x1.5966f6afd8e9dp+1, 0x1p+0,
      0x1.f0d79435e50d8p+1, 0x1.1ce1a7d7db8b6p+2, 0x1.daf286bca1af3p+2,
      0x1.ca1f8a6c98c28p-9, 0x1.41da53c2a2f03p+0, 0x1.e06b40227e1d3p+5,
      0x1.1ed8adedad69dp+1, 0x1.b5dda9756409bp+0, 0x1.027be57598842p+2,
      0x1.a47b42da48d3cp-1, 0x1.6f8b01689e297p+1, 0x1.7ca15764445ebp+1,
      0x1.bf1398763cp+1, 0x1.e5c0281ad6934p+1, 0x1.57c580b44f14cp+2,
      0x1.1eb2dc86a85d6p+0, 0x1.88p+5}},
};

class WalkGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WalkGolden, RunOnceScalarsBitIdenticalToPrePortLoops) {
  const GoldenRun& golden = kGoldens[GetParam()];
  const std::vector<testutil::NamedRunConfig> configs =
      testutil::walk_golden_configs();
  const auto it =
      std::find_if(configs.begin(), configs.end(),
                   [&](const auto& c) { return c.name == golden.name; });
  ASSERT_NE(it, configs.end()) << golden.name;

  const experiments::RunResult r = experiments::run_once(it->cfg);
  const std::vector<double> got = testutil::run_result_scalars(r);
  ASSERT_EQ(got.size(), golden.want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], golden.want[i])
        << golden.name << " scalar #" << i << " drifted";
  }
}

INSTANTIATE_TEST_SUITE_P(AllCorners, WalkGolden,
                         ::testing::Range(std::size_t{0}, std::size(kGoldens)),
                         [](const ::testing::TestParamInfo<std::size_t>& param_info) {
                           std::string name = kGoldens[param_info.param].name;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace vdm::overlay
