#include "core/directionality.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace vdm::core {
namespace {

// Pairwise distances as (d_np, d_nc, d_pc) — newcomer-parent,
// newcomer-child, parent-child.

TEST(Directionality, CaseIWhenParentSeparates) {
  // N --- P --- C: d_nc is the longest.
  EXPECT_EQ(classify_direction(1.0, 2.0, 1.0), DirCase::kCaseI);
}

TEST(Directionality, CaseIIWhenNewcomerBetween) {
  // P --- N --- C: d_pc is the longest.
  EXPECT_EQ(classify_direction(1.0, 1.0, 2.0), DirCase::kCaseII);
}

TEST(Directionality, CaseIIIWhenChildBetween) {
  // P --- C --- N: d_np is the longest.
  EXPECT_EQ(classify_direction(2.0, 1.0, 1.0), DirCase::kCaseIII);
}

TEST(Directionality, RealRttsNeverSumExactly) {
  // "Longer distance is generally not equal to the sum of shorter
  // distances" (§3.1.2) — classification only needs the longest side.
  EXPECT_EQ(classify_direction(0.080, 0.030, 0.055), DirCase::kCaseIII);
  EXPECT_EQ(classify_direction(0.030, 0.035, 0.090), DirCase::kCaseII);
  EXPECT_EQ(classify_direction(0.050, 0.110, 0.065), DirCase::kCaseI);
}

TEST(Directionality, EquilateralDegradesToCaseI) {
  EXPECT_EQ(classify_direction(1.0, 1.0, 1.0), DirCase::kCaseI);
}

TEST(Directionality, NearTieWithinEpsilonDegradesToCaseI) {
  // d_pc leads by less than the 2% default margin -> too ambiguous.
  EXPECT_EQ(classify_direction(1.00, 1.00, 1.01), DirCase::kCaseI);
  EXPECT_EQ(classify_direction(1.01, 1.00, 1.00), DirCase::kCaseI);
}

TEST(Directionality, ClearMarginTriggersDirectionalCases) {
  EXPECT_EQ(classify_direction(1.0, 1.0, 1.5, 0.02), DirCase::kCaseII);
  EXPECT_EQ(classify_direction(1.5, 1.0, 1.0, 0.02), DirCase::kCaseIII);
}

TEST(Directionality, EpsilonZeroIsStrictComparison) {
  EXPECT_EQ(classify_direction(1.0, 1.0, 1.0 + 1e-9, 0.0), DirCase::kCaseII);
}

TEST(Directionality, LargeEpsilonSuppressesAll) {
  EXPECT_EQ(classify_direction(1.0, 1.0, 1.4, 0.5), DirCase::kCaseI);
  EXPECT_EQ(classify_direction(1.4, 1.0, 1.0, 0.5), DirCase::kCaseI);
}

TEST(Directionality, ZeroDistancesAreCaseI) {
  EXPECT_EQ(classify_direction(0.0, 0.0, 0.0), DirCase::kCaseI);
}

TEST(Directionality, RejectsNegativeInputs) {
  EXPECT_THROW(classify_direction(-1.0, 1.0, 1.0), util::InvariantError);
  EXPECT_THROW(classify_direction(1.0, 1.0, 1.0, -0.1), util::InvariantError);
}

TEST(Directionality, ScaleInvariantWithRelativeEpsilon) {
  for (const double scale : {1e-3, 1.0, 1e3}) {
    EXPECT_EQ(classify_direction(1.0 * scale, 1.0 * scale, 1.5 * scale),
              DirCase::kCaseII);
    EXPECT_EQ(classify_direction(1.5 * scale, 1.0 * scale, 1.0 * scale),
              DirCase::kCaseIII);
    EXPECT_EQ(classify_direction(1.0 * scale, 1.5 * scale, 1.0 * scale),
              DirCase::kCaseI);
  }
}

TEST(Directionality, ExactlyOneCaseForRandomTriples) {
  // Classification is a total function: any triple maps to exactly one case
  // (trivially true by construction, but guards against future edits
  // introducing unreachable regions).
  for (int a = 1; a <= 5; ++a) {
    for (int b = 1; b <= 5; ++b) {
      for (int c = 1; c <= 5; ++c) {
        const DirCase result = classify_direction(a, b, c);
        EXPECT_TRUE(result == DirCase::kCaseI || result == DirCase::kCaseII ||
                    result == DirCase::kCaseIII);
      }
    }
  }
}

}  // namespace
}  // namespace vdm::core
