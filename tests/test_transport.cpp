// Transport seam tests (DESIGN.md §14): the SimReactor's 1:1 delegation
// contract, PeriodicTimer's equivalence with sim::Periodic, the UdpReactor
// over real loopback sockets, and the RetrySender's retransmission schedule
// (driven deterministically on the DES backend).

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "sim/simulator.hpp"
#include "transport/sim_reactor.hpp"
#include "transport/transport.hpp"
#include "transport/udp.hpp"
#include "util/require.hpp"
#include "wire/wire.hpp"

namespace vdm {
namespace {

using transport::PeerAddr;

// ----------------------------------------------------------------- SimReactor

TEST(SimReactor, DelegatesOneToOne) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);

  std::vector<int> order;
  const transport::TimerId a = reactor.schedule_at(2.0, [&] { order.push_back(2); });
  reactor.schedule_at(1.0, [&] { order.push_back(1); });
  reactor.schedule_in(3.0, [&] { order.push_back(3); });
  EXPECT_NE(a, transport::kInvalidTimer);
  EXPECT_EQ(reactor.now(), sim.now());

  // A timer id from the reactor cancels through the reactor — same slab.
  reactor.cancel(a);
  EXPECT_EQ(reactor.run_until(10.0), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(reactor.now(), 10.0);
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(SimReactor, UnboundUseTrips) {
  transport::SimReactor reactor;
  EXPECT_FALSE(reactor.bound());
  EXPECT_THROW(reactor.now(), util::InvariantError);
  EXPECT_THROW(reactor.schedule_in(1.0, [] {}), util::InvariantError);
}

// The seam's determinism contract: the same schedule through the reactor
// and through the raw simulator produces identical event ids — proof that
// no extra slot, sequence number or reordering sneaks in at the seam.
TEST(SimReactor, IdsMatchRawSimulatorExactly) {
  sim::Simulator raw;
  sim::Simulator wrapped_sim;
  transport::SimReactor wrapped(&wrapped_sim);

  for (int i = 0; i < 50; ++i) {
    const sim::Time t = 0.1 * static_cast<double>(i % 7);
    const sim::EventId a = raw.schedule_in(t, [] {});
    const transport::TimerId b = wrapped.schedule_in(t, [] {});
    EXPECT_EQ(a, b);
    if (i % 3 == 0) {
      raw.cancel(a);
      wrapped.cancel(b);
    }
  }
  EXPECT_EQ(raw.run_until(1.0), wrapped.run_until(1.0));
}

// -------------------------------------------------------------- PeriodicTimer

TEST(PeriodicTimer, MatchesSimPeriodicFireTimes) {
  sim::Simulator sim_a;
  std::vector<sim::Time> fires_a;
  sim::Periodic periodic(sim_a, 0.25, [&] { fires_a.push_back(sim_a.now()); });

  sim::Simulator sim_b;
  transport::SimReactor reactor(&sim_b);
  std::vector<sim::Time> fires_b;
  transport::PeriodicTimer timer(reactor, 0.25,
                                 [&] { fires_b.push_back(reactor.now()); });

  sim_a.run_until(2.0);
  reactor.run_until(2.0);
  ASSERT_FALSE(fires_a.empty());
  EXPECT_EQ(fires_a, fires_b);
}

TEST(PeriodicTimer, StopFromInsideTickSuppressesRearm) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);
  int ticks = 0;
  transport::PeriodicTimer* self = nullptr;
  transport::PeriodicTimer timer(reactor, 0.1, [&] {
    if (++ticks == 3) self->stop();
  });
  self = &timer;
  reactor.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StopBeforeFirstTickFiresNothing) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);
  int ticks = 0;
  transport::PeriodicTimer timer(reactor, 0.5, [&] { ++ticks; });
  timer.stop();
  reactor.run_until(5.0);
  EXPECT_EQ(ticks, 0);
}

// ----------------------------------------------------------------- BufferPool

TEST(BufferPool, RecyclesSlots) {
  transport::BufferPool pool;
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  EXPECT_NE(a.slot, b.slot);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(a.bytes.size(), transport::BufferPool::kBufferBytes);

  pool.release(a.slot);
  EXPECT_EQ(pool.in_use(), 1u);
  const auto c = pool.acquire();
  EXPECT_EQ(c.slot, a.slot);  // LIFO reuse, no new slab
  EXPECT_EQ(pool.capacity(), 2u);
  pool.release(b.slot);
  pool.release(c.slot);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(BufferPool, DoubleCapacityGrowsButKeepsOldSlabs) {
  transport::BufferPool pool;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(pool.acquire().slot);
  EXPECT_EQ(pool.capacity(), 8u);
  for (const std::uint32_t s : slots) pool.release(s);
  for (int i = 0; i < 8; ++i) pool.acquire();
  EXPECT_EQ(pool.capacity(), 8u);  // steady state: zero new slabs
}

// ------------------------------------------------------------------ PeerAddr

TEST(PeerAddr, ParseAndFormatRoundTrip) {
  const PeerAddr a = transport::parse_peer("127.0.0.1:9000");
  EXPECT_EQ(a.ip, 0x7f000001u);
  EXPECT_EQ(a.port, 9000);
  EXPECT_EQ(transport::format_peer(a), "127.0.0.1:9000");

  // Bare port binds loopback.
  const PeerAddr b = transport::parse_peer("8080");
  EXPECT_EQ(b.ip, 0x7f000001u);
  EXPECT_EQ(b.port, 8080);

  EXPECT_THROW(transport::parse_peer("not-an-ip:1"), util::InvariantError);
  EXPECT_THROW(transport::parse_peer("127.0.0.1:99999"), util::InvariantError);
  EXPECT_THROW(transport::parse_peer("127.0.0.1:pony"), util::InvariantError);
}

// ----------------------------------------------------------------- UdpReactor

TEST(UdpReactor, LoopbackPingPong) {
  transport::UdpReactor reactor;
  transport::UdpSocket a(PeerAddr{0x7f000001, 0});
  transport::UdpSocket b(PeerAddr{0x7f000001, 0});
  ASSERT_NE(a.local_addr().port, 0);
  ASSERT_NE(b.local_addr().port, 0);

  std::vector<std::uint32_t> b_saw;
  bool a_saw_pong = false;
  reactor.add_socket(a, [&](const PeerAddr&, std::span<const std::byte> f) {
    wire::Message m;
    ASSERT_TRUE(wire::decode(f, m).ok());
    ASSERT_TRUE(std::holds_alternative<wire::Pong>(m));
    a_saw_pong = true;
    reactor.stop();
  });
  reactor.add_socket(b, [&](const PeerAddr& from, std::span<const std::byte> f) {
    wire::Message m;
    ASSERT_TRUE(wire::decode(f, m).ok());
    const auto& ping = std::get<wire::Ping>(m);
    b_saw.push_back(ping.token);
    std::array<std::byte, wire::kMaxFrame> buf;
    const std::size_t n = wire::encode(wire::Pong{.token = ping.token}, buf);
    b.send(from, std::span<const std::byte>(buf.data(), n));
  });

  std::array<std::byte, wire::kMaxFrame> buf;
  const std::size_t n = wire::encode(wire::Ping{.token = 7}, buf);
  ASSERT_TRUE(a.send(b.local_addr(), std::span<const std::byte>(buf.data(), n)));
  reactor.run_until(5.0);  // stop() fires on the pong, long before 5s
  EXPECT_TRUE(a_saw_pong);
  EXPECT_EQ(b_saw, (std::vector<std::uint32_t>{7}));
}

TEST(UdpReactor, TimersFireInOrderAndNowNeverRewinds) {
  transport::UdpReactor reactor;
  std::vector<int> order;
  std::vector<transport::Time> at;
  reactor.schedule_in(0.02, [&] { order.push_back(2); at.push_back(reactor.now()); });
  reactor.schedule_in(0.01, [&] { order.push_back(1); at.push_back(reactor.now()); });
  const transport::TimerId dead = reactor.schedule_in(0.015, [&] { order.push_back(9); });
  reactor.cancel(dead);
  EXPECT_EQ(reactor.run_until(0.05), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_EQ(at.size(), 2u);
  EXPECT_GE(at[0], 0.01);
  EXPECT_GE(at[1], 0.02);
  EXPECT_LE(at[0], at[1]);
  EXPECT_GE(reactor.now(), 0.05);
}

TEST(UdpReactor, ScheduleAtInThePastClampsInsteadOfThrowing) {
  transport::UdpReactor reactor;
  // Burn a little wall clock so "now" is past the target.
  reactor.run_until(0.01);
  int fired = 0;
  reactor.schedule_at(0.0, [&] { ++fired; });
  reactor.run_until(0.02);
  EXPECT_EQ(fired, 1);
}

TEST(UdpReactor, PumpIoDeliversDatagramsButFiresNoTimers) {
  transport::UdpReactor reactor;
  transport::UdpSocket a(PeerAddr{0x7f000001, 0});
  transport::UdpSocket b(PeerAddr{0x7f000001, 0});
  int datagrams = 0;
  int timer_fired = 0;
  reactor.add_socket(b, [&](const PeerAddr&, std::span<const std::byte>) {
    ++datagrams;
  });
  reactor.add_socket(a, [](const PeerAddr&, std::span<const std::byte>) {});
  reactor.schedule_in(0.0, [&] { ++timer_fired; });

  std::array<std::byte, wire::kMaxFrame> buf;
  const std::size_t n = wire::encode(wire::Ping{.token = 1}, buf);
  ASSERT_TRUE(a.send(b.local_addr(), std::span<const std::byte>(buf.data(), n)));
  EXPECT_GE(reactor.pump_io(1.0), 1u);
  EXPECT_EQ(datagrams, 1);
  EXPECT_EQ(timer_fired, 0);  // the due timer waits for run_until
  reactor.run_until(reactor.now());
  EXPECT_EQ(timer_fired, 1);
}

// ---------------------------------------------------------------- RetrySender

/// In-memory transport: records every frame so the retransmission schedule
/// can be asserted deterministically (driven on the DES backend).
class RecordingTransport final : public transport::Transport {
 public:
  bool send(const PeerAddr& to, std::span<const std::byte> frame) override {
    sends.push_back({to, std::vector<std::byte>(frame.begin(), frame.end())});
    return true;
  }
  PeerAddr local_addr() const override { return PeerAddr{0x7f000001, 1}; }

  struct Sent {
    PeerAddr to;
    std::vector<std::byte> frame;
  };
  std::vector<Sent> sends;
};

TEST(RetrySender, RetransmitsOnScheduleUntilCompleted) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);
  RecordingTransport transport;
  transport::BufferPool pool;
  transport::RetryPolicy policy;  // 0.25s, x2, cap 4s, 8 retries
  transport::RetrySender sender(reactor, transport, pool, policy);

  const std::uint32_t token = sender.next_token();
  const PeerAddr to{0x7f000001, 4242};
  sender.send_tracked(token, to, wire::Ack{.token = token});
  EXPECT_EQ(transport.sends.size(), 1u);
  EXPECT_EQ(sender.in_flight(), 1u);

  // First retransmit at 0.25, second at 0.25 + 0.5.
  reactor.run_until(0.8);
  EXPECT_EQ(transport.sends.size(), 3u);
  EXPECT_EQ(sender.retransmissions(), 2u);

  // Every copy is byte-identical, to the same peer.
  for (const auto& s : transport.sends) {
    EXPECT_EQ(s.to, to);
    EXPECT_EQ(s.frame, transport.sends[0].frame);
  }

  EXPECT_TRUE(sender.complete(token));
  EXPECT_EQ(sender.in_flight(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);  // buffer back in the pool
  reactor.run_until(60.0);
  EXPECT_EQ(transport.sends.size(), 3u);  // silence after completion
  EXPECT_FALSE(sender.complete(token));   // late duplicate reply
}

TEST(RetrySender, GivesUpAfterRetryBudget) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);
  RecordingTransport transport;
  transport::BufferPool pool;
  transport::RetryPolicy policy;
  policy.max_retries = 3;
  transport::RetrySender sender(reactor, transport, pool, policy);

  const std::uint32_t token = sender.next_token();
  sender.send_tracked(token, PeerAddr{0x7f000001, 4242},
                      wire::Shutdown{.token = token});
  reactor.run_until(120.0);
  // Initial send + max_retries retransmissions, then the give-up.
  EXPECT_EQ(transport.sends.size(), 4u);
  EXPECT_EQ(sender.retransmissions(), 3u);
  EXPECT_EQ(sender.give_ups(), 1u);
  EXPECT_EQ(sender.in_flight(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(RetrySender, BackoffCapsAtTimeoutMax) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);
  RecordingTransport transport;
  transport::BufferPool pool;
  transport::RetryPolicy policy;  // 0.25 -> 0.5 -> 1 -> 2 -> 4 -> 4 -> ...
  transport::RetrySender sender(reactor, transport, pool, policy);

  const std::uint32_t token = sender.next_token();
  sender.send_tracked(token, PeerAddr{0x7f000001, 4242},
                      wire::Ack{.token = token});
  // Cumulative schedule: 0.25, 0.75, 1.75, 3.75, 7.75, 11.75, 15.75, 19.75.
  reactor.run_until(12.0);
  EXPECT_EQ(sender.retransmissions(), 6u);
  reactor.run_until(16.0);
  EXPECT_EQ(sender.retransmissions(), 7u);
  sender.complete(token);
}

TEST(RetrySender, DuplicateTokenTrips) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);
  RecordingTransport transport;
  transport::BufferPool pool;
  transport::RetrySender sender(reactor, transport, pool,
                                transport::RetryPolicy{});
  const std::uint32_t token = sender.next_token();
  sender.send_tracked(token, PeerAddr{0x7f000001, 1}, wire::Ack{.token = token});
  EXPECT_THROW(
      sender.send_tracked(token, PeerAddr{0x7f000001, 1}, wire::Ack{.token = token}),
      util::InvariantError);
  sender.complete(token);
}

TEST(RetrySender, CancelAllReleasesEveryBuffer) {
  sim::Simulator sim;
  transport::SimReactor reactor(&sim);
  RecordingTransport transport;
  transport::BufferPool pool;
  transport::RetrySender sender(reactor, transport, pool,
                                transport::RetryPolicy{});
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t token = sender.next_token();
    sender.send_tracked(token, PeerAddr{0x7f000001, 1}, wire::Ack{.token = token});
  }
  EXPECT_EQ(sender.in_flight(), 5u);
  EXPECT_EQ(pool.in_use(), 5u);
  sender.cancel_all();
  EXPECT_EQ(sender.in_flight(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
  reactor.run_until(60.0);
  EXPECT_EQ(transport.sends.size(), 5u);  // no retransmissions after cancel
}

}  // namespace
}  // namespace vdm
