// run_grid's determinism contract and the per-worker run arenas. The
// contract under test: a grid sweep is bit-identical — not merely close —
// to the serial per-point run_many loops it replaces, for every thread
// count and task completion order, and a reused RunScratch changes nothing
// about a run while allocating no scaffolding after its first run of a
// shape.

#include "experiments/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "overlay/walk.hpp"
#include "util/require.hpp"

namespace vdm::experiments {
namespace {

RunConfig small_config() {
  RunConfig cfg;
  cfg.substrate = Substrate::kTransitStub;
  cfg.routers = 60;
  cfg.scenario.target_members = 12;
  cfg.scenario.join_phase = 200.0;
  cfg.scenario.total_time = 1000.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.1;
  cfg.session.chunk_rate = 1.0;
  cfg.seed = 3;
  return cfg;
}

/// Hexfloat rendering: two doubles render identically iff they are
/// bit-identical (modulo -0.0/+0.0, which never arises from these sums).
/// EXPECT_DOUBLE_EQ tolerates 4 ULPs — not good enough for a determinism
/// contract.
std::string hex(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// One string capturing every scalar of a run, for whole-run bit equality.
std::string fingerprint(const RunResult& r) {
  std::string out;
  for (const double v : {r.stress, r.stress_max, r.stretch, r.stretch_leaf,
                         r.stretch_max, r.stretch_min, r.hopcount, r.hop_leaf,
                         r.hop_max, r.loss, r.overhead, r.overhead_per_chunk,
                         r.network_usage, r.startup_avg, r.startup_max,
                         r.reconnect_avg, r.reconnect_max, r.mst_ratio}) {
    out += hex(v);
    out += '|';
  }
  out += std::to_string(r.final_members);
  return out;
}

std::string fingerprint(const AggregateResult& agg) {
  std::string out;
  for (const util::Summary* s :
       {&agg.stress, &agg.stretch, &agg.hopcount, &agg.loss, &agg.overhead,
        &agg.network_usage, &agg.startup_avg, &agg.reconnect_avg, &agg.mst_ratio}) {
    out += hex(s->mean);
    out += hex(s->ci_halfwidth);
    out += hex(s->min);
    out += hex(s->max);
    out += '|';
  }
  for (const RunResult& r : agg.runs) out += fingerprint(r) + "\n";
  return out;
}

std::vector<RunConfig> small_grid() {
  std::vector<RunConfig> points;
  points.push_back(small_config());
  points.push_back(small_config());
  points.back().protocol = Proto::kHmtp;
  points.push_back(small_config());
  points.back().scenario.target_members = 16;
  return points;
}

TEST(Sweep, GridMatchesPerPointRunManyBitwise) {
  const std::vector<RunConfig> points = small_grid();
  const std::vector<AggregateResult> grid = run_grid(points, 3);
  ASSERT_EQ(grid.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const AggregateResult solo = run_many(points[p], 3);
    EXPECT_EQ(fingerprint(grid[p]), fingerprint(solo)) << "point " << p;
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  const std::vector<RunConfig> points = small_grid();
  SweepOptions serial;
  serial.threads = 1;
  const std::vector<AggregateResult> base = run_grid(points, 2, serial);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    SweepOptions opt;
    opt.threads = threads;
    const std::vector<AggregateResult> got = run_grid(points, 2, opt);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t p = 0; p < base.size(); ++p) {
      EXPECT_EQ(fingerprint(got[p]), fingerprint(base[p]))
          << "threads=" << threads << " point " << p;
    }
  }
}

TEST(Sweep, SeedOffsetsArePerPointNotPerTask) {
  // Point A at base seed 3 and point B at base seed 4, 2 seeds each: A's
  // second task and B's first task are the same (config, seed) pair and
  // must produce the same bits. A flattened-index seeding scheme (seed =
  // base + global task index) would break this.
  std::vector<RunConfig> points{small_config(), small_config()};
  points[1].seed = points[0].seed + 1;
  const std::vector<AggregateResult> aggs = run_grid(points, 2);
  ASSERT_EQ(aggs[0].runs.size(), 2u);
  ASSERT_EQ(aggs[1].runs.size(), 2u);
  EXPECT_EQ(fingerprint(aggs[0].runs[1]), fingerprint(aggs[1].runs[0]));
  EXPECT_NE(fingerprint(aggs[0].runs[0]), fingerprint(aggs[0].runs[1]));
}

TEST(Sweep, IdenticalPointsProduceIdenticalAggregates) {
  const std::vector<RunConfig> points{small_config(), small_config()};
  const std::vector<AggregateResult> aggs = run_grid(points, 2);
  EXPECT_EQ(fingerprint(aggs[0]), fingerprint(aggs[1]));
}

TEST(Sweep, ArenaRunsMatchFreshRunsBitwise) {
  RunScratch scratch;
  for (const Substrate substrate :
       {Substrate::kTransitStub, Substrate::kWaxman, Substrate::kGeoUs,
        Substrate::kCoordUs, Substrate::kCoordPlane}) {
    RunConfig cfg = small_config();
    cfg.substrate = substrate;
    const RunResult warm = run_once(cfg, scratch);  // same scratch across substrates
    const RunResult fresh = run_once(cfg);
    EXPECT_EQ(fingerprint(warm), fingerprint(fresh))
        << "substrate " << static_cast<int>(substrate);
  }
}

TEST(Sweep, ArenaStopsGrowingAfterFirstRunOfAShape) {
  const RunConfig cfg = small_config();
  RunScratch scratch;
  (void)run_once(cfg, scratch);
  const std::uint64_t after_first = scratch.grow_events();
  EXPECT_GE(after_first, 1u);  // the first run had to build the arenas
  EXPECT_GT(scratch.capacity_bytes(), 0u);
  for (int i = 0; i < 3; ++i) (void)run_once(cfg, scratch);
  // Steady state: repeating a run the arena has already seen rebuilds every
  // buffer in place without a single scaffolding reallocation.
  EXPECT_EQ(scratch.grow_events(), after_first);
}

TEST(Sweep, ArenaGrowsAcrossShapesThenSettles) {
  // A worker arena serves whatever mix of substrates and seeds its shard
  // and steals hand it. New shapes may bump the capacity high-water; a
  // second pass over the same mix must not — capacity is monotone, never
  // released between runs.
  RunScratch scratch;
  const auto cycle = [&scratch] {
    for (const Substrate substrate :
         {Substrate::kTransitStub, Substrate::kWaxman, Substrate::kGeoUs,
          Substrate::kCoordUs, Substrate::kCoordPlane}) {
      for (std::uint64_t seed = 3; seed < 6; ++seed) {
        RunConfig cfg = small_config();
        cfg.substrate = substrate;
        cfg.seed = seed;
        (void)run_once(cfg, scratch);
      }
    }
  };
  cycle();
  const std::uint64_t after_first_cycle = scratch.grow_events();
  cycle();
  EXPECT_EQ(scratch.grow_events(), after_first_cycle);
}

TEST(Sweep, ProgressReportsEveryTaskOnce) {
  const std::vector<RunConfig> points{small_config(), small_config()};
  constexpr std::size_t kSeeds = 3;
  std::mutex mu;
  std::vector<std::size_t> dones;
  SweepOptions opt;
  opt.threads = 2;
  opt.progress = [&](std::size_t done, std::size_t total) {
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(total, points.size() * kSeeds);
    dones.push_back(done);
  };
  (void)run_grid(points, kSeeds, opt);
  ASSERT_EQ(dones.size(), points.size() * kSeeds);
  // The callback is serialized and `done` counts completions, so the
  // sequence is exactly 1..total in order regardless of task interleaving.
  for (std::size_t i = 0; i < dones.size(); ++i) EXPECT_EQ(dones[i], i + 1);
}

/// Unsynchronized on purpose: if the sweep ran this observer from more than
/// one worker, the vector writes would race (TSan) and the recorded step
/// sequence would interleave nondeterministically.
class RecordingObserver final : public overlay::WalkObserver {
 public:
  void on_step(const overlay::WalkStep& s) override {
    steps.push_back({s.joiner, s.node, s.step});
  }
  std::vector<std::tuple<net::HostId, net::HostId, int>> steps;
};

TEST(Sweep, WalkObserverClampsGridToOneWorker) {
  // Reference sequence: explicitly serial.
  RecordingObserver serial;
  std::vector<RunConfig> points{small_config(), small_config()};
  points[1].seed += 100;
  for (RunConfig& p : points) p.walk_observer = &serial;
  SweepOptions one;
  one.threads = 1;
  const std::vector<AggregateResult> a = run_grid(points, 2, one);

  // Same grid asking for 4 workers: the observer must force one worker, so
  // the observed step stream is byte-for-byte the serial stream.
  RecordingObserver clamped;
  for (RunConfig& p : points) p.walk_observer = &clamped;
  SweepOptions four;
  four.threads = 4;
  const std::vector<AggregateResult> b = run_grid(points, 2, four);

  ASSERT_FALSE(serial.steps.empty());
  EXPECT_EQ(serial.steps, clamped.steps);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(fingerprint(a[i].runs.front()), fingerprint(b[i].runs.front()));
  }
}

TEST(Sweep, EmptyGridReturnsEmpty) {
  EXPECT_TRUE(run_grid({}, 4).empty());
}

TEST(Sweep, WorkerExceptionPropagatesFromGrid) {
  std::vector<RunConfig> points{small_config(), small_config()};
  points[1].host_pool = 2;  // trips a precondition inside run_once
  points[1].scenario.target_members = 8;
  EXPECT_THROW(run_grid(points, 2, {}), util::InvariantError);
}

}  // namespace
}  // namespace vdm::experiments
