#include "overlay/membership.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace vdm::overlay {
namespace {

TEST(Membership, ActivateSetsStateFresh) {
  Membership m(4);
  m.activate(0, 3);
  EXPECT_TRUE(m.member(0).alive);
  EXPECT_EQ(m.member(0).degree_limit, 3);
  EXPECT_EQ(m.member(0).parent, kInvalidHost);
  EXPECT_TRUE(m.member(0).children.empty());
}

TEST(Membership, ActivateRejectsDoubleActivationAndBadDegree) {
  Membership m(2);
  m.activate(0, 1);
  EXPECT_THROW(m.activate(0, 1), util::InvariantError);
  EXPECT_THROW(m.activate(1, 0), util::InvariantError);
}

TEST(Membership, AttachWiresBothDirections) {
  Membership m(3);
  m.activate(0, 2);
  m.activate(1, 2);
  m.attach(1, 0, 0.5);
  EXPECT_EQ(m.member(1).parent, 0u);
  ASSERT_EQ(m.member(0).children.size(), 1u);
  EXPECT_EQ(m.member(0).children[0], 1u);
  EXPECT_DOUBLE_EQ(m.stored_child_distance(0, 1), 0.5);
  m.validate();
}

TEST(Membership, AttachSetsGrandparent) {
  Membership m(3);
  for (HostId h = 0; h < 3; ++h) m.activate(h, 2);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  EXPECT_EQ(m.member(2).grandparent, 0u);
  EXPECT_EQ(m.member(1).grandparent, kInvalidHost);
  m.validate();
}

TEST(Membership, AttachEnforcesDegreeLimit) {
  Membership m(4);
  m.activate(0, 2);
  for (HostId h = 1; h < 4; ++h) m.activate(h, 1);
  m.attach(1, 0, 1.0);
  m.attach(2, 0, 1.0);
  EXPECT_FALSE(m.member(0).has_free_degree());
  EXPECT_THROW(m.attach(3, 0, 1.0), util::InvariantError);
  EXPECT_NO_THROW(m.attach(3, 0, 1.0, /*allow_full=*/true));
}

TEST(Membership, OverlayLinksCountTheParentLink) {
  // The degree budget covers every overlay connection: children plus the
  // uplink. A limit-2 member with a parent has one child slot, not two;
  // the root has no uplink so its full budget goes to children.
  Membership m(3);
  m.activate(0, 2);
  m.activate(1, 2);
  m.activate(2, 2);
  EXPECT_EQ(m.member(0).overlay_links(), 0);
  EXPECT_TRUE(m.member(0).has_free_degree());
  m.attach(1, 0, 1.0);
  EXPECT_EQ(m.member(1).overlay_links(), 1);  // the uplink
  EXPECT_TRUE(m.member(1).has_free_degree());
  m.attach(2, 1, 1.0);
  EXPECT_EQ(m.member(1).overlay_links(), 2);
  EXPECT_FALSE(m.member(1).has_free_degree());  // parent + child = limit
  EXPECT_EQ(m.member(0).overlay_links(), 1);    // root: children only
  EXPECT_TRUE(m.member(0).has_free_degree());
  m.validate();
}

TEST(Membership, LimitOneMemberIsAPureLeaf) {
  Membership m(3);
  m.activate(0, 2);
  m.activate(1, 1);
  m.activate(2, 1);
  EXPECT_TRUE(m.member(1).has_free_degree());  // detached: uplink still free
  m.attach(1, 0, 1.0);
  EXPECT_FALSE(m.member(1).has_free_degree());  // saturated by its uplink
  EXPECT_THROW(m.attach(2, 1, 1.0), util::InvariantError);
}

TEST(Membership, ValidateRejectsDegreeOverflow) {
  // allow_full exists for Case II takeovers that immediately rebalance;
  // leaving the tree over budget must be caught.
  Membership m(3);
  m.activate(0, 2);
  m.activate(1, 1);
  m.activate(2, 1);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0, /*allow_full=*/true);  // 1 now has uplink + child > 1
  EXPECT_THROW(m.validate(), util::InvariantError);
}

TEST(Membership, UpdateChildDistanceOverwritesStoredEdge) {
  Membership m(2);
  m.activate(0, 2);
  m.activate(1, 2);
  m.attach(1, 0, 5.0);
  m.update_child_distance(0, 1, 7.5);
  EXPECT_DOUBLE_EQ(m.stored_child_distance(0, 1), 7.5);
  EXPECT_THROW(m.update_child_distance(1, 0, 1.0), util::InvariantError);
  EXPECT_THROW(m.update_child_distance(0, 1, -1.0), util::InvariantError);
}

TEST(Membership, SubtreeHasCapacityFastPathWithoutLimitOneMembers) {
  // No limit-1 member alive: every subtree bottoms out in a leaf whose
  // uplink leaves a slot free, so the answer is constant true (and O(1)).
  Membership m(4);
  for (HostId h = 0; h < 4; ++h) m.activate(h, 2);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  m.attach(3, 2, 1.0);
  EXPECT_TRUE(m.subtree_has_capacity(0));
  EXPECT_TRUE(m.subtree_has_capacity(3));
}

TEST(Membership, SubtreeHasCapacitySeesThroughSaturatedLevels) {
  // Root limit 1 (saturated by its only child) whose grandchild still has
  // room: capacity search must descend past full interior nodes, and a
  // subtree of pure leaves must report no capacity.
  Membership m(4);
  m.activate(0, 1);
  m.activate(1, 2);
  m.activate(2, 2);
  m.activate(3, 1);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  EXPECT_TRUE(m.subtree_has_capacity(0));   // 2 still has a slot
  EXPECT_TRUE(m.subtree_has_capacity(2));
  m.attach(3, 2, 1.0);
  EXPECT_FALSE(m.subtree_has_capacity(0));  // every slot spoken for
  // Excluding the only member with room hides that capacity.
  m.detach(3);
  EXPECT_TRUE(m.subtree_has_capacity(0));
  EXPECT_FALSE(m.subtree_has_capacity(0, /*exclude=*/2));
}

TEST(Membership, AttachRejectsCycles) {
  Membership m(3);
  for (HostId h = 0; h < 3; ++h) m.activate(h, 3);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  m.detach(1);  // 1 keeps child 2
  EXPECT_THROW(m.attach(1, 2, 1.0), util::InvariantError);  // 2 is below 1
  EXPECT_THROW(m.attach(1, 1, 1.0), util::InvariantError);  // self
}

TEST(Membership, AttachRejectsDeadOrDoubleParent) {
  Membership m(3);
  m.activate(0, 2);
  m.activate(1, 2);
  EXPECT_THROW(m.attach(2, 0, 1.0), util::InvariantError);  // 2 not alive
  m.attach(1, 0, 1.0);
  EXPECT_THROW(m.attach(1, 0, 1.0), util::InvariantError);  // already attached
}

TEST(Membership, DetachKeepsSubtreeOnChild) {
  Membership m(4);
  for (HostId h = 0; h < 4; ++h) m.activate(h, 3);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  m.attach(3, 2, 1.0);
  m.detach(1);
  EXPECT_EQ(m.member(1).parent, kInvalidHost);
  EXPECT_TRUE(m.member(0).children.empty());
  EXPECT_EQ(m.member(2).parent, 1u);  // subtree intact
  EXPECT_EQ(m.subtree(1), (std::vector<HostId>{1, 2, 3}));
}

TEST(Membership, MoveChildUpdatesGrandparentsOfGrandchildren) {
  Membership m(5);
  for (HostId h = 0; h < 5; ++h) m.activate(h, 4);
  m.attach(1, 0, 1.0);
  m.attach(2, 0, 1.0);
  m.attach(3, 1, 1.0);
  m.attach(4, 3, 1.0);
  // Move 3 from 1 to 2: 3's grandparent becomes 0, 4's becomes 2.
  m.move_child(3, 2, 2.0);
  EXPECT_EQ(m.member(3).parent, 2u);
  EXPECT_EQ(m.member(3).grandparent, 0u);
  EXPECT_EQ(m.member(4).grandparent, 2u);
  m.validate();
}

TEST(Membership, DeactivateOrphansChildrenButKeepsTheirGrandparent) {
  Membership m(4);
  for (HostId h = 0; h < 4; ++h) m.activate(h, 3);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  m.attach(3, 1, 1.0);
  const std::vector<HostId> orphans = m.deactivate(1);
  EXPECT_EQ(orphans, (std::vector<HostId>{2, 3}));
  EXPECT_FALSE(m.member(1).alive);
  EXPECT_TRUE(m.member(0).children.empty());
  // Orphans keep the grandparent pointer — that is where they reconnect.
  EXPECT_EQ(m.member(2).parent, kInvalidHost);
  EXPECT_EQ(m.member(2).grandparent, 0u);
  EXPECT_EQ(m.member(3).grandparent, 0u);
}

TEST(Membership, DeactivateDetachedNode) {
  Membership m(2);
  m.activate(0, 1);
  const auto orphans = m.deactivate(0);
  EXPECT_TRUE(orphans.empty());
  EXPECT_FALSE(m.member(0).alive);
}

TEST(Membership, RootPathOrder) {
  Membership m(4);
  for (HostId h = 0; h < 4; ++h) m.activate(h, 2);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  m.attach(3, 2, 1.0);
  EXPECT_EQ(m.root_path(3), (std::vector<HostId>{2, 1, 0}));
  EXPECT_TRUE(m.root_path(0).empty());
}

TEST(Membership, DepthMeasuresHops) {
  Membership m(4);
  for (HostId h = 0; h < 4; ++h) m.activate(h, 2);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  EXPECT_EQ(m.depth(0), 0u);
  EXPECT_EQ(m.depth(1), 1u);
  EXPECT_EQ(m.depth(2), 2u);
  // Host 3 is alive but detached: depth 0 in its own fragment, and not
  // under the root (the check callers use for attachment).
  EXPECT_EQ(m.depth(3), 0u);
  EXPECT_FALSE(m.is_ancestor(0, 3));
}

TEST(Membership, IsAncestorSemantics) {
  Membership m(4);
  for (HostId h = 0; h < 4; ++h) m.activate(h, 2);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);
  EXPECT_TRUE(m.is_ancestor(0, 2));
  EXPECT_TRUE(m.is_ancestor(2, 2));  // reflexive by definition used here
  EXPECT_FALSE(m.is_ancestor(2, 0));
  EXPECT_FALSE(m.is_ancestor(3, 2));
}

TEST(Membership, AliveMembersLists) {
  Membership m(5);
  m.activate(1, 2);
  m.activate(3, 2);
  EXPECT_EQ(m.alive_members(), (std::vector<HostId>{1, 3}));
  m.deactivate(1);
  EXPECT_EQ(m.alive_members(), (std::vector<HostId>{3}));
}

TEST(Membership, StoredDistanceRequiresEdge) {
  Membership m(3);
  m.activate(0, 2);
  m.activate(1, 2);
  EXPECT_THROW(m.stored_child_distance(0, 1), util::InvariantError);
}

TEST(Membership, ValidatePassesOnConsistentTree) {
  Membership m(6);
  for (HostId h = 0; h < 6; ++h) m.activate(h, 3);
  m.attach(1, 0, 1.0);
  m.attach(2, 0, 1.0);
  m.attach(3, 1, 1.0);
  m.attach(4, 1, 1.0);
  m.attach(5, 2, 1.0);
  EXPECT_NO_THROW(m.validate());
}

TEST(Membership, SubtreeOfLeafIsItself) {
  Membership m(2);
  m.activate(0, 1);
  EXPECT_EQ(m.subtree(0), std::vector<HostId>{0});
}

}  // namespace
}  // namespace vdm::overlay
