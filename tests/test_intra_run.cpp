// Intra-session parallelism determinism: every run_once scalar must be
// bit-identical across --threads {1, 2, 0} on every substrate. The parallel
// phases (probe batches, chunk-flood shards, tree-measurement reads) compute
// pure underlay reads concurrently and commit all results — and every rng
// draw — serially in fixed FIFO order, so the thread count must be
// unobservable in the output. The graph substrate additionally pins that the
// knob is inert when the underlay forbids concurrent reads.

#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "experiments/runner.hpp"

namespace vdm::experiments {
namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(bits(a.stress), bits(b.stress));
  EXPECT_EQ(bits(a.stress_max), bits(b.stress_max));
  EXPECT_EQ(bits(a.stretch), bits(b.stretch));
  EXPECT_EQ(bits(a.stretch_leaf), bits(b.stretch_leaf));
  EXPECT_EQ(bits(a.stretch_max), bits(b.stretch_max));
  EXPECT_EQ(bits(a.stretch_min), bits(b.stretch_min));
  EXPECT_EQ(bits(a.hopcount), bits(b.hopcount));
  EXPECT_EQ(bits(a.hop_leaf), bits(b.hop_leaf));
  EXPECT_EQ(bits(a.hop_max), bits(b.hop_max));
  EXPECT_EQ(bits(a.loss), bits(b.loss));
  EXPECT_EQ(bits(a.overhead), bits(b.overhead));
  EXPECT_EQ(bits(a.overhead_per_chunk), bits(b.overhead_per_chunk));
  EXPECT_EQ(bits(a.network_usage), bits(b.network_usage));
  EXPECT_EQ(bits(a.startup_avg), bits(b.startup_avg));
  EXPECT_EQ(bits(a.startup_max), bits(b.startup_max));
  EXPECT_EQ(bits(a.startup_p50), bits(b.startup_p50));
  EXPECT_EQ(bits(a.startup_p99), bits(b.startup_p99));
  EXPECT_EQ(bits(a.join_rate), bits(b.join_rate));
  EXPECT_EQ(bits(a.reconnect_avg), bits(b.reconnect_avg));
  EXPECT_EQ(bits(a.reconnect_max), bits(b.reconnect_max));
  EXPECT_EQ(bits(a.mst_ratio), bits(b.mst_ratio));
  EXPECT_EQ(a.final_members, b.final_members);
}

void expect_thread_invariant(RunConfig cfg) {
  cfg.session.threads = 1;
  const RunResult serial = run_once(cfg);
  cfg.session.threads = 2;
  const RunResult two = run_once(cfg);
  cfg.session.threads = 0;  // hardware concurrency
  const RunResult hw = run_once(cfg);
  expect_bitwise_equal(serial, two);
  expect_bitwise_equal(serial, hw);
}

RunConfig base_config() {
  RunConfig cfg;
  cfg.scenario.target_members = 24;
  cfg.scenario.join_phase = 200.0;
  cfg.scenario.total_time = 1000.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.1;
  cfg.session.chunk_rate = 1.0;
  cfg.seed = 11;
  return cfg;
}

TEST(IntraRunParallel, BitIdenticalAcrossThreadsOnGraph) {
  // GraphUnderlay reports concurrent_reads() == false, so the knob must be
  // completely inert here — including with per-link loss in play.
  RunConfig cfg = base_config();
  cfg.substrate = Substrate::kTransitStub;
  cfg.routers = 60;
  cfg.link_loss_max = 0.02;
  expect_thread_invariant(cfg);
}

TEST(IntraRunParallel, BitIdenticalAcrossThreadsOnMatrix) {
  RunConfig cfg = base_config();
  cfg.substrate = Substrate::kGeoUs;
  expect_thread_invariant(cfg);
}

TEST(IntraRunParallel, BitIdenticalAcrossThreadsOnMatrixWithLoss) {
  // Nonzero per-pair loss keeps the flood on the serial path (draws) while
  // probe batches may still parallelize — both must stay invariant.
  RunConfig cfg = base_config();
  cfg.substrate = Substrate::kGeoWorld;
  cfg.link_loss_max = 0.02;
  expect_thread_invariant(cfg);
}

TEST(IntraRunParallel, BitIdenticalAcrossThreadsOnCoord) {
  // The coordinate substrate is the parallel showcase: lossless (sharded
  // floods engage) and pure-arithmetic delays (probe fan-out engages).
  RunConfig cfg = base_config();
  cfg.substrate = Substrate::kCoordPlane;
  cfg.scenario.target_members = 64;
  expect_thread_invariant(cfg);
}

TEST(IntraRunParallel, BitIdenticalAcrossThreadsOnCoordConcurrentJoins) {
  // Flash-crowd style batched joins exercise the pipeline's measure_parallel
  // batches under the locating placement index.
  RunConfig cfg = base_config();
  cfg.substrate = Substrate::kCoordWorld;
  cfg.session.join_mode = overlay::JoinMode::kConcurrent;
  cfg.scenario.target_members = 64;
  expect_thread_invariant(cfg);
}

TEST(IntraRunParallel, BitIdenticalAcrossThreadsWithProbeNoise) {
  // Measurement noise makes every probe draw from the rng — the serial
  // FIFO commit must replay those draws in exactly the serial order.
  RunConfig cfg = base_config();
  cfg.substrate = Substrate::kCoordUs;
  cfg.probe_noise = 0.1;
  cfg.protocol = Proto::kVdmRefine;
  expect_thread_invariant(cfg);
}

}  // namespace
}  // namespace vdm::experiments
