#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/require.hpp"

namespace vdm::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r(4);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng r(6);
  EXPECT_THROW(r.uniform(1.0, 0.0), InvariantError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntUnbiased) {
  Rng r(10);
  std::vector<int> counts(4, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[static_cast<std::size_t>(r.uniform_int(0, 3))];
  for (const int c : counts) EXPECT_NEAR(c, kN / 4, kN / 40);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(12);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng r(14);
  EXPECT_THROW(r.exponential(0.0), InvariantError);
}

TEST(Rng, NormalMoments) {
  Rng r(15);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ParetoLowerBound) {
  Rng r(16);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(18);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);  // probability of identity is astronomically small
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(19);
  const auto s = r.sample_indices(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng r(20);
  const auto s = r.sample_indices(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng r(21);
  EXPECT_THROW(r.sample_indices(5, 6), InvariantError);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(22);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsReproducible) {
  Rng p1(23), p2(23);
  Rng a = p1.split(5);
  Rng b = p2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng p1(24), p2(24);
  (void)p1.split(1);
  (void)p1.split(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p1.next_u64(), p2.next_u64());
}

}  // namespace
}  // namespace vdm::util
