// Steady-state allocation budget for arena run_once: ZERO. The RunScratch
// arena owns every piece of per-run scaffolding — topology, underlay,
// collector, walk buffers, membership tree, Session working buffers, the
// refine/stream timer slabs, the MST-ratio working set and the cached
// protocol/metric objects — so a warm arena replays a shape without
// touching the heap at all. This test pins that exactly, so a change that
// reintroduces even one per-run construction fails loudly instead of
// showing up as a bench regression months later.
//
// The global-new counter mirrors bench/bench_e2e.cpp. gtest itself
// allocates (assertion bookkeeping), so the measured window contains only
// the run_once call.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "experiments/runner.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace vdm::experiments {
namespace {

RunConfig paper_config() {
  RunConfig cfg;
  cfg.substrate = Substrate::kTransitStub;
  cfg.protocol = Proto::kVdm;
  cfg.scenario.target_members = 200;  // the paper's headline overlay size
  cfg.seed = 7;
  return cfg;
}

TEST(AllocBudget, SteadyStateArenaRunStaysUnderBudget) {
  RunScratch scratch;
  const RunConfig cfg = paper_config();
  // Two warm runs: the first builds every arena buffer, the second settles
  // capacities that only converge after the shape has been seen once
  // (e.g. children lists sized by the observed churn).
  (void)run_once(cfg, scratch);
  (void)run_once(cfg, scratch);
  const std::uint64_t grows_before = scratch.grow_events();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const RunResult r = run_once(cfg, scratch);
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_GT(r.final_members, 0u);
  EXPECT_EQ(scratch.grow_events(), grows_before)
      << "a warm arena grew during a repeat run of the same shape";
  // Down from ~1.8k pre-arena and ~80 pre-slab: a warm arena replays the
  // shape with no heap traffic whatsoever.
  EXPECT_EQ(allocs, 0u)
      << "steady-state run_once allocated " << allocs
      << " times; per-run allocation crept back in";
}

TEST(AllocBudget, CoordSubstrateStaysUnderBudgetToo) {
  // Same gate on the coordinate substrate: its underlay rebind is two
  // vector refills, so the steady state must match the graph substrate's.
  RunScratch scratch;
  RunConfig cfg = paper_config();
  cfg.substrate = Substrate::kCoordPlane;
  cfg.compute_mst_ratio = false;
  (void)run_once(cfg, scratch);
  (void)run_once(cfg, scratch);
  const std::uint64_t grows_before = scratch.grow_events();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  (void)run_once(cfg, scratch);
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(scratch.grow_events(), grows_before);
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace vdm::experiments
