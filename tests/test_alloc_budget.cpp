// Steady-state allocation budget for arena run_once. The RunScratch arena
// eliminated per-run scaffolding (topology, underlay, collector, walk
// buffers, membership tree); what remains is a small fixed set of per-run
// constructions (Session internals, protocol/metric objects, simulator
// warm-up). This test pins that remainder with a hard ceiling so a future
// change that quietly reintroduces per-member or per-event allocations
// fails loudly instead of showing up as a bench regression months later.
//
// The global-new counter mirrors bench/bench_e2e.cpp. gtest itself
// allocates (assertion bookkeeping), so the measured window contains only
// the run_once call, and the budget leaves roughly 3x headroom over the
// observed steady state.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "experiments/runner.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace vdm::experiments {
namespace {

RunConfig paper_config() {
  RunConfig cfg;
  cfg.substrate = Substrate::kTransitStub;
  cfg.protocol = Proto::kVdm;
  cfg.scenario.target_members = 200;  // the paper's headline overlay size
  cfg.seed = 7;
  return cfg;
}

TEST(AllocBudget, SteadyStateArenaRunStaysUnderBudget) {
  RunScratch scratch;
  const RunConfig cfg = paper_config();
  // Two warm runs: the first builds every arena buffer, the second settles
  // capacities that only converge after the shape has been seen once
  // (e.g. children lists sized by the observed churn).
  (void)run_once(cfg, scratch);
  (void)run_once(cfg, scratch);
  const std::uint64_t grows_before = scratch.grow_events();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const RunResult r = run_once(cfg, scratch);
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_GT(r.final_members, 0u);
  EXPECT_EQ(scratch.grow_events(), grows_before)
      << "a warm arena grew during a repeat run of the same shape";
  // Fixed per-run constructions only — independent of member count, churn
  // volume and chunk count. Observed steady state is ~80 (Session
  // internals, protocol/metric objects, timing-record handoff, MST
  // baseline); the budget leaves ~60% headroom and sits more than an order
  // of magnitude below the pre-arena ~1.8k.
  constexpr std::uint64_t kBudget = 128;
  EXPECT_LE(allocs, kBudget)
      << "steady-state run_once allocated " << allocs
      << " times; per-member or per-event allocation crept back in";
}

TEST(AllocBudget, CoordSubstrateStaysUnderBudgetToo) {
  // Same gate on the coordinate substrate: its underlay rebind is two
  // vector refills, so the steady state must match the graph substrate's.
  RunScratch scratch;
  RunConfig cfg = paper_config();
  cfg.substrate = Substrate::kCoordPlane;
  cfg.compute_mst_ratio = false;
  (void)run_once(cfg, scratch);
  (void)run_once(cfg, scratch);
  const std::uint64_t grows_before = scratch.grow_events();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  (void)run_once(cfg, scratch);
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(scratch.grow_events(), grows_before);
  constexpr std::uint64_t kBudget = 128;  // observed ~60: no matrix refill
  EXPECT_LE(allocs, kBudget);
}

}  // namespace
}  // namespace vdm::experiments
