#include "net/graph.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace vdm::net {
namespace {

TEST(Graph, AddNodesReturnsDenseIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.add_nodes(3), 2u);
  EXPECT_EQ(g.num_nodes(), 5u);
}

TEST(Graph, AddNodesRejectsZero) {
  Graph g;
  EXPECT_THROW(g.add_nodes(0), util::InvariantError);
}

TEST(Graph, AddLinkStoresEndpointsAndWeights) {
  Graph g;
  g.add_nodes(2);
  const LinkId l = g.add_link(0, 1, 0.015, 0.01);
  const Link& link = g.link(l);
  EXPECT_EQ(link.a, 0u);
  EXPECT_EQ(link.b, 1u);
  EXPECT_DOUBLE_EQ(link.delay, 0.015);
  EXPECT_DOUBLE_EQ(link.loss, 0.01);
  EXPECT_EQ(link.other(0), 1u);
  EXPECT_EQ(link.other(1), 0u);
}

TEST(Graph, RejectsInvalidLinks) {
  Graph g;
  g.add_nodes(2);
  EXPECT_THROW(g.add_link(0, 0, 0.01), util::InvariantError);  // self-loop
  EXPECT_THROW(g.add_link(0, 2, 0.01), util::InvariantError);  // missing node
  EXPECT_THROW(g.add_link(0, 1, 0.0), util::InvariantError);   // zero delay
  EXPECT_THROW(g.add_link(0, 1, 0.01, 1.0), util::InvariantError);  // loss == 1
  EXPECT_THROW(g.add_link(0, 1, 0.01, -0.1), util::InvariantError);
}

TEST(Graph, ArcsListBothDirections) {
  Graph g;
  g.add_nodes(3);
  g.add_link(0, 1, 0.010);
  g.add_link(1, 2, 0.020);
  EXPECT_EQ(g.arcs(0).size(), 1u);
  EXPECT_EQ(g.arcs(1).size(), 2u);
  EXPECT_EQ(g.arcs(2).size(), 1u);
  EXPECT_EQ(g.arcs(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.arcs(0)[0].delay, 0.010);
}

TEST(Graph, ParallelLinksAllowed) {
  Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, 0.010);
  g.add_link(0, 1, 0.020);
  EXPECT_EQ(g.num_links(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, AdjacencyRebuildsAfterMutation) {
  Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, 0.010);
  EXPECT_EQ(g.arcs(0).size(), 1u);  // builds CSR
  const NodeId c = g.add_node();
  g.add_link(1, c, 0.010);
  EXPECT_EQ(g.arcs(1).size(), 2u);  // rebuilt
}

TEST(Graph, ConnectedDetection) {
  Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, 0.01);
  g.add_link(2, 3, 0.01);
  EXPECT_FALSE(g.connected());
  g.add_link(1, 2, 0.01);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, TrivialGraphsAreConnected) {
  Graph g;
  EXPECT_TRUE(g.connected());  // empty
  g.add_node();
  EXPECT_TRUE(g.connected());  // singleton
}

TEST(Graph, VersionBumpsOnMutation) {
  Graph g;
  const auto v0 = g.version();
  g.add_node();
  const auto v1 = g.version();
  EXPECT_GT(v1, v0);
  g.add_node();
  g.add_link(0, 1, 0.01);
  EXPECT_GT(g.version(), v1);
}

TEST(Graph, ArcsRejectOutOfRange) {
  Graph g;
  g.add_node();
  EXPECT_THROW(g.arcs(5), util::InvariantError);
}

}  // namespace
}  // namespace vdm::net
