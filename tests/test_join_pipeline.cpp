// Concurrent-join pipeline and locating-first placement (DESIGN.md §10):
// reservation semantics (no slot double-grant, counts drained to zero),
// mid-batch tree validity, park/wake completion under hard contention,
// batch-grouping invariance, worker-count bit-identicality, and the
// concurrent path's own determinism goldens.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/btp_protocol.hpp"
#include "baselines/hmtp_protocol.hpp"
#include "baselines/random_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "experiments/runner.hpp"
#include "helpers.hpp"
#include "net/coord_underlay.hpp"
#include "overlay/placement.hpp"
#include "overlay/walk.hpp"

namespace vdm::overlay {
namespace {

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

enum class Which { kVdm, kHmtp, kBtp, kRandom };

/// Protocols with periodic refinement disabled: these suites exercise the
/// join pipeline only, and a Periodic refine timer re-arms forever, which
/// would keep sim.run() from ever draining.
std::unique_ptr<Protocol> make_protocol(Which which) {
  switch (which) {
    case Which::kVdm:
      return std::make_unique<core::VdmProtocol>(core::VdmConfig{});
    case Which::kHmtp: {
      baselines::HmtpConfig hc;
      hc.refinement = false;
      return std::make_unique<baselines::HmtpProtocol>(hc);
    }
    case Which::kBtp: {
      baselines::BtpConfig bc;
      bc.refinement = false;
      return std::make_unique<baselines::BtpProtocol>(bc);
    }
    case Which::kRandom:
      return std::make_unique<baselines::RandomProtocol>();
  }
  return nullptr;
}

const char* which_name(Which which) {
  switch (which) {
    case Which::kVdm: return "Vdm";
    case Which::kHmtp: return "Hmtp";
    case Which::kBtp: return "Btp";
    case Which::kRandom: return "Random";
  }
  return "?";
}

/// Mid-batch invariant probe: runs on every walk iteration of the drain.
/// The tree must validate between turns (mutations only happen in complete
/// commit turns), reservation counts must never go negative, and — for the
/// non-splice protocols, whose stops all pass the reservation-aware
/// can_accept — links + reserved must never exceed a node's degree limit
/// (the no-double-grant property). VDM's Case II splice legitimately
/// reserves at a full parent (the splice funds its own slot), so the
/// over-commit check is skipped for it.
class InvariantProbe final : public WalkObserver {
 public:
  InvariantProbe(Session& session, bool check_overcommit)
      : session_(&session), check_overcommit_(check_overcommit) {}

  void on_step(const WalkStep&) override {
    ++steps_;
    session_->tree().validate();
    const std::vector<int>& reserved = session_->join_reservations();
    for (net::HostId h = 0; h < reserved.size(); ++h) {
      ASSERT_GE(reserved[h], 0) << "negative reservation count at " << h;
      const MemberState& m = session_->tree().member(h);
      if (!m.alive) {
        ASSERT_EQ(reserved[h], 0) << "reservation on a dead host " << h;
        continue;
      }
      if (check_overcommit_) {
        ASSERT_LE(m.overlay_links() + reserved[h], m.degree_limit)
            << "slot double-grant at host " << h;
      }
    }
  }

  int steps() const { return steps_; }

 private:
  Session* session_;
  bool check_overcommit_;
  int steps_ = 0;
};

/// A line underlay, a concurrent-mode session, and a flash of `burst`
/// joiners at t = 1.0 with uniform `degree` limits.
struct PipelineRig {
  std::unique_ptr<Protocol> protocol;
  sim::Simulator sim;
  net::MatrixUnderlay underlay;
  DelayMetric metric;
  Session session;

  PipelineRig(Which which, std::size_t hosts, JoinMode mode,
              std::unique_ptr<Protocol> proto = nullptr)
      : protocol(proto ? std::move(proto) : make_protocol(which)),
        underlay(testutil::line_underlay(positions(hosts))), metric(0.0),
        session(sim, underlay, *protocol, metric, params(mode), util::Rng(7)) {}

  static std::vector<double> positions(std::size_t hosts) {
    std::vector<double> pos(hosts);
    // Irregular spacing so probe distances break ties deterministically
    // but not trivially.
    for (std::size_t i = 0; i < hosts; ++i) {
      pos[i] = static_cast<double>(i) * 10.0 +
               static_cast<double>((i * 7) % 5);
    }
    return pos;
  }

  static SessionParams params(JoinMode mode) {
    SessionParams sp;
    sp.source = 0;
    sp.source_degree_limit = 4;
    sp.chunk_rate = 2.0;
    sp.data_plane = false;
    sp.paranoid_checks = true;
    sp.join_mode = mode;
    return sp;
  }

  void flash(net::HostId first, net::HostId last, int degree) {
    for (net::HostId h = first; h <= last; ++h) {
      sim.schedule_at(1.0, [this, h, degree] { session.join(h, degree); });
    }
  }
};

struct Case {
  Which which;
};

class JoinPipeline : public ::testing::TestWithParam<Case> {};

TEST_P(JoinPipeline, FlashAttachesEveryoneAndDrainsReservations) {
  PipelineRig rig(GetParam().which, 40, JoinMode::kConcurrent);
  InvariantProbe probe(rig.session,
                       /*check_overcommit=*/GetParam().which != Which::kVdm);
  rig.protocol->set_walk_observer(&probe);
  rig.session.start();
  rig.flash(1, 39, /*degree=*/3);
  rig.sim.run();

  EXPECT_GT(probe.steps(), 0);
  EXPECT_EQ(rig.session.tree().alive_count(), 40u);
  for (net::HostId h = 1; h < 40; ++h) {
    EXPECT_NE(rig.session.tree().member(h).parent, net::kInvalidHost)
        << "host " << h << " not attached";
  }
  rig.session.tree().validate();
  for (const int r : rig.session.join_reservations()) {
    EXPECT_EQ(r, 0) << "reservation survived the drain";
  }
  EXPECT_EQ(rig.session.totals().joins_completed, 39u);
  EXPECT_EQ(rig.session.join_cohort_size(), 39u);
  EXPECT_GT(rig.session.join_cohort_span(), 0.0);
}

TEST_P(JoinPipeline, Degree2ContentionParksAndStillCompletes) {
  // Every joiner offers a single child slot (limit 2 = uplink + one), so
  // most of the batch dead-ends on reservations, parks, and must be woken
  // by commits — the chain can only grow a few slots per round.
  PipelineRig rig(GetParam().which, 24, JoinMode::kConcurrent);
  rig.session.start();
  rig.flash(1, 23, /*degree=*/2);
  rig.sim.run();

  EXPECT_EQ(rig.session.tree().alive_count(), 24u);
  for (net::HostId h = 1; h < 24; ++h) {
    EXPECT_NE(rig.session.tree().member(h).parent, net::kInvalidHost);
  }
  rig.session.tree().validate();
  for (const int r : rig.session.join_reservations()) EXPECT_EQ(r, 0);
}

TEST_P(JoinPipeline, BatchTreeInvariantToJoinCallGrouping) {
  // All arrivals at one timestamp form one drain batch whether they were
  // scheduled as 39 separate events or one event issuing every join() —
  // the drain runs behind the last same-time event either way.
  PipelineRig one_by_one(GetParam().which, 40, JoinMode::kConcurrent);
  one_by_one.session.start();
  one_by_one.flash(1, 39, 3);
  one_by_one.sim.run();

  PipelineRig grouped(GetParam().which, 40, JoinMode::kConcurrent);
  grouped.session.start();
  grouped.sim.schedule_at(1.0, [&grouped] {
    for (net::HostId h = 1; h <= 39; ++h) grouped.session.join(h, 3);
  });
  grouped.sim.run();

  for (net::HostId h = 1; h < 40; ++h) {
    EXPECT_EQ(one_by_one.session.tree().member(h).parent,
              grouped.session.tree().member(h).parent)
        << "host " << h << " parent depends on join() grouping";
  }
}

TEST_P(JoinPipeline, LocatingModeBuildsAValidTreeWithStaggeredJoins) {
  PipelineRig rig(GetParam().which, 40, JoinMode::kLocating);
  rig.session.start();
  for (net::HostId h = 1; h < 40; ++h) {
    rig.sim.schedule_at(static_cast<double>(h), [&rig, h] {
      rig.session.join(h, 3);
    });
  }
  rig.sim.run();

  EXPECT_EQ(rig.session.tree().alive_count(), 40u);
  for (net::HostId h = 1; h < 40; ++h) {
    EXPECT_NE(rig.session.tree().member(h).parent, net::kInvalidHost);
  }
  rig.session.tree().validate();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, JoinPipeline,
    ::testing::Values(Case{Which::kVdm}, Case{Which::kHmtp},
                      Case{Which::kBtp}, Case{Which::kRandom}),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return which_name(tpi.param.which);
    });

TEST(JoinPipelinePlacement, GridIndexFindsNearNeighborsOnCoordUnderlay) {
  // Euclidean coordinate underlay: the placement index runs in grid mode
  // (coordinate nearest-neighbor), so a joiner's walk starts at an attached
  // member near it, not at the source.
  const std::size_t n = 64;
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<double>(i % 8) * 10.0;
    ys[i] = static_cast<double>(i / 8) * 10.0;
  }
  net::CoordUnderlay underlay(net::CoordUnderlay::Params{}, std::move(xs),
                              std::move(ys));
  auto protocol = std::make_unique<core::VdmProtocol>(core::VdmConfig{});
  sim::Simulator sim;
  DelayMetric metric(0.0);
  SessionParams sp = PipelineRig::params(JoinMode::kConcurrent);
  Session session(sim, underlay, *protocol, metric, sp, util::Rng(7));
  session.start();
  for (net::HostId h = 1; h < n; ++h) {
    sim.schedule_at(1.0, [&session, h] { session.join(h, 4); });
  }
  sim.run();

  EXPECT_EQ(session.tree().alive_count(), n);
  session.tree().validate();
  for (const int r : session.join_reservations()) EXPECT_EQ(r, 0);
}

// --- worker-count and grouping invariance at experiment scale ------------

experiments::RunConfig flash_config() {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kCoordUs;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = 48;
  cfg.scenario.flash_count = 96;
  cfg.scenario.flash_at = 400.0;
  cfg.scenario.join_phase = 400.0;
  cfg.scenario.total_time = 1200.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.01;
  cfg.session.chunk_rate = 0.1;
  cfg.session.join_mode = JoinMode::kConcurrent;
  cfg.compute_mst_ratio = false;
  cfg.seed = 3;
  return cfg;
}

std::vector<double> scalars(const experiments::RunResult& r) {
  return {r.stress, r.stretch, r.hopcount, r.loss, r.overhead,
          r.startup_avg, r.startup_max, r.startup_p50, r.startup_p99,
          r.join_rate, static_cast<double>(r.final_members)};
}

TEST(JoinPipelineDeterminism, FlashCrowdBitIdenticalAcrossWorkerCounts) {
  const experiments::RunConfig cfg = flash_config();
  const std::size_t seeds = 3;
  const experiments::AggregateResult t1 = experiments::run_many(cfg, seeds, 1);
  const experiments::AggregateResult t2 = experiments::run_many(cfg, seeds, 2);
  const experiments::AggregateResult t0 = experiments::run_many(cfg, seeds, 0);
  ASSERT_EQ(t1.runs.size(), seeds);
  for (std::size_t i = 0; i < seeds; ++i) {
    const std::vector<double> a = scalars(t1.runs[i]);
    const std::vector<double> b = scalars(t2.runs[i]);
    const std::vector<double> c = scalars(t0.runs[i]);
    for (std::size_t f = 0; f < a.size(); ++f) {
      EXPECT_EQ(hex(a[f]), hex(b[f])) << "seed " << i << " field " << f;
      EXPECT_EQ(hex(a[f]), hex(c[f])) << "seed " << i << " field " << f;
    }
  }
}

TEST(JoinPipelineDeterminism, ConcurrentFlashGoldens) {
  // Hexfloat pin of the concurrent path (sequential goldens live in
  // test_walk.cpp and must not move; these may only move with an announced
  // pipeline behavior change).
  const experiments::RunResult r = experiments::run_once(flash_config());
  EXPECT_EQ(r.final_members, 145u);
  EXPECT_EQ(hex(r.stretch), "0x1.9adc21d4c206dp+0");
  EXPECT_EQ(hex(r.hopcount), "0x1.4000000000001p+3");
  EXPECT_EQ(hex(r.startup_avg), "0x1.3d303d5d3f55cp-4");
  EXPECT_EQ(hex(r.startup_p99), "0x1.0f5d6d509db6ep-2");
  EXPECT_EQ(hex(r.join_rate), "0x1.4a9cc9391fd7p+8");
}

}  // namespace
}  // namespace vdm::overlay
