// Property tests for the zero-allocation routing fast path: the dense
// epoch-stamped Router cache, the fused path_stats walk, the visitor API,
// and the GraphUnderlay host-pair cache must all agree with a plain
// reference Dijkstra — on random Waxman and transit-stub graphs, and again
// after Graph version bumps invalidate every cache.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "metrics/tree_metrics.hpp"
#include "net/graph_underlay.hpp"
#include "net/matrix_underlay.hpp"
#include "net/routing.hpp"
#include "overlay/membership.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace vdm::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Textbook Dijkstra, structured like the pre-optimization Router: the
/// oracle the fast path must reproduce.
struct RefSssp {
  std::vector<double> dist;
  std::vector<LinkId> parent_link;
  std::vector<NodeId> parent_node;
};

RefSssp reference_dijkstra(const Graph& g, NodeId src) {
  const std::size_t n = g.num_nodes();
  RefSssp ref;
  ref.dist.assign(n, kInf);
  ref.parent_link.assign(n, kInvalidLink);
  ref.parent_node.assign(n, kInvalidNode);
  ref.dist[src] = 0.0;
  using QEntry = std::pair<double, NodeId>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > ref.dist[u]) continue;
    for (const Graph::Arc& arc : g.arcs(u)) {
      const double nd = d + arc.delay;
      if (nd < ref.dist[arc.to]) {
        ref.dist[arc.to] = nd;
        ref.parent_link[arc.to] = arc.link;
        ref.parent_node[arc.to] = u;
        pq.emplace(nd, arc.to);
      }
    }
  }
  return ref;
}

/// Loss along the reference parent chain, multiplied dst -> src exactly like
/// the fused walk, so agreement is byte-for-byte when the trees coincide.
double reference_loss(const Graph& g, const RefSssp& ref, NodeId src, NodeId dst) {
  double deliver = 1.0;
  for (NodeId at = dst; at != src; at = ref.parent_node[at]) {
    deliver *= 1.0 - g.link(ref.parent_link[at]).loss;
  }
  return 1.0 - deliver;
}

std::size_t reference_hops(const RefSssp& ref, NodeId src, NodeId dst) {
  std::size_t hops = 0;
  for (NodeId at = dst; at != src; at = ref.parent_node[at]) ++hops;
  return hops;
}

/// Full agreement check between Router fast path and the reference on a
/// sample of node pairs.
void expect_matches_reference(const Graph& g, const Router& r,
                              std::size_t pair_stride) {
  const auto n = static_cast<NodeId>(g.num_nodes());
  for (NodeId a = 0; a < n; a += static_cast<NodeId>(pair_stride)) {
    const RefSssp ref = reference_dijkstra(g, a);
    for (NodeId b = 0; b < n; b += 3) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(r.delay(a, b), ref.dist[b]) << "src=" << a << " dst=" << b;
      if (ref.dist[b] == kInf) {
        EXPECT_TRUE(r.path(a, b).empty());
        EXPECT_EQ(r.hop_count(a, b), 0u);
        EXPECT_EQ(r.path_loss(a, b), 0.0);
        continue;
      }
      EXPECT_EQ(r.hop_count(a, b), reference_hops(ref, a, b));
      EXPECT_DOUBLE_EQ(r.path_loss(a, b), reference_loss(g, ref, a, b));

      // path() must be the reference chain in forward order.
      const std::vector<LinkId> path = r.path(a, b);
      std::vector<LinkId> ref_path;
      for (NodeId at = b; at != a; at = ref.parent_node[at]) {
        ref_path.push_back(ref.parent_link[at]);
      }
      std::reverse(ref_path.begin(), ref_path.end());
      EXPECT_EQ(path, ref_path);

      // The visitor sees exactly the same sequence without allocating.
      std::vector<LinkId> visited;
      r.for_each_link(a, b, [&visited](LinkId l) { visited.push_back(l); });
      EXPECT_EQ(visited, path);

      // The fused walk is byte-identical to the per-field queries (they
      // share one implementation and one cache).
      const Router::PathStats st = r.path_stats(a, b);
      EXPECT_EQ(st.delay, r.delay(a, b));
      EXPECT_EQ(st.loss, r.path_loss(a, b));
      EXPECT_EQ(st.hops, r.hop_count(a, b));
    }
  }
}

Graph waxman_graph(std::uint64_t seed, double loss_max) {
  util::Rng rng(seed);
  topo::WaxmanParams wp;
  wp.num_routers = 60;
  wp.loss_max = loss_max;
  return topo::make_waxman(wp, rng).graph;
}

TEST(RoutingFastPath, MatchesReferenceOnWaxman) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const Graph g = waxman_graph(seed, 0.02);
    Router r(g);
    expect_matches_reference(g, r, 7);
  }
}

TEST(RoutingFastPath, MatchesReferenceOnTransitStub) {
  util::Rng rng(21);
  topo::TransitStubParams params;
  params.transit_domains = 2;
  params.routers_per_transit = 3;
  params.stub_domains_per_transit_router = 2;
  params.routers_per_stub = 4;
  params.loss_max = 0.02;
  const auto topo = topo::make_transit_stub(params, rng);
  Router r(topo.graph);
  expect_matches_reference(topo.graph, r, 5);
}

TEST(RoutingFastPath, SurvivesGraphVersionBumps) {
  util::Rng rng(31);
  Graph g = waxman_graph(31, 0.01);
  Router r(g);
  expect_matches_reference(g, r, 11);

  // Structural mutation: new links invalidate every cached tree.
  for (int round = 0; round < 3; ++round) {
    const auto n = static_cast<NodeId>(g.num_nodes());
    const auto a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    auto b = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (a == b) b = (b + 1) % n;
    g.add_link(a, b, rng.uniform(0.001, 0.005), 0.005);
    expect_matches_reference(g, r, 11);
  }

  // In-place mutation through mutable_link must also bump version() and
  // invalidate (delay changes reroute, loss changes re-weight paths).
  const LinkId edited = 0;
  g.mutable_link(edited).delay *= 0.1;
  g.mutable_link(edited).loss = 0.05;
  expect_matches_reference(g, r, 11);
}

TEST(RoutingFastPath, GraphUnderlayPairCacheMatchesRouter) {
  util::Rng rng(41);
  topo::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.routers_per_transit = 2;
  tp.stub_domains_per_transit_router = 2;
  tp.routers_per_stub = 3;
  tp.loss_max = 0.02;
  topo::HostAttachment hp;
  hp.num_hosts = 24;
  GraphUnderlay u = topo::make_transit_stub_underlay(tp, hp, rng);

  const auto check_all_pairs = [&u] {
    // A fresh Router shares no cache state with the underlay's pair cache.
    const Router fresh(u.graph());
    for (HostId a = 0; a < u.num_hosts(); ++a) {
      for (HostId b = 0; b < u.num_hosts(); ++b) {
        const NodeId va = u.host_vertex(a);
        const NodeId vb = u.host_vertex(b);
        if (a <= b) {
          // The cache computes the canonical low -> high orientation:
          // agreement there is exact.
          EXPECT_EQ(u.delay(a, b), fresh.delay(va, vb));
          EXPECT_EQ(u.loss(a, b), fresh.path_loss(va, vb));
        } else {
          // The reverse orientation walks the same links in the opposite
          // order; the sum/product may differ in the last ulps.
          EXPECT_NEAR(u.delay(a, b), fresh.delay(va, vb), 1e-12);
          EXPECT_NEAR(u.loss(a, b), fresh.path_loss(va, vb), 1e-12);
        }
        EXPECT_EQ(u.path_hops(a, b), fresh.hop_count(va, vb));
        std::vector<LinkId> visited;
        u.for_each_path_link(a, b, [&visited](LinkId l) { visited.push_back(l); });
        EXPECT_EQ(visited, fresh.path(va, vb));
      }
    }
  };
  check_all_pairs();

  // Warm cache, then bump the graph version and require recomputation.
  u.mutable_graph().mutable_link(0).delay *= 10.0;
  check_all_pairs();
  const NodeId v0 = u.host_vertex(0);
  const NodeId v1 = u.host_vertex(1);
  u.mutable_graph().add_link(v0, v1, 0.0001);
  check_all_pairs();
  EXPECT_EQ(u.path_hops(0, 1), 1u);  // the new direct link must win
}

TEST(RoutingFastPath, PairCacheIsSymmetricOnUndirectedGraphs) {
  util::Rng rng(51);
  topo::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.routers_per_transit = 2;
  tp.stub_domains_per_transit_router = 1;
  tp.routers_per_stub = 3;
  topo::HostAttachment hp;
  hp.num_hosts = 16;
  const GraphUnderlay u = topo::make_transit_stub_underlay(tp, hp, rng);
  for (HostId a = 0; a < u.num_hosts(); ++a) {
    for (HostId b = a + 1; b < u.num_hosts(); ++b) {
      EXPECT_EQ(u.delay(a, b), u.delay(b, a));
      EXPECT_EQ(u.loss(a, b), u.loss(b, a));
      EXPECT_EQ(u.path_hops(a, b), u.path_hops(b, a));
    }
  }
}

TEST(RoutingFastPath, MatrixUnderlayVisitorMatchesPath) {
  const std::size_t n = 7;
  std::vector<double> delay(n * n, 0.0);
  util::Rng rng(61);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      delay[a * n + b] = delay[b * n + a] = rng.uniform(0.001, 0.2);
    }
  }
  const MatrixUnderlay u(n, std::move(delay));
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = 0; b < n; ++b) {
      std::vector<LinkId> visited;
      u.for_each_path_link(a, b, [&visited](LinkId l) { visited.push_back(l); });
      EXPECT_EQ(visited, u.path(a, b));
      if (a != b) {
        // link_delay inverts pair_link for every pseudo-link.
        EXPECT_DOUBLE_EQ(u.link_delay(u.pair_link(a, b)), u.delay(a, b));
      }
    }
  }
}

TEST(RoutingFastPath, MeasureTreeScratchReuseIsExact) {
  util::Rng rng(71);
  topo::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.routers_per_transit = 3;
  tp.stub_domains_per_transit_router = 2;
  tp.routers_per_stub = 3;
  tp.loss_max = 0.01;
  topo::HostAttachment hp;
  hp.num_hosts = 40;
  GraphUnderlay u = topo::make_transit_stub_underlay(tp, hp, rng);

  overlay::Membership tree(u.num_hosts());
  for (HostId h = 0; h < u.num_hosts(); ++h) tree.activate(h, 4);
  for (HostId h = 1; h < u.num_hosts(); ++h) {
    const HostId parent = static_cast<HostId>(rng.uniform_int(0, h - 1));
    tree.attach(h, parent, u.rtt(parent, h), /*allow_full=*/true);
  }

  const auto expect_same = [](const metrics::TreeMetrics& x,
                              const metrics::TreeMetrics& y) {
    EXPECT_EQ(x.members, y.members);
    EXPECT_EQ(x.stress_avg, y.stress_avg);
    EXPECT_EQ(x.stress_max, y.stress_max);
    EXPECT_EQ(x.links_used, y.links_used);
    EXPECT_EQ(x.stretch_avg, y.stretch_avg);
    EXPECT_EQ(x.stretch_min, y.stretch_min);
    EXPECT_EQ(x.stretch_max, y.stretch_max);
    EXPECT_EQ(x.stretch_leaf_avg, y.stretch_leaf_avg);
    EXPECT_EQ(x.hop_avg, y.hop_avg);
    EXPECT_EQ(x.hop_max, y.hop_max);
    EXPECT_EQ(x.hop_leaf_avg, y.hop_leaf_avg);
    EXPECT_EQ(x.network_usage, y.network_usage);
  };

  metrics::TreeMetricsScratch scratch;
  const metrics::TreeMetrics first = metrics::measure_tree(tree, 0, u, scratch);
  // Reusing the scratch (stale counters, stamped epochs) changes nothing.
  expect_same(first, metrics::measure_tree(tree, 0, u, scratch));
  // Neither does a throwaway scratch.
  expect_same(first, metrics::measure_tree(tree, 0, u));

  // After a graph mutation all three still agree with each other.
  u.mutable_graph().mutable_link(0).delay *= 4.0;
  const metrics::TreeMetrics after = metrics::measure_tree(tree, 0, u, scratch);
  expect_same(after, metrics::measure_tree(tree, 0, u, scratch));
  expect_same(after, metrics::measure_tree(tree, 0, u));
}

}  // namespace
}  // namespace vdm::net
