#include "overlay/metric.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace vdm::overlay {
namespace {

net::MatrixUnderlay lossy_pair(double loss01) {
  std::vector<double> d{0.0, 0.010, 0.010, 0.0};
  std::vector<double> l{0.0, loss01, loss01, 0.0};
  return net::MatrixUnderlay(2, std::move(d), std::move(l));
}

TEST(DelayMetric, ExactWithoutNoise) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 25.0});
  DelayMetric m;
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(m.measure(u, 0, 1, rng), 10.0);
  EXPECT_DOUBLE_EQ(m.measure(u, 0, 2, rng), 25.0);
  EXPECT_DOUBLE_EQ(m.measurement_time(u, 0, 2), 25.0);
  EXPECT_EQ(m.messages_per_measurement(), 2);
}

TEST(DelayMetric, NoiseIsUnbiasedAndBounded) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0});
  DelayMetric m(0.1);
  util::Rng rng(2);
  double sum = 0.0;
  bool varied = false;
  double first = -1.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = m.measure(u, 0, 1, rng);
    EXPECT_GT(v, 0.0);
    if (first < 0.0) {
      first = v;
    } else if (v != first) {
      varied = true;
    }
    sum += v;
  }
  EXPECT_TRUE(varied);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(LossMetric, ZeroLossGivesOnlyTiebreak) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0});
  LossMetric m(/*probes=*/10, /*spacing=*/0.01, /*tiebreak=*/1e-3);
  util::Rng rng(3);
  EXPECT_DOUBLE_EQ(m.measure(u, 0, 1, rng), 1e-3 * 10.0);
}

TEST(LossMetric, HigherLossMeansLargerDistanceOnAverage) {
  const net::MatrixUnderlay low = lossy_pair(0.05);
  const net::MatrixUnderlay high = lossy_pair(0.30);
  LossMetric m(20);
  util::Rng rng(4);
  double sum_low = 0.0, sum_high = 0.0;
  for (int i = 0; i < 500; ++i) {
    sum_low += m.measure(low, 0, 1, rng);
    sum_high += m.measure(high, 0, 1, rng);
  }
  EXPECT_LT(sum_low, sum_high);
}

TEST(LossMetric, MessageAndTimeCosts) {
  const net::MatrixUnderlay u = lossy_pair(0.1);
  LossMetric m(/*probes=*/20, /*spacing=*/0.01);
  EXPECT_EQ(m.messages_per_measurement(), 40);
  // 19 spacings + one RTT (0.020 s).
  EXPECT_NEAR(m.measurement_time(u, 0, 1), 0.19 + 0.020, 1e-12);
}

TEST(LossMetric, LossMeasurementSlowerThanDelayMeasurement) {
  // The trade-off the paper highlights: "measuring loss rate takes long
  // time compared to delay" (§6.2).
  const net::MatrixUnderlay u = lossy_pair(0.1);
  DelayMetric d;
  LossMetric l;
  EXPECT_GT(l.measurement_time(u, 0, 1), d.measurement_time(u, 0, 1));
  EXPECT_GT(l.messages_per_measurement(), d.messages_per_measurement());
}

TEST(LossMetric, FiniteEvenAtExtremeLoss) {
  const net::MatrixUnderlay u = lossy_pair(0.99);
  LossMetric m(20);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double v = m.measure(u, 0, 1, rng);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
}

TEST(BlendMetric, PureDelayWeightTracksDelay) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 20.0});
  BlendMetric m(1.0, 0.0);
  util::Rng rng(6);
  const double d01 = m.measure(u, 0, 1, rng);
  const double d02 = m.measure(u, 0, 2, rng);
  EXPECT_NEAR(d02 / d01, 2.0, 1e-9);
  EXPECT_EQ(m.messages_per_measurement(), 2);
}

TEST(BlendMetric, LossWeightIncreasesDistanceOfLossyPath) {
  // Two pairs with identical delay, different loss: the blend must rank the
  // lossy one farther.
  const net::MatrixUnderlay clean = lossy_pair(0.0);
  const net::MatrixUnderlay dirty = lossy_pair(0.3);
  BlendMetric m(0.5, 0.5);
  util::Rng rng(7);
  double sum_clean = 0.0, sum_dirty = 0.0;
  for (int i = 0; i < 300; ++i) {
    sum_clean += m.measure(clean, 0, 1, rng);
    sum_dirty += m.measure(dirty, 0, 1, rng);
  }
  EXPECT_LT(sum_clean, sum_dirty);
}

TEST(BlendMetric, RejectsInvalidWeights) {
  EXPECT_THROW(BlendMetric(-1.0, 0.5), util::InvariantError);
  EXPECT_THROW(BlendMetric(0.0, 0.0), util::InvariantError);
}

TEST(BlendMetric, TimeIsMaxOfComponents) {
  const net::MatrixUnderlay u = lossy_pair(0.1);
  BlendMetric m(0.5, 0.5, /*probes=*/20, /*spacing=*/0.01);
  EXPECT_NEAR(m.measurement_time(u, 0, 1), 0.19 + 0.020, 1e-12);
}

TEST(MetricProviders, NamesAreDistinct) {
  DelayMetric d;
  LossMetric l;
  BlendMetric b(0.5, 0.5);
  EXPECT_EQ(d.name(), "delay");
  EXPECT_EQ(l.name(), "loss");
  EXPECT_EQ(b.name(), "blend");
}

}  // namespace
}  // namespace vdm::overlay
