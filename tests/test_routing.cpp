#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "topology/simple.hpp"
#include "topology/transit_stub.hpp"
#include "util/rng.hpp"

namespace vdm::net {
namespace {

TEST(Router, LineTopologyDistances) {
  const Graph g = topo::make_line(5, 0.010);
  Router r(g);
  EXPECT_DOUBLE_EQ(r.delay(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.delay(0, 4), 0.040);
  EXPECT_DOUBLE_EQ(r.delay(4, 0), 0.040);
  EXPECT_DOUBLE_EQ(r.delay(1, 3), 0.020);
}

TEST(Router, LinePathLinksInOrder) {
  const Graph g = topo::make_line(4, 0.010);
  Router r(g);
  const auto path = r.path(0, 3);
  ASSERT_EQ(path.size(), 3u);
  // Links were added in order 0-1, 1-2, 2-3.
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
}

TEST(Router, SelfPathIsEmpty) {
  const Graph g = topo::make_line(3);
  Router r(g);
  EXPECT_TRUE(r.path(1, 1).empty());
  EXPECT_EQ(r.hop_count(1, 1), 0u);
}

TEST(Router, RingTakesShorterArc) {
  const Graph g = topo::make_ring(6, 0.010);
  Router r(g);
  EXPECT_DOUBLE_EQ(r.delay(0, 2), 0.020);  // not 4 hops the long way
  EXPECT_EQ(r.hop_count(0, 2), 2u);
  EXPECT_DOUBLE_EQ(r.delay(0, 5), 0.010);  // wrap-around link
  EXPECT_EQ(r.hop_count(0, 5), 1u);
}

TEST(Router, PicksLowerDelayOverFewerHops) {
  Graph g;
  g.add_nodes(3);
  g.add_link(0, 2, 0.100);               // direct but slow
  g.add_link(0, 1, 0.010);
  g.add_link(1, 2, 0.010);               // two fast hops
  Router r(g);
  EXPECT_DOUBLE_EQ(r.delay(0, 2), 0.020);
  EXPECT_EQ(r.hop_count(0, 2), 2u);
}

TEST(Router, ParallelLinksUseCheapest) {
  Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, 0.050);
  const LinkId fast = g.add_link(0, 1, 0.010);
  Router r(g);
  EXPECT_DOUBLE_EQ(r.delay(0, 1), 0.010);
  ASSERT_EQ(r.path(0, 1).size(), 1u);
  EXPECT_EQ(r.path(0, 1)[0], fast);
}

TEST(Router, UnreachableIsInfinite) {
  Graph g;
  g.add_nodes(3);
  g.add_link(0, 1, 0.010);
  Router r(g);
  EXPECT_TRUE(std::isinf(r.delay(0, 2)));
  EXPECT_TRUE(r.path(0, 2).empty());
}

TEST(Router, PathLossCompounds) {
  Graph g;
  g.add_nodes(3);
  g.add_link(0, 1, 0.010, 0.1);
  g.add_link(1, 2, 0.010, 0.2);
  Router r(g);
  EXPECT_NEAR(r.path_loss(0, 2), 1.0 - 0.9 * 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(r.path_loss(1, 1), 0.0);
}

TEST(Router, CacheInvalidatesOnGraphMutation) {
  Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, 0.050);
  Router r(g);
  EXPECT_DOUBLE_EQ(r.delay(0, 1), 0.050);
  g.add_link(0, 1, 0.010);  // bump version with a faster parallel link
  EXPECT_DOUBLE_EQ(r.delay(0, 1), 0.010);
}

TEST(Router, GridDistancesAreManhattan) {
  const Graph g = topo::make_grid(4, 4, 0.010);
  Router r(g);
  // (0,0) -> (3,3): 6 hops of 10ms.
  EXPECT_NEAR(r.delay(0, 15), 0.060, 1e-12);
  EXPECT_EQ(r.hop_count(0, 15), 6u);
}

TEST(Router, SymmetricDistancesOnRandomTopology) {
  util::Rng rng(42);
  topo::TransitStubParams params;
  params.transit_domains = 2;
  params.routers_per_transit = 3;
  params.stub_domains_per_transit_router = 2;
  params.routers_per_stub = 3;
  const auto topo = topo::make_transit_stub(params, rng);
  Router r(topo.graph);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      EXPECT_NEAR(r.delay(a, b), r.delay(b, a), 1e-12);
    }
  }
}

TEST(Router, TriangleInequalityHoldsForShortestPaths) {
  util::Rng rng(7);
  topo::TransitStubParams params;
  params.transit_domains = 2;
  params.routers_per_transit = 2;
  params.stub_domains_per_transit_router = 2;
  params.routers_per_stub = 2;
  const auto topo = topo::make_transit_stub(params, rng);
  Router r(topo.graph);
  const auto n = static_cast<NodeId>(topo.graph.num_nodes());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      for (NodeId c = 0; c < n; ++c) {
        EXPECT_LE(r.delay(a, c), r.delay(a, b) + r.delay(b, c) + 1e-12);
      }
    }
  }
}

TEST(Router, PathDelaysSumToDistance) {
  util::Rng rng(11);
  topo::TransitStubParams params;
  params.transit_domains = 2;
  params.routers_per_transit = 3;
  params.stub_domains_per_transit_router = 1;
  params.routers_per_stub = 4;
  const auto topo = topo::make_transit_stub(params, rng);
  Router r(topo.graph);
  const auto n = static_cast<NodeId>(topo.graph.num_nodes());
  for (NodeId a = 0; a < n; a += 3) {
    for (NodeId b = 0; b < n; b += 5) {
      double sum = 0.0;
      for (const LinkId l : r.path(a, b)) sum += topo.graph.link(l).delay;
      EXPECT_NEAR(sum, r.delay(a, b), 1e-12);
    }
  }
}

TEST(Router, ClearCacheStillCorrect) {
  const Graph g = topo::make_line(5, 0.010);
  Router r(g);
  EXPECT_DOUBLE_EQ(r.delay(0, 4), 0.040);
  r.clear_cache();
  EXPECT_DOUBLE_EQ(r.delay(0, 4), 0.040);
}

}  // namespace
}  // namespace vdm::net
