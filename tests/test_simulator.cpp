#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"

namespace vdm::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, FifoAtEqualTimestamps) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(2.0, [&] {
    s.schedule_in(1.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.schedule_at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(4.0, [] {}), util::InvariantError);
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), util::InvariantError);
}

TEST(Simulator, RejectsNullCallback) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(1.0, nullptr), util::InvariantError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.cancel(id);
  EXPECT_NO_THROW(s.cancel(id));
  s.run();
  EXPECT_NO_THROW(s.cancel(id));  // after it would have fired
}

TEST(Simulator, CancelFromInsideEarlierEvent) {
  Simulator s;
  bool fired = false;
  const EventId later = s.schedule_at(2.0, [&] { fired = true; });
  s.schedule_at(1.0, [&] { s.cancel(later); });
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilExecutesInclusiveAndAdvancesClock) {
  Simulator s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  s.schedule_at(3.0, [&] { ++count; });
  const std::size_t ran = s.run_until(2.0);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, RunUntilOnEmptyQueueAdvancesClock) {
  Simulator s;
  EXPECT_EQ(s.run_until(10.0), 0u);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  std::vector<double> times;
  s.schedule_at(1.0, [&] {
    times.push_back(s.now());
    s.schedule_in(0.5, [&] { times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Simulator, RunHonorsMaxEvents) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i + 1.0, [&] { ++count; });
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, ExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Periodic, FiresRepeatedly) {
  Simulator s;
  int fires = 0;
  Periodic p(s, 1.0, [&] { ++fires; });
  s.run_until(5.5);
  EXPECT_EQ(fires, 5);
}

TEST(Periodic, StopHaltsFiring) {
  Simulator s;
  int fires = 0;
  Periodic p(s, 1.0, [&] {
    ++fires;
    if (fires == 3) p.stop();
  });
  s.run_until(10.0);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(p.running());
}

TEST(Periodic, DestructionCancelsPending) {
  Simulator s;
  int fires = 0;
  {
    Periodic p(s, 1.0, [&] { ++fires; });
    s.run_until(2.5);
  }
  s.run_until(10.0);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Periodic, RejectsNonPositiveInterval) {
  Simulator s;
  EXPECT_THROW(Periodic(s, 0.0, [] {}), util::InvariantError);
}

TEST(Simulator, DeterministicInterleaving) {
  // Two identical schedules must execute identically (the bit-determinism
  // the experiment runner relies on).
  auto run_one = [] {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      s.schedule_at((i * 7) % 13 + 0.5, [&order, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run_one(), run_one());
}

}  // namespace
}  // namespace vdm::sim
