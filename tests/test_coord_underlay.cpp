// CoordUnderlay: the coordinate-embedded substrate's metric properties and
// arena-reuse contract. Delay here is pure arithmetic over endpoint
// coordinates, so the tests pin the properties protocols implicitly rely
// on — symmetry (probes measure the same RTT in both directions), zero
// self-distance, and the triangle inequality (a relay can never beat the
// direct path) — plus the release/rebind roundtrip and a run_once smoke.

#include "net/coord_underlay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "experiments/runner.hpp"
#include "topology/coord.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace vdm::net {
namespace {

/// World-wide geo placements: the widest coordinate spread the generators
/// produce (antipodal-ish pairs, longitude wraps) — the adversarial input
/// for the spherical metric.
CoordUnderlay world_underlay(std::size_t n, std::uint64_t seed = 11) {
  topo::CoordParams cp;
  cp.num_hosts = n;
  cp.space = topo::CoordSpace::kGeo;
  cp.regions = topo::world_regions();
  util::Rng rng(seed);
  return topo::make_coord(cp, rng);
}

TEST(CoordUnderlay, SelfDelayIsExactlyZero) {
  const CoordUnderlay u = world_underlay(64);
  for (HostId h = 0; h < u.num_hosts(); ++h) {
    EXPECT_EQ(u.delay(h, h), 0.0);
    EXPECT_EQ(u.loss(h, h), 0.0);
  }
}

TEST(CoordUnderlay, DelayIsSymmetricBitwise) {
  const CoordUnderlay u = world_underlay(64);
  for (HostId a = 0; a < u.num_hosts(); ++a) {
    for (HostId b = a + 1; b < u.num_hosts(); ++b) {
      // Exact equality: both directions evaluate the same arithmetic on the
      // same operands, and probe code relies on d(a,b) == d(b,a) bit for bit.
      EXPECT_EQ(u.delay(a, b), u.delay(b, a)) << a << " -> " << b;
    }
  }
}

TEST(CoordUnderlay, DelayIsPositiveAndFloored) {
  const CoordUnderlay u = world_underlay(64);
  for (HostId a = 0; a < u.num_hosts(); ++a) {
    for (HostId b = 0; b < u.num_hosts(); ++b) {
      if (a == b) continue;
      EXPECT_GE(u.delay(a, b), u.params().min_delay);
    }
  }
}

TEST(CoordUnderlay, TriangleInequalityOnGeoInputs) {
  // Great-circle distance is a metric and both the constant inflation and
  // the max(min_delay, .) floor preserve subadditivity:
  //   max(m, r1 + r2) <= max(m, r1) + max(m, r2).
  // Tolerance covers only floating-point rounding of the asin/sqrt chain.
  const CoordUnderlay u = world_underlay(24);
  const std::size_t n = u.num_hosts();
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = 0; b < n; ++b) {
      for (HostId c = 0; c < n; ++c) {
        const double direct = u.delay(a, c);
        const double relayed = u.delay(a, b) + u.delay(b, c);
        EXPECT_LE(direct, relayed + 1e-12)
            << "detour via " << b << " beat direct " << a << " -> " << c;
      }
    }
  }
}

TEST(CoordUnderlay, EuclideanDelayMatchesHandComputation) {
  CoordUnderlay::Params p;
  p.space = CoordUnderlay::Space::kEuclidean;
  // 3-4-5 triangle in km: hosts at (0,0), (300,400) -> 500 km apart.
  const CoordUnderlay u(p, {0.0, 300.0}, {0.0, 400.0});
  EXPECT_NEAR(u.delay(0, 1), 500.0 * p.inflation / p.propagation_kms, 1e-15);
  EXPECT_EQ(u.rtt(0, 1), 2.0 * u.delay(0, 1));
}

TEST(CoordUnderlay, MinDelayFloorsShortHops) {
  CoordUnderlay::Params p;
  p.space = CoordUnderlay::Space::kEuclidean;
  p.min_delay = 0.01;
  // 1 km apart: raw propagation would be ~9.5 microseconds, far under the
  // floor.
  const CoordUnderlay u(p, {0.0, 1.0}, {0.0, 0.0});
  EXPECT_EQ(u.delay(0, 1), 0.01);
  EXPECT_EQ(u.delay(0, 0), 0.0);  // the floor never applies to self
}

TEST(CoordUnderlay, NoLinksNoPathsUniformLoss) {
  CoordUnderlay::Params p;
  p.loss = 0.25;
  const CoordUnderlay u(p, {10.0, 20.0, 30.0}, {0.0, 5.0, 10.0});
  EXPECT_EQ(u.num_links(), 0u);
  EXPECT_TRUE(u.path(0, 2).empty());
  int visits = 0;
  u.for_each_path_link(0, 2, [&](LinkId) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(u.loss(0, 2), 0.25);
  EXPECT_EQ(u.loss(2, 2), 0.0);
}

TEST(CoordUnderlay, RejectsMalformedInputs) {
  const CoordUnderlay::Params ok;
  EXPECT_THROW(CoordUnderlay(ok, {1.0, 2.0}, {1.0}), util::InvariantError);
  EXPECT_THROW(CoordUnderlay(ok, {1.0}, {1.0}), util::InvariantError);
  CoordUnderlay::Params bad_loss;
  bad_loss.loss = 1.0;  // certain loss would deadlock every session
  EXPECT_THROW(CoordUnderlay(bad_loss, {1.0, 2.0}, {3.0, 4.0}),
               util::InvariantError);
  CoordUnderlay::Params bad_floor;
  bad_floor.min_delay = -1.0;
  EXPECT_THROW(CoordUnderlay(bad_floor, {1.0, 2.0}, {3.0, 4.0}),
               util::InvariantError);
}

TEST(CoordUnderlay, ReleaseRebindRoundtripPreservesDelays) {
  topo::CoordParams cp;
  cp.num_hosts = 32;
  cp.space = topo::CoordSpace::kGeo;
  cp.regions = topo::world_regions();
  util::Rng rng(5);
  std::vector<double> x, y;
  topo::make_coord_into(cp, rng, x, y);
  const std::vector<double> x_copy = x;
  const std::vector<double> y_copy = y;

  CoordUnderlay::Params p;  // spherical
  CoordUnderlay u(p, std::move(x), std::move(y));
  std::vector<std::pair<HostId, double>> before;
  for (HostId b = 1; b < u.num_hosts(); ++b) before.emplace_back(b, u.delay(0, b));

  std::vector<double> rx, ry;
  u.release(rx, ry);
  EXPECT_EQ(rx, x_copy);  // release hands back the exact coordinates
  EXPECT_EQ(ry, y_copy);
  u.rebind(p, std::move(rx), std::move(ry));
  ASSERT_EQ(u.num_hosts(), cp.num_hosts);
  for (const auto& [b, d] : before) {
    EXPECT_EQ(u.delay(0, b), d);  // bitwise: same arithmetic, same operands
  }
  EXPECT_GT(u.arena_capacity_bytes(), 0u);
}

TEST(CoordUnderlay, RunOnceCoordSubstrateSmoke) {
  // End to end on the coordinate substrate: the flood floods, members join,
  // stress is identically zero (no links to stress) and stretch is a valid
  // ratio against the direct coordinate distance.
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kCoordWorld;
  cfg.scenario.target_members = 48;
  cfg.scenario.join_phase = 200.0;
  cfg.scenario.total_time = 1000.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.1;
  cfg.seed = 3;
  const experiments::RunResult r = experiments::run_once(cfg);
  EXPECT_EQ(r.stress, 0.0);
  EXPECT_EQ(r.stress_max, 0.0);
  EXPECT_GE(r.stretch, 1.0);
  EXPECT_GT(r.hopcount, 0.0);
  EXPECT_GT(r.final_members, 0u);
  EXPECT_GT(r.mst_ratio, 0.0);  // computed by default at this size
}

TEST(CoordUnderlay, MstRatioKnobSkipsTheBaseline) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kCoordPlane;
  cfg.scenario.target_members = 32;
  cfg.scenario.join_phase = 200.0;
  cfg.scenario.total_time = 600.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.seed = 3;
  cfg.compute_mst_ratio = false;
  const experiments::RunResult off = experiments::run_once(cfg);
  EXPECT_EQ(off.mst_ratio, 1.0);
  cfg.compute_mst_ratio = true;
  const experiments::RunResult on = experiments::run_once(cfg);
  EXPECT_GE(on.mst_ratio, 1.0);
  // Everything except the mst_ratio column is untouched by the knob.
  EXPECT_EQ(off.loss, on.loss);
  EXPECT_EQ(off.stretch, on.stretch);
  EXPECT_EQ(off.final_members, on.final_members);
}

}  // namespace
}  // namespace vdm::net
