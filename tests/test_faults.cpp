// Crash-failure injection and recovery: Session::crash, the heartbeat
// failure detector, the lossy control plane with retry/backoff, and the
// determinism contract that all-zero fault knobs reproduce fault-free runs
// bit for bit.

#include <gtest/gtest.h>

#include "core/vdm_protocol.hpp"
#include "experiments/runner.hpp"
#include "helpers.hpp"
#include "util/require.hpp"

namespace vdm::overlay {
namespace {

using testutil::Harness;
using testutil::line_underlay;

/// Harness variant with explicit fault knobs (and a slower chunk rate so
/// chunk counts stay easy to reason about).
struct FaultHarness {
  sim::Simulator sim;
  net::MatrixUnderlay underlay;
  DelayMetric metric;
  core::VdmProtocol protocol;
  Session session;

  FaultHarness(net::MatrixUnderlay u, const FaultParams& faults,
               double chunk_rate = 1.0, std::uint64_t seed = 1)
      : underlay(std::move(u)), metric(0.0),
        session(sim, underlay, protocol, metric,
                make_params(faults, chunk_rate), util::Rng(seed)) {
    session.start();
  }

  static SessionParams make_params(const FaultParams& faults, double chunk_rate) {
    SessionParams sp;
    sp.source = 0;
    sp.source_degree_limit = 8;
    sp.chunk_rate = chunk_rate;
    sp.paranoid_checks = true;
    sp.faults = faults;
    return sp;
  }

  net::HostId parent(net::HostId h) const { return session.tree().member(h).parent; }
};

TEST(Crash, WithoutHeartbeatReconnectsInstantly) {
  // heartbeat_period == 0 models idealized instant detection: the orphan
  // rejoins within the crash event, from its grandparent, with zero
  // detection latency recorded.
  FaultHarness h(line_underlay({0.0, 10.0, 20.0}), FaultParams{});
  h.session.join(1, 8);
  h.session.join(2, 8);
  ASSERT_EQ(h.parent(2), 1u);

  h.session.crash(1);
  EXPECT_EQ(h.parent(2), 0u);  // reconnected from grandparent immediately
  EXPECT_EQ(h.session.totals().crashes, 1u);
  EXPECT_EQ(h.session.totals().reconnects_completed, 1u);
  const std::vector<TimingRecord> recs = h.session.take_reconnect_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].host, 2u);
  EXPECT_DOUBLE_EQ(recs[0].detection, 0.0);
  EXPECT_GT(recs[0].duration, 0.0);
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(Crash, RejectsSourceAndDeadMembers) {
  FaultHarness h(line_underlay({0.0, 10.0}), FaultParams{});
  h.session.join(1, 8);
  EXPECT_THROW(h.session.crash(0), util::InvariantError);  // the source
  h.session.crash(1);
  EXPECT_THROW(h.session.crash(1), util::InvariantError);  // already gone
}

TEST(Crash, PaysNoNotificationMessages) {
  // A graceful leave notifies parent and children; a crash sends nothing.
  const auto build = [] {
    auto h = std::make_unique<FaultHarness>(line_underlay({0.0, 10.0, 20.0}),
                                            FaultParams{});
    h->session.join(1, 8);
    h->session.join(2, 8);
    h->session.reset_window();
    return h;
  };
  auto a = build();
  a->session.leave(1);
  auto b = build();
  b->session.crash(1);
  // Same reconnection work for the orphan, minus the leave notices.
  EXPECT_LT(b->session.window().control_messages,
            a->session.window().control_messages);
}

TEST(Heartbeat, DetectsCrashAfterMissStreakExactly) {
  // Tiny RTTs keep the rejoin handshake well under one heartbeat period so
  // the timeline stays exact: probes from t=1 every 1 s answered until the
  // parent crashes at t=4.25; probes at 5, 6, 7 go unanswered; the verdict
  // lands heartbeat_timeout=0.5 after the third miss, at t=7.5.
  FaultParams f;
  f.heartbeat_period = 1.0;
  f.heartbeat_misses = 3;
  f.heartbeat_timeout = 0.5;
  FaultHarness h(line_underlay({0.0, 0.06, 0.1}), f);
  h.session.join(1, 8);
  h.session.join(2, 8);
  ASSERT_EQ(h.parent(2), 1u);

  h.sim.schedule_at(4.25, [&] { h.session.crash(1); });
  h.sim.run_until(4.26);
  // Detection pending: the orphan is detached, invisible to the flood.
  EXPECT_EQ(h.parent(2), net::kInvalidHost);
  EXPECT_FALSE(h.session.tree().is_ancestor(0, 2));

  h.sim.run_until(10.0);
  EXPECT_EQ(h.parent(2), 0u);  // rejoined from grandparent
  const std::vector<TimingRecord> recs = h.session.take_reconnect_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].host, 2u);
  EXPECT_DOUBLE_EQ(recs[0].at, 7.5);
  EXPECT_DOUBLE_EQ(recs[0].detection, 7.5 - 4.25);
  EXPECT_GT(recs[0].duration, 0.0);
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(Heartbeat, RecoveredStreakResetsTheDetector) {
  // Misses below the threshold must not accumulate across answered probes;
  // with a lossless control plane a live parent is never declared dead.
  FaultParams f;
  f.heartbeat_period = 1.0;
  f.heartbeat_misses = 2;
  FaultHarness h(line_underlay({0.0, 0.06, 0.1}), f);
  h.session.join(1, 8);
  h.session.join(2, 8);
  h.sim.run_until(50.0);
  EXPECT_EQ(h.parent(2), 1u);
  EXPECT_EQ(h.session.totals().reconnects_completed, 0u);
}

TEST(Heartbeat, FalsePositiveDetachesAndRejoins) {
  // control_loss_extra = 1 drops every probe (chance(1) draws nothing, so
  // the run stays deterministic): node 2's streak starts at its first probe
  // (t=1), reaches 3 misses at t=3, and the false verdict lands at t=3.5.
  // The parent is alive — the node acts on the verdict anyway, detaching
  // and rejoining in the same event; detection latency is measured from
  // the first miss.
  FaultParams f;
  f.heartbeat_period = 1.0;
  f.heartbeat_misses = 3;
  f.heartbeat_timeout = 0.5;
  f.lossy_control = true;
  f.control_loss_extra = 1.0;
  f.max_retries = 1;
  FaultHarness h(line_underlay({0.0, 0.06, 0.1}), f);
  h.session.join(1, 8);
  h.session.join(2, 8);
  ASSERT_EQ(h.parent(2), 1u);

  h.sim.run_until(3.75);
  const std::vector<TimingRecord> recs = h.session.take_reconnect_records();
  ASSERT_GE(recs.size(), 1u);
  EXPECT_EQ(recs[0].at, 3.5);
  EXPECT_DOUBLE_EQ(recs[0].detection, 3.5 - 1.0);
  // Still in the tree: the rejoin happened within the detection event.
  EXPECT_TRUE(h.session.tree().is_ancestor(0, 2));
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(LossyControl, ChargesRetriesWithExponentialBackoff) {
  // Every exchange loses both attempts (chance(1), no draws) and exhausts
  // max_retries = 2: each of the join's three round trips costs the base
  // RTT (10) plus 0.25 + 0.5 of backoff wait, and triple the messages.
  FaultParams f;
  f.lossy_control = true;
  f.control_loss_extra = 1.0;
  f.retry_timeout = 0.25;
  f.backoff_factor = 2.0;
  f.retry_timeout_max = 4.0;
  f.max_retries = 2;
  FaultHarness h(line_underlay({0.0, 10.0}), f);
  const TimingRecord rec = h.session.join(1, 4);
  EXPECT_EQ(rec.messages, 18);                 // 3 exchanges x 2 msgs x 3 sends
  EXPECT_DOUBLE_EQ(rec.duration, 3 * (10.0 + 0.75));
}

TEST(LossyControl, BackoffIsCappedAtRetryTimeoutMax) {
  FaultParams f;
  f.lossy_control = true;
  f.control_loss_extra = 1.0;
  f.retry_timeout = 1.0;
  f.backoff_factor = 2.0;
  f.retry_timeout_max = 2.0;
  f.max_retries = 4;  // waits 1 + 2 + 2 + 2 (capped), not 1 + 2 + 4 + 8
  FaultHarness h(line_underlay({0.0, 10.0}), f);
  const TimingRecord rec = h.session.join(1, 4);
  EXPECT_DOUBLE_EQ(rec.duration, 3 * (10.0 + 7.0));
}

TEST(LossyControl, ZeroExtraLossOnLosslessPathsDrawsNothing) {
  // lossy_control on, but effective p == 0: elapsed/messages and the whole
  // tree must be identical to the knob-off run (Rng::chance(0) contract).
  const auto run = [](bool lossy) {
    FaultParams f;
    f.lossy_control = lossy;
    FaultHarness h(line_underlay({0.0, 10.0, 20.0, 5.0}), f);
    std::vector<TimingRecord> recs;
    for (net::HostId n = 1; n <= 3; ++n) recs.push_back(h.session.join(n, 4));
    return recs;
  };
  const auto a = run(false);
  const auto b = run(true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].messages, b[i].messages);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
  }
}

TEST(Crash, OrphanSubtreeCountsMissedChunksDuringOutage) {
  // Chunks flow at 1/s from t=1. Parent crashes at t=4.25; the orphan's
  // verdict lands at t=7.5 (3 misses + 0.5 timeout), so the chunks at
  // t=5, 6, 7 are expected but undeliverable — exactly 3 lost chunks.
  // (RTTs are tiny so join/rejoin handshake outages stay under the gaps
  // between chunk emissions.)
  FaultParams f;
  f.heartbeat_period = 1.0;
  f.heartbeat_misses = 3;
  f.heartbeat_timeout = 0.5;
  FaultHarness h(line_underlay({0.0, 0.06, 0.1}), f, /*chunk_rate=*/1.0);
  h.session.join(1, 8);
  h.session.join(2, 8);
  ASSERT_EQ(h.parent(2), 1u);

  h.sim.schedule_at(4.25, [&] { h.session.crash(1); });
  h.sim.run_until(10.4);  // chunks at 1..10; rejoin done by 8
  h.session.stop();
  const Session::Counters& t = h.session.totals();
  EXPECT_EQ(t.chunks_expected - t.chunks_delivered, 3u);
  EXPECT_EQ(h.session.totals().crashes, 1u);
}

TEST(Faults, InertKnobsDoNotPerturbRunOnce) {
  // With heartbeat_period == 0 and lossy_control == false every other
  // fault knob is dead configuration: the full experiment pipeline must
  // produce bit-identical scalars whatever their values.
  experiments::RunConfig base;
  base.substrate = experiments::Substrate::kTransitStub;
  base.protocol = experiments::Proto::kVdm;
  base.scenario.target_members = 32;
  base.seed = 5;

  experiments::RunConfig tweaked = base;
  tweaked.session.faults.heartbeat_misses = 7;
  tweaked.session.faults.heartbeat_timeout = 9.0;
  tweaked.session.faults.control_loss_extra = 0.5;  // inert: lossy_control off
  tweaked.session.faults.retry_timeout = 3.0;
  tweaked.session.faults.max_retries = 1;

  const experiments::RunResult a = experiments::run_once(base);
  const experiments::RunResult b = experiments::run_once(tweaked);
  EXPECT_EQ(a.stretch, b.stretch);
  EXPECT_EQ(a.stress, b.stress);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.overhead, b.overhead);
  EXPECT_EQ(a.startup_avg, b.startup_avg);
  EXPECT_EQ(a.reconnect_avg, b.reconnect_avg);
  EXPECT_EQ(a.detection_avg, 0.0);
  EXPECT_EQ(b.detection_avg, 0.0);
}

TEST(Faults, CrashChurnRunOnceReportsDetectionAndOutage) {
  // End-to-end: scenario-driven crashes with heartbeats and a lossy control
  // plane produce separate detection and outage statistics, and the outage
  // always includes the detection that preceded it.
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = 32;
  cfg.scenario.join_phase = 200.0;
  cfg.scenario.total_time = 2000.0;
  cfg.scenario.churn_interval = 100.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.10;
  cfg.scenario.crash_fraction = 1.0;  // every departure is a crash
  cfg.session.faults.heartbeat_period = 1.0;
  cfg.session.faults.heartbeat_misses = 3;
  cfg.session.faults.heartbeat_timeout = 0.5;
  cfg.session.faults.lossy_control = true;
  cfg.session.faults.control_loss_extra = 0.01;
  cfg.seed = 3;
  const experiments::RunResult r = experiments::run_once(cfg);
  EXPECT_GT(r.detection_avg, 0.0);
  EXPECT_GE(r.outage_avg, r.detection_avg);
  EXPECT_GE(r.outage_max, r.detection_max);
  // Crash churn with delayed detection must show up as data loss.
  EXPECT_GT(r.loss, 0.0);
}

}  // namespace
}  // namespace vdm::overlay
