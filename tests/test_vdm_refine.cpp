#include <gtest/gtest.h>

#include "core/vdm_protocol.hpp"
#include "helpers.hpp"

namespace vdm::core {
namespace {

using testutil::Harness;
using testutil::line_underlay;

TEST(VdmRefine, MovesNodeToBetterParent) {
  // Hand-build a pessimal attachment: B (pos 20) directly under S even
  // though A (pos 10) is on the way. Refinement re-runs the join search and
  // relocates B under A (Case III at the source).
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  overlay::Membership& tree = h.session.tree();
  tree.activate(1, 8);
  tree.attach(1, 0, 10.0);
  tree.activate(2, 8);
  tree.attach(2, 0, 20.0);  // pessimal
  const overlay::OpStats stats = h.session.refine(2);
  EXPECT_TRUE(stats.parent_changed);
  EXPECT_EQ(h.parent(2), 1u);
  EXPECT_NO_THROW(tree.validate());
}

TEST(VdmRefine, NoChangeWhenAlreadyOptimal) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);  // chain S -> A -> B, already ideal
  const overlay::OpStats stats = h.session.refine(2);
  EXPECT_FALSE(stats.parent_changed);
  EXPECT_EQ(h.parent(2), 1u);
}

TEST(VdmRefine, RefineIsIdempotent) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  overlay::Membership& tree = h.session.tree();
  tree.activate(1, 8);
  tree.attach(1, 0, 10.0);
  tree.activate(2, 8);
  tree.attach(2, 0, 20.0);
  EXPECT_TRUE(h.session.refine(2).parent_changed);
  EXPECT_FALSE(h.session.refine(2).parent_changed);
  EXPECT_EQ(h.parent(2), 1u);
}

TEST(VdmRefine, NoSwitchRefreshesStoredParentDistance) {
  // A refinement round that keeps the current parent still measured
  // d(N, P); that fresh sample must replace the stored edge distance, or
  // later directionality classifications at P keep using the stale value.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  overlay::Membership& tree = h.session.tree();
  tree.activate(1, 8);
  tree.attach(1, 0, 10.0);
  tree.activate(2, 8);
  tree.attach(2, 1, 999.0);  // stale/garbage stored distance, right parent
  const overlay::OpStats stats = h.session.refine(2);
  EXPECT_FALSE(stats.parent_changed);
  EXPECT_EQ(h.parent(2), 1u);
  EXPECT_DOUBLE_EQ(tree.stored_child_distance(1, 2), 10.0);
}

TEST(VdmRefine, SourceAndDetachedNodesAreNoOps) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  EXPECT_FALSE(h.session.refine(0).parent_changed);  // source
  EXPECT_EQ(h.session.refine(2).messages, 0);        // not alive
}

TEST(VdmRefine, SubtreeMovesWithRefinedNode) {
  // B carries child C; refining B relocates the pair without breaking C.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), vdm);
  overlay::Membership& tree = h.session.tree();
  tree.activate(1, 8);
  tree.attach(1, 0, 10.0);
  tree.activate(2, 8);
  tree.attach(2, 0, 20.0);  // pessimal
  tree.activate(3, 8);
  tree.attach(3, 2, 10.0);
  EXPECT_TRUE(h.session.refine(2).parent_changed);
  EXPECT_EQ(h.parent(2), 1u);
  EXPECT_EQ(h.parent(3), 2u);  // subtree intact
  EXPECT_NO_THROW(tree.validate());
}

TEST(VdmRefine, RefineNeverAttachesInsideOwnSubtree) {
  // A refined node with a deep subtree must ignore its own descendants as
  // candidate parents even when they are geometrically ideal.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 30.0, 20.0, 10.0}), vdm);
  overlay::Membership& tree = h.session.tree();
  // S -> A(30) -> B(20) -> C(10): B and C are "between" S and A.
  tree.activate(1, 8);
  tree.attach(1, 0, 30.0);
  tree.activate(2, 8);
  tree.attach(2, 1, 10.0);
  tree.activate(3, 8);
  tree.attach(3, 2, 10.0);
  // Refining A: the best geometric parents (B, C) are its own descendants.
  h.session.refine(1);
  EXPECT_NO_THROW(tree.validate());
  EXPECT_NE(h.parent(1), 2u);
  EXPECT_NE(h.parent(1), 3u);
}

TEST(VdmRefine, PeriodicRefinementRunsOnTimers) {
  VdmConfig cfg;
  cfg.refinement = true;
  cfg.refinement_period = 60.0;
  VdmProtocol vdm(cfg);
  EXPECT_TRUE(vdm.wants_refinement());
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  h.sim.run_until(200.0);
  EXPECT_GE(h.session.totals().refines_run, 4u);  // 2 nodes x >= 2 rounds
}

TEST(VdmRefine, NoTimersWithoutRefinementConfig) {
  VdmProtocol vdm;  // refinement off by default
  EXPECT_FALSE(vdm.wants_refinement());
  Harness h(line_underlay({0.0, 10.0}), vdm);
  h.join(1);
  h.sim.run_until(1000.0);
  EXPECT_EQ(h.session.totals().refines_run, 0u);
}

TEST(VdmRefine, RefinementChargesOverhead) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  h.session.reset_window();
  h.session.refine(2);
  EXPECT_GT(h.session.window().control_messages, 0u);
}

}  // namespace
}  // namespace vdm::core
