#include "metrics/collector.hpp"

#include <gtest/gtest.h>

#include "core/vdm_protocol.hpp"
#include "helpers.hpp"

namespace vdm::metrics {
namespace {

using testutil::Harness;
using testutil::line_underlay;

TEST(Collector, CaptureSnapshotsTreeAndWindow) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm, 8, 1, /*chunk_rate=*/5.0);
  Collector c(h.session);
  h.join(1);
  h.join(2);
  h.sim.run_until(50.0);
  c.capture(h.sim.now());
  ASSERT_EQ(c.samples().size(), 1u);
  const EpochSample& e = c.samples()[0];
  EXPECT_DOUBLE_EQ(e.at, 50.0);
  EXPECT_EQ(e.tree.members, 3u);
  EXPECT_GT(e.control_messages, 0u);
  EXPECT_GT(e.data_transmissions, 0u);
  EXPECT_EQ(e.startup_times.size(), 2u);
  EXPECT_TRUE(e.reconnect_times.empty());
}

TEST(Collector, CaptureResetsWindow) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  Collector c(h.session);
  h.join(1);
  c.capture(h.sim.now());
  c.capture(h.sim.now());
  EXPECT_GT(c.samples()[0].control_messages, 0u);
  EXPECT_EQ(c.samples()[1].control_messages, 0u);
}

TEST(Collector, OverheadDefinitions) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm, 8, 1, /*chunk_rate=*/10.0);
  Collector c(h.session);
  h.join(1);
  h.sim.run_until(10.0);
  c.capture(h.sim.now());
  const EpochSample& e = c.samples()[0];
  // One receiver: transmissions == emissions-into-tree, so the two overhead
  // normalizations coincide (up to the chunks emitted before the join).
  EXPECT_GT(e.overhead, 0.0);
  EXPECT_GT(e.overhead_per_chunk, 0.0);
  EXPECT_NEAR(e.overhead, static_cast<double>(e.control_messages) /
                              static_cast<double>(e.data_transmissions),
              1e-12);
}

TEST(Collector, LossRateFromWindowCounters) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm, 8, 1, 5.0);
  Collector c(h.session);
  h.join(1);
  h.join(2);
  h.sim.run_until(100.0);  // well past both join handshakes
  c.capture(h.sim.now());  // epoch 0: join-phase noise
  h.sim.run_until(140.0);
  h.session.leave(1);      // orphan 2 suffers an outage
  h.sim.run_until(141.0);
  c.capture(h.sim.now());
  EXPECT_GT(c.samples()[1].loss_rate, 0.0);
  EXPECT_LE(c.samples()[1].loss_rate, 1.0);
  ASSERT_EQ(c.samples()[1].reconnect_times.size(), 1u);
}

TEST(Collector, MeanAccessorsSkipEpochs) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  Collector c(h.session);
  h.join(1);
  c.capture(1.0);
  h.join(2);
  c.capture(2.0);
  // Hop averages: epoch0 tree = S->1 (hop 1.0); epoch1 = chain (hop 1.5).
  EXPECT_DOUBLE_EQ(c.mean_hopcount(0), (1.0 + 1.5) / 2.0);
  EXPECT_DOUBLE_EQ(c.mean_hopcount(1), 1.5);
}

TEST(Collector, MeanOfEmptyIsZero) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  Collector c(h.session);
  EXPECT_DOUBLE_EQ(c.mean_stress(), 0.0);
  EXPECT_DOUBLE_EQ(c.mean_loss(5), 0.0);
}

TEST(Collector, TimingAggregationAcrossEpochs) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), vdm);
  Collector c(h.session);
  h.join(1);
  c.capture(1.0);
  h.join(2);
  h.join(3);
  c.capture(2.0);
  EXPECT_EQ(c.all_startup_times().size(), 3u);
}

}  // namespace
}  // namespace vdm::metrics
