// Multi-process integration test (DESIGN.md §14): launches the real vdmd
// binary as one controller plus 32 forked agents on 127.0.0.1, and asserts
// from its output that the tree formed, chunks flowed down it, every agent
// reported stats, and the whole flock shut down cleanly.
//
// The binary path is injected by CMake (VDMD_BINARY_PATH). The run is
// double-guarded against hangs: vdmd enforces its own --deadline, and the
// ctest TIMEOUT property kills the test harness itself as a last resort.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_vdmd(const std::string& args) {
  const std::string cmd = std::string(VDMD_BINARY_PATH) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

int count_matching(const std::vector<std::string>& lines,
                   const std::string& needle) {
  int n = 0;
  for (const std::string& l : lines) {
    if (l.find(needle) != std::string::npos) ++n;
  }
  return n;
}

std::string find_line(const std::vector<std::string>& lines,
                      const std::string& needle) {
  for (const std::string& l : lines) {
    if (l.find(needle) != std::string::npos) return l;
  }
  return {};
}

/// "key=value" integer extraction from a stats/summary line.
long field_of(const std::string& line, const std::string& key) {
  const auto pos = line.find(key + "=");
  if (pos == std::string::npos) return -1;
  return std::strtol(line.c_str() + pos + key.size() + 1, nullptr, 10);
}

}  // namespace

TEST(VdmdLoopback, SourcePlusThirtyTwoAgentsStreamAndShutDownCleanly) {
  constexpr int kAgents = 32;
  const RunResult r = run_vdmd("--source --agents 32 --spawn "
                               "--chunk-rate 20 --stream-secs 2 --deadline 45");
  SCOPED_TRACE(r.output);
  ASSERT_EQ(r.exit_code, 0);

  const std::vector<std::string> lines = lines_of(r.output);
  EXPECT_EQ(count_matching(lines, "vdmd: controller listening on 127.0.0.1:"), 1);
  EXPECT_EQ(count_matching(lines, "vdmd: 32 agents ready"), 1);
  EXPECT_EQ(count_matching(lines, "vdmd: clean shutdown"), 1);

  // Tree formed: the source plus every agent alive at terminate.
  const std::string members = find_line(lines, "vdmd: members=");
  ASSERT_FALSE(members.empty());
  EXPECT_EQ(field_of(members, "members"), kAgents + 1);
  // With a degree limit of 4 the tree cannot be a star — depth >= 2.
  EXPECT_GE(field_of(members, "depth"), 2);

  // Chunks flowed: the source emitted and fanned out to its children.
  const std::string chunks = find_line(lines, "vdmd: chunks emitted=");
  ASSERT_FALSE(chunks.empty());
  EXPECT_GT(field_of(chunks, "emitted"), 0);
  EXPECT_GT(field_of(chunks, "fanned"), 0);

  // Real probe transactions backed the tree walk.
  const std::string control = find_line(lines, "probes=");
  ASSERT_FALSE(control.empty());
  EXPECT_GT(field_of(control, "probes"), 0);

  // Every agent answered the stats sweep, and the stream reached the tree:
  // chunks received across agents strictly exceeds what the source fanned
  // out directly (interior agents relayed down).
  EXPECT_EQ(count_matching(lines, "vdmd: stats host="), kAgents);
  long total_received = 0;
  long total_relayed = 0;
  for (const std::string& l : lines) {
    if (l.find("vdmd: stats host=") == std::string::npos) continue;
    total_received += field_of(l, "received");
    total_relayed += field_of(l, "relayed");
    EXPECT_GT(field_of(l, "control"), 0) << l;  // every agent got control msgs
  }
  EXPECT_GT(total_received, 0);
  EXPECT_GT(total_relayed, 0);  // depth >= 2 means someone relayed
  EXPECT_GE(total_received, field_of(chunks, "fanned"));
}

TEST(VdmdLoopback, UsageErrorsExitNonZeroWithoutHanging) {
  EXPECT_NE(run_vdmd("").exit_code, 0);
  EXPECT_NE(run_vdmd("--agent").exit_code, 0);  // missing --controller
  EXPECT_NE(run_vdmd("--source --agent").exit_code, 0);
}
