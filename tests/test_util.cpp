#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace vdm::util {
namespace {

// ---------------------------------------------------------------- Table

TEST(Table, PrintsHeaderRuleAndRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InvariantError);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, RowAccessors) {
  Table t({"h"});
  t.add_row({"v"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[0], "v");
  EXPECT_EQ(t.header()[0], "h");
}

// ---------------------------------------------------------------- Flags

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make_flags({"--nodes=42"});
  EXPECT_EQ(f.get_int("nodes", 0), 42);
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make_flags({"--nodes", "17"});
  EXPECT_EQ(f.get_int("nodes", 0), 17);
}

TEST(Flags, BareFlagIsTrue) {
  const Flags f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultWhenAbsent) {
  const Flags f = make_flags({});
  EXPECT_EQ(f.get_int("nodes", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 2.5), 2.5);
  EXPECT_EQ(f.get("name", "x"), "x");
  EXPECT_FALSE(f.get_bool("quiet", false));
}

TEST(Flags, BoolParsesCommonSpellings) {
  EXPECT_TRUE(make_flags({"--a=TRUE"}).get_bool("a", false));
  EXPECT_TRUE(make_flags({"--a=on"}).get_bool("a", false));
  EXPECT_TRUE(make_flags({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(make_flags({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(make_flags({"--a=no"}).get_bool("a", true));
}

TEST(Flags, PositionalArguments) {
  const Flags f = make_flags({"file1", "--k=v", "file2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "file1");
  EXPECT_EQ(f.positional()[1], "file2");
}

TEST(Flags, EnvironmentFallback) {
  ::setenv("VDM_TEST_KNOB", "33", 1);
  const Flags f = make_flags({});
  EXPECT_EQ(f.get_int("test-knob", 0), 33);
  EXPECT_TRUE(f.has("test-knob"));
  ::unsetenv("VDM_TEST_KNOB");
  EXPECT_FALSE(f.has("test-knob"));
}

TEST(Flags, CommandLineBeatsEnvironment) {
  ::setenv("VDM_PRIORITY", "1", 1);
  const Flags f = make_flags({"--priority=2"});
  EXPECT_EQ(f.get_int("priority", 0), 2);
  ::unsetenv("VDM_PRIORITY");
}

// ---------------------------------------------------------------- Require

TEST(Require, ThrowsWithLocation) {
  try {
    VDM_REQUIRE_MSG(false, "context here");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context here"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Require, PassesOnTrue) {
  EXPECT_NO_THROW(VDM_REQUIRE(1 + 1 == 2));
}

// ---------------------------------------------------------------- Logging

TEST(Log, LevelFiltering) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  // Must not crash or emit; nothing observable to assert beyond no-throw.
  EXPECT_NO_THROW(VDM_INFO() << "suppressed");
  set_log_level(old);
}

TEST(Log, SetAndGetRoundTrip) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(old);
}

}  // namespace
}  // namespace vdm::util
