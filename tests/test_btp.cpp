#include "baselines/btp_protocol.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace vdm::baselines {
namespace {

using testutil::Harness;
using testutil::line_underlay;

TEST(BtpJoin, ConnectsDirectlyToRoot) {
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 10.0, 25.0, 7.0}), btp);
  // Everyone lands under the source regardless of geometry.
  EXPECT_EQ(h.join(1), 0u);
  EXPECT_EQ(h.join(2), 0u);
  EXPECT_EQ(h.join(3), 0u);
}

TEST(BtpJoin, JoinIsCheap) {
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 10.0}), btp);
  const overlay::TimingRecord rec = h.session.join(1, 4);
  // Exchange with root + probe + connection handshake, one iteration.
  EXPECT_EQ(rec.iterations, 1);
  EXPECT_LE(rec.messages, 6);
}

TEST(BtpJoin, SaturatedRootDescendsToClosestChild) {
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 10.0, -8.0, -9.0}), btp, /*source_degree=*/2);
  h.join(1);
  h.join(2);
  EXPECT_FALSE(h.session.tree().member(0).has_free_degree());
  // Next joiner must go under the closest child (host 2 at -8 vs -9).
  EXPECT_EQ(h.join(3), 2u);
}

TEST(BtpRefine, SiblingSwitchMovesToCloserSibling) {
  // Figure 2.7's switch: A under R switches to sibling B when B is closer.
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 30.0, 28.0}), btp);
  h.join(1);  // A at 30
  h.join(2);  // B at 28, sibling
  ASSERT_EQ(h.parent(1), 0u);
  const overlay::OpStats stats = h.session.refine(1);
  EXPECT_TRUE(stats.parent_changed);
  EXPECT_EQ(h.parent(1), 2u);  // |30-28| = 2 << 30
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(BtpRefine, NoSwitchWhenParentIsBest) {
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 5.0, -20.0}), btp);
  h.join(1);
  h.join(2);
  EXPECT_FALSE(h.session.refine(1).parent_changed);
  EXPECT_EQ(h.parent(1), 0u);
}

TEST(BtpRefine, MarginBlocksMarginalSwitch) {
  BtpConfig cfg;
  cfg.switch_margin = 0.5;
  BtpProtocol btp(cfg);
  Harness h(line_underlay({0.0, 10.0, 16.0}), btp);
  h.join(1);
  h.join(2);
  // Sibling 2 is at distance 6 from node 1 vs parent distance 10 — a 40%
  // improvement, below the 50% margin.
  EXPECT_FALSE(h.session.refine(1).parent_changed);
}

TEST(BtpRefine, SkipsSaturatedSiblings) {
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 30.0, 28.0, 27.0}), btp);
  h.join(1);       // at 30
  h.join(2, 2);    // at 28, capacity 2 = parent link + one child slot
  h.join(3);       // at 27 -> fills sibling 2? No: 3 also lands under root.
  // Fill node 2 by switching 3 under it first.
  ASSERT_TRUE(h.session.refine(3).parent_changed);
  ASSERT_EQ(h.parent(3), 2u);
  // Now node 1's closest sibling (2) is full; next best with capacity is...
  // only node 3? 3 is 2's child, not 1's sibling. No switch possible.
  EXPECT_FALSE(h.session.refine(1).parent_changed);
}

TEST(BtpRefine, SwitchNeverCreatesLoop) {
  // A sibling is never a descendant, so switches are always safe; validate
  // after a storm of refinements.
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 10.0, 11.0, 12.0, 13.0, 14.0}), btp);
  for (net::HostId n = 1; n <= 5; ++n) h.join(n, 2);
  for (int round = 0; round < 10; ++round) {
    for (net::HostId n = 1; n <= 5; ++n) h.session.refine(n);
  }
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(BtpRefine, PeriodicRefinementConvergesTowardsChain) {
  // On a line, repeated sibling switches should drag the star towards the
  // low-cost chain: total edge cost must drop.
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), btp);
  for (net::HostId n = 1; n <= 3; ++n) h.join(n, 2);
  auto cost = [&] {
    double c = 0.0;
    for (net::HostId n = 1; n <= 3; ++n) {
      c += h.underlay.rtt(n, h.parent(n));
    }
    return c;
  };
  const double before = cost();
  h.sim.run_until(200.0);  // several 30 s refinement rounds
  EXPECT_LT(cost(), before);
}

TEST(BtpReconnect, OrphansRecoverViaGrandparent) {
  BtpProtocol btp;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), btp);
  h.join(1, 1);
  // Force a chain: source full after 1? No — source has capacity; build by
  // joining under saturated levels.
  h.join(2, 1);  // source default degree 8: both under source
  h.session.tree().validate();
  h.session.leave(1);
  EXPECT_NO_THROW(h.session.tree().validate());
}

}  // namespace
}  // namespace vdm::baselines
