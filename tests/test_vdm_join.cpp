#include <gtest/gtest.h>

#include "core/vdm_protocol.hpp"
#include "helpers.hpp"

namespace vdm::core {
namespace {

using testutil::Harness;
using testutil::line_underlay;
using testutil::rtt_underlay;

TEST(VdmJoin, FirstNodeAttachesToSource) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  EXPECT_EQ(h.join(1), 0u);
  EXPECT_EQ(h.session.tree().member(0).children.size(), 1u);
}

TEST(VdmJoin, CaseIAttachesToQueriedNode) {
  // Figure 3.8: existing child E on one side, newcomer N on the other —
  // the source separates them, so N connects to the source.
  // Positions: S=0, E=10, N=-5.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, -5.0}), vdm);
  ASSERT_EQ(h.join(1), 0u);  // E
  EXPECT_EQ(h.join(2), 0u);  // N: Case I -> source
}

TEST(VdmJoin, CaseIIIThenCaseI) {
  // Figure 3.9: N lies beyond child C1 -> descend to C1, attach there.
  // Positions: S=0, C1=10, N=18.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 18.0}), vdm);
  ASSERT_EQ(h.join(1), 0u);
  EXPECT_EQ(h.join(2), 1u);
}

TEST(VdmJoin, CaseIIIThenCaseII) {
  // Figures 3.10/3.11: S -> C1 -> C2 chain; N is between C1 and C2, so it
  // descends to C1 (Case III) and splices in above C2 (Case II).
  // Positions: S=0, C1=10, C2=20, N=15.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 15.0}), vdm);
  ASSERT_EQ(h.join(1), 0u);  // C1 under S
  ASSERT_EQ(h.join(2), 1u);  // C2 beyond C1 (Case III at S, then attach)
  EXPECT_EQ(h.join(3), 1u);  // N under C1...
  EXPECT_EQ(h.parent(2), 3u);  // ...and C2 re-parented under N
}

TEST(VdmJoin, CaseIISplicesBetweenSourceAndChild) {
  // Straight Case II at the source: S=0, E=10, N=5.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 5.0}), vdm);
  ASSERT_EQ(h.join(1), 0u);
  EXPECT_EQ(h.join(2), 0u);
  EXPECT_EQ(h.parent(1), 2u);  // E now hangs off N
}

TEST(VdmJoin, CaseIIUpdatesGrandparents) {
  // S=0 -> C1=10 -> C2=20; N=5 splices between S and C1. C1's grandparent
  // becomes S's parent-of-N chain; C2's grandparent becomes N.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 5.0}), vdm);
  h.join(1);
  h.join(2);
  ASSERT_EQ(h.join(3), 0u);
  EXPECT_EQ(h.parent(1), 3u);
  EXPECT_EQ(h.session.tree().member(1).grandparent, 0u);
  EXPECT_EQ(h.session.tree().member(2).grandparent, 3u);
}

TEST(VdmJoin, ScenarioIAdoptsMultipleCaseIIChildren) {
  // Figure 3.13: Case II holds with two children at once; the newcomer
  // adopts both. Positions: S=0, C1=10, C2=12, N=6.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 12.0, 6.0}), vdm);
  ASSERT_EQ(h.join(1), 0u);
  ASSERT_EQ(h.join(2), 1u);  // C2 lands under C1 (beyond it from S)
  // Re-build so C1 and C2 are siblings: use a fresh harness where C2 joins
  // from a position that classifies Case I at S.
  VdmProtocol vdm2;
  Harness h2(line_underlay({0.0, 10.0, -12.0, 6.0}), vdm2);
  ASSERT_EQ(h2.join(1), 0u);
  ASSERT_EQ(h2.join(2), 0u);  // other side -> sibling of C1
  // N=6: Case II with C1 (d_SC1 = 10 longest of {6, 4, 10}); with C2 the
  // longest is d_NC2 = 18 -> Case I. N adopts exactly C1.
  EXPECT_EQ(h2.join(3), 0u);
  EXPECT_EQ(h2.parent(1), 3u);
  EXPECT_EQ(h2.parent(2), 0u);
}

TEST(VdmJoin, ScenarioIAdoptionRespectsJoinerDegree) {
  // Two Case II children but the newcomer has degree limit 2 (one slot
  // goes to its own parent link): it adopts only the closest; the other
  // stays with the old parent.
  // Explicit RTTs: S-C1 = 10, S-C2 = 11, S-N = 6, N-C1 = 4, N-C2 = 5.5,
  // C1-C2 = 2 (irrelevant).
  VdmProtocol vdm;
  Harness h(rtt_underlay({{0, 10, 11, 6},
                          {10, 0, 2, 4},
                          {11, 2, 0, 5.5},
                          {6, 4, 5.5, 0}}),
            vdm);
  // Attach C1 and C2 directly as children of S (their mutual geometry would
  // otherwise re-route the joins).
  h.session.tree().activate(1, 8);
  h.session.tree().attach(1, 0, 10.0);
  h.session.tree().activate(2, 8);
  h.session.tree().attach(2, 0, 11.0);
  EXPECT_EQ(h.join(3, /*degree_limit=*/2), 0u);
  EXPECT_EQ(h.parent(1), 3u);   // closest Case II child adopted
  EXPECT_EQ(h.parent(2), 0u);   // no capacity left for the second
}

TEST(VdmJoin, ScenarioIITwoCaseIIIPicksClosest) {
  // Figure 3.14: Case III with two children at once; continue from the
  // closest. Positions: S=0, C1=-10, C2=-12, N=-30 (beyond both).
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, -10.0, -12.0, -30.0}), vdm);
  // Install C1 and C2 as siblings directly (joining them sequentially would
  // chain them, hiding the two-Case-III situation).
  h.session.tree().activate(1, 8);
  h.session.tree().attach(1, 0, 10.0);
  h.session.tree().activate(2, 8);
  h.session.tree().attach(2, 0, 12.0);
  // N: triple with C1 = (30, 20, 10) -> Case III; with C2 = (30, 18, 12)
  // -> Case III as well. The closer directional child C2 wins.
  EXPECT_EQ(h.join(3), 2u);
}

TEST(VdmJoin, ScenarioIIICaseIIIBeatsCaseII) {
  // Figure 3.15: C1 classifies Case III, C2 classifies Case II; the paper
  // intentionally prefers Case III ("we prefer CaseIII and continue join
  // process from C1").
  // RTTs: S-C1 = 10, S-C2 = 16, S-N = 14, N-C1 = 4, N-C2 = 6, C1-C2 = 12.
  VdmProtocol vdm;
  Harness h(rtt_underlay({{0, 10, 16, 14},
                          {10, 0, 12, 4},
                          {16, 12, 0, 6},
                          {14, 4, 6, 0}}),
            vdm);
  h.session.tree().activate(1, 8);
  h.session.tree().attach(1, 0, 10.0);
  h.session.tree().activate(2, 8);
  h.session.tree().attach(2, 0, 16.0);
  // At S: triple (S, C1, N) = (14, 4, 10) -> d_np longest -> Case III;
  // triple (S, C2, N) = (14, 6, 16) -> d_pc longest -> Case II.
  // Case III wins: descend to C1 and attach there (C1 has no children).
  EXPECT_EQ(h.join(3), 1u);
}

TEST(VdmJoin, DegreeFullFallsBackToClosestFreeChild) {
  // Source saturated; the Case I newcomer attaches to the closest free
  // child instead. S=0 (limit 1), C=10; N=-5 would prefer S.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, -5.0}), vdm, /*source_degree=*/1);
  ASSERT_EQ(h.join(1), 0u);
  EXPECT_EQ(h.join(2), 1u);  // S full -> closest (only) free child
}

TEST(VdmJoin, CaseIIWorksAtSaturatedParent) {
  // Case II needs no free slot at the parent: the newcomer takes over the
  // child's slot. S=0 (limit 1) -> C=10; N=5.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 5.0}), vdm, /*source_degree=*/1);
  ASSERT_EQ(h.join(1), 0u);
  EXPECT_EQ(h.join(2), 0u);
  EXPECT_EQ(h.parent(1), 2u);
  EXPECT_EQ(h.session.tree().member(0).children.size(), 1u);  // still 1
}

TEST(VdmJoin, DescendsThroughFullySaturatedLevels) {
  // Both the source and its child are full; the search keeps descending
  // and attaches at the first level with capacity.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, -5.0, -6.0}), vdm, /*source_degree=*/1);
  ASSERT_EQ(h.join(1, 2), 0u);   // C1: limit 2 = parent link + one child
  ASSERT_EQ(h.join(2, 8), 1u);   // C2 under C1 (Case III), fills C1
  // N at -5: Case I everywhere, S full, C1 full -> ends under C2.
  EXPECT_EQ(h.join(3, 8), 2u);
  // Another far-side node now finds C2... still free (limit 8).
  EXPECT_EQ(h.join(4, 8), 2u);
}

TEST(VdmJoin, ChargesMessagesAndElapsedTime) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  const overlay::TimingRecord rec = h.session.join(1, 4);
  // info exchange (2) + probe of the source (2) + connection exchange (2).
  EXPECT_EQ(rec.messages, 6);
  // Each of those three round trips takes one RTT = 10 time units.
  EXPECT_DOUBLE_EQ(rec.duration, 30.0);
  EXPECT_EQ(rec.iterations, 1);
}

TEST(VdmJoin, IterationCountGrowsWithDepth) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0, 40.0}), vdm);
  h.join(1);
  h.join(2);
  h.join(3);
  const overlay::TimingRecord rec = h.session.join(4, 4);
  EXPECT_EQ(rec.iterations, 4);  // walked S -> 1 -> 2 -> 3
  EXPECT_EQ(h.parent(4), 3u);
}

TEST(VdmJoin, ChainTopologyBuildsChainTree) {
  // Nodes joining along a line in order must produce the line itself —
  // the minimal-stress embedding.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0, 40.0, 50.0}), vdm);
  for (net::HostId n = 1; n <= 5; ++n) EXPECT_EQ(h.join(n), n - 1);
}

TEST(VdmJoin, ChainBuiltRegardlessOfJoinOrder) {
  // Even joining in scrambled order, the 1-D geometry forces the chain.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0, 40.0}), vdm);
  h.join(3);  // position 30
  h.join(1);  // position 10 -> splices between S and 3
  h.join(4);  // position 40 -> beyond 3
  h.join(2);  // position 20 -> between 1 and 3
  EXPECT_EQ(h.parent(1), 0u);
  EXPECT_EQ(h.parent(2), 1u);
  EXPECT_EQ(h.parent(3), 2u);
  EXPECT_EQ(h.parent(4), 3u);
}

TEST(VdmJoin, DeterministicForSameSeed) {
  auto build = [] {
    VdmProtocol vdm;
    Harness h(line_underlay({0.0, 13.0, 7.0, 29.0, 3.0, 21.0, 17.0}), vdm, 3, 99);
    for (net::HostId n = 1; n < 7; ++n) h.join(n, 2);
    std::vector<net::HostId> parents;
    for (net::HostId n = 1; n < 7; ++n) parents.push_back(h.parent(n));
    return parents;
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace vdm::core
