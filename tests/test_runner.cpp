#include "experiments/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/require.hpp"

namespace vdm::experiments {
namespace {

RunConfig small_config() {
  RunConfig cfg;
  cfg.substrate = Substrate::kTransitStub;
  cfg.routers = 60;
  cfg.scenario.target_members = 15;
  cfg.scenario.join_phase = 200.0;
  cfg.scenario.total_time = 1200.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.1;
  cfg.session.chunk_rate = 1.0;
  cfg.seed = 3;
  return cfg;
}

void expect_sane(const RunResult& r) {
  EXPECT_GE(r.stress, 1.0);
  EXPECT_GT(r.stretch, 0.0);
  EXPECT_GE(r.hopcount, 1.0);
  EXPECT_GE(r.loss, 0.0);
  EXPECT_LE(r.loss, 1.0);
  EXPECT_GT(r.overhead, 0.0);
  EXPECT_GT(r.network_usage, 0.0);
  EXPECT_GT(r.startup_avg, 0.0);
  EXPECT_GE(r.startup_max, r.startup_avg);
  EXPECT_GE(r.mst_ratio, 1.0 - 1e-9);
  EXPECT_EQ(r.final_members, 16u);  // target + source
}

TEST(Runner, VdmOnTransitStub) {
  const RunResult r = run_once(small_config());
  expect_sane(r);
  EXPECT_GT(r.reconnect_avg, 0.0);  // churn forced reconnections
}

TEST(Runner, HmtpOnTransitStub) {
  RunConfig cfg = small_config();
  cfg.protocol = Proto::kHmtp;
  expect_sane(run_once(cfg));
}

TEST(Runner, RandomProtocolOnTransitStub) {
  RunConfig cfg = small_config();
  cfg.protocol = Proto::kRandom;
  expect_sane(run_once(cfg));
}

TEST(Runner, VdmRefineOnTransitStub) {
  RunConfig cfg = small_config();
  cfg.protocol = Proto::kVdmRefine;
  expect_sane(run_once(cfg));
}

TEST(Runner, GeoSubstrates) {
  RunConfig cfg = small_config();
  cfg.substrate = Substrate::kGeoUs;
  expect_sane(run_once(cfg));
  cfg.substrate = Substrate::kGeoWorld;
  expect_sane(run_once(cfg));
}

TEST(Runner, WaxmanSubstrate) {
  RunConfig cfg = small_config();
  cfg.substrate = Substrate::kWaxman;
  expect_sane(run_once(cfg));
}

TEST(Runner, LossMetricOnLossyLinks) {
  RunConfig cfg = small_config();
  cfg.metric = Metric::kLoss;
  cfg.link_loss_max = 0.02;
  const RunResult r = run_once(cfg);
  expect_sane(r);
  EXPECT_GT(r.loss, 0.0);  // per-link errors leak through
}

TEST(Runner, BlendMetricRuns) {
  RunConfig cfg = small_config();
  cfg.metric = Metric::kBlend;
  cfg.link_loss_max = 0.02;
  expect_sane(run_once(cfg));
}

TEST(Runner, BtpOnTransitStub) {
  RunConfig cfg = small_config();
  cfg.protocol = Proto::kBtp;
  expect_sane(run_once(cfg));
}

TEST(Runner, CachedMetricsRun) {
  RunConfig cfg = small_config();
  cfg.metric = Metric::kCachedDelay;
  expect_sane(run_once(cfg));
  cfg.metric = Metric::kCachedLoss;
  cfg.link_loss_max = 0.02;
  expect_sane(run_once(cfg));
}

TEST(Runner, CachedLossCutsOverheadVsPlainLoss) {
  RunConfig plain = small_config();
  plain.metric = Metric::kLoss;
  plain.link_loss_max = 0.02;
  RunConfig cached = plain;
  cached.metric = Metric::kCachedLoss;
  EXPECT_LT(run_once(cached).overhead, run_once(plain).overhead);
}

TEST(Runner, FosterChildCutsHmtpStartup) {
  RunConfig plain = small_config();
  plain.protocol = Proto::kHmtp;
  RunConfig foster = plain;
  foster.hmtp_foster_child = true;
  EXPECT_LT(run_once(foster).startup_avg, run_once(plain).startup_avg);
}

TEST(Runner, BufferReducesChurnLoss) {
  RunConfig plain = small_config();
  plain.scenario.churn_rate = 0.2;
  RunConfig buffered = plain;
  buffered.session.buffer_seconds = 30.0;
  EXPECT_LT(run_once(buffered).loss, run_once(plain).loss);
}

TEST(Runner, DeterministicAcrossCalls) {
  const RunResult a = run_once(small_config());
  const RunResult b = run_once(small_config());
  EXPECT_DOUBLE_EQ(a.stress, b.stress);
  EXPECT_DOUBLE_EQ(a.stretch, b.stretch);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_DOUBLE_EQ(a.overhead, b.overhead);
  EXPECT_DOUBLE_EQ(a.startup_avg, b.startup_avg);
  EXPECT_DOUBLE_EQ(a.mst_ratio, b.mst_ratio);
}

TEST(Runner, SeedChangesOutcome) {
  RunConfig cfg = small_config();
  const RunResult a = run_once(cfg);
  cfg.seed = cfg.seed + 1;
  const RunResult b = run_once(cfg);
  EXPECT_NE(a.network_usage, b.network_usage);
}

TEST(Runner, KeepEpochsRetainsSeries) {
  RunConfig cfg = small_config();
  EXPECT_TRUE(run_once(cfg).epochs.empty());
  cfg.keep_epochs = true;
  const RunResult r = run_once(cfg);
  // One epoch per measurement: join phase + churn slots.
  EXPECT_GE(r.epochs.size(), 3u);
}

TEST(Runner, BatchedJoinScenario) {
  RunConfig cfg = small_config();
  cfg.scenario.batched_joins = true;
  cfg.scenario.batch_size = 5;
  cfg.scenario.target_members = 15;
  cfg.keep_epochs = true;
  const RunResult r = run_once(cfg);
  EXPECT_EQ(r.epochs.size(), 3u);
  EXPECT_EQ(r.final_members, 16u);
}

TEST(Runner, RunManyAggregates) {
  const AggregateResult agg = run_many(small_config(), 4, /*threads=*/2);
  EXPECT_EQ(agg.runs.size(), 4u);
  EXPECT_EQ(agg.stress.n, 4u);
  EXPECT_GE(agg.stress.mean, 1.0);
  EXPECT_GE(agg.stress.ci_halfwidth, 0.0);
  EXPECT_LE(agg.stretch.lo(), agg.stretch.mean);
}

TEST(Runner, RunManyParallelEqualsSequential) {
  const AggregateResult par = run_many(small_config(), 3, 3);
  const AggregateResult seq = run_many(small_config(), 3, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(par.runs[i].stretch, seq.runs[i].stretch);
    EXPECT_DOUBLE_EQ(par.runs[i].overhead, seq.runs[i].overhead);
  }
}

TEST(Runner, RunManyPropagatesWorkerExceptions) {
  // host_pool <= target_members trips a precondition inside run_once on a
  // worker thread; run_many must surface it on the caller instead of
  // letting the worker std::terminate the process.
  RunConfig bad = small_config();
  bad.host_pool = 2;
  bad.scenario.target_members = 8;
  EXPECT_THROW(run_many(bad, 4, 2), util::InvariantError);
}

TEST(Runner, DefaultSeedsEnvKnobs) {
  ::unsetenv("VDM_SEEDS");
  ::unsetenv("VDM_FULL");
  EXPECT_EQ(default_seeds(4, 32), 4u);
  ::setenv("VDM_FULL", "1", 1);
  EXPECT_EQ(default_seeds(4, 32), 32u);
  ::setenv("VDM_SEEDS", "7", 1);
  EXPECT_EQ(default_seeds(4, 32), 7u);
  ::unsetenv("VDM_SEEDS");
  ::unsetenv("VDM_FULL");
}

}  // namespace
}  // namespace vdm::experiments
