#pragma once

// The parameter corners pinned by the walk-engine port (tests/test_walk.cpp):
// every protocol, both substrate families (fig3 transit-stub / fig5 geo), the
// saturation-heavy degree corner (average degree 2.0 turns the fallback
// ladder into the common path) and the crash-churn corner (reconnection
// walks under heartbeats + lossy control). run_once over these configs must
// stay bit-identical across control-plane refactors; the goldens in
// tests/test_walk.cpp were recorded on the pre-TreeWalk protocol loops.

#include <string>
#include <vector>

#include "experiments/runner.hpp"

namespace vdm::testutil {

struct NamedRunConfig {
  std::string name;
  experiments::RunConfig cfg;
};

inline std::vector<NamedRunConfig> walk_golden_configs() {
  using experiments::Proto;
  using experiments::RunConfig;
  using experiments::Substrate;

  std::vector<NamedRunConfig> out;

  // fig3 corner: transit-stub, 48 members, lossy links, high churn.
  const auto fig3 = [](Proto p) {
    RunConfig cfg;
    cfg.substrate = Substrate::kTransitStub;
    cfg.protocol = p;
    cfg.scenario.target_members = 48;
    cfg.scenario.churn_rate = 0.10;
    cfg.link_loss_max = 0.02;
    cfg.seed = 7;
    return cfg;
  };
  out.push_back({"fig3-vdm", fig3(Proto::kVdm)});
  out.push_back({"fig3-hmtp", fig3(Proto::kHmtp)});
  out.push_back({"fig3-btp", fig3(Proto::kBtp)});
  out.push_back({"fig3-random", fig3(Proto::kRandom)});

  // fig3 degree corner: average degree 2.0 — most members are limit-2, so
  // interior nodes are saturated and every walk exercises the
  // free-child / capacity-subtree fallback ladder.
  const auto degree2 = [](Proto p) {
    RunConfig cfg;
    cfg.substrate = Substrate::kTransitStub;
    cfg.protocol = p;
    cfg.scenario.target_members = 48;
    cfg.scenario.degrees = overlay::DegreeSpec::average(2.0);
    cfg.seed = 7;
    return cfg;
  };
  out.push_back({"degree2-vdm", degree2(Proto::kVdm)});
  out.push_back({"degree2-hmtp", degree2(Proto::kHmtp)});
  out.push_back({"degree2-btp", degree2(Proto::kBtp)});
  out.push_back({"degree2-random", degree2(Proto::kRandom)});

  // fig5 corner: geo latency space (matrix underlay), refinement on for the
  // protocols that have it (VDM-R re-runs the join walk from the source).
  const auto fig5 = [](Proto p) {
    RunConfig cfg;
    cfg.substrate = Substrate::kGeoUs;
    cfg.protocol = p;
    cfg.scenario.target_members = 32;
    cfg.seed = 11;
    return cfg;
  };
  out.push_back({"fig5-vdmr", fig5(Proto::kVdmRefine)});
  out.push_back({"fig5-hmtp", fig5(Proto::kHmtp)});
  out.push_back({"fig5-btp", fig5(Proto::kBtp)});
  out.push_back({"fig5-random", fig5(Proto::kRandom)});

  // Crash-churn corner: every departure is an ungraceful crash, heartbeat
  // detection and a lossy control plane — reconnection walks start at the
  // grandparent and the retry/timeout draws interleave with probe draws.
  const auto crash = [](Proto p) {
    RunConfig cfg;
    cfg.substrate = Substrate::kTransitStub;
    cfg.protocol = p;
    cfg.scenario.target_members = 48;
    cfg.scenario.churn_rate = 0.10;
    cfg.scenario.crash_fraction = 1.0;
    cfg.session.faults.heartbeat_period = 1.0;
    cfg.session.faults.heartbeat_misses = 3;
    cfg.session.faults.heartbeat_timeout = 0.5;
    cfg.session.faults.lossy_control = true;
    cfg.session.faults.control_loss_extra = 0.01;
    cfg.seed = 7;
    return cfg;
  };
  out.push_back({"crash-vdm", crash(Proto::kVdm)});
  out.push_back({"crash-hmtp", crash(Proto::kHmtp)});

  return out;
}

/// The scalar fields of a RunResult in a fixed order, for table-driven
/// bit-equality checks (final_members rides along as a double; it is an
/// exact small integer).
inline std::vector<double> run_result_scalars(const experiments::RunResult& r) {
  return {r.stress,        r.stress_max,    r.stretch,
          r.stretch_leaf,  r.stretch_max,   r.stretch_min,
          r.hopcount,      r.hop_leaf,      r.hop_max,
          r.loss,          r.overhead,      r.overhead_per_chunk,
          r.network_usage, r.startup_avg,   r.startup_max,
          r.reconnect_avg, r.reconnect_max, r.detection_avg,
          r.detection_max, r.outage_avg,    r.outage_max,
          r.mst_ratio,     static_cast<double>(r.final_members)};
}

}  // namespace vdm::testutil
