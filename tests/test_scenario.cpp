#include "overlay/scenario.hpp"

#include <gtest/gtest.h>

#include "core/vdm_protocol.hpp"
#include "helpers.hpp"
#include "util/require.hpp"

namespace vdm::overlay {
namespace {

TEST(DegreeSpec, UniformSamplesWithinBounds) {
  const DegreeSpec spec = DegreeSpec::uniform(2, 5);
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int d = spec.sample(rng);
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 5);
  }
  EXPECT_DOUBLE_EQ(spec.mean(), 3.5);
}

TEST(DegreeSpec, UniformRejectsBadBounds) {
  EXPECT_THROW(DegreeSpec::uniform(0, 3), util::InvariantError);
  EXPECT_THROW(DegreeSpec::uniform(4, 3), util::InvariantError);
}

TEST(DegreeSpec, FractionalAverageRealized) {
  const DegreeSpec spec = DegreeSpec::average(1.25);
  util::Rng rng(2);
  long sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const int d = spec.sample(rng);
    EXPECT_TRUE(d == 1 || d == 2);
    sum += d;
  }
  EXPECT_NEAR(static_cast<double>(sum) / kN, 1.25, 0.01);
  EXPECT_DOUBLE_EQ(spec.mean(), 1.25);
}

TEST(DegreeSpec, IntegralAverageIsConstant) {
  const DegreeSpec spec = DegreeSpec::average(3.0);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(spec.sample(rng), 3);
}

TEST(DegreeSpec, AverageBelowOneRejected) {
  EXPECT_THROW(DegreeSpec::average(0.5), util::InvariantError);
}

// ----------------------------------------------------------- driver

struct DriverFixture {
  sim::Simulator sim;
  net::MatrixUnderlay underlay;
  core::VdmProtocol vdm;
  DelayMetric metric;
  Session session;

  explicit DriverFixture(std::size_t hosts, std::uint64_t seed = 1)
      : underlay(make_underlay(hosts)),
        session(sim, underlay, vdm, metric, make_params(), util::Rng(seed)) {}

  static net::MatrixUnderlay make_underlay(std::size_t n) {
    // Hosts on a line, 1ms apart, so joins are fast and deterministic.
    std::vector<double> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[i] = 0.001 * static_cast<double>(i + 1) * 2.0;
    pos[0] = 0.0;
    return testutil::line_underlay(pos);
  }

  static SessionParams make_params() {
    SessionParams sp;
    sp.source = 0;
    sp.chunk_rate = 1.0;
    sp.paranoid_checks = true;
    return sp;
  }
};

ScenarioParams small_scenario() {
  ScenarioParams p;
  p.target_members = 10;
  p.join_phase = 100.0;
  p.total_time = 500.0;
  p.churn_interval = 100.0;
  p.settle_time = 20.0;
  p.churn_rate = 0.2;
  return p;
}

TEST(ScenarioDriver, MaintainsTargetMembership) {
  DriverFixture f(20);
  ScenarioDriver driver(f.session, small_scenario(), util::Rng(7));
  std::vector<std::size_t> sizes;
  driver.run([&](sim::Time) { sizes.push_back(driver.members_alive()); });
  ASSERT_FALSE(sizes.empty());
  for (const std::size_t s : sizes) EXPECT_EQ(s, 10u);
}

TEST(ScenarioDriver, MeasurementCountMatchesSlots) {
  DriverFixture f(20);
  const ScenarioParams p = small_scenario();
  ScenarioDriver driver(f.session, p, util::Rng(8));
  int measures = 0;
  driver.run([&](sim::Time) { ++measures; });
  // One after the join phase + one per complete churn slot:
  // slots start at 120 and need 100 each within 500 -> 120, 220, 320, 420.
  EXPECT_EQ(measures, 1 + 3);
}

TEST(ScenarioDriver, MeasurementsHappenAtSettledInstants) {
  DriverFixture f(20);
  const ScenarioParams p = small_scenario();
  ScenarioDriver driver(f.session, p, util::Rng(9));
  std::vector<sim::Time> at;
  driver.run([&](sim::Time t) { at.push_back(t); });
  ASSERT_GE(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], p.join_phase + p.settle_time);
  for (std::size_t i = 1; i < at.size(); ++i) {
    EXPECT_DOUBLE_EQ(at[i] - at[i - 1], p.churn_interval);
  }
}

TEST(ScenarioDriver, TreeStaysValidUnderChurn) {
  DriverFixture f(25);
  ScenarioParams p = small_scenario();
  p.churn_rate = 0.3;
  ScenarioDriver driver(f.session, p, util::Rng(10));
  driver.run([&](sim::Time) {
    f.session.tree().validate();
    // Every alive member must be attached at measurement time.
    for (const net::HostId h : f.session.tree().alive_members()) {
      if (h == f.session.source()) continue;
      EXPECT_NE(f.session.tree().member(h).parent, net::kInvalidHost);
    }
  });
}

TEST(ScenarioDriver, DeterministicForSameSeed) {
  auto run_one = [] {
    DriverFixture f(20, 5);
    ScenarioDriver driver(f.session, small_scenario(), util::Rng(11));
    driver.run([](sim::Time) {});
    std::vector<net::HostId> parents;
    for (net::HostId h = 0; h < 20; ++h) {
      parents.push_back(f.session.tree().member(h).alive
                            ? f.session.tree().member(h).parent
                            : net::kInvalidHost);
    }
    return parents;
  };
  EXPECT_EQ(run_one(), run_one());
}

TEST(ScenarioDriver, BatchedJoinsMode) {
  DriverFixture f(20);
  ScenarioParams p;
  p.target_members = 12;
  p.batched_joins = true;
  p.batch_size = 4;
  p.churn_interval = 50.0;
  p.settle_time = 10.0;
  p.total_time = 400.0;
  ScenarioDriver driver(f.session, p, util::Rng(12));
  std::vector<std::size_t> sizes;
  driver.run([&](sim::Time) { sizes.push_back(driver.members_alive()); });
  ASSERT_EQ(sizes.size(), 3u);  // 12 members / 4 per batch
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 8u);
  EXPECT_EQ(sizes[2], 12u);
}

TEST(ScenarioDriver, RejectsBadConfigs) {
  DriverFixture f(10);
  ScenarioParams p = small_scenario();
  p.target_members = 10;  // == pool -> no slack for churn
  EXPECT_THROW(ScenarioDriver(f.session, p, util::Rng(1)), util::InvariantError);
  p.target_members = 5;
  p.settle_time = p.churn_interval;
  EXPECT_THROW(ScenarioDriver(f.session, p, util::Rng(1)), util::InvariantError);
}

TEST(ScenarioDriver, ZeroChurnKeepsInitialMembers) {
  DriverFixture f(15);
  ScenarioParams p = small_scenario();
  p.churn_rate = 0.0;
  ScenarioDriver driver(f.session, p, util::Rng(13));
  driver.run([](sim::Time) {});
  EXPECT_EQ(f.session.totals().reconnects_completed, 0u);
  EXPECT_EQ(f.session.totals().joins_completed, 10u);
}

}  // namespace
}  // namespace vdm::overlay
