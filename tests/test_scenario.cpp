#include "overlay/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/vdm_protocol.hpp"
#include "helpers.hpp"
#include "util/require.hpp"

namespace vdm::overlay {
namespace {

TEST(DegreeSpec, UniformSamplesWithinBounds) {
  const DegreeSpec spec = DegreeSpec::uniform(2, 5);
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int d = spec.sample(rng);
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 5);
  }
  EXPECT_DOUBLE_EQ(spec.mean(), 3.5);
}

TEST(DegreeSpec, UniformRejectsBadBounds) {
  EXPECT_THROW(DegreeSpec::uniform(0, 3), util::InvariantError);
  EXPECT_THROW(DegreeSpec::uniform(4, 3), util::InvariantError);
}

TEST(DegreeSpec, FractionalAverageRealized) {
  const DegreeSpec spec = DegreeSpec::average(1.25);
  util::Rng rng(2);
  long sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const int d = spec.sample(rng);
    EXPECT_TRUE(d == 1 || d == 2);
    sum += d;
  }
  EXPECT_NEAR(static_cast<double>(sum) / kN, 1.25, 0.01);
  EXPECT_DOUBLE_EQ(spec.mean(), 1.25);
}

TEST(DegreeSpec, IntegralAverageIsConstant) {
  const DegreeSpec spec = DegreeSpec::average(3.0);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(spec.sample(rng), 3);
}

TEST(DegreeSpec, AverageBelowOneRejected) {
  EXPECT_THROW(DegreeSpec::average(0.5), util::InvariantError);
}

// ----------------------------------------------------------- driver

struct DriverFixture {
  sim::Simulator sim;
  net::MatrixUnderlay underlay;
  core::VdmProtocol vdm;
  DelayMetric metric;
  Session session;

  explicit DriverFixture(std::size_t hosts, std::uint64_t seed = 1)
      : underlay(make_underlay(hosts)),
        session(sim, underlay, vdm, metric, make_params(), util::Rng(seed)) {}

  static net::MatrixUnderlay make_underlay(std::size_t n) {
    // Hosts on a line, 1ms apart, so joins are fast and deterministic.
    std::vector<double> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[i] = 0.001 * static_cast<double>(i + 1) * 2.0;
    pos[0] = 0.0;
    return testutil::line_underlay(pos);
  }

  static SessionParams make_params() {
    SessionParams sp;
    sp.source = 0;
    sp.chunk_rate = 1.0;
    sp.paranoid_checks = true;
    return sp;
  }
};

ScenarioParams small_scenario() {
  ScenarioParams p;
  p.target_members = 10;
  p.join_phase = 100.0;
  p.total_time = 500.0;
  p.churn_interval = 100.0;
  p.settle_time = 20.0;
  p.churn_rate = 0.2;
  return p;
}

TEST(ScenarioDriver, MaintainsTargetMembership) {
  DriverFixture f(20);
  ScenarioDriver driver(f.session, small_scenario(), util::Rng(7));
  std::vector<std::size_t> sizes;
  driver.run([&](sim::Time) { sizes.push_back(driver.members_alive()); });
  ASSERT_FALSE(sizes.empty());
  for (const std::size_t s : sizes) EXPECT_EQ(s, 10u);
}

TEST(ScenarioDriver, MeasurementCountMatchesSlots) {
  DriverFixture f(20);
  const ScenarioParams p = small_scenario();
  ScenarioDriver driver(f.session, p, util::Rng(8));
  int measures = 0;
  driver.run([&](sim::Time) { ++measures; });
  // One after the join phase + one per complete churn slot:
  // slots start at 120 and need 100 each within 500 -> 120, 220, 320, 420.
  EXPECT_EQ(measures, 1 + 3);
}

TEST(ScenarioDriver, MeasurementsHappenAtSettledInstants) {
  DriverFixture f(20);
  const ScenarioParams p = small_scenario();
  ScenarioDriver driver(f.session, p, util::Rng(9));
  std::vector<sim::Time> at;
  driver.run([&](sim::Time t) { at.push_back(t); });
  ASSERT_GE(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], p.join_phase + p.settle_time);
  for (std::size_t i = 1; i < at.size(); ++i) {
    EXPECT_DOUBLE_EQ(at[i] - at[i - 1], p.churn_interval);
  }
}

TEST(ScenarioDriver, TreeStaysValidUnderChurn) {
  DriverFixture f(25);
  ScenarioParams p = small_scenario();
  p.churn_rate = 0.3;
  ScenarioDriver driver(f.session, p, util::Rng(10));
  driver.run([&](sim::Time) {
    f.session.tree().validate();
    // Every alive member must be attached at measurement time.
    for (const net::HostId h : f.session.tree().alive_members()) {
      if (h == f.session.source()) continue;
      EXPECT_NE(f.session.tree().member(h).parent, net::kInvalidHost);
    }
  });
}

TEST(ScenarioDriver, DeterministicForSameSeed) {
  auto run_one = [] {
    DriverFixture f(20, 5);
    ScenarioDriver driver(f.session, small_scenario(), util::Rng(11));
    driver.run([](sim::Time) {});
    std::vector<net::HostId> parents;
    for (net::HostId h = 0; h < 20; ++h) {
      parents.push_back(f.session.tree().member(h).alive
                            ? f.session.tree().member(h).parent
                            : net::kInvalidHost);
    }
    return parents;
  };
  EXPECT_EQ(run_one(), run_one());
}

TEST(ScenarioDriver, BatchedJoinsMode) {
  DriverFixture f(20);
  ScenarioParams p;
  p.target_members = 12;
  p.batched_joins = true;
  p.batch_size = 4;
  p.churn_interval = 50.0;
  p.settle_time = 10.0;
  p.total_time = 400.0;
  ScenarioDriver driver(f.session, p, util::Rng(12));
  std::vector<std::size_t> sizes;
  driver.run([&](sim::Time) { sizes.push_back(driver.members_alive()); });
  ASSERT_EQ(sizes.size(), 3u);  // 12 members / 4 per batch
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 8u);
  EXPECT_EQ(sizes[2], 12u);
}

TEST(ScenarioDriver, RejectsBadConfigs) {
  DriverFixture f(10);
  ScenarioParams p = small_scenario();
  p.target_members = 10;  // == pool -> no slack for churn
  EXPECT_THROW(ScenarioDriver(f.session, p, util::Rng(1)), util::InvariantError);
  p.target_members = 5;
  p.settle_time = p.churn_interval;
  EXPECT_THROW(ScenarioDriver(f.session, p, util::Rng(1)), util::InvariantError);
}

TEST(ScenarioDriver, ZeroChurnKeepsInitialMembers) {
  DriverFixture f(15);
  ScenarioParams p = small_scenario();
  p.churn_rate = 0.0;
  ScenarioDriver driver(f.session, p, util::Rng(13));
  driver.run([](sim::Time) {});
  EXPECT_EQ(f.session.totals().reconnects_completed, 0u);
  EXPECT_EQ(f.session.totals().joins_completed, 10u);
}

TEST(ScenarioDriver, FullChurnHoldsSteadyMembership) {
  // churn_rate 1.0 replaces the entire membership every slot. Before the
  // joiner draw was made conditional on a successful victim draw, any
  // skipped departure still admitted its replacement and membership crept
  // upward; this pins the steady-state count at the maximum churn rate.
  DriverFixture f(25);
  ScenarioParams p = small_scenario();
  p.churn_rate = 1.0;
  ScenarioDriver driver(f.session, p, util::Rng(21));
  std::vector<std::size_t> sizes;
  driver.run([&](sim::Time) { sizes.push_back(driver.members_alive()); });
  ASSERT_EQ(sizes.size(), 4u);
  for (const std::size_t s : sizes) EXPECT_EQ(s, 10u);
  // Three full-replacement slots really happened (10 leaves + 10 joins each).
  EXPECT_EQ(f.session.totals().joins_completed, 10u + 30u);
}

TEST(ScenarioDriver, AdversarialIntervalStaysOnExactGrid) {
  // 0.1 is inexact in binary; accumulating `slot += interval` 10k times
  // drifts off the grid and eventually gains or loses a slot against the
  // closed form. The driver must place slot i at exactly
  // first_slot + i * interval.
  DriverFixture f(10);
  ScenarioParams p;
  p.target_members = 5;
  p.join_phase = 1.0;
  p.total_time = 1000.0;
  p.churn_interval = 0.1;
  p.settle_time = 0.02;
  p.churn_rate = 0.0;
  ScenarioDriver driver(f.session, p, util::Rng(22));
  std::vector<sim::Time> at;
  driver.run([&](sim::Time t) { at.push_back(t); });

  const sim::Time first = p.join_phase + p.settle_time;
  std::size_t expected = 1;  // measurement closing the join phase
  for (std::size_t i = 0;; ++i) {
    const sim::Time slot = first + static_cast<double>(i) * p.churn_interval;
    if (!(slot + p.churn_interval <= p.total_time)) break;
    ++expected;
  }
  ASSERT_EQ(at.size(), expected);
  EXPECT_GT(at.size(), 9000u);
  for (std::size_t i = 0; i < at.size(); ++i) {
    // Exact (bitwise) equality with the closed-form grid, not EXPECT_NEAR:
    // drift is precisely the regression this guards against.
    ASSERT_EQ(at[i], first + static_cast<double>(i) * p.churn_interval)
        << "measurement " << i << " off the closed-form slot grid";
  }
}

TEST(ScenarioDriver, PoolExhaustionReportsClearError) {
  // 11 usable hosts, 5 steady members + a 6-host flash crowd: the first
  // churn slot's joiner finds the pool empty. The failure must name the
  // budget that overflowed, not just trip an anonymous invariant.
  DriverFixture f(12);
  ScenarioParams p = small_scenario();
  p.target_members = 5;
  p.flash_count = 6;
  p.flash_at = 50.0;
  try {
    ScenarioDriver driver(f.session, p, util::Rng(23));
    driver.run([](sim::Time) {});
    FAIL() << "expected host-pool exhaustion";
  } catch (const util::InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("host pool exhausted"),
              std::string::npos)
        << e.what();
  }
}

// ----------------------------------------------------------- trace mode

TEST(ScenarioDriver, TraceModeReplaysExplicitEvents) {
  DriverFixture f(20);
  ScenarioParams p = small_scenario();
  ScenarioDriver driver(f.session, p, util::Rng(24));
  using K = WorkloadEvent::Kind;
  const std::vector<WorkloadEvent> events{
      {10.0, K::kJoin, 1, 3},  {20.0, K::kJoin, 2, 4}, {30.0, K::kJoin, 3, 4},
      {40.0, K::kJoin, 4, 2},  {200.0, K::kLeave, 2, 4},
      {250.0, K::kCrash, 3, 4},
      // Host 2 rejoins after leaving: legal within one trace.
      {300.0, K::kJoin, 2, 4},
  };
  std::vector<sim::Time> at;
  std::vector<std::size_t> sizes;
  driver.run_trace(events, [&](sim::Time t) {
    at.push_back(t);
    sizes.push_back(driver.members_alive());
  });
  // Same settled measurement grid as the slot timeline.
  ASSERT_EQ(at.size(), 4u);
  EXPECT_DOUBLE_EQ(at[0], p.join_phase + p.settle_time);
  EXPECT_EQ(sizes[0], 4u);           // after the four joins
  EXPECT_EQ(sizes.back(), 3u);       // leave + crash + rejoin
  EXPECT_EQ(f.session.totals().joins_completed, 5u);
  f.session.tree().validate();
}

TEST(ScenarioDriver, TraceModeIsDeterministic) {
  // The trace path draws no randomness: two replays with different driver
  // rng seeds produce identical trees.
  auto run_one = [](std::uint64_t driver_seed) {
    DriverFixture f(20, 5);
    ScenarioDriver driver(f.session, small_scenario(), util::Rng(driver_seed));
    using K = WorkloadEvent::Kind;
    const std::vector<WorkloadEvent> events{
        {10.0, K::kJoin, 1, 3},   {20.0, K::kJoin, 2, 4},
        {30.0, K::kJoin, 3, 5},   {150.0, K::kLeave, 1, 4},
        {220.0, K::kJoin, 6, 2},
    };
    driver.run_trace(events, [](sim::Time) {});
    std::vector<net::HostId> parents;
    for (net::HostId h = 0; h < 20; ++h) {
      parents.push_back(f.session.tree().member(h).alive
                            ? f.session.tree().member(h).parent
                            : net::kInvalidHost);
    }
    return parents;
  };
  EXPECT_EQ(run_one(100), run_one(200));
}

TEST(ScenarioDriver, TraceModeRejectsBadTraces) {
  using K = WorkloadEvent::Kind;
  const auto expect_throw_with = [](const std::vector<WorkloadEvent>& events,
                                    const std::string& needle) {
    DriverFixture f(20);
    ScenarioDriver driver(f.session, small_scenario(), util::Rng(25));
    try {
      driver.run_trace(events, [](sim::Time) {});
      FAIL() << "expected InvariantError mentioning: " << needle;
    } catch (const util::InvariantError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_throw_with({{20.0, K::kJoin, 1, 4}, {10.0, K::kJoin, 2, 4}},
                    "sorted");
  expect_throw_with({{10.0, K::kJoin, 1, 4}, {20.0, K::kJoin, 1, 4}},
                    "already a member");
  expect_throw_with({{10.0, K::kLeave, 1, 4}}, "not a member");
  expect_throw_with({{10.0, K::kCrash, 1, 4}}, "not a member");
}

}  // namespace
}  // namespace vdm::overlay
