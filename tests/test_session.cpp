#include "overlay/session.hpp"

#include <gtest/gtest.h>

#include "core/vdm_protocol.hpp"
#include "helpers.hpp"
#include "util/require.hpp"

namespace vdm::overlay {
namespace {

using testutil::Harness;
using testutil::line_underlay;

TEST(Session, StartActivatesSourceOnly) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  EXPECT_TRUE(h.session.tree().member(0).alive);
  EXPECT_FALSE(h.session.tree().member(1).alive);
}

TEST(Session, DoubleStartThrows) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  EXPECT_THROW(h.session.start(), util::InvariantError);
}

TEST(Session, SourceCannotJoin) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  EXPECT_THROW(h.session.join(0, 3), util::InvariantError);
}

TEST(Session, DoubleJoinThrows) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  h.join(1);
  EXPECT_THROW(h.session.join(1, 3), util::InvariantError);
}

TEST(Session, CountersAccumulateAndWindowResets) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  const auto after_one = h.session.totals().control_messages;
  EXPECT_GT(after_one, 0u);
  h.session.reset_window();
  EXPECT_EQ(h.session.window().control_messages, 0u);
  h.join(2);
  EXPECT_GT(h.session.window().control_messages, 0u);
  EXPECT_GT(h.session.totals().control_messages, after_one);
}

TEST(Session, StartupRecordsDrainOnTake) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  EXPECT_EQ(h.session.take_startup_records().size(), 2u);
  EXPECT_TRUE(h.session.take_startup_records().empty());
}

TEST(Session, ChunksFlowDownTheTree) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm, 8, 1, /*chunk_rate=*/5.0);
  h.join(1);
  h.join(2);
  h.sim.run_until(100.0);
  const auto& t = h.session.totals();
  EXPECT_GT(t.chunks_emitted, 0u);
  // Two receivers per emission once both are in.
  EXPECT_GT(t.data_transmissions, t.chunks_emitted);
  EXPECT_GT(h.session.tree().flood().chunks_received[1], 0u);
  EXPECT_GT(h.session.tree().flood().chunks_received[2], 0u);
}

TEST(Session, NoLossOnCleanStaticNetwork) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm, 8, 1, 5.0);
  h.join(1);
  h.join(2);
  h.sim.run_until(2.0);  // past join handshakes
  h.session.reset_window();
  h.sim.run_until(50.0);
  const auto& w = h.session.window();
  ASSERT_GT(w.chunks_expected, 0u);
  EXPECT_EQ(w.chunks_expected, w.chunks_delivered);
}

TEST(Session, LinkLossShowsUpInDelivery) {
  // 50% loss on every pseudo-link: delivery must hover near 50% for the
  // source's direct child.
  std::vector<double> delay{0.0, 0.005, 0.005, 0.0};
  std::vector<double> loss{0.0, 0.5, 0.5, 0.0};
  net::MatrixUnderlay u(2, std::move(delay), std::move(loss));
  core::VdmProtocol vdm;
  Harness h(std::move(u), vdm, 8, 1, /*chunk_rate=*/100.0);
  h.join(1);
  h.sim.run_until(1.0);
  h.session.reset_window();
  h.sim.run_until(101.0);  // ~10000 chunks
  const auto& w = h.session.window();
  ASSERT_GT(w.chunks_expected, 5000u);
  const double rate = static_cast<double>(w.chunks_delivered) /
                      static_cast<double>(w.chunks_expected);
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(Session, DataPlaneCanBeDisabled) {
  sim::Simulator simulator;
  net::MatrixUnderlay u = line_underlay({0.0, 10.0});
  core::VdmProtocol vdm;
  DelayMetric metric;
  SessionParams sp;
  sp.source = 0;
  sp.data_plane = false;
  Session session(simulator, u, vdm, metric, sp, util::Rng(1));
  session.start();
  session.join(1, 3);
  simulator.run_until(100.0);
  EXPECT_EQ(session.totals().chunks_emitted, 0u);
}

TEST(Session, EligibleParentRules) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), vdm);
  h.join(1);
  h.join(2);  // chain 0 -> 1 -> 2
  EXPECT_FALSE(h.session.eligible_parent(1, 1));  // self
  EXPECT_FALSE(h.session.eligible_parent(1, 2));  // own descendant
  EXPECT_FALSE(h.session.eligible_parent(1, 3));  // not alive
  EXPECT_TRUE(h.session.eligible_parent(2, 0));
  EXPECT_TRUE(h.session.eligible_parent(2, 1));
}

TEST(Session, MeasureParallelChargesMaxTimeSumMessages) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 30.0}), vdm);
  OpStats stats;
  const std::vector<net::HostId> targets{0, 2};
  const std::vector<double> d = h.session.measure_parallel(1, targets, stats);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 10.0);  // rtt 1<->0
  EXPECT_DOUBLE_EQ(d[1], 20.0);  // rtt 1<->2
  EXPECT_EQ(stats.messages, 4);
  EXPECT_DOUBLE_EQ(stats.elapsed, 20.0);  // slowest probe only
}

TEST(Session, ChargeHelpers) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  OpStats stats;
  h.session.charge_exchange(0, 1, stats);
  EXPECT_EQ(stats.messages, 2);
  EXPECT_DOUBLE_EQ(stats.elapsed, 10.0);
  h.session.charge_notification(3, stats);
  EXPECT_EQ(stats.messages, 5);
  EXPECT_DOUBLE_EQ(stats.elapsed, 10.0);  // notifications add no wait
}

TEST(Session, JoinsAndReconnectCountersTrack) {
  core::VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  EXPECT_EQ(h.session.totals().joins_completed, 2u);
  h.session.leave(1);
  EXPECT_EQ(h.session.totals().reconnects_completed, 1u);
}

TEST(Session, StopCancelsStreamAndTimers) {
  core::VdmConfig cfg;
  cfg.refinement = true;
  core::VdmProtocol vdm(cfg);
  Harness h(line_underlay({0.0, 10.0}), vdm);
  h.join(1);
  h.session.stop();
  const auto chunks = h.session.totals().chunks_emitted;
  h.sim.run_until(1000.0);
  EXPECT_EQ(h.session.totals().chunks_emitted, chunks);
  EXPECT_EQ(h.session.totals().refines_run, 0u);
}

}  // namespace
}  // namespace vdm::overlay
