// Incremental SSSP repair vs fresh Dijkstra: after any sequence of in-place
// delay edits (Graph::mutable_link), a Router that repaired its memoized
// trees must hold exactly — bit for bit — the state a Router computing from
// scratch produces. The delays are continuous random draws, so shortest-path
// ties (the one case where two valid trees exist) do not occur.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/graph.hpp"
#include "net/routing.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace vdm::net {
namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

/// Compares every queried source tree between the incrementally repaired
/// router and a scratch-built one, exactly.
void expect_trees_bitwise_equal(const Router& repaired, const Graph& g,
                                const std::vector<NodeId>& sources) {
  Router fresh(g);
  const std::size_t n = g.num_nodes();
  for (const NodeId s : sources) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(bits(repaired.delay(s, v)), bits(fresh.delay(s, v)))
          << "src " << s << " dst " << v;
      const auto a = repaired.path_stats(s, v);
      const auto b = fresh.path_stats(s, v);
      ASSERT_EQ(bits(a.delay), bits(b.delay));
      ASSERT_EQ(bits(a.loss), bits(b.loss));
      ASSERT_EQ(a.hops, b.hops);
    }
  }
}

TEST(IncrementalRouting, RandomMutationSequencesMatchFreshDijkstra) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    topo::WaxmanParams wp;
    wp.num_routers = 120;
    wp.loss_max = 0.02;
    topo::WaxmanTopology topo = topo::make_waxman(wp, rng);
    Graph& g = topo.graph;
    Router router(g);

    std::vector<NodeId> sources;
    for (int i = 0; i < 5; ++i) {
      sources.push_back(static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(g.num_nodes()) - 1)));
    }
    // Warm every tracked tree so the edits below exercise repair, not the
    // first-build path.
    for (const NodeId s : sources) router.delay(s, 0);

    for (int round = 0; round < 40; ++round) {
      // A burst of 1-3 edits before any query, mixing raises and cuts.
      const int burst = static_cast<int>(rng.uniform_int(1, 3));
      for (int e = 0; e < burst; ++e) {
        const auto l = static_cast<LinkId>(
            rng.uniform_int(0, static_cast<std::int64_t>(g.num_links()) - 1));
        const double factor = rng.chance(0.5) ? rng.uniform(1.05, 4.0)
                                              : rng.uniform(0.25, 0.95);
        g.mutable_link(l).delay *= factor;
      }
      // Touch a couple of trees (repairs run lazily per source); the full
      // cross-check below then forces the rest to catch up.
      router.delay(sources[static_cast<std::size_t>(round) % sources.size()], 0);
      if (round % 5 == 0) {
        expect_trees_bitwise_equal(router, g, sources);
      }
    }
    expect_trees_bitwise_equal(router, g, sources);
    EXPECT_GT(router.repair_visits(), 0u);
  }
}

TEST(IncrementalRouting, SingleEditTouchesSmallCone) {
  util::Rng rng(7);
  const topo::TransitStubParams tp;  // defaults: ~100 routers
  topo::TransitStubTopology topo = topo::make_transit_stub(tp, rng);
  Graph& g = topo.graph;
  Router router(g);
  const std::size_t n = g.num_nodes();

  // Warm a handful of trees, then measure the repair cost of one edit.
  std::vector<NodeId> sources{0, static_cast<NodeId>(n / 3),
                              static_cast<NodeId>(n / 2),
                              static_cast<NodeId>(n - 1)};
  for (const NodeId s : sources) router.delay(s, 0);
  const std::uint64_t full_before = router.full_recomputes();

  std::uint64_t total_visits = 0;
  const int kEdits = 50;
  for (int i = 0; i < kEdits; ++i) {
    const auto l = static_cast<LinkId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.num_links()) - 1));
    g.mutable_link(l).delay *= rng.uniform(0.8, 1.25);
    const std::uint64_t before = router.repair_visits();
    for (const NodeId s : sources) router.delay(s, 0);
    total_visits += router.repair_visits() - before;
  }
  // o(V): across many random single-link edits the average repaired cone is
  // far below a per-tree full recompute. Give-up fallbacks (cone > V/4)
  // would show up in full_recomputes instead.
  const std::uint64_t full_equiv =
      static_cast<std::uint64_t>(kEdits) * sources.size() * n;
  EXPECT_LT(total_visits, full_equiv / 4);
  EXPECT_LE(router.full_recomputes() - full_before,
            static_cast<std::uint64_t>(kEdits) / 5);
  expect_trees_bitwise_equal(router, g, sources);
}

TEST(IncrementalRouting, LogOverflowFallsBackToFullRecompute) {
  util::Rng rng(11);
  topo::WaxmanParams wp;
  wp.num_routers = 60;
  topo::WaxmanTopology topo = topo::make_waxman(wp, rng);
  Graph& g = topo.graph;
  Router router(g);
  router.delay(0, 1);  // warm tree 0

  // More edits than the log window retains: the tree cannot catch up
  // incrementally and must rebuild — and still match fresh exactly.
  for (std::size_t i = 0; i < Graph::kMutationLogCap + 16; ++i) {
    const auto l = static_cast<LinkId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.num_links()) - 1));
    g.mutable_link(l).delay *= rng.uniform(0.5, 2.0);
  }
  const std::uint64_t full_before = router.full_recomputes();
  router.delay(0, 1);
  EXPECT_GT(router.full_recomputes(), full_before);
  expect_trees_bitwise_equal(router, g, {0});
}

TEST(IncrementalRouting, StructuralChangeInvalidatesWholesale) {
  util::Rng rng(13);
  topo::WaxmanParams wp;
  wp.num_routers = 40;
  topo::WaxmanTopology topo = topo::make_waxman(wp, rng);
  Graph& g = topo.graph;
  Router router(g);
  router.delay(0, 1);

  g.mutable_link(0).delay *= 2.0;     // logged in-place edit...
  const NodeId v = g.add_node();      // ...then a structural change
  g.add_link(v, 0, 0.001);
  const std::uint64_t full_before = router.full_recomputes();
  router.delay(0, v);
  EXPECT_GT(router.full_recomputes(), full_before);
  expect_trees_bitwise_equal(router, g, {0});
}

TEST(IncrementalRouting, LossOnlyEditIsFreeForTrees) {
  util::Rng rng(17);
  topo::WaxmanParams wp;
  wp.num_routers = 40;
  topo::WaxmanTopology topo = topo::make_waxman(wp, rng);
  Graph& g = topo.graph;
  Router router(g);
  router.delay(0, 1);

  const std::uint64_t visits_before = router.repair_visits();
  const std::uint64_t full_before = router.full_recomputes();
  g.mutable_link(0).loss = 0.1;  // delay untouched: tree already consistent
  router.delay(0, 1);
  // Tree-edge check sees dist[child] == dist[parent] + delay and stops; a
  // non-tree edge costs nothing either way. path_stats reads loss live.
  EXPECT_EQ(router.full_recomputes(), full_before);
  EXPECT_LE(router.repair_visits() - visits_before, 1u);
  expect_trees_bitwise_equal(router, g, {0});
}

}  // namespace
}  // namespace vdm::net
