#include <gtest/gtest.h>

#include <sstream>

#include "baselines/hmtp_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "testbed/controller.hpp"
#include "testbed/dot_export.hpp"
#include "testbed/node_pool.hpp"
#include "testbed/report.hpp"
#include "testbed/scenario_file.hpp"
#include "util/require.hpp"

namespace vdm::testbed {
namespace {

// -------------------------------------------------------------- node pool

TEST(NodePool, HealthRatesRoughlyMatchParams) {
  util::Rng rng(1);
  PoolParams p;
  p.num_nodes = 2000;
  const NodePool pool = make_pool(p, topo::us_regions(), rng);
  const FilterReport r = filter_nodes(pool);
  EXPECT_EQ(r.total, 2000u);
  EXPECT_NEAR(static_cast<double>(r.dropped_unresponsive) / 2000.0, 0.10, 0.03);
  EXPECT_GT(r.usable, 1500u);
  EXPECT_EQ(r.total, r.usable + r.dropped_unresponsive + r.dropped_no_ping_out +
                         r.dropped_agent);
}

TEST(NodePool, UsableNodesMatchFilterCount) {
  util::Rng rng(2);
  PoolParams p;
  p.num_nodes = 300;
  const NodePool pool = make_pool(p, topo::us_regions(), rng);
  EXPECT_EQ(pool.usable_nodes().size(), filter_nodes(pool).usable);
}

TEST(NodePool, LazyNodesHaveSlownessAboveOne) {
  util::Rng rng(3);
  PoolParams p;
  p.num_nodes = 500;
  p.frac_lazy = 1.0;  // everyone lazy
  const NodePool pool = make_pool(p, topo::us_regions(), rng);
  for (const NodeHealth& h : pool.health) {
    EXPECT_GE(h.slowness, p.lazy_slowness_min);
    EXPECT_LE(h.slowness, p.lazy_slowness_max);
  }
}

TEST(NodePool, PerfectPoolKeepsEverything) {
  util::Rng rng(4);
  PoolParams p;
  p.num_nodes = 50;
  p.frac_unresponsive = p.frac_no_ping_out = p.frac_agent_broken = 0.0;
  const NodePool pool = make_pool(p, topo::us_regions(), rng);
  EXPECT_EQ(filter_nodes(pool).usable, 50u);
}

// --------------------------------------------------------- scenario files

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  for (net::HostId h = 1; h <= 30; ++h) spec.nodes.push_back(h);
  spec.members = 10;
  spec.join_phase = 100.0;
  spec.total_time = 500.0;
  spec.churn_interval = 100.0;
  spec.churn_rate = 0.2;
  return spec;
}

TEST(ScenarioFile, GenerateProducesWarmupThenChurn) {
  util::Rng rng(5);
  const Scenario sc = generate_scenario(small_spec(), rng);
  ASSERT_FALSE(sc.events.empty());
  EXPECT_EQ(sc.events.back().action, ScenarioEvent::Action::kTerminate);
  std::size_t joins = 0, leaves = 0;
  for (const ScenarioEvent& e : sc.events) {
    if (e.action == ScenarioEvent::Action::kJoin) {
      ++joins;
      EXPECT_GE(e.degree_limit, 1);
    }
    if (e.action == ScenarioEvent::Action::kLeave) ++leaves;
  }
  EXPECT_EQ(joins, 10u + leaves);  // each leave paired with a join
  EXPECT_GT(leaves, 0u);
}

TEST(ScenarioFile, EventsAreTimeOrdered) {
  util::Rng rng(6);
  const Scenario sc = generate_scenario(small_spec(), rng);
  for (std::size_t i = 1; i < sc.events.size(); ++i) {
    EXPECT_LE(sc.events[i - 1].at, sc.events[i].at);
  }
}

TEST(ScenarioFile, NoJoinOfAlreadyJoinedNode) {
  util::Rng rng(7);
  const Scenario sc = generate_scenario(small_spec(), rng);
  std::vector<char> in(64, 0);
  for (const ScenarioEvent& e : sc.events) {
    if (e.action == ScenarioEvent::Action::kJoin) {
      EXPECT_FALSE(in[e.node]) << "double join of " << e.node;
      in[e.node] = 1;
    } else if (e.action == ScenarioEvent::Action::kLeave) {
      EXPECT_TRUE(in[e.node]) << "leave of absent " << e.node;
      in[e.node] = 0;
    }
  }
}

TEST(ScenarioFile, WriteParseRoundTrip) {
  util::Rng rng(8);
  const Scenario sc = generate_scenario(small_spec(), rng);
  std::ostringstream os;
  write_scenario(sc, os);
  const Scenario back = parse_scenario(os.str());
  ASSERT_EQ(back.events.size(), sc.events.size());
  for (std::size_t i = 0; i < sc.events.size(); ++i) {
    EXPECT_EQ(back.events[i].action, sc.events[i].action);
    EXPECT_EQ(back.events[i].node, sc.events[i].node);
    EXPECT_NEAR(back.events[i].at, sc.events[i].at, 1e-4);
    if (sc.events[i].action == ScenarioEvent::Action::kJoin) {
      EXPECT_EQ(back.events[i].degree_limit, sc.events[i].degree_limit);
    }
  }
}

TEST(ScenarioFile, CrashFractionTurnsDeparturesIntoCrashes) {
  ScenarioSpec spec = small_spec();
  spec.crash_fraction = 1.0;
  util::Rng rng(21);
  const Scenario sc = generate_scenario(spec, rng);
  std::size_t crashes = 0, leaves = 0;
  for (const ScenarioEvent& e : sc.events) {
    if (e.action == ScenarioEvent::Action::kCrash) ++crashes;
    if (e.action == ScenarioEvent::Action::kLeave) ++leaves;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_EQ(leaves, 0u);  // every departure is ungraceful

  // crash_fraction == 0 draws nothing: the stream matches the all-graceful
  // generation from the same seed event for event.
  util::Rng rng_a(22), rng_b(22);
  const Scenario graceful = generate_scenario(small_spec(), rng_a);
  ScenarioSpec zero = small_spec();
  zero.crash_fraction = 0.0;
  const Scenario zero_sc = generate_scenario(zero, rng_b);
  ASSERT_EQ(zero_sc.events.size(), graceful.events.size());
  for (std::size_t i = 0; i < graceful.events.size(); ++i) {
    EXPECT_EQ(zero_sc.events[i].action, graceful.events[i].action);
    EXPECT_EQ(zero_sc.events[i].node, graceful.events[i].node);
    EXPECT_DOUBLE_EQ(zero_sc.events[i].at, graceful.events[i].at);
  }
}

TEST(ScenarioFile, CrashVerbRoundTrips) {
  ScenarioSpec spec = small_spec();
  spec.crash_fraction = 0.5;
  util::Rng rng(23);
  const Scenario sc = generate_scenario(spec, rng);
  std::ostringstream os;
  write_scenario(sc, os);
  EXPECT_NE(os.str().find(" crash "), std::string::npos);
  const Scenario back = parse_scenario(os.str());
  ASSERT_EQ(back.events.size(), sc.events.size());
  for (std::size_t i = 0; i < sc.events.size(); ++i) {
    EXPECT_EQ(back.events[i].action, sc.events[i].action);
    EXPECT_EQ(back.events[i].node, sc.events[i].node);
  }
  EXPECT_THROW(parse_scenario("1.0 crash\n"), util::InvariantError);
}

TEST(ScenarioFile, FlashVerbRoundTrips) {
  ScenarioSpec spec = small_spec();
  spec.flash_count = 12;
  spec.flash_at = 100.0;
  util::Rng rng(29);
  const Scenario sc = generate_scenario(spec, rng);
  std::ostringstream os;
  write_scenario(sc, os);
  EXPECT_NE(os.str().find(" flash "), std::string::npos);
  const Scenario back = parse_scenario(os.str());
  ASSERT_EQ(back.events.size(), sc.events.size());
  bool saw_flash = false;
  for (std::size_t i = 0; i < sc.events.size(); ++i) {
    EXPECT_EQ(back.events[i].action, sc.events[i].action);
    EXPECT_EQ(back.events[i].node, sc.events[i].node);
    if (sc.events[i].action == ScenarioEvent::Action::kFlash) {
      saw_flash = true;
      EXPECT_EQ(sc.events[i].at, 100.0);
      EXPECT_EQ(sc.events[i].node, 12u);  // node carries the burst count
    }
  }
  EXPECT_TRUE(saw_flash);
  EXPECT_THROW(parse_scenario("1.0 flash\n"), util::InvariantError);
  EXPECT_THROW(parse_scenario("1.0 flash 0\n"), util::InvariantError);
}

TEST(ScenarioFile, ParserHandlesCommentsAndBlanks) {
  const Scenario sc = parse_scenario(
      "# a comment\n"
      "\n"
      "1.5 join 3 4\n"
      "2.0 leave 3   # trailing comment\n"
      "9 terminate\n");
  ASSERT_EQ(sc.events.size(), 3u);
  EXPECT_EQ(sc.events[0].node, 3u);
  EXPECT_EQ(sc.events[0].degree_limit, 4);
  EXPECT_EQ(sc.events[1].action, ScenarioEvent::Action::kLeave);
  EXPECT_DOUBLE_EQ(sc.end_time, 9.0);
}

TEST(ScenarioFile, ParserRejectsGarbage) {
  EXPECT_THROW(parse_scenario("1.0 explode 3\n"), util::InvariantError);
  EXPECT_THROW(parse_scenario("1.0 join\n"), util::InvariantError);
}

TEST(ScenarioFile, NormalizeAppendsTerminate) {
  Scenario sc;
  sc.events.push_back({5.0, 1, ScenarioEvent::Action::kJoin, 2});
  sc.normalize();
  EXPECT_EQ(sc.events.back().action, ScenarioEvent::Action::kTerminate);
  EXPECT_DOUBLE_EQ(sc.end_time, 5.0);
}

TEST(ScenarioFile, GenerateRejectsTooFewNodes) {
  util::Rng rng(9);
  ScenarioSpec spec = small_spec();
  spec.members = 100;  // > pool
  EXPECT_THROW(generate_scenario(spec, rng), util::InvariantError);
}

// -------------------------------------------------------------- controller

TEST(Controller, RunsScenarioAndReports) {
  util::Rng rng(10);
  PoolParams pp;
  pp.num_nodes = 40;
  pp.frac_unresponsive = pp.frac_no_ping_out = pp.frac_agent_broken = 0.0;
  const NodePool pool = make_pool(pp, topo::us_regions(), rng);

  ScenarioSpec spec;
  for (const net::HostId h : pool.usable_nodes()) {
    if (h != 0) spec.nodes.push_back(h);
  }
  spec.members = 15;
  spec.join_phase = 60.0;
  spec.total_time = 300.0;
  spec.churn_interval = 60.0;
  spec.churn_rate = 0.1;
  util::Rng scenario_rng(11);
  const Scenario sc = generate_scenario(spec, scenario_rng);

  sim::Simulator simulator;
  core::VdmProtocol vdm;
  overlay::DelayMetric metric;
  ControllerParams cp;
  cp.measure_interval = 60.0;
  MainController controller(simulator, pool.topology.underlay, vdm, metric, cp,
                            util::Rng(12));
  const SessionReport report = controller.run(sc);

  EXPECT_EQ(report.final_tree.members, 16u);
  EXPECT_GE(report.startup_times.size(), 15u);  // warmup joins + churn joins
  EXPECT_GT(report.totals.control_messages, 0u);
  EXPECT_GT(report.totals.chunks_emitted, 2000u);  // 10/s for 300s
  EXPECT_GE(report.mst_ratio, 1.0 - 1e-9);
  EXPECT_GE(report.epochs.size(), 4u);
  EXPECT_GE(report.loss_rate, 0.0);
  EXPECT_LT(report.loss_rate, 0.5);
}

TEST(Controller, CrashScenarioWithHeartbeatsReportsDetection) {
  // The testbed route of the failure model: a generated scenario whose
  // departures all crash, driven through MainController with heartbeat
  // detection on — the report must split detection from the rejoin.
  util::Rng rng(24);
  PoolParams pp;
  pp.num_nodes = 40;
  pp.frac_unresponsive = pp.frac_no_ping_out = pp.frac_agent_broken = 0.0;
  const NodePool pool = make_pool(pp, topo::us_regions(), rng);

  ScenarioSpec spec;
  for (const net::HostId h : pool.usable_nodes()) {
    if (h != 0) spec.nodes.push_back(h);
  }
  spec.members = 15;
  spec.join_phase = 60.0;
  spec.total_time = 300.0;
  spec.churn_interval = 60.0;
  spec.churn_rate = 0.1;
  spec.crash_fraction = 1.0;
  util::Rng scenario_rng(25);
  const Scenario sc = generate_scenario(spec, scenario_rng);

  sim::Simulator simulator;
  core::VdmProtocol vdm;
  overlay::DelayMetric metric;
  ControllerParams cp;
  cp.measure_interval = 60.0;
  cp.faults.heartbeat_period = 1.0;
  cp.faults.heartbeat_misses = 3;
  cp.faults.heartbeat_timeout = 0.5;
  MainController controller(simulator, pool.topology.underlay, vdm, metric, cp,
                            util::Rng(26));
  const SessionReport report = controller.run(sc);

  EXPECT_GT(report.totals.crashes, 0u);
  ASSERT_FALSE(report.detection_times.empty());
  ASSERT_EQ(report.outage_times.size(), report.detection_times.size());
  for (std::size_t i = 0; i < report.detection_times.size(); ++i) {
    // The verdict needs a full silent streak: the first probe lands within
    // one period of the crash, then (misses - 1) more periods + timeout.
    EXPECT_GE(report.detection_times[i], 2.5);
    EXPECT_GT(report.outage_times[i], report.detection_times[i]);
  }
}

TEST(Controller, WorksWithHmtpToo) {
  util::Rng rng(13);
  PoolParams pp;
  pp.num_nodes = 30;
  pp.frac_unresponsive = pp.frac_no_ping_out = pp.frac_agent_broken = 0.0;
  const NodePool pool = make_pool(pp, topo::us_regions(), rng);
  Scenario sc;
  for (net::HostId h = 1; h <= 10; ++h) {
    sc.events.push_back({static_cast<double>(h), h, ScenarioEvent::Action::kJoin, 4});
  }
  sc.end_time = 120.0;
  sc.normalize();

  sim::Simulator simulator;
  baselines::HmtpProtocol hmtp;
  overlay::DelayMetric metric;
  MainController controller(simulator, pool.topology.underlay, hmtp, metric,
                            ControllerParams{}, util::Rng(14));
  const SessionReport report = controller.run(sc);
  EXPECT_EQ(report.final_tree.members, 11u);
  EXPECT_GT(report.totals.refines_run, 0u);  // HMTP refinement timers fired
}

TEST(Controller, FlashBurstExpandsOverUnusedHosts) {
  // A hand-written scenario: 8 warmup joins, then a 15-strong flash burst.
  // The controller must expand the burst over host ids used nowhere else
  // in the scenario and attach every one of them.
  util::Rng rng(31);
  PoolParams pp;
  pp.num_nodes = 40;
  pp.frac_unresponsive = pp.frac_no_ping_out = pp.frac_agent_broken = 0.0;
  const NodePool pool = make_pool(pp, topo::us_regions(), rng);
  Scenario sc;
  for (net::HostId h = 1; h <= 8; ++h) {
    sc.events.push_back({static_cast<double>(h), h, ScenarioEvent::Action::kJoin, 4});
  }
  sc.events.push_back({20.0, 15, ScenarioEvent::Action::kFlash, 4});
  sc.end_time = 120.0;
  sc.normalize();

  sim::Simulator simulator;
  core::VdmProtocol vdm;
  overlay::DelayMetric metric;
  ControllerParams cp;
  cp.join_mode = overlay::JoinMode::kConcurrent;
  MainController controller(simulator, pool.topology.underlay, vdm, metric, cp,
                            util::Rng(32));
  const SessionReport report = controller.run(sc);

  EXPECT_EQ(report.final_tree.members, 24u);  // source + 8 warmup + 15 flash
  EXPECT_EQ(report.totals.joins_completed, 23u);
  EXPECT_GE(report.startup_times.size(), 23u);
}

TEST(FlakyMetric, SlowsMeasurementsOfLazyTargets) {
  const std::vector<double> delay{0.0, 0.010, 0.010, 0.0};
  const net::MatrixUnderlay u(2, delay);
  FlakyMetric flaky(std::make_unique<overlay::DelayMetric>(),
                    /*slowness=*/{1.0, 4.0}, /*noise=*/0.0);
  EXPECT_DOUBLE_EQ(flaky.measurement_time(u, 1, 0), 0.020);      // prompt target
  EXPECT_DOUBLE_EQ(flaky.measurement_time(u, 0, 1), 4 * 0.020);  // lazy target
  util::Rng rng(15);
  EXPECT_DOUBLE_EQ(flaky.measure(u, 0, 1, rng), 0.020);  // value unchanged
}

TEST(FlakyMetric, NoiseVariesMeasurements) {
  const std::vector<double> delay{0.0, 0.010, 0.010, 0.0};
  const net::MatrixUnderlay u(2, delay);
  FlakyMetric flaky(std::make_unique<overlay::DelayMetric>(), {1.0, 1.0}, 0.2);
  util::Rng rng(16);
  const double a = flaky.measure(u, 0, 1, rng);
  const double b = flaky.measure(u, 0, 1, rng);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------------ report

TEST(Report, ContinentOfParsesPrefix) {
  EXPECT_EQ(continent_of("US-West"), "US");
  EXPECT_EQ(continent_of("EU-North"), "EU");
  EXPECT_EQ(continent_of("Oceania"), "Oceania");
}

TEST(Report, ClusterStatsCountEdges) {
  util::Rng rng(17);
  topo::GeoParams gp;
  gp.num_hosts = 6;
  gp.regions = topo::world_regions();
  topo::GeoTopology geo = topo::make_geo(gp, rng);

  overlay::Membership tree(6);
  for (net::HostId h = 0; h < 6; ++h) tree.activate(h, 8);
  for (net::HostId h = 1; h < 6; ++h) tree.attach(h, 0, 1.0);
  const ClusterStats stats = cluster_stats(tree, 0, geo);
  EXPECT_EQ(stats.edges, 5u);
  EXPECT_EQ(stats.intra_region + stats.cross_continent +
                (stats.intra_continent - stats.intra_region),
            5u);
}

TEST(Report, DotExportIsWellFormed) {
  util::Rng rng(20);
  topo::GeoParams gp;
  gp.num_hosts = 5;
  topo::GeoTopology geo = topo::make_geo(gp, rng);
  overlay::Membership tree(5);
  for (net::HostId h = 0; h < 5; ++h) tree.activate(h, 8);
  tree.attach(1, 0, 1.0);
  tree.attach(2, 1, 1.0);
  tree.attach(3, 0, 1.0);
  std::ostringstream os;
  write_dot(tree, 0, geo, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n3"), std::string::npos);
  EXPECT_EQ(dot.find("n4"), std::string::npos);  // detached host not drawn
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // source marked
  EXPECT_NE(dot.find("ms\""), std::string::npos);          // edge delays
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Report, DotExportWithoutGeoOmitsRegions) {
  overlay::Membership tree(3);
  for (net::HostId h = 0; h < 3; ++h) tree.activate(h, 8);
  tree.attach(1, 0, 1.0);
  tree.attach(2, 1, 1.0);
  const std::vector<double> delay{0.0, 0.01, 0.02, 0.01, 0.0, 0.01, 0.02, 0.01, 0.0};
  const net::MatrixUnderlay u(3, delay);
  std::ostringstream os;
  DotOptions opts;
  opts.edge_delays = false;
  write_dot(tree, 0, u, os, opts);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_EQ(dot.find("ms"), std::string::npos);
  EXPECT_EQ(dot.find("US-"), std::string::npos);
}

TEST(Report, RenderTreeShowsAllNodes) {
  util::Rng rng(18);
  topo::GeoParams gp;
  gp.num_hosts = 4;
  topo::GeoTopology geo = topo::make_geo(gp, rng);
  overlay::Membership tree(4);
  for (net::HostId h = 0; h < 4; ++h) tree.activate(h, 8);
  tree.attach(1, 0, 1.0);
  tree.attach(2, 1, 1.0);
  tree.attach(3, 0, 1.0);
  const std::string out = render_tree(tree, 0, geo);
  EXPECT_NE(out.find("node 0"), std::string::npos);
  EXPECT_NE(out.find("(source)"), std::string::npos);
  EXPECT_NE(out.find("node 2"), std::string::npos);
  EXPECT_NE(out.find("node 3"), std::string::npos);
}

}  // namespace
}  // namespace vdm::testbed
