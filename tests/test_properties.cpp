// Property-based tests: random operation sequences over every protocol and
// substrate must preserve the structural invariants of DESIGN.md §5.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "baselines/btp_protocol.hpp"
#include "baselines/hmtp_protocol.hpp"
#include "baselines/random_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "metrics/tree_metrics.hpp"
#include "overlay/scenario.hpp"
#include "overlay/session.hpp"
#include "topology/geo.hpp"
#include "topology/transit_stub.hpp"
#include "util/rng.hpp"

namespace vdm {
namespace {

enum class ProtoKind { kVdm, kVdmRefine, kHmtp, kHmtpFoster, kBtp, kRandom };
enum class NetKind { kTransitStub, kGeo };

struct Params {
  ProtoKind proto;
  NetKind net;
  std::uint64_t seed;
};

std::string params_name(const testing::TestParamInfo<Params>& info) {
  std::string name;
  switch (info.param.proto) {
    case ProtoKind::kVdm: name = "Vdm"; break;
    case ProtoKind::kVdmRefine: name = "VdmRefine"; break;
    case ProtoKind::kHmtp: name = "Hmtp"; break;
    case ProtoKind::kHmtpFoster: name = "HmtpFoster"; break;
    case ProtoKind::kBtp: name = "Btp"; break;
    case ProtoKind::kRandom: name = "Random"; break;
  }
  name += info.param.net == NetKind::kTransitStub ? "TransitStub" : "Geo";
  name += "Seed" + std::to_string(info.param.seed);
  return name;
}

std::unique_ptr<overlay::Protocol> make_protocol(ProtoKind kind) {
  switch (kind) {
    case ProtoKind::kVdm:
      return std::make_unique<core::VdmProtocol>();
    case ProtoKind::kVdmRefine: {
      core::VdmConfig cfg;
      cfg.refinement = true;
      cfg.refinement_period = 40.0;
      return std::make_unique<core::VdmProtocol>(cfg);
    }
    case ProtoKind::kHmtp:
      return std::make_unique<baselines::HmtpProtocol>();
    case ProtoKind::kHmtpFoster: {
      baselines::HmtpConfig cfg;
      cfg.foster_child = true;
      return std::make_unique<baselines::HmtpProtocol>(cfg);
    }
    case ProtoKind::kBtp:
      return std::make_unique<baselines::BtpProtocol>();
    case ProtoKind::kRandom:
      return std::make_unique<baselines::RandomProtocol>();
  }
  return nullptr;
}

std::unique_ptr<net::Underlay> make_net(NetKind kind, util::Rng& rng,
                                        std::size_t hosts) {
  if (kind == NetKind::kTransitStub) {
    topo::TransitStubParams tp;
    tp.transit_domains = 2;
    tp.routers_per_transit = 3;
    tp.stub_domains_per_transit_router = 2;
    tp.routers_per_stub = 3;
    topo::HostAttachment hp;
    hp.num_hosts = hosts;
    return std::make_unique<net::GraphUnderlay>(
        topo::make_transit_stub_underlay(tp, hp, rng));
  }
  topo::GeoParams gp;
  gp.num_hosts = hosts;
  topo::GeoTopology geo = topo::make_geo(gp, rng);
  return std::make_unique<net::MatrixUnderlay>(std::move(geo.underlay));
}

class ProtocolProperties : public testing::TestWithParam<Params> {};

TEST_P(ProtocolProperties, RandomChurnPreservesAllInvariants) {
  const Params p = GetParam();
  util::Rng rng(p.seed);
  constexpr std::size_t kHosts = 24;
  const auto underlay = make_net(p.net, rng, kHosts);
  const auto protocol = make_protocol(p.proto);

  sim::Simulator simulator;
  overlay::SessionParams sp;
  sp.source = 0;
  // Degree limits count the parent link, so a limit-1 member is a pure
  // leaf and an adversarial draw (many limit-1 members) can exhaust total
  // overlay capacity, making further joins impossible. An unsaturable
  // source keeps every join admissible while the saturated-leaf descent
  // guards still get exercised by the limit-1 members below.
  sp.source_degree_limit = static_cast<int>(kHosts);
  sp.paranoid_checks = true;  // validate after every mutating operation
  sp.chunk_rate = 2.0;
  const overlay::DelayMetric metric(0.0);
  overlay::Session session(simulator, *underlay, *protocol, metric, sp,
                           rng.split(1));
  session.start();

  overlay::DegreeSpec degrees = overlay::DegreeSpec::uniform(1, 4);
  std::vector<net::HostId> in;
  std::vector<net::HostId> out;
  for (net::HostId h = 1; h < kHosts; ++h) out.push_back(h);

  sim::Time t = 0.1;
  for (int step = 0; step < 150; ++step) {
    const bool do_join = in.empty() || (out.empty() ? false : rng.chance(0.55));
    if (do_join) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
      const net::HostId h = out[i];
      out[i] = out.back();
      out.pop_back();
      in.push_back(h);
      const int limit = degrees.sample(rng);
      simulator.schedule_at(t, [&session, h, limit] { session.join(h, limit); });
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(in.size()) - 1));
      const net::HostId h = in[i];
      in[i] = in.back();
      in.pop_back();
      out.push_back(h);
      simulator.schedule_at(t, [&session, h] { session.leave(h); });
    }
    t += rng.uniform(0.5, 5.0);
  }
  simulator.run_until(t + 10.0);

  // Invariant 1-3: structural consistency (validate throws otherwise; it
  // also ran after every operation via paranoid_checks).
  session.tree().validate();

  // Every alive member is connected under the source at quiescence.
  for (const net::HostId h : session.tree().alive_members()) {
    EXPECT_TRUE(session.tree().is_ancestor(session.source(), h))
        << "member " << h << " detached";
  }

  // Invariant 6: metric sanity.
  const metrics::TreeMetrics tm =
      metrics::measure_tree(session.tree(), session.source(), *underlay);
  EXPECT_EQ(tm.members, in.size() + 1);
  if (!in.empty()) {
    EXPECT_GE(tm.stress_avg, 1.0);
    EXPECT_GE(tm.hop_max, 1.0);
    EXPECT_GT(tm.network_usage, 0.0);
  }

  // Counters are consistent.
  const auto& totals = session.totals();
  EXPECT_GE(totals.chunks_delivered, 0u);
  EXPECT_GE(totals.chunks_expected, totals.chunks_delivered);
  EXPECT_GT(totals.control_messages, 0u);
}

TEST_P(ProtocolProperties, CrashChurnRecoversAllInvariants) {
  // Ungraceful crashes with heartbeat detection and a lossy control plane:
  // orphans stay detached for a few probe periods before rejoining, false
  // positives force spurious detach/rejoin cycles, and every exchange may
  // pay retransmissions. After the churn quiesces (every pending detection
  // is long past), the structural invariants must hold and every alive
  // member must be reachable from the source again.
  const Params p = GetParam();
  util::Rng rng(p.seed + 1000);  // decorrelate from the graceful-churn test
  constexpr std::size_t kHosts = 24;
  const auto underlay = make_net(p.net, rng, kHosts);
  const auto protocol = make_protocol(p.proto);

  sim::Simulator simulator;
  overlay::SessionParams sp;
  sp.source = 0;
  sp.source_degree_limit = static_cast<int>(kHosts);  // see above
  sp.paranoid_checks = true;
  sp.chunk_rate = 2.0;
  sp.faults.heartbeat_period = 1.0;
  sp.faults.heartbeat_misses = 2;
  sp.faults.heartbeat_timeout = 0.5;
  sp.faults.lossy_control = true;
  sp.faults.control_loss_extra = 0.02;
  const overlay::DelayMetric metric(0.0);
  overlay::Session session(simulator, *underlay, *protocol, metric, sp,
                           rng.split(1));
  session.start();

  overlay::DegreeSpec degrees = overlay::DegreeSpec::uniform(1, 4);
  std::vector<net::HostId> in;
  std::vector<net::HostId> out;
  for (net::HostId h = 1; h < kHosts; ++h) out.push_back(h);

  sim::Time t = 0.1;
  for (int step = 0; step < 150; ++step) {
    const bool do_join = in.empty() || (out.empty() ? false : rng.chance(0.55));
    if (do_join) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
      const net::HostId h = out[i];
      out[i] = out.back();
      out.pop_back();
      in.push_back(h);
      const int limit = degrees.sample(rng);
      simulator.schedule_at(t, [&session, h, limit] { session.join(h, limit); });
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(in.size()) - 1));
      const net::HostId h = in[i];
      in[i] = in.back();
      in.pop_back();
      out.push_back(h);
      if (rng.chance(0.5)) {
        simulator.schedule_at(t, [&session, h] { session.crash(h); });
      } else {
        simulator.schedule_at(t, [&session, h] { session.leave(h); });
      }
    }
    t += rng.uniform(0.5, 5.0);
  }
  // Generous quiescence margin: the last possible detection verdict lands
  // heartbeat_misses * period + timeout after the final crash.
  simulator.run_until(t + 60.0);

  session.tree().validate();
  for (const net::HostId h : session.tree().alive_members()) {
    EXPECT_TRUE(session.tree().is_ancestor(session.source(), h))
        << "member " << h << " still detached after recovery quiesced";
  }
  const auto& totals = session.totals();
  EXPECT_GE(totals.chunks_expected, totals.chunks_delivered);
  EXPECT_GT(totals.control_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndSubstrates, ProtocolProperties,
    testing::Values(
        Params{ProtoKind::kVdm, NetKind::kTransitStub, 1},
        Params{ProtoKind::kVdm, NetKind::kTransitStub, 2},
        Params{ProtoKind::kVdm, NetKind::kGeo, 3},
        Params{ProtoKind::kVdm, NetKind::kGeo, 4},
        Params{ProtoKind::kVdmRefine, NetKind::kTransitStub, 5},
        Params{ProtoKind::kVdmRefine, NetKind::kGeo, 6},
        Params{ProtoKind::kHmtp, NetKind::kTransitStub, 7},
        Params{ProtoKind::kHmtp, NetKind::kTransitStub, 8},
        Params{ProtoKind::kHmtp, NetKind::kGeo, 9},
        Params{ProtoKind::kRandom, NetKind::kTransitStub, 10},
        Params{ProtoKind::kRandom, NetKind::kGeo, 11},
        Params{ProtoKind::kHmtpFoster, NetKind::kTransitStub, 12},
        Params{ProtoKind::kHmtpFoster, NetKind::kGeo, 13},
        Params{ProtoKind::kBtp, NetKind::kTransitStub, 14},
        Params{ProtoKind::kBtp, NetKind::kGeo, 15}),
    params_name);

}  // namespace
}  // namespace vdm
