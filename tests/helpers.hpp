#pragma once

// Shared test harness: hand-crafted underlays with exactly known RTTs, and
// a bundled simulator + session so protocol behaviour can be asserted
// case by case against the paper's worked examples.

#include <cmath>
#include <memory>
#include <vector>

#include "net/matrix_underlay.hpp"
#include "overlay/metric.hpp"
#include "overlay/protocol.hpp"
#include "overlay/session.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace vdm::testutil {

/// Underlay where host i sits at position[i] on a line and
/// rtt(a, b) = |position[a] - position[b]| (one-way delay is half that).
/// This realizes the paper's 1-D directionality diagrams literally.
inline net::MatrixUnderlay line_underlay(const std::vector<double>& position) {
  const std::size_t n = position.size();
  std::vector<double> delay(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) delay[a * n + b] = std::abs(position[a] - position[b]) / 2.0;
    }
  }
  return net::MatrixUnderlay(n, std::move(delay));
}

/// Underlay from an explicit symmetric RTT matrix (upper triangle given as
/// rtt[a][b]); lets tests realize triples that no 1-D embedding can.
inline net::MatrixUnderlay rtt_underlay(const std::vector<std::vector<double>>& rtt) {
  const std::size_t n = rtt.size();
  std::vector<double> delay(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) delay[a * n + b] = rtt[a][b] / 2.0;
    }
  }
  return net::MatrixUnderlay(n, std::move(delay));
}

/// Simulator + session bundle with paranoid invariant checking enabled.
struct Harness {
  sim::Simulator sim;
  net::MatrixUnderlay underlay;
  overlay::DelayMetric metric;
  overlay::Protocol& protocol;
  overlay::Session session;

  Harness(net::MatrixUnderlay u, overlay::Protocol& p, int source_degree = 8,
          std::uint64_t seed = 1, double chunk_rate = 2.0)
      : underlay(std::move(u)), metric(0.0), protocol(p),
        session(sim, underlay, protocol, metric,
                make_params(source_degree, chunk_rate), util::Rng(seed)) {
    session.start();
  }

  static overlay::SessionParams make_params(int source_degree, double chunk_rate) {
    overlay::SessionParams sp;
    sp.source = 0;
    sp.source_degree_limit = source_degree;
    sp.chunk_rate = chunk_rate;
    sp.paranoid_checks = true;
    return sp;
  }

  /// Joins `h` now and returns its chosen parent.
  net::HostId join(net::HostId h, int degree_limit = 8) {
    session.join(h, degree_limit);
    return session.tree().member(h).parent;
  }

  net::HostId parent(net::HostId h) const { return session.tree().member(h).parent; }
};

}  // namespace vdm::testutil
