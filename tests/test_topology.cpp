#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/routing.hpp"
#include "topology/simple.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace vdm::topo {
namespace {

// ---------------------------------------------------------- simple shapes

TEST(Simple, LineShape) {
  const net::Graph g = make_line(5, 0.01);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_links(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.connected());
}

TEST(Simple, RingShape) {
  const net::Graph g = make_ring(6);
  EXPECT_EQ(g.num_links(), 6u);
  for (net::NodeId i = 0; i < 6; ++i) EXPECT_EQ(g.degree(i), 2u);
}

TEST(Simple, RingRequiresThreeNodes) {
  EXPECT_THROW(make_ring(2), util::InvariantError);
}

TEST(Simple, StarShape) {
  const net::Graph g = make_star(7);
  EXPECT_EQ(g.num_links(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (net::NodeId i = 1; i < 7; ++i) EXPECT_EQ(g.degree(i), 1u);
}

TEST(Simple, GridShape) {
  const net::Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // Edges: 3*3 horizontal + 2*4 vertical = 17.
  EXPECT_EQ(g.num_links(), 17u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Simple, CompleteShape) {
  const net::Graph g = make_complete(5);
  EXPECT_EQ(g.num_links(), 10u);
  for (net::NodeId i = 0; i < 5; ++i) EXPECT_EQ(g.degree(i), 4u);
}

// ---------------------------------------------------------- transit-stub

TEST(TransitStub, DefaultParamsMatchPaperScale) {
  const TransitStubParams p;
  EXPECT_EQ(p.num_routers(), 792u);  // the paper's GT-ITM topology size
}

TEST(TransitStub, GeneratesRequestedStructure) {
  util::Rng rng(1);
  TransitStubParams p;
  p.transit_domains = 3;
  p.routers_per_transit = 4;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub = 5;
  const TransitStubTopology t = make_transit_stub(p, rng);
  EXPECT_EQ(t.transit_routers.size(), 12u);
  EXPECT_EQ(t.stub_routers.size(), 12u * 2 * 5);
  EXPECT_EQ(t.graph.num_nodes(), p.num_routers());
  EXPECT_TRUE(t.graph.connected());
}

TEST(TransitStub, StubDomainIndexingConsistent) {
  util::Rng rng(2);
  TransitStubParams p;
  p.transit_domains = 2;
  p.routers_per_transit = 2;
  p.stub_domains_per_transit_router = 3;
  p.routers_per_stub = 4;
  const TransitStubTopology t = make_transit_stub(p, rng);
  ASSERT_EQ(t.stub_domain_of.size(), t.graph.num_nodes());
  for (const net::NodeId v : t.transit_routers) {
    EXPECT_EQ(t.stub_domain_of[v], ~0u);
  }
  std::uint32_t max_domain = 0;
  for (const net::NodeId v : t.stub_routers) {
    ASSERT_NE(t.stub_domain_of[v], ~0u);
    max_domain = std::max(max_domain, t.stub_domain_of[v]);
  }
  EXPECT_EQ(max_domain + 1, 2u * 2 * 3);  // total stub domains
}

TEST(TransitStub, DelayClassesRespectRanges) {
  util::Rng rng(3);
  TransitStubParams p;
  p.transit_domains = 2;
  p.routers_per_transit = 3;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub = 3;
  const TransitStubTopology t = make_transit_stub(p, rng);
  for (const net::Link& l : t.graph.links()) {
    EXPECT_GE(l.delay, p.stub_stub_delay_min);
    EXPECT_LE(l.delay, p.transit_transit_delay_max);
    EXPECT_DOUBLE_EQ(l.loss, 0.0);
  }
}

TEST(TransitStub, LossRangeApplied) {
  util::Rng rng(4);
  TransitStubParams p;
  p.transit_domains = 2;
  p.routers_per_transit = 2;
  p.stub_domains_per_transit_router = 1;
  p.routers_per_stub = 3;
  p.loss_min = 0.0;
  p.loss_max = 0.02;
  const TransitStubTopology t = make_transit_stub(p, rng);
  bool any_loss = false;
  for (const net::Link& l : t.graph.links()) {
    EXPECT_GE(l.loss, 0.0);
    EXPECT_LE(l.loss, 0.02);
    any_loss = any_loss || l.loss > 0.0;
  }
  EXPECT_TRUE(any_loss);
}

TEST(TransitStub, DeterministicForSameSeed) {
  TransitStubParams p;
  p.transit_domains = 2;
  p.routers_per_transit = 2;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub = 2;
  util::Rng r1(5), r2(5);
  const TransitStubTopology a = make_transit_stub(p, r1);
  const TransitStubTopology b = make_transit_stub(p, r2);
  ASSERT_EQ(a.graph.num_links(), b.graph.num_links());
  for (net::LinkId l = 0; l < a.graph.num_links(); ++l) {
    EXPECT_EQ(a.graph.link(l).a, b.graph.link(l).a);
    EXPECT_EQ(a.graph.link(l).b, b.graph.link(l).b);
    EXPECT_DOUBLE_EQ(a.graph.link(l).delay, b.graph.link(l).delay);
  }
}

TEST(TransitStub, AttachHostsCreatesAccessLinks) {
  util::Rng rng(6);
  TransitStubParams p;
  p.transit_domains = 2;
  p.routers_per_transit = 2;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub = 3;
  HostAttachment h;
  h.num_hosts = 10;
  const net::GraphUnderlay u = make_transit_stub_underlay(p, h, rng);
  EXPECT_EQ(u.num_hosts(), 10u);
  EXPECT_EQ(u.graph().num_nodes(), p.num_routers() + 10);
  // Every host hangs off exactly one access link.
  for (net::HostId host = 0; host < 10; ++host) {
    EXPECT_EQ(u.graph().degree(u.host_vertex(host)), 1u);
  }
}

TEST(TransitStub, HostPairsReachable) {
  util::Rng rng(7);
  TransitStubParams p;
  p.transit_domains = 2;
  p.routers_per_transit = 2;
  p.stub_domains_per_transit_router = 1;
  p.routers_per_stub = 2;
  HostAttachment h;
  h.num_hosts = 6;
  const net::GraphUnderlay u = make_transit_stub_underlay(p, h, rng);
  for (net::HostId a = 0; a < 6; ++a) {
    for (net::HostId b = 0; b < 6; ++b) {
      if (a == b) continue;
      EXPECT_GT(u.delay(a, b), 0.0);
      EXPECT_LT(u.delay(a, b), 1.0);  // finite, sane
    }
  }
}

// ---------------------------------------------------------------- Waxman

TEST(Waxman, ConnectedAndSized) {
  util::Rng rng(8);
  WaxmanParams p;
  p.num_routers = 60;
  const WaxmanTopology t = make_waxman(p, rng);
  EXPECT_EQ(t.graph.num_nodes(), 60u);
  EXPECT_EQ(t.coords.size(), 60u);
  EXPECT_TRUE(t.graph.connected());
}

TEST(Waxman, CoordsInUnitSquare) {
  util::Rng rng(9);
  WaxmanParams p;
  p.num_routers = 40;
  const WaxmanTopology t = make_waxman(p, rng);
  for (const auto& [x, y] : t.coords) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(Waxman, DelayProportionalToDistance) {
  util::Rng rng(10);
  WaxmanParams p;
  p.num_routers = 40;
  const WaxmanTopology t = make_waxman(p, rng);
  for (const net::Link& l : t.graph.links()) {
    const auto& ca = t.coords[l.a];
    const auto& cb = t.coords[l.b];
    const double d = std::hypot(ca.first - cb.first, ca.second - cb.second);
    EXPECT_NEAR(l.delay, std::max(p.min_delay, d * p.delay_per_unit), 1e-12);
  }
}

TEST(Waxman, HigherAlphaMeansMoreLinks) {
  WaxmanParams sparse, dense;
  sparse.num_routers = dense.num_routers = 80;
  sparse.alpha = 0.05;
  dense.alpha = 0.5;
  util::Rng r1(11), r2(11);
  const auto a = make_waxman(sparse, r1);
  const auto b = make_waxman(dense, r2);
  EXPECT_LT(a.graph.num_links(), b.graph.num_links());
}

TEST(Waxman, RejectsDegenerateParams) {
  util::Rng rng(12);
  WaxmanParams p;
  p.num_routers = 1;
  EXPECT_THROW(make_waxman(p, rng), util::InvariantError);
  p.num_routers = 10;
  p.alpha = 0.0;
  EXPECT_THROW(make_waxman(p, rng), util::InvariantError);
}

}  // namespace
}  // namespace vdm::topo
