// Integration tests: the paper's headline qualitative claims must hold on
// small, fast configurations. These are the "shape" checks that the bench
// harness reproduces at full scale.

#include <gtest/gtest.h>

#include "experiments/runner.hpp"

namespace vdm::experiments {
namespace {

RunConfig base_config() {
  RunConfig cfg;
  cfg.substrate = Substrate::kTransitStub;
  cfg.routers = 100;
  cfg.scenario.target_members = 24;
  cfg.scenario.join_phase = 300.0;
  cfg.scenario.total_time = 2000.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.08;
  cfg.session.chunk_rate = 1.0;
  cfg.seed = 17;
  return cfg;
}

constexpr std::size_t kSeeds = 6;

TEST(Integration, VdmBeatsHmtpOnStretchAndHopsOnGeoSubstrate) {
  // Figures 5.9/5.10's setting: PlanetLab-like latency space, 100 members,
  // fixed degree 4, noisy probes, 10 chunks/s.
  RunConfig vdm;
  vdm.substrate = Substrate::kGeoUs;
  vdm.scenario.target_members = 100;
  vdm.scenario.join_phase = 2000.0;
  vdm.scenario.total_time = 5000.0;
  vdm.scenario.churn_interval = 400.0;
  vdm.scenario.settle_time = 100.0;
  vdm.scenario.churn_rate = 0.05;
  vdm.scenario.degrees = overlay::DegreeSpec::uniform(4, 4);
  vdm.session.chunk_rate = 10.0;
  vdm.session.source_degree_limit = 4;
  vdm.probe_noise = 0.05;
  vdm.seed = 17;
  RunConfig hmtp = vdm;
  hmtp.protocol = Proto::kHmtp;
  const AggregateResult a = run_many(vdm, 10);
  const AggregateResult b = run_many(hmtp, 10);
  // Stretch: statistically neck-and-neck against the 30s-refining HMTP
  // (VDM wins in the paper; here the strong baseline keeps it within
  // noise) — assert VDM is no worse than 10%.
  EXPECT_LT(a.stretch.mean, b.stretch.mean * 1.10);
  // Hopcount: VDM's splices keep trees shallower (Figure 5.10's shape).
  EXPECT_LT(a.hopcount.mean, b.hopcount.mean * 1.10);
  // And it does so at a fraction of HMTP's control traffic.
  EXPECT_LT(a.overhead.mean * 5.0, b.overhead.mean);
}

TEST(Integration, VdmCompetitiveWithHmtpOnTransitStubStretch) {
  // On the router substrate the refining HMTP narrows the gap; VDM must
  // stay within ~20% without spending any refinement messages.
  RunConfig vdm = base_config();
  RunConfig hmtp = base_config();
  hmtp.protocol = Proto::kHmtp;
  const AggregateResult a = run_many(vdm, kSeeds);
  const AggregateResult b = run_many(hmtp, kSeeds);
  EXPECT_LT(a.stretch.mean, b.stretch.mean * 1.20);
}

TEST(Integration, VdmBeatsHmtpOnOverhead) {
  RunConfig vdm = base_config();
  RunConfig hmtp = base_config();
  hmtp.protocol = Proto::kHmtp;
  const AggregateResult a = run_many(vdm, kSeeds);
  const AggregateResult b = run_many(hmtp, kSeeds);
  // Figure 3.28 / 5.13: HMTP pays for periodic refinement messaging.
  EXPECT_LT(a.overhead.mean, b.overhead.mean);
}

TEST(Integration, VdmBeatsRandomOnStressAndUsage) {
  RunConfig vdm = base_config();
  RunConfig random = base_config();
  random.protocol = Proto::kRandom;
  const AggregateResult a = run_many(vdm, kSeeds);
  const AggregateResult b = run_many(random, kSeeds);
  EXPECT_LT(a.network_usage.mean, b.network_usage.mean);
  EXPECT_LT(a.stress.mean, b.stress.mean * 1.10);
}

TEST(Integration, LossMetricReducesLossAtStretchCost) {
  // Chapter 4's claim: VDM-L trades stretch for loss.
  RunConfig d = base_config();
  d.link_loss_max = 0.02;
  d.scenario.churn_rate = 0.0;  // isolate path loss from churn loss
  RunConfig l = d;
  l.metric = Metric::kLoss;
  const AggregateResult vdm_d = run_many(d, kSeeds);
  const AggregateResult vdm_l = run_many(l, kSeeds);
  EXPECT_LT(vdm_l.loss.mean, vdm_d.loss.mean);
  EXPECT_GE(vdm_l.stretch.mean, vdm_d.stretch.mean * 0.9);
}

TEST(Integration, RefinementImprovesStretch) {
  // Figure 5.28's shape: VDM-R's periodic refinement tightens the tree.
  RunConfig plain = base_config();
  RunConfig refined = base_config();
  refined.protocol = Proto::kVdmRefine;
  const AggregateResult a = run_many(plain, kSeeds);
  const AggregateResult b = run_many(refined, kSeeds);
  EXPECT_LE(b.stretch.mean, a.stretch.mean * 1.02);
  // ... at an overhead cost (Figure 5.30).
  EXPECT_GT(b.overhead.mean, a.overhead.mean);
}

TEST(Integration, TreeStaysNearMst) {
  // Figure 5.31's shape: VDM lands within ~2x of the oracle MST.
  RunConfig cfg = base_config();
  const AggregateResult a = run_many(cfg, kSeeds);
  EXPECT_GE(a.mst_ratio.mean, 1.0);
  EXPECT_LT(a.mst_ratio.mean, 2.5);
}

TEST(Integration, LossGrowsWithChurn) {
  // Figure 3.27's shape: more churn, more disconnection loss.
  RunConfig low = base_config();
  low.scenario.churn_rate = 0.01;
  RunConfig high = base_config();
  high.scenario.churn_rate = 0.20;
  const AggregateResult a = run_many(low, kSeeds);
  const AggregateResult b = run_many(high, kSeeds);
  EXPECT_LT(a.loss.mean, b.loss.mean);
}

TEST(Integration, StretchShrinksWithDegree) {
  // Figures 3.34 / 5.23: constrained degree forces deep trees. Average
  // degree 2 is the feasibility floor now that limits count the parent
  // link (a tree on N members has 2(N-1) link endpoints, ~2 per member);
  // all-limit-2 members force chains, the deepest legal shape.
  RunConfig narrow = base_config();
  narrow.scenario.degrees = overlay::DegreeSpec::average(2.0);
  RunConfig wide = base_config();
  wide.scenario.degrees = overlay::DegreeSpec::uniform(5, 8);
  const AggregateResult a = run_many(narrow, kSeeds);
  const AggregateResult b = run_many(wide, kSeeds);
  EXPECT_GT(a.hopcount.mean, b.hopcount.mean);
  EXPECT_GT(a.stretch.mean, b.stretch.mean);
}

TEST(Integration, StartupScalesLogarithmically) {
  // §3.2.3: join complexity is O(log N) — iterations, and thus startup
  // time, must grow far slower than membership.
  RunConfig small = base_config();
  small.scenario.target_members = 10;
  RunConfig large = base_config();
  large.scenario.target_members = 60;
  const AggregateResult a = run_many(small, 4);
  const AggregateResult b = run_many(large, 4);
  // 6x more members must cost far less than 6x the startup time.
  EXPECT_LT(b.startup_avg.mean, a.startup_avg.mean * 3.0);
}

TEST(Integration, GeoSubstrateShowsContinentalScaleStretch) {
  RunConfig cfg = base_config();
  cfg.substrate = Substrate::kGeoWorld;
  cfg.probe_noise = 0.05;
  const AggregateResult a = run_many(cfg, 4);
  EXPECT_GT(a.stretch.mean, 0.9);
  EXPECT_LT(a.stretch.mean, 5.0);
  EXPECT_GT(a.startup_avg.mean, 0.0);
}

}  // namespace
}  // namespace vdm::experiments
