#include "baselines/hmtp_protocol.hpp"

#include <gtest/gtest.h>

#include "baselines/random_protocol.hpp"
#include "helpers.hpp"

namespace vdm::baselines {
namespace {

using testutil::Harness;
using testutil::line_underlay;

TEST(HmtpJoin, FirstNodeAttachesToSource) {
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0}), hmtp);
  EXPECT_EQ(h.join(1), 0u);
}

TEST(HmtpJoin, DescendsToCloserChild) {
  // S=0, C=10; N=12 is closer to C -> descends and attaches under C.
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0, 12.0}), hmtp);
  h.join(1);
  EXPECT_EQ(h.join(2), 1u);
}

TEST(HmtpJoin, StopsWhenCurrentNodeClosest) {
  // N=4 is closer to S than to C=10 -> attaches to S.
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0, 4.0}), hmtp);
  h.join(1);
  EXPECT_EQ(h.join(2), 0u);
}

TEST(HmtpJoin, MissesTheSpliceVdmMakes) {
  // The paper's Scenario I (Figure 3.21): N between P and C. HMTP attaches
  // N to P and leaves C where it was — it has no Case II. (VDM splices
  // immediately; see VdmJoin.CaseIISplicesBetweenSourceAndChild.)
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0, 5.0}), hmtp);
  h.join(1);
  EXPECT_EQ(h.join(2), 0u);
  EXPECT_EQ(h.parent(1), 0u);  // C still directly under S
}

TEST(HmtpJoin, RefinementRepairsTheMissedSplice) {
  // ...and HMTP's periodic refinement is what eventually finds the better
  // parent ("C finds N by sending a refinement message", §3.5).
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0, 5.0}), hmtp);
  h.join(1);
  h.join(2);
  ASSERT_EQ(h.parent(1), 0u);
  const overlay::OpStats stats = h.session.refine(1);
  EXPECT_TRUE(stats.parent_changed);
  EXPECT_EQ(h.parent(1), 2u);  // C now under N
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(HmtpJoin, FullParentFallsBackToClosestFreeChild) {
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0, 1.0}), hmtp, /*source_degree=*/1);
  h.join(1);
  // N=1 prefers S, but S is saturated -> attaches to the only free child.
  EXPECT_EQ(h.join(2), 1u);
}

TEST(HmtpJoin, RefinementHysteresisBlocksMarginalSwitches) {
  HmtpConfig cfg;
  cfg.switch_margin = 0.3;  // demand a 30% improvement
  HmtpProtocol hmtp(cfg);
  Harness h(line_underlay({0.0, 10.0, 4.0}), hmtp);
  h.join(1);
  h.join(2);  // N=4 stops at S (4 < 6)
  // Refining C (=1): switching to N costs 6 vs the current 10 — a 40%
  // improvement, above the margin, so it switches.
  EXPECT_TRUE(h.session.refine(1).parent_changed);
  EXPECT_EQ(h.parent(1), 2u);

  HmtpProtocol hmtp2(cfg);
  Harness h2(line_underlay({0.0, 10.0, 3.0}), hmtp2);
  h2.join(1);
  h2.join(2);  // N=3 stops at S (3 < 7)
  // Switching to N would cost 7 vs 10 — exactly the 30% margin, blocked.
  EXPECT_FALSE(h2.session.refine(1).parent_changed);
  EXPECT_EQ(h2.parent(1), 0u);
}

TEST(HmtpJoin, PeriodicRefinementEnabledByDefault) {
  HmtpProtocol hmtp;
  EXPECT_TRUE(hmtp.wants_refinement());
  EXPECT_DOUBLE_EQ(hmtp.refinement_period(), 30.0);  // the paper's period
  Harness h(line_underlay({0.0, 10.0, 5.0}), hmtp);
  h.join(1);
  h.join(2);
  h.sim.run_until(100.0);
  EXPECT_GT(h.session.totals().refines_run, 0u);
  // The missed splice self-repairs within a few periods.
  EXPECT_EQ(h.parent(1), 2u);
}

TEST(HmtpJoin, BuildsChainOnLineJoinOrder) {
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), hmtp);
  for (net::HostId n = 1; n <= 3; ++n) EXPECT_EQ(h.join(n), n - 1);
}

TEST(HmtpJoin, ReconnectionUsesGrandparent) {
  HmtpProtocol hmtp;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), hmtp);
  for (net::HostId n = 1; n <= 3; ++n) h.join(n);
  h.session.leave(2);
  EXPECT_EQ(h.parent(3), 1u);  // reconnected from grandparent 1
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(RandomProtocol, AttachesSomewhereValid) {
  RandomProtocol random;
  Harness h(testutil::line_underlay({0.0, 10.0, 20.0, 30.0, 40.0}), random);
  for (net::HostId n = 1; n <= 4; ++n) {
    EXPECT_NE(h.join(n, 2), net::kInvalidHost);
  }
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(RandomProtocol, RespectsDegreeLimits) {
  // Limit 2 = parent link + one child, so the only legal shape off a
  // degree-1 source is a chain; the random walk must keep descending past
  // each saturated node to the tail.
  RandomProtocol random;
  Harness h(testutil::line_underlay({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}),
            random, /*source_degree=*/1);
  for (net::HostId n = 1; n <= 6; ++n) h.join(n, 2);
  for (net::HostId n = 0; n <= 6; ++n) {
    EXPECT_LE(h.session.tree().member(n).children.size(), 1u);
  }
  EXPECT_NO_THROW(h.session.tree().validate());
}

}  // namespace
}  // namespace vdm::baselines
