// Thread-safety of util::log under TSan (the CI thread-sanitize job runs
// the LogThreads suite): concurrent writers, level changes and sink swaps
// must neither race nor interleave within a line.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace vdm::util {
namespace {

/// Restores global log state on scope exit so tests never leak a sink or a
/// lowered level into the rest of the suite.
struct LogStateGuard {
  ~LogStateGuard() {
    set_log_sink({});
    set_log_level(LogLevel::kWarn);
  }
};

TEST(LogThreads, ConcurrentWritersKeepLinesIntact) {
  LogStateGuard guard;
  set_log_level(LogLevel::kInfo);

  // Sink appends into a private vector; log_line holds the log mutex while
  // calling it, so no extra synchronization here — that absence is exactly
  // what TSan verifies.
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view message) {
    lines.emplace_back(message);
  });

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        const std::string payload =
            "writer=" + std::to_string(t) + " line=" + std::to_string(i) + " end";
        log_line(LogLevel::kInfo, payload);
        VDM_INFO() << "writer=" << t << " line=" << i << " end";
      }
    });
  }
  for (std::thread& w : workers) w.join();

  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(2 * kThreads * kLinesPerThread));
  // Every captured line must be exactly one writer's payload — a torn or
  // interleaved write would break the "writer=... end" shape.
  std::vector<int> per_thread(kThreads, 0);
  for (const std::string& line : lines) {
    ASSERT_EQ(line.rfind("writer=", 0), 0u) << line;
    ASSERT_EQ(line.rfind(" end"), line.size() - 4) << line;
    const int writer = std::stoi(line.substr(7, line.find(' ') - 7));
    ASSERT_GE(writer, 0);
    ASSERT_LT(writer, kThreads);
    ++per_thread[writer];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], 2 * kLinesPerThread) << "writer " << t;
  }
}

TEST(LogThreads, LevelAndSinkSwapsDoNotRaceWriters) {
  LogStateGuard guard;
  std::atomic<std::uint64_t> sink_a_calls{0};
  std::atomic<std::uint64_t> sink_b_calls{0};
  set_log_level(LogLevel::kDebug);
  set_log_sink([&sink_a_calls](LogLevel, std::string_view) {
    sink_a_calls.fetch_add(1, std::memory_order_relaxed);
  });

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        log_line(LogLevel::kInfo, "steady message");
      }
    });
  }
  // Churn the level and the sink while the writers hammer.
  for (int round = 0; round < 200; ++round) {
    set_log_level(round % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
    if (round % 3 == 0) {
      set_log_sink([&sink_b_calls](LogLevel, std::string_view) {
        sink_b_calls.fetch_add(1, std::memory_order_relaxed);
      });
    } else if (round % 3 == 1) {
      set_log_sink([&sink_a_calls](LogLevel, std::string_view) {
        sink_a_calls.fetch_add(1, std::memory_order_relaxed);
      });
    } else {
      set_log_sink([](LogLevel, std::string_view) {});  // discard
    }
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  // No counts to pin (scheduling-dependent); the assertion is TSan finding
  // no race and the process not crashing on a sink swapped mid-call.
  SUCCEED() << sink_a_calls.load() << " / " << sink_b_calls.load();
}

TEST(LogThreads, DisabledLevelSkipsSink) {
  LogStateGuard guard;
  std::atomic<int> calls{0};
  set_log_sink([&calls](LogLevel, std::string_view) { ++calls; });
  set_log_level(LogLevel::kWarn);
  log_line(LogLevel::kDebug, "muted");
  log_line(LogLevel::kInfo, "muted");
  EXPECT_EQ(calls.load(), 0);
  log_line(LogLevel::kWarn, "heard");
  EXPECT_EQ(calls.load(), 1);
}

}  // namespace
}  // namespace vdm::util
