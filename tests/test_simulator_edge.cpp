// Edge cases of the slab event engine (cancel semantics, slot reuse,
// in-callback re-entrancy) plus the cross-engine determinism regression:
// whole-run golden scalars that pin the bit-determinism contract across
// event-engine rewrites.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "experiments/runner.hpp"

namespace vdm::sim {
namespace {

TEST(SimulatorEdge, CancelInsideCallbackSuppressesLaterEvent) {
  Simulator s;
  std::vector<int> order;
  EventId later = s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.cancel(later);
  });
  // Same-timestamp sibling scheduled after its canceller: FIFO runs the
  // canceller first, so the sibling must never fire either.
  EventId sibling = kInvalidEvent;
  s.schedule_at(1.0, [&] { s.cancel(sibling); });
  sibling = s.schedule_at(1.0, [&] { order.push_back(10); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SimulatorEdge, CancelAfterFireIsNoOp) {
  Simulator s;
  int fired = 0;
  EventId id = s.schedule_at(1.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.cancel(id);          // already fired: ignored
  s.cancel(id);          // twice: still ignored
  s.cancel(kInvalidEvent);
  EXPECT_EQ(s.pending(), 0u);

  // The fired event's slot is back on the free list; the next schedule
  // reuses it under a new generation. The stale id must not cancel it.
  EventId reuse = s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_NE(reuse, id);
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorEdge, CancelInsideOwnCallbackDoesNotBreakEngine) {
  Simulator s;
  int fired = 0;
  EventId self = kInvalidEvent;
  self = s.schedule_at(1.0, [&] {
    ++fired;
    s.cancel(self);  // cancelling the currently-firing event: benign
  });
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SimulatorEdge, PeriodicStopFromInsideOwnTick) {
  Simulator s;
  int ticks = 0;
  std::unique_ptr<Periodic> timer;
  timer = std::make_unique<Periodic>(s, 1.0, [&] {
    if (++ticks == 3) timer->stop();
  });
  s.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(timer->running());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
  timer->stop();  // idempotent after self-stop
}

TEST(SimulatorEdge, PendingIsAccurateUnderCancelChurn) {
  Simulator s;
  constexpr int kEvents = 1000;
  int fired = 0;
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    // Interleaved timestamps so cancellation hits every region of the heap.
    const Time t = 1.0 + static_cast<Time>((i * 7919) % 101);
    ids.push_back(s.schedule_at(t, [&] { ++fired; }));
  }
  EXPECT_EQ(s.pending(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending(), static_cast<std::size_t>(kEvents) / 2);
  for (int i = 0; i < kEvents; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending(), static_cast<std::size_t>(kEvents) / 2);  // no-ops
  s.run();
  EXPECT_EQ(fired, kEvents / 2);
  EXPECT_EQ(s.pending(), 0u);
}

// ------------------------------------------------------------- determinism
// Same-seed golden regression: run_once must produce these exact scalars.
// The values were recorded from the pre-slab binary-heap engine; the slab
// engine (and any future engine) must reproduce them bit for bit, because
// the determinism contract — equal-timestamp events fire in scheduling
// order, rng draw order unchanged — fixes every arithmetic operation of a
// run. Hexfloat literals make the comparison exact, not within-epsilon.

TEST(SimulatorEdge, RunOnceGoldenTransitStubVdm) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = 48;
  cfg.link_loss_max = 0.02;
  cfg.seed = 7;
  const experiments::RunResult r = experiments::run_once(cfg);

  EXPECT_EQ(r.stress, 0x1.fcf8f46985591p+0);
  EXPECT_EQ(r.stress_max, 0x1.650d79435e50dp+2);
  EXPECT_EQ(r.stretch, 0x1.1555c50e2bc1ap+1);
  EXPECT_EQ(r.stretch_leaf, 0x1.2a400d3efa562p+1);
  EXPECT_EQ(r.stretch_max, 0x1.a50f776acf428p+1);
  EXPECT_EQ(r.stretch_min, 0x1p+0);
  EXPECT_EQ(r.hopcount, 0x1.9035e50d79435p+2);
  EXPECT_EQ(r.hop_leaf, 0x1.cc42cf5b92b51p+2);
  EXPECT_EQ(r.hop_max, 0x1.6d79435e50d79p+3);
  EXPECT_EQ(r.loss, 0x1.1914803009a11p-2);
  EXPECT_EQ(r.overhead, 0x1.e215a5dca34f3p-9);
  EXPECT_EQ(r.overhead_per_chunk, 0x1.158ed2308158ep-3);
  EXPECT_EQ(r.network_usage, 0x1.9ffc85eea1505p+1);
  EXPECT_EQ(r.startup_avg, 0x1.17eff506a8747p+1);
  EXPECT_EQ(r.startup_max, 0x1.664d7696f627ap+2);
  EXPECT_EQ(r.reconnect_avg, 0x1.79eb68f01f40fp-1);
  EXPECT_EQ(r.reconnect_max, 0x1.011a3fae87488p+1);
  EXPECT_EQ(r.mst_ratio, 0x1.d3963249efe53p+0);
  EXPECT_EQ(r.final_members, 49u);
}

TEST(SimulatorEdge, RunOnceGoldenGeoVdmRefine) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kGeoUs;
  cfg.protocol = experiments::Proto::kVdmRefine;
  cfg.scenario.target_members = 32;
  cfg.seed = 11;
  const experiments::RunResult r = experiments::run_once(cfg);

  EXPECT_EQ(r.stress, 0x1p+0);
  EXPECT_EQ(r.stress_max, 0x1p+0);
  EXPECT_EQ(r.stretch, 0x1.144ee97108c5fp+0);
  EXPECT_EQ(r.stretch_leaf, 0x1.2002cee7f0584p+0);
  EXPECT_EQ(r.stretch_max, 0x1.a9aabd69dbcdp+0);
  EXPECT_EQ(r.stretch_min, 0x1.61bc39046144ap-1);
  EXPECT_EQ(r.hopcount, 0x1.84p+1);
  EXPECT_EQ(r.hop_leaf, 0x1.de6064d5f49acp+1);
  EXPECT_EQ(r.hop_max, 0x1.7286bca1af287p+2);
  EXPECT_EQ(r.loss, 0x1.8d29935eb1794p-14);
  EXPECT_EQ(r.overhead, 0x1.2659bcd8f8a33p-4);
  EXPECT_EQ(r.overhead_per_chunk, 0x1.26cbb8dbe3f98p+1);
  EXPECT_EQ(r.network_usage, 0x1.77ec1dccd18e4p-3);
  EXPECT_EQ(r.startup_avg, 0x1.a06a02bf9365ap-3);
  EXPECT_EQ(r.startup_max, 0x1.3e60b84d57a96p-1);
  EXPECT_EQ(r.reconnect_avg, 0x1.3bdd9aa9ee546p-4);
  EXPECT_EQ(r.reconnect_max, 0x1.223aac95f5648p-2);
  EXPECT_EQ(r.mst_ratio, 0x1.f4a6e95587e9ap+0);
  EXPECT_EQ(r.final_members, 33u);
}

// Two engines in one process, interleaved, must not perturb each other
// (the slab and its rng-free heap are per-instance state).
TEST(SimulatorEdge, IndependentSimulatorsDoNotInterfere) {
  Simulator a;
  Simulator b;
  int fa = 0;
  int fb = 0;
  a.schedule_at(1.0, [&] { ++fa; });
  b.schedule_at(1.0, [&] { ++fb; });
  a.schedule_at(2.0, [&] { ++fa; });
  EXPECT_TRUE(a.step());
  EXPECT_TRUE(b.step());
  EXPECT_TRUE(a.step());
  EXPECT_EQ(fa, 2);
  EXPECT_EQ(fb, 1);
  EXPECT_FALSE(b.step());
}

}  // namespace
}  // namespace vdm::sim
