// Edge cases of the slab event engine (cancel semantics, slot reuse,
// in-callback re-entrancy) plus the cross-engine determinism regression:
// whole-run golden scalars that pin the bit-determinism contract across
// event-engine rewrites.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "experiments/runner.hpp"

namespace vdm::sim {
namespace {

TEST(SimulatorEdge, CancelInsideCallbackSuppressesLaterEvent) {
  Simulator s;
  std::vector<int> order;
  EventId later = s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.cancel(later);
  });
  // Same-timestamp sibling scheduled after its canceller: FIFO runs the
  // canceller first, so the sibling must never fire either.
  EventId sibling = kInvalidEvent;
  s.schedule_at(1.0, [&] { s.cancel(sibling); });
  sibling = s.schedule_at(1.0, [&] { order.push_back(10); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SimulatorEdge, CancelAfterFireIsNoOp) {
  Simulator s;
  int fired = 0;
  EventId id = s.schedule_at(1.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.cancel(id);          // already fired: ignored
  s.cancel(id);          // twice: still ignored
  s.cancel(kInvalidEvent);
  EXPECT_EQ(s.pending(), 0u);

  // The fired event's slot is back on the free list; the next schedule
  // reuses it under a new generation. The stale id must not cancel it.
  EventId reuse = s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_NE(reuse, id);
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorEdge, CancelInsideOwnCallbackDoesNotBreakEngine) {
  Simulator s;
  int fired = 0;
  EventId self = kInvalidEvent;
  self = s.schedule_at(1.0, [&] {
    ++fired;
    s.cancel(self);  // cancelling the currently-firing event: benign
  });
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SimulatorEdge, PeriodicStopFromInsideOwnTick) {
  Simulator s;
  int ticks = 0;
  std::unique_ptr<Periodic> timer;
  timer = std::make_unique<Periodic>(s, 1.0, [&] {
    if (++ticks == 3) timer->stop();
  });
  s.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(timer->running());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
  timer->stop();  // idempotent after self-stop
}

TEST(SimulatorEdge, PendingIsAccurateUnderCancelChurn) {
  Simulator s;
  constexpr int kEvents = 1000;
  int fired = 0;
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    // Interleaved timestamps so cancellation hits every region of the heap.
    const Time t = 1.0 + static_cast<Time>((i * 7919) % 101);
    ids.push_back(s.schedule_at(t, [&] { ++fired; }));
  }
  EXPECT_EQ(s.pending(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending(), static_cast<std::size_t>(kEvents) / 2);
  for (int i = 0; i < kEvents; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending(), static_cast<std::size_t>(kEvents) / 2);  // no-ops
  s.run();
  EXPECT_EQ(fired, kEvents / 2);
  EXPECT_EQ(s.pending(), 0u);
}

// ------------------------------------------------------------- determinism
// Same-seed golden regression: run_once must produce these exact scalars.
// Any future engine must reproduce them bit for bit, because the
// determinism contract — equal-timestamp events fire in scheduling order,
// rng draw order unchanged — fixes every arithmetic operation of a run.
// Hexfloat literals make the comparison exact, not within-epsilon. The
// values were re-recorded when degree accounting started counting the
// parent link (children + parent <= limit), which legitimately shifts
// every tree shape; with all fault knobs at their zero defaults these
// runs draw nothing from the fault paths, so the scalars also pin the
// "failure injection off = bit-identical" contract.

TEST(SimulatorEdge, RunOnceGoldenTransitStubVdm) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = 48;
  cfg.link_loss_max = 0.02;
  cfg.seed = 7;
  const experiments::RunResult r = experiments::run_once(cfg);

  EXPECT_EQ(r.stress, 0x1.077b1816a823ap+1);
  EXPECT_EQ(r.stress_max, 0x1.b286bca1af287p+2);
  EXPECT_EQ(r.stretch, 0x1.8118085ef0284p+1);
  EXPECT_EQ(r.stretch_leaf, 0x1.c0bd695f7988fp+1);
  EXPECT_EQ(r.stretch_max, 0x1.92342dcc15c43p+2);
  EXPECT_EQ(r.stretch_min, 0x1p+0);
  EXPECT_EQ(r.hopcount, 0x1.f06bca1af286ap+2);
  EXPECT_EQ(r.hop_leaf, 0x1.25a1dd6ece8a7p+3);
  EXPECT_EQ(r.hop_max, 0x1.ad79435e50d79p+3);
  EXPECT_EQ(r.loss, 0x1.4b2d262f66da6p-2);
  EXPECT_EQ(r.overhead, 0x1.14e09323cd18bp-8);
  EXPECT_EQ(r.overhead_per_chunk, 0x1.26216a2c31954p-3);
  EXPECT_EQ(r.network_usage, 0x1.d75deab632bd4p+1);
  EXPECT_EQ(r.startup_avg, 0x1.363f23d3646f8p+1);
  EXPECT_EQ(r.startup_max, 0x1.82dcfd29f8c6cp+2);
  EXPECT_EQ(r.reconnect_avg, 0x1.9ca6b8c1fde1ep-1);
  EXPECT_EQ(r.reconnect_max, 0x1.27e0791b29ce9p+1);
  EXPECT_EQ(r.mst_ratio, 0x1.232ead7253f08p+1);
  EXPECT_EQ(r.final_members, 49u);
}

TEST(SimulatorEdge, RunOnceGoldenGeoVdmRefine) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kGeoUs;
  cfg.protocol = experiments::Proto::kVdmRefine;
  cfg.scenario.target_members = 32;
  cfg.seed = 11;
  const experiments::RunResult r = experiments::run_once(cfg);

  EXPECT_EQ(r.stress, 0x1p+0);
  EXPECT_EQ(r.stress_max, 0x1p+0);
  EXPECT_EQ(r.stretch, 0x1.2b7d4d1a81953p+0);
  EXPECT_EQ(r.stretch_leaf, 0x1.4aafce7c8acc5p+0);
  EXPECT_EQ(r.stretch_max, 0x1.f68eea3f52a76p+0);
  EXPECT_EQ(r.stretch_min, 0x1.63375ed88fe23p-1);
  EXPECT_EQ(r.hopcount, 0x1.b0a1af286bca2p+1);
  EXPECT_EQ(r.hop_leaf, 0x1.0ec065981c435p+2);
  EXPECT_EQ(r.hop_max, 0x1.a1af286bca1afp+2);
  EXPECT_EQ(r.loss, 0x1.cb1582266ap-14);
  EXPECT_EQ(r.overhead, 0x1.30bd58dcd8242p-4);
  EXPECT_EQ(r.overhead_per_chunk, 0x1.312ff76078b96p+1);
  EXPECT_EQ(r.network_usage, 0x1.ad0920c6b958p-3);
  EXPECT_EQ(r.startup_avg, 0x1.b13740ac3ed76p-3);
  EXPECT_EQ(r.startup_max, 0x1.1413ee0d8c058p-1);
  EXPECT_EQ(r.reconnect_avg, 0x1.87fac6e2dde79p-4);
  EXPECT_EQ(r.reconnect_max, 0x1.14bb96507597p-1);
  EXPECT_EQ(r.mst_ratio, 0x1.c6a58ba84e4c2p+0);
  EXPECT_EQ(r.final_members, 33u);
}

// Two engines in one process, interleaved, must not perturb each other
// (the slab and its rng-free heap are per-instance state).
TEST(SimulatorEdge, IndependentSimulatorsDoNotInterfere) {
  Simulator a;
  Simulator b;
  int fa = 0;
  int fb = 0;
  a.schedule_at(1.0, [&] { ++fa; });
  b.schedule_at(1.0, [&] { ++fb; });
  a.schedule_at(2.0, [&] { ++fa; });
  EXPECT_TRUE(a.step());
  EXPECT_TRUE(b.step());
  EXPECT_TRUE(a.step());
  EXPECT_EQ(fa, 2);
  EXPECT_EQ(fb, 1);
  EXPECT_FALSE(b.step());
}

}  // namespace
}  // namespace vdm::sim
