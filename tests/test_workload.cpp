#include "overlay/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/runner.hpp"
#include "testbed/scenario_file.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace vdm::overlay {
namespace {

using K = WorkloadEvent::Kind;

ScenarioParams small_scenario() {
  ScenarioParams p;
  p.target_members = 40;
  p.join_phase = 500.0;
  p.total_time = 8000.0;
  p.churn_interval = 250.0;
  p.settle_time = 50.0;
  return p;
}

WorkloadParams poisson(double mean_session = 1500.0) {
  WorkloadParams w;
  w.kind = WorkloadKind::kPoisson;
  w.mean_session = mean_session;
  return w;
}

/// Walks the event list as the driver would and returns the member count
/// at every measurement-grid instant of `p`.
std::vector<std::size_t> membership_at_grid(
    const ScenarioParams& p, const std::vector<WorkloadEvent>& events) {
  std::vector<sim::Time> grid{p.join_phase + p.settle_time};
  for (std::size_t i = 0;; ++i) {
    const sim::Time slot =
        grid.front() + static_cast<double>(i) * p.churn_interval;
    if (!(slot + p.churn_interval <= p.total_time)) break;
    grid.push_back(slot + p.churn_interval);
  }
  std::vector<std::size_t> members;
  std::size_t alive = 0, next = 0;
  for (const sim::Time t : grid) {
    while (next < events.size() && events[next].at <= t) {
      alive += events[next].kind == K::kJoin ? 1 : std::size_t(-1);
      ++next;
    }
    members.push_back(alive);
  }
  return members;
}

// ----------------------------------------------------------- generator

TEST(WorkloadGenerator, EventsSortedAndBalanced) {
  std::vector<WorkloadEvent> events;
  util::Rng rng(1);
  const ScenarioParams p = small_scenario();
  generate_workload(p, poisson(), 200, 0, rng, events);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const WorkloadEvent& a, const WorkloadEvent& b) { return a.at < b.at; }));
  std::size_t joins = 0, departures = 0;
  for (const WorkloadEvent& ev : events) {
    EXPECT_LE(ev.at, p.total_time);
    EXPECT_LT(ev.host, 200u);
    EXPECT_NE(ev.host, 0u);  // the source never appears in a workload
    if (ev.kind == K::kJoin) {
      EXPECT_GE(ev.degree, 1);
      ++joins;
    } else {
      ++departures;
    }
  }
  // Every departure belongs to an earlier join; some members outlive the run.
  EXPECT_GE(joins, departures);
  EXPECT_GE(joins, p.target_members);
}

TEST(WorkloadGenerator, PoissonHoversAroundTarget) {
  std::vector<WorkloadEvent> events;
  util::Rng rng(2);
  const ScenarioParams p = small_scenario();
  generate_workload(p, poisson(), 400, 0, rng, events);
  const std::vector<std::size_t> members = membership_at_grid(p, events);
  ASSERT_GT(members.size(), 10u);
  // Little's law pins the steady state at target_members; allow wide
  // stochastic slack but reject drift to half or double the target.
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_GT(members[i], p.target_members / 2) << "at grid point " << i;
    EXPECT_LT(members[i], p.target_members * 2) << "at grid point " << i;
  }
}

TEST(WorkloadGenerator, DiurnalWaveModulatesArrivals) {
  std::vector<WorkloadEvent> events;
  util::Rng rng(3);
  ScenarioParams p = small_scenario();
  p.total_time = 20000.0;
  WorkloadParams w;
  w.kind = WorkloadKind::kDiurnal;
  w.mean_session = 1500.0;
  w.diurnal_period = 20000.0 - p.join_phase;  // one full wave after joining
  w.diurnal_amplitude = 1.0;
  generate_workload(p, w, 400, 0, rng, events);
  // Arrival counts over the crest half vs the trough half of the sine.
  std::size_t crest = 0, trough = 0;
  const double half = p.join_phase + w.diurnal_period / 2.0;
  for (const WorkloadEvent& ev : events) {
    if (ev.kind != K::kJoin || ev.at <= p.join_phase) continue;
    (ev.at < half ? crest : trough) += 1;
  }
  ASSERT_GT(crest + trough, 50u);
  EXPECT_GT(crest, trough * 2);
}

TEST(WorkloadGenerator, CrashFractionProducesCrashes) {
  std::vector<WorkloadEvent> events;
  util::Rng rng(4);
  ScenarioParams p = small_scenario();
  p.crash_fraction = 1.0;
  generate_workload(p, poisson(), 400, 0, rng, events);
  std::size_t leaves = 0, crashes = 0;
  for (const WorkloadEvent& ev : events) {
    leaves += ev.kind == K::kLeave;
    crashes += ev.kind == K::kCrash;
  }
  EXPECT_EQ(leaves, 0u);
  EXPECT_GT(crashes, 0u);
}

TEST(WorkloadGenerator, FlashCrowdJoinsAtOneInstant) {
  std::vector<WorkloadEvent> events;
  util::Rng rng(5);
  ScenarioParams p = small_scenario();
  p.flash_count = 25;
  p.flash_at = 300.0;
  generate_workload(p, poisson(), 400, 0, rng, events);
  std::size_t flash = 0;
  for (const WorkloadEvent& ev : events) {
    if (ev.at == 300.0 && ev.kind == K::kJoin) ++flash;
  }
  EXPECT_GE(flash, 25u);
}

TEST(WorkloadGenerator, SameSeedSameList) {
  const ScenarioParams p = small_scenario();
  std::vector<WorkloadEvent> a, b;
  util::Rng ra(7), rb(7);
  generate_workload(p, poisson(), 300, 0, ra, a);
  generate_workload(p, poisson(), 300, 0, rb, b);
  EXPECT_EQ(a, b);
}

TEST(WorkloadGenerator, RejectsBadParameters) {
  std::vector<WorkloadEvent> out;
  util::Rng rng(8);
  const ScenarioParams p = small_scenario();
  WorkloadParams w = poisson();
  w.kind = WorkloadKind::kSlots;
  EXPECT_THROW(generate_workload(p, w, 200, 0, rng, out),
               util::InvariantError);
  w = poisson(0.0);
  EXPECT_THROW(generate_workload(p, w, 200, 0, rng, out),
               util::InvariantError);
  w = poisson();
  w.kind = WorkloadKind::kPareto;
  w.pareto_alpha = 1.0;  // mean session length would not exist
  EXPECT_THROW(generate_workload(p, w, 200, 0, rng, out),
               util::InvariantError);
}

// ----------------------------------------------------------- trace IO

TEST(WorkloadTrace, RoundTripIsExact) {
  std::vector<WorkloadEvent> events;
  util::Rng rng(9);
  generate_workload(small_scenario(), poisson(), 300, 0, rng, events);
  std::ostringstream os;
  write_trace(os, events);
  std::vector<WorkloadEvent> back;
  parse_trace(os.str(), back);
  // Full-precision doubles round-trip bitwise, so the lists are equal —
  // the property the bit-identical replay guarantee rests on.
  EXPECT_EQ(events, back);
}

TEST(WorkloadTrace, ParserAcceptsCommasSpacesAndComments) {
  std::vector<WorkloadEvent> out;
  parse_trace(std::string("# header comment\n"
                          "10.5,join,3,5\n"
                          "20 join 4\n"
                          "  \n"
                          "30,leave,3\n"
                          "40 crash 4\n"
                          "99 terminate 0\n"),
              out);
  const std::vector<WorkloadEvent> expected{
      {10.5, K::kJoin, 3, 5},
      {20.0, K::kJoin, 4, 4},  // degree defaults to 4
      {30.0, K::kLeave, 3, 4},
      {40.0, K::kCrash, 4, 4},
  };
  EXPECT_EQ(out, expected);
}

TEST(WorkloadTrace, ParserRejectsMalformedWithLineNumber) {
  std::vector<WorkloadEvent> out;
  const auto expect_throw_with = [&](const std::string& text,
                                     const std::string& needle) {
    try {
      parse_trace(text, out);
      FAIL() << "expected InvariantError mentioning: " << needle;
    } catch (const util::InvariantError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_throw_with("10,hop,3\n", "line 1");
  expect_throw_with("# ok\n10,join\n", "line 2");
  expect_throw_with("10,flash,50\n", "flash");
}

TEST(WorkloadTrace, FileRoundTrip) {
  std::vector<WorkloadEvent> events;
  util::Rng rng(10);
  generate_workload(small_scenario(), poisson(), 300, 0, rng, events);
  const std::string path = testing::TempDir() + "vdm_workload_trace.csv";
  write_trace_file(path, events);
  std::vector<WorkloadEvent> back;
  load_trace_file(path, back);
  EXPECT_EQ(events, back);
  EXPECT_THROW(load_trace_file(path + ".missing", back), util::InvariantError);
}

TEST(WorkloadTrace, TestbedScenarioFileLoadsCsvTraces) {
  // The testbed scenario-file layer accepts the CSV trace format unchanged.
  const testbed::Scenario s = testbed::parse_scenario(
      "# vdm workload trace: t,join|leave|crash,host[,degree]\n"
      "10,join,3,5\n"
      "30,leave,3\n");
  ASSERT_GE(s.events.size(), 2u);
  EXPECT_DOUBLE_EQ(s.events[0].at, 10.0);
  EXPECT_EQ(s.events[0].node, 3u);
  EXPECT_EQ(s.events[0].action, testbed::ScenarioEvent::Action::kJoin);
  EXPECT_EQ(s.events[0].degree_limit, 5);
  EXPECT_EQ(s.events[1].action, testbed::ScenarioEvent::Action::kLeave);
}

TEST(WorkloadKindFlag, ParsesAllSpellings) {
  WorkloadParams w;
  EXPECT_TRUE(parse_workload_kind("slots", w));
  EXPECT_EQ(w.kind, WorkloadKind::kSlots);
  EXPECT_TRUE(parse_workload_kind("poisson", w));
  EXPECT_EQ(w.kind, WorkloadKind::kPoisson);
  EXPECT_TRUE(parse_workload_kind("diurnal", w));
  EXPECT_TRUE(parse_workload_kind("pareto", w));
  EXPECT_TRUE(parse_workload_kind("trace:/tmp/t.csv", w));
  EXPECT_EQ(w.kind, WorkloadKind::kTrace);
  EXPECT_EQ(w.trace_path, "/tmp/t.csv");
  EXPECT_FALSE(parse_workload_kind("weibull", w));
  EXPECT_EQ(w.kind, WorkloadKind::kTrace);  // untouched on failure
  EXPECT_EQ(workload_kind_name(WorkloadKind::kDiurnal), "diurnal");
}

// ----------------------------------------------------------- runner replay

experiments::RunConfig runner_config() {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.routers = 60;
  cfg.scenario.target_members = 15;
  cfg.scenario.join_phase = 200.0;
  cfg.scenario.total_time = 1600.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.1;
  cfg.session.chunk_rate = 1.0;
  cfg.workload = poisson(600.0);
  cfg.seed = 11;
  return cfg;
}

TEST(WorkloadRunner, TraceReplayIsBitIdenticalToGeneratedRun) {
  const experiments::RunConfig cfg = runner_config();
  const experiments::RunResult generated = experiments::run_once(cfg);

  // Save the exact event list the run drew, then replay it from the file.
  std::vector<WorkloadEvent> events;
  experiments::workload_events(cfg, events);
  ASSERT_FALSE(events.empty());
  const std::string path = testing::TempDir() + "vdm_replay_trace.csv";
  write_trace_file(path, events);
  experiments::RunConfig replay = cfg;
  replay.workload.kind = WorkloadKind::kTrace;
  replay.workload.trace_path = path;
  const experiments::RunResult replayed = experiments::run_once(replay);

  // Bitwise equality on every scalar: the replay is the same run.
  EXPECT_EQ(generated.stress, replayed.stress);
  EXPECT_EQ(generated.stretch, replayed.stretch);
  EXPECT_EQ(generated.hopcount, replayed.hopcount);
  EXPECT_EQ(generated.loss, replayed.loss);
  EXPECT_EQ(generated.overhead, replayed.overhead);
  EXPECT_EQ(generated.network_usage, replayed.network_usage);
  EXPECT_EQ(generated.startup_avg, replayed.startup_avg);
  EXPECT_EQ(generated.reconnect_avg, replayed.reconnect_avg);
  EXPECT_EQ(generated.outage_avg, replayed.outage_avg);
  EXPECT_EQ(generated.mst_ratio, replayed.mst_ratio);
  EXPECT_EQ(generated.final_members, replayed.final_members);
}

TEST(WorkloadRunner, TrajectoryFollowsMeasurementGrid) {
  experiments::RunConfig cfg = runner_config();
  cfg.keep_trajectory = true;
  const experiments::RunResult r = experiments::run_once(cfg);
  ASSERT_FALSE(r.trajectory.empty());
  const sim::Time first = cfg.scenario.join_phase + cfg.scenario.settle_time;
  for (std::size_t i = 0; i < r.trajectory.size(); ++i) {
    const experiments::TrajectoryPoint& tp = r.trajectory[i];
    EXPECT_EQ(tp.at,
              first + static_cast<double>(i) * cfg.scenario.churn_interval);
    EXPECT_GE(tp.continuity, 0.0);
    EXPECT_LE(tp.continuity, 1.0);
    EXPECT_GE(tp.overhead, 0.0);
    EXPECT_GT(tp.members, 0u);  // at least the source is alive
  }
}

TEST(WorkloadRunner, SlotModeUnaffectedByWorkloadParams) {
  // kSlots ignores the generator knobs entirely — the classic timeline
  // stays bit-identical no matter what the workload block says.
  experiments::RunConfig a = runner_config();
  a.workload = WorkloadParams{};
  experiments::RunConfig b = a;
  b.workload.mean_session = 1.0;
  b.workload.pareto_alpha = 9.0;
  const experiments::RunResult ra = experiments::run_once(a);
  const experiments::RunResult rb = experiments::run_once(b);
  EXPECT_EQ(ra.loss, rb.loss);
  EXPECT_EQ(ra.stretch, rb.stretch);
  EXPECT_EQ(ra.overhead, rb.overhead);
  EXPECT_EQ(ra.final_members, rb.final_members);
}

}  // namespace
}  // namespace vdm::overlay
