#include "topology/geo.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace vdm::topo {
namespace {

TEST(GreatCircle, KnownDistances) {
  // SF (37.77,-122.42) to NYC (40.71,-74.01): ~4130 km.
  EXPECT_NEAR(great_circle_km(37.77, -122.42, 40.71, -74.01), 4130.0, 60.0);
  // London to Tokyo: ~9560 km.
  EXPECT_NEAR(great_circle_km(51.51, -0.13, 35.68, 139.69), 9560.0, 100.0);
}

TEST(GreatCircle, ZeroForSamePoint) {
  EXPECT_NEAR(great_circle_km(10.0, 20.0, 10.0, 20.0), 0.0, 1e-9);
}

TEST(GreatCircle, Symmetric) {
  EXPECT_NEAR(great_circle_km(1.0, 2.0, 50.0, 60.0),
              great_circle_km(50.0, 60.0, 1.0, 2.0), 1e-9);
}

TEST(GeoRegions, PresetsNonEmptyAndDistinct) {
  const auto us = us_regions();
  const auto world = world_regions();
  EXPECT_GE(us.size(), 5u);
  EXPECT_GT(world.size(), us.size());  // world includes the US hubs
}

TEST(Geo, BuildsRequestedHostCount) {
  util::Rng rng(1);
  GeoParams p;
  p.num_hosts = 50;
  const GeoTopology t = make_geo(p, rng);
  EXPECT_EQ(t.hosts.size(), 50u);
  EXPECT_EQ(t.underlay.num_hosts(), 50u);
}

TEST(Geo, RegionsAssignedWithinBounds) {
  util::Rng rng(2);
  GeoParams p;
  p.num_hosts = 80;
  p.regions = world_regions();
  const GeoTopology t = make_geo(p, rng);
  EXPECT_EQ(t.region_names.size(), p.regions.size());
  for (const GeoHost& h : t.hosts) EXPECT_LT(h.region, p.regions.size());
}

TEST(Geo, DelaysPositiveSymmetricWithFloor) {
  util::Rng rng(3);
  GeoParams p;
  p.num_hosts = 20;
  const GeoTopology t = make_geo(p, rng);
  for (net::HostId a = 0; a < 20; ++a) {
    for (net::HostId b = 0; b < 20; ++b) {
      if (a == b) continue;
      EXPECT_GE(t.underlay.delay(a, b), p.min_delay);
      EXPECT_DOUBLE_EQ(t.underlay.delay(a, b), t.underlay.delay(b, a));
    }
  }
}

TEST(Geo, CrossContinentSlowerThanLocal) {
  util::Rng rng(4);
  GeoParams p;
  p.num_hosts = 120;
  p.regions = world_regions();
  const GeoTopology t = make_geo(p, rng);
  // Average intra-region delay must be well below average US<->Asia delay.
  double local_sum = 0.0, far_sum = 0.0;
  std::size_t local_n = 0, far_n = 0;
  for (net::HostId a = 0; a < 120; ++a) {
    for (net::HostId b = a + 1; b < 120; ++b) {
      const auto& ra = t.region_names[t.hosts[a].region];
      const auto& rb = t.region_names[t.hosts[b].region];
      if (t.hosts[a].region == t.hosts[b].region) {
        local_sum += t.underlay.delay(a, b);
        ++local_n;
      } else if ((ra.rfind("US", 0) == 0 && rb.rfind("Asia", 0) == 0) ||
                 (ra.rfind("Asia", 0) == 0 && rb.rfind("US", 0) == 0)) {
        far_sum += t.underlay.delay(a, b);
        ++far_n;
      }
    }
  }
  ASSERT_GT(local_n, 0u);
  ASSERT_GT(far_n, 0u);
  EXPECT_LT(local_sum / static_cast<double>(local_n),
            0.5 * far_sum / static_cast<double>(far_n));
}

TEST(Geo, LossModelProducesBoundedLoss) {
  util::Rng rng(5);
  GeoParams p;
  p.num_hosts = 25;
  p.loss_base = 0.005;
  p.loss_per_1000km = 0.002;
  p.loss_noise = 0.01;
  p.loss_max = 0.04;
  const GeoTopology t = make_geo(p, rng);
  bool any = false;
  for (net::HostId a = 0; a < 25; ++a) {
    for (net::HostId b = a + 1; b < 25; ++b) {
      const double l = t.underlay.loss(a, b);
      EXPECT_GE(l, 0.0);
      EXPECT_LE(l, 0.04);
      any = any || l > 0.0;
    }
  }
  EXPECT_TRUE(any);
}

TEST(Geo, NoLossParamsMeansZeroLoss) {
  util::Rng rng(6);
  GeoParams p;
  p.num_hosts = 10;
  const GeoTopology t = make_geo(p, rng);
  for (net::HostId a = 0; a < 10; ++a) {
    for (net::HostId b = 0; b < 10; ++b) {
      if (a != b) EXPECT_DOUBLE_EQ(t.underlay.loss(a, b), 0.0);
    }
  }
}

TEST(Geo, DeterministicForSameSeed) {
  GeoParams p;
  p.num_hosts = 15;
  util::Rng r1(7), r2(7);
  const GeoTopology a = make_geo(p, r1);
  const GeoTopology b = make_geo(p, r2);
  for (net::HostId x = 0; x < 15; ++x) {
    EXPECT_DOUBLE_EQ(a.hosts[x].lat_deg, b.hosts[x].lat_deg);
    for (net::HostId y = 0; y < 15; ++y) {
      if (x != y) EXPECT_DOUBLE_EQ(a.underlay.delay(x, y), b.underlay.delay(x, y));
    }
  }
}

TEST(Geo, RejectsTooFewHosts) {
  util::Rng rng(8);
  GeoParams p;
  p.num_hosts = 1;
  EXPECT_THROW(make_geo(p, rng), util::InvariantError);
}

}  // namespace
}  // namespace vdm::topo
