#include "util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vdm::util {
namespace {

TEST(CancelToken, StartsClearAndLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(TaskPool, WorkersForBounds) {
  TaskPool pool(4);
  EXPECT_EQ(pool.max_workers(), 4u);
  EXPECT_EQ(pool.workers_for(100, 2), 2u);   // parallelism caps
  EXPECT_EQ(pool.workers_for(3, 8), 3u);     // n caps
  EXPECT_EQ(pool.workers_for(100, 8), 4u);   // max_workers caps
  EXPECT_EQ(pool.workers_for(0, 8), 1u);     // never below 1
  EXPECT_GE(pool.workers_for(100, 0), 1u);   // 0 = hardware concurrency
}

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  TaskPool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  const std::size_t workers = pool.workers_for(kN, 4);
  std::atomic<std::size_t> max_worker{0};
  pool.for_n(kN, 4, [&](const TaskPool::Context& ctx) {
    hits[ctx.index].fetch_add(1, std::memory_order_relaxed);
    std::size_t seen = max_worker.load(std::memory_order_relaxed);
    while (ctx.worker > seen &&
           !max_worker.compare_exchange_weak(seen, ctx.worker)) {
    }
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  EXPECT_LT(max_worker.load(), workers);
}

TEST(TaskPool, SerialBatchRunsInlineOnCaller) {
  TaskPool pool(8);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t ran = 0;
  pool.for_n(16, 1, [&](const TaskPool::Context& ctx) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(ctx.worker, 0u);
    ++ran;  // single-threaded: plain increment is safe
  });
  EXPECT_EQ(ran, 16u);
}

TEST(TaskPool, ZeroTasksIsANoop) {
  TaskPool pool(4);
  bool called = false;
  pool.for_n(0, 4, [&](const TaskPool::Context&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TaskPool, SequentialBatchesReuseThreads) {
  TaskPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_n(100, 4, [&](const TaskPool::Context& ctx) {
      sum.fetch_add(ctx.index, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(TaskPool, OversubscribedWorkerIdsStayDense) {
  // Worker ids must stay in [0, workers) even when workers > cores — the
  // sweep sizes its arena vector with workers_for and indexes it by
  // ctx.worker, so an out-of-range id is a heap corruption.
  TaskPool pool(0);
  const std::size_t workers = pool.workers_for(64, 8);
  EXPECT_EQ(workers, 8u);  // max_workers(0) keeps oversubscription headroom
  std::vector<std::atomic<int>> by_worker(workers);
  pool.for_n(64, 8, [&](const TaskPool::Context& ctx) {
    ASSERT_LT(ctx.worker, workers);
    by_worker[ctx.worker].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (auto& c : by_worker) total += c.load();
  EXPECT_EQ(total, 64);
  // No assertion on by_worker[0]: the submitter always *offers* to work,
  // but helpers may legally steal its whole shard first.
}

TEST(TaskPool, SerialExceptionDrainsRemainingTasks) {
  TaskPool pool(4);
  std::size_t ran = 0;
  EXPECT_THROW(pool.for_n(100, 1,
                          [&](const TaskPool::Context&) {
                            ++ran;
                            throw std::runtime_error("boom");
                          }),
               std::runtime_error);
  // The first failure cancels the batch: the other 99 tasks are drained
  // without running.
  EXPECT_EQ(ran, 1u);
}

TEST(TaskPool, ParallelExceptionPropagatesToCaller) {
  TaskPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.for_n(200, 4,
                          [&](const TaskPool::Context& ctx) {
                            ran.fetch_add(1, std::memory_order_relaxed);
                            if (ctx.index == 7) throw std::runtime_error("boom");
                          }),
               std::runtime_error);
  EXPECT_LE(ran.load(), 200u);
}

TEST(TaskPool, CancelTokenVisibleToLateTasks) {
  // After a task throws, tasks that still run (already claimed) can observe
  // cancellation to bail out of long work early.
  TaskPool pool(4);
  std::atomic<bool> saw_cancelled{false};
  EXPECT_THROW(pool.for_n(500, 2,
                          [&](const TaskPool::Context& ctx) {
                            if (ctx.index == 0) throw std::runtime_error("boom");
                            if (ctx.cancel.cancelled()) {
                              saw_cancelled.store(true, std::memory_order_relaxed);
                            }
                          }),
               std::runtime_error);
  // Not asserted: whether any task observed the flag is a race; the test is
  // that polling it is safe while the batch is being torn down.
  (void)saw_cancelled;
}

TEST(TaskPool, NestedForNDoesNotDeadlock) {
  TaskPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.for_n(4, 2, [&](const TaskPool::Context&) {
    pool.for_n(8, 2, [&](const TaskPool::Context&) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(TaskPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&TaskPool::global(), &TaskPool::global());
  EXPECT_GE(TaskPool::global().max_workers(), 8u);  // oversubscription headroom
}

}  // namespace
}  // namespace vdm::util
