// Tests for the paper's optional / future-work features: HMTP's
// foster-child quick start (§2.4.7), the playout buffer that absorbs
// reconnection jitter (§5.4.3), and the cached measurement service (§6.2).

#include <gtest/gtest.h>

#include <memory>

#include "baselines/hmtp_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "helpers.hpp"
#include "overlay/metric.hpp"
#include "util/require.hpp"

namespace vdm {
namespace {

using testutil::line_underlay;

// ------------------------------------------------------------ foster child

TEST(FosterChild, StartupIsOneHandshake) {
  baselines::HmtpConfig cfg;
  cfg.foster_child = true;
  baselines::HmtpProtocol hmtp(cfg);
  testutil::Harness h(line_underlay({0.0, 10.0, 12.0}), hmtp);
  h.join(1);
  const overlay::TimingRecord rec = h.session.join(2, 4);
  // Probe + foster handshake with the root: rtt(2,0)=12 each -> 24, far
  // below the full search (which also walks to node 1).
  EXPECT_DOUBLE_EQ(rec.duration, 24.0);
  EXPECT_GT(rec.messages, 4);  // ... but the search messages are still paid
}

TEST(FosterChild, StillEndsAtTheProperParent) {
  baselines::HmtpConfig cfg;
  cfg.foster_child = true;
  baselines::HmtpProtocol hmtp(cfg);
  testutil::Harness h(line_underlay({0.0, 10.0, 12.0}), hmtp);
  h.join(1);
  h.join(2);  // closest member is node 1 -> foster at root, then move
  EXPECT_EQ(h.parent(2), 1u);
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(FosterChild, FasterStartupThanPlainJoin) {
  auto startup = [](bool foster) {
    baselines::HmtpConfig cfg;
    cfg.foster_child = foster;
    baselines::HmtpProtocol hmtp(cfg);
    testutil::Harness h(line_underlay({0.0, 10.0, 20.0, 30.0, 31.0}), hmtp);
    for (net::HostId n = 1; n <= 3; ++n) h.join(n);
    return h.session.join(4, 4).duration;
  };
  EXPECT_LT(startup(true), startup(false));
}

TEST(FosterChild, SaturatedRootFallsBackToPlainJoin) {
  baselines::HmtpConfig cfg;
  cfg.foster_child = true;
  baselines::HmtpProtocol hmtp(cfg);
  testutil::Harness h(line_underlay({0.0, 10.0, 12.0}), hmtp, /*source_degree=*/1);
  h.join(1);  // root now full
  EXPECT_EQ(h.join(2), 1u);  // normal search placed it under node 1
  EXPECT_NO_THROW(h.session.tree().validate());
}

// --------------------------------------------------------------- buffering

double run_loss_with_buffer(double buffer_seconds) {
  sim::Simulator simulator;
  net::MatrixUnderlay u = line_underlay({0.0, 1.0, 2.0});
  core::VdmProtocol vdm;
  overlay::DelayMetric metric;
  overlay::SessionParams sp;
  sp.source = 0;
  sp.chunk_rate = 10.0;
  sp.buffer_seconds = buffer_seconds;
  overlay::Session session(simulator, u, vdm, metric, sp, util::Rng(1));
  session.start();
  session.join(1, 4);
  session.join(2, 4);
  simulator.run_until(20.0);
  session.reset_window();
  simulator.run_until(30.0);
  session.leave(1);  // orphan 2: reconnection outage of a few seconds
  simulator.run_until(40.0);
  const auto& w = session.window();
  VDM_REQUIRE(w.chunks_expected > 0);
  return 1.0 - static_cast<double>(w.chunks_delivered) /
                   static_cast<double>(w.chunks_expected);
}

TEST(PlayoutBuffer, DeepBufferAbsorbsReconnectionOutage) {
  const double no_buffer = run_loss_with_buffer(0.0);
  const double deep_buffer = run_loss_with_buffer(30.0);
  EXPECT_GT(no_buffer, 0.0);
  EXPECT_DOUBLE_EQ(deep_buffer, 0.0);
}

TEST(PlayoutBuffer, ShallowBufferAbsorbsPartOfTheOutage) {
  const double no_buffer = run_loss_with_buffer(0.0);
  const double shallow = run_loss_with_buffer(2.0);
  EXPECT_LE(shallow, no_buffer);
}

// ------------------------------------------------------------ cached metric

TEST(CachedMetric, HitIsFreeAndStable) {
  sim::Simulator simulator;
  const net::MatrixUnderlay u = line_underlay({0.0, 10.0});
  overlay::CachedMetric cached(std::make_unique<overlay::DelayMetric>(0.2),
                               simulator, /*ttl=*/100.0);
  util::Rng rng(2);
  overlay::MetricProvider::Cost cost;
  const double first = cached.measure_with_cost(u, 0, 1, rng, cost);
  EXPECT_EQ(cost.messages, 2);
  EXPECT_GT(cost.elapsed, 0.0);
  EXPECT_EQ(cached.misses(), 1u);

  const double second = cached.measure_with_cost(u, 0, 1, rng, cost);
  EXPECT_EQ(cost.messages, 0);       // served by the statistics service
  EXPECT_DOUBLE_EQ(cost.elapsed, 0.0);
  EXPECT_DOUBLE_EQ(second, first);   // same (possibly stale) value
  EXPECT_EQ(cached.hits(), 1u);
}

TEST(CachedMetric, SymmetricKey) {
  sim::Simulator simulator;
  const net::MatrixUnderlay u = line_underlay({0.0, 10.0});
  overlay::CachedMetric cached(std::make_unique<overlay::DelayMetric>(),
                               simulator, 100.0);
  util::Rng rng(3);
  (void)cached.measure(u, 0, 1, rng);
  (void)cached.measure(u, 1, 0, rng);
  EXPECT_EQ(cached.hits(), 1u);  // the reverse direction hit the same entry
}

TEST(CachedMetric, TtlExpiryForcesRemeasurement) {
  sim::Simulator simulator;
  const net::MatrixUnderlay u = line_underlay({0.0, 10.0});
  overlay::CachedMetric cached(std::make_unique<overlay::DelayMetric>(),
                               simulator, /*ttl=*/5.0);
  util::Rng rng(4);
  (void)cached.measure(u, 0, 1, rng);
  simulator.run_until(10.0);  // past the TTL
  overlay::MetricProvider::Cost cost;
  (void)cached.measure_with_cost(u, 0, 1, rng, cost);
  EXPECT_EQ(cost.messages, 2);
  EXPECT_EQ(cached.misses(), 2u);
}

TEST(CachedMetric, SpeedsUpJoinsAgainstExpensiveProbes) {
  // Wrapping the loss metric (§6.2's motivating case): after the first few
  // joins warm the cache, later joins cost far fewer messages.
  auto join_messages = [](bool with_cache) {
    sim::Simulator simulator;
    net::MatrixUnderlay u = line_underlay({0.0, 10.0, 20.0, 30.0, 5.0});
    core::VdmProtocol vdm;
    std::unique_ptr<overlay::MetricProvider> metric;
    if (with_cache) {
      metric = std::make_unique<overlay::CachedMetric>(
          std::make_unique<overlay::LossMetric>(), simulator, 1e6);
    } else {
      metric = std::make_unique<overlay::LossMetric>();
    }
    overlay::SessionParams sp;
    sp.source = 0;
    overlay::Session session(simulator, u, vdm, *metric, sp, util::Rng(5));
    session.start();
    int total = 0;
    for (net::HostId h = 1; h <= 4; ++h) total += session.join(h, 4).messages;
    return total;
  };
  EXPECT_LT(join_messages(true), join_messages(false));
}

TEST(CachedMetric, RejectsBadConstruction) {
  sim::Simulator simulator;
  EXPECT_THROW(overlay::CachedMetric(nullptr, simulator, 1.0), util::InvariantError);
  EXPECT_THROW(overlay::CachedMetric(std::make_unique<overlay::DelayMetric>(),
                                     simulator, 0.0),
               util::InvariantError);
}

}  // namespace
}  // namespace vdm
