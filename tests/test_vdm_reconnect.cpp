#include <gtest/gtest.h>

#include "core/vdm_protocol.hpp"
#include "helpers.hpp"
#include "util/require.hpp"

namespace vdm::core {
namespace {

using testutil::Harness;
using testutil::line_underlay;

TEST(VdmReconnect, OrphanReconnectsViaGrandparent) {
  // Chain S=0 -> A=10 -> B=20. A leaves; B's reconnection starts at its
  // grandparent S and lands back under S (the only remaining member).
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  ASSERT_EQ(h.join(1), 0u);
  ASSERT_EQ(h.join(2), 1u);
  h.session.leave(1);
  EXPECT_FALSE(h.session.tree().member(1).alive);
  EXPECT_EQ(h.parent(2), 0u);
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(VdmReconnect, ReconnectionIsRecordedWithPositiveDuration) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  (void)h.session.take_startup_records();
  h.session.leave(1);
  const auto recs = h.session.take_reconnect_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].host, 2u);
  EXPECT_GT(recs[0].duration, 0.0);
  EXPECT_GT(recs[0].messages, 0);
}

TEST(VdmReconnect, ReconnectionCheaperThanFullJoinInDeepTree) {
  // In a deep chain, an orphan near the bottom restarts at its grandparent
  // and must contact far fewer nodes than a source-rooted join would.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0, 40.0, 50.0}), vdm);
  for (net::HostId n = 1; n <= 5; ++n) h.join(n);
  (void)h.session.take_startup_records();
  h.session.leave(4);  // orphan: 5, grandparent: 3
  const auto recs = h.session.take_reconnect_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].host, 5u);
  EXPECT_EQ(h.parent(5), 3u);
  EXPECT_EQ(recs[0].iterations, 1);  // one hop of search, not five
}

TEST(VdmReconnect, CascadingLeavesHealViaFreshGrandparents) {
  // S -> A -> B -> C; A then B leave. Each orphan's grandparent pointer is
  // refreshed on every re-attach, so both recoveries start at a live node
  // and the chain heals without touching the source path twice.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0}), vdm);
  h.join(1);
  h.join(2);
  h.join(3);
  h.session.leave(1);  // B reconnects under S (its grandparent)
  h.session.leave(2);  // C reconnects; its grandparent was refreshed to S
  EXPECT_EQ(h.parent(3), 0u);
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(VdmReconnect, FallsBackToSourceWhenGrandparentDead) {
  // The paper's rare case: "If both the parent and the grandparent leave at
  // the same time, the orphan node goes to the source" (§3.3). Simultaneous
  // departures are handcrafted: G dies while its grandchild's pointer still
  // names it.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 5.0, 10.0, 20.0}), vdm);
  overlay::Membership& tree = h.session.tree();
  tree.activate(1, 8);  // G
  tree.attach(1, 0, 5.0);
  tree.activate(2, 8);  // P under G
  tree.attach(2, 1, 5.0);
  tree.activate(3, 8);  // O under P; O.grandparent == G
  tree.attach(3, 2, 10.0);
  ASSERT_EQ(tree.member(3).grandparent, 1u);
  // G and P "leave at the same time": G vanishes first, unannounced.
  tree.detach(2);
  tree.deactivate(1);
  h.session.leave(2);  // O's grandparent (G) is dead -> restart at source
  EXPECT_EQ(h.parent(3), 0u);
  EXPECT_NO_THROW(tree.validate());
}

TEST(VdmReconnect, MultipleOrphansAllRecover) {
  // A node with three children leaves; every orphan reconnects and the
  // member set stays fully attached.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 11.0, 12.0, 13.0}), vdm);
  h.session.tree().activate(1, 8);
  h.session.tree().attach(1, 0, 10.0);
  for (net::HostId c = 2; c <= 4; ++c) {
    h.session.tree().activate(c, 8);
    h.session.tree().attach(c, 1, 1.0);
  }
  h.session.leave(1);
  for (net::HostId c = 2; c <= 4; ++c) {
    EXPECT_NE(h.parent(c), net::kInvalidHost) << "orphan " << c;
  }
  EXPECT_NO_THROW(h.session.tree().validate());
  EXPECT_EQ(h.session.window().reconnects_completed, 3u);
}

TEST(VdmReconnect, OrphanWithSubtreeKeepsItAndAvoidsCycles) {
  // S -> A -> B -> C -> D. B (with subtree C, D) is orphaned when A leaves;
  // it must not attach inside its own subtree.
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0, 30.0, 40.0}), vdm);
  for (net::HostId n = 1; n <= 4; ++n) h.join(n);
  h.session.leave(1);
  EXPECT_EQ(h.parent(2), 0u);       // B back under S
  EXPECT_EQ(h.parent(3), 2u);       // subtree untouched
  EXPECT_EQ(h.parent(4), 3u);
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(VdmReconnect, LeaveChargesNotificationMessages) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  h.session.reset_window();
  h.session.leave(1);
  // At least: 1 notice to parent + 1 to child + the orphan's rejoin.
  EXPECT_GE(h.session.window().control_messages, 2u + 6u);
}

TEST(VdmReconnect, SourceCannotLeave) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0}), vdm);
  h.join(1);
  EXPECT_THROW(h.session.leave(0), util::InvariantError);
}

TEST(VdmReconnect, LeaveOfDetachedLeafIsClean) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  h.session.leave(2);  // leaf, no orphans
  EXPECT_EQ(h.session.window().reconnects_completed, 0u);
  EXPECT_FALSE(h.session.tree().member(2).alive);
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(VdmReconnect, RejoinAfterLeaveGetsFreshState) {
  VdmProtocol vdm;
  Harness h(line_underlay({0.0, 10.0, 20.0}), vdm);
  h.join(1);
  h.join(2);
  h.session.leave(2);
  EXPECT_EQ(h.join(2), 1u);  // rejoins where the geometry dictates
  EXPECT_TRUE(h.session.tree().member(2).children.empty());
  EXPECT_NO_THROW(h.session.tree().validate());
}

TEST(VdmReconnect, OutageBlocksChunksForSubtree) {
  // While an orphan's reconnection handshake is in flight, chunks flowing
  // in that window are expected-but-undelivered for its subtree.
  VdmProtocol vdm;
  // Positions in seconds-scale RTT units so handshakes take a few seconds.
  Harness h(line_underlay({0.0, 1.0, 2.0, 3.0}), vdm, 8, 1, /*chunk_rate=*/10.0);
  for (net::HostId n = 1; n <= 3; ++n) h.join(n);
  h.sim.run_until(20.0);  // let everyone complete their join handshakes
  h.session.reset_window();
  h.sim.run_until(30.0);
  const auto before = h.session.window();
  ASSERT_GT(before.chunks_expected, 0u);
  EXPECT_EQ(before.chunks_expected, before.chunks_delivered);  // clean network
  h.session.leave(1);  // orphan 2's reconnection handshake takes ~6 s
  h.sim.run_until(31.0);
  const auto after = h.session.window();
  EXPECT_GT(after.chunks_expected, after.chunks_delivered);
}

}  // namespace
}  // namespace vdm::core
