#include "topology/mst.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace vdm::topo {
namespace {

/// Metric from an explicit symmetric table.
HostMetric table_metric(std::map<std::pair<net::HostId, net::HostId>, double> table) {
  return [table = std::move(table)](net::HostId a, net::HostId b) {
    const auto it = table.find({std::min(a, b), std::max(a, b)});
    VDM_REQUIRE(it != table.end());
    return it->second;
  };
}

TEST(PrimMst, SingleNode) {
  const SpanningTree t = prim_mst({7}, 7, [](auto, auto) { return 1.0; });
  EXPECT_EQ(t.root, 7u);
  EXPECT_DOUBLE_EQ(t.total_cost, 0.0);
  EXPECT_EQ(t.parent[0], net::kInvalidHost);
}

TEST(PrimMst, KnownTriangle) {
  // 0-1: 1, 0-2: 3, 1-2: 1.5 -> MST = {0-1, 1-2} cost 2.5.
  const auto m = table_metric({{{0, 1}, 1.0}, {{0, 2}, 3.0}, {{1, 2}, 1.5}});
  const SpanningTree t = prim_mst({0, 1, 2}, 0, m);
  EXPECT_DOUBLE_EQ(t.total_cost, 2.5);
  EXPECT_EQ(t.parent[1], 0u);  // member index 1 (host 1) hangs off index 0
  EXPECT_EQ(t.parent[2], 1u);  // host 2 hangs off host 1
}

TEST(PrimMst, RootChoiceDoesNotChangeCost) {
  util::Rng rng(1);
  std::map<std::pair<net::HostId, net::HostId>, double> table;
  const std::vector<net::HostId> members{0, 1, 2, 3, 4, 5};
  for (std::size_t a = 0; a < members.size(); ++a) {
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      table[{members[a], members[b]}] = rng.uniform(1.0, 10.0);
    }
  }
  const auto m = table_metric(table);
  const double c0 = prim_mst(members, 0, m).total_cost;
  const double c3 = prim_mst(members, 3, m).total_cost;
  EXPECT_NEAR(c0, c3, 1e-12);
}

TEST(PrimMst, MatchesBruteForceOnSmallSets) {
  // Exhaustive check against all spanning trees of K4 via Cayley
  // enumeration (16 labeled trees on 4 nodes, encoded by Prüfer sequences).
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::map<std::pair<net::HostId, net::HostId>, double> table;
    for (net::HostId a = 0; a < 4; ++a) {
      for (net::HostId b = a + 1; b < 4; ++b) {
        table[{a, b}] = rng.uniform(1.0, 5.0);
      }
    }
    const auto m = table_metric(table);
    double best = 1e18;
    for (int p0 = 0; p0 < 4; ++p0) {
      for (int p1 = 0; p1 < 4; ++p1) {
        // Decode Prüfer sequence (p0, p1) into a labeled tree on {0,1,2,3}.
        std::vector<int> degree(4, 1);
        const std::array<int, 2> pruefer{p0, p1};
        for (const int p : pruefer) ++degree[static_cast<std::size_t>(p)];
        double cost = 0.0;
        std::vector<int> deg = degree;
        std::vector<std::pair<int, int>> edges;
        std::vector<int> seq(pruefer.begin(), pruefer.end());
        std::vector<bool> used(4, false);
        for (const int p : seq) {
          for (int leaf = 0; leaf < 4; ++leaf) {
            if (deg[static_cast<std::size_t>(leaf)] == 1 && !used[static_cast<std::size_t>(leaf)]) {
              edges.emplace_back(leaf, p);
              used[static_cast<std::size_t>(leaf)] = true;
              --deg[static_cast<std::size_t>(p)];
              break;
            }
          }
        }
        std::vector<int> rest;
        for (int v = 0; v < 4; ++v) {
          if (!used[static_cast<std::size_t>(v)] && deg[static_cast<std::size_t>(v)] >= 1) rest.push_back(v);
        }
        edges.emplace_back(rest[0], rest[1]);
        for (const auto& [a, b] : edges) {
          cost += m(static_cast<net::HostId>(a), static_cast<net::HostId>(b));
        }
        best = std::min(best, cost);
      }
    }
    const double prim = prim_mst({0, 1, 2, 3}, 0, m).total_cost;
    EXPECT_NEAR(prim, best, 1e-9) << "trial " << trial;
  }
}

TEST(PrimMst, RootMustBeMember) {
  EXPECT_THROW(prim_mst({1, 2}, 9, [](auto, auto) { return 1.0; }),
               util::InvariantError);
}

TEST(DegreeConstrainedTree, RespectsLimits) {
  util::Rng rng(3);
  std::map<std::pair<net::HostId, net::HostId>, double> table;
  std::vector<net::HostId> members;
  for (net::HostId h = 0; h < 12; ++h) members.push_back(h);
  for (std::size_t a = 0; a < members.size(); ++a) {
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      table[{members[a], members[b]}] = rng.uniform(1.0, 9.0);
    }
  }
  const auto m = table_metric(table);
  const std::vector<int> limits(12, 3);
  const SpanningTree t = degree_constrained_tree(members, 0, m, limits);

  std::vector<int> tree_degree(12, 0);
  for (std::size_t i = 0; i < t.parent.size(); ++i) {
    if (t.parent[i] == net::kInvalidHost) continue;
    ++tree_degree[i];
    ++tree_degree[t.parent[i]];
  }
  for (std::size_t i = 0; i < 12; ++i) EXPECT_LE(tree_degree[i], 3);
}

TEST(DegreeConstrainedTree, CostAtLeastMst) {
  util::Rng rng(4);
  std::map<std::pair<net::HostId, net::HostId>, double> table;
  std::vector<net::HostId> members{0, 1, 2, 3, 4, 5, 6, 7};
  for (std::size_t a = 0; a < members.size(); ++a) {
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      table[{members[a], members[b]}] = rng.uniform(1.0, 9.0);
    }
  }
  const auto m = table_metric(table);
  const double unconstrained = prim_mst(members, 0, m).total_cost;
  const double constrained =
      degree_constrained_tree(members, 0, m, std::vector<int>(8, 2)).total_cost;
  EXPECT_GE(constrained, unconstrained - 1e-12);
}

TEST(DegreeConstrainedTree, DegreeTwoBuildsAPath) {
  // With degree limit 2 everywhere, the tree must be a Hamiltonian path.
  const auto m = [](net::HostId a, net::HostId b) {
    return std::abs(static_cast<double>(a) - static_cast<double>(b));
  };
  const std::vector<net::HostId> members{0, 1, 2, 3, 4};
  const SpanningTree t = degree_constrained_tree(members, 0, m, std::vector<int>(5, 2));
  std::vector<int> deg(5, 0);
  for (std::size_t i = 0; i < 5; ++i) {
    if (t.parent[i] == net::kInvalidHost) continue;
    ++deg[i];
    ++deg[t.parent[i]];
  }
  int leaves = 0;
  for (const int d : deg) {
    EXPECT_LE(d, 2);
    if (d == 1) ++leaves;
  }
  EXPECT_EQ(leaves, 2);
}

TEST(DegreeConstrainedTree, ThrowsWhenInfeasible) {
  // Limits of 1 everywhere cannot span 3 nodes (root attaches one child,
  // which then has no capacity left).
  const auto m = [](auto, auto) { return 1.0; };
  EXPECT_THROW(degree_constrained_tree({0, 1, 2}, 0, m, {1, 1, 1}),
               util::InvariantError);
}

TEST(TreeCost, RecomputesFromMetric) {
  const auto m = table_metric({{{0, 1}, 2.0}, {{0, 2}, 5.0}, {{1, 2}, 1.0}});
  const SpanningTree t = prim_mst({0, 1, 2}, 0, m);
  EXPECT_NEAR(tree_cost(t, m), t.total_cost, 1e-12);
}

}  // namespace
}  // namespace vdm::topo
