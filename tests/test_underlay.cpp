#include "net/graph_underlay.hpp"
#include "net/matrix_underlay.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topology/simple.hpp"
#include "util/require.hpp"

namespace vdm::net {
namespace {

GraphUnderlay line_underlay() {
  // Routers 0-1-2; hosts 3 (on router 0) and 4 (on router 2).
  Graph g = topo::make_line(3, 0.010);
  const NodeId h1 = g.add_node();
  const NodeId h2 = g.add_node();
  g.add_link(h1, 0, 0.001);
  g.add_link(h2, 2, 0.002);
  return GraphUnderlay(std::move(g), {h1, h2});
}

TEST(GraphUnderlay, DelayAndRtt) {
  const GraphUnderlay u = line_underlay();
  EXPECT_EQ(u.num_hosts(), 2u);
  EXPECT_NEAR(u.delay(0, 1), 0.001 + 0.020 + 0.002, 1e-12);
  EXPECT_NEAR(u.rtt(0, 1), 2 * 0.023, 1e-12);
}

TEST(GraphUnderlay, PathTraversesAccessAndCoreLinks) {
  const GraphUnderlay u = line_underlay();
  EXPECT_EQ(u.path(0, 1).size(), 4u);  // access + 2 core + access
  EXPECT_TRUE(u.path(0, 0).empty());
}

TEST(GraphUnderlay, LinkDelayLookup) {
  const GraphUnderlay u = line_underlay();
  double sum = 0.0;
  for (const LinkId l : u.path(0, 1)) sum += u.link_delay(l);
  EXPECT_NEAR(sum, u.delay(0, 1), 1e-12);
}

TEST(GraphUnderlay, LossCompoundsOverPath) {
  Graph g = topo::make_line(2, 0.010, 0.1);
  const NodeId h1 = g.add_node();
  const NodeId h2 = g.add_node();
  g.add_link(h1, 0, 0.001, 0.05);
  g.add_link(h2, 1, 0.001, 0.0);
  const GraphUnderlay u(std::move(g), {h1, h2});
  EXPECT_NEAR(u.loss(0, 1), 1.0 - 0.95 * 0.9 * 1.0, 1e-12);
}

TEST(GraphUnderlay, RejectsEmptyHostList) {
  Graph g = topo::make_line(2);
  EXPECT_THROW(GraphUnderlay(std::move(g), {}), util::InvariantError);
}

TEST(GraphUnderlay, RejectsOutOfRangeHostVertex) {
  Graph g = topo::make_line(2);
  EXPECT_THROW(GraphUnderlay(std::move(g), {7}), util::InvariantError);
}

// ------------------------------------------------------------- Matrix

MatrixUnderlay small_matrix() {
  // 3 hosts; delays 0-1: 10ms, 0-2: 20ms, 1-2: 35ms (triangle violation
  // relative to 0 as relay: 10+20 < 35 — allowed, as on the real Internet).
  std::vector<double> d{0.000, 0.010, 0.020,
                        0.010, 0.000, 0.035,
                        0.020, 0.035, 0.000};
  std::vector<double> l{0.00, 0.01, 0.02,
                        0.01, 0.00, 0.03,
                        0.02, 0.03, 0.00};
  return MatrixUnderlay(3, std::move(d), std::move(l));
}

TEST(MatrixUnderlay, DelayAndLossLookup) {
  const MatrixUnderlay u = small_matrix();
  EXPECT_EQ(u.num_hosts(), 3u);
  EXPECT_DOUBLE_EQ(u.delay(0, 1), 0.010);
  EXPECT_DOUBLE_EQ(u.delay(1, 2), 0.035);
  EXPECT_DOUBLE_EQ(u.loss(1, 2), 0.03);
  EXPECT_DOUBLE_EQ(u.rtt(0, 2), 0.040);
}

TEST(MatrixUnderlay, EmptyLossMeansZero) {
  std::vector<double> d{0.0, 0.01, 0.01, 0.0};
  const MatrixUnderlay u(2, std::move(d));
  EXPECT_DOUBLE_EQ(u.loss(0, 1), 0.0);
}

TEST(MatrixUnderlay, PairLinkIsBijective) {
  const MatrixUnderlay u = small_matrix();
  std::set<LinkId> ids;
  for (HostId a = 0; a < 3; ++a) {
    for (HostId b = a + 1; b < 3; ++b) {
      const LinkId id = u.pair_link(a, b);
      EXPECT_EQ(id, u.pair_link(b, a));  // unordered
      ids.insert(id);
      EXPECT_LT(id, u.num_links());
    }
  }
  EXPECT_EQ(ids.size(), u.num_links());
}

TEST(MatrixUnderlay, LinkDelayInvertsPairLink) {
  const MatrixUnderlay u = small_matrix();
  for (HostId a = 0; a < 3; ++a) {
    for (HostId b = a + 1; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(u.link_delay(u.pair_link(a, b)), u.delay(a, b));
    }
  }
  EXPECT_THROW(u.link_delay(u.num_links()), util::InvariantError);
}

TEST(MatrixUnderlay, PathIsOnePseudoLink) {
  const MatrixUnderlay u = small_matrix();
  const auto p = u.path(0, 2);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], u.pair_link(0, 2));
  EXPECT_TRUE(u.path(1, 1).empty());
}

TEST(MatrixUnderlay, ValidatesShape) {
  EXPECT_THROW(MatrixUnderlay(2, {0.0, 1.0}), util::InvariantError);  // wrong size
  EXPECT_THROW(MatrixUnderlay(2, {0.5, 0.01, 0.01, 0.0}), util::InvariantError);  // diag
  EXPECT_THROW(MatrixUnderlay(2, {0.0, 0.01, 0.02, 0.0}), util::InvariantError);  // asym
  EXPECT_THROW(MatrixUnderlay(2, {0.0, -0.01, -0.01, 0.0}), util::InvariantError);  // neg
}

TEST(MatrixUnderlay, LargerPairLinkBijection) {
  const std::size_t n = 17;
  std::vector<double> d(n * n, 0.001);
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0.0;
  const MatrixUnderlay u(n, std::move(d));
  std::set<LinkId> ids;
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = a + 1; b < n; ++b) ids.insert(u.pair_link(a, b));
  }
  EXPECT_EQ(ids.size(), n * (n - 1) / 2);
  EXPECT_EQ(*ids.rbegin(), static_cast<LinkId>(n * (n - 1) / 2 - 1));
}

}  // namespace
}  // namespace vdm::net
