#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace vdm::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(1);
  OnlineStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(OnlineStats, NumericallyStableAroundLargeOffset) {
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 ? 0.5 : -0.5));
  EXPECT_NEAR(s.mean(), 1e9, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(student_t_critical(0.90, 1), 6.314, 1e-3);
  EXPECT_NEAR(student_t_critical(0.90, 10), 1.812, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 30), 2.750, 1e-3);
}

TEST(StudentT, NormalLimitForLargeDf) {
  EXPECT_NEAR(student_t_critical(0.90, 10000), 1.645, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 10000), 1.960, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 10000), 2.576, 1e-3);
}

TEST(StudentT, RejectsInvalidConfidence) {
  EXPECT_THROW(student_t_critical(0.0, 5), InvariantError);
  EXPECT_THROW(student_t_critical(1.0, 5), InvariantError);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.ci_halfwidth, 0.0);
}

TEST(Summarize, SingleSampleHasNoInterval) {
  const Summary s = summarize({4.2});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.2);
  EXPECT_DOUBLE_EQ(s.ci_halfwidth, 0.0);
}

TEST(Summarize, KnownCi90) {
  // n=4, mean=5, sd=2 -> half-width = t(0.90,3) * 2/2 = 2.353.
  const Summary s = summarize({3.0, 4.0, 6.0, 7.0}, 0.90);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(10.0 / 3.0), 1e-12);
  EXPECT_NEAR(s.ci_halfwidth, 2.353 * s.stddev / 2.0, 1e-9);
  EXPECT_LT(s.lo(), s.mean);
  EXPECT_GT(s.hi(), s.mean);
}

TEST(Summarize, IntervalCoversTrueMeanMostOfTheTime) {
  // Empirical coverage check: ~90% of 90% CIs should contain the true mean.
  Rng rng(99);
  int covered = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 10; ++i) xs.push_back(rng.normal(5.0, 1.0));
    const Summary s = summarize(xs, 0.90);
    if (s.lo() <= 5.0 && 5.0 <= s.hi()) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / kTrials, 0.90, 0.06);
}

TEST(Percentile, Endpoints) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 0.5), InvariantError);
  EXPECT_THROW(percentile({1.0}, 1.5), InvariantError);
}

TEST(Percentile, InplaceSingleSample) {
  // idx = p * (n-1) = 0 for every p, so lo == hi == 0: no interpolation
  // partner to read out of bounds.
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile_inplace(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_inplace(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile_inplace(one, 1.0), 7.0);
}

TEST(Percentile, InplaceTwoSamplesAndEndpoints) {
  std::vector<double> two{4.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_inplace(two, 0.0), 2.0);
  // p = 1.0 lands exactly on the last element (frac 0, hi clamped).
  EXPECT_DOUBLE_EQ(percentile_inplace(two, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_inplace(two, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_inplace(two, 0.75), 3.5);
  // The in-place variant leaves the vector sorted.
  EXPECT_EQ(two, (std::vector<double>{2.0, 4.0}));
}

TEST(Summary, ToStringMentionsCount) {
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_NE(s.to_string().find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace vdm::util
