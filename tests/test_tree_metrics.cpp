#include "metrics/tree_metrics.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "net/graph_underlay.hpp"
#include "topology/simple.hpp"

namespace vdm::metrics {
namespace {

using overlay::Membership;

Membership star_tree(std::size_t n) {
  Membership m(n);
  m.activate(0, 8);
  for (net::HostId h = 1; h < n; ++h) {
    m.activate(h, 8);
    m.attach(h, 0, 1.0);
  }
  return m;
}

Membership chain_tree(std::size_t n) {
  Membership m(n);
  m.activate(0, 8);
  for (net::HostId h = 1; h < n; ++h) {
    m.activate(h, 8);
    m.attach(h, h - 1, 1.0);
  }
  return m;
}

TEST(TreeMetrics, EmptyTreeIsZero) {
  Membership m(3);
  m.activate(0, 4);
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 20.0});
  const TreeMetrics t = measure_tree(m, 0, u);
  EXPECT_EQ(t.members, 1u);
  EXPECT_DOUBLE_EQ(t.stress_avg, 0.0);
  EXPECT_DOUBLE_EQ(t.stretch_avg, 0.0);
  EXPECT_DOUBLE_EQ(t.network_usage, 0.0);
}

TEST(TreeMetrics, StarOnMatrixUnderlayIsUnitStretch) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 20.0, 30.0});
  const Membership m = star_tree(4);
  const TreeMetrics t = measure_tree(m, 0, u);
  EXPECT_EQ(t.members, 4u);
  EXPECT_DOUBLE_EQ(t.stretch_avg, 1.0);  // every member served directly
  EXPECT_DOUBLE_EQ(t.stretch_min, 1.0);
  EXPECT_DOUBLE_EQ(t.stretch_max, 1.0);
  EXPECT_DOUBLE_EQ(t.hop_avg, 1.0);
  EXPECT_DOUBLE_EQ(t.hop_max, 1.0);
  // One pseudo-link per member pair, each used once.
  EXPECT_DOUBLE_EQ(t.stress_avg, 1.0);
  EXPECT_EQ(t.links_used, 3u);
  // One-way delays: 5 + 10 + 15.
  EXPECT_DOUBLE_EQ(t.network_usage, 30.0);
}

TEST(TreeMetrics, ChainOnLineIsUnitStretchButDeep) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 20.0, 30.0});
  const Membership m = chain_tree(4);
  const TreeMetrics t = measure_tree(m, 0, u);
  // Colinear relays add no extra delay: (5+5+5)/15 = 1.
  EXPECT_DOUBLE_EQ(t.stretch_avg, 1.0);
  EXPECT_DOUBLE_EQ(t.hop_avg, 2.0);  // depths 1, 2, 3
  EXPECT_DOUBLE_EQ(t.hop_max, 3.0);
  EXPECT_DOUBLE_EQ(t.hop_leaf_avg, 3.0);  // single leaf at depth 3
  EXPECT_DOUBLE_EQ(t.network_usage, 15.0);
}

TEST(TreeMetrics, DetourInflatesStretch) {
  // Tree S -> A -> B where B sits geometrically next to S: the overlay
  // detour through A doubles B's delay.
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 1.0});
  Membership m(3);
  m.activate(0, 8);
  m.activate(1, 8);
  m.activate(2, 8);
  m.attach(1, 0, 10.0);
  m.attach(2, 1, 9.0);
  const TreeMetrics t = measure_tree(m, 0, u);
  // B: overlay delay = (10 + 9)/2 = 9.5 vs direct 0.5 -> stretch 19.
  EXPECT_DOUBLE_EQ(t.stretch_max, 19.0);
  EXPECT_DOUBLE_EQ(t.stretch_min, 1.0);  // A itself is direct
}

TEST(TreeMetrics, LeafAveragesExcludeInteriorNodes) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 20.0, 30.0});
  Membership m(4);
  for (net::HostId h = 0; h < 4; ++h) m.activate(h, 8);
  m.attach(1, 0, 10.0);  // interior
  m.attach(2, 1, 10.0);  // leaf at depth 2
  m.attach(3, 1, 20.0);  // leaf at depth 2
  const TreeMetrics t = measure_tree(m, 0, u);
  EXPECT_DOUBLE_EQ(t.hop_leaf_avg, 2.0);
  EXPECT_DOUBLE_EQ(t.hop_avg, (1.0 + 2.0 + 2.0) / 3.0);
}

TEST(TreeMetrics, StressCountsSharedPhysicalLinks) {
  // Routers r0 - r1; source host on r0, two receivers on r1, both fed
  // directly: the r0-r1 core link carries the chunk twice.
  net::Graph g = topo::make_line(2, 0.010);
  const net::NodeId hs = g.add_node();
  const net::NodeId ha = g.add_node();
  const net::NodeId hb = g.add_node();
  g.add_link(hs, 0, 0.001);
  g.add_link(ha, 1, 0.001);
  g.add_link(hb, 1, 0.001);
  const net::GraphUnderlay u(std::move(g), {hs, ha, hb});

  const Membership m = star_tree(3);
  const TreeMetrics t = measure_tree(m, 0, u);
  // Used links: hs-r0 (x2), r0-r1 (x2), r1-ha (x1), r1-hb (x1).
  EXPECT_EQ(t.links_used, 4u);
  EXPECT_DOUBLE_EQ(t.stress_avg, 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(t.stress_max, 2.0);
}

TEST(TreeMetrics, RelayingThroughPeersReducesStress) {
  // Same substrate, but chaining the second receiver behind the first
  // makes every physical link carry the chunk exactly once.
  net::Graph g = topo::make_line(2, 0.010);
  const net::NodeId hs = g.add_node();
  const net::NodeId ha = g.add_node();
  const net::NodeId hb = g.add_node();
  g.add_link(hs, 0, 0.001);
  g.add_link(ha, 1, 0.001);
  g.add_link(hb, 1, 0.001);
  const net::GraphUnderlay u(std::move(g), {hs, ha, hb});

  Membership m(3);
  for (net::HostId h = 0; h < 3; ++h) m.activate(h, 8);
  m.attach(1, 0, 1.0);
  m.attach(2, 1, 1.0);  // relay through host 1
  const TreeMetrics t = measure_tree(m, 0, u);
  // The core r0-r1 link now carries the chunk once (vs twice in the star);
  // only host 1's access link is double-used (down to the host, back up to
  // its child): traversals {hs-r0: 1, r0-r1: 1, r1-ha: 2, r1-hb: 1}.
  EXPECT_DOUBLE_EQ(t.stress_max, 2.0);
  EXPECT_DOUBLE_EQ(t.stress_avg, 5.0 / 4.0);  // < the star's 6/4
}

TEST(TreeMetrics, DetachedMembersAreIgnoredByPathMetrics) {
  const net::MatrixUnderlay u = testutil::line_underlay({0.0, 10.0, 20.0});
  Membership m(3);
  for (net::HostId h = 0; h < 3; ++h) m.activate(h, 8);
  m.attach(1, 0, 10.0);
  // Host 2 alive but detached (mid-reconnect).
  const TreeMetrics t = measure_tree(m, 0, u);
  EXPECT_EQ(t.members, 3u);        // counted as members
  EXPECT_DOUBLE_EQ(t.hop_max, 1.0);  // but not in the tree paths
}

TEST(TreeMetrics, TriangleViolationGivesSubUnitStretch) {
  // The paper observes stretch < 1 on PlanetLab (§5.4.3): overlay routing
  // through a relay can beat the "direct" path when the underlay violates
  // the triangle inequality.
  const net::MatrixUnderlay u = testutil::rtt_underlay(
      {{0, 10, 30}, {10, 0, 10}, {30, 10, 0}});
  Membership m(3);
  for (net::HostId h = 0; h < 3; ++h) m.activate(h, 8);
  m.attach(1, 0, 10.0);
  m.attach(2, 1, 10.0);
  const TreeMetrics t = measure_tree(m, 0, u);
  // Host 2: overlay (5 + 5) vs direct 15 -> stretch 2/3.
  EXPECT_NEAR(t.stretch_min, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace vdm::metrics
