// Crash churn: VDM against HMTP as churn departures shift from graceful
// leaves to ungraceful crashes, under the dissertation's failure model
// (heartbeat failure detection, lossy control plane with retry/backoff —
// Chapter 5's unstable-node setting applied to the Chapter 3 substrate).
// Reconnection splits into detection latency (heartbeat misses + timeout)
// and the rejoin handshake; "outage" is their sum — what a viewer loses.
// No figure in the paper plots this directly; §3.3 + §5.3 describe the
// machinery, and the loss/overhead columns extend Figures 3.27/3.28 to
// ungraceful departures. See EXPERIMENTS.md.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds =
      static_cast<std::size_t>(flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(6, 32))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 200));

  RunConfig base;
  base.substrate = Substrate::kTransitStub;
  base.scenario.target_members = members;
  base.scenario.join_phase = 2000.0;
  base.scenario.total_time = 10000.0;
  base.scenario.churn_interval = 400.0;
  base.scenario.settle_time = 100.0;
  base.scenario.churn_rate = 0.05;
  base.session.chunk_rate = 1.0;
  base.session.faults.heartbeat_period = 1.0;
  base.session.faults.heartbeat_misses = 3;
  base.session.faults.heartbeat_timeout = 0.5;
  base.session.faults.lossy_control = true;
  base.session.faults.control_loss_extra = 0.01;
  base.seed = 500;

  const std::vector<double> crash_fractions{0.0, 0.25, 0.5, 0.75, 1.0};

  // One flat grid: (crash fraction x {VDM, HMTP}) in the serial loop's order.
  std::vector<RunConfig> points;
  for (const double frac : crash_fractions) {
    RunConfig cfg = base;
    cfg.scenario.crash_fraction = frac;
    points.push_back(cfg);
    cfg.protocol = Proto::kHmtp;
    points.push_back(cfg);
  }
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  std::vector<AggregateResult> results = run_grid(points, seeds, sweep);

  struct Row {
    AggregateResult vdm, hmtp;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < crash_fractions.size(); ++i) {
    rows.push_back(Row{std::move(results[2 * i]), std::move(results[2 * i + 1])});
  }

  const std::string setup =
      "transit-stub 792 routers, " + std::to_string(members) + " members, " +
      std::to_string(seeds) + " seeds, churn 5%, heartbeat 1 s x3 +0.5 s, "
      "control loss 1% with retry/backoff";

  auto emit = [&](const std::string& metric, const std::string& expectation,
                  util::Summary AggregateResult::* field, int precision = 3) {
    banner("Crash churn — " + metric + " vs crash fraction",
           setup + "\n" + note_expectation(expectation));
    util::Table t({"crash(%)", "VDM", "HMTP"});
    for (std::size_t i = 0; i < crash_fractions.size(); ++i) {
      t.add_row({util::Table::fmt(100 * crash_fractions[i], 0),
                 ci_cell(rows[i].vdm.*field, precision),
                 ci_cell(rows[i].hmtp.*field, precision)});
    }
    t.print(std::cout);
  };

  emit("loss rate",
       "grows with crash fraction for both protocols (orphans are blind "
       "until detection, and that window is identical for both)",
       &AggregateResult::loss, 5);
  emit("detection latency (s)",
       "flat ~ misses x period + timeout; identical machinery for both "
       "protocols",
       &AggregateResult::detection_avg);
  emit("outage = detection + rejoin (s)",
       "detection-dominated (rejoin is sub-second, detection seconds)",
       &AggregateResult::outage_avg);
  emit("rejoin handshake alone (s)",
       "sub-second and comparable: grandparent-start recovery is shared "
       "session machinery; differences reflect join-search depth only",
       &AggregateResult::reconnect_avg);
  emit("control overhead (msgs per data transmission)",
       "dominated by the constant heartbeat probing; VDM well below "
       "refining HMTP",
       &AggregateResult::overhead, 4);
  return 0;
}
