// Figures 3.33-3.36: VDM's stress / stretch / loss / overhead as the
// average node degree sweeps 2 -> 8. The paper sweeps from 1.25, but its
// simulator counted only children against the limit; with the uplink
// correctly charged too (DESIGN.md invariant 2) a tree over N members
// needs 2(N-1) link endpoints, so average limits below 2 cannot host the
// membership at all — the sub-2 points are structurally infeasible and
// are dropped rather than reproduced.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds =
      static_cast<std::size_t>(flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(4, 32))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 200));

  const std::vector<double> degrees{2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0};
  std::vector<RunConfig> points;
  for (const double d : degrees) {
    RunConfig cfg;
    cfg.substrate = Substrate::kTransitStub;
    cfg.scenario.target_members = members;
    cfg.scenario.join_phase = 2000.0;
    cfg.scenario.total_time = 10000.0;
    cfg.scenario.churn_interval = 400.0;
    cfg.scenario.settle_time = 100.0;
    cfg.scenario.churn_rate = 0.05;
    cfg.scenario.degrees = overlay::DegreeSpec::average(d);
    cfg.session.source_degree_limit = std::max(2, static_cast<int>(d + 0.5));
    cfg.session.chunk_rate = 1.0;
    cfg.seed = 300;
    points.push_back(cfg);
  }
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::vector<AggregateResult> results = run_grid(points, seeds, sweep);

  const std::string setup = "transit-stub 792 routers, VDM, " + std::to_string(members) +
                            " members, churn 5%, " + std::to_string(seeds) + " seeds";

  auto emit = [&](const std::string& fig, const std::string& metric,
                  const std::string& expectation,
                  util::Summary AggregateResult::* field, int precision = 3) {
    banner(fig + " — " + metric + " vs average node degree",
           setup + "\n" + note_expectation(expectation));
    util::Table t({"avg degree", "VDM"});
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      t.add_row({util::Table::fmt(degrees[i], 2), ci_cell(results[i].*field, precision)});
    }
    t.print(std::cout);
  };

  emit("Figure 3.33", "stress", "roughly flat in degree",
       &AggregateResult::stress);
  emit("Figure 3.34", "stretch",
       "very high at degree ~1.25 (chains), drops steeply, flattens ~4-5",
       &AggregateResult::stretch);
  emit("Figure 3.35", "loss rate",
       "high at low degree (long paths), then decreasing / fluctuating",
       &AggregateResult::loss, 5);
  emit("Figure 3.36", "overhead",
       "U-shape: high at low degree (deep searches), minimum mid-range",
       &AggregateResult::overhead);
  return 0;
}
