// End-to-end performance baseline: full run_once simulations at several
// overlay sizes plus a measure_tree micro-benchmark with a heap-allocation
// counter. This binary is the repo's perf trajectory anchor — run it via
//
//   ./build/bench/bench_e2e | ./build/tools/bench_to_json --label <label>
//
// and compare against the checked-in BENCH_e2e.json (see README "Performance").

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "experiments/runner.hpp"
#include "metrics/tree_metrics.hpp"
#include "net/graph_underlay.hpp"
#include "overlay/membership.hpp"
#include "sim/simulator.hpp"
#include "topology/transit_stub.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------- allocation
// Global-new instrumentation so the measure_tree micro can assert "zero heap
// allocations in steady state" instead of hand-waving it.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// aligned_alloc/malloc memory is interchangeable under free(); GCC's
// heuristic cannot see that across the replaced operator set.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace vdm {
namespace {

// ----------------------------------------------------------------- e2e runs

/// One complete paper-style experiment seed: build transit-stub substrate,
/// run the join/churn/measure timeline, aggregate epoch metrics.
void BM_RunOnceTransitStub(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.seed = 7;  // fixed seed: identical work every iteration and every run
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RunOnceTransitStub)
    ->Arg(64)
    ->Arg(200)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// run_once under the full failure model: every churn departure is an
/// ungraceful crash, children run heartbeat detection, and the control
/// plane drops and retries messages. Tracks the cost of the fault path
/// (detection timers + orphan walks + retry draws) relative to
/// BM_RunOnceTransitStub at the same size.
void BM_RunOnceCrashChurn(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.scenario.churn_rate = 0.10;
  cfg.scenario.crash_fraction = 1.0;
  cfg.session.faults.heartbeat_period = 1.0;
  cfg.session.faults.heartbeat_misses = 3;
  cfg.session.faults.heartbeat_timeout = 0.5;
  cfg.session.faults.lossy_control = true;
  cfg.session.faults.control_loss_extra = 0.01;
  cfg.seed = 7;
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RunOnceCrashChurn)->Arg(200)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ event engine

/// The event engine alone: schedule/fire churn with a live timer population
/// the size of a paper run's (one Periodic per member plus in-flight
/// control events). allocs_per_iter must be exactly 0 — the slab, the
/// indexed heap and the inline callables make steady-state scheduling
/// allocation-free.
void BM_SimScheduleFire(benchmark::State& state) {
  sim::Simulator s;
  std::uint64_t sink = 0;
  // Pre-grow slab and heap past the working set: 512 self-rescheduling
  // events with staggered periods, exercising re-arm, cancel and reuse.
  constexpr int kTimers = 512;
  for (int i = 0; i < kTimers; ++i) {
    const sim::Time period = 0.5 + 0.001 * static_cast<sim::Time>(i);
    s.schedule_in(period, [&s, &sink, period] {
      ++sink;
      s.reschedule_current_in(period);
    });
  }
  s.run(kTimers * 4);  // steady state before measuring
  // Warm with the exact batch shape below so the slab and heap reach the
  // measured loop's peak population before counting allocations.
  for (int i = 0; i < 64; ++i) {
    sim::EventId cancellable = s.schedule_in(0.25, [&sink] { ++sink; });
    s.schedule_in(0.25, [&sink] { ++sink; });
    s.cancel(cancellable);
    s.run(64);
  }

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    // One batch: a burst of cancellable one-shots (half cancelled, as churn
    // control traffic would be) riding on the periodic timer population.
    sim::EventId cancellable = s.schedule_in(0.25, [&sink] { ++sink; });
    s.schedule_in(0.25, [&sink] { ++sink; });
    s.cancel(cancellable);
    s.run(64);
    benchmark::DoNotOptimize(sink);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimScheduleFire)->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------------- micro bench

struct TreeFixture {
  net::GraphUnderlay underlay;
  overlay::Membership tree;

  explicit TreeFixture(std::size_t members)
      : underlay(make_underlay(members)), tree(underlay.num_hosts()) {
    // Deterministic ternary tree over the first `members` hosts, host 0 as
    // the source; degree limit 4 leaves headroom like the paper's 2..5 range.
    for (net::HostId h = 0; h < members; ++h) tree.activate(h, 4);
    for (net::HostId h = 1; h < members; ++h) {
      const net::HostId parent = (h - 1) / 3;
      tree.attach(h, parent, underlay.rtt(parent, h));
    }
  }

  static net::GraphUnderlay make_underlay(std::size_t members) {
    util::Rng rng(42);
    topo::TransitStubParams tp;  // paper-size core: 792 routers
    topo::HostAttachment hp;
    hp.num_hosts = members;
    return topo::make_transit_stub_underlay(tp, hp, rng);
  }
};

/// measure_tree the way Collector::capture runs it: reusable scratch, warm
/// caches. allocs_per_iter must be exactly 0 — that is the zero-allocation
/// acceptance gate of the fast path.
void BM_MeasureTreeScratch(benchmark::State& state) {
  TreeFixture fx(static_cast<std::size_t>(state.range(0)));
  metrics::TreeMetricsScratch scratch;
  benchmark::DoNotOptimize(metrics::measure_tree(fx.tree, 0, fx.underlay, scratch));

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    metrics::TreeMetrics m = metrics::measure_tree(fx.tree, 0, fx.underlay, scratch);
    benchmark::DoNotOptimize(m);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MeasureTreeScratch)->Arg(200)->Unit(benchmark::kMicrosecond);

/// measure_tree via the convenience overload (per-call scratch).
void BM_MeasureTree(benchmark::State& state) {
  TreeFixture fx(static_cast<std::size_t>(state.range(0)));
  // Warm every routing/pair cache so the loop measures steady state.
  benchmark::DoNotOptimize(metrics::measure_tree(fx.tree, 0, fx.underlay));

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    metrics::TreeMetrics m = metrics::measure_tree(fx.tree, 0, fx.underlay);
    benchmark::DoNotOptimize(m);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MeasureTree)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vdm

BENCHMARK_MAIN();
