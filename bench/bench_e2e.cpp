// End-to-end performance baseline: full run_once simulations at several
// overlay sizes plus a measure_tree micro-benchmark with a heap-allocation
// counter. This binary is the repo's perf trajectory anchor — run it via
//
//   ./build/bench/bench_e2e | ./build/tools/bench_to_json --label <label>
//
// and compare against the checked-in BENCH_e2e.json (see README "Performance").

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/sweep.hpp"
#include "metrics/tree_metrics.hpp"
#include "net/graph_underlay.hpp"
#include "net/routing.hpp"
#include "overlay/membership.hpp"
#include "sim/simulator.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"
#include "wire/wire.hpp"

// ---------------------------------------------------------------- allocation
// Global-new instrumentation so the measure_tree micro can assert "zero heap
// allocations in steady state" instead of hand-waving it.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// aligned_alloc/malloc memory is interchangeable under free(); GCC's
// heuristic cannot see that across the replaced operator set.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace vdm {
namespace {

// ----------------------------------------------------------------- e2e runs

/// One complete paper-style experiment seed: build transit-stub substrate,
/// run the join/churn/measure timeline, aggregate epoch metrics.
void BM_RunOnceTransitStub(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.seed = 7;  // fixed seed: identical work every iteration and every run
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RunOnceTransitStub)
    ->Arg(64)
    ->Arg(200)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// run_once under the full failure model: every churn departure is an
/// ungraceful crash, children run heartbeat detection, and the control
/// plane drops and retries messages. Tracks the cost of the fault path
/// (detection timers + orphan walks + retry draws) relative to
/// BM_RunOnceTransitStub at the same size.
void BM_RunOnceCrashChurn(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.scenario.churn_rate = 0.10;
  cfg.scenario.crash_fraction = 1.0;
  cfg.session.faults.heartbeat_period = 1.0;
  cfg.session.faults.heartbeat_misses = 3;
  cfg.session.faults.heartbeat_timeout = 0.5;
  cfg.session.faults.lossy_control = true;
  cfg.session.faults.control_loss_extra = 0.01;
  cfg.seed = 7;
  experiments::RunScratch scratch;
  benchmark::DoNotOptimize(experiments::run_once(cfg, scratch));  // warm

  // Crash churn is the walk-heaviest configuration (every departure triggers
  // orphan reconnection walks), so the alloc counters here gate the
  // zero-allocation claim of the TreeWalk path: once the arena is warm, a
  // full run must not grow the walk scratch.
  const std::uint64_t grows_before = scratch.grow_events();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg, scratch);
    benchmark::DoNotOptimize(r);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["arena_grow_per_iter"] =
      static_cast<double>(scratch.grow_events() - grows_before) / iters;
  state.counters["allocs_per_iter"] = static_cast<double>(allocs) / iters;
}
BENCHMARK(BM_RunOnceCrashChurn)->Arg(200)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- sweeps

/// run_once into a warm per-worker arena — the steady-state unit of work a
/// sweep worker executes. arena_grow_per_iter must be exactly 0: after the
/// warmup run the scratch owns every buffer the run shape needs, so repeat
/// runs rebuild topology, routing state and collector storage in place.
void BM_RunOnceArena(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.seed = 7;
  experiments::RunScratch scratch;
  benchmark::DoNotOptimize(experiments::run_once(cfg, scratch));  // warm

  const std::uint64_t grows_before = scratch.grow_events();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg, scratch);
    benchmark::DoNotOptimize(r);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["arena_grow_per_iter"] =
      static_cast<double>(scratch.grow_events() - grows_before) / iters;
  state.counters["allocs_per_iter"] = static_cast<double>(allocs) / iters;
}
BENCHMARK(BM_RunOnceArena)->Arg(200)->Unit(benchmark::kMillisecond);

/// Trace-driven churn end to end: every iteration regenerates the Poisson
/// workload (same seed, same event list) and replays it through
/// ScenarioDriver::run_trace on the coordinate underlay. Measures the
/// workload engine's full path — generation, event scheduling, sustained
/// join/leave churn at Little's-law rate — on top of a warm arena.
/// arena_grow_per_iter must be exactly 0: the event list, the driver pool
/// and the collector slots all reach steady capacity on the warm run.
void BM_ChurnTrace(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kCoordPlane;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.workload.kind = overlay::WorkloadKind::kPoisson;
  cfg.workload.mean_session = 800.0;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.scenario.join_phase = 400.0;
  cfg.scenario.total_time = 1200.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.session.chunk_rate = 0.1;
  cfg.compute_mst_ratio = false;
  cfg.seed = 7;
  experiments::RunScratch scratch;
  benchmark::DoNotOptimize(experiments::run_once(cfg, scratch));  // warm

  const std::uint64_t grows_before = scratch.grow_events();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  std::size_t final_members = 0;
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg, scratch);
    final_members = r.final_members;
    benchmark::DoNotOptimize(r);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["final_members"] = static_cast<double>(final_members);
  state.counters["arena_grow_per_iter"] =
      static_cast<double>(scratch.grow_events() - grows_before) / iters;
  state.counters["allocs_per_iter"] = static_cast<double>(allocs) / iters;
}
BENCHMARK(BM_ChurnTrace)->Arg(1024)->Unit(benchmark::kMillisecond);

/// run_once on the coordinate-embedded underlay: delay is O(1) from host
/// coordinates, so no router graph, no O(N^2) matrix, and run_once scales
/// to overlays two orders of magnitude past the paper's 200 members. The
/// timeline is compressed (fewer epochs, lighter chunk rate) so the 65536
/// row measures tree construction + SoA chunk flood, not wall-clock filler.
/// arena_grow_per_iter must be exactly 0 after the warm run, same contract
/// as BM_RunOnceArena.
void BM_RunOnceCoord(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kCoordPlane;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.scenario.join_phase = 400.0;
  cfg.scenario.total_time = 1200.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.01;
  cfg.session.chunk_rate = 0.1;
  cfg.compute_mst_ratio = false;  // O(N^2) baseline would dominate at 65536
  cfg.seed = 7;
  experiments::RunScratch scratch;
  benchmark::DoNotOptimize(experiments::run_once(cfg, scratch));  // warm

  const std::uint64_t grows_before = scratch.grow_events();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg, scratch);
    benchmark::DoNotOptimize(r);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["arena_grow_per_iter"] =
      static_cast<double>(scratch.grow_events() - grows_before) / iters;
  state.counters["allocs_per_iter"] = static_cast<double>(allocs) / iters;
}
BENCHMARK(BM_RunOnceCoord)
    ->Arg(2048)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

/// The BM_RunOnceCoord shape with intra-run parallelism on (threads:0 = all
/// hardware workers): probe batches fan out over the shared TaskPool with a
/// serial FIFO commit, chunk floods shard per source-subtree with a serial
/// reduction. Scalars are bit-identical to the serial run by contract
/// (tests/test_intra_run.cpp), so the perf gates here are the engagement
/// counters — par_floods_per_iter proves the sharded flood actually ran —
/// because the recording host may be a single vCPU, where wall clock proves
/// nothing. speedup_vs_serial is the informational headline: >= 1.5x
/// expected at /65536 on a multi-core host. par_probe_batches_per_iter is
/// reported but usually 0 on coordinate substrates: grid-mode placement
/// answers locate() without landmark probes and walk batches stay under the
/// fan-out floor — the landmark-substrate probe fan-out is pinned by
/// tests/test_intra_run.cpp instead. arena_grow_per_iter must stay 0 — the
/// shard buffers live in the same arena as everything else (allocs_per_iter
/// is reported, not gated: pool task handoff may allocate outside the arena
/// contract).
void BM_RunOnceCoordPar(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kCoordPlane;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = static_cast<std::size_t>(state.range(0));
  cfg.scenario.join_phase = 400.0;
  cfg.scenario.total_time = 1200.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.01;
  cfg.session.chunk_rate = 0.1;
  // Locating-first joins probe the landmark set in one batch — the shape
  // that feeds the parallel probe path (walk steps alone stay under the
  // batch-size floor).
  cfg.session.join_mode = overlay::JoinMode::kConcurrent;
  cfg.compute_mst_ratio = false;
  cfg.seed = 7;
  cfg.session.threads = 0;

  experiments::RunConfig serial = cfg;
  serial.session.threads = 1;
  experiments::RunScratch scratch;
  // Serial reference: warm the arena on the serial shape, then time one run.
  benchmark::DoNotOptimize(experiments::run_once(serial, scratch));
  const auto s0 = std::chrono::steady_clock::now();
  const experiments::RunResult serial_r = experiments::run_once(serial, scratch);
  const double serial_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - s0).count();

  benchmark::DoNotOptimize(experiments::run_once(cfg, scratch));  // warm parallel
  const std::uint64_t grows_before = scratch.grow_events();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  double par_secs = 0.0;
  std::uint64_t floods = 0;
  std::uint64_t batches = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    experiments::RunResult r = experiments::run_once(cfg, scratch);
    par_secs +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    floods += r.parallel_floods;
    batches += r.parallel_probe_batches;
    // The bitwise contract, spot-checked on the cheapest scalar (the full
    // cross-substrate sweep lives in tests/test_intra_run.cpp).
    if (r.final_members != serial_r.final_members) {
      state.SkipWithError("parallel run diverged from serial");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["par_floods_per_iter"] = static_cast<double>(floods) / iters;
  state.counters["par_probe_batches_per_iter"] = static_cast<double>(batches) / iters;
  state.counters["speedup_vs_serial"] =
      par_secs > 0.0 ? serial_secs / (par_secs / iters) : 0.0;
  state.counters["arena_grow_per_iter"] =
      static_cast<double>(scratch.grow_events() - grows_before) / iters;
  state.counters["allocs_per_iter"] = static_cast<double>(allocs) / iters;
}
BENCHMARK(BM_RunOnceCoordPar)->Arg(65536)->Unit(benchmark::kMillisecond);

/// Incremental SSSP repair vs fresh Dijkstra on a Waxman router graph. Each
/// iteration replays a fixed list of paired raise/lower delay edits
/// (Graph::mutable_link) and re-queries eight warm source trees after every
/// edit, so the Router repairs just the affected cone each time; the pairing
/// nets the delays back to their originals, keeping the bench steady-state
/// for any iteration count. repair_visit_fraction is the o(V) gate: nodes
/// re-settled per edit over the full-rebuild equivalent (sources x V) —
/// far below 1, independent of host speed. full_recomputes_per_iter counts
/// give-up fallbacks (expected 0 here). speedup_vs_full_dijkstra compares
/// against the pre-repair behaviour (clear_cache + rebuild every warm tree
/// after each edit), timed once outside the loop.
void BM_IncrementalReroute(benchmark::State& state) {
  util::Rng rng(7);
  topo::WaxmanParams wp;
  wp.num_routers = static_cast<std::size_t>(state.range(0));
  wp.loss_max = 0.02;
  topo::WaxmanTopology topo = topo::make_waxman(wp, rng);
  net::Graph& g = topo.graph;
  const std::size_t n = g.num_nodes();

  std::vector<net::NodeId> sources;
  for (std::size_t i = 0; i < 8; ++i) {
    sources.push_back(static_cast<net::NodeId>((n * i) / 8));
  }
  struct Edit {
    net::LinkId link;
    double factor;
  };
  std::vector<Edit> edits;
  for (int i = 0; i < 32; ++i) {
    const auto l = static_cast<net::LinkId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.num_links()) - 1));
    const double f = rng.uniform(1.05, 2.0);
    edits.push_back({l, f});
    edits.push_back({l, 1.0 / f});
  }

  // Fresh-Dijkstra reference: rebuild every warm tree after each edit, the
  // cost the repair path replaces. One pass, timed with its own Router.
  const auto f0 = std::chrono::steady_clock::now();
  {
    net::Router fresh(g);
    for (const net::NodeId s : sources) fresh.delay(s, 0);
    for (const Edit& e : edits) {
      g.mutable_link(e.link).delay *= e.factor;
      fresh.clear_cache();
      for (const net::NodeId s : sources) fresh.delay(s, 0);
    }
  }
  const double full_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - f0).count();

  net::Router router(g);
  for (const net::NodeId s : sources) router.delay(s, 0);  // warm trees
  const std::uint64_t visits_before = router.repair_visits();
  const std::uint64_t fulls_before = router.full_recomputes();
  double repair_secs = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const Edit& e : edits) {
      g.mutable_link(e.link).delay *= e.factor;
      for (const net::NodeId s : sources) {
        benchmark::DoNotOptimize(router.delay(s, 0));
      }
    }
    repair_secs +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  const auto iters = static_cast<double>(state.iterations());
  const double total_edits = iters * static_cast<double>(edits.size());
  const double visits_per_edit =
      static_cast<double>(router.repair_visits() - visits_before) / total_edits;
  state.counters["repair_visits_per_edit"] = visits_per_edit;
  state.counters["repair_visit_fraction"] =
      visits_per_edit / (static_cast<double>(sources.size()) * static_cast<double>(n));
  state.counters["full_recomputes_per_iter"] =
      static_cast<double>(router.full_recomputes() - fulls_before) / iters;
  state.counters["speedup_vs_full_dijkstra"] =
      repair_secs > 0.0
          ? (full_secs / static_cast<double>(edits.size())) / (repair_secs / total_edits)
          : 0.0;
}
BENCHMARK(BM_IncrementalReroute)->Arg(512)->Unit(benchmark::kMillisecond);

/// Flash crowd on the coordinate-embedded US underlay: a 1024-member
/// steady-state overlay absorbs range(0) simultaneous joiners through the
/// locating-first concurrent pipeline (DESIGN.md §10). joins_per_sec is the
/// sustained sim-time throughput of the burst cohort, startup_p99_ms the
/// tail attach latency. speedup_vs_sequential compares the same burst
/// through the baseline one-walk-at-a-time path (measured once, outside the
/// timed loop) — the gate requires >= 3x at 65536. arena_grow_per_iter must
/// be exactly 0 after the warm run, same contract as BM_RunOnceArena.
void BM_FlashCrowd(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kCoordUs;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = 1024;
  cfg.scenario.flash_count = static_cast<std::size_t>(state.range(0));
  cfg.scenario.flash_at = 400.0;
  cfg.scenario.join_phase = 400.0;
  cfg.scenario.total_time = 1200.0;
  cfg.scenario.churn_interval = 200.0;
  cfg.scenario.settle_time = 50.0;
  cfg.scenario.churn_rate = 0.01;
  cfg.session.chunk_rate = 0.1;
  cfg.session.join_mode = overlay::JoinMode::kConcurrent;
  cfg.compute_mst_ratio = false;
  cfg.seed = 7;

  experiments::RunConfig seq = cfg;
  seq.session.join_mode = overlay::JoinMode::kSequential;
  experiments::RunScratch scratch;
  const experiments::RunResult baseline = experiments::run_once(seq, scratch);

  benchmark::DoNotOptimize(experiments::run_once(cfg, scratch));  // warm
  const std::uint64_t grows_before = scratch.grow_events();
  double joins_per_sec = 0.0;
  double startup_p99 = 0.0;
  for (auto _ : state) {
    experiments::RunResult r = experiments::run_once(cfg, scratch);
    joins_per_sec = r.join_rate;
    startup_p99 = r.startup_p99;
    benchmark::DoNotOptimize(r);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["joins_per_sec"] = joins_per_sec;
  state.counters["startup_p99_ms"] = startup_p99 * 1e3;
  state.counters["speedup_vs_sequential"] =
      baseline.join_rate > 0.0 ? joins_per_sec / baseline.join_rate : 0.0;
  state.counters["arena_grow_per_iter"] =
      static_cast<double>(scratch.grow_events() - grows_before) / iters;
}
BENCHMARK(BM_FlashCrowd)
    ->Arg(8192)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

/// A small paper-style grid (three overlay sizes x 4 seeds) through
/// run_grid. threads:1 is the serial reference; threads:0 lets the shared
/// pool size itself to the hardware — on a multi-core host the ratio of the
/// two rows is the sweep speedup (this is also what the determinism tests
/// pin: both rows produce bit-identical aggregates).
void BM_SweepGrid(benchmark::State& state) {
  std::vector<experiments::RunConfig> points;
  for (const std::size_t members : {64, 128, 200}) {
    experiments::RunConfig cfg;
    cfg.substrate = experiments::Substrate::kTransitStub;
    cfg.protocol = experiments::Proto::kVdm;
    cfg.scenario.target_members = members;
    cfg.seed = 7;
    points.push_back(cfg);
  }
  constexpr std::size_t kSeeds = 4;
  experiments::SweepOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<experiments::AggregateResult> aggs =
        experiments::run_grid(points, kSeeds, opt);
    benchmark::DoNotOptimize(aggs);
  }
  state.counters["tasks"] = static_cast<double>(points.size() * kSeeds);
  state.counters["workers"] = static_cast<double>(
      util::TaskPool::global().workers_for(points.size() * kSeeds, opt.threads));
}
BENCHMARK(BM_SweepGrid)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

/// Strong scaling of a single-point seed sweep as the worker cap doubles.
/// speedup/efficiency are measured against the threads=1 row of the same
/// process run. On a single-core host every row collapses to ~1x — the
/// counters record what the hardware actually delivered, not an assumption.
void BM_RunManyScaling(benchmark::State& state) {
  experiments::RunConfig cfg;
  cfg.substrate = experiments::Substrate::kTransitStub;
  cfg.protocol = experiments::Proto::kVdm;
  cfg.scenario.target_members = 64;
  cfg.seed = 7;
  constexpr std::size_t kSeeds = 8;
  const auto threads = static_cast<std::size_t>(state.range(0));

  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    experiments::AggregateResult agg = experiments::run_many(cfg, kSeeds, threads);
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    benchmark::DoNotOptimize(agg);
  }
  const double per_iter = seconds / static_cast<double>(state.iterations());

  static double serial_per_iter = 0.0;  // filled by the threads=1 row, which runs first
  if (threads == 1) serial_per_iter = per_iter;
  if (serial_per_iter > 0.0 && per_iter > 0.0) {
    const double speedup = serial_per_iter / per_iter;
    state.counters["speedup"] = speedup;
    state.counters["efficiency"] = speedup / static_cast<double>(threads);
  }
}
BENCHMARK(BM_RunManyScaling)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ event engine

/// The event engine alone: schedule/fire churn with a live timer population
/// the size of a paper run's (one Periodic per member plus in-flight
/// control events). allocs_per_iter must be exactly 0 — the slab, the
/// indexed heap and the inline callables make steady-state scheduling
/// allocation-free.
void BM_SimScheduleFire(benchmark::State& state) {
  sim::Simulator s;
  std::uint64_t sink = 0;
  // Pre-grow slab and heap past the working set: 512 self-rescheduling
  // events with staggered periods, exercising re-arm, cancel and reuse.
  constexpr int kTimers = 512;
  for (int i = 0; i < kTimers; ++i) {
    const sim::Time period = 0.5 + 0.001 * static_cast<sim::Time>(i);
    s.schedule_in(period, [&s, &sink, period] {
      ++sink;
      s.reschedule_current_in(period);
    });
  }
  s.run(kTimers * 4);  // steady state before measuring
  // Warm with the exact batch shape below so the slab and heap reach the
  // measured loop's peak population before counting allocations.
  for (int i = 0; i < 64; ++i) {
    sim::EventId cancellable = s.schedule_in(0.25, [&sink] { ++sink; });
    s.schedule_in(0.25, [&sink] { ++sink; });
    s.cancel(cancellable);
    s.run(64);
  }

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    // One batch: a burst of cancellable one-shots (half cancelled, as churn
    // control traffic would be) riding on the periodic timer population.
    sim::EventId cancellable = s.schedule_in(0.25, [&sink] { ++sink; });
    s.schedule_in(0.25, [&sink] { ++sink; });
    s.cancel(cancellable);
    s.run(64);
    benchmark::DoNotOptimize(sink);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimScheduleFire)->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------------- micro bench

struct TreeFixture {
  net::GraphUnderlay underlay;
  overlay::Membership tree;

  explicit TreeFixture(std::size_t members)
      : underlay(make_underlay(members)), tree(underlay.num_hosts()) {
    // Deterministic ternary tree over the first `members` hosts, host 0 as
    // the source; degree limit 4 leaves headroom like the paper's 2..5 range.
    for (net::HostId h = 0; h < members; ++h) tree.activate(h, 4);
    for (net::HostId h = 1; h < members; ++h) {
      const net::HostId parent = (h - 1) / 3;
      tree.attach(h, parent, underlay.rtt(parent, h));
    }
  }

  static net::GraphUnderlay make_underlay(std::size_t members) {
    util::Rng rng(42);
    topo::TransitStubParams tp;  // paper-size core: 792 routers
    topo::HostAttachment hp;
    hp.num_hosts = members;
    return topo::make_transit_stub_underlay(tp, hp, rng);
  }
};

/// measure_tree the way Collector::capture runs it: reusable scratch, warm
/// caches. allocs_per_iter must be exactly 0 — that is the zero-allocation
/// acceptance gate of the fast path.
void BM_MeasureTreeScratch(benchmark::State& state) {
  TreeFixture fx(static_cast<std::size_t>(state.range(0)));
  metrics::TreeMetricsScratch scratch;
  benchmark::DoNotOptimize(metrics::measure_tree(fx.tree, 0, fx.underlay, scratch));

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    metrics::TreeMetrics m = metrics::measure_tree(fx.tree, 0, fx.underlay, scratch);
    benchmark::DoNotOptimize(m);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MeasureTreeScratch)->Arg(200)->Unit(benchmark::kMicrosecond);

/// measure_tree via the convenience overload (per-call scratch).
void BM_MeasureTree(benchmark::State& state) {
  TreeFixture fx(static_cast<std::size_t>(state.range(0)));
  // Warm every routing/pair cache so the loop measures steady state.
  benchmark::DoNotOptimize(metrics::measure_tree(fx.tree, 0, fx.underlay));

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    metrics::TreeMetrics m = metrics::measure_tree(fx.tree, 0, fx.underlay);
    benchmark::DoNotOptimize(m);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MeasureTree)->Arg(200)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------- wire codec

/// Encode + decode one of every control message plus a full-MTU chunk — the
/// per-datagram cost every vdmd exchange pays twice. allocs_per_iter must be
/// exactly 0: encode writes into a caller span, decode reads views out of
/// the frame (the codec's zero-allocation contract, DESIGN.md §14).
void BM_WireCodec(benchmark::State& state) {
  std::array<std::byte, wire::kMaxPayload - 12> body{};
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::byte>(i * 31);
  }
  const std::array<wire::Message, 8> messages = {
      wire::Message{wire::Hello{.listen_port = 9000}},
      wire::Message{wire::Welcome{.host_id = 17, .num_hosts = 33}},
      wire::Message{wire::ProbeRequest{
          .token = 5, .target_host = 9, .target_ip = 0x7f000001, .target_port = 4242}},
      wire::Message{wire::ProbeReply{.token = 5, .target_host = 9, .rtt_seconds = 0.031}},
      wire::Message{wire::SetParent{
          .token = 6, .parent_host = 3, .parent_ip = 0x7f000001, .parent_port = 4243}},
      wire::Message{wire::Heartbeat{.from_host = 17, .seq = 12345}},
      wire::Message{wire::StatsReply{.token = 7,
                                     .host = 17,
                                     .chunks_received = 1000,
                                     .chunks_relayed = 999,
                                     .heartbeats_sent = 40,
                                     .control_received = 80}},
      wire::Message{wire::Chunk{.seq = 42, .emitted_at = 1.5, .payload = body}},
  };

  std::array<std::byte, wire::kMaxFrame> frame;
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (const wire::Message& m : messages) {
      const std::size_t n = wire::encode(m, frame);
      wire::Message out;
      const wire::DecodeError err =
          wire::decode(std::span<const std::byte>(frame.data(), n), out);
      benchmark::DoNotOptimize(out);
      if (!err.ok()) state.SkipWithError("decode failed");
      bytes += n;
    }
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
  state.counters["messages_per_iter"] = static_cast<double>(messages.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WireCodec)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vdm

BENCHMARK_MAIN();
