// Figure 5.31: how close VDM's tree gets to the oracle minimum spanning
// tree, with degree limits lifted (the paper removes them for this
// comparison). Expectation: the ratio grows mildly with membership but
// stays well-bounded (paper: < 2 up to 50 nodes).

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds = static_cast<std::size_t>(
      flags.get_int("seeds", static_cast<std::int64_t>(experiments::default_seeds(5, 5))));

  const std::vector<std::size_t> sizes{10, 20, 30, 40, 50};
  std::vector<TestbedConfig> configs;
  for (const std::size_t n : sizes) {
    TestbedConfig cfg;
    cfg.members = n;
    cfg.churn_rate = 0.0;  // settled join-only trees, as in the figure
    cfg.degree = 64;       // "we don't apply degree limitation"
    cfg.source_degree = 64;
    cfg.total_time = cfg.join_phase + 500.0;
    configs.push_back(cfg);
  }
  const std::vector<TestbedAggregate> rows = run_testbed_grid(
      configs, seeds, static_cast<std::size_t>(flags.get_int("threads", 0)));

  banner("Figure 5.31 — overlay tree cost / MST cost vs number of nodes",
         "US testbed pool, VDM, no degree limits, join-only, " +
             std::to_string(seeds) + " runs\n" +
             note_expectation("ratio rises with N but stays < ~2"));
  util::Table t({"nodes", "tree/MST ratio"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].mst_ratio)});
  }
  t.print(std::cout);
  return 0;
}
