// Figures 3.29-3.32: VDM's stress / stretch / loss / overhead as the
// overlay grows from 100 to 1000 members — the Chapter-3 scalability sweep.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds =
      static_cast<std::size_t>(flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(4, 32))));

  const std::vector<std::size_t> sizes{100, 200, 400, 700, 1000};
  std::vector<RunConfig> points;
  for (const std::size_t n : sizes) {
    RunConfig cfg;
    cfg.substrate = Substrate::kTransitStub;
    cfg.scenario.target_members = n;
    cfg.scenario.join_phase = 2000.0;
    cfg.scenario.total_time = 10000.0;
    cfg.scenario.churn_interval = 400.0;
    cfg.scenario.settle_time = 100.0;
    cfg.scenario.churn_rate = 0.05;
    cfg.session.chunk_rate = 1.0;
    cfg.seed = 200;
    points.push_back(cfg);
  }
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::vector<AggregateResult> results = run_grid(points, seeds, sweep);

  const std::string setup = "transit-stub 792 routers, VDM, churn 5%, degree U[2,5], " +
                            std::to_string(seeds) + " seeds";

  auto emit = [&](const std::string& fig, const std::string& metric,
                  const std::string& expectation,
                  util::Summary AggregateResult::* field, int precision = 3) {
    banner(fig + " — " + metric + " vs number of nodes",
           setup + "\n" + note_expectation(expectation));
    util::Table t({"nodes", "VDM"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(results[i].*field, precision)});
    }
    t.print(std::cout);
  };

  emit("Figure 3.29", "stress", "grows ~1.3 -> ~1.8, sub-linear",
       &AggregateResult::stress);
  emit("Figure 3.30", "stretch", "grows with N (deeper trees), sub-linear",
       &AggregateResult::stretch);
  emit("Figure 3.31", "loss rate", "grows mildly with N (bigger blast radius)",
       &AggregateResult::loss, 5);
  emit("Figure 3.32", "overhead", "grows with diminishing increase (log N joins)",
       &AggregateResult::overhead);
  return 0;
}
