// Figures 5.1/5.2/5.5/5.6: the testbed pipeline end to end — synthesize a
// world-wide PlanetLab-like pool, run the three-stage node filter, drive a
// VDM session from a generated scenario file, and print the sample overlay
// tree with its geographic clustering statistics (the "clear clustering in
// continents" observation).

#include <sstream>

#include "bench_common.hpp"
#include "testbed/report.hpp"

using namespace vdm;
using namespace vdm::bench;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 40));

  util::Rng root(seed);
  util::Rng pool_rng = root.split(1);
  util::Rng scenario_rng = root.split(2);

  testbed::PoolParams pp;
  pp.num_nodes = 80;
  const testbed::NodePool pool = testbed::make_pool(pp, topo::world_regions(), pool_rng);
  const testbed::FilterReport filt = testbed::filter_nodes(pool);

  banner("Figure 5.2 — node selection filter",
         "80-node world pool; three filter stages as in the dissertation");
  util::Table ft({"stage", "dropped", "remaining"});
  ft.add_row({"unresponsive to ping", std::to_string(filt.dropped_unresponsive),
              std::to_string(filt.total - filt.dropped_unresponsive)});
  ft.add_row({"cannot ping out", std::to_string(filt.dropped_no_ping_out),
              std::to_string(filt.total - filt.dropped_unresponsive -
                             filt.dropped_no_ping_out)});
  ft.add_row({"agent fails to start", std::to_string(filt.dropped_agent),
              std::to_string(filt.usable)});
  ft.print(std::cout);

  // Scenario: join-only session so the final tree is the settled sample.
  testbed::ScenarioSpec spec;
  for (const net::HostId h : pool.usable_nodes()) {
    if (h != 0) spec.nodes.push_back(h);
  }
  spec.members = std::min(members, spec.nodes.size());
  spec.join_phase = 600.0;
  spec.total_time = 1200.0;
  spec.churn_rate = 0.0;
  spec.degree_min = spec.degree_max = 4;
  const testbed::Scenario scenario = testbed::generate_scenario(spec, scenario_rng);

  std::ostringstream scenario_text;
  testbed::write_scenario(scenario, scenario_text);
  std::cout << "\nscenario file head (generated, replayable):\n";
  std::istringstream head(scenario_text.str());
  std::string line;
  for (int i = 0; i < 6 && std::getline(head, line); ++i) std::cout << "  " << line << '\n';

  core::VdmProtocol vdm;
  std::vector<double> slowness;
  for (const testbed::NodeHealth& h : pool.health) slowness.push_back(h.slowness);
  const testbed::FlakyMetric metric(std::make_unique<overlay::DelayMetric>(),
                                    std::move(slowness), 0.05);
  sim::Simulator simulator;
  testbed::ControllerParams cp;
  cp.source = 0;
  testbed::MainController controller(simulator, pool.topology.underlay, vdm,
                                     metric, cp, root.split(3));
  const testbed::SessionReport report = controller.run(scenario);

  banner("Figures 5.5/5.6 — sample overlay tree",
         note_expectation("nodes cluster by region; few transcontinental links"));
  std::cout << testbed::render_tree(controller.session().tree(), 0, pool.topology);

  const testbed::ClusterStats cs =
      testbed::cluster_stats(controller.session().tree(), 0, pool.topology);
  util::Table ct({"tree edges", "intra-region", "intra-continent", "cross-continent"});
  ct.add_row({std::to_string(cs.edges), std::to_string(cs.intra_region),
              std::to_string(cs.intra_continent), std::to_string(cs.cross_continent)});
  std::cout << '\n';
  ct.print(std::cout);
  std::cout << "intra-region fraction: "
            << util::Table::fmt(100 * cs.intra_region_fraction(), 1)
            << "%, cross-continent fraction: "
            << util::Table::fmt(100 * cs.cross_continent_fraction(), 1) << "%\n";
  std::cout << "final tree: " << report.final_tree.members
            << " members, stretch " << util::Table::fmt(report.final_tree.stretch_avg)
            << ", MST ratio " << util::Table::fmt(report.mst_ratio) << '\n';
  return 0;
}
