// Figures 5.7-5.13: the Chapter-5 head-to-head on the PlanetLab-like
// testbed — VDM vs HMTP across churn rates 2-10%: startup time,
// reconnection time, stretch, hopcount, resource usage, loss rate and
// control overhead. 100 members from a ~140-node US pool, degree 4,
// source in the US-Mountain (Colorado) region, 10 chunks/s, 5000 s runs.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds = static_cast<std::size_t>(
      flags.get_int("seeds", static_cast<std::int64_t>(experiments::default_seeds(5, 5))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 100));

  const std::vector<double> churn_rates{0.02, 0.04, 0.06, 0.08, 0.10};
  std::vector<TestbedConfig> configs;
  for (const double churn : churn_rates) {
    TestbedConfig cfg;
    cfg.members = members;
    cfg.churn_rate = churn;
    cfg.proto = TestbedConfig::Proto::kVdm;
    configs.push_back(cfg);
    cfg.proto = TestbedConfig::Proto::kHmtp;
    configs.push_back(cfg);
  }
  const std::vector<TestbedAggregate> aggs = run_testbed_grid(
      configs, seeds, static_cast<std::size_t>(flags.get_int("threads", 0)));

  struct Row {
    TestbedAggregate vdm, hmtp;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    rows.push_back(Row{aggs[2 * i], aggs[2 * i + 1]});
  }

  const std::string setup = "US testbed pool (~140 usable nodes), " + std::to_string(members) +
                            " members, degree 4, 10 chunks/s, 5000 s, " +
                            std::to_string(seeds) + " runs";

  auto emit = [&](const std::string& fig, const std::string& metric,
                  const std::string& expectation,
                  util::Summary TestbedAggregate::* field, int precision) {
    banner(fig + " — " + metric + " vs churn rate",
           setup + "\n" + note_expectation(expectation));
    util::Table t({"churn(%)", "VDM", "HMTP"});
    for (std::size_t i = 0; i < churn_rates.size(); ++i) {
      t.add_row({util::Table::fmt(100 * churn_rates[i], 0),
                 ci_cell(rows[i].vdm.*field, precision),
                 ci_cell(rows[i].hmtp.*field, precision)});
    }
    t.print(std::cout);
  };

  emit("Figure 5.7", "startup time (s)",
       "flat in churn; HMTP a little higher (more search steps)",
       &TestbedAggregate::startup_avg, 3);
  emit("Figure 5.8", "reconnection time (s)",
       "flat in churn; below startup time (search starts at grandparent)",
       &TestbedAggregate::reconnect_avg, 3);
  emit("Figure 5.9", "stretch", "VDM ~1.6 vs HMTP ~1.9",
       &TestbedAggregate::stretch, 3);
  emit("Figure 5.10", "hopcount", "VDM ~4.5 vs HMTP ~5.5, churn-independent",
       &TestbedAggregate::hop, 2);
  emit("Figure 5.11", "resource usage (sum of used virtual-link delays, s)",
       "VDM uses less than HMTP", &TestbedAggregate::usage, 3);
  emit("Figure 5.12", "loss rate", "increases with churn; VDM lower",
       &TestbedAggregate::loss, 5);
  emit("Figure 5.13", "overhead (control msgs per source chunk)",
       "HMTP much higher (30 s refinement messages)",
       &TestbedAggregate::overhead, 4);
  return 0;
}
