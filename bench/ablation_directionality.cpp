// Ablation: the two knobs of the directionality classifier.
//
//  * epsilon — the margin by which the longest side must win before a
//    triple counts as directional (0 = the paper's pure longest-side rule).
//  * case2_descend_ratio — the degenerate-Case-II guard: when the newcomer
//    is `ratio`x closer to the child than to the parent, follow the child
//    instead of splicing (0 = off = the paper's rule).
//
// Also reports how join searches resolve (Case I / II / III frequencies).

#include <memory>

#include "bench_common.hpp"
#include "baselines/mst_overlay.hpp"
#include "metrics/collector.hpp"
#include "overlay/scenario.hpp"
#include "topology/transit_stub.hpp"

using namespace vdm;
using namespace vdm::bench;

namespace {

struct AblationResult {
  double stress = 0, stretch = 0, hop = 0, usage = 0, mst = 0, overhead = 0;
  core::VdmProtocol::CaseStats cases;
};

AblationResult run_one(const core::VdmConfig& vc, std::uint64_t seed,
                       std::size_t members) {
  util::Rng root(seed);
  util::Rng topo_rng = root.split(1);
  topo::TransitStubParams tp;
  topo::HostAttachment hp;
  hp.num_hosts = members + members * 3 / 5 + 8;
  net::GraphUnderlay underlay = topo::make_transit_stub_underlay(tp, hp, topo_rng);

  core::VdmProtocol vdm(vc);
  overlay::DelayMetric metric;
  sim::Simulator simulator;
  overlay::SessionParams sp;
  sp.source = 0;
  sp.chunk_rate = 1.0;
  overlay::Session session(simulator, underlay, vdm, metric, sp, root.split(3));
  metrics::Collector collector(session);
  overlay::ScenarioParams sc;
  sc.target_members = members;
  sc.join_phase = 2000.0;
  sc.total_time = 10000.0;
  sc.churn_interval = 400.0;
  sc.settle_time = 100.0;
  sc.churn_rate = 0.05;
  overlay::ScenarioDriver driver(session, sc, root.split(2));
  driver.run([&](sim::Time t) { collector.capture(t); });

  AblationResult r;
  r.stress = collector.mean_stress(1);
  r.stretch = collector.mean_stretch(1);
  r.hop = collector.mean_hopcount(1);
  r.usage = collector.mean_network_usage(1);
  r.mst = baselines::mst_ratio(session.tree(), 0, underlay);
  r.overhead = collector.mean_overhead(1);
  r.cases = vdm.case_stats();
  return r;
}

AblationResult run_avg(const core::VdmConfig& vc, std::size_t seeds,
                       std::size_t members) {
  AblationResult acc;
  for (std::size_t s = 0; s < seeds; ++s) {
    const AblationResult r = run_one(vc, 500 + s, members);
    acc.stress += r.stress;
    acc.stretch += r.stretch;
    acc.hop += r.hop;
    acc.usage += r.usage;
    acc.mst += r.mst;
    acc.overhead += r.overhead;
    acc.cases.case1_attach += r.cases.case1_attach;
    acc.cases.case2_splice += r.cases.case2_splice;
    acc.cases.case2_adoptions += r.cases.case2_adoptions;
    acc.cases.case3_descents += r.cases.case3_descents;
    acc.cases.full_fallback_child += r.cases.full_fallback_child;
    acc.cases.full_fallback_descend += r.cases.full_fallback_descend;
  }
  const auto n = static_cast<double>(seeds);
  acc.stress /= n;
  acc.stretch /= n;
  acc.hop /= n;
  acc.usage /= n;
  acc.mst /= n;
  acc.overhead /= n;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds = static_cast<std::size_t>(
      flags.get_int("seeds", static_cast<std::int64_t>(experiments::default_seeds(3, 8))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 200));

  struct Variant {
    std::string name;
    core::VdmConfig vc;
  };
  std::vector<Variant> variants;
  for (const double eps : {0.0, 0.02, 0.05, 0.10}) {
    core::VdmConfig vc;
    vc.epsilon_rel = eps;
    variants.push_back({"eps=" + util::Table::fmt(eps, 2), vc});
  }
  for (const double ratio : {1.25, 1.5, 2.0, 3.0}) {
    core::VdmConfig vc;
    vc.case2_descend_ratio = ratio;
    variants.push_back({"c2ratio=" + util::Table::fmt(ratio, 2), vc});
  }

  banner("Ablation — directionality classifier knobs",
         "transit-stub 792 routers, " + std::to_string(members) + " members, churn 5%, " +
             std::to_string(seeds) + " seeds; first row = the paper's configuration");
  util::Table t({"variant", "stress", "stretch", "hop", "usage", "MST ratio", "overhead"});
  std::vector<AblationResult> results;
  for (const Variant& v : variants) {
    const AblationResult r = run_avg(v.vc, seeds, members);
    results.push_back(r);
    t.add_row({v.name, util::Table::fmt(r.stress), util::Table::fmt(r.stretch),
               util::Table::fmt(r.hop, 2), util::Table::fmt(r.usage, 2),
               util::Table::fmt(r.mst), util::Table::fmt(r.overhead, 4)});
  }
  t.print(std::cout);

  banner("Join-search resolution profile (counts across all joins)",
         "Case III does most of the walking; Case II splices are the paper's novelty");
  util::Table ct({"variant", "CaseI attach", "CaseII splice", "adoptions",
                  "CaseIII steps", "full->free child", "full->descend"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& c = results[i].cases;
    ct.add_row({variants[i].name, std::to_string(c.case1_attach),
                std::to_string(c.case2_splice), std::to_string(c.case2_adoptions),
                std::to_string(c.case3_descents), std::to_string(c.full_fallback_child),
                std::to_string(c.full_fallback_descend)});
  }
  ct.print(std::cout);
  return 0;
}
