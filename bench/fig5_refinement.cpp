// Figures 5.28-5.30: the refinement component (VDM-R, 5-minute period).
// Expectation: ~10% better stretch and a more balanced tree (lower
// hopcount), paid for in control overhead.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds = static_cast<std::size_t>(
      flags.get_int("seeds", static_cast<std::int64_t>(experiments::default_seeds(5, 5))));

  const std::vector<std::size_t> sizes{10, 20, 30, 40, 50};
  std::vector<TestbedConfig> configs;
  for (const std::size_t n : sizes) {
    TestbedConfig cfg;
    cfg.members = n;
    cfg.churn_rate = 0.05;
    cfg.proto = TestbedConfig::Proto::kVdm;
    configs.push_back(cfg);
    cfg.proto = TestbedConfig::Proto::kVdmRefine;
    configs.push_back(cfg);
  }
  const std::vector<TestbedAggregate> aggs = run_testbed_grid(
      configs, seeds, static_cast<std::size_t>(flags.get_int("threads", 0)));

  struct Row {
    TestbedAggregate vdm, vdm_r;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rows.push_back(Row{aggs[2 * i], aggs[2 * i + 1]});
  }

  const std::string setup = "US testbed pool (~140 usable nodes), churn 5%, degree 4, " +
                            std::to_string(seeds) + " runs; VDM-R refines every 5 min";

  auto emit = [&](const std::string& fig, const std::string& metric,
                  const std::string& expectation,
                  util::Summary TestbedAggregate::* field, int precision) {
    banner(fig + " — " + metric + " vs number of nodes",
           setup + "\n" + note_expectation(expectation));
    util::Table t({"nodes", "VDM", "VDM-R"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].vdm.*field, precision),
                 ci_cell(rows[i].vdm_r.*field, precision)});
    }
    t.print(std::cout);
  };

  emit("Figure 5.28", "stretch", "VDM-R ~10% better",
       &TestbedAggregate::stretch, 3);
  emit("Figure 5.29", "hopcount", "VDM-R lower (more balanced tree)",
       &TestbedAggregate::hop, 2);
  emit("Figure 5.30", "overhead (control msgs per source chunk)",
       "VDM-R clearly higher — the cost of refinement",
       &TestbedAggregate::overhead, 4);
  return 0;
}
