// Ablation: the quality-vs-overhead frontier of periodic refinement for
// both protocols. This is the design-space view behind the paper's §3.5
// argument — HMTP *needs* refinement to converge (its join misses the
// between cases), VDM gets most of the quality at join time.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds =
      static_cast<std::size_t>(flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(4, 16))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 200));

  RunConfig base;
  base.substrate = Substrate::kTransitStub;
  base.scenario.target_members = members;
  base.scenario.join_phase = 2000.0;
  base.scenario.total_time = 10000.0;
  base.scenario.churn_interval = 400.0;
  base.scenario.settle_time = 100.0;
  base.scenario.churn_rate = 0.05;
  base.session.chunk_rate = 1.0;
  base.seed = 600;

  struct Variant {
    std::string name;
    RunConfig cfg;
  };
  std::vector<Variant> variants;
  {
    RunConfig cfg = base;
    variants.push_back({"VDM (no refinement)", cfg});
  }
  for (const double period : {600.0, 180.0, 60.0}) {
    RunConfig cfg = base;
    cfg.protocol = Proto::kVdmRefine;
    cfg.vdm_refine_period = period;
    variants.push_back({"VDM-R " + util::Table::fmt(period, 0) + "s", cfg});
  }
  {
    RunConfig cfg = base;
    cfg.protocol = Proto::kHmtp;
    cfg.hmtp_refinement = false;
    variants.push_back({"HMTP (no refinement)", cfg});
  }
  for (const double period : {600.0, 120.0, 30.0}) {
    RunConfig cfg = base;
    cfg.protocol = Proto::kHmtp;
    cfg.hmtp_refine_period = period;
    variants.push_back({"HMTP " + util::Table::fmt(period, 0) + "s", cfg});
  }
  {
    RunConfig cfg = base;
    cfg.protocol = Proto::kBtp;
    variants.push_back({"BTP 30s (sibling switch)", cfg});
  }
  {
    RunConfig cfg = base;
    cfg.protocol = Proto::kRandom;
    variants.push_back({"Random join", cfg});
  }

  banner("Ablation — refinement period vs tree quality and overhead",
         "transit-stub 792 routers, " + std::to_string(members) + " members, churn 5%, " +
             std::to_string(seeds) + " seeds\n" +
             note_expectation("quality converges towards MST as refinement spends more "
                              "messages; VDM's join-only point sits far left on the "
                              "overhead axis"));
  std::vector<RunConfig> points;
  points.reserve(variants.size());
  for (const Variant& v : variants) points.push_back(v.cfg);
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::vector<AggregateResult> results = run_grid(points, seeds, sweep);

  util::Table t({"variant", "stress", "stretch", "usage", "MST ratio", "overhead"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const AggregateResult& r = results[i];
    t.add_row({variants[i].name, ci_cell(r.stress), ci_cell(r.stretch),
               ci_cell(r.network_usage, 2), ci_cell(r.mst_ratio),
               ci_cell(r.overhead, 4)});
  }
  t.print(std::cout);
  return 0;
}
