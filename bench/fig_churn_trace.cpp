// Workload trajectories: all four protocols under the workload engine's
// membership processes — the paper's fixed-rate slot timeline ("slots")
// against sustained Poisson churn, a diurnal arrival wave and heavy-tailed
// Pareto sessions (cs/9809102's dynamic-membership regime). The scenario rng
// stream depends only on the seed and scenario shape, so for a given seed
// every protocol faces the *identical* membership event trace — differences
// between columns are purely protocol behaviour. The trailing table plots
// the first seed's per-measurement trajectory (member count and delivered
// continuity over time) under the diurnal wave. No figure in the paper plots
// this; §3.6.2 defines the slot timeline the generated kinds replace. See
// EXPERIMENTS.md.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds = static_cast<std::size_t>(
      flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(4, 16))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 100));
  const double mean_session = flags.get_double("mean-session", 2000.0);

  RunConfig base;
  base.substrate = Substrate::kTransitStub;
  base.scenario.target_members = members;
  base.scenario.join_phase = 1000.0;
  base.scenario.total_time = 6000.0;
  base.scenario.churn_interval = 400.0;
  base.scenario.settle_time = 100.0;
  base.scenario.churn_rate = 0.05;
  base.scenario.crash_fraction = 0.25;
  base.session.chunk_rate = 1.0;
  base.session.faults.heartbeat_period = 1.0;
  base.session.faults.heartbeat_misses = 3;
  base.session.faults.heartbeat_timeout = 0.5;
  base.workload.mean_session = mean_session;
  base.keep_trajectory = true;
  base.seed = 900;

  const std::vector<overlay::WorkloadKind> workloads{
      overlay::WorkloadKind::kSlots, overlay::WorkloadKind::kPoisson,
      overlay::WorkloadKind::kDiurnal, overlay::WorkloadKind::kPareto};
  const std::vector<Proto> protocols{Proto::kVdm, Proto::kHmtp, Proto::kBtp,
                                     Proto::kRandom};

  // One flat grid: workload-major, protocol-minor.
  std::vector<RunConfig> points;
  for (const overlay::WorkloadKind wk : workloads) {
    for (const Proto proto : protocols) {
      RunConfig cfg = base;
      cfg.workload.kind = wk;
      cfg.protocol = proto;
      points.push_back(cfg);
    }
  }
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::vector<AggregateResult> results = run_grid(points, seeds, sweep);
  const auto at = [&](std::size_t w, std::size_t p) -> const AggregateResult& {
    return results[w * protocols.size() + p];
  };

  const std::string setup =
      "transit-stub 792 routers, " + std::to_string(members) + " members, " +
      std::to_string(seeds) + " seeds, mean session " +
      util::Table::fmt(mean_session, 0) +
      " s, crash fraction 25%, heartbeat 1 s x3 +0.5 s;\n"
      "per seed, all four protocols replay the identical membership trace";

  auto emit = [&](const std::string& metric, const std::string& expectation,
                  util::Summary AggregateResult::* field, int precision = 3) {
    banner("Workload churn — " + metric + " by membership process",
           setup + "\n" + note_expectation(expectation));
    util::Table t({"workload", "VDM", "HMTP", "BTP", "Random"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      t.add_row({std::string(overlay::workload_kind_name(workloads[w])),
                 ci_cell(at(w, 0).*field, precision),
                 ci_cell(at(w, 1).*field, precision),
                 ci_cell(at(w, 2).*field, precision),
                 ci_cell(at(w, 3).*field, precision)});
    }
    t.print(std::cout);
  };

  emit("loss rate",
       "sustained (non-slotted) churn overlaps departures with repairs, so "
       "every generated kind loses more than the settled slot timeline; "
       "heavy-tailed Pareto sessions churn the tree's young leaves hardest",
       &AggregateResult::loss, 5);
  emit("control overhead (msgs per data transmission)",
       "ordering as in Fig 3.28: Random < VDM < BTP << refining HMTP, "
       "roughly workload-independent (heartbeats dominate)",
       &AggregateResult::overhead, 4);
  emit("outage = detection + rejoin (s)",
       "detection-dominated and flat across workloads — the failure "
       "detector, not the arrival process, sets the floor",
       &AggregateResult::outage_avg);
  emit("stretch",
       "tree quality holds near the slot-timeline value under every "
       "arrival process (VDM lowest, Random highest)",
       &AggregateResult::stretch);

  // Time series under the diurnal wave: membership breathes with the
  // arrival-rate swing while delivered continuity stays pinned near 1.
  const std::size_t diurnal = 2;  // index in `workloads`
  banner("Diurnal trajectory (seed " + std::to_string(base.seed) + ")",
         setup + "\n" +
             note_expectation("member count follows the arrival wave; "
                              "continuity stays >= ~0.99 for every protocol "
                              "through both the crest and the trough"));
  util::Table traj(
      {"t", "members", "VDM", "HMTP", "BTP", "Random"});
  const std::vector<TrajectoryPoint>& lead =
      at(diurnal, 0).runs.front().trajectory;
  for (std::size_t i = 0; i < lead.size(); ++i) {
    std::vector<std::string> row{util::Table::fmt(lead[i].at, 0),
                                 std::to_string(lead[i].members)};
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      const std::vector<TrajectoryPoint>& tr =
          at(diurnal, p).runs.front().trajectory;
      row.push_back(i < tr.size() ? util::Table::fmt(tr[i].continuity, 5)
                                  : "-");
    }
    traj.add_row(std::move(row));
  }
  traj.print(std::cout);
  return 0;
}
