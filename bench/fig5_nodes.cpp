// Figures 5.14-5.20: VDM on the testbed as membership scales 20 -> 100:
// startup (avg/max), reconnection (avg/max), stretch (min/avg/leaf/max),
// hopcount (avg/leaf/max), resource usage, loss and overhead.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds = static_cast<std::size_t>(
      flags.get_int("seeds", static_cast<std::int64_t>(experiments::default_seeds(5, 5))));

  const std::vector<std::size_t> sizes{20, 40, 60, 80, 100};
  std::vector<TestbedConfig> configs;
  for (const std::size_t n : sizes) {
    TestbedConfig cfg;
    cfg.members = n;
    cfg.churn_rate = 0.05;
    configs.push_back(cfg);
  }
  const std::vector<TestbedAggregate> rows = run_testbed_grid(
      configs, seeds, static_cast<std::size_t>(flags.get_int("threads", 0)));

  const std::string setup = "US testbed pool (~140 usable nodes), VDM, churn 5%, degree 4, " +
                            std::to_string(seeds) + " runs";

  auto banner_for = [&](const std::string& fig, const std::string& what,
                        const std::string& expectation) {
    banner(fig + " — " + what + " vs number of nodes",
           setup + "\n" + note_expectation(expectation));
  };

  {
    banner_for("Figure 5.14", "startup time (s)",
               "grows slowly with N (log-depth searches); max ~3x avg");
    util::Table t({"nodes", "avg", "max"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].startup_avg),
                 ci_cell(rows[i].startup_max)});
    }
    t.print(std::cout);
  }
  {
    banner_for("Figure 5.15", "reconnection time (s)",
               "independent of N (starts at the grandparent)");
    util::Table t({"nodes", "avg", "max"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].reconnect_avg),
                 ci_cell(rows[i].reconnect_max)});
    }
    t.print(std::cout);
  }
  {
    banner_for("Figure 5.16", "stretch",
               "min < 1 (triangle violations), avg stabilizes ~1.5, max ~3");
    util::Table t({"nodes", "min", "avg", "leaf-avg", "max"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].stretch_min),
                 ci_cell(rows[i].stretch), ci_cell(rows[i].stretch_leaf),
                 ci_cell(rows[i].stretch_max)});
    }
    t.print(std::cout);
  }
  {
    banner_for("Figure 5.17", "hopcount", "~log N growth; avg ~4, max up to ~11");
    util::Table t({"nodes", "avg", "leaf-avg", "max"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].hop, 2),
                 ci_cell(rows[i].hop_leaf, 2), ci_cell(rows[i].hop_max, 2)});
    }
    t.print(std::cout);
  }
  {
    banner_for("Figure 5.18", "resource usage (s)", "grows with N");
    util::Table t({"nodes", "avg"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].usage)});
    }
    t.print(std::cout);
  }
  {
    banner_for("Figure 5.19", "loss rate",
               "grows with N (same churn rate hits more descendants)");
    util::Table t({"nodes", "avg"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].loss, 5)});
    }
    t.print(std::cout);
  }
  {
    banner_for("Figure 5.20", "overhead (control msgs per source chunk)",
               "grows with N (more nodes to query per join)");
    util::Table t({"nodes", "avg"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      t.add_row({std::to_string(sizes[i]), ci_cell(rows[i].overhead, 4)});
    }
    t.print(std::cout);
  }
  return 0;
}
