// Micro benchmarks (google-benchmark): the hot paths of the simulator and
// the O(log N) join-complexity claim of §3.2.3.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/directionality.hpp"
#include "core/vdm_protocol.hpp"
#include "net/routing.hpp"
#include "overlay/session.hpp"
#include "sim/simulator.hpp"
#include "topology/mst.hpp"
#include "topology/transit_stub.hpp"

namespace {

using namespace vdm;

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>((i * 2654435761u) % 1000003),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_DijkstraTransitStub(benchmark::State& state) {
  util::Rng rng(1);
  topo::TransitStubParams tp;  // 792 routers, the paper's topology
  const topo::TransitStubTopology topo = topo::make_transit_stub(tp, rng);
  const net::Router router(topo.graph);
  net::NodeId src = 0;
  for (auto _ : state) {
    router.clear_cache();
    benchmark::DoNotOptimize(router.delay(src, static_cast<net::NodeId>(
                                                   topo.graph.num_nodes() - 1)));
    src = (src + 37) % static_cast<net::NodeId>(topo.graph.num_nodes());
  }
}
BENCHMARK(BM_DijkstraTransitStub);

void BM_ClassifyDirection(benchmark::State& state) {
  double a = 0.080, b = 0.030, c = 0.055;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classify_direction(a, b, c));
    std::swap(a, b);
    std::swap(b, c);
  }
}
BENCHMARK(BM_ClassifyDirection);

/// §3.2.3: join cost should grow with log N, not N. The per-join iteration
/// count (and message count) is the protocol-level cost; wall time per join
/// at each N makes the sub-linear growth visible in the report.
void BM_VdmJoinIntoTreeOfN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  topo::TransitStubParams tp;
  topo::HostAttachment hp;
  hp.num_hosts = n + 2;
  const net::GraphUnderlay underlay = topo::make_transit_stub_underlay(tp, hp, rng);

  core::VdmProtocol vdm;
  overlay::DelayMetric metric;
  sim::Simulator simulator;
  overlay::SessionParams sp;
  sp.source = 0;
  sp.data_plane = false;
  overlay::Session session(simulator, underlay, vdm, metric, sp, rng.split(1));
  session.start();
  for (net::HostId h = 1; h <= n; ++h) session.join(h, 4);

  const net::HostId probe = static_cast<net::HostId>(n + 1);
  std::int64_t iterations_total = 0;
  std::int64_t joins = 0;
  for (auto _ : state) {
    const overlay::TimingRecord rec = session.join(probe, 4);
    iterations_total += rec.iterations;
    ++joins;
    state.PauseTiming();
    session.leave(probe);
    state.ResumeTiming();
  }
  state.counters["search_iters_per_join"] =
      benchmark::Counter(static_cast<double>(iterations_total) / static_cast<double>(joins));
}
BENCHMARK(BM_VdmJoinIntoTreeOfN)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_PrimMstOverHosts(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  topo::TransitStubParams tp;
  topo::HostAttachment hp;
  hp.num_hosts = n;
  const net::GraphUnderlay underlay = topo::make_transit_stub_underlay(tp, hp, rng);
  std::vector<net::HostId> members(n);
  for (net::HostId h = 0; h < n; ++h) members[h] = h;
  const auto metric = [&underlay](net::HostId a, net::HostId b) {
    return underlay.rtt(a, b);
  };
  // Warm the routing caches so the benchmark measures Prim, not Dijkstra.
  (void)topo::prim_mst(members, 0, metric);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::prim_mst(members, 0, metric).total_cost);
  }
}
BENCHMARK(BM_PrimMstOverHosts)->Arg(50)->Arg(100)->Arg(200);

void BM_ChunkFloodOverTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  topo::TransitStubParams tp;
  topo::HostAttachment hp;
  hp.num_hosts = n + 1;
  const net::GraphUnderlay underlay = topo::make_transit_stub_underlay(tp, hp, rng);
  core::VdmProtocol vdm;
  overlay::DelayMetric metric;
  sim::Simulator simulator;
  overlay::SessionParams sp;
  sp.source = 0;
  sp.chunk_rate = 1000.0;  // one chunk per step() below
  overlay::Session session(simulator, underlay, vdm, metric, sp, rng.split(1));
  session.start();
  for (net::HostId h = 1; h <= n; ++h) session.join(h, 4);
  for (auto _ : state) {
    simulator.step();  // each step delivers one chunk down the whole tree
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChunkFloodOverTree)->Arg(100)->Arg(500);

}  // namespace
