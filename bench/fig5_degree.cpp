// Figures 5.21-5.27: VDM on the testbed as the node degree (children
// capacity) sweeps 2 -> 8. The paper's observation: every metric improves
// until degree ~5, after which the tree stops changing because VDM does
// not exploit capacity it does not need.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds = static_cast<std::size_t>(
      flags.get_int("seeds", static_cast<std::int64_t>(experiments::default_seeds(5, 5))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 100));

  const std::vector<int> degrees{2, 3, 4, 5, 6, 7, 8};
  std::vector<TestbedConfig> configs;
  for (const int d : degrees) {
    TestbedConfig cfg;
    cfg.members = members;
    cfg.churn_rate = 0.05;
    cfg.degree = d;
    cfg.source_degree = d;
    configs.push_back(cfg);
  }
  const std::vector<TestbedAggregate> rows = run_testbed_grid(
      configs, seeds, static_cast<std::size_t>(flags.get_int("threads", 0)));

  const std::string setup = "US testbed pool (~140 usable nodes), VDM, " + std::to_string(members) +
                            " members, churn 5%, " + std::to_string(seeds) + " runs";

  auto emit = [&](const std::string& fig, const std::string& what,
                  const std::string& expectation,
                  const std::vector<std::pair<std::string, util::Summary TestbedAggregate::*>>& cols,
                  int precision) {
    banner(fig + " — " + what + " vs node degree",
           setup + "\n" + note_expectation(expectation));
    std::vector<std::string> headers{"degree"};
    for (const auto& [name, field] : cols) headers.push_back(name);
    util::Table t(headers);
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      std::vector<std::string> row{std::to_string(degrees[i])};
      for (const auto& [name, field] : cols) row.push_back(ci_cell(rows[i].*field, precision));
      t.add_row(row);
    }
    t.print(std::cout);
  };

  emit("Figure 5.21", "startup time (s)",
       "decreases until degree ~4-5, then flat",
       {{"avg", &TestbedAggregate::startup_avg}, {"max", &TestbedAggregate::startup_max}}, 3);
  emit("Figure 5.22", "reconnection time (s)", "no clear dependence on degree",
       {{"avg", &TestbedAggregate::reconnect_avg}, {"max", &TestbedAggregate::reconnect_max}}, 3);
  emit("Figure 5.23", "stretch", "decreasing to a knee near degree 5",
       {{"min", &TestbedAggregate::stretch_min},
        {"avg", &TestbedAggregate::stretch},
        {"leaf-avg", &TestbedAggregate::stretch_leaf},
        {"max", &TestbedAggregate::stretch_max}}, 3);
  emit("Figure 5.24", "hopcount", "~6 at degree 2, ~4 at degree 5, flat after",
       {{"avg", &TestbedAggregate::hop},
        {"leaf-avg", &TestbedAggregate::hop_leaf},
        {"max", &TestbedAggregate::hop_max}}, 2);
  emit("Figure 5.25", "resource usage (s)", "improves with degree, then flat",
       {{"avg", &TestbedAggregate::usage}}, 3);
  emit("Figure 5.26", "loss rate", "higher at small degree (longer paths)",
       {{"avg", &TestbedAggregate::loss}}, 5);
  emit("Figure 5.27", "overhead (control msgs per source chunk)",
       "high at degree 2, decreasing to a plateau around degree 5",
       {{"avg", &TestbedAggregate::overhead}}, 4);
  return 0;
}
