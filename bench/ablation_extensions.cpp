// Ablation: the paper's optional / future-work components, quantified.
//
//  * Foster-child quick start for HMTP (§2.4.7) — startup time drops to one
//    handshake; message cost unchanged.
//  * Playout buffering (§5.4.3) — a couple of seconds of buffer absorbs the
//    reconnection jitter, collapsing the churn-driven loss rate.
//  * Cached measurement service (§6.2) — makes loss-based virtual distances
//    affordable: probe bursts are paid once per pair per TTL.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds =
      static_cast<std::size_t>(flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(4, 16))));

  RunConfig base;
  base.substrate = Substrate::kTransitStub;
  base.scenario.target_members = 150;
  base.scenario.join_phase = 2000.0;
  base.scenario.total_time = 8000.0;
  base.scenario.churn_interval = 400.0;
  base.scenario.settle_time = 100.0;
  base.scenario.churn_rate = 0.05;
  base.session.chunk_rate = 2.0;
  base.seed = 700;

  // All three ablation tables as one flat grid sweep.
  std::vector<RunConfig> points;
  for (const bool foster : {false, true}) {
    RunConfig cfg = base;
    cfg.protocol = Proto::kHmtp;
    cfg.hmtp_foster_child = foster;
    points.push_back(cfg);
  }
  const std::vector<double> buffers{0.0, 0.5, 2.0, 10.0};
  for (const double buffer : buffers) {
    RunConfig cfg = base;
    cfg.scenario.churn_rate = 0.10;
    cfg.session.buffer_seconds = buffer;
    points.push_back(cfg);
  }
  struct V {
    const char* name;
    Metric metric;
  };
  const std::vector<V> metric_variants{V{"delay (VDM-D)", Metric::kDelay},
                                       V{"loss (VDM-L)", Metric::kLoss},
                                       V{"loss + cache", Metric::kCachedLoss}};
  for (const V& v : metric_variants) {
    RunConfig cfg = base;
    cfg.metric = v.metric;
    cfg.link_loss_max = 0.02;
    points.push_back(cfg);
  }
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::vector<AggregateResult> results = run_grid(points, seeds, sweep);
  std::size_t next = 0;

  banner("Ablation — foster-child quick start (HMTP §2.4.7)",
         "transit-stub, 150 members, churn 5%, " + std::to_string(seeds) + " seeds\n" +
             note_expectation("startup collapses to ~one handshake; overhead unchanged"));
  {
    util::Table t({"variant", "startup avg (s)", "startup max (s)", "stretch", "overhead"});
    for (const bool foster : {false, true}) {
      const AggregateResult& r = results[next++];
      t.add_row({foster ? "HMTP + foster child" : "HMTP", ci_cell(r.startup_avg),
                 ci_cell(r.startup_max), ci_cell(r.stretch), ci_cell(r.overhead, 4)});
    }
    t.print(std::cout);
  }

  banner("Ablation — playout buffer vs churn loss (§5.4.3)",
         "VDM, churn 10%\n" +
             note_expectation("a couple of seconds of buffer hides reconnection outages"));
  {
    util::Table t({"buffer (s)", "loss rate", "reconnect avg (s)"});
    for (const double buffer : buffers) {
      const AggregateResult& r = results[next++];
      t.add_row({util::Table::fmt(buffer, 1), ci_cell(r.loss, 5),
                 ci_cell(r.reconnect_avg)});
    }
    t.print(std::cout);
  }

  banner("Ablation — cached measurement service for VDM-L (§6.2)",
         "link error U[0%,2%]\n" +
             note_expectation("caching recovers most of the probe-burst cost while keeping "
                              "the loss-optimized tree"));
  {
    util::Table t({"virtual distance", "loss rate", "stretch", "startup avg (s)", "overhead"});
    for (const V& v : metric_variants) {
      const AggregateResult& r = results[next++];
      t.add_row({v.name, ci_cell(r.loss, 4), ci_cell(r.stretch),
                 ci_cell(r.startup_avg), ci_cell(r.overhead, 4)});
    }
    t.print(std::cout);
  }
  return 0;
}
