// Figures 3.25-3.28: stress / stretch / loss / overhead vs churn rate,
// VDM against HMTP on the GT-ITM transit-stub substrate (NS-2 setting:
// 792 routers, 200 members, 10000 s sessions, 400 s churn slots, degree
// limits U[2,5], 90% CIs across seeds).
//
// HMTP appears twice: with its periodic refinement (the deployable
// protocol; 30 s period as stated in §5.4.2) and with refinement disabled
// (matching VDM's zero-maintenance operating point). See EXPERIMENTS.md.

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds =
      static_cast<std::size_t>(flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(6, 32))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 200));

  RunConfig base;
  base.substrate = Substrate::kTransitStub;
  base.scenario.target_members = members;
  base.scenario.join_phase = 2000.0;
  base.scenario.total_time = 10000.0;
  base.scenario.churn_interval = 400.0;
  base.scenario.settle_time = 100.0;
  base.session.chunk_rate = 1.0;
  base.seed = 100;

  const std::vector<double> churn_rates{0.01, 0.03, 0.05, 0.07, 0.10};

  // One flat grid: (churn rate x {VDM, HMTP, HMTP-norefine}), three points
  // per churn in the same order the serial loop ran them.
  std::vector<RunConfig> points;
  for (const double churn : churn_rates) {
    RunConfig cfg = base;
    cfg.scenario.churn_rate = churn;
    points.push_back(cfg);
    cfg.protocol = Proto::kHmtp;
    points.push_back(cfg);
    cfg.hmtp_refinement = false;
    points.push_back(cfg);
  }
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  std::vector<AggregateResult> results = run_grid(points, seeds, sweep);

  struct Row {
    AggregateResult vdm, hmtp, hmtp_nr;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    rows.push_back(Row{std::move(results[3 * i]), std::move(results[3 * i + 1]),
                       std::move(results[3 * i + 2])});
  }

  const std::string setup =
      "transit-stub 792 routers, " + std::to_string(members) + " members, " +
      std::to_string(seeds) + " seeds, degree U[2,5], 10000 s";

  auto emit = [&](const std::string& fig, const std::string& metric,
                  const std::string& expectation,
                  util::Summary AggregateResult::* field, int precision = 3) {
    banner(fig + " — " + metric + " vs churn", setup + "\n" + note_expectation(expectation));
    util::Table t({"churn(%)", "VDM", "HMTP", "HMTP-norefine"});
    for (std::size_t i = 0; i < churn_rates.size(); ++i) {
      t.add_row({util::Table::fmt(100 * churn_rates[i], 0), ci_cell(rows[i].vdm.*field, precision),
                 ci_cell(rows[i].hmtp.*field, precision), ci_cell(rows[i].hmtp_nr.*field, precision)});
    }
    t.print(std::cout);
  };

  emit("Figure 3.25", "stress",
       "both ~1.45-1.75, VDM slightly lower, flat in churn",
       &AggregateResult::stress);
  emit("Figure 3.26", "stretch",
       "VDM below HMTP, mildly increasing with churn",
       &AggregateResult::stretch);
  emit("Figure 3.27", "loss rate",
       "small (churn-driven only), VDM below HMTP, increasing with churn",
       &AggregateResult::loss, 5);
  emit("Figure 3.28", "control overhead (msgs per data transmission)",
       "linear in churn; VDM well below refining HMTP (paper: 2.2% vs ~5%)",
       &AggregateResult::overhead, 4);
  return 0;
}
