#pragma once

// Shared plumbing for the figure-reproduction benches: banner printing,
// CI-formatted cells, and a Chapter-5-style testbed sweep helper that runs
// the full MainController / scenario-file / node-pool pipeline per seed.

#include <cstdio>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/hmtp_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "experiments/runner.hpp"
#include "experiments/sweep.hpp"
#include "testbed/controller.hpp"
#include "testbed/node_pool.hpp"
#include "testbed/scenario_file.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"

namespace vdm::bench {

inline void banner(const std::string& title, const std::string& setup) {
  std::cout << "\n=== " << title << " ===\n" << setup << "\n\n";
}

/// "mean ±ci" cell.
inline std::string ci_cell(const util::Summary& s, int precision = 3) {
  return util::Table::fmt(s.mean, precision) + " ±" +
         util::Table::fmt(s.ci_halfwidth, precision);
}

inline std::string note_expectation(const std::string& text) {
  return "paper expectation: " + text;
}

// ------------------------------------------------------------ testbed sweep

/// One Chapter-5 testbed configuration (a synthetic PlanetLab deployment).
struct TestbedConfig {
  std::size_t pool_size = 170;  // filters down to ~140 usable, the paper's pool
  bool world = false;           // us_regions() vs world_regions()
  std::size_t members = 100;
  double churn_rate = 0.05;
  sim::Time join_phase = 2000.0;
  sim::Time total_time = 5000.0;
  sim::Time churn_interval = 400.0;
  int degree = 4;
  int source_degree = 4;
  double chunk_rate = 10.0;
  double probe_noise = 0.05;
  enum class Proto { kVdm, kVdmRefine, kHmtp } proto = Proto::kVdm;
  std::uint64_t seed = 1;
};

/// Builds a pool, filters it, generates a scenario file, and drives the
/// MainController — the whole §5.2 pipeline — returning the session report.
inline testbed::SessionReport run_testbed_once(const TestbedConfig& cfg) {
  util::Rng root(cfg.seed);
  util::Rng pool_rng = root.split(1);
  util::Rng scenario_rng = root.split(2);
  util::Rng session_rng = root.split(3);

  testbed::PoolParams pp;
  pp.num_nodes = cfg.pool_size;
  const testbed::NodePool pool = testbed::make_pool(
      pp, cfg.world ? topo::world_regions() : topo::us_regions(), pool_rng);

  testbed::ScenarioSpec spec;
  for (const net::HostId h : pool.usable_nodes()) {
    if (h != 0) spec.nodes.push_back(h);
  }
  spec.members = cfg.members;
  spec.join_phase = cfg.join_phase;
  spec.total_time = cfg.total_time;
  spec.churn_interval = cfg.churn_interval;
  spec.churn_rate = cfg.churn_rate;
  spec.degree_min = spec.degree_max = cfg.degree;
  const testbed::Scenario scenario = testbed::generate_scenario(spec, scenario_rng);

  std::unique_ptr<overlay::Protocol> protocol;
  switch (cfg.proto) {
    case TestbedConfig::Proto::kVdm:
      protocol = std::make_unique<core::VdmProtocol>();
      break;
    case TestbedConfig::Proto::kVdmRefine: {
      core::VdmConfig vc;
      vc.refinement = true;
      vc.refinement_period = sim::minutes(5);  // the paper's §5.4.5 period
      protocol = std::make_unique<core::VdmProtocol>(vc);
      break;
    }
    case TestbedConfig::Proto::kHmtp:
      protocol = std::make_unique<baselines::HmtpProtocol>();
      break;
  }

  std::vector<double> slowness;
  slowness.reserve(pool.health.size());
  for (const testbed::NodeHealth& h : pool.health) slowness.push_back(h.slowness);
  const testbed::FlakyMetric metric(std::make_unique<overlay::DelayMetric>(),
                                    std::move(slowness), cfg.probe_noise);

  sim::Simulator simulator;
  testbed::ControllerParams cp;
  cp.source = 0;
  cp.source_degree = cfg.source_degree;
  cp.chunk_rate = cfg.chunk_rate;
  testbed::MainController controller(simulator, pool.topology.underlay,
                                     *protocol, metric, cp, session_rng);
  return controller.run(scenario);
}

/// Aggregate of one testbed configuration over several seeds.
struct TestbedAggregate {
  util::Summary startup_avg, startup_max, reconnect_avg, reconnect_max,
      stretch, stretch_min, stretch_leaf, stretch_max, hop, hop_leaf, hop_max,
      usage, loss, overhead, mst_ratio;
};

/// Folds one configuration's per-seed reports (in seed order) into the
/// aggregate. Separated from the sweep so the serial and parallel paths
/// share one accumulation, bit for bit.
inline TestbedAggregate aggregate_testbed(const TestbedConfig& cfg,
                                          std::span<const testbed::SessionReport> reports) {
  std::vector<double> su, su_mx, rc, rc_mx, st, st_min, st_leaf, st_max, hp,
      hp_leaf, hp_max, us, lo, ov, mr;
  for (const testbed::SessionReport& r : reports) {
    const util::Summary s_start = util::summarize(r.startup_times);
    su.push_back(s_start.mean);
    su_mx.push_back(s_start.max);
    if (!r.reconnect_times.empty()) {
      const util::Summary s_rec = util::summarize(r.reconnect_times);
      rc.push_back(s_rec.mean);
      rc_mx.push_back(s_rec.max);
    }
    // Tree metrics: average across the post-warmup snapshots (one final
    // snapshot alone is too noisy for 90% CIs over a handful of runs).
    util::OnlineStats a_st, a_min, a_leaf, a_max, a_hp, a_hpl, a_hpm, a_us;
    for (const metrics::EpochSample& e : r.epochs) {
      if (e.at < cfg.join_phase) continue;
      a_st.add(e.tree.stretch_avg);
      a_min.add(e.tree.stretch_min);
      a_leaf.add(e.tree.stretch_leaf_avg);
      a_max.add(e.tree.stretch_max);
      a_hp.add(e.tree.hop_avg);
      a_hpl.add(e.tree.hop_leaf_avg);
      a_hpm.add(e.tree.hop_max);
      a_us.add(e.tree.network_usage);
    }
    st.push_back(a_st.mean());
    st_min.push_back(a_min.mean());
    st_leaf.push_back(a_leaf.mean());
    st_max.push_back(a_max.mean());
    hp.push_back(a_hp.mean());
    hp_leaf.push_back(a_hpl.mean());
    hp_max.push_back(a_hpm.mean());
    us.push_back(a_us.mean());
    lo.push_back(r.loss_rate);
    ov.push_back(r.overhead_per_chunk);
    mr.push_back(r.mst_ratio);
  }
  TestbedAggregate agg;
  agg.startup_avg = util::summarize(su);
  agg.startup_max = util::summarize(su_mx);
  agg.reconnect_avg = util::summarize(rc);
  agg.reconnect_max = util::summarize(rc_mx);
  agg.stretch = util::summarize(st);
  agg.stretch_min = util::summarize(st_min);
  agg.stretch_leaf = util::summarize(st_leaf);
  agg.stretch_max = util::summarize(st_max);
  agg.hop = util::summarize(hp);
  agg.hop_leaf = util::summarize(hp_leaf);
  agg.hop_max = util::summarize(hp_max);
  agg.usage = util::summarize(us);
  agg.loss = util::summarize(lo);
  agg.overhead = util::summarize(ov);
  agg.mst_ratio = util::summarize(mr);
  return agg;
}

/// Runs every (config, seed) combination as one flat task set on the shared
/// TaskPool and aggregates per config, in config order. Seeding matches the
/// classic serial loop (seed = 1 + i per config) and each report lands in a
/// slot addressed by its flattened index, so the output is bit-identical to
/// run_testbed_many over each config for every thread count.
inline std::vector<TestbedAggregate> run_testbed_grid(
    const std::vector<TestbedConfig>& configs, std::size_t seeds,
    std::size_t threads = 0) {
  if (configs.empty() || seeds == 0) return {};
  std::vector<testbed::SessionReport> reports(configs.size() * seeds);
  util::TaskPool::global().for_n(
      reports.size(), threads, [&](const util::TaskPool::Context& ctx) {
        TestbedConfig cfg = configs[ctx.index / seeds];
        cfg.seed = 1 + ctx.index % seeds;
        reports[ctx.index] = run_testbed_once(cfg);
      });
  std::vector<TestbedAggregate> out;
  out.reserve(configs.size());
  const std::span<const testbed::SessionReport> all(reports);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out.push_back(aggregate_testbed(configs[c], all.subspan(c * seeds, seeds)));
  }
  return out;
}

inline TestbedAggregate run_testbed_many(TestbedConfig cfg, std::size_t seeds,
                                         std::size_t threads = 0) {
  return run_testbed_grid({cfg}, seeds, threads).front();
}

}  // namespace vdm::bench
