// Figures 4.6-4.9: delay-based VDM-D vs loss-based VDM-L over time, on a
// transit-stub network whose physical links carry random error rates in
// [0%, 2%]. 50 nodes join per interval (no churn); after each batch the
// settled tree is measured. Expectation: VDM-L trades stress/stretch for a
// clearly lower loss rate — the generalization payoff of Chapter 4.

#include <map>

#include "bench_common.hpp"

using namespace vdm;
using namespace vdm::bench;
using namespace vdm::experiments;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t seeds =
      static_cast<std::size_t>(flags.get_int("seeds", static_cast<std::int64_t>(default_seeds(6, 32))));
  const auto members = static_cast<std::size_t>(flags.get_int("members", 200));

  auto make_config = [&](Metric metric) {
    RunConfig cfg;
    cfg.substrate = Substrate::kTransitStub;
    cfg.metric = metric;
    cfg.link_loss_max = 0.02;  // "random error rate between 0% and 2%"
    cfg.scenario.batched_joins = true;
    cfg.scenario.batch_size = 50;
    cfg.scenario.target_members = members;
    cfg.scenario.churn_interval = 500.0;
    cfg.scenario.settle_time = 100.0;
    cfg.scenario.total_time = 500.0 * ((members + 49) / 50) + 100.0;
    cfg.session.chunk_rate = 1.0;
    cfg.keep_epochs = true;
    cfg.epoch_skip = 0;
    cfg.seed = 400;
    return cfg;
  };

  // Both metric variants as one grid sweep.
  SweepOptions sweep;
  sweep.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::vector<RunConfig> points{make_config(Metric::kDelay),
                                      make_config(Metric::kLoss)};
  const std::vector<AggregateResult> aggs = run_grid(points, seeds, sweep);

  // Per-epoch averages across seeds for the two metrics.
  struct Series {
    std::vector<double> at, stress, stretch, loss, overhead;
  };
  auto run_series = [&](const AggregateResult& agg) {
    Series s;
    const std::size_t epochs = agg.runs.front().epochs.size();
    for (std::size_t e = 0; e < epochs; ++e) {
      double at = 0, stress = 0, stretch = 0, loss = 0, overhead = 0;
      for (const RunResult& r : agg.runs) {
        at += r.epochs[e].at;
        stress += r.epochs[e].tree.stress_avg;
        stretch += r.epochs[e].tree.stretch_avg;
        loss += r.epochs[e].loss_rate;
        overhead += r.epochs[e].overhead;
      }
      const auto n = static_cast<double>(agg.runs.size());
      s.at.push_back(at / n);
      s.stress.push_back(stress / n);
      s.stretch.push_back(stretch / n);
      s.loss.push_back(loss / n);
      s.overhead.push_back(overhead / n);
    }
    return s;
  };

  const Series vdm_d = run_series(aggs[0]);
  const Series vdm_l = run_series(aggs[1]);

  const std::string setup =
      "transit-stub 792 routers, link error U[0%,2%], 50 joins per interval to " +
      std::to_string(members) + " members, " + std::to_string(seeds) + " seeds";

  auto emit = [&](const std::string& fig, const std::string& metric,
                  const std::string& expectation,
                  std::vector<double> Series::* field, int precision) {
    banner(fig + " — " + metric + " vs time", setup + "\n" + note_expectation(expectation));
    util::Table t({"time(s)", "VDM-L", "VDM-D"});
    for (std::size_t e = 0; e < vdm_d.at.size(); ++e) {
      t.add_row({util::Table::fmt(vdm_d.at[e], 0),
                 util::Table::fmt((vdm_l.*field)[e], precision),
                 util::Table::fmt((vdm_d.*field)[e], precision)});
    }
    t.print(std::cout);
  };

  emit("Figure 4.6", "stress", "both rise with joins; VDM-L above VDM-D (~1.9 vs ~1.7)",
       &Series::stress, 3);
  emit("Figure 4.7", "stretch", "VDM-D gives the better (lower) path stretch",
       &Series::stretch, 3);
  emit("Figure 4.8", "loss rate", "VDM-L clearly below VDM-D (the headline win)",
       &Series::loss, 4);
  emit("Figure 4.9", "overhead", "VDM-L's accounted overhead lower per data message",
       &Series::overhead, 4);
  return 0;
}
