#include "topology/geo.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace vdm::topo {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;

double deg2rad(double d) { return d * kPi / 180.0; }
}  // namespace

std::vector<GeoRegion> us_regions() {
  return {
      {"US-West", 37.4, -122.1, 2.0},     // Bay Area
      {"US-Northwest", 47.6, -122.3, 1.0},
      {"US-Mountain", 39.7, -105.0, 1.0},  // Colorado (the paper's source)
      {"US-Central", 41.9, -87.6, 1.5},    // Chicago
      {"US-South", 32.8, -96.8, 1.0},      // Dallas
      {"US-East", 40.7, -74.0, 2.0},       // NYC corridor
      {"US-Southeast", 33.7, -84.4, 1.0},  // Atlanta
  };
}

std::vector<GeoRegion> world_regions() {
  auto regions = us_regions();
  regions.push_back({"EU-West", 51.5, -0.1, 1.5});     // London
  regions.push_back({"EU-Central", 48.1, 11.6, 1.5});  // Munich
  regions.push_back({"EU-North", 59.3, 18.1, 0.7});    // Stockholm
  regions.push_back({"Asia-East", 35.7, 139.7, 1.0});  // Tokyo
  regions.push_back({"Asia-South", 1.35, 103.8, 0.5}); // Singapore
  regions.push_back({"Oceania", -33.9, 151.2, 0.4});   // Sydney
  return regions;
}

double great_circle_km(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = deg2rad(lat1);
  const double phi2 = deg2rad(lat2);
  const double dphi = deg2rad(lat2 - lat1);
  const double dlambda = deg2rad(lon2 - lon1);
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) * std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

GeoTopology make_geo(const GeoParams& params, util::Rng& rng) {
  std::vector<GeoHost> hosts;
  std::vector<double> delay;
  std::vector<double> loss;
  make_geo_into(params, rng, hosts, delay, loss);

  const std::vector<GeoRegion> regions =
      params.regions.empty() ? us_regions() : params.regions;
  std::vector<std::string> region_names;
  region_names.reserve(regions.size());
  for (const auto& r : regions) region_names.push_back(r.name);

  const std::size_t n = params.num_hosts;
  return GeoTopology{std::move(hosts), std::move(region_names),
                     net::MatrixUnderlay(n, std::move(delay), std::move(loss))};
}

void make_geo_into(const GeoParams& params, util::Rng& rng,
                   std::vector<GeoHost>& hosts, std::vector<double>& delay,
                   std::vector<double>& loss) {
  VDM_REQUIRE(params.num_hosts >= 2);
  const std::vector<GeoRegion> regions =
      params.regions.empty() ? us_regions() : params.regions;
  double total_weight = 0.0;
  for (const auto& r : regions) total_weight += r.weight;
  VDM_REQUIRE(total_weight > 0.0);

  hosts.clear();
  hosts.reserve(params.num_hosts);
  for (std::size_t h = 0; h < params.num_hosts; ++h) {
    double pick = rng.uniform(0.0, total_weight);
    std::size_t region = 0;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      pick -= regions[r].weight;
      if (pick <= 0.0) {
        region = r;
        break;
      }
    }
    hosts.push_back(GeoHost{
        regions[region].lat_deg + rng.normal(0.0, params.scatter_deg),
        regions[region].lon_deg + rng.normal(0.0, params.scatter_deg),
        region,
    });
  }

  const std::size_t n = params.num_hosts;
  delay.assign(n * n, 0.0);
  loss.assign(n * n, 0.0);
  bool any_loss = false;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double km = great_circle_km(hosts[a].lat_deg, hosts[a].lon_deg,
                                        hosts[b].lat_deg, hosts[b].lon_deg);
      const double inflation = rng.uniform(params.inflation_min, params.inflation_max);
      const double d = std::max(params.min_delay, km * inflation / params.propagation_kms);
      delay[a * n + b] = delay[b * n + a] = d;
      double l = params.loss_base + params.loss_per_1000km * km / 1000.0;
      if (params.loss_noise > 0.0) l += rng.uniform(0.0, params.loss_noise);
      l = std::clamp(l, 0.0, params.loss_max);
      loss[a * n + b] = loss[b * n + a] = l;
      if (l > 0.0) any_loss = true;
    }
  }
  if (!any_loss) loss.clear();  // clear() keeps capacity for the next reuse
}

}  // namespace vdm::topo
