#pragma once

#include <vector>

#include "net/coord_underlay.hpp"
#include "topology/geo.hpp"
#include "util/rng.hpp"

namespace vdm::topo {

/// Which embedded space make_coord_into draws host coordinates in.
enum class CoordSpace {
  kGeo,    ///< lat/lon placements around population hubs (the geo model)
  kPlane,  ///< uniform placements in a km square (synthetic, for large N)
};

struct CoordParams {
  std::size_t num_hosts = 100;
  CoordSpace space = CoordSpace::kGeo;
  /// kGeo: population hubs (defaults to us_regions()) and per-host scatter —
  /// exactly the placement model of make_geo_into, minus the O(N²) matrix
  /// fill that follows it there.
  std::vector<GeoRegion> regions;
  double scatter_deg = 2.5;
  /// kPlane: hosts land uniformly in a square of this side length, km
  /// (continental scale by default).
  double plane_side_km = 6000.0;
};

/// Draws per-host coordinates into the parallel arrays `x`/`y` (lat/lon
/// degrees for kGeo, km for kPlane), resized in place with capacity kept.
/// O(N): two or three rng draws per host and zero pairwise state, so a
/// million-host pool builds in milliseconds.
void make_coord_into(const CoordParams& params, util::Rng& rng,
                     std::vector<double>& x, std::vector<double>& y);

/// Convenience: coordinates plus a ready CoordUnderlay. The underlay's
/// coordinate space is forced to match `params.space` (spherical for kGeo,
/// Euclidean for kPlane); the remaining `underlay_params` knobs pass through.
net::CoordUnderlay make_coord(const CoordParams& params, util::Rng& rng,
                              net::CoordUnderlay::Params underlay_params = {});

}  // namespace vdm::topo
