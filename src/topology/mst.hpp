#pragma once

#include <functional>
#include <vector>

#include "net/types.hpp"

namespace vdm::topo {

/// Pairwise metric over hosts (e.g. RTT through an Underlay).
using HostMetric = std::function<double(net::HostId, net::HostId)>;

/// A spanning tree over a host set, rooted at `root`.
struct SpanningTree {
  net::HostId root = net::kInvalidHost;
  /// parent[i] indexes into `members`; root's parent is kInvalidHost.
  std::vector<net::HostId> parent;
  /// The host ids the tree spans, parallel to `parent`.
  std::vector<net::HostId> members;
  /// Sum of metric over tree edges.
  double total_cost = 0.0;
};

/// Exact minimum spanning tree over `members` under `metric` (Prim,
/// O(n^2) on the dense host metric). The reference line of Figure 5.31.
SpanningTree prim_mst(const std::vector<net::HostId>& members, net::HostId root,
                      const HostMetric& metric);

/// Reusable working set for prim_mst_cost. Callers that compute the ratio
/// every run keep one of these warm so the O(n) label arrays (and the member
/// gather buffer, which the caller fills) stop costing an allocation per run.
struct MstScratch {
  std::vector<net::HostId> members;  ///< caller-filled member gather buffer
  std::vector<char> in_tree;
  std::vector<double> best;

  std::size_t capacity_bytes() const {
    return members.capacity() * sizeof(net::HostId) + in_tree.capacity() +
           best.capacity() * sizeof(double);
  }
};

/// Total cost of the exact MST over `scratch.members` (same tree as
/// prim_mst, cost only): no parent array is produced, so nothing is
/// allocated once `scratch` is warm.
double prim_mst_cost(net::HostId root, const HostMetric& metric,
                     MstScratch& scratch);

/// Degree-constrained spanning tree via Prim with a per-node residual-degree
/// filter (greedy; DCMST is NP-hard, this is the practical reference the
/// paper's "converge to MST within degree constraints" goal implies).
/// degree_limit[i] bounds the tree degree (children + parent) of members[i].
SpanningTree degree_constrained_tree(const std::vector<net::HostId>& members,
                                     net::HostId root, const HostMetric& metric,
                                     const std::vector<int>& degree_limit);

/// Total cost of an arbitrary parent-indexed tree under `metric`
/// (for comparing a protocol's tree against the MST).
double tree_cost(const SpanningTree& tree, const HostMetric& metric);

}  // namespace vdm::topo
