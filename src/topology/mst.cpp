#include "topology/mst.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace vdm::topo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t index_of(const std::vector<net::HostId>& members, net::HostId h) {
  const auto it = std::find(members.begin(), members.end(), h);
  VDM_REQUIRE_MSG(it != members.end(), "root must be a member");
  return static_cast<std::size_t>(it - members.begin());
}
}  // namespace

SpanningTree prim_mst(const std::vector<net::HostId>& members, net::HostId root,
                      const HostMetric& metric) {
  VDM_REQUIRE(!members.empty());
  const std::size_t n = members.size();
  const std::size_t root_idx = index_of(members, root);

  SpanningTree tree;
  tree.root = root;
  tree.members = members;
  tree.parent.assign(n, net::kInvalidHost);

  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, n);
  best[root_idx] = 0.0;

  for (std::size_t step = 0; step < n; ++step) {
    std::size_t u = n;
    double u_cost = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && best[i] < u_cost) {
        u_cost = best[i];
        u = i;
      }
    }
    VDM_REQUIRE_MSG(u < n, "metric produced an unreachable member");
    in_tree[u] = 1;
    if (u != root_idx) {
      tree.parent[u] = static_cast<net::HostId>(best_from[u]);
      tree.total_cost += u_cost;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v] || v == u) continue;
      const double w = metric(members[u], members[v]);
      if (w < best[v]) {
        best[v] = w;
        best_from[v] = u;
      }
    }
  }
  return tree;
}

double prim_mst_cost(net::HostId root, const HostMetric& metric,
                     MstScratch& scratch) {
  const std::vector<net::HostId>& members = scratch.members;
  VDM_REQUIRE(!members.empty());
  const std::size_t n = members.size();
  const std::size_t root_idx = index_of(members, root);

  scratch.in_tree.assign(n, 0);
  scratch.best.assign(n, kInf);
  scratch.best[root_idx] = 0.0;
  std::vector<char>& in_tree = scratch.in_tree;
  std::vector<double>& best = scratch.best;

  double total_cost = 0.0;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t u = n;
    double u_cost = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && best[i] < u_cost) {
        u_cost = best[i];
        u = i;
      }
    }
    VDM_REQUIRE_MSG(u < n, "metric produced an unreachable member");
    in_tree[u] = 1;
    if (u != root_idx) total_cost += u_cost;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v] || v == u) continue;
      const double w = metric(members[u], members[v]);
      if (w < best[v]) best[v] = w;
    }
  }
  return total_cost;
}

SpanningTree degree_constrained_tree(const std::vector<net::HostId>& members,
                                     net::HostId root, const HostMetric& metric,
                                     const std::vector<int>& degree_limit) {
  VDM_REQUIRE(members.size() == degree_limit.size());
  const std::size_t n = members.size();
  const std::size_t root_idx = index_of(members, root);

  SpanningTree tree;
  tree.root = root;
  tree.members = members;
  tree.parent.assign(n, net::kInvalidHost);

  // Residual tree degree: attaching a child costs the parent one unit; a
  // non-root node spends one unit on its own parent link.
  std::vector<int> residual(degree_limit);
  for (std::size_t i = 0; i < n; ++i) {
    VDM_REQUIRE_MSG(degree_limit[i] >= 1, "every node needs degree >= 1");
    if (i != root_idx) --residual[i];
  }

  std::vector<char> in_tree(n, 0);
  in_tree[root_idx] = 1;
  for (std::size_t step = 1; step < n; ++step) {
    // Cheapest edge from any in-tree node with residual capacity to any
    // outside node.
    std::size_t best_u = n, best_v = n;
    double best_w = kInf;
    for (std::size_t u = 0; u < n; ++u) {
      if (!in_tree[u] || residual[u] <= 0) continue;
      for (std::size_t v = 0; v < n; ++v) {
        if (in_tree[v]) continue;
        const double w = metric(members[u], members[v]);
        if (w < best_w) {
          best_w = w;
          best_u = u;
          best_v = v;
        }
      }
    }
    VDM_REQUIRE_MSG(best_v < n,
                    "degree limits too tight to span all members");
    in_tree[best_v] = 1;
    --residual[best_u];
    tree.parent[best_v] = static_cast<net::HostId>(best_u);
    tree.total_cost += best_w;
  }
  return tree;
}

double tree_cost(const SpanningTree& tree, const HostMetric& metric) {
  double cost = 0.0;
  for (std::size_t i = 0; i < tree.parent.size(); ++i) {
    if (tree.parent[i] == net::kInvalidHost) continue;
    cost += metric(tree.members[i], tree.members[tree.parent[i]]);
  }
  return cost;
}

}  // namespace vdm::topo
