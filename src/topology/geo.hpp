#pragma once

#include <string>
#include <vector>

#include "net/matrix_underlay.hpp"
#include "util/rng.hpp"

namespace vdm::topo {

/// A population hub around which synthetic "PlanetLab sites" scatter.
struct GeoRegion {
  std::string name;
  double lat_deg;
  double lon_deg;
  double weight;  // relative share of hosts
};

/// Hub sets mirroring the dissertation's deployments: a US-only pool (the
/// VDM-vs-HMTP runs used ~140 US nodes, source in Colorado) and a
/// world-wide pool (the sample-tree figures with US + Europe clustering).
std::vector<GeoRegion> us_regions();
std::vector<GeoRegion> world_regions();

struct GeoParams {
  std::size_t num_hosts = 100;
  std::vector<GeoRegion> regions;  // defaults to us_regions() when empty
  /// Scatter of a host around its hub, degrees of lat/lon (std. deviation).
  double scatter_deg = 2.5;
  /// Signal propagation speed in fiber, km/s (~2/3 c).
  double propagation_kms = 200000.0;
  /// Path-inflation factor range: real Internet routes are 1.3-2.5x longer
  /// than great-circle. Sampled once per host pair, symmetric.
  double inflation_min = 1.4, inflation_max = 2.4;
  /// Floor on one-way delay (local processing + last mile), seconds.
  double min_delay = 0.0005;
  /// Per-pair loss model: base + per-1000km component + noise, clamped.
  double loss_base = 0.0;
  double loss_per_1000km = 0.0;
  double loss_noise = 0.0;
  double loss_max = 0.05;
};

struct GeoHost {
  double lat_deg;
  double lon_deg;
  std::size_t region;  // index into params.regions
};

/// A PlanetLab-like latency space: host coordinates plus a symmetric
/// host-to-host delay/loss matrix exposed through the Underlay interface.
struct GeoTopology {
  std::vector<GeoHost> hosts;
  std::vector<std::string> region_names;
  net::MatrixUnderlay underlay;
};

/// Great-circle distance in km (haversine, Earth radius 6371 km).
double great_circle_km(double lat1, double lon1, double lat2, double lon2);

GeoTopology make_geo(const GeoParams& params, util::Rng& rng);

/// Arena variant: same draws as make_geo, but host placements and the n*n
/// delay/loss matrices land in the caller's buffers (resized in place,
/// capacity kept; `loss` is left empty for a loss-free model). The caller
/// seats the matrices via net::MatrixUnderlay::rebind (or the constructor).
void make_geo_into(const GeoParams& params, util::Rng& rng,
                   std::vector<GeoHost>& hosts, std::vector<double>& delay,
                   std::vector<double>& loss);

}  // namespace vdm::topo
