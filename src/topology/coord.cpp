#include "topology/coord.hpp"

#include <utility>

#include "util/require.hpp"

namespace vdm::topo {

void make_coord_into(const CoordParams& params, util::Rng& rng,
                     std::vector<double>& x, std::vector<double>& y) {
  VDM_REQUIRE(params.num_hosts >= 2);
  x.clear();
  y.clear();
  x.reserve(params.num_hosts);
  y.reserve(params.num_hosts);

  if (params.space == CoordSpace::kPlane) {
    VDM_REQUIRE(params.plane_side_km > 0.0);
    for (std::size_t h = 0; h < params.num_hosts; ++h) {
      x.push_back(rng.uniform(0.0, params.plane_side_km));
      y.push_back(rng.uniform(0.0, params.plane_side_km));
    }
    return;
  }

  // Geo mode: the same weighted-hub pick + normal scatter that
  // make_geo_into uses for host placement, so coordinate-substrate pools
  // cluster like the PlanetLab-style ones do.
  const std::vector<GeoRegion> regions =
      params.regions.empty() ? us_regions() : params.regions;
  double total_weight = 0.0;
  for (const auto& r : regions) total_weight += r.weight;
  VDM_REQUIRE(total_weight > 0.0);

  for (std::size_t h = 0; h < params.num_hosts; ++h) {
    double pick = rng.uniform(0.0, total_weight);
    std::size_t region = 0;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      pick -= regions[r].weight;
      if (pick <= 0.0) {
        region = r;
        break;
      }
    }
    x.push_back(regions[region].lat_deg + rng.normal(0.0, params.scatter_deg));
    y.push_back(regions[region].lon_deg + rng.normal(0.0, params.scatter_deg));
  }
}

net::CoordUnderlay make_coord(const CoordParams& params, util::Rng& rng,
                              net::CoordUnderlay::Params underlay_params) {
  underlay_params.space = params.space == CoordSpace::kGeo
                              ? net::CoordUnderlay::Space::kSpherical
                              : net::CoordUnderlay::Space::kEuclidean;
  std::vector<double> x;
  std::vector<double> y;
  make_coord_into(params, rng, x, y);
  return net::CoordUnderlay(underlay_params, std::move(x), std::move(y));
}

}  // namespace vdm::topo
