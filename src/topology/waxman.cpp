#include "topology/waxman.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "util/require.hpp"

namespace vdm::topo {

namespace {

double dist(const std::pair<double, double>& a, const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

/// Disjoint-set over node ids for the connectivity repair pass.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

WaxmanTopology make_waxman(const WaxmanParams& p, util::Rng& rng) {
  WaxmanTopology topo;
  make_waxman(p, rng, topo);
  return topo;
}

void make_waxman(const WaxmanParams& p, util::Rng& rng, WaxmanTopology& topo) {
  VDM_REQUIRE(p.num_routers >= 2);
  VDM_REQUIRE(p.alpha > 0.0 && p.beta > 0.0);

  topo.graph.clear();
  topo.coords.clear();
  topo.graph.add_nodes(p.num_routers);
  topo.coords.reserve(p.num_routers);
  for (std::size_t i = 0; i < p.num_routers; ++i) {
    topo.coords.emplace_back(rng.next_double(), rng.next_double());
  }

  const double L = std::sqrt(2.0);
  UnionFind uf(p.num_routers);
  auto add = [&](std::size_t u, std::size_t v) {
    const double d = dist(topo.coords[u], topo.coords[v]);
    const double delay = std::max(p.min_delay, d * p.delay_per_unit);
    const double loss = p.loss_max > 0.0 ? rng.uniform(p.loss_min, p.loss_max) : 0.0;
    topo.graph.add_link(static_cast<net::NodeId>(u), static_cast<net::NodeId>(v), delay, loss);
    uf.unite(u, v);
  };

  for (std::size_t u = 0; u < p.num_routers; ++u) {
    for (std::size_t v = u + 1; v < p.num_routers; ++v) {
      const double prob = p.alpha * std::exp(-dist(topo.coords[u], topo.coords[v]) / (p.beta * L));
      if (rng.chance(prob)) add(u, v);
    }
  }

  // Bridge remaining components via their closest cross pairs so routing is
  // total. This adds only short, geometrically sensible links.
  bool merged = true;
  while (merged) {
    merged = false;
    std::size_t best_u = 0, best_v = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < p.num_routers && best_d > 0.0; ++u) {
      for (std::size_t v = u + 1; v < p.num_routers; ++v) {
        if (uf.find(u) == uf.find(v)) continue;
        const double d = dist(topo.coords[u], topo.coords[v]);
        if (d < best_d) {
          best_d = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best_d < std::numeric_limits<double>::infinity()) {
      add(best_u, best_v);
      merged = true;
    }
  }

  VDM_REQUIRE(topo.graph.connected(topo.visited_scratch, topo.stack_scratch));
}

}  // namespace vdm::topo
