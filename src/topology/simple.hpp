#pragma once

#include "net/graph.hpp"

namespace vdm::topo {

/// Tiny deterministic topologies for unit tests and worked examples.
/// Delays are uniform `delay` per link unless stated otherwise; these are
/// the shapes in which the paper's three directionality cases have known
/// ground-truth answers.

/// Path 0 - 1 - ... - (n-1).
net::Graph make_line(std::size_t n, double delay = 0.010, double loss = 0.0);

/// Cycle of n >= 3 nodes.
net::Graph make_ring(std::size_t n, double delay = 0.010, double loss = 0.0);

/// Hub 0 with n-1 spokes.
net::Graph make_star(std::size_t n, double delay = 0.010, double loss = 0.0);

/// rows x cols 4-neighbour grid; node (r, c) has id r*cols + c.
net::Graph make_grid(std::size_t rows, std::size_t cols, double delay = 0.010,
                     double loss = 0.0);

/// Complete graph K_n.
net::Graph make_complete(std::size_t n, double delay = 0.010, double loss = 0.0);

}  // namespace vdm::topo
