#include "topology/transit_stub.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace vdm::topo {

namespace {

double pick_delay(util::Rng& rng, double lo, double hi) {
  return rng.uniform(lo, hi);
}

double pick_loss(util::Rng& rng, double lo, double hi) {
  if (hi <= 0.0) return 0.0;
  return rng.uniform(lo, hi);
}

/// Connects `members` into a random spanning tree (uniform attachment order)
/// and sprinkles extra edges with probability `extra_prob` per absent pair.
/// `order` is caller-provided scratch (one buffer serves every domain of a
/// generation, so the ~100 domains of a default graph cost zero allocations
/// once it is warm).
void connect_domain(net::Graph& graph, const std::vector<net::NodeId>& members,
                    double extra_prob, double delay_lo, double delay_hi,
                    double loss_lo, double loss_hi, util::Rng& rng,
                    std::vector<net::NodeId>& order) {
  if (members.size() <= 1) return;
  order.assign(members.begin(), members.end());
  rng.shuffle(order);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    graph.add_link(order[i], order[j], pick_delay(rng, delay_lo, delay_hi),
                   pick_loss(rng, loss_lo, loss_hi));
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (rng.chance(extra_prob)) {
        graph.add_link(members[i], members[j], pick_delay(rng, delay_lo, delay_hi),
                       pick_loss(rng, loss_lo, loss_hi));
      }
    }
  }
}

}  // namespace

TransitStubTopology make_transit_stub(const TransitStubParams& p, util::Rng& rng) {
  TransitStubTopology topo;
  make_transit_stub(p, rng, topo);
  return topo;
}

void make_transit_stub(const TransitStubParams& p, util::Rng& rng,
                       TransitStubTopology& topo) {
  VDM_REQUIRE(p.transit_domains >= 1 && p.routers_per_transit >= 1);
  VDM_REQUIRE(p.routers_per_stub >= 1);

  topo.graph.clear();
  topo.transit_routers.clear();
  topo.stub_routers.clear();
  topo.stub_domain_of.clear();
  net::Graph& g = topo.graph;

  // Domain-shuffle scratch shared by every connect_domain call below.
  std::vector<net::NodeId>& order = topo.order_scratch;

  // 1. Transit domains.
  std::vector<std::vector<net::NodeId>>& transit = topo.transit_scratch;
  transit.resize(p.transit_domains);
  for (auto& domain : transit) {
    domain.clear();
    domain.reserve(p.routers_per_transit);
    for (std::size_t i = 0; i < p.routers_per_transit; ++i) {
      const net::NodeId v = g.add_node();
      domain.push_back(v);
      topo.transit_routers.push_back(v);
      topo.stub_domain_of.push_back(~0u);
    }
    connect_domain(g, domain, p.intra_domain_edge_prob, p.transit_transit_delay_min,
                   p.transit_transit_delay_max, p.loss_min, p.loss_max, rng,
                   order);
  }

  // 2. Inter-transit-domain links: a ring guarantees connectivity, extra
  //    random domain pairs add the meshiness real cores have.
  auto random_member = [&](const std::vector<net::NodeId>& domain) {
    return domain[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(domain.size()) - 1))];
  };
  for (std::size_t d = 0; d + 1 < transit.size(); ++d) {
    g.add_link(random_member(transit[d]), random_member(transit[d + 1]),
               pick_delay(rng, p.transit_transit_delay_min, p.transit_transit_delay_max),
               pick_loss(rng, p.loss_min, p.loss_max));
  }
  if (transit.size() > 2) {
    g.add_link(random_member(transit.back()), random_member(transit.front()),
               pick_delay(rng, p.transit_transit_delay_min, p.transit_transit_delay_max),
               pick_loss(rng, p.loss_min, p.loss_max));
  }
  for (std::size_t a = 0; a < transit.size(); ++a) {
    for (std::size_t b = a + 2; b < transit.size(); ++b) {
      if (rng.chance(p.extra_transit_link_prob)) {
        g.add_link(random_member(transit[a]), random_member(transit[b]),
                   pick_delay(rng, p.transit_transit_delay_min, p.transit_transit_delay_max),
                   pick_loss(rng, p.loss_min, p.loss_max));
      }
    }
  }

  // 3. Stub domains hanging off each transit router. One member buffer
  //    serves every stub domain.
  std::uint32_t stub_domain_index = 0;
  std::vector<net::NodeId>& stub = topo.stub_scratch;
  for (const net::NodeId anchor : topo.transit_routers) {
    for (std::size_t s = 0; s < p.stub_domains_per_transit_router; ++s) {
      stub.clear();
      stub.reserve(p.routers_per_stub);
      for (std::size_t i = 0; i < p.routers_per_stub; ++i) {
        const net::NodeId v = g.add_node();
        stub.push_back(v);
        topo.stub_routers.push_back(v);
        topo.stub_domain_of.push_back(stub_domain_index);
      }
      connect_domain(g, stub, p.intra_domain_edge_prob, p.stub_stub_delay_min,
                     p.stub_stub_delay_max, p.loss_min, p.loss_max, rng, order);
      // Gateway link from the stub domain up to its transit router.
      g.add_link(random_member(stub), anchor,
                 pick_delay(rng, p.transit_stub_delay_min, p.transit_stub_delay_max),
                 pick_loss(rng, p.loss_min, p.loss_max));
      ++stub_domain_index;
    }
  }

  // stub_scratch doubles as the DFS stack: its stub-domain duty ended above.
  VDM_REQUIRE_MSG(g.connected(topo.visited_scratch, topo.stub_scratch),
                  "generator must produce a connected graph");
}

void attach_hosts_into(net::Graph& graph,
                       const std::vector<net::NodeId>& candidates,
                       const HostAttachment& params, util::Rng& rng,
                       std::vector<net::NodeId>& hosts_out) {
  VDM_REQUIRE(!candidates.empty());
  VDM_REQUIRE(params.num_hosts >= 1);
  hosts_out.clear();
  hosts_out.reserve(params.num_hosts);
  for (std::size_t h = 0; h < params.num_hosts; ++h) {
    const net::NodeId router = candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    const net::NodeId host = graph.add_node();
    graph.add_link(host, router,
                   rng.uniform(params.access_delay_min, params.access_delay_max),
                   params.loss_max > 0.0 ? rng.uniform(params.loss_min, params.loss_max) : 0.0);
    hosts_out.push_back(host);
  }
}

net::GraphUnderlay attach_hosts(net::Graph graph,
                                const std::vector<net::NodeId>& candidates,
                                const HostAttachment& params, util::Rng& rng) {
  std::vector<net::NodeId> hosts;
  attach_hosts_into(graph, candidates, params, rng, hosts);
  return net::GraphUnderlay(std::move(graph), std::move(hosts));
}

net::GraphUnderlay make_transit_stub_underlay(const TransitStubParams& topo_params,
                                              const HostAttachment& host_params,
                                              util::Rng& rng) {
  TransitStubTopology topo = make_transit_stub(topo_params, rng);
  return attach_hosts(std::move(topo.graph), topo.stub_routers, host_params, rng);
}

}  // namespace vdm::topo
