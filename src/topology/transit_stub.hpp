#pragma once

#include <vector>

#include "net/graph.hpp"
#include "net/graph_underlay.hpp"
#include "util/rng.hpp"

namespace vdm::topo {

/// GT-ITM-style transit-stub topology generator.
///
/// The Internet model behind the paper's Chapter 3/4 experiments: a core of
/// interconnected transit domains, each transit router anchoring several
/// stub domains. Link delays fall into three classes (transit-transit >
/// transit-stub > intra-stub), which is exactly the heterogeneity that makes
/// "connect nodes in the same direction" pay off.
struct TransitStubParams {
  // Defaults yield 4*6 transit + 4*6*4*8 stub = 792 routers, the paper's size.
  std::size_t transit_domains = 4;
  std::size_t routers_per_transit = 6;
  std::size_t stub_domains_per_transit_router = 4;
  std::size_t routers_per_stub = 8;

  /// Extra random edge probability inside a domain beyond the connecting tree.
  double intra_domain_edge_prob = 0.4;
  /// Extra transit-domain-to-transit-domain links beyond the connecting ring.
  double extra_transit_link_prob = 0.3;

  // One-way link delay ranges in seconds, per class.
  double transit_transit_delay_min = 0.020, transit_transit_delay_max = 0.060;
  double transit_stub_delay_min = 0.005, transit_stub_delay_max = 0.020;
  double stub_stub_delay_min = 0.001, stub_stub_delay_max = 0.005;

  /// Per-link random error rate range (used by the Chapter-4 experiments:
  /// "each physical link is assigned a random error rate between 0% and 2%").
  double loss_min = 0.0, loss_max = 0.0;

  std::size_t num_routers() const {
    const std::size_t transit = transit_domains * routers_per_transit;
    return transit + transit * stub_domains_per_transit_router * routers_per_stub;
  }
};

/// Generated router topology plus the structural metadata host attachment
/// needs (which routers are stub routers).
struct TransitStubTopology {
  net::Graph graph;
  std::vector<net::NodeId> transit_routers;
  std::vector<net::NodeId> stub_routers;
  /// stub_domain_of[v] for stub routers: dense domain index (metadata for
  /// locality-aware experiments); kInvalidNode-equivalent for transit.
  std::vector<std::uint32_t> stub_domain_of;

  // Generator working buffers (domain shuffle order, per-transit-domain
  // member lists, stub member list). They live on the topology so that the
  // arena variant of make_transit_stub keeps them warm across runs; their
  // contents between calls are scratch, not output.
  std::vector<net::NodeId> order_scratch;
  std::vector<std::vector<net::NodeId>> transit_scratch;
  std::vector<net::NodeId> stub_scratch;
  std::vector<char> visited_scratch;  ///< connectivity-check DFS buffer
};

/// Builds the router graph. Deterministic in `rng`.
TransitStubTopology make_transit_stub(const TransitStubParams& params, util::Rng& rng);

/// Arena variant: rebuilds into `out`, clearing its graph and metadata
/// vectors but keeping their capacity — repeated same-sized generations are
/// allocation-free. Produces the identical topology for the same rng state.
void make_transit_stub(const TransitStubParams& params, util::Rng& rng,
                       TransitStubTopology& out);

/// Host-attachment parameters shared by all router-graph generators.
struct HostAttachment {
  std::size_t num_hosts = 200;
  /// Access-link one-way delay range, seconds (last-mile).
  double access_delay_min = 0.0005;
  double access_delay_max = 0.0030;
  /// Access-link loss range.
  double loss_min = 0.0, loss_max = 0.0;
};

/// Attaches hosts to uniformly random routers from `candidates` via access
/// links and wraps everything in a routable underlay.
net::GraphUnderlay attach_hosts(net::Graph graph,
                                const std::vector<net::NodeId>& candidates,
                                const HostAttachment& params, util::Rng& rng);

/// Arena variant: appends hosts to `graph` in place and records their
/// vertices in `hosts_out` (cleared first, capacity kept). Same rng draws
/// and topology as attach_hosts; the caller seats the result via
/// GraphUnderlay::rebind (or the constructor).
void attach_hosts_into(net::Graph& graph,
                       const std::vector<net::NodeId>& candidates,
                       const HostAttachment& params, util::Rng& rng,
                       std::vector<net::NodeId>& hosts_out);

/// One-call convenience: transit-stub routers + hosts on stub routers.
net::GraphUnderlay make_transit_stub_underlay(const TransitStubParams& topo_params,
                                              const HostAttachment& host_params,
                                              util::Rng& rng);

}  // namespace vdm::topo
