#include "topology/simple.hpp"

#include "util/require.hpp"

namespace vdm::topo {

net::Graph make_line(std::size_t n, double delay, double loss) {
  VDM_REQUIRE(n >= 1);
  net::Graph g;
  g.add_nodes(n);
  for (net::NodeId i = 0; i + 1 < n; ++i) g.add_link(i, i + 1, delay, loss);
  return g;
}

net::Graph make_ring(std::size_t n, double delay, double loss) {
  VDM_REQUIRE(n >= 3);
  net::Graph g = make_line(n, delay, loss);
  g.add_link(static_cast<net::NodeId>(n - 1), 0, delay, loss);
  return g;
}

net::Graph make_star(std::size_t n, double delay, double loss) {
  VDM_REQUIRE(n >= 2);
  net::Graph g;
  g.add_nodes(n);
  for (net::NodeId i = 1; i < n; ++i) g.add_link(0, i, delay, loss);
  return g;
}

net::Graph make_grid(std::size_t rows, std::size_t cols, double delay, double loss) {
  VDM_REQUIRE(rows >= 1 && cols >= 1);
  net::Graph g;
  g.add_nodes(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<net::NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_link(id(r, c), id(r, c + 1), delay, loss);
      if (r + 1 < rows) g.add_link(id(r, c), id(r + 1, c), delay, loss);
    }
  }
  return g;
}

net::Graph make_complete(std::size_t n, double delay, double loss) {
  VDM_REQUIRE(n >= 2);
  net::Graph g;
  g.add_nodes(n);
  for (net::NodeId i = 0; i < n; ++i)
    for (net::NodeId j = i + 1; j < n; ++j) g.add_link(i, j, delay, loss);
  return g;
}

}  // namespace vdm::topo
