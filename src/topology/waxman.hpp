#pragma once

#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace vdm::topo {

/// Waxman random-graph generator — the classic flat Internet model, used as
/// an alternative substrate to cross-check that VDM's advantage is not an
/// artifact of transit-stub structure.
///
/// Routers are placed uniformly in the unit square; the pair (u, v) gets a
/// link with probability alpha * exp(-d(u,v) / (beta * L)) where L = sqrt(2)
/// is the maximal distance. Link delay is proportional to Euclidean
/// distance. Connectivity is guaranteed afterwards by bridging components
/// with their geometrically closest pairs.
struct WaxmanParams {
  std::size_t num_routers = 200;
  double alpha = 0.15;
  double beta = 0.25;
  /// Delay of a link spanning the full unit distance, seconds.
  double delay_per_unit = 0.060;
  /// Minimum delay floor so collocated routers still cost something.
  double min_delay = 0.0005;
  double loss_min = 0.0, loss_max = 0.0;
};

struct WaxmanTopology {
  net::Graph graph;
  /// Unit-square coordinates, index = NodeId.
  std::vector<std::pair<double, double>> coords;

  // Connectivity-check working buffers; kept here so the arena variant's
  // final validation is allocation-free once warm.
  std::vector<char> visited_scratch;
  std::vector<net::NodeId> stack_scratch;
};

WaxmanTopology make_waxman(const WaxmanParams& params, util::Rng& rng);

/// Arena variant: rebuilds into `out`, clearing graph and coords but keeping
/// their capacity. Identical topology for the same rng state.
void make_waxman(const WaxmanParams& params, util::Rng& rng, WaxmanTopology& out);

}  // namespace vdm::topo
