#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>

#include "net/types.hpp"

namespace vdm::wire {

/// Compact, versioned binary codec for every control/data exchange the
/// protocol performs (DESIGN.md §14). One datagram carries one frame:
///
///   magic(2) version(1) type(1) length(2) payload(length)
///
/// All integers are little-endian, encoded byte-by-byte so the format is
/// identical on any host. Doubles travel as their IEEE-754 bit pattern in a
/// u64. Encode and decode are zero-allocation: encode writes into a
/// caller-provided span, decode reads field-by-field out of the input span,
/// and variable payloads (chunk bodies) stay views into the input buffer.
///
/// The catalogue mirrors the exchanges the simulator's Session performs
/// implicitly as C++ calls — probe request/reply, join/splice/adopt,
/// heartbeat, leave/crash notice, chunk relay — plus the bootstrap and
/// reporting messages the dissertation's MainController/VDMAgent deployment
/// needed (hello/welcome, stats, shutdown).

inline constexpr std::uint16_t kMagic = 0x564d;  // "VM"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 6;
/// Fits one UDP datagram on any sane MTU; the length field is validated
/// against this before any payload read.
inline constexpr std::size_t kMaxPayload = 1400;
inline constexpr std::size_t kMaxFrame = kHeaderBytes + kMaxPayload;

enum class Type : std::uint8_t {
  kHello = 1,       // agent -> controller: here I am, my receive port
  kWelcome,         // controller -> agent: your HostId and the session shape
  kProbeRequest,    // controller -> agent: measure RTT to target
  kProbeReply,      // agent -> controller: measured RTT
  kPing,            // agent -> agent: RTT probe echo request
  kPong,            // agent -> agent: RTT probe echo reply
  kJoinRequest,     // agent -> controller: let me join with this fanout
  kJoinReply,       // controller -> agent: your parent (the join verdict)
  kSetParent,       // controller -> agent: re-parent (splice); invalid = detach
  kAdopt,           // controller -> agent: add this child to your relay set
  kDropChild,       // controller -> agent: remove this child
  kAck,             // generic acknowledgement of a token-carrying request
  kHeartbeat,       // child -> parent: are you alive
  kHeartbeatAck,    // parent -> child: yes
  kLeaveNotice,     // graceful departure notice
  kCrashNotice,     // controller -> agent: die without a leave notice (tests)
  kChunk,           // parent -> child: one data chunk, relayed down the tree
  kStatsRequest,    // controller -> agent: report your counters
  kStatsReply,      // agent -> controller: delivery/relay/heartbeat counters
  kShutdown,        // controller -> agent: clean exit
};
inline constexpr std::uint8_t kMaxType = static_cast<std::uint8_t>(Type::kShutdown);

const char* type_name(Type t);

// ------------------------------------------------------------- message types

struct Hello {
  std::uint16_t listen_port = 0;
  friend bool operator==(const Hello&, const Hello&) = default;
};

struct Welcome {
  net::HostId host_id = net::kInvalidHost;
  std::uint32_t num_hosts = 0;
  friend bool operator==(const Welcome&, const Welcome&) = default;
};

struct ProbeRequest {
  std::uint32_t token = 0;
  net::HostId target_host = net::kInvalidHost;
  std::uint32_t target_ip = 0;  // IPv4, host byte order
  std::uint16_t target_port = 0;
  friend bool operator==(const ProbeRequest&, const ProbeRequest&) = default;
};

struct ProbeReply {
  std::uint32_t token = 0;
  net::HostId target_host = net::kInvalidHost;
  double rtt_seconds = 0.0;
  friend bool operator==(const ProbeReply&, const ProbeReply&) = default;
};

struct Ping {
  std::uint32_t token = 0;
  friend bool operator==(const Ping&, const Ping&) = default;
};

struct Pong {
  std::uint32_t token = 0;
  friend bool operator==(const Pong&, const Pong&) = default;
};

struct JoinRequest {
  net::HostId host = net::kInvalidHost;
  std::uint32_t degree_limit = 0;
  friend bool operator==(const JoinRequest&, const JoinRequest&) = default;
};

struct JoinReply {
  net::HostId host = net::kInvalidHost;
  net::HostId parent = net::kInvalidHost;
  std::uint8_t accepted = 0;
  friend bool operator==(const JoinReply&, const JoinReply&) = default;
};

struct SetParent {
  std::uint32_t token = 0;
  net::HostId parent_host = net::kInvalidHost;  // kInvalidHost = detach
  std::uint32_t parent_ip = 0;
  std::uint16_t parent_port = 0;
  friend bool operator==(const SetParent&, const SetParent&) = default;
};

struct Adopt {
  std::uint32_t token = 0;
  net::HostId child_host = net::kInvalidHost;
  std::uint32_t child_ip = 0;
  std::uint16_t child_port = 0;
  friend bool operator==(const Adopt&, const Adopt&) = default;
};

struct DropChild {
  std::uint32_t token = 0;
  net::HostId child_host = net::kInvalidHost;
  friend bool operator==(const DropChild&, const DropChild&) = default;
};

struct Ack {
  std::uint32_t token = 0;
  friend bool operator==(const Ack&, const Ack&) = default;
};

struct Heartbeat {
  net::HostId from_host = net::kInvalidHost;
  std::uint32_t seq = 0;
  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

struct HeartbeatAck {
  std::uint32_t seq = 0;
  friend bool operator==(const HeartbeatAck&, const HeartbeatAck&) = default;
};

struct LeaveNotice {
  net::HostId host = net::kInvalidHost;
  friend bool operator==(const LeaveNotice&, const LeaveNotice&) = default;
};

struct CrashNotice {
  net::HostId host = net::kInvalidHost;
  friend bool operator==(const CrashNotice&, const CrashNotice&) = default;
};

/// Chunk payloads are views into the frame they were decoded from (zero
/// copy); equality compares contents so round-trip tests stay EXPECT_EQ.
struct Chunk {
  std::uint32_t seq = 0;
  double emitted_at = 0.0;
  std::span<const std::byte> payload;
  friend bool operator==(const Chunk& a, const Chunk& b) {
    if (a.seq != b.seq || a.emitted_at != b.emitted_at) return false;
    if (a.payload.size() != b.payload.size()) return false;
    for (std::size_t i = 0; i < a.payload.size(); ++i) {
      if (a.payload[i] != b.payload[i]) return false;
    }
    return true;
  }
};

struct StatsRequest {
  std::uint32_t token = 0;
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

struct StatsReply {
  std::uint32_t token = 0;
  net::HostId host = net::kInvalidHost;
  std::uint64_t chunks_received = 0;
  std::uint64_t chunks_relayed = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t control_received = 0;
  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

struct Shutdown {
  std::uint32_t token = 0;
  friend bool operator==(const Shutdown&, const Shutdown&) = default;
};

/// One decoded (or to-be-encoded) message. Alternative order matches Type
/// numbering exactly; type_of() maps between them.
using Message =
    std::variant<Hello, Welcome, ProbeRequest, ProbeReply, Ping, Pong,
                 JoinRequest, JoinReply, SetParent, Adopt, DropChild, Ack,
                 Heartbeat, HeartbeatAck, LeaveNotice, CrashNotice, Chunk,
                 StatsRequest, StatsReply, Shutdown>;

Type type_of(const Message& m);

// ------------------------------------------------------------ encode/decode

/// Why a frame was rejected. `offset` is the exact byte the decoder was
/// looking at; describe() renders a precise one-line diagnosis.
enum class DecodeStatus {
  kOk = 0,
  kTruncatedHeader,   // fewer than kHeaderBytes bytes
  kBadMagic,          // first two bytes are not kMagic
  kBadVersion,        // version byte != kVersion
  kBadType,           // type byte outside the catalogue
  kOversizedLength,   // header length field exceeds kMaxPayload
  kTruncatedPayload,  // header length field exceeds the bytes provided
  kTrailingBytes,     // frame longer than header + length
  kShortPayload,      // payload ends mid-field for this message type
  kExcessPayload,     // payload longer than this message type's fields
};

struct DecodeError {
  DecodeStatus status = DecodeStatus::kOk;
  std::size_t offset = 0;    // byte offset the decoder stopped at
  std::uint64_t expected = 0;  // meaning depends on status (see describe)
  std::uint64_t actual = 0;
  bool ok() const { return status == DecodeStatus::kOk; }
};

/// Renders "wire: truncated header at byte 3: need 6 header bytes, got 3".
/// Allocates; only ever called on the error path.
std::string describe(const DecodeError& err);

/// Encodes `m` into `out` (header + payload). Returns the number of bytes
/// written. Requires out.size() >= kMaxFrame-worth of room for the actual
/// message; throws util::InvariantError when the buffer is too small or a
/// chunk payload exceeds kMaxPayload. Never allocates.
std::size_t encode(const Message& m, std::span<std::byte> out);

/// Encoded size of `m` without writing it (header included).
std::size_t encoded_size(const Message& m);

/// Decodes one frame. On success fills `out` and returns an ok() error.
/// On failure `out` is unspecified and the returned error pinpoints the
/// offending byte. Never allocates.
DecodeError decode(std::span<const std::byte> frame, Message& out);

}  // namespace vdm::wire
