#include "wire/wire.hpp"

#include <bit>
#include <cstring>

#include "util/require.hpp"

namespace vdm::wire {

namespace {

// Field-by-field little-endian writer/reader. Bounds are checked once per
// field; the reader records the exact offset of the first missing byte so
// decode errors can name it.

class Writer {
 public:
  explicit Writer(std::span<std::byte> out) : out_(out) {}

  void u8(std::uint8_t v) {
    VDM_REQUIRE_MSG(pos_ + 1 <= out_.size(), "wire encode buffer too small");
    out_[pos_++] = static_cast<std::byte>(v);
  }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::byte> b) {
    VDM_REQUIRE_MSG(pos_ + b.size() <= out_.size(),
                    "wire encode buffer too small");
    std::memcpy(out_.data() + pos_, b.data(), b.size());
    pos_ += b.size();
  }
  std::size_t pos() const { return pos_; }
  /// Patches the u16 length field at `at` after the payload is written.
  void patch_u16(std::size_t at, std::uint16_t v) {
    out_[at] = static_cast<std::byte>(v);
    out_[at + 1] = static_cast<std::byte>(v >> 8);
  }

 private:
  std::span<std::byte> out_;
  std::size_t pos_ = 0;
};

class Reader {
 public:
  Reader(std::span<const std::byte> in, std::size_t start, std::size_t end)
      : in_(in), pos_(start), end_(end) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > end_) return fail();
    v = static_cast<std::uint8_t>(in_[pos_++]);
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t lo = 0, hi = 0;
    if (!u8(lo) || !u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (hi << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t lo = 0, hi = 0;
    if (!u16(lo) || !u16(hi)) return false;
    v = static_cast<std::uint32_t>(lo) |
        (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0, hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  /// The rest of the payload as a view (chunk bodies).
  std::span<const std::byte> rest() {
    const std::span<const std::byte> r = in_.subspan(pos_, end_ - pos_);
    pos_ = end_;
    return r;
  }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return end_ - pos_; }
  bool failed() const { return failed_; }

 private:
  bool fail() {
    failed_ = true;
    return false;
  }
  std::span<const std::byte> in_;
  std::size_t pos_;
  std::size_t end_;
  bool failed_ = false;
};

void encode_body(const Hello& m, Writer& w) { w.u16(m.listen_port); }
void encode_body(const Welcome& m, Writer& w) {
  w.u32(m.host_id);
  w.u32(m.num_hosts);
}
void encode_body(const ProbeRequest& m, Writer& w) {
  w.u32(m.token);
  w.u32(m.target_host);
  w.u32(m.target_ip);
  w.u16(m.target_port);
}
void encode_body(const ProbeReply& m, Writer& w) {
  w.u32(m.token);
  w.u32(m.target_host);
  w.f64(m.rtt_seconds);
}
void encode_body(const Ping& m, Writer& w) { w.u32(m.token); }
void encode_body(const Pong& m, Writer& w) { w.u32(m.token); }
void encode_body(const JoinRequest& m, Writer& w) {
  w.u32(m.host);
  w.u32(m.degree_limit);
}
void encode_body(const JoinReply& m, Writer& w) {
  w.u32(m.host);
  w.u32(m.parent);
  w.u8(m.accepted);
}
void encode_body(const SetParent& m, Writer& w) {
  w.u32(m.token);
  w.u32(m.parent_host);
  w.u32(m.parent_ip);
  w.u16(m.parent_port);
}
void encode_body(const Adopt& m, Writer& w) {
  w.u32(m.token);
  w.u32(m.child_host);
  w.u32(m.child_ip);
  w.u16(m.child_port);
}
void encode_body(const DropChild& m, Writer& w) {
  w.u32(m.token);
  w.u32(m.child_host);
}
void encode_body(const Ack& m, Writer& w) { w.u32(m.token); }
void encode_body(const Heartbeat& m, Writer& w) {
  w.u32(m.from_host);
  w.u32(m.seq);
}
void encode_body(const HeartbeatAck& m, Writer& w) { w.u32(m.seq); }
void encode_body(const LeaveNotice& m, Writer& w) { w.u32(m.host); }
void encode_body(const CrashNotice& m, Writer& w) { w.u32(m.host); }
void encode_body(const Chunk& m, Writer& w) {
  VDM_REQUIRE_MSG(m.payload.size() + 12 <= kMaxPayload,
                  "chunk payload exceeds kMaxPayload");
  w.u32(m.seq);
  w.f64(m.emitted_at);
  w.bytes(m.payload);
}
void encode_body(const StatsRequest& m, Writer& w) { w.u32(m.token); }
void encode_body(const StatsReply& m, Writer& w) {
  w.u32(m.token);
  w.u32(m.host);
  w.u64(m.chunks_received);
  w.u64(m.chunks_relayed);
  w.u64(m.heartbeats_sent);
  w.u64(m.control_received);
}
void encode_body(const Shutdown& m, Writer& w) { w.u32(m.token); }

template <typename M>
bool decode_body(M&, Reader&);

template <>
bool decode_body(Hello& m, Reader& r) { return r.u16(m.listen_port); }
template <>
bool decode_body(Welcome& m, Reader& r) {
  return r.u32(m.host_id) && r.u32(m.num_hosts);
}
template <>
bool decode_body(ProbeRequest& m, Reader& r) {
  return r.u32(m.token) && r.u32(m.target_host) && r.u32(m.target_ip) &&
         r.u16(m.target_port);
}
template <>
bool decode_body(ProbeReply& m, Reader& r) {
  return r.u32(m.token) && r.u32(m.target_host) && r.f64(m.rtt_seconds);
}
template <>
bool decode_body(Ping& m, Reader& r) { return r.u32(m.token); }
template <>
bool decode_body(Pong& m, Reader& r) { return r.u32(m.token); }
template <>
bool decode_body(JoinRequest& m, Reader& r) {
  return r.u32(m.host) && r.u32(m.degree_limit);
}
template <>
bool decode_body(JoinReply& m, Reader& r) {
  return r.u32(m.host) && r.u32(m.parent) && r.u8(m.accepted);
}
template <>
bool decode_body(SetParent& m, Reader& r) {
  return r.u32(m.token) && r.u32(m.parent_host) && r.u32(m.parent_ip) &&
         r.u16(m.parent_port);
}
template <>
bool decode_body(Adopt& m, Reader& r) {
  return r.u32(m.token) && r.u32(m.child_host) && r.u32(m.child_ip) &&
         r.u16(m.child_port);
}
template <>
bool decode_body(DropChild& m, Reader& r) {
  return r.u32(m.token) && r.u32(m.child_host);
}
template <>
bool decode_body(Ack& m, Reader& r) { return r.u32(m.token); }
template <>
bool decode_body(Heartbeat& m, Reader& r) {
  return r.u32(m.from_host) && r.u32(m.seq);
}
template <>
bool decode_body(HeartbeatAck& m, Reader& r) { return r.u32(m.seq); }
template <>
bool decode_body(LeaveNotice& m, Reader& r) { return r.u32(m.host); }
template <>
bool decode_body(CrashNotice& m, Reader& r) { return r.u32(m.host); }
template <>
bool decode_body(Chunk& m, Reader& r) {
  if (!r.u32(m.seq) || !r.f64(m.emitted_at)) return false;
  m.payload = r.rest();
  return true;
}
template <>
bool decode_body(StatsRequest& m, Reader& r) { return r.u32(m.token); }
template <>
bool decode_body(StatsReply& m, Reader& r) {
  return r.u32(m.token) && r.u32(m.host) && r.u64(m.chunks_received) &&
         r.u64(m.chunks_relayed) && r.u64(m.heartbeats_sent) &&
         r.u64(m.control_received);
}
template <>
bool decode_body(Shutdown& m, Reader& r) { return r.u32(m.token); }

template <typename M>
DecodeError decode_as(std::span<const std::byte> frame, std::size_t payload_len,
                      Message& out) {
  Reader r(frame, kHeaderBytes, kHeaderBytes + payload_len);
  M m{};
  if (!decode_body(m, r)) {
    // The reader stopped at the first byte it could not fetch.
    return {DecodeStatus::kShortPayload, r.pos(), 0, payload_len};
  }
  if (r.remaining() > 0) {
    return {DecodeStatus::kExcessPayload, r.pos(), 0, r.remaining()};
  }
  out = std::move(m);
  return {};
}

}  // namespace

const char* type_name(Type t) {
  switch (t) {
    case Type::kHello: return "hello";
    case Type::kWelcome: return "welcome";
    case Type::kProbeRequest: return "probe-request";
    case Type::kProbeReply: return "probe-reply";
    case Type::kPing: return "ping";
    case Type::kPong: return "pong";
    case Type::kJoinRequest: return "join-request";
    case Type::kJoinReply: return "join-reply";
    case Type::kSetParent: return "set-parent";
    case Type::kAdopt: return "adopt";
    case Type::kDropChild: return "drop-child";
    case Type::kAck: return "ack";
    case Type::kHeartbeat: return "heartbeat";
    case Type::kHeartbeatAck: return "heartbeat-ack";
    case Type::kLeaveNotice: return "leave-notice";
    case Type::kCrashNotice: return "crash-notice";
    case Type::kChunk: return "chunk";
    case Type::kStatsRequest: return "stats-request";
    case Type::kStatsReply: return "stats-reply";
    case Type::kShutdown: return "shutdown";
  }
  return "?";
}

Type type_of(const Message& m) {
  // Alternative order mirrors Type numbering (which starts at 1).
  return static_cast<Type>(m.index() + 1);
}

std::size_t encode(const Message& m, std::span<std::byte> out) {
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type_of(m)));
  const std::size_t len_at = w.pos();
  w.u16(0);  // patched below
  std::visit([&w](const auto& body) { encode_body(body, w); }, m);
  const std::size_t payload = w.pos() - kHeaderBytes;
  VDM_REQUIRE_MSG(payload <= kMaxPayload, "wire payload exceeds kMaxPayload");
  w.patch_u16(len_at, static_cast<std::uint16_t>(payload));
  return w.pos();
}

std::size_t encoded_size(const Message& m) {
  // Small upper bound: messages are tiny, so sizing via a stack buffer costs
  // nothing and cannot drift from encode().
  std::byte buf[kMaxFrame];
  return encode(m, buf);
}

DecodeError decode(std::span<const std::byte> frame, Message& out) {
  if (frame.size() < kHeaderBytes) {
    return {DecodeStatus::kTruncatedHeader, frame.size(), kHeaderBytes,
            frame.size()};
  }
  Reader h(frame, 0, kHeaderBytes);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t length = 0;
  h.u16(magic);
  h.u8(version);
  h.u8(type);
  h.u16(length);
  if (magic != kMagic) return {DecodeStatus::kBadMagic, 0, kMagic, magic};
  if (version != kVersion) {
    return {DecodeStatus::kBadVersion, 2, kVersion, version};
  }
  if (type == 0 || type > kMaxType) {
    return {DecodeStatus::kBadType, 3, kMaxType, type};
  }
  if (length > kMaxPayload) {
    return {DecodeStatus::kOversizedLength, 4, kMaxPayload, length};
  }
  if (kHeaderBytes + length > frame.size()) {
    return {DecodeStatus::kTruncatedPayload, frame.size(),
            kHeaderBytes + length, frame.size()};
  }
  if (kHeaderBytes + length < frame.size()) {
    return {DecodeStatus::kTrailingBytes, kHeaderBytes + length,
            kHeaderBytes + length, frame.size()};
  }
  switch (static_cast<Type>(type)) {
    case Type::kHello: return decode_as<Hello>(frame, length, out);
    case Type::kWelcome: return decode_as<Welcome>(frame, length, out);
    case Type::kProbeRequest: return decode_as<ProbeRequest>(frame, length, out);
    case Type::kProbeReply: return decode_as<ProbeReply>(frame, length, out);
    case Type::kPing: return decode_as<Ping>(frame, length, out);
    case Type::kPong: return decode_as<Pong>(frame, length, out);
    case Type::kJoinRequest: return decode_as<JoinRequest>(frame, length, out);
    case Type::kJoinReply: return decode_as<JoinReply>(frame, length, out);
    case Type::kSetParent: return decode_as<SetParent>(frame, length, out);
    case Type::kAdopt: return decode_as<Adopt>(frame, length, out);
    case Type::kDropChild: return decode_as<DropChild>(frame, length, out);
    case Type::kAck: return decode_as<Ack>(frame, length, out);
    case Type::kHeartbeat: return decode_as<Heartbeat>(frame, length, out);
    case Type::kHeartbeatAck: return decode_as<HeartbeatAck>(frame, length, out);
    case Type::kLeaveNotice: return decode_as<LeaveNotice>(frame, length, out);
    case Type::kCrashNotice: return decode_as<CrashNotice>(frame, length, out);
    case Type::kChunk: return decode_as<Chunk>(frame, length, out);
    case Type::kStatsRequest: return decode_as<StatsRequest>(frame, length, out);
    case Type::kStatsReply: return decode_as<StatsReply>(frame, length, out);
    case Type::kShutdown: return decode_as<Shutdown>(frame, length, out);
  }
  return {DecodeStatus::kBadType, 3, kMaxType, type};
}

std::string describe(const DecodeError& err) {
  switch (err.status) {
    case DecodeStatus::kOk:
      return "wire: ok";
    case DecodeStatus::kTruncatedHeader:
      return "wire: truncated header at byte " + std::to_string(err.offset) +
             ": need " + std::to_string(err.expected) + " header bytes, got " +
             std::to_string(err.actual);
    case DecodeStatus::kBadMagic:
      return "wire: bad magic at byte 0: expected 0x" +
             std::to_string(err.expected) + ", got " +
             std::to_string(err.actual);
    case DecodeStatus::kBadVersion:
      return "wire: unsupported version at byte 2: expected " +
             std::to_string(err.expected) + ", got " +
             std::to_string(err.actual);
    case DecodeStatus::kBadType:
      return "wire: unknown message type at byte 3: got " +
             std::to_string(err.actual) + " (max " +
             std::to_string(err.expected) + ")";
    case DecodeStatus::kOversizedLength:
      return "wire: oversized length field at byte 4: " +
             std::to_string(err.actual) + " exceeds max payload " +
             std::to_string(err.expected);
    case DecodeStatus::kTruncatedPayload:
      return "wire: truncated payload at byte " + std::to_string(err.offset) +
             ": header promises " + std::to_string(err.expected) +
             " total bytes, frame has " + std::to_string(err.actual);
    case DecodeStatus::kTrailingBytes:
      return "wire: trailing bytes at byte " + std::to_string(err.offset) +
             ": frame has " + std::to_string(err.actual) +
             " bytes, message ends at " + std::to_string(err.expected);
    case DecodeStatus::kShortPayload:
      return "wire: payload ends mid-field at byte " +
             std::to_string(err.offset) + " (declared payload " +
             std::to_string(err.actual) + " bytes)";
    case DecodeStatus::kExcessPayload:
      return "wire: " + std::to_string(err.actual) +
             " excess payload bytes at byte " + std::to_string(err.offset);
  }
  return "wire: ?";
}

}  // namespace vdm::wire
