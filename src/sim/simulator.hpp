#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace vdm::sim {

/// Identifier of a scheduled event, usable to cancel it before it fires.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event simulator.
///
/// The heart of the reproduction: every protocol message, probe, data chunk,
/// churn action and refinement timer is an event on this queue. Events at
/// equal timestamps execute in scheduling order (stable sequence-number
/// tie-break), which keeps whole experiments bit-deterministic per seed —
/// parallelism lives one level up, across independent seeds.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a cancellable id.
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` after `delay` (>= 0) seconds.
  EventId schedule_in(Time delay, std::function<void()> fn);

  /// Cancels a pending event; a no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// Executes the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains (or `max_events` fire). Returns events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= t, then advances the clock to t.
  std::size_t run_until(Time t);

  /// Number of live (non-cancelled) pending events.
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// Total events executed since construction (for micro-benchmarks).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time t;
    EventId id;
    // Ordered as a min-heap: earliest time first, FIFO within a timestamp.
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return id > o.id;
    }
  };

  void pop_and_run(const Entry& e);

  Time now_ = kTimeZero;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  // Callback storage decoupled from the heap so cancels don't touch the heap.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

/// RAII periodic timer: runs `fn` every `interval` seconds starting at
/// now + interval, until destroyed or stop()ped. Protocol refinement and
/// stream sending use this.
class Periodic {
 public:
  Periodic(Simulator& simulator, Time interval, std::function<void()> fn);
  ~Periodic();
  Periodic(const Periodic&) = delete;
  Periodic& operator=(const Periodic&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  Time interval_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = true;
};

}  // namespace vdm::sim
