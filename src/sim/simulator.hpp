#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace vdm::sim {

/// Identifier of a scheduled event, usable to cancel it before it fires.
/// Encodes (generation, slab slot); a stale id — one whose event already
/// fired or was cancelled — fails the generation check and is ignored.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event simulator.
///
/// The heart of the reproduction: every protocol message, probe, data chunk,
/// churn action and refinement timer is an event on this queue. Events at
/// equal timestamps execute in scheduling order (stable sequence-number
/// tie-break), which keeps whole experiments bit-deterministic per seed —
/// parallelism lives one level up, across independent seeds.
///
/// Implementation: events live in a free-list slab of fixed slots with
/// generation-stamped ids, ordered by an indexed 4-ary min-heap (slot ->
/// heap-position back-pointers), so cancel() removes the event with one
/// localized sift instead of accumulating tombstones. Callbacks are
/// small-buffer-optimized (InlineFn), so once the slab and heap have grown
/// to a run's working set, schedule/fire/cancel perform zero heap
/// allocations.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a cancellable id.
  EventId schedule_at(Time t, InlineFn fn);

  /// Schedules `fn` after `delay` (>= 0) seconds.
  EventId schedule_in(Time delay, InlineFn fn);

  /// Cancels a pending event; a no-op if it already fired or was cancelled.
  /// Cancelling the currently-firing event suppresses its re-arm (see
  /// reschedule_current_in) but does not interrupt the running callback.
  void cancel(EventId id);

  /// From inside a callback only: re-arms the currently-firing event to run
  /// again `delay` seconds from now, reusing its slot, id and callable —
  /// no allocation, no id churn. Returns false (and does nothing) outside a
  /// callback or when the firing event was cancelled mid-callback.
  bool reschedule_current_in(Time delay);

  /// Executes the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains (or `max_events` fire). Returns events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= t, then advances the clock to t.
  std::size_t run_until(Time t);

  /// Number of live (non-cancelled) pending events.
  std::size_t pending() const { return heap_.size(); }

  /// Timestamp of the earliest pending event, or +infinity when the queue is
  /// empty. The wall-clock reactor (transport::UdpReactor) paces this engine
  /// by sleeping until the next deadline; the DES never needs it.
  Time next_event_time() const {
    return heap_.empty() ? std::numeric_limits<Time>::infinity()
                         : slots_[heap_[0]].t;
  }

  /// Total events executed since construction (for micro-benchmarks).
  std::uint64_t executed() const { return executed_; }

  /// Returns the simulator to its just-constructed state — clock at zero,
  /// queue empty — while keeping the slab and heap capacity a previous run
  /// grew. Never call from inside a callback. This is what lets a RunScratch
  /// shuttle one Simulator through back-to-back runs allocation-free.
  void reset() {
    slots_.clear();
    heap_.clear();
    free_head_ = kNoSlot;
    now_ = kTimeZero;
    next_seq_ = 1;
    executed_ = 0;
    firing_slot_ = kNoSlot;
    firing_cancelled_ = false;
    firing_rearm_ = false;
    firing_rearm_at_ = kTimeZero;
  }

  /// Heap bytes reserved by the slab and heap (arena accounting).
  std::size_t capacity_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           heap_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Time t = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break within a timestamp
    std::uint32_t generation = 1;
    std::uint32_t heap_pos = kNoSlot;
    std::uint32_t next_free = kNoSlot;
    InlineFn fn;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(slot) + 1);  // +1 keeps 0 == kInvalidEvent
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// True if the event keyed by slot `a` fires before the one in slot `b`.
  bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.t != sb.t) return sa.t < sb.t;
    return sa.seq < sb.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(std::uint32_t slot);
  void heap_remove(std::size_t pos);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void fire_top();

  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;

  std::vector<Slot> slots_;            // slab; grows, never shrinks
  std::uint32_t free_head_ = kNoSlot;  // free-list through Slot::next_free
  std::vector<std::uint32_t> heap_;    // indexed 4-ary min-heap of slots

  // State of the callback currently running (kNoSlot outside fire_top).
  std::uint32_t firing_slot_ = kNoSlot;
  bool firing_cancelled_ = false;
  bool firing_rearm_ = false;
  Time firing_rearm_at_ = kTimeZero;
};

/// RAII periodic timer: runs `fn` every `interval` seconds starting at
/// now + interval, until destroyed or stop()ped. Protocol refinement and
/// stream sending use this. The timer owns one slab slot for its whole
/// lifetime — each tick re-arms in place, so steady state allocates nothing
/// and the pending EventId never changes.
class Periodic {
 public:
  Periodic(Simulator& simulator, Time interval, InlineFn fn);
  ~Periodic();
  Periodic(const Periodic&) = delete;
  Periodic& operator=(const Periodic&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  Simulator& sim_;
  Time interval_;
  InlineFn fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = true;
};

}  // namespace vdm::sim
