#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vdm::sim {

/// Move-only `void()` callable with small-buffer optimization.
///
/// The event engine stores one of these per slab slot. Typical simulator
/// callbacks capture a pointer or two (`[this]`, `[this, h]`, a by-value
/// scenario event), which fit the inline buffer, so steady-state
/// schedule/fire cycles never touch the heap. Oversized captures fall back
/// to a heap allocation transparently — correctness is never capped by the
/// buffer, only the zero-allocation guarantee.
class InlineFn {
 public:
  /// Sized to hold the largest callback the repo schedules (a by-value
  /// ScenarioEvent capture plus a pointer) with room to spare.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(target()); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFn& f, std::nullptr_t) { return f.ops_ == nullptr; }
  friend bool operator!=(const InlineFn& f, std::nullptr_t) { return f.ops_ != nullptr; }

  /// True if this callable's target lives in the inline buffer (tests).
  bool is_inline() const { return ops_ != nullptr && !ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the target from `from` into raw storage `to`, then
    /// destroys the original (inline targets only; heap targets relocate by
    /// pointer steal).
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
    bool heap;
  };

  template <typename Fn>
  static constexpr bool kFitsInline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* from, void* to) {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      /*heap=*/false,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      nullptr,
      [](void* p) { delete static_cast<Fn*>(p); },
      /*heap=*/true,
  };

  void* target() { return ops_->heap ? heap_ : static_cast<void*>(buf_); }

  void reset() {
    if (ops_ != nullptr) ops_->destroy(target());
    ops_ = nullptr;
    heap_ = nullptr;
  }

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->heap) {
        heap_ = other.heap_;
      } else {
        ops_->relocate(other.buf_, buf_);
      }
    }
    other.ops_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace vdm::sim
