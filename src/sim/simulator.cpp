#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "util/require.hpp"

namespace vdm::sim {

namespace {
/// Arity of the event heap. 4 keeps the tree shallow (fewer cache lines per
/// sift) while the min-of-children scan stays register-resident.
constexpr std::size_t kHeapArity = 4;
}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  ++s.generation;  // stale EventIds now fail the generation check
  s.heap_pos = kNoSlot;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::sift_up(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    if (!before(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = pos * kHeapArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kHeapArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], slot)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_push(std::uint32_t slot) {
  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
}

void Simulator::heap_remove(std::size_t pos) {
  slots_[heap_[pos]].heap_pos = kNoSlot;
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    heap_.pop_back();
    // The displaced element may belong above or below its new position.
    sift_up(pos);
    sift_down(slots_[heap_[pos]].heap_pos);
  } else {
    heap_.pop_back();
  }
}

EventId Simulator::schedule_at(Time t, InlineFn fn) {
  VDM_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  VDM_REQUIRE(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.t = t;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  heap_push(slot);
  return make_id(slot, s.generation);
}

EventId Simulator::schedule_in(Time delay, InlineFn fn) {
  VDM_REQUIRE_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != generation_of(id)) return;  // already fired or cancelled
  if (slot == firing_slot_) {
    // Cancelling the event whose callback is running: the firing itself
    // cannot be undone (matching the old engine, where the callback was
    // extracted before execution), but any pending re-arm is suppressed.
    firing_cancelled_ = true;
    return;
  }
  heap_remove(s.heap_pos);
  release_slot(slot);
}

bool Simulator::reschedule_current_in(Time delay) {
  VDM_REQUIRE_MSG(delay >= 0.0, "negative delay");
  if (firing_slot_ == kNoSlot || firing_cancelled_) return false;
  firing_rearm_ = true;
  firing_rearm_at_ = now_ + delay;
  return true;
}

void Simulator::fire_top() {
  const std::uint32_t slot = heap_[0];
  now_ = slots_[slot].t;
  heap_remove(0);
  ++executed_;

  firing_slot_ = slot;
  firing_cancelled_ = false;
  firing_rearm_ = false;
  // Run from a local: the callback may schedule events and grow the slab,
  // invalidating any reference into slots_.
  InlineFn fn = std::move(slots_[slot].fn);
  try {
    fn();
  } catch (...) {
    // Keep the engine consistent if a callback throws (the old engine
    // consumed the event before running it): the event is spent, the slot
    // returns to the free list, and the exception propagates to the caller.
    release_slot(slot);
    firing_slot_ = kNoSlot;
    firing_cancelled_ = false;
    firing_rearm_ = false;
    throw;
  }

  Slot& s = slots_[slot];  // re-fetch: the slab may have reallocated
  if (firing_rearm_ && !firing_cancelled_) {
    // Re-arm in place (Periodic): same slot, same generation — the caller's
    // EventId stays valid — with a fresh sequence number, exactly as if the
    // callback had scheduled a new event at this point.
    s.fn = std::move(fn);
    s.t = firing_rearm_at_;
    s.seq = next_seq_++;
    heap_push(slot);
  } else {
    release_slot(slot);
  }
  firing_slot_ = kNoSlot;
  firing_cancelled_ = false;
  firing_rearm_ = false;
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  fire_top();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !heap_.empty()) {
    fire_top();
    ++n;
  }
  return n;
}

std::size_t Simulator::run_until(Time t) {
  VDM_REQUIRE(t >= now_);
  std::size_t n = 0;
  while (!heap_.empty() && slots_[heap_[0]].t <= t) {
    fire_top();
    ++n;
  }
  now_ = t;
  return n;
}

Periodic::Periodic(Simulator& simulator, Time interval, InlineFn fn)
    : sim_(simulator), interval_(interval), fn_(std::move(fn)) {
  VDM_REQUIRE(interval_ > 0.0);
  VDM_REQUIRE(fn_ != nullptr);
  pending_ = sim_.schedule_in(interval_, [this] {
    fn_();
    // Re-arm into the same slot (zero allocation, id unchanged). If fn_
    // called stop(), the cancel already suppressed the re-arm; clear the
    // stale id so a later stop() cannot cancel an unrelated reused slot.
    if (running_) {
      sim_.reschedule_current_in(interval_);
    } else {
      pending_ = kInvalidEvent;
    }
  });
}

Periodic::~Periodic() { stop(); }

void Periodic::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEvent) sim_.cancel(pending_);
  pending_ = kInvalidEvent;
}

}  // namespace vdm::sim
