#include "sim/simulator.hpp"

#include <utility>

#include "util/require.hpp"

namespace vdm::sim {

EventId Simulator::schedule_at(Time t, std::function<void()> fn) {
  VDM_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  VDM_REQUIRE(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_in(Time delay, std::function<void()> fn) {
  VDM_REQUIRE_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already fired or cancelled
  callbacks_.erase(it);
  cancelled_.insert(id);
}

void Simulator::pop_and_run(const Entry& e) {
  now_ = e.t;
  auto node = callbacks_.extract(e.id);
  heap_.pop();
  ++executed_;
  // Run after popping so the callback can schedule/cancel freely.
  node.mapped()();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    if (cancelled_.erase(e.id)) {
      heap_.pop();
      continue;
    }
    pop_and_run(e);
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time t) {
  VDM_REQUIRE(t >= now_);
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    if (e.t > t) break;
    if (cancelled_.erase(e.id)) {
      heap_.pop();
      continue;
    }
    pop_and_run(e);
    ++n;
  }
  now_ = t;
  return n;
}

Periodic::Periodic(Simulator& simulator, Time interval, std::function<void()> fn)
    : sim_(simulator), interval_(interval), fn_(std::move(fn)) {
  VDM_REQUIRE(interval_ > 0.0);
  VDM_REQUIRE(fn_ != nullptr);
  arm();
}

Periodic::~Periodic() { stop(); }

void Periodic::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEvent) sim_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void Periodic::arm() {
  pending_ = sim_.schedule_in(interval_, [this] {
    pending_ = kInvalidEvent;
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace vdm::sim
