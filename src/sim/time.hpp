#pragma once

namespace vdm::sim {

/// Simulated time in seconds. Double precision gives sub-microsecond
/// resolution across the paper's 10 000 s sessions.
using Time = double;

/// Convenience unit helpers so call sites read like the paper's parameters.
constexpr Time milliseconds(double ms) { return ms / 1000.0; }
constexpr Time seconds(double s) { return s; }
constexpr Time minutes(double m) { return m * 60.0; }

constexpr Time kTimeZero = 0.0;

}  // namespace vdm::sim
