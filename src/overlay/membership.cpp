#include "overlay/membership.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace vdm::overlay {

void FloodTable::assign(std::size_t n) {
  receiving_since.assign(n, 0.0);
  in_session_since.assign(n, 0.0);
  uplink_loss.assign(n, 0.0);
  uplink_loss_parent.assign(n, kInvalidHost);
  chunks_expected.assign(n, 0);
  chunks_received.assign(n, 0);
}

void FloodTable::reset_host(HostId h) {
  receiving_since[h] = 0.0;
  in_session_since[h] = 0.0;
  uplink_loss[h] = 0.0;
  uplink_loss_parent[h] = kInvalidHost;
  chunks_expected[h] = 0;
  chunks_received[h] = 0;
}

std::size_t FloodTable::capacity_bytes() const {
  return (receiving_since.capacity() + in_session_since.capacity() +
          uplink_loss.capacity()) *
             sizeof(double) +
         uplink_loss_parent.capacity() * sizeof(HostId) +
         (chunks_expected.capacity() + chunks_received.capacity()) *
             sizeof(std::uint32_t);
}

void Membership::reset(std::size_t num_hosts) {
  if (members_.size() < num_hosts) members_.resize(num_hosts);
  // Clear every slot ever used (not just the new range): a slot beyond the
  // new pool must not resurface alive when a later reset grows again.
  // clear() keeps each children list's capacity — the whole point.
  for (MemberState& m : members_) {
    m.children.clear();
    m.child_dists.clear();
    m.parent = kInvalidHost;
    m.grandparent = kInvalidHost;
    m.alive = false;
    m.degree_limit = 0;
  }
  flood_.assign(num_hosts);
  num_hosts_ = num_hosts;
  limit1_alive_ = 0;
  alive_count_ = 0;
  // The observer is bound per run (it indexes one session's tree); a reset
  // tree must not keep notifying a structure from the previous run.
  observer_ = nullptr;
}

void Membership::activate(HostId h, int degree_limit) {
  VDM_REQUIRE(h < num_hosts_);
  MemberState& m = members_.at(h);
  VDM_REQUIRE_MSG(!m.alive, "activate() on a member that is already alive");
  VDM_REQUIRE_MSG(degree_limit >= 1, "paper assumes degree limit >= 1");
  // In-place reset (not `m = MemberState{}`): keeps the children list's
  // capacity, so a host that churns in and out re-joins allocation-free.
  m.children.clear();
  m.child_dists.clear();
  m.parent = kInvalidHost;
  m.grandparent = kInvalidHost;
  m.alive = true;
  m.degree_limit = degree_limit;
  flood_.reset_host(h);
  if (degree_limit == 1) ++limit1_alive_;
  ++alive_count_;
}

std::vector<HostId> Membership::deactivate(HostId h) {
  std::vector<HostId> orphans;
  deactivate(h, orphans);
  return orphans;
}

void Membership::deactivate(HostId h, std::vector<HostId>& orphans_out) {
  MemberState& m = members_.at(h);
  VDM_REQUIRE(m.alive);
  if (m.parent != kInvalidHost) detach(h);
  orphans_out.clear();
  orphans_out.insert(orphans_out.end(), m.children.begin(), m.children.end());
  for (const HostId c : orphans_out) {
    MemberState& cm = members_.at(c);
    cm.parent = kInvalidHost;
    // The orphan remembers its grandparent: that is where reconnection
    // starts (§3.3). Do not clear cm.grandparent here.
  }
  m.children.clear();
  m.child_dists.clear();
  m.alive = false;
  if (m.degree_limit == 1) --limit1_alive_;
  --alive_count_;
}

void Membership::attach(HostId child, HostId parent, double measured_dist,
                        bool allow_full) {
  VDM_REQUIRE(child != parent);
  MemberState& cm = members_.at(child);
  MemberState& pm = members_.at(parent);
  VDM_REQUIRE_MSG(cm.alive && pm.alive, "attach endpoints must be alive");
  VDM_REQUIRE_MSG(cm.parent == kInvalidHost, "child already has a parent");
  VDM_REQUIRE_MSG(allow_full || pm.has_free_degree(), "parent is at degree limit");
  VDM_REQUIRE_MSG(!is_ancestor(child, parent),
                  "attaching under a descendant would create a cycle");
  VDM_REQUIRE(measured_dist >= 0.0);

  pm.children.push_back(child);
  pm.child_dists.push_back(measured_dist);
  cm.parent = parent;
  cm.grandparent = pm.parent;
  refresh_grandparent_of_children(child);
  if (observer_ != nullptr) observer_->on_attach(child, parent);
}

void Membership::detach(HostId child) {
  MemberState& cm = members_.at(child);
  VDM_REQUIRE(cm.parent != kInvalidHost);
  if (observer_ != nullptr) observer_->on_detach(child, cm.parent);
  MemberState& pm = members_.at(cm.parent);
  const auto it = std::find(pm.children.begin(), pm.children.end(), child);
  VDM_REQUIRE_MSG(it != pm.children.end(), "parent/child pointers out of sync");
  // Order-preserving erase of both parallel entries: sibling order is part
  // of the determinism contract (orphans reconnect in child order).
  pm.child_dists.erase(pm.child_dists.begin() + (it - pm.children.begin()));
  pm.children.erase(it);
  cm.parent = kInvalidHost;
  cm.grandparent = kInvalidHost;
  // Children of `child` now have a detached parent; their grandparent
  // pointer (towards the old parent) is stale until `child` re-attaches,
  // exactly as in the protocol, where grandparent updates ride on
  // (re)connection messages.
}

void Membership::move_child(HostId child, HostId new_parent, double measured_dist,
                            bool allow_full) {
  detach(child);
  attach(child, new_parent, measured_dist, allow_full);
}

std::size_t Membership::child_index(const MemberState& pm, HostId child) const {
  const auto it = std::find(pm.children.begin(), pm.children.end(), child);
  VDM_REQUIRE_MSG(it != pm.children.end(), "no stored distance for this edge");
  return static_cast<std::size_t>(it - pm.children.begin());
}

double Membership::stored_child_distance(HostId parent, HostId child) const {
  const MemberState& pm = members_.at(parent);
  return pm.child_dists[child_index(pm, child)];
}

void Membership::update_child_distance(HostId parent, HostId child,
                                       double measured_dist) {
  VDM_REQUIRE(measured_dist >= 0.0);
  MemberState& pm = members_.at(parent);
  pm.child_dists[child_index(pm, child)] = measured_dist;
}

bool Membership::subtree_has_capacity(HostId root, HostId exclude) const {
  if (limit1_alive_ == 0) return true;
  if (root == exclude) return false;
  // DFS over the subtree looking for any member with a free slot; `exclude`
  // (typically a refining node) and everything below it are skipped so a
  // node never counts capacity it would detach from the subtree itself.
  capacity_stack_.clear();
  capacity_stack_.push_back(root);
  while (!capacity_stack_.empty()) {
    const HostId at = capacity_stack_.back();
    capacity_stack_.pop_back();
    const MemberState& m = members_.at(at);
    if (m.has_free_degree()) return true;
    for (const HostId c : m.children) {
      if (c != exclude) capacity_stack_.push_back(c);
    }
  }
  return false;
}

bool Membership::is_ancestor(HostId ancestor, HostId node) const {
  for (HostId at = node; at != kInvalidHost; at = members_.at(at).parent) {
    if (at == ancestor) return true;
  }
  return false;
}

std::vector<HostId> Membership::root_path(HostId node) const {
  std::vector<HostId> path;
  for (HostId at = members_.at(node).parent; at != kInvalidHost;
       at = members_.at(at).parent) {
    path.push_back(at);
    VDM_REQUIRE_MSG(path.size() <= num_hosts_, "cycle in parent pointers");
  }
  return path;
}

std::size_t Membership::depth(HostId node) const {
  std::size_t d = 0;
  for (HostId at = node; members_.at(at).parent != kInvalidHost;
       at = members_.at(at).parent) {
    ++d;
    VDM_REQUIRE_MSG(d <= num_hosts_, "cycle in parent pointers");
  }
  return d;
}

std::vector<HostId> Membership::alive_members() const {
  std::vector<HostId> out;
  for (HostId h = 0; h < num_hosts_; ++h) {
    if (members_[h].alive) out.push_back(h);
  }
  return out;
}

std::vector<HostId> Membership::subtree(HostId root) const {
  std::vector<HostId> out{root};
  for (std::size_t i = 0; i < out.size(); ++i) {
    const MemberState& m = members_.at(out[i]);
    out.insert(out.end(), m.children.begin(), m.children.end());
  }
  return out;
}

std::size_t Membership::capacity_bytes() const {
  std::size_t bytes = members_.capacity() * sizeof(MemberState);
  for (const MemberState& m : members_) {
    bytes += m.children.capacity() * sizeof(HostId) +
             m.child_dists.capacity() * sizeof(double);
  }
  return bytes + flood_.capacity_bytes() +
         capacity_stack_.capacity() * sizeof(HostId);
}

void Membership::refresh_grandparent_of_children(HostId node) {
  const MemberState& m = members_.at(node);
  for (const HostId c : m.children) members_.at(c).grandparent = m.parent;
}

void Membership::validate() const {
  for (HostId h = 0; h < num_hosts_; ++h) {
    const MemberState& m = members_[h];
    if (!m.alive) {
      VDM_REQUIRE_MSG(m.children.empty() && m.parent == kInvalidHost,
                      "dead member still wired into the tree");
      continue;
    }
    VDM_REQUIRE_MSG(m.overlay_links() <= m.degree_limit,
                    "degree limit exceeded (children + parent link > limit)");
    VDM_REQUIRE_MSG(m.child_dists.size() == m.children.size(),
                    "child distance table out of sync");
    for (const HostId c : m.children) {
      VDM_REQUIRE_MSG(members_.at(c).alive, "dead child in children list");
      VDM_REQUIRE_MSG(members_.at(c).parent == h, "child does not point back");
      // A detached member's children legitimately keep their previous
      // grandparent until it re-attaches (grandparent updates ride on
      // reconnection messages, see detach()) — e.g. the subtree of a
      // crash orphan awaiting failure detection.
      if (m.parent != kInvalidHost) {
        VDM_REQUIRE_MSG(members_.at(c).grandparent == m.parent,
                        "grandparent pointer stale");
      }
    }
    if (m.parent != kInvalidHost) {
      const auto& pc = members_.at(m.parent).children;
      VDM_REQUIRE_MSG(std::find(pc.begin(), pc.end(), h) != pc.end(),
                      "parent does not list this child");
    }
    // Acyclicity: walking up must terminate.
    (void)root_path(h);
  }
}

}  // namespace vdm::overlay
