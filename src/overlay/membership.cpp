#include "overlay/membership.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace vdm::overlay {

void Membership::activate(HostId h, int degree_limit) {
  MemberState& m = members_.at(h);
  VDM_REQUIRE_MSG(!m.alive, "activate() on a member that is already alive");
  VDM_REQUIRE_MSG(degree_limit >= 1, "paper assumes degree limit >= 1");
  m = MemberState{};
  m.alive = true;
  m.degree_limit = degree_limit;
  if (degree_limit == 1) ++limit1_alive_;
}

std::vector<HostId> Membership::deactivate(HostId h) {
  MemberState& m = members_.at(h);
  VDM_REQUIRE(m.alive);
  if (m.parent != kInvalidHost) detach(h);
  std::vector<HostId> orphans = m.children;
  for (const HostId c : orphans) {
    MemberState& cm = members_.at(c);
    cm.parent = kInvalidHost;
    // The orphan remembers its grandparent: that is where reconnection
    // starts (§3.3). Do not clear cm.grandparent here.
  }
  m.children.clear();
  m.child_dist.clear();
  m.alive = false;
  if (m.degree_limit == 1) --limit1_alive_;
  return orphans;
}

void Membership::attach(HostId child, HostId parent, double measured_dist,
                        bool allow_full) {
  VDM_REQUIRE(child != parent);
  MemberState& cm = members_.at(child);
  MemberState& pm = members_.at(parent);
  VDM_REQUIRE_MSG(cm.alive && pm.alive, "attach endpoints must be alive");
  VDM_REQUIRE_MSG(cm.parent == kInvalidHost, "child already has a parent");
  VDM_REQUIRE_MSG(allow_full || pm.has_free_degree(), "parent is at degree limit");
  VDM_REQUIRE_MSG(!is_ancestor(child, parent),
                  "attaching under a descendant would create a cycle");
  VDM_REQUIRE(measured_dist >= 0.0);

  pm.children.push_back(child);
  pm.child_dist[child] = measured_dist;
  cm.parent = parent;
  cm.grandparent = pm.parent;
  refresh_grandparent_of_children(child);
}

void Membership::detach(HostId child) {
  MemberState& cm = members_.at(child);
  VDM_REQUIRE(cm.parent != kInvalidHost);
  MemberState& pm = members_.at(cm.parent);
  const auto it = std::find(pm.children.begin(), pm.children.end(), child);
  VDM_REQUIRE_MSG(it != pm.children.end(), "parent/child pointers out of sync");
  pm.children.erase(it);
  pm.child_dist.erase(child);
  cm.parent = kInvalidHost;
  cm.grandparent = kInvalidHost;
  // Children of `child` now have a detached parent; their grandparent
  // pointer (towards the old parent) is stale until `child` re-attaches,
  // exactly as in the protocol, where grandparent updates ride on
  // (re)connection messages.
}

void Membership::move_child(HostId child, HostId new_parent, double measured_dist,
                            bool allow_full) {
  detach(child);
  attach(child, new_parent, measured_dist, allow_full);
}

double Membership::stored_child_distance(HostId parent, HostId child) const {
  const MemberState& pm = members_.at(parent);
  const auto it = pm.child_dist.find(child);
  VDM_REQUIRE_MSG(it != pm.child_dist.end(), "no stored distance for this edge");
  return it->second;
}

void Membership::update_child_distance(HostId parent, HostId child,
                                       double measured_dist) {
  VDM_REQUIRE(measured_dist >= 0.0);
  MemberState& pm = members_.at(parent);
  const auto it = pm.child_dist.find(child);
  VDM_REQUIRE_MSG(it != pm.child_dist.end(), "no stored distance for this edge");
  it->second = measured_dist;
}

bool Membership::subtree_has_capacity(HostId root, HostId exclude) const {
  if (limit1_alive_ == 0) return true;
  if (root == exclude) return false;
  // DFS over the subtree looking for any member with a free slot; `exclude`
  // (typically a refining node) and everything below it are skipped so a
  // node never counts capacity it would detach from the subtree itself.
  std::vector<HostId> stack{root};
  while (!stack.empty()) {
    const HostId at = stack.back();
    stack.pop_back();
    const MemberState& m = members_.at(at);
    if (m.has_free_degree()) return true;
    for (const HostId c : m.children) {
      if (c != exclude) stack.push_back(c);
    }
  }
  return false;
}

bool Membership::is_ancestor(HostId ancestor, HostId node) const {
  for (HostId at = node; at != kInvalidHost; at = members_.at(at).parent) {
    if (at == ancestor) return true;
  }
  return false;
}

std::vector<HostId> Membership::root_path(HostId node) const {
  std::vector<HostId> path;
  for (HostId at = members_.at(node).parent; at != kInvalidHost;
       at = members_.at(at).parent) {
    path.push_back(at);
    VDM_REQUIRE_MSG(path.size() <= members_.size(), "cycle in parent pointers");
  }
  return path;
}

std::size_t Membership::depth(HostId node) const {
  std::size_t d = 0;
  for (HostId at = node; members_.at(at).parent != kInvalidHost;
       at = members_.at(at).parent) {
    ++d;
    VDM_REQUIRE_MSG(d <= members_.size(), "cycle in parent pointers");
  }
  return d;
}

std::vector<HostId> Membership::alive_members() const {
  std::vector<HostId> out;
  for (HostId h = 0; h < members_.size(); ++h) {
    if (members_[h].alive) out.push_back(h);
  }
  return out;
}

std::vector<HostId> Membership::subtree(HostId root) const {
  std::vector<HostId> out{root};
  for (std::size_t i = 0; i < out.size(); ++i) {
    const MemberState& m = members_.at(out[i]);
    out.insert(out.end(), m.children.begin(), m.children.end());
  }
  return out;
}

void Membership::refresh_grandparent_of_children(HostId node) {
  const MemberState& m = members_.at(node);
  for (const HostId c : m.children) members_.at(c).grandparent = m.parent;
}

void Membership::validate() const {
  for (HostId h = 0; h < members_.size(); ++h) {
    const MemberState& m = members_[h];
    if (!m.alive) {
      VDM_REQUIRE_MSG(m.children.empty() && m.parent == kInvalidHost,
                      "dead member still wired into the tree");
      continue;
    }
    VDM_REQUIRE_MSG(m.overlay_links() <= m.degree_limit,
                    "degree limit exceeded (children + parent link > limit)");
    VDM_REQUIRE_MSG(m.child_dist.size() == m.children.size(),
                    "child distance table out of sync");
    for (const HostId c : m.children) {
      VDM_REQUIRE_MSG(members_.at(c).alive, "dead child in children list");
      VDM_REQUIRE_MSG(members_.at(c).parent == h, "child does not point back");
      // A detached member's children legitimately keep their previous
      // grandparent until it re-attaches (grandparent updates ride on
      // reconnection messages, see detach()) — e.g. the subtree of a
      // crash orphan awaiting failure detection.
      if (m.parent != kInvalidHost) {
        VDM_REQUIRE_MSG(members_.at(c).grandparent == m.parent,
                        "grandparent pointer stale");
      }
      VDM_REQUIRE_MSG(m.child_dist.count(c) == 1, "missing stored distance");
    }
    if (m.parent != kInvalidHost) {
      const auto& pc = members_.at(m.parent).children;
      VDM_REQUIRE_MSG(std::find(pc.begin(), pc.end(), h) != pc.end(),
                      "parent does not list this child");
    }
    // Acyclicity: walking up must terminate.
    (void)root_path(h);
  }
}

}  // namespace vdm::overlay
