#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "overlay/scenario.hpp"
#include "util/rng.hpp"

namespace vdm::overlay {

/// Membership process driving a run. kSlots is the paper's fixed-rate slot
/// timeline (ScenarioDriver::run); the rest compile to an explicit
/// WorkloadEvent list executed by ScenarioDriver::run_trace.
enum class WorkloadKind : std::uint8_t {
  kSlots,    ///< §3.6.2 churn slots (no event list)
  kPoisson,  ///< Poisson arrivals, exponential session lengths
  kDiurnal,  ///< sinusoidally modulated Poisson arrivals (thinning)
  kPareto,   ///< Poisson arrivals, heavy-tailed Pareto session lengths
  kTrace,    ///< replay an event list loaded from a trace file
};

/// Parameters of the synthetic workload generators. Arrival rate follows
/// Little's law — lambda = target_members / mean_session — so membership
/// hovers around the scenario's target under every generated kind.
struct WorkloadParams {
  WorkloadKind kind = WorkloadKind::kSlots;
  /// Mean member session length (simulated time units). Exponential mean
  /// for kPoisson/kDiurnal; the Pareto scale is derived so kPareto keeps
  /// the same mean with a heavy tail.
  double mean_session = 2000.0;
  /// Pareto shape; must exceed 1 so the mean session length exists.
  double pareto_alpha = 1.5;
  /// Period of the diurnal arrival-rate wave.
  double diurnal_period = 4000.0;
  /// Relative swing of the diurnal wave, in [0, 1]:
  /// lambda(t) = lambda * (1 + amplitude * sin(2*pi*(t - join_phase)/period)).
  double diurnal_amplitude = 0.8;
  /// Trace file to replay (kTrace only).
  std::string trace_path;
};

/// Parses a --workload argument: "slots", "poisson", "diurnal", "pareto" or
/// "trace:<file>" (which also fills trace_path). Returns false on anything
/// else, leaving `out` untouched.
bool parse_workload_kind(std::string_view text, WorkloadParams& out);

/// Short name of a kind ("slots", "poisson", ...), for tables and labels.
std::string_view workload_kind_name(WorkloadKind kind);

/// Generates a time-ordered event list for a synthetic kind (not kSlots /
/// kTrace): staggered initial joins over the join phase, an optional flash
/// crowd of `scenario.flash_count` joins at `scenario.flash_at`, and from
/// the end of the join phase onward the kind's arrival process, with every
/// member's departure (leave, or crash with `scenario.crash_fraction`)
/// scheduled at join time from its sampled session length. Hosts are drawn
/// from the pool [0, num_hosts) minus `source`; arrivals finding the pool
/// empty are skipped. All randomness comes from `rng`, so a seed fully
/// determines the list. Fills `out` (cleared first).
void generate_workload(const ScenarioParams& scenario,
                       const WorkloadParams& workload, std::size_t num_hosts,
                       net::HostId source, util::Rng& rng,
                       std::vector<WorkloadEvent>& out);

/// Writes events as a CSV trace — `t,join|leave|crash,host[,degree]` lines,
/// '#' comments — at full double precision, so parse_trace(write_trace(ev))
/// reproduces `ev` exactly and a replay is bit-identical to the source run.
void write_trace(std::ostream& os, std::span<const WorkloadEvent> events);
void write_trace_file(const std::string& path,
                      std::span<const WorkloadEvent> events);

/// Parses a trace. Fields may be separated by commas or whitespace, so both
/// this CSV format and testbed scenario-file join/leave/crash lines load;
/// 'terminate' lines are ignored, 'flash' bursts are rejected (a trace must
/// name concrete hosts). Malformed lines fail with the line number. Fills
/// `out` (cleared first).
void parse_trace(std::istream& is, std::vector<WorkloadEvent>& out);
void parse_trace(const std::string& text, std::vector<WorkloadEvent>& out);
void load_trace_file(const std::string& path, std::vector<WorkloadEvent>& out);

}  // namespace vdm::overlay
