#pragma once

#include <string_view>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace vdm::overlay {

class Session;
class WalkObserver;
class PipelineSupport;

/// Cost/latency ledger of one protocol operation (join, reconnect, refine).
/// Protocols accumulate into it through Session's measurement/messaging
/// primitives; the session turns `elapsed` into startup / reconnection time
/// and outage intervals, and `messages` into the overhead metric.
struct OpStats {
  int messages = 0;
  sim::Time elapsed = 0.0;
  int iterations = 0;
  bool parent_changed = false;

  OpStats& operator+=(const OpStats& o) {
    messages += o.messages;
    elapsed += o.elapsed;
    iterations += o.iterations;
    parent_changed = parent_changed || o.parent_changed;
    return *this;
  }
};

/// An overlay multicast tree-construction protocol (VDM, HMTP, ...).
///
/// The session owns membership, timing, churn and the data plane; the
/// protocol only decides *where a node attaches*. All three operations run
/// against the current tree and mutate it through Session/Membership
/// primitives, charging their message and latency costs into the returned
/// OpStats.
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string_view name() const = 0;

  /// Finds a parent for `joiner` (alive, detached) starting the search at
  /// `start`, and attaches it (including any restructuring such as VDM's
  /// Case II splice). Must leave the tree valid.
  virtual OpStats execute_join(Session& session, net::HostId joiner,
                               net::HostId start) = 0;

  /// One refinement round for `node`: re-evaluate its attachment point and
  /// switch parents if the protocol finds a better one (make-before-break,
  /// so no data outage). Default: protocols without refinement do nothing.
  virtual OpStats execute_refine(Session& session, net::HostId node);

  /// Whether the session should arm periodic refinement timers, and how
  /// often they fire.
  virtual bool wants_refinement() const { return false; }
  virtual sim::Time refinement_period() const { return sim::minutes(3); }

  /// Installs (or clears, with nullptr) a tracing observer that every
  /// TreeWalk this protocol runs reports its per-iteration steps to. The
  /// observer must outlive the protocol's use of it.
  void set_walk_observer(WalkObserver* observer) { walk_observer_ = observer; }

  /// Passed to TreeWalk by the protocol's walk call sites (and by the
  /// session's concurrent-join drain); null when unset.
  WalkObserver* walk_observer() const { return walk_observer_; }

  /// The protocol's adapter to the concurrent join pipeline (see
  /// overlay/walk.hpp). Null means the protocol only supports sequential
  /// joins; Session rejects join_mode == kConcurrent for it.
  virtual PipelineSupport* pipeline_support() { return nullptr; }

 private:
  WalkObserver* walk_observer_ = nullptr;
};

}  // namespace vdm::overlay
