#include "overlay/workload.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numbers>
#include <queue>
#include <sstream>
#include <string>

#include "util/require.hpp"

namespace vdm::overlay {

namespace {

/// A member's scheduled departure. `seq` breaks time ties by join order so
/// the generated stream is a pure function of the rng.
struct Departure {
  double at = 0.0;
  std::uint64_t seq = 0;
  net::HostId host = net::kInvalidHost;
  bool crash = false;

  bool operator>(const Departure& other) const {
    if (at != other.at) return at > other.at;
    return seq > other.seq;
  }
};

using DepartureQueue =
    std::priority_queue<Departure, std::vector<Departure>, std::greater<>>;

}  // namespace

bool parse_workload_kind(std::string_view text, WorkloadParams& out) {
  if (text == "slots") {
    out.kind = WorkloadKind::kSlots;
  } else if (text == "poisson") {
    out.kind = WorkloadKind::kPoisson;
  } else if (text == "diurnal") {
    out.kind = WorkloadKind::kDiurnal;
  } else if (text == "pareto") {
    out.kind = WorkloadKind::kPareto;
  } else if (text.starts_with("trace:") && text.size() > 6) {
    out.kind = WorkloadKind::kTrace;
    out.trace_path = std::string(text.substr(6));
  } else {
    return false;
  }
  return true;
}

std::string_view workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kSlots: return "slots";
    case WorkloadKind::kPoisson: return "poisson";
    case WorkloadKind::kDiurnal: return "diurnal";
    case WorkloadKind::kPareto: return "pareto";
    case WorkloadKind::kTrace: return "trace";
  }
  return "?";
}

void generate_workload(const ScenarioParams& scenario,
                       const WorkloadParams& workload, std::size_t num_hosts,
                       net::HostId source, util::Rng& rng,
                       std::vector<WorkloadEvent>& out) {
  const WorkloadKind kind = workload.kind;
  VDM_REQUIRE_MSG(kind == WorkloadKind::kPoisson ||
                      kind == WorkloadKind::kDiurnal ||
                      kind == WorkloadKind::kPareto,
                  "generate_workload handles the synthetic kinds only; kSlots "
                  "runs the slot machinery and kTrace loads a file");
  VDM_REQUIRE(scenario.target_members >= 1);
  VDM_REQUIRE_MSG(scenario.target_members + scenario.flash_count < num_hosts,
                  "need spare hosts beyond the target membership for churn");
  VDM_REQUIRE(workload.mean_session > 0.0);
  if (kind == WorkloadKind::kPareto) {
    VDM_REQUIRE_MSG(workload.pareto_alpha > 1.0,
                    "Pareto shape must exceed 1 for a finite mean session");
  }
  if (kind == WorkloadKind::kDiurnal) {
    VDM_REQUIRE(workload.diurnal_period > 0.0);
    VDM_REQUIRE(workload.diurnal_amplitude >= 0.0 &&
                workload.diurnal_amplitude <= 1.0);
  }

  out.clear();

  std::vector<net::HostId> pool;
  pool.reserve(num_hosts - 1);
  for (net::HostId h = 0; h < num_hosts; ++h) {
    if (h != source) pool.push_back(h);
  }
  auto draw_host = [&]() -> net::HostId {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    const net::HostId h = pool[i];
    pool[i] = pool.back();
    pool.pop_back();
    return h;
  };

  // Pareto scale chosen so the mean session matches the exponential kinds:
  // E[Pareto(xm, a)] = xm * a / (a - 1).
  const double pareto_xm =
      workload.mean_session * (workload.pareto_alpha - 1.0) /
      workload.pareto_alpha;
  auto session_length = [&]() -> double {
    if (kind == WorkloadKind::kPareto) {
      return rng.pareto(pareto_xm, workload.pareto_alpha);
    }
    return rng.exponential(workload.mean_session);
  };

  // Pre-drawn arrival instants: the staggered initial joins (same window as
  // ScenarioDriver::schedule_initial_joins) plus the flash burst.
  std::vector<double> seeded;
  seeded.reserve(scenario.target_members + scenario.flash_count);
  for (std::size_t i = 0; i < scenario.target_members; ++i) {
    seeded.push_back(
        rng.uniform(0.001, std::max(0.002, scenario.join_phase)));
  }
  std::sort(seeded.begin(), seeded.end());
  if (scenario.flash_count > 0) {
    const auto pos =
        std::upper_bound(seeded.begin(), seeded.end(), scenario.flash_at);
    seeded.insert(pos, scenario.flash_count, scenario.flash_at);
  }

  // Little's law: this arrival rate balances mean_session departures at the
  // target membership.
  const double lambda =
      static_cast<double>(scenario.target_members) / workload.mean_session;
  const double lambda_max =
      kind == WorkloadKind::kDiurnal
          ? lambda * (1.0 + workload.diurnal_amplitude)
          : lambda;
  // Ongoing arrivals start when the join phase ends; diurnal modulation is
  // realized by thinning a homogeneous lambda_max stream.
  auto next_arrival_after = [&](double t) -> double {
    for (;;) {
      t += rng.exponential(1.0 / lambda_max);
      if (kind != WorkloadKind::kDiurnal) return t;
      const double phase = 2.0 * std::numbers::pi *
                           (t - scenario.join_phase) / workload.diurnal_period;
      const double rate =
          lambda * (1.0 + workload.diurnal_amplitude * std::sin(phase));
      if (rng.chance(rate / lambda_max)) return t;
      if (t > scenario.total_time) return t;  // past the horizon; stop thinning
    }
  };

  DepartureQueue departures;
  std::uint64_t seq = 0;

  auto emit_arrival = [&](double at) {
    // A saturated pool (membership fluctuated up to the host count) simply
    // drops the arrival; the driver-side pool can therefore never exhaust.
    if (pool.empty()) return;
    const net::HostId h = draw_host();
    const int degree = scenario.degrees.sample(rng);
    out.push_back({at, WorkloadEvent::Kind::kJoin, h, degree});
    const double leaves_at = at + session_length();
    // crash_fraction == 0 short-circuits before chance(), as in the driver.
    const bool crash = scenario.crash_fraction > 0.0 &&
                       rng.chance(scenario.crash_fraction);
    if (leaves_at <= scenario.total_time) {
      departures.push({leaves_at, seq++, h, crash});
    }
    // else: the member outlives the run; its host never returns to the pool.
  };

  constexpr double kNever = std::numeric_limits<double>::infinity();
  std::size_t next_seeded = 0;
  double next_generated = next_arrival_after(scenario.join_phase);
  for (;;) {
    const double seeded_at =
        next_seeded < seeded.size() ? seeded[next_seeded] : kNever;
    const double arrival_at = std::min(seeded_at, next_generated);
    const double departure_at =
        departures.empty() ? kNever : departures.top().at;
    if (std::min(arrival_at, departure_at) > scenario.total_time) break;
    if (arrival_at <= departure_at) {
      emit_arrival(arrival_at);
      if (seeded_at <= next_generated) {
        ++next_seeded;
      } else {
        next_generated = next_arrival_after(next_generated);
      }
    } else {
      const Departure d = departures.top();
      departures.pop();
      out.push_back({d.at,
                     d.crash ? WorkloadEvent::Kind::kCrash
                             : WorkloadEvent::Kind::kLeave,
                     d.host, 4});
      pool.push_back(d.host);
    }
  }
}

void write_trace(std::ostream& os, std::span<const WorkloadEvent> events) {
  // Full double precision so a written trace replays bit-identically.
  os.precision(17);
  os << "# vdm workload trace: t,join|leave|crash,host[,degree]\n";
  for (const WorkloadEvent& e : events) {
    switch (e.kind) {
      case WorkloadEvent::Kind::kJoin:
        os << e.at << ",join," << e.host << ',' << e.degree << '\n';
        break;
      case WorkloadEvent::Kind::kLeave:
        os << e.at << ",leave," << e.host << '\n';
        break;
      case WorkloadEvent::Kind::kCrash:
        os << e.at << ",crash," << e.host << '\n';
        break;
    }
  }
}

void write_trace_file(const std::string& path,
                      std::span<const WorkloadEvent> events) {
  std::ofstream os(path);
  VDM_REQUIRE_MSG(os.is_open(), "cannot open trace file for writing: " + path);
  write_trace(os, events);
  VDM_REQUIRE_MSG(static_cast<bool>(os), "error writing trace file: " + path);
}

void parse_trace(std::istream& is, std::vector<WorkloadEvent>& out) {
  out.clear();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Commas and whitespace both separate fields: the CSV trace format and
    // testbed scenario-file lines share this parser.
    std::replace(line.begin(), line.end(), ',', ' ');
    std::istringstream ls(line);
    double at = 0.0;
    std::string kind;
    if (!(ls >> at >> kind)) continue;  // blank / comment-only line
    if (kind == "terminate") continue;  // testbed end marker; the horizon is
                                        // total_time, not a trace line
    VDM_REQUIRE_MSG(kind != "flash",
                    "trace line " + std::to_string(line_no) +
                        ": flash bursts must be expanded to concrete join "
                        "lines before replay");
    WorkloadEvent e;
    e.at = at;
    std::uint64_t host = 0;
    VDM_REQUIRE_MSG(static_cast<bool>(ls >> host),
                    "trace line " + std::to_string(line_no) + ": " + kind +
                        " needs a host id");
    e.host = static_cast<net::HostId>(host);
    if (kind == "join") {
      e.kind = WorkloadEvent::Kind::kJoin;
      int degree = 4;
      if (ls >> degree) {
        VDM_REQUIRE_MSG(degree >= 1, "trace line " + std::to_string(line_no) +
                                         ": degree must be >= 1");
        e.degree = degree;
      }
    } else if (kind == "leave") {
      e.kind = WorkloadEvent::Kind::kLeave;
    } else if (kind == "crash") {
      e.kind = WorkloadEvent::Kind::kCrash;
    } else {
      VDM_REQUIRE_MSG(false, "trace line " + std::to_string(line_no) +
                                 ": unknown event kind '" + kind + "'");
    }
    out.push_back(e);
  }
}

void parse_trace(const std::string& text, std::vector<WorkloadEvent>& out) {
  std::istringstream is(text);
  parse_trace(is, out);
}

void load_trace_file(const std::string& path,
                     std::vector<WorkloadEvent>& out) {
  std::ifstream is(path);
  VDM_REQUIRE_MSG(is.is_open(), "cannot open trace file: " + path);
  parse_trace(is, out);
}

}  // namespace vdm::overlay
