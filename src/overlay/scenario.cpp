#include "overlay/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/require.hpp"

namespace vdm::overlay {

DegreeSpec DegreeSpec::uniform(int lo, int hi) {
  VDM_REQUIRE(lo >= 1 && hi >= lo);
  return DegreeSpec{lo, hi, -1.0};
}

DegreeSpec DegreeSpec::average(double avg) {
  VDM_REQUIRE(avg >= 1.0);
  const int lo = static_cast<int>(std::floor(avg));
  const int hi = static_cast<int>(std::ceil(avg));
  if (lo == hi) return DegreeSpec{lo, hi, 0.0};
  return DegreeSpec{lo, hi, avg - lo};
}

int DegreeSpec::sample(util::Rng& rng) const {
  if (p_hi < 0.0) return static_cast<int>(rng.uniform_int(lo, hi));
  return rng.chance(p_hi) ? hi : lo;
}

double DegreeSpec::mean() const {
  if (p_hi < 0.0) return (lo + hi) / 2.0;
  return lo + p_hi * (hi - lo);
}

ScenarioDriver::ScenarioDriver(Session& session, const ScenarioParams& params,
                               util::Rng rng, ScenarioScratch* scratch)
    : session_(session), params_(params), rng_(rng), scratch_(scratch) {
  VDM_REQUIRE(params_.target_members >= 1);
  VDM_REQUIRE_MSG(
      params_.target_members + params_.flash_count <
          session.underlay().num_hosts(),
      "need spare hosts beyond the target membership for churn");
  VDM_REQUIRE(params_.churn_rate >= 0.0 && params_.churn_rate <= 1.0);
  VDM_REQUIRE(params_.crash_fraction >= 0.0 && params_.crash_fraction <= 1.0);
  VDM_REQUIRE(params_.settle_time < params_.churn_interval);
  if (scratch_ != nullptr) {
    available_ = std::move(scratch_->available);
    in_overlay_ = std::move(scratch_->in_overlay);
    pending_leave_ = std::move(scratch_->pending_leave);
    available_.clear();
    in_overlay_.clear();
  }
  pending_leave_.assign(session.underlay().num_hosts(), 0);
  for (net::HostId h = 0; h < session.underlay().num_hosts(); ++h) {
    if (h != session.source()) available_.push_back(h);
  }
}

ScenarioDriver::~ScenarioDriver() {
  if (scratch_ == nullptr) return;
  scratch_->available = std::move(available_);
  scratch_->in_overlay = std::move(in_overlay_);
  scratch_->pending_leave = std::move(pending_leave_);
}

net::HostId ScenarioDriver::draw_available() {
  if (available_.empty()) {
    // Joins outran departures: target_members + flash_count + the churn
    // joiners still in flight exceed the underlay host pool.
    VDM_REQUIRE_MSG(false,
                    "host pool exhausted: target_members (" +
                        std::to_string(params_.target_members) +
                        ") + flash_count (" + std::to_string(params_.flash_count) +
                        ") + in-flight churn joins exceed the " +
                        std::to_string(session_.underlay().num_hosts()) +
                        "-host underlay pool; enlarge host_pool / --nodes");
  }
  const auto i = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(available_.size()) - 1));
  const net::HostId h = available_[i];
  available_[i] = available_.back();
  available_.pop_back();
  return h;
}

net::HostId ScenarioDriver::draw_victim() {
  // Pick an alive member that is not already scheduled to leave this slot.
  VDM_REQUIRE(!in_overlay_.empty());
  if (pending_count_ >= in_overlay_.size()) {
    return net::kInvalidHost;  // slot churn exceeds membership; skip this pair
  }
  // A non-pending member exists, so rejection sampling terminates; the draw
  // sequence matches the historic capped loop on every path that succeeded.
  for (;;) {
    const auto i = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(in_overlay_.size()) - 1));
    const net::HostId h = in_overlay_[i];
    if (!pending_leave_[h]) {
      pending_leave_[h] = 1;
      ++pending_count_;
      return h;
    }
  }
}

void ScenarioDriver::do_join(net::HostId h) {
  session_.join(h, params_.degrees.sample(rng_));
  in_overlay_.push_back(h);
}

void ScenarioDriver::do_join_traced(net::HostId h, int degree) {
  // Membership is validated here, at event time, not when the trace is
  // scheduled: a host may join, leave and rejoin within one trace.
  VDM_REQUIRE_MSG(
      std::find(in_overlay_.begin(), in_overlay_.end(), h) == in_overlay_.end(),
      "trace joins host " + std::to_string(h) + " which is already a member");
  session_.join(h, degree);
  in_overlay_.push_back(h);
}

void ScenarioDriver::do_leave(net::HostId h) {
  // Validate membership before touching the session so a bad trace fails
  // with the host id instead of a session-internal invariant.
  const auto it = std::find(in_overlay_.begin(), in_overlay_.end(), h);
  VDM_REQUIRE_MSG(it != in_overlay_.end(),
                  "leave of host " + std::to_string(h) + " which is not a member");
  session_.leave(h);
  if (pending_leave_[h]) {
    pending_leave_[h] = 0;
    --pending_count_;
  }
  *it = in_overlay_.back();
  in_overlay_.pop_back();
  available_.push_back(h);
}

void ScenarioDriver::do_crash(net::HostId h) {
  const auto it = std::find(in_overlay_.begin(), in_overlay_.end(), h);
  VDM_REQUIRE_MSG(it != in_overlay_.end(),
                  "crash of host " + std::to_string(h) + " which is not a member");
  session_.crash(h);
  if (pending_leave_[h]) {
    pending_leave_[h] = 0;
    --pending_count_;
  }
  *it = in_overlay_.back();
  in_overlay_.pop_back();
  available_.push_back(h);
}

void ScenarioDriver::schedule_initial_joins() {
  transport::Reactor& sim = session_.reactor();
  for (std::size_t i = 0; i < params_.target_members; ++i) {
    const net::HostId h = draw_available();
    // Small positive floor keeps the source's activation strictly first.
    const sim::Time t = rng_.uniform(0.001, std::max(0.002, params_.join_phase));
    sim.schedule_at(t, [this, h] { do_join(h); });
  }
}

void ScenarioDriver::schedule_flash_crowd() {
  if (params_.flash_count == 0) return;
  transport::Reactor& sim = session_.reactor();
  // Every flash member joins at the same instant — one timestamp, one drain
  // batch under the concurrent pipeline. Hosts are drawn here, in schedule
  // order, so the arrival set is a pure function of the seed.
  for (std::size_t i = 0; i < params_.flash_count; ++i) {
    const net::HostId h = draw_available();
    sim.schedule_at(params_.flash_at, [this, h] { do_join(h); });
  }
}

void ScenarioDriver::schedule_churn_slots(const MeasureFn& on_measure) {
  transport::Reactor& sim = session_.reactor();
  const std::size_t churn_count = static_cast<std::size_t>(
      std::llround(params_.churn_rate * static_cast<double>(params_.target_members)));

  schedule_measurement_grid(on_measure);

  // Slot times come from the closed form first_slot + i * interval, not an
  // accumulating `slot += interval`: over long horizons at short intervals
  // the accumulated rounding error shifts (or drops) the final slot.
  const sim::Time first_slot = params_.join_phase + params_.settle_time;
  for (std::size_t i = 0;; ++i) {
    const sim::Time slot =
        first_slot + static_cast<double>(i) * params_.churn_interval;
    const sim::Time slot_end =
        first_slot + static_cast<double>(i + 1) * params_.churn_interval;
    if (!(slot_end <= params_.total_time)) break;
    const sim::Time active_span = params_.churn_interval - params_.settle_time;
    // Decide victims at slot start (so they are alive then); spread the
    // leave/join actions over the active part of the slot.
    sim.schedule_at(slot, [this, churn_count, active_span] {
      transport::Reactor& s = session_.reactor();
      for (std::size_t j = 0; j < churn_count; ++j) {
        const net::HostId victim = draw_victim();
        // A failed victim draw (slot churn >= membership) skips the whole
        // replacement pair: joining anyway would creep membership above
        // target_members, one host per failed draw, for the rest of the run.
        if (victim == net::kInvalidHost) continue;
        // crash_fraction == 0 short-circuits before chance(), leaving the
        // rng stream of all-graceful runs untouched.
        const bool crash = params_.crash_fraction > 0.0 &&
                           rng_.chance(params_.crash_fraction);
        if (crash) {
          s.schedule_in(rng_.uniform(0.0, active_span),
                        [this, victim] { do_crash(victim); });
        } else {
          s.schedule_in(rng_.uniform(0.0, active_span),
                        [this, victim] { do_leave(victim); });
        }
        const net::HostId joiner = draw_available();
        s.schedule_in(rng_.uniform(0.0, active_span), [this, joiner] { do_join(joiner); });
      }
    });
  }
}

void ScenarioDriver::schedule_measurement_grid(const MeasureFn& on_measure) {
  transport::Reactor& sim = session_.reactor();
  // Settled grid shared by the slot and trace timelines: one point after the
  // join phase settles, then one at the end of every churn interval. Closed
  // form per point — same grid at any horizon/interval ratio.
  const sim::Time first_slot = params_.join_phase + params_.settle_time;
  sim.schedule_at(first_slot,
                  [this, &on_measure] { on_measure(session_.reactor().now()); });
  for (std::size_t i = 0;; ++i) {
    // The measurement closing slot i sits at first_slot + (i+1) * interval —
    // the same closed form (and the same bound check) as the slot loop, so
    // grid point i+1 and slot i+1's start coincide bitwise even at intervals
    // like 0.1 where `slot + interval` rounds differently.
    const sim::Time slot_end =
        first_slot + static_cast<double>(i + 1) * params_.churn_interval;
    if (!(slot_end <= params_.total_time)) break;
    sim.schedule_at(slot_end,
                    [this, &on_measure] { on_measure(session_.reactor().now()); });
  }
}

void ScenarioDriver::schedule_batched_joins(const MeasureFn& on_measure) {
  transport::Reactor& sim = session_.reactor();
  std::size_t scheduled = 0;
  for (std::size_t i = 0; scheduled < params_.target_members; ++i) {
    // Closed-form slot time, as in schedule_churn_slots.
    const sim::Time slot = static_cast<double>(i) * params_.churn_interval;
    const std::size_t batch =
        std::min(params_.batch_size, params_.target_members - scheduled);
    const sim::Time active_span = params_.churn_interval - params_.settle_time;
    for (std::size_t j = 0; j < batch; ++j) {
      const net::HostId h = draw_available();
      sim.schedule_at(slot + rng_.uniform(0.001, active_span), [this, h] { do_join(h); });
    }
    sim.schedule_at(slot + params_.churn_interval,
                    [this, &on_measure] { on_measure(session_.reactor().now()); });
    scheduled += batch;
  }
}

void ScenarioDriver::schedule_trace_events(std::span<const WorkloadEvent> events) {
  transport::Reactor& sim = session_.reactor();
  const std::size_t num_hosts = session_.underlay().num_hosts();
  sim::Time prev = 0.0;
  for (const WorkloadEvent& ev : events) {
    VDM_REQUIRE_MSG(ev.at >= prev, "trace events must be sorted by time");
    prev = ev.at;
    VDM_REQUIRE_MSG(ev.host < num_hosts && ev.host != session_.source(),
                    "trace references host " + std::to_string(ev.host) +
                        " outside the " + std::to_string(num_hosts) +
                        "-host underlay (or the source)");
    switch (ev.kind) {
      case WorkloadEvent::Kind::kJoin: {
        VDM_REQUIRE(ev.degree >= 1);
        const net::HostId h = ev.host;
        const int degree = ev.degree;
        sim.schedule_at(ev.at, [this, h, degree] { do_join_traced(h, degree); });
        break;
      }
      case WorkloadEvent::Kind::kLeave: {
        const net::HostId h = ev.host;
        sim.schedule_at(ev.at, [this, h] { do_leave(h); });
        break;
      }
      case WorkloadEvent::Kind::kCrash: {
        const net::HostId h = ev.host;
        sim.schedule_at(ev.at, [this, h] { do_crash(h); });
        break;
      }
    }
  }
}

void ScenarioDriver::run(const MeasureFn& on_measure) {
  VDM_REQUIRE(on_measure != nullptr);
  session_.start();
  if (params_.batched_joins) {
    schedule_batched_joins(on_measure);
  } else {
    schedule_initial_joins();
    schedule_churn_slots(on_measure);
  }
  schedule_flash_crowd();
  session_.reactor().run_until(params_.total_time);
  session_.stop();
}

void ScenarioDriver::run_trace(std::span<const WorkloadEvent> events,
                               const MeasureFn& on_measure) {
  VDM_REQUIRE(on_measure != nullptr);
  session_.start();
  // Measurements first, then the events: at an equal timestamp the settled
  // measurement fires before the next batch of membership changes, matching
  // the slot timeline's insertion order.
  schedule_measurement_grid(on_measure);
  schedule_trace_events(events);
  session_.reactor().run_until(params_.total_time);
  session_.stop();
}

}  // namespace vdm::overlay
