#include "overlay/metric.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace vdm::overlay {

// measure() routes through probe_base() + finish_probe() for every provider
// that opts into concurrent probing, so the parallel split (pure phase
// concurrent, rng completion serial) is bit-identical to the one-call form
// by construction rather than by parallel maintenance of two code paths.

double DelayMetric::measure(const net::Underlay& net, net::HostId a,
                            net::HostId b, util::Rng& rng) const {
  return finish_probe(probe_base(net, a, b), rng);
}

double DelayMetric::finish_probe(const ProbeBase& base, util::Rng& rng) const {
  double v = base.first;
  if (noise_frac_ > 0.0) v *= std::max(0.1, rng.normal(1.0, noise_frac_));
  return v;
}

double LossMetric::measure(const net::Underlay& net, net::HostId a,
                           net::HostId b, util::Rng& rng) const {
  return finish_probe(probe_base(net, a, b), rng);
}

double LossMetric::finish_probe(const ProbeBase& base, util::Rng& rng) const {
  const double p = base.first;
  int lost = 0;
  for (int i = 0; i < probes_; ++i) {
    if (rng.chance(p)) ++lost;
  }
  // Estimated loss rate, clamped away from 1 so the log stays finite; one
  // lost probe out of `probes_` is the measurement floor.
  const double est = std::min(static_cast<double>(lost) / probes_, 0.99);
  return -std::log(1.0 - est) + delay_tiebreak_ * base.second;
}

sim::Time LossMetric::measurement_time(const net::Underlay& net, net::HostId a,
                                       net::HostId b) const {
  // Probes are pipelined `probe_spacing_` apart; the burst completes one
  // RTT after the last probe leaves.
  return probe_spacing_ * (probes_ - 1) + net.rtt(a, b);
}

CachedMetric::CachedMetric(std::unique_ptr<MetricProvider> inner,
                           const sim::Simulator& clock, sim::Time ttl)
    : inner_(std::move(inner)), clock_(clock), ttl_(ttl) {
  VDM_REQUIRE(inner_ != nullptr);
  VDM_REQUIRE(ttl_ > 0.0);
}

std::uint64_t CachedMetric::key(net::HostId a, net::HostId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

double CachedMetric::measure(const net::Underlay& net, net::HostId a,
                             net::HostId b, util::Rng& rng) const {
  Cost ignored;
  return measure_with_cost(net, a, b, rng, ignored);
}

double CachedMetric::measure_with_cost(const net::Underlay& net, net::HostId a,
                                       net::HostId b, util::Rng& rng,
                                       Cost& cost) const {
  const std::uint64_t k = key(a, b);
  const auto it = cache_.find(k);
  if (it != cache_.end() && clock_.now() - it->second.measured_at <= ttl_) {
    ++hits_;
    cost = Cost{};  // answered from the local statistics service
    return it->second.value;
  }
  ++misses_;
  const double v = inner_->measure_with_cost(net, a, b, rng, cost);
  cache_[k] = Entry{v, clock_.now()};
  return v;
}

BlendMetric::BlendMetric(double weight_delay, double weight_loss, int probes,
                         double probe_spacing)
    : w_delay_(weight_delay), w_loss_(weight_loss),
      delay_(0.0), loss_(probes, probe_spacing, 0.0) {
  VDM_REQUIRE(weight_delay >= 0.0 && weight_loss >= 0.0);
  VDM_REQUIRE(weight_delay + weight_loss > 0.0);
}

double BlendMetric::measure(const net::Underlay& net, net::HostId a,
                            net::HostId b, util::Rng& rng) const {
  return finish_probe(probe_base(net, a, b), rng);
}

double BlendMetric::finish_probe(const ProbeBase& base, util::Rng& rng) const {
  // Normalize delay to "per 100 ms" and loss-length to "per 1 %" so the
  // weights are unitless knobs of comparable magnitude. Both components
  // share one base: the delay part reads the rtt, the loss part the loss
  // probability (and the rtt for its — here zero-weighted — tiebreaker).
  const double d = delay_.finish_probe({base.second, 0.0}, rng) / 0.100;
  const double l = loss_.finish_probe(base, rng) / 0.010;
  return w_delay_ * d + w_loss_ * l;
}

int BlendMetric::messages_per_measurement() const {
  return w_loss_ > 0.0 ? loss_.messages_per_measurement()
                       : delay_.messages_per_measurement();
}

sim::Time BlendMetric::measurement_time(const net::Underlay& net, net::HostId a,
                                        net::HostId b) const {
  return std::max(delay_.measurement_time(net, a, b),
                  w_loss_ > 0.0 ? loss_.measurement_time(net, a, b) : 0.0);
}

}  // namespace vdm::overlay
