#pragma once

#include <cstdint>
#include <vector>

#include "net/underlay.hpp"
#include "overlay/membership.hpp"
#include "overlay/protocol.hpp"

namespace vdm::overlay {

class Session;

/// The locating-first placement index: given a joiner, names an attached
/// member close to it so the protocol walk starts deep in the tree instead
/// of at the source — O(1) placement plus a short local walk instead of
/// O(depth) probe rounds from the root (cs/0605080's locate-then-walk
/// split; arXiv:1009.0862's observation that coordinates alone suffice for
/// the placement step).
///
/// Two modes, chosen automatically from the underlay at bind():
///  * Coordinate grid (CoordUnderlay): attached members are binned into a
///    ~sqrt(N) x sqrt(N) grid over the session's coordinate bounding box
///    (intrusive doubly-linked cell lists — O(1) attach/detach, zero
///    steady-state allocation). locate() spirals outward over Chebyshev
///    rings from the joiner's cell and picks the candidate with the
///    smallest underlay delay (host id breaks ties), scanning one ring past
///    the first hit so near-boundary neighbors are not missed.
///  * Landmark vectors (graph/matrix substrates, where no coordinates
///    exist): a fixed set of L landmark hosts plus a rendezvous ring of the
///    K most recent attaches, each remembered with its landmark-distance
///    vector (the vector a real member measures once when it joins).
///    locate() probes the L landmarks from the joiner — charged to the join
///    like any probe round — and returns the ring entry with the smallest
///    L2 distance in landmark space.
///
/// The index tracks the tree incrementally as a MembershipObserver: every
/// attach inserts (or refreshes) the member, every detach removes it, so
/// churn keeps the rendezvous set current without rescans. Determinism:
/// updates are driven by tree mutations and lookups scan in fixed order
/// with total tie-breaks, so placement is a pure function of the run
/// history.
///
/// All storage is capacity-preserving across bind() calls; a RunScratch
/// shuttles one index through consecutive runs (Session::
/// swap_placement_index) the same way it shuttles the walk scratch.
class PlacementIndex final : public MembershipObserver {
 public:
  /// Rebinds the index to a session's underlay, empty. Detects the
  /// coordinate substrate by type; everything else uses landmark mode.
  void bind(const net::Underlay& underlay, net::HostId source);

  /// Inserts an attached member directly (the session adds the source at
  /// start(); everything else arrives via on_attach).
  void insert(net::HostId member);

  /// The attached member closest to `joiner`, or kInvalidHost when the
  /// index is empty. Landmark mode probes the landmarks through the
  /// session's measurement plane, charging `stats` like any probe round;
  /// coordinate mode is pure arithmetic (the joiner knows its own
  /// coordinates).
  net::HostId locate(net::HostId joiner, Session& session, OpStats& stats);

  void on_attach(HostId child, HostId parent) override;
  void on_detach(HostId child, HostId parent) override;

  bool bound() const { return underlay_ != nullptr; }
  std::size_t size() const { return size_; }

  /// Heap bytes reserved (RunScratch arena accounting).
  std::size_t capacity_bytes() const;

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  /// Landmark-mode shape: L anchors, a ring of the K latest attaches.
  static constexpr std::size_t kLandmarks = 8;
  static constexpr std::size_t kRingSlots = 64;

  void grid_insert(net::HostId member);
  void grid_remove(net::HostId member);
  net::HostId grid_locate(net::HostId joiner) const;
  std::uint32_t cell_index(net::HostId h) const;

  void ring_insert(net::HostId member);
  void ring_remove(net::HostId member);

  const net::Underlay* underlay_ = nullptr;
  net::HostId source_ = net::kInvalidHost;
  std::size_t size_ = 0;

  // --- coordinate-grid mode ----------------------------------------------
  bool grid_mode_ = false;
  const std::vector<double>* xs_ = nullptr;
  const std::vector<double>* ys_ = nullptr;
  std::uint32_t grid_dim_ = 0;
  double min_x_ = 0.0, min_y_ = 0.0;
  double inv_cell_x_ = 0.0, inv_cell_y_ = 0.0;
  /// Head of each cell's intrusive member list.
  std::vector<std::uint32_t> cell_head_;
  /// Per-host intrusive links + containing cell (kNone = not in the index).
  std::vector<std::uint32_t> next_, prev_, cell_of_;

  // --- landmark mode ------------------------------------------------------
  std::vector<net::HostId> landmarks_;
  /// Rendezvous ring: K slots of (host, landmark vector), evicted
  /// round-robin. slot_of_ maps host -> slot (kNone = absent).
  std::vector<net::HostId> ring_host_;
  std::vector<double> ring_vec_;  // kRingSlots x L, row per slot
  std::vector<std::uint32_t> slot_of_;
  std::uint32_t next_evict_ = 0;

  /// locate() scratch (landmark probe targets and the joiner's vector).
  std::vector<double> joiner_vec_;
};

}  // namespace vdm::overlay
