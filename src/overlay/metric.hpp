#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "net/underlay.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace vdm::overlay {

/// Virtual-distance provider — the generalization axis of the paper
/// (Chapter 4): VDM's join logic is metric-agnostic; plugging a different
/// MetricProvider yields a differently shaped tree (VDM-D vs VDM-L) with
/// zero protocol changes.
///
/// A provider defines what one "measurement" between two hosts costs
/// (messages, wall-clock) and what value it returns, including measurement
/// noise, so both the NS-2-style and the PlanetLab-style experiments charge
/// probing realistically.
class MetricProvider {
 public:
  virtual ~MetricProvider() = default;

  virtual std::string_view name() const = 0;

  /// One measurement of the virtual distance from `a` to `b`. May be noisy;
  /// deterministic given the rng state.
  virtual double measure(const net::Underlay& net, net::HostId a, net::HostId b,
                         util::Rng& rng) const = 0;

  /// Control messages consumed by one measurement (both directions).
  virtual int messages_per_measurement() const = 0;

  /// Wall-clock taken by one measurement initiated at `a`.
  virtual sim::Time measurement_time(const net::Underlay& net, net::HostId a,
                                     net::HostId b) const = 0;

  /// What one measurement costs the control plane.
  struct Cost {
    int messages = 0;
    sim::Time elapsed = 0.0;
  };

  /// Measurement plus its cost, in one call. Default: fixed per-provider
  /// costs; overridden by providers whose cost varies per call (a cache
  /// hit is free, a miss pays the full probe).
  virtual double measure_with_cost(const net::Underlay& net, net::HostId a,
                                   net::HostId b, util::Rng& rng,
                                   Cost& cost) const {
    cost.messages = messages_per_measurement();
    cost.elapsed = measurement_time(net, a, b);
    return measure(net, a, b, rng);
  }

  // ------------------------------------------------------- parallel probing
  // A probe batch splits into a pure phase (underlay reads, safe to compute
  // concurrently) and a serial completion (the rng draws, applied in caller
  // order). Providers that opt in implement measure() as
  // finish_probe(probe_base(...), rng), so the split is bit-identical to the
  // one-call form by construction.

  /// Pure (rng-free) inputs of one measurement a -> b. Field meaning is
  /// provider-private; only finish_probe interprets it.
  struct ProbeBase {
    double first = 0.0;
    double second = 0.0;
  };

  /// True when probe_base() may run concurrently from several threads and
  /// finish_probe(probe_base(net, a, b), rng) reproduces measure(net, a, b,
  /// rng) bit for bit. CachedMetric mutates its cache per call: false.
  virtual bool concurrent_probe_safe() const { return false; }

  /// The pure phase. Only meaningful when concurrent_probe_safe().
  virtual ProbeBase probe_base(const net::Underlay&, net::HostId,
                               net::HostId) const {
    return {};
  }

  /// The serial completion: applies measurement noise, drawing exactly what
  /// measure() would draw.
  virtual double finish_probe(const ProbeBase& base, util::Rng&) const {
    return base.first;
  }
};

/// RTT-based virtual distance (VDM-D, the paper's default): one ping
/// exchange; optional multiplicative measurement noise.
class DelayMetric final : public MetricProvider {
 public:
  /// `noise_frac` is the std. deviation of multiplicative Gaussian noise
  /// (0 = exact measurements, the NS-2 configuration).
  explicit DelayMetric(double noise_frac = 0.0) : noise_frac_(noise_frac) {}

  std::string_view name() const override { return "delay"; }
  double measure(const net::Underlay& net, net::HostId a, net::HostId b,
                 util::Rng& rng) const override;
  int messages_per_measurement() const override { return 2; }
  sim::Time measurement_time(const net::Underlay& net, net::HostId a,
                             net::HostId b) const override {
    return net.rtt(a, b);
  }
  bool concurrent_probe_safe() const override { return true; }
  ProbeBase probe_base(const net::Underlay& net, net::HostId a,
                       net::HostId b) const override {
    return {net.rtt(a, b), 0.0};
  }
  double finish_probe(const ProbeBase& base, util::Rng& rng) const override;

 private:
  double noise_frac_;
};

/// Loss-based virtual distance (VDM-L): a probe burst of `probes` packets
/// estimates the end-to-end loss rate; the virtual distance is the additive
/// loss length -ln(1 - p) plus a vanishing delay component that only breaks
/// ties between equally lossy paths. Costs more messages and more time than
/// DelayMetric — the trade-off the paper calls out (§6.2).
class LossMetric final : public MetricProvider {
 public:
  explicit LossMetric(int probes = 20, double probe_spacing = 0.01,
                      double delay_tiebreak = 1e-3)
      : probes_(probes), probe_spacing_(probe_spacing),
        delay_tiebreak_(delay_tiebreak) {}

  std::string_view name() const override { return "loss"; }
  double measure(const net::Underlay& net, net::HostId a, net::HostId b,
                 util::Rng& rng) const override;
  int messages_per_measurement() const override { return 2 * probes_; }
  sim::Time measurement_time(const net::Underlay& net, net::HostId a,
                             net::HostId b) const override;
  bool concurrent_probe_safe() const override { return true; }
  /// first = end-to-end loss probability, second = rtt (the tiebreaker).
  ProbeBase probe_base(const net::Underlay& net, net::HostId a,
                       net::HostId b) const override {
    return {net.loss(a, b), net.rtt(a, b)};
  }
  double finish_probe(const ProbeBase& base, util::Rng& rng) const override;

 private:
  int probes_;
  double probe_spacing_;
  double delay_tiebreak_;
};

/// Measurement-service decorator — the paper's §6.2 future-work item:
/// "Some third party systems that provide statistics can be used to
/// quicken the process" (iPlane-nano-style). Measurements are cached per
/// host pair for a TTL; a fresh cache hit answers locally (zero messages,
/// negligible time), a miss pays the wrapped provider's full probe. This
/// makes loss-based virtual distances practical for quick startup and
/// reconnection, at the price of possibly stale values within the TTL.
class CachedMetric final : public MetricProvider {
 public:
  /// `clock` supplies the current simulated time for TTL expiry.
  CachedMetric(std::unique_ptr<MetricProvider> inner, const sim::Simulator& clock,
               sim::Time ttl);

  std::string_view name() const override { return "cached"; }
  double measure(const net::Underlay& net, net::HostId a, net::HostId b,
                 util::Rng& rng) const override;
  /// Worst-case (miss) costs; actual per-call costs come from
  /// measure_with_cost.
  int messages_per_measurement() const override {
    return inner_->messages_per_measurement();
  }
  sim::Time measurement_time(const net::Underlay& net, net::HostId a,
                             net::HostId b) const override {
    return inner_->measurement_time(net, a, b);
  }
  double measure_with_cost(const net::Underlay& net, net::HostId a,
                           net::HostId b, util::Rng& rng, Cost& cost) const override;

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  void clear() { cache_.clear(); }

 private:
  struct Entry {
    double value = 0.0;
    sim::Time measured_at = 0.0;
  };
  static std::uint64_t key(net::HostId a, net::HostId b);

  std::unique_ptr<MetricProvider> inner_;
  const sim::Simulator& clock_;
  sim::Time ttl_;
  mutable std::unordered_map<std::uint64_t, Entry> cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

/// Weighted blend of normalized delay and loss distances — the "application
/// states its sensitivity" configuration the generalization chapter argues
/// for. weight_delay + weight_loss need not sum to 1.
class BlendMetric final : public MetricProvider {
 public:
  BlendMetric(double weight_delay, double weight_loss, int probes = 20,
              double probe_spacing = 0.01);

  std::string_view name() const override { return "blend"; }
  double measure(const net::Underlay& net, net::HostId a, net::HostId b,
                 util::Rng& rng) const override;
  int messages_per_measurement() const override;
  sim::Time measurement_time(const net::Underlay& net, net::HostId a,
                             net::HostId b) const override;
  bool concurrent_probe_safe() const override { return true; }
  /// first = loss probability, second = rtt (shared by both components).
  ProbeBase probe_base(const net::Underlay& net, net::HostId a,
                       net::HostId b) const override {
    return {net.loss(a, b), net.rtt(a, b)};
  }
  double finish_probe(const ProbeBase& base, util::Rng& rng) const override;

 private:
  double w_delay_;
  double w_loss_;
  DelayMetric delay_;
  LossMetric loss_;
};

}  // namespace vdm::overlay
