#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/underlay.hpp"
#include "overlay/membership.hpp"
#include "overlay/metric.hpp"
#include "overlay/protocol.hpp"
#include "sim/simulator.hpp"
#include "transport/sim_reactor.hpp"
#include "transport/transport.hpp"
#include "util/rng.hpp"

namespace vdm::overlay {

struct WalkScratch;
class PlacementIndex;
class PipelineSupport;

/// How joins find their place in the tree.
enum class JoinMode {
  /// One walk at a time from the source — the paper's baseline join and the
  /// bit-identical golden path.
  kSequential,
  /// Locating-first: a placement index (overlay/placement.hpp) names a deep
  /// entry node near the joiner, and the protocol walk runs from there —
  /// O(1) placement plus a short local walk instead of O(depth) from the
  /// source. Still one walk at a time.
  kLocating,
  /// Locating-first entry plus the batched concurrent pipeline: all joins
  /// arriving at one timestamp run as interleaved walks in a single drain
  /// event, serialized one step per turn with per-node slot reservations
  /// (see Session::drain_join_batch). Requires a protocol with
  /// PipelineSupport.
  kConcurrent,
};

/// Failure-model knobs (crash detection and lossy control plane). All draws
/// they introduce flow through the session Rng, and every knob at its
/// default reproduces the fault-free run bit for bit: heartbeat_period == 0
/// schedules no probe timers, and lossy_control == false makes
/// charge_exchange / measure skip the loss draw entirely.
struct FaultParams {
  /// Children probe their parent every `heartbeat_period` seconds; 0
  /// disables detection, making crashes observable instantly (idealized).
  double heartbeat_period = 0.0;
  /// Consecutive missed probes before the parent is declared dead.
  int heartbeat_misses = 3;
  /// Extra wait after the last missed probe (its own timeout) before the
  /// orphan declares the parent dead and starts rejoining.
  double heartbeat_timeout = 0.5;
  /// Draw per-message loss on every control exchange; a lost request or
  /// reply costs a timeout plus a retransmission (charged to OpStats).
  bool lossy_control = false;
  /// Control-plane loss applied on top of the underlay path loss (models
  /// overloaded end hosts dropping datagrams, as on PlanetLab).
  double control_loss_extra = 0.0;
  /// Initial retransmission timeout; each retry multiplies it by
  /// backoff_factor up to retry_timeout_max, for at most max_retries
  /// retransmissions (after which the exchange is assumed through — the
  /// control channel is reliable-with-retries, loss shows up as latency
  /// and message overhead, not as protocol failure).
  double retry_timeout = 0.25;
  double backoff_factor = 2.0;
  double retry_timeout_max = 4.0;
  int max_retries = 8;
};

/// Tunables of one multicast session.
struct SessionParams {
  net::HostId source = 0;
  int source_degree_limit = 5;
  /// Data chunks emitted per second at the source (the PlanetLab deployment
  /// used 10/s; simulations may lower this to cut event counts — loss is a
  /// rate, so the statistic is unchanged).
  double chunk_rate = 2.0;
  /// Disable to run control-plane-only experiments (no loss metric).
  bool data_plane = true;
  /// Playout buffer depth, seconds. Reconnection outages shorter than the
  /// buffer are absorbed (the paper's §5.4.3 observation that "a couple of
  /// seconds buffer" hides the ~0.2 s reconnection jitter). 0 = no buffer.
  double buffer_seconds = 0.0;
  /// Validate all tree invariants after every mutation batch (tests).
  bool paranoid_checks = false;
  /// Join placement engine (fresh arrivals only — orphan reconnections
  /// always run the sequential grandparent-first path, whose latency is the
  /// outage metric the paper measures).
  JoinMode join_mode = JoinMode::kSequential;
  /// Crash-failure and control-loss model; defaults are all-off.
  FaultParams faults;
  /// Worker threads for intra-session parallel phases — probe batches and
  /// per-subtree chunk-flood shards: 1 = fully serial (default), 0 =
  /// hardware concurrency, N = cap. Every run_once scalar is bit-identical
  /// for every value: parallel phases compute pure underlay reads
  /// concurrently and commit results (and all rng draws) serially in fixed
  /// FIFO order, and they only engage at all when the underlay reports
  /// concurrent_reads() (matrix/coord substrates; the graph substrate's
  /// mutable caches keep it serial regardless of this knob).
  int threads = 1;
  /// Accumulate wall-clock time per control/data-plane phase (join walks,
  /// refinement, chunk floods) for vdmsim --profile. Off by default: the
  /// hot paths stay free of clock reads, and results are unaffected either
  /// way (the profile never feeds back into the simulation).
  bool profile = false;
};

/// Wall-clock seconds spent per phase of one run (SessionParams::profile).
/// Join covers every tree walk that attaches a member — fresh arrivals,
/// batched concurrent drains and orphan reconnections alike; metrics_secs
/// is filled by the runner (the collector's capture sweeps), not here.
struct PhaseProfile {
  double join_secs = 0.0;
  double refine_secs = 0.0;
  double flood_secs = 0.0;
};

/// Record of one completed join or reconnection.
struct TimingRecord {
  sim::Time at = 0.0;       // when the operation started
  net::HostId host = net::kInvalidHost;
  sim::Time duration = 0.0; // startup / rejoin-handshake time
  /// Crash-detection latency preceding this reconnection: time from the
  /// parent's failure until the orphan declared it dead and began the
  /// rejoin. 0 for graceful leaves and plain joins; detection + duration
  /// is the full outage the viewer experienced.
  sim::Time detection = 0.0;
  int messages = 0;
  int iterations = 0;
};

/// One live multicast session: the source, the member tree, the control
/// plane (joins, graceful leaves, orphan reconnection, refinement timers)
/// and the data plane (periodic chunks flooding down the tree with per-path
/// loss sampling).
///
/// The session is the single mutation point of the overlay; protocols are
/// strategy objects invoked from here. All randomness flows through the
/// session's Rng, so a (seed, scenario) pair reproduces a run exactly.
class Session {
 private:
  /// One node of the per-chunk flood traversal.
  struct ChunkFrame {
    net::HostId host;
    bool delivered;
  };
  /// Per-shard counters of a parallel flood (see flood_subtree).
  struct FloodShard {
    std::uint64_t transmissions = 0;
    std::uint64_t expected = 0;
    std::uint64_t delivered = 0;
  };

 public:
  /// Arena-carried reusable buffers of the session's event paths: the
  /// chunk-flood traversal stack, the parallel-phase probe/flood scratch,
  /// the leave/crash orphan list and the timing-record accumulators. One
  /// bundle lives on each Session; the experiment runner swaps a warm one
  /// in from its RunScratch (swap_scratch) so steady-state sweeps run the
  /// whole data plane and churn path without allocating.
  struct Scratch {
    std::vector<ChunkFrame> chunk_stack;
    std::vector<MetricProvider::ProbeBase> probe_bases;
    std::vector<MetricProvider::Cost> probe_costs;
    std::vector<ChunkFrame> flood_seeds;
    std::vector<FloodShard> flood_results;
    std::vector<std::vector<ChunkFrame>> flood_stacks;
    std::vector<net::HostId> orphans;
    std::vector<TimingRecord> startup_records;
    std::vector<TimingRecord> reconnect_records;

    /// Heap bytes reserved — folded into RunScratch::capacity_bytes so the
    /// arena grow gate covers the data plane and churn paths.
    std::size_t capacity_bytes() const {
      std::size_t bytes =
          (chunk_stack.capacity() + flood_seeds.capacity()) * sizeof(ChunkFrame) +
          probe_bases.capacity() * sizeof(MetricProvider::ProbeBase) +
          probe_costs.capacity() * sizeof(MetricProvider::Cost) +
          flood_results.capacity() * sizeof(FloodShard) +
          flood_stacks.capacity() * sizeof(std::vector<ChunkFrame>) +
          orphans.capacity() * sizeof(net::HostId) +
          (startup_records.capacity() + reconnect_records.capacity()) *
              sizeof(TimingRecord);
      for (const std::vector<ChunkFrame>& s : flood_stacks) {
        bytes += s.capacity() * sizeof(ChunkFrame);
      }
      return bytes;
    }
  };

  /// Simulation-hosted session: time and timers come from the DES, via an
  /// internal SimReactor whose delegation is 1:1 — behaviour (slot order,
  /// event sequence, every golden scalar) is identical to the pre-seam
  /// direct-simulator session.
  Session(sim::Simulator& simulator, const net::Underlay& underlay,
          Protocol& protocol, const MetricProvider& metric,
          const SessionParams& params, util::Rng rng);

  /// Reactor-hosted session: the same protocol core on any transport
  /// backend — vdmd passes a UdpReactor and a MeasuredUnderlay, and joins,
  /// heartbeats and refinement timers run against real sockets and the wall
  /// clock. simulator() is unavailable on this form.
  Session(transport::Reactor& reactor, const net::Underlay& underlay,
          Protocol& protocol, const MetricProvider& metric,
          const SessionParams& params, util::Rng rng);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Activates the source and starts the data stream. Call once, first.
  void start();

  /// Stops the data stream and all refinement timers (end of experiment).
  void stop();

  /// Runs the protocol join for host `h` right now. Returns the timing
  /// record (also retained internally for the metrics collector).
  ///
  /// Under join_mode == kConcurrent the join is only *enqueued*: all
  /// arrivals at the current timestamp are serviced together by one drain
  /// event scheduled behind them (so the batch — and the resulting tree —
  /// is invariant to how callers group same-time join() calls). The
  /// returned record is a placeholder; the real one lands in the startup
  /// records when the walker commits.
  TimingRecord join(net::HostId h, int degree_limit);

  /// Graceful leave: notifies children and parent, detaches `h`, and
  /// reconnects every orphan (grandparent first, source as fallback).
  void leave(net::HostId h);

  /// Ungraceful crash: `h` vanishes without any leave notice. With
  /// heartbeats enabled its children only notice after `heartbeat_misses`
  /// silent probes (detection latency lands in TimingRecord::detection);
  /// with heartbeat_period == 0 they reconnect immediately (idealized
  /// instant detection, the pre-fault behaviour).
  void crash(net::HostId h);

  /// One immediate refinement round for host `h` (also runs on timers).
  OpStats refine(net::HostId h);

  // --- primitives used by protocols -------------------------------------

  /// Virtual-distance measurement `from` -> `to`; charges messages and time.
  double measure(net::HostId from, net::HostId to, OpStats& stats);

  /// Measures `from` -> each target concurrently (the paper's "N pings S
  /// and all children"): message costs add, wall-clock is the slowest probe.
  /// Span-out form: results land in `out` (cleared first) and the returned
  /// span views it — the hot walk path passes scratch here and never
  /// allocates in steady state.
  std::span<const double> measure_parallel(net::HostId from,
                                           std::span<const net::HostId> targets,
                                           std::vector<double>& out,
                                           OpStats& stats);

  /// Allocating convenience wrapper over the span-out form.
  std::vector<double> measure_parallel(net::HostId from,
                                       std::span<const net::HostId> targets,
                                       OpStats& stats);

  /// A request/response exchange with `with` (info request, connection
  /// request): 2 messages, one RTT of elapsed time.
  void charge_exchange(net::HostId from, net::HostId with, OpStats& stats);

  /// One-way notifications (parent change, grandparent change, leave
  /// notice): `count` messages, no added wait.
  void charge_notification(int count, OpStats& stats);

  /// True if `candidate` may serve as (transitive) parent of `joiner`:
  /// alive, not the joiner, and not in the joiner's own subtree.
  bool eligible_parent(net::HostId joiner, net::HostId candidate) const;

  // --- accessors ---------------------------------------------------------
  Membership& tree() { return tree_; }
  const Membership& tree() const { return tree_; }
  const net::Underlay& underlay() const { return underlay_; }
  const MetricProvider& metric() const { return metric_; }
  net::HostId source() const { return params_.source; }
  util::Rng& rng() { return rng_; }
  /// The backing simulator — only valid on a simulation-hosted session
  /// (throws util::InvariantError on a reactor-hosted one). Callers that
  /// merely need time or timers should use reactor() instead.
  sim::Simulator& simulator();
  /// The time/timer backend this session runs on. Always valid.
  transport::Reactor& reactor() { return reactor_; }
  Protocol& protocol() { return protocol_; }

  /// The tree-walk engine's reusable buffers (one set per session — walks
  /// never nest; see overlay/walk.hpp).
  WalkScratch& walk_scratch() { return *walk_scratch_; }

  /// Arena shuttle: swap a warm walk scratch in from a RunScratch (and back
  /// out after the run) so repeated experiments reuse grown buffers. A null
  /// `other` is populated with a fresh scratch first.
  void swap_walk_scratch(std::unique_ptr<WalkScratch>& other);

  /// Arena shuttle for the member tables: swaps the session's Membership
  /// storage (member slots, children capacities, SoA flood arrays) with
  /// `other` and resets the incoming tree to this underlay's host count —
  /// observably identical to a fresh tree, but reusing every buffer the
  /// previous run grew. A null `other` is populated first. Call before
  /// start() to adopt warm storage and again after the run (once the tree
  /// has been read for final metrics) to return it.
  void swap_tree_storage(std::unique_ptr<Membership>& other);

  /// Arena shuttle for the placement index (join_mode != kSequential):
  /// start() rebinds whatever index is installed, reusing its grown grid /
  /// ring storage. A null `other` is populated first.
  void swap_placement_index(std::unique_ptr<PlacementIndex>& other);

  /// Arena shuttle for the event-path buffers (see Scratch): swap a warm
  /// bundle in before start() and back out after the run. The incoming
  /// buffers are cleared on use, never on swap, so stale contents are
  /// harmless and capacity always survives.
  void swap_scratch(Scratch& other) { std::swap(scratch_, other); }

  /// Live per-host reservation counts of the concurrent join pipeline
  /// (non-zero only mid-drain; tests observe it from a WalkObserver).
  const std::vector<int>& join_reservations() const;

  /// Sim-time bounds of the initial-join workload: when the first join
  /// started and when the last join so far finished its handshake
  /// (first_join_at < 0 until a join completes). joins_completed divided by
  /// the spread is the sustained join throughput — for a flash crowd the
  /// spread is the slowest startup in the batch.
  sim::Time first_join_at() const { return first_join_at_; }
  sim::Time last_join_done_at() const { return last_join_done_at_; }

  /// Largest same-instant arrival cohort seen so far (the flash crowd when
  /// one was scheduled; 1 for scattered arrivals) and its makespan — the
  /// longest startup within the cohort, since all its members start
  /// together. size / makespan is the sustained join throughput of the
  /// burst in sim time.
  std::uint64_t join_cohort_size() const { return best_cohort_n_; }
  sim::Time join_cohort_span() const { return best_cohort_span_; }

  // --- counters for the metrics layer ------------------------------------
  struct Counters {
    std::uint64_t control_messages = 0;
    /// Chunk transmissions over overlay edges (each hop of each chunk).
    std::uint64_t data_transmissions = 0;
    /// Chunks emitted at the source.
    std::uint64_t chunks_emitted = 0;
    /// Sum over members of chunks they should have seen / actually saw;
    /// 1 - delivered/expected is the network-wide loss rate of the window.
    std::uint64_t chunks_expected = 0;
    std::uint64_t chunks_delivered = 0;
    std::uint64_t joins_completed = 0;
    std::uint64_t reconnects_completed = 0;
    std::uint64_t crashes = 0;
    std::uint64_t refines_run = 0;
    std::uint64_t refine_switches = 0;
    /// Diagnostics, not metrics: chunk floods that ran the sharded
    /// multi-worker path and probe batches that ran the parallel
    /// compute/serial-commit path. Both count engagements only — results
    /// are bitwise identical either way — so benches and --profile can
    /// assert the parallel machinery actually ran (counter-gated on
    /// single-core recording hosts, where wall clock proves nothing).
    std::uint64_t parallel_floods = 0;
    std::uint64_t parallel_probe_batches = 0;
  };
  /// Counters since the last reset_window() (per-epoch metrics).
  const Counters& window() const { return window_; }
  /// Counters since start() (whole-run metrics).
  const Counters& totals() const { return totals_; }
  /// Per-phase wall clock since start(); all-zero unless params.profile.
  const PhaseProfile& profile() const { return profile_; }
  void reset_window();

  /// Startup / reconnection records accumulated since the last take.
  std::vector<TimingRecord> take_startup_records();
  std::vector<TimingRecord> take_reconnect_records();

  /// Arena variants: swap the accumulated records into `out` (cleared
  /// first); the session keeps accumulating into out's previous storage, so
  /// a capture loop ping-pongs two buffers instead of allocating.
  void drain_startup_records(std::vector<TimingRecord>& out);
  void drain_reconnect_records(std::vector<TimingRecord>& out);

 private:
  TimingRecord run_join(net::HostId h, net::HostId start, bool is_reconnect,
                        sim::Time detection = 0.0, OpStats pre = {});
  /// The join epilogue shared by the sequential path and the pipeline's
  /// commit turns: counters, timing record, flood-table timestamps,
  /// heartbeat (re)arming.
  TimingRecord finish_join(net::HostId h, const OpStats& stats,
                           bool is_reconnect, sim::Time detection);
  /// Locating-first entry: contacts the rendezvous (one exchange with the
  /// source) and asks the placement index for a nearby attached member;
  /// falls back to the source when the index has no answer.
  net::HostId locate_entry(net::HostId h, OpStats& stats);
  /// Services every join enqueued at the current timestamp as one batch of
  /// interleaved walks (round-robin turns over a shared TreeWalk, per-node
  /// slot reservations, park/wake on capacity dead-ends). See DESIGN.md §10.
  void drain_join_batch();
  /// Where an orphan starts its rejoin: grandparent if alive and eligible,
  /// else the source (§3.3; also covers "the grandparent crashed too").
  net::HostId reconnect_start(net::HostId orphan) const;
  void arm_refinement(net::HostId h);
  void disarm_refinement(net::HostId h);
  void ensure_heartbeat(net::HostId h);
  void disarm_heartbeat(net::HostId h);
  void heartbeat_tick(net::HostId h);
  void complete_detection(net::HostId h);
  void forget_crash_orphan(net::HostId h);
  /// Wall-clock of a control exchange of `messages` messages with base
  /// latency `base` under the lossy-control model: draws request/reply loss
  /// and pays timeout + exponential-backoff retransmissions, charging every
  /// retry's messages to `stats`. Returns `base` unchanged (and draws
  /// nothing) when the effective loss is zero or lossy_control is off.
  sim::Time lossy_elapsed(net::HostId from, net::HostId with, int messages,
                          sim::Time base, OpStats& stats);
  void emit_chunk();

  /// True when this probe batch may compute its pure phase concurrently
  /// (threads enabled, underlay and metric both safe, batch big enough to
  /// beat the pool handoff).
  bool parallel_probes_enabled(std::size_t batch) const;
  /// True when emit_chunk may shard the flood across subtrees: requires a
  /// draw-free data plane (zero_loss) so no shard ever touches the rng.
  bool parallel_flood_enabled() const;
  /// Floods the subtree below `seed` (exclusive), accumulating into `res`.
  /// Pure reads + writes to this subtree's FloodTable rows only — safe to
  /// run one shard per thread, since subtrees are disjoint.
  void flood_subtree(ChunkFrame seed, sim::Time now, sim::Time buffered_now,
                     std::vector<ChunkFrame>& stack, FloodShard& res);

  /// The DES backend when simulation-hosted; unbound (and unused) when an
  /// external reactor was supplied. By value so the sim-hosted constructor
  /// stays allocation-free (the arena gate in bench_e2e counts its allocs).
  transport::SimReactor sim_reactor_;
  /// The time/timer seam every call site below goes through.
  transport::Reactor& reactor_;
  /// Non-null only when simulation-hosted (backs simulator()).
  sim::Simulator* des_sim_ = nullptr;
  const net::Underlay& underlay_;
  Protocol& protocol_;
  const MetricProvider& metric_;
  SessionParams params_;
  util::Rng rng_;
  Membership tree_;
  std::unique_ptr<WalkScratch> walk_scratch_;
  /// Installed when join_mode != kSequential (start() binds it and wires it
  /// as the tree's MembershipObserver).
  std::unique_ptr<PlacementIndex> placement_;
  /// A drain event for the current timestamp's join batch is already in the
  /// simulator queue.
  bool drain_scheduled_ = false;
  /// See first_join_at() / last_join_done_at().
  sim::Time first_join_at_ = -1.0;
  sim::Time last_join_done_at_ = 0.0;
  /// Current and best same-instant join cohort (see join_cohort_size()).
  sim::Time cohort_at_ = -1.0;
  std::uint64_t cohort_n_ = 0;
  sim::Time cohort_span_ = 0.0;
  std::uint64_t best_cohort_n_ = 0;
  sim::Time best_cohort_span_ = 0.0;

  /// The data-plane chunk clock: one timer rescheduled in place after each
  /// tick — the TimerId analog of transport::PeriodicTimer, so starting the
  /// data plane costs no heap timer object per run.
  transport::TimerId stream_event_ = transport::kInvalidTimer;

  /// Per-member failure-detector state (only populated when
  /// faults.heartbeat_period > 0).
  struct HeartbeatState {
    std::unique_ptr<transport::PeriodicTimer> timer;
    int misses = 0;
    /// Parent crashed; probes are going unanswered until detection fires.
    bool orphaned = false;
    sim::Time orphaned_at = 0.0;
    /// Start of the current miss streak (detection latency for a false
    /// positive is measured from here).
    sim::Time first_miss_at = 0.0;
    /// The scheduled complete_detection() timer, if the streak reached
    /// heartbeat_misses; cancelled when the member leaves/crashes first.
    transport::TimerId pending_detect = transport::kInvalidTimer;
  };
  std::unordered_map<net::HostId, HeartbeatState> heartbeats_;
  /// Roots of subtrees detached by a crash and still awaiting detection.
  /// The data-plane flood cannot reach them via children lists, so
  /// emit_chunk walks these explicitly to count the chunks their members
  /// miss during the outage. Order-preserving (vector + std::find) so the
  /// walk order — and thus nothing, since the walk draws no randomness —
  /// stays deterministic.
  std::vector<net::HostId> crash_orphans_;

  /// Reusable event-path buffers (see Scratch): the chunk-flood stack and
  /// parallel-phase slots, the leave/crash orphan list (never re-entered —
  /// each departure is a top-level sim event and the rejoin path below it
  /// never deactivates), and the timing-record accumulators.
  Scratch scratch_;

  Counters window_;
  Counters totals_;
  PhaseProfile profile_;
  bool started_ = false;
};

}  // namespace vdm::overlay
