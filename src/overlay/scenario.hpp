#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "overlay/session.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace vdm::overlay {

/// One explicit membership event of a pre-generated workload. The workload
/// generators (overlay/workload.hpp) produce these, trace files round-trip
/// them, and ScenarioDriver::run_trace executes them verbatim — the trace
/// path draws no randomness, so replaying a saved event list reproduces the
/// generating run bit for bit (given the same seed for the session rng).
struct WorkloadEvent {
  enum class Kind : std::uint8_t { kJoin, kLeave, kCrash };
  sim::Time at = 0.0;
  Kind kind = Kind::kJoin;
  net::HostId host = net::kInvalidHost;
  /// Degree limit assigned at join time (ignored for departures).
  int degree = 4;

  friend bool operator==(const WorkloadEvent&, const WorkloadEvent&) = default;
};

/// How child-capacity (degree) limits are assigned to joining members.
struct DegreeSpec {
  int lo = 2;
  int hi = 5;
  /// Probability of drawing `hi` when realizing a fractional average.
  double p_hi = -1.0;  // < 0 means plain uniform over [lo, hi]

  /// Uniform integer limits in [lo, hi] — the paper's Chapter-3 default
  /// ("degree limits of nodes ranges from 2 to 5").
  static DegreeSpec uniform(int lo, int hi);

  /// Mixture of floor/ceil realizing an exact fractional mean, e.g. the
  /// 1.25 / 1.5 / 1.75 points of the node-degree sweeps (Figs 3.33-3.36).
  static DegreeSpec average(double avg);

  int sample(util::Rng& rng) const;
  double mean() const;
};

/// Parameters of the paper's experiment timeline (§3.6.2): a staggered join
/// phase, then repeated churn slots, each ending with a settle period and a
/// measurement point.
struct ScenarioParams {
  /// Members besides the source kept in the overlay.
  std::size_t target_members = 200;
  sim::Time join_phase = 2000.0;
  sim::Time total_time = 10000.0;
  sim::Time churn_interval = 400.0;
  /// Fraction of target_members replaced (leave + join) per interval.
  double churn_rate = 0.05;
  /// Probability that a churn departure is an ungraceful crash
  /// (Session::crash — no leave notice) instead of a graceful leave.
  /// 0 reproduces the all-graceful timeline bit for bit.
  double crash_fraction = 0.0;
  /// Quiet period before each measurement.
  sim::Time settle_time = 100.0;
  DegreeSpec degrees = DegreeSpec::uniform(2, 5);

  /// Chapter-4 mode: instead of churn slots, `batch_size` nodes join per
  /// interval (measuring after each batch) until target_members is reached.
  bool batched_joins = false;
  std::size_t batch_size = 50;

  /// Flash crowd: `flash_count` extra members (on top of target_members)
  /// all join at the single timestamp `flash_at`. Under join_mode ==
  /// kConcurrent they form one drain batch; sequential modes process them
  /// back-to-back at that instant. 0 disables.
  std::size_t flash_count = 0;
  sim::Time flash_at = 0.0;
};

/// Reusable buffers of a ScenarioDriver (host pool, membership list,
/// pending-leave flags) plus the workload event list of trace-driven runs.
/// Shuttled through RunScratch so back-to-back runs over a 100k-host pool
/// rebuild the pool in place instead of reallocating.
struct ScenarioScratch {
  std::vector<net::HostId> available;
  std::vector<net::HostId> in_overlay;
  std::vector<char> pending_leave;
  /// Workload-mode event list (generated or parsed from a trace file); the
  /// driver reads it, run_once owns its lifetime. Same seed and config
  /// regenerate the same count, so steady-state capacity is stable.
  std::vector<WorkloadEvent> events;

  std::size_t capacity_bytes() const {
    return (available.capacity() + in_overlay.capacity()) *
               sizeof(net::HostId) +
           pending_leave.capacity() + events.capacity() * sizeof(WorkloadEvent);
  }
};

/// Orchestrates a full experiment run on one Session: schedules joins,
/// leaves and measurement callbacks on the simulator and executes it.
///
/// Host pool: the driver draws members from all underlay hosts except the
/// source, keeping `target_members` alive in steady state; churn victims
/// return to the pool and may rejoin later, as in the paper ("some nodes
/// may join and leave several times while some never join").
class ScenarioDriver {
 public:
  /// `scratch` (optional) donates warm pool buffers; the destructor returns
  /// them, grown, for the next run.
  ScenarioDriver(Session& session, const ScenarioParams& params, util::Rng rng,
                 ScenarioScratch* scratch = nullptr);
  ~ScenarioDriver();
  ScenarioDriver(const ScenarioDriver&) = delete;
  ScenarioDriver& operator=(const ScenarioDriver&) = delete;

  /// Measurement callback: invoked at each measurement point (settled tree).
  using MeasureFn = std::function<void(sim::Time)>;

  /// Runs the whole scenario to total_time. Calls `on_measure` at every
  /// measurement point (never during churn or settling).
  void run(const MeasureFn& on_measure);

  /// Trace mode: executes an explicit, time-ordered event list instead of
  /// the slot machinery. Every join/leave/crash (host, degree, instant)
  /// comes from `events` — the driver draws no randomness — and
  /// measurements run on the same settled grid as the slot timeline
  /// (join_phase + settle_time, then every churn_interval up to
  /// total_time). `events` must outlive the call and reference valid hosts;
  /// a leave/crash of a host that is not a member fails with a clear error.
  void run_trace(std::span<const WorkloadEvent> events, const MeasureFn& on_measure);

  /// Hosts currently alive in the overlay (excluding the source).
  std::size_t members_alive() const { return in_overlay_.size(); }

 private:
  void schedule_initial_joins();
  void schedule_flash_crowd();
  void schedule_churn_slots(const MeasureFn& on_measure);
  void schedule_batched_joins(const MeasureFn& on_measure);
  void schedule_measurement_grid(const MeasureFn& on_measure);
  void schedule_trace_events(std::span<const WorkloadEvent> events);
  void do_join(net::HostId h);
  void do_join_traced(net::HostId h, int degree);
  void do_leave(net::HostId h);
  void do_crash(net::HostId h);
  net::HostId draw_available();
  net::HostId draw_victim();

  Session& session_;
  ScenarioParams params_;
  util::Rng rng_;
  ScenarioScratch* scratch_ = nullptr;

  std::vector<net::HostId> available_;   // not in overlay, not pending join
  std::vector<net::HostId> in_overlay_;  // alive members (excl. source)
  std::vector<char> pending_leave_;      // indexed by host
  std::size_t pending_count_ = 0;        // victims drawn in the current slot
};

}  // namespace vdm::overlay
