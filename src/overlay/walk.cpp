#include "overlay/walk.hpp"

#include <limits>

#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::overlay {

std::string_view walk_decision_name(WalkDecision decision) {
  switch (decision) {
    case WalkDecision::kAttach: return "attach";
    case WalkDecision::kSplice: return "splice";
    case WalkDecision::kDirectionalDescend: return "case3-descend";
    case WalkDecision::kGreedyDescend: return "greedy-descend";
    case WalkDecision::kUturnAttach: return "uturn-attach";
    case WalkDecision::kClosestFreeChild: return "closest-free-child";
    case WalkDecision::kCapacityDescend: return "capacity-descend";
    case WalkDecision::kRandomStep: return "random-step";
    case WalkDecision::kAbort: return "abort";
  }
  return "?";
}

TreeWalk::TreeWalk(Session& session, WalkObserver* observer)
    : session_(session),
      scratch_(session.walk_scratch()),
      observer_(observer) {}

net::HostId TreeWalk::normalize_start(net::HostId joiner,
                                      net::HostId start) const {
  net::HostId cur = start;
  const Membership& tree = session_.tree();
  if (!session_.eligible_parent(joiner, cur) ||
      !tree.subtree_has_capacity(cur, joiner)) {
    cur = session_.source();
  }
  VDM_REQUIRE(session_.eligible_parent(joiner, cur));
  return cur;
}

void TreeWalk::begin(net::HostId joiner, net::HostId start) {
  joiner_ = joiner;
  cur_ = normalize_start(joiner, start);
  step_index_ = 0;
}

void TreeWalk::resume(net::HostId joiner, net::HostId cur, int step_index) {
  joiner_ = joiner;
  cur_ = cur;
  step_index_ = step_index;
}

TreeWalk::Action TreeWalk::step_once(PipelineSupport& support, PolicySlot& slot,
                                     OpStats& stats) {
  next_step(stats);
  const Action action = support.step(*this, slot, stats);
  report(action);
  if (action.kind == Action::Kind::kDescend) cur_ = action.node;
  return action;
}

TreeWalk::Action TreeWalk::no_capacity() const {
  if (allow_abort_) return Action::aborted();
  VDM_REQUIRE_MSG(false, "walk entered a subtree without capacity");
  return Action::aborted();  // unreachable
}

void TreeWalk::next_step(OpStats& stats) {
  ++stats.iterations;
  ++step_index_;
  step_probes_ = 0;
  // Information request/response with the current node: children list and
  // the node's stored distances to them (§3.2 control messages).
  session_.charge_exchange(joiner_, cur_, stats);
  scratch_.kids.clear();
  for (const net::HostId c : session_.tree().member(cur_).children) {
    if (c != joiner_ && session_.eligible_parent(joiner_, c)) {
      scratch_.kids.push_back(c);
    }
  }
}

void TreeWalk::report(const Action& action) {
  if (observer_ == nullptr) return;
  observer_->on_step(WalkStep{joiner_, cur_, step_index_, step_probes_,
                              action.decision, action.node});
}

std::span<const double> TreeWalk::kid_dists() const {
  return std::span<const double>(scratch_.dist)
      .subspan(kid_dist_offset_, scratch_.kids.size());
}

double TreeWalk::probe_cur_and_kids(OpStats& stats) {
  scratch_.targets.clear();
  scratch_.targets.reserve(scratch_.kids.size() + 1);
  scratch_.targets.push_back(cur_);
  scratch_.targets.insert(scratch_.targets.end(), scratch_.kids.begin(),
                          scratch_.kids.end());
  session_.measure_parallel(joiner_, scratch_.targets, scratch_.dist, stats);
  kid_dist_offset_ = 1;
  step_probes_ += static_cast<int>(scratch_.targets.size());
  return scratch_.dist[0];
}

std::span<const double> TreeWalk::probe_kids(OpStats& stats) {
  session_.measure_parallel(joiner_, scratch_.kids, scratch_.dist, stats);
  kid_dist_offset_ = 0;
  step_probes_ += static_cast<int>(scratch_.kids.size());
  return scratch_.dist;
}

bool TreeWalk::can_accept(net::HostId candidate) const {
  const Membership& tree = session_.tree();
  if (reserved_ != nullptr) {
    // Pipeline path: slots reserved by stopped-but-uncommitted walkers are
    // already spoken for. Every reservation converts into a link (or is
    // released) before the reserving walker's next turn, so links +
    // reservations never over-counts a slot twice.
    const MemberState& m = tree.member(candidate);
    if (m.overlay_links() + (*reserved_)[candidate] < m.degree_limit) {
      return true;
    }
    return tree.member(joiner_).parent == candidate;
  }
  return tree.member(candidate).has_free_degree() ||
         tree.member(joiner_).parent == candidate;
}

void TreeWalk::filter_kids_subtree_capacity() {
  const Membership& tree = session_.tree();
  std::vector<net::HostId>& kids = scratch_.kids;
  std::size_t w = 0;
  for (const net::HostId c : kids) {
    if (tree.subtree_has_capacity(c, joiner_)) kids[w++] = c;
  }
  kids.resize(w);
}

TreeWalk::Action TreeWalk::saturated_fallback(std::span<const double> kid_dist) {
  const std::span<const net::HostId> kids{scratch_.kids};
  net::HostId best_free = net::kInvalidHost;
  double best_free_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (can_accept(kids[i]) && kid_dist[i] < best_free_d) {
      best_free_d = kid_dist[i];
      best_free = kids[i];
    }
  }
  if (best_free != net::kInvalidHost) {
    return Action::stop(WalkDecision::kClosestFreeChild, best_free, best_free_d);
  }
  return descend_closest_capacity(kid_dist);
}

TreeWalk::Action TreeWalk::descend_closest_capacity(
    std::span<const double> kid_dist) {
  const Membership& tree = session_.tree();
  const std::span<const net::HostId> kids{scratch_.kids};
  net::HostId best_any = net::kInvalidHost;
  double best_any_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (kid_dist[i] < best_any_d && tree.subtree_has_capacity(kids[i], joiner_)) {
      best_any_d = kid_dist[i];
      best_any = kids[i];
    }
  }
  if (best_any == net::kInvalidHost) return no_capacity();
  return Action::descend(WalkDecision::kCapacityDescend, best_any, best_any_d);
}

std::span<const WalkAdoption> PipelineSupport::adoptions(
    const PolicySlot&) const {
  return {};
}

bool PipelineSupport::commit(Session& session, net::HostId joiner,
                             net::HostId parent, double parent_dist,
                             bool parent_has_dist,
                             std::span<const WalkAdoption> /*adoptions*/,
                             OpStats& stats) {
  Membership& tree = session.tree();
  if (!tree.member(parent).has_free_degree() &&
      tree.member(joiner).parent != parent) {
    return false;  // reservation race lost after all — retry
  }
  // Same order as the sequential joins: BTP/Random measure the parent after
  // the walk, then everyone pays the connection handshake and attaches.
  double d = parent_dist;
  if (!parent_has_dist) d = session.measure(joiner, parent, stats);
  session.charge_exchange(joiner, parent, stats);
  tree.attach(joiner, parent, d);
  stats.parent_changed = true;
  return true;
}

}  // namespace vdm::overlay
