#include "overlay/walk.hpp"

#include <limits>

#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::overlay {

std::string_view walk_decision_name(WalkDecision decision) {
  switch (decision) {
    case WalkDecision::kAttach: return "attach";
    case WalkDecision::kSplice: return "splice";
    case WalkDecision::kDirectionalDescend: return "case3-descend";
    case WalkDecision::kGreedyDescend: return "greedy-descend";
    case WalkDecision::kUturnAttach: return "uturn-attach";
    case WalkDecision::kClosestFreeChild: return "closest-free-child";
    case WalkDecision::kCapacityDescend: return "capacity-descend";
    case WalkDecision::kRandomStep: return "random-step";
  }
  return "?";
}

TreeWalk::TreeWalk(Session& session, WalkObserver* observer)
    : session_(session),
      scratch_(session.walk_scratch()),
      observer_(observer) {}

void TreeWalk::begin(net::HostId joiner, net::HostId start) {
  joiner_ = joiner;
  cur_ = start;
  step_index_ = 0;
  Membership& tree = session_.tree();
  if (!session_.eligible_parent(joiner_, cur_) ||
      !tree.subtree_has_capacity(cur_, joiner_)) {
    cur_ = session_.source();
  }
  VDM_REQUIRE(session_.eligible_parent(joiner_, cur_));
}

void TreeWalk::next_step(OpStats& stats) {
  ++stats.iterations;
  ++step_index_;
  step_probes_ = 0;
  // Information request/response with the current node: children list and
  // the node's stored distances to them (§3.2 control messages).
  session_.charge_exchange(joiner_, cur_, stats);
  scratch_.kids.clear();
  for (const net::HostId c : session_.tree().member(cur_).children) {
    if (c != joiner_ && session_.eligible_parent(joiner_, c)) {
      scratch_.kids.push_back(c);
    }
  }
}

void TreeWalk::report(const Action& action) {
  if (observer_ == nullptr) return;
  observer_->on_step(WalkStep{joiner_, cur_, step_index_, step_probes_,
                              action.decision, action.node});
}

std::span<const double> TreeWalk::kid_dists() const {
  return std::span<const double>(scratch_.dist)
      .subspan(kid_dist_offset_, scratch_.kids.size());
}

double TreeWalk::probe_cur_and_kids(OpStats& stats) {
  scratch_.targets.clear();
  scratch_.targets.reserve(scratch_.kids.size() + 1);
  scratch_.targets.push_back(cur_);
  scratch_.targets.insert(scratch_.targets.end(), scratch_.kids.begin(),
                          scratch_.kids.end());
  session_.measure_parallel(joiner_, scratch_.targets, scratch_.dist, stats);
  kid_dist_offset_ = 1;
  step_probes_ += static_cast<int>(scratch_.targets.size());
  return scratch_.dist[0];
}

std::span<const double> TreeWalk::probe_kids(OpStats& stats) {
  session_.measure_parallel(joiner_, scratch_.kids, scratch_.dist, stats);
  kid_dist_offset_ = 0;
  step_probes_ += static_cast<int>(scratch_.kids.size());
  return scratch_.dist;
}

bool TreeWalk::can_accept(net::HostId candidate) const {
  const Membership& tree = session_.tree();
  return tree.member(candidate).has_free_degree() ||
         tree.member(joiner_).parent == candidate;
}

void TreeWalk::filter_kids_subtree_capacity() {
  const Membership& tree = session_.tree();
  std::vector<net::HostId>& kids = scratch_.kids;
  std::size_t w = 0;
  for (const net::HostId c : kids) {
    if (tree.subtree_has_capacity(c, joiner_)) kids[w++] = c;
  }
  kids.resize(w);
}

TreeWalk::Action TreeWalk::saturated_fallback(std::span<const double> kid_dist) {
  const std::span<const net::HostId> kids{scratch_.kids};
  net::HostId best_free = net::kInvalidHost;
  double best_free_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (can_accept(kids[i]) && kid_dist[i] < best_free_d) {
      best_free_d = kid_dist[i];
      best_free = kids[i];
    }
  }
  if (best_free != net::kInvalidHost) {
    return Action::stop(WalkDecision::kClosestFreeChild, best_free, best_free_d);
  }
  return descend_closest_capacity(kid_dist);
}

TreeWalk::Action TreeWalk::descend_closest_capacity(
    std::span<const double> kid_dist) {
  const Membership& tree = session_.tree();
  const std::span<const net::HostId> kids{scratch_.kids};
  net::HostId best_any = net::kInvalidHost;
  double best_any_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (kid_dist[i] < best_any_d && tree.subtree_has_capacity(kids[i], joiner_)) {
      best_any_d = kid_dist[i];
      best_any = kids[i];
    }
  }
  VDM_REQUIRE_MSG(best_any != net::kInvalidHost,
                  "walk entered a subtree without capacity");
  return Action::descend(WalkDecision::kCapacityDescend, best_any, best_any_d);
}

}  // namespace vdm::overlay
