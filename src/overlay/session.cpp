#include "overlay/session.hpp"

#include <algorithm>
#include <utility>

#include "util/require.hpp"

namespace vdm::overlay {

OpStats Protocol::execute_refine(Session&, net::HostId) { return {}; }

Session::Session(sim::Simulator& simulator, const net::Underlay& underlay,
                 Protocol& protocol, const MetricProvider& metric,
                 const SessionParams& params, util::Rng rng)
    : sim_(simulator), underlay_(underlay), protocol_(protocol), metric_(metric),
      params_(params), rng_(rng), tree_(underlay.num_hosts()) {
  VDM_REQUIRE(params_.source < underlay.num_hosts());
  VDM_REQUIRE(params_.chunk_rate > 0.0);
}

Session::~Session() { stop(); }

void Session::start() {
  VDM_REQUIRE_MSG(!started_, "start() called twice");
  started_ = true;
  tree_.activate(params_.source, params_.source_degree_limit);
  tree_.mutable_member(params_.source).in_session_since = sim_.now();
  if (params_.data_plane) {
    stream_timer_ = std::make_unique<sim::Periodic>(
        sim_, 1.0 / params_.chunk_rate, [this] { emit_chunk(); });
  }
}

void Session::stop() {
  stream_timer_.reset();
  refine_timers_.clear();
}

TimingRecord Session::join(net::HostId h, int degree_limit) {
  VDM_REQUIRE(started_);
  VDM_REQUIRE_MSG(h != params_.source, "the source does not join");
  tree_.activate(h, degree_limit);
  const TimingRecord rec = run_join(h, params_.source, /*is_reconnect=*/false);
  tree_.mutable_member(h).in_session_since = sim_.now() + rec.duration;
  if (protocol_.wants_refinement()) arm_refinement(h);
  if (params_.paranoid_checks) tree_.validate();
  return rec;
}

TimingRecord Session::run_join(net::HostId h, net::HostId start, bool is_reconnect) {
  OpStats stats = protocol_.execute_join(*this, h, start);
  VDM_REQUIRE_MSG(tree_.member(h).parent != kInvalidHost,
                  "protocol join must attach the node");
  window_.control_messages += stats.messages;
  totals_.control_messages += stats.messages;

  TimingRecord rec;
  rec.at = sim_.now();
  rec.host = h;
  rec.duration = stats.elapsed;
  rec.messages = stats.messages;
  rec.iterations = stats.iterations;

  // The node (and transitively its subtree, which the data plane blocks
  // through this node) starts receiving once the join handshake finishes.
  tree_.mutable_member(h).receiving_since = sim_.now() + stats.elapsed;

  if (is_reconnect) {
    reconnect_records_.push_back(rec);
    ++window_.reconnects_completed;
    ++totals_.reconnects_completed;
  } else {
    startup_records_.push_back(rec);
    ++window_.joins_completed;
    ++totals_.joins_completed;
  }
  // No validate() here: during a multi-orphan leave, siblings of this
  // orphan are still detached with (legitimately) stale pointers. The
  // callers validate at the end of the whole operation.
  return rec;
}

void Session::leave(net::HostId h) {
  VDM_REQUIRE(started_);
  VDM_REQUIRE_MSG(h != params_.source, "the source never leaves");
  const MemberState& m = tree_.member(h);
  VDM_REQUIRE(m.alive);

  // Graceful leave: one notice per child plus one to the parent (§3.3).
  OpStats notice;
  charge_notification(static_cast<int>(m.children.size()) +
                          (m.parent != kInvalidHost ? 1 : 0),
                      notice);
  window_.control_messages += notice.messages;
  totals_.control_messages += notice.messages;

  disarm_refinement(h);
  const std::vector<net::HostId> orphans = tree_.deactivate(h);

  // Each orphan reconnects on its own, starting at its grandparent if that
  // node is still alive, else at the source (§3.3). Orphans act in child
  // order — deterministic, and equivalent to near-simultaneous recovery.
  for (const net::HostId orphan : orphans) {
    const MemberState& om = tree_.member(orphan);
    net::HostId start = om.grandparent;
    if (start == kInvalidHost || !tree_.member(start).alive ||
        !eligible_parent(orphan, start)) {
      start = params_.source;
    }
    run_join(orphan, start, /*is_reconnect=*/true);
  }
  if (params_.paranoid_checks) tree_.validate();
}

OpStats Session::refine(net::HostId h) {
  const MemberState& m = tree_.member(h);
  if (!m.alive || m.parent == kInvalidHost) return {};
  OpStats stats = protocol_.execute_refine(*this, h);
  window_.control_messages += stats.messages;
  totals_.control_messages += stats.messages;
  ++window_.refines_run;
  ++totals_.refines_run;
  if (stats.parent_changed) {
    ++window_.refine_switches;
    ++totals_.refine_switches;
  }
  if (params_.paranoid_checks) tree_.validate();
  return stats;
}

double Session::measure(net::HostId from, net::HostId to, OpStats& stats) {
  MetricProvider::Cost cost;
  const double v = metric_.measure_with_cost(underlay_, from, to, rng_, cost);
  stats.messages += cost.messages;
  stats.elapsed += cost.elapsed;
  return v;
}

std::vector<double> Session::measure_parallel(net::HostId from,
                                              std::span<const net::HostId> targets,
                                              OpStats& stats) {
  std::vector<double> out;
  out.reserve(targets.size());
  sim::Time slowest = 0.0;
  for (const net::HostId t : targets) {
    MetricProvider::Cost cost;
    out.push_back(metric_.measure_with_cost(underlay_, from, t, rng_, cost));
    stats.messages += cost.messages;
    slowest = std::max(slowest, cost.elapsed);
  }
  stats.elapsed += slowest;
  return out;
}

void Session::charge_exchange(net::HostId from, net::HostId with, OpStats& stats) {
  stats.messages += 2;
  stats.elapsed += underlay_.rtt(from, with);
}

void Session::charge_notification(int count, OpStats& stats) {
  stats.messages += count;
}

bool Session::eligible_parent(net::HostId joiner, net::HostId candidate) const {
  if (candidate == joiner) return false;
  if (!tree_.member(candidate).alive) return false;
  return !tree_.is_ancestor(joiner, candidate);
}

void Session::arm_refinement(net::HostId h) {
  refine_timers_[h] = std::make_unique<sim::Periodic>(
      sim_, protocol_.refinement_period(), [this, h] { refine(h); });
}

void Session::disarm_refinement(net::HostId h) { refine_timers_.erase(h); }

void Session::reset_window() { window_ = Counters{}; }

std::vector<TimingRecord> Session::take_startup_records() {
  return std::exchange(startup_records_, {});
}

std::vector<TimingRecord> Session::take_reconnect_records() {
  return std::exchange(reconnect_records_, {});
}

void Session::emit_chunk() {
  ++window_.chunks_emitted;
  ++totals_.chunks_emitted;
  const sim::Time now = sim_.now();
  const sim::Time buffered_now = now + params_.buffer_seconds;

  // Flood the chunk down the tree. A node is *expected* to see the chunk
  // once it has completed its initial join; it actually *receives* it only
  // if it is not inside a reconnection outage, its parent received it, and
  // the overlay-path loss draw succeeds. Descendants of an outaged node
  // therefore miss chunks too — exactly the churn loss the paper measures.
  //
  // This is the hottest loop of a whole run (every overlay edge, every
  // chunk), so it runs allocation-free on reusable scratch, memoizes each
  // child's uplink loss, and accumulates session counters in locals. All
  // per-member state the flood reads lives on MemberState's leading cache
  // line, so each edge costs one random memory access. Leaves are never
  // pushed, and the rng draw order matches the naive traversal exactly
  // (skipped leaf frames drew nothing), preserving determinism.
  std::uint64_t transmissions = 0;
  std::uint64_t expected = 0;
  std::uint64_t delivered_total = 0;

  chunk_stack_.clear();
  chunk_stack_.push_back({params_.source, true});
  while (!chunk_stack_.empty()) {
    const ChunkFrame f = chunk_stack_.back();
    chunk_stack_.pop_back();
    for (const net::HostId c : tree_.member_unchecked(f.host).children) {
      MemberState& cm = tree_.mutable_member_unchecked(c);
      bool delivered = false;
      if (f.delivered) {
        ++transmissions;
        // A playout buffer forgives outages that end within buffer_seconds:
        // the chunk is recovered from the new parent before playback needs
        // it, so the viewer never sees the gap.
        if (buffered_now >= cm.receiving_since) {
          if (cm.uplink_loss_parent != f.host) {
            cm.uplink_loss_parent = f.host;
            cm.uplink_loss = underlay_.loss(f.host, c);
          }
          delivered = !rng_.chance(cm.uplink_loss);
        }
      }
      if (now >= cm.in_session_since) {
        ++cm.chunks_expected;
        ++expected;
        if (delivered) {
          ++cm.chunks_received;
          ++delivered_total;
        }
      }
      if (!cm.children.empty()) chunk_stack_.push_back({c, delivered});
    }
  }

  window_.data_transmissions += transmissions;
  totals_.data_transmissions += transmissions;
  window_.chunks_expected += expected;
  totals_.chunks_expected += expected;
  window_.chunks_delivered += delivered_total;
  totals_.chunks_delivered += delivered_total;
}

}  // namespace vdm::overlay
