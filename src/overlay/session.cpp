#include "overlay/session.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "overlay/placement.hpp"
#include "overlay/walk.hpp"
#include "util/require.hpp"
#include "util/task_pool.hpp"

namespace vdm::overlay {

namespace {

/// Scoped wall-clock accumulator for SessionParams::profile. Disabled it is
/// one branch and no clock reads, so the default (profile off) hot paths
/// are untouched. Phase entry points never nest (joins, drains, refines and
/// floods are distinct simulator events), so each second lands in exactly
/// one bucket.
class PhaseTimer {
 public:
  PhaseTimer(bool enabled, double& sink) : sink_(enabled ? &sink : nullptr) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (sink_ != nullptr) {
      *sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_)
                    .count();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

OpStats Protocol::execute_refine(Session&, net::HostId) { return {}; }

Session::Session(sim::Simulator& simulator, const net::Underlay& underlay,
                 Protocol& protocol, const MetricProvider& metric,
                 const SessionParams& params, util::Rng rng)
    : sim_reactor_(&simulator), reactor_(sim_reactor_), des_sim_(&simulator),
      underlay_(underlay), protocol_(protocol), metric_(metric),
      params_(params), rng_(rng), tree_(0) {
  // tree_ and walk_scratch_ stay empty until start(): an arena caller swaps
  // warm storage in between construction and start(), and sizing them here
  // would put two unavoidable allocations on that otherwise allocation-free
  // path.
  VDM_REQUIRE(params_.source < underlay.num_hosts());
  VDM_REQUIRE(params_.chunk_rate > 0.0);
}

Session::Session(transport::Reactor& reactor, const net::Underlay& underlay,
                 Protocol& protocol, const MetricProvider& metric,
                 const SessionParams& params, util::Rng rng)
    : reactor_(reactor), underlay_(underlay), protocol_(protocol),
      metric_(metric), params_(params), rng_(rng), tree_(0) {
  VDM_REQUIRE(params_.source < underlay.num_hosts());
  VDM_REQUIRE(params_.chunk_rate > 0.0);
}

sim::Simulator& Session::simulator() {
  VDM_REQUIRE_MSG(des_sim_ != nullptr,
                  "simulator() on a reactor-hosted session — use reactor()");
  return *des_sim_;
}

void Session::swap_walk_scratch(std::unique_ptr<WalkScratch>& other) {
  // Plain swap on purpose: populating a null `other` here would hand the
  // arena a fresh allocation at swap-out. start() sizes whatever arrives.
  std::swap(walk_scratch_, other);
}

void Session::swap_tree_storage(std::unique_ptr<Membership>& other) {
  // The null-populate runs once per arena (first run); after that the swap
  // just shuttles warm storage. start() does the per-run reset — resetting
  // here would also grow the empty tree handed back at the end-of-run swap.
  if (!other) other = std::make_unique<Membership>(0);
  std::swap(tree_, *other);
}

void Session::swap_placement_index(std::unique_ptr<PlacementIndex>& other) {
  // Plain swap on purpose (same reason as swap_walk_scratch): populating a
  // null `other` would allocate a throwaway index at every end-of-run swap
  // of a sequential-mode run. start() creates the index when a join mode
  // actually needs one.
  std::swap(placement_, other);
}

const std::vector<int>& Session::join_reservations() const {
  static const std::vector<int> kEmpty;
  return walk_scratch_ ? walk_scratch_->reserved : kEmpty;
}

Session::~Session() { stop(); }

void Session::start() {
  VDM_REQUIRE_MSG(!started_, "start() called twice");
  started_ = true;
  profile_ = PhaseProfile{};
  if (!walk_scratch_) walk_scratch_ = std::make_unique<WalkScratch>();
  // Unconditional: a swapped-in warm tree has matching size but stale
  // members; a fresh or undersized one needs the resize. Same-size resets
  // only clear, so the arena path stays allocation-free.
  tree_.reset(underlay_.num_hosts());
  // A swapped-in refine slab may hold EventIds from a previous run on this
  // arena; they are meaningless (and dangerous) after the simulator reset.
  // Likewise a join batch that was still queued when that run ended.
  std::fill(walk_scratch_->refine_events.begin(),
            walk_scratch_->refine_events.end(),
            std::uint64_t{transport::kInvalidTimer});
  walk_scratch_->pending_joins.clear();
  // Swapped-in record accumulators may hold entries pushed after the previous
  // run's final drain; they belong to that run, not this one.
  scratch_.startup_records.clear();
  scratch_.reconnect_records.clear();
  tree_.activate(params_.source, params_.source_degree_limit);
  tree_.flood().in_session_since[params_.source] = reactor_.now();
  if (params_.join_mode != JoinMode::kSequential) {
    VDM_REQUIRE_MSG(params_.join_mode != JoinMode::kConcurrent ||
                        protocol_.pipeline_support() != nullptr,
                    "join_mode=concurrent requires a protocol with pipeline "
                    "support");
    if (!placement_) placement_ = std::make_unique<PlacementIndex>();
    placement_->bind(underlay_, params_.source);
    tree_.set_observer(placement_.get());
    placement_->insert(params_.source);
  }
  if (params_.data_plane) {
    // Same schedule/reschedule sequence sim::Periodic produces, without the
    // per-run heap timer object.
    const sim::Time period = 1.0 / params_.chunk_rate;
    stream_event_ = reactor_.schedule_in(period, [this, period] {
      emit_chunk();
      reactor_.reschedule_current_in(period);
    });
  }
}

void Session::stop() {
  if (stream_event_ != transport::kInvalidTimer) {
    reactor_.cancel(stream_event_);
    stream_event_ = transport::kInvalidTimer;
  }
  if (walk_scratch_) {  // null after swap-out on the arena path, or pre-start
    // A drain event scheduled behind us may still fire; emptied, it no-ops.
    walk_scratch_->pending_joins.clear();
    for (std::uint64_t& id : walk_scratch_->refine_events) {
      if (id != transport::kInvalidTimer) reactor_.cancel(id);
      id = transport::kInvalidTimer;
    }
  }
  for (auto& [h, hb] : heartbeats_) {
    if (hb.pending_detect != transport::kInvalidTimer) reactor_.cancel(hb.pending_detect);
  }
  heartbeats_.clear();
  crash_orphans_.clear();
}

TimingRecord Session::join(net::HostId h, int degree_limit) {
  VDM_REQUIRE(started_);
  VDM_REQUIRE_MSG(h != params_.source, "the source does not join");
  tree_.activate(h, degree_limit);

  if (params_.join_mode == JoinMode::kConcurrent) {
    // Activated but still detached: invisible to the data-plane flood and
    // never an eligible parent, so the queued state needs no special casing
    // anywhere else. One drain event per timestamp services the whole batch.
    walk_scratch_->pending_joins.push_back({h, degree_limit});
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      // schedule_in(0) sequences the drain after every event already queued
      // at this timestamp — late same-time arrivals still make this batch.
      reactor_.schedule_in(0.0, [this] { drain_join_batch(); });
    }
    TimingRecord placeholder;
    placeholder.at = reactor_.now();
    placeholder.host = h;
    return placeholder;
  }

  OpStats pre;
  net::HostId start = params_.source;
  if (params_.join_mode == JoinMode::kLocating) start = locate_entry(h, pre);
  const TimingRecord rec =
      run_join(h, start, /*is_reconnect=*/false, /*detection=*/0.0, pre);
  tree_.flood().in_session_since[h] = reactor_.now() + rec.duration;
  if (protocol_.wants_refinement()) arm_refinement(h);
  if (params_.paranoid_checks) tree_.validate();
  return rec;
}

net::HostId Session::locate_entry(net::HostId h, OpStats& stats) {
  // The joiner's one contact with the rendezvous point (co-located with the
  // source): request + response carrying the candidate entry node.
  charge_exchange(h, params_.source, stats);
  const net::HostId found = placement_->locate(h, *this, stats);
  if (found == kInvalidHost || !eligible_parent(h, found)) {
    return params_.source;
  }
  return found;
}

TimingRecord Session::run_join(net::HostId h, net::HostId start, bool is_reconnect,
                               sim::Time detection, OpStats pre) {
  const PhaseTimer timer(params_.profile, profile_.join_secs);
  OpStats stats = pre;
  stats += protocol_.execute_join(*this, h, start);
  return finish_join(h, stats, is_reconnect, detection);
}

TimingRecord Session::finish_join(net::HostId h, const OpStats& stats,
                                  bool is_reconnect, sim::Time detection) {
  VDM_REQUIRE_MSG(tree_.member(h).parent != kInvalidHost,
                  "protocol join must attach the node");
  window_.control_messages += stats.messages;
  totals_.control_messages += stats.messages;

  TimingRecord rec;
  rec.at = reactor_.now();
  rec.host = h;
  rec.duration = stats.elapsed;
  rec.detection = detection;
  rec.messages = stats.messages;
  rec.iterations = stats.iterations;

  // The node (and transitively its subtree, which the data plane blocks
  // through this node) starts receiving once the join handshake finishes.
  tree_.flood().receiving_since[h] = reactor_.now() + stats.elapsed;

  if (is_reconnect) {
    scratch_.reconnect_records.push_back(rec);
    ++window_.reconnects_completed;
    ++totals_.reconnects_completed;
  } else {
    scratch_.startup_records.push_back(rec);
    ++window_.joins_completed;
    ++totals_.joins_completed;
    if (first_join_at_ < 0.0) first_join_at_ = rec.at;
    last_join_done_at_ = std::max(last_join_done_at_, rec.at + rec.duration);
    // Same-instant arrival cohorts (finish_join calls of one cohort are
    // contiguous: sequential joins run back-to-back events at one
    // timestamp, a concurrent batch commits inside one drain event). The
    // largest cohort is the flash crowd when one was scheduled.
    if (rec.at == cohort_at_ && cohort_n_ > 0) {
      ++cohort_n_;
      cohort_span_ = std::max(cohort_span_, rec.duration);
    } else {
      cohort_at_ = rec.at;
      cohort_n_ = 1;
      cohort_span_ = rec.duration;
    }
    if (cohort_n_ >= best_cohort_n_) {
      best_cohort_n_ = cohort_n_;
      best_cohort_span_ = cohort_span_;
    }
  }
  // Every attached member probes its parent; (re)arming here covers plain
  // joins, graceful-leave reconnections and crash recoveries uniformly.
  ensure_heartbeat(h);
  // No validate() here: during a multi-orphan leave, siblings of this
  // orphan are still detached with (legitimately) stale pointers. The
  // callers validate at the end of the whole operation.
  return rec;
}

void Session::drain_join_batch() {
  const PhaseTimer timer(params_.profile, profile_.join_secs);
  drain_scheduled_ = false;
  WalkScratch& ws = *walk_scratch_;
  if (ws.pending_joins.empty()) return;  // run stopped mid-batch
  PipelineSupport* support = protocol_.pipeline_support();
  VDM_REQUIRE(support != nullptr);

  // Build the walker table from the batch. Between drains every reservation
  // has been released (each reserve converts to a commit or is dropped with
  // its walker's stop state), so the counts are already all zero.
  ws.walkers.clear();
  ws.queue.clear();
  ws.parked.clear();
  ws.adoption_pool.clear();
  if (ws.reserved.size() < underlay_.num_hosts()) {
    ws.reserved.resize(underlay_.num_hosts(), 0);
  }
  for (const PendingJoin& pj : ws.pending_joins) {
    JoinWalker w;
    w.host = pj.host;
    w.degree_limit = pj.degree_limit;
    ws.queue.push_back(static_cast<std::uint32_t>(ws.walkers.size()));
    ws.walkers.push_back(w);
  }
  ws.pending_joins.clear();

  // One engine serves every walker: turns are serialized, so each turn
  // re-binds it to its walker's suspended position. Reservation-aware
  // can_accept plus abort-on-dead-end are what distinguish pipeline walks
  // from sequential ones.
  TreeWalk walk(*this, protocol_.walk_observer());
  walk.bind_reservations(&ws.reserved);
  walk.allow_abort(true);

  const sim::Time now = reactor_.now();
  std::size_t q_head = 0;  // FIFO cursors — the vectors only ever append
  std::size_t p_head = 0;

  while (q_head < ws.queue.size()) {
    const std::uint32_t wi = ws.queue[q_head++];
    JoinWalker& w = ws.walkers[wi];
    switch (w.phase) {
      case JoinPhase::kStart: {
        // (Re)start: locate an entry node — a woken walker re-locates, since
        // the index moved on while it was parked — and init the policy.
        const net::HostId start = locate_entry(w.host, w.stats);
        w.cur = walk.normalize_start(w.host, start);
        w.step_index = 0;
        walk.resume(w.host, w.cur, 0);
        support->start(walk, w.slot, w.stats);
        w.phase = JoinPhase::kWalk;
        ws.queue.push_back(wi);
        break;
      }
      case JoinPhase::kWalk: {
        walk.resume(w.host, w.cur, w.step_index);
        const TreeWalk::Action action = walk.step_once(*support, w.slot, w.stats);
        if (action.kind == TreeWalk::Action::Kind::kDescend) {
          w.cur = walk.cur();
          w.step_index = walk.step_index();
          ws.queue.push_back(wi);
          break;
        }
        if (action.kind == TreeWalk::Action::Kind::kAbort) {
          // Every reachable slot is reserved by another in-flight walker.
          // Park (holding no reservations) until a commit frees or creates
          // capacity; the wake restarts the walk from scratch.
          w.phase = JoinPhase::kStart;
          ws.parked.push_back(wi);
          break;
        }
        // Stop: the can_accept that allowed it saw links + reservations
        // below the limit, so reserving here keeps the slot ours until the
        // commit turn. The adoptions span views shared walk scratch — copy
        // it out before the next walker's turn clobbers it.
        w.parent = action.node;
        w.parent_dist = action.dist;
        w.parent_has_dist = action.has_dist;
        const std::span<const WalkAdoption> ad = support->adoptions(w.slot);
        w.adoptions_off = static_cast<std::uint32_t>(ws.adoption_pool.size());
        w.adoptions_len = static_cast<std::uint32_t>(ad.size());
        ws.adoption_pool.insert(ws.adoption_pool.end(), ad.begin(), ad.end());
        ++ws.reserved[w.parent];
        w.step_index = walk.step_index();
        w.phase = JoinPhase::kCommit;
        ws.queue.push_back(wi);
        break;
      }
      case JoinPhase::kCommit: {
        --ws.reserved[w.parent];
        const std::span<const WalkAdoption> ad{
            ws.adoption_pool.data() + w.adoptions_off, w.adoptions_len};
        if (!support->commit(*this, w.host, w.parent, w.parent_dist,
                             w.parent_has_dist, ad, w.stats)) {
          // Lost a race another walker created between stop and commit
          // (e.g. every VDM adoption went stale). Retry immediately — never
          // park here, or the capacity this walker *can* still reach might
          // produce no further wakes.
          w.phase = JoinPhase::kStart;
          ws.queue.push_back(wi);
          break;
        }
        finish_join(w.host, w.stats, /*is_reconnect=*/false, 0.0);
        tree_.flood().in_session_since[w.host] = now + w.stats.elapsed;
        if (protocol_.wants_refinement()) arm_refinement(w.host);
        // The attach created capacity (the joiner's own free slots) and may
        // have restructured the neighborhood — wake parked walkers, FIFO.
        std::size_t wake = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::max(w.degree_limit - 1, 0)));
        wake = std::min(wake, ws.parked.size() - p_head);
        for (; wake > 0; --wake) {
          ws.queue.push_back(ws.parked[p_head++]);
        }
        break;
      }
    }
  }

  // Progress argument: the final active walker ran with every other
  // reservation released, i.e. against the true tree — if it parked, the
  // session genuinely has no attachment point left, which activate() caps
  // prevent. A stall here means the reservation protocol leaked.
  VDM_REQUIRE_MSG(p_head == ws.parked.size(),
                  "concurrent join pipeline stalled with parked walkers");
  ws.queue.clear();
  ws.parked.clear();
  ws.walkers.clear();
  ws.adoption_pool.clear();
  if (params_.paranoid_checks) tree_.validate();
}

net::HostId Session::reconnect_start(net::HostId orphan) const {
  const net::HostId gp = tree_.member(orphan).grandparent;
  if (gp != kInvalidHost && eligible_parent(orphan, gp)) return gp;
  return params_.source;
}

void Session::leave(net::HostId h) {
  VDM_REQUIRE(started_);
  VDM_REQUIRE_MSG(h != params_.source, "the source never leaves");
  const MemberState& m = tree_.member(h);
  VDM_REQUIRE(m.alive);

  // Graceful leave: one notice per child plus one to the parent (§3.3).
  OpStats notice;
  charge_notification(static_cast<int>(m.children.size()) +
                          (m.parent != kInvalidHost ? 1 : 0),
                      notice);
  window_.control_messages += notice.messages;
  totals_.control_messages += notice.messages;

  disarm_refinement(h);
  disarm_heartbeat(h);
  forget_crash_orphan(h);
  tree_.deactivate(h, scratch_.orphans);

  // Each orphan reconnects on its own, starting at its grandparent if that
  // node is still alive, else at the source (§3.3). Orphans act in child
  // order — deterministic, and equivalent to near-simultaneous recovery.
  for (const net::HostId orphan : scratch_.orphans) {
    run_join(orphan, reconnect_start(orphan), /*is_reconnect=*/true);
  }
  if (params_.paranoid_checks) tree_.validate();
}

void Session::crash(net::HostId h) {
  VDM_REQUIRE(started_);
  VDM_REQUIRE_MSG(h != params_.source, "the source never crashes");
  VDM_REQUIRE(tree_.member(h).alive);
  ++window_.crashes;
  ++totals_.crashes;

  // No leave notice, no notification messages: the node just vanishes.
  disarm_refinement(h);
  disarm_heartbeat(h);
  forget_crash_orphan(h);  // h may itself still be an undetected orphan
  tree_.deactivate(h, scratch_.orphans);

  if (params_.faults.heartbeat_period <= 0.0) {
    // No failure detector configured: model instant detection, i.e. the
    // orphans reconnect immediately as after a graceful leave (but the
    // crashed node still paid no notification messages).
    for (const net::HostId orphan : scratch_.orphans) {
      run_join(orphan, reconnect_start(orphan), /*is_reconnect=*/true);
    }
    if (params_.paranoid_checks) tree_.validate();
    return;
  }

  // With heartbeats, the orphans stay detached — their probes now go
  // unanswered and complete_detection() reconnects them once the miss
  // streak plus timeout elapses. Until then the data plane counts their
  // subtrees as expecting-but-not-receiving (see emit_chunk).
  const sim::Time now = reactor_.now();
  for (const net::HostId orphan : scratch_.orphans) {
    HeartbeatState& hb = heartbeats_.at(orphan);
    hb.orphaned = true;
    hb.orphaned_at = now;
    crash_orphans_.push_back(orphan);
  }
}

OpStats Session::refine(net::HostId h) {
  const PhaseTimer timer(params_.profile, profile_.refine_secs);
  const MemberState& m = tree_.member(h);
  if (!m.alive || m.parent == kInvalidHost) return {};
  OpStats stats = protocol_.execute_refine(*this, h);
  window_.control_messages += stats.messages;
  totals_.control_messages += stats.messages;
  ++window_.refines_run;
  ++totals_.refines_run;
  if (stats.parent_changed) {
    ++window_.refine_switches;
    ++totals_.refine_switches;
  }
  if (params_.paranoid_checks) tree_.validate();
  return stats;
}

double Session::measure(net::HostId from, net::HostId to, OpStats& stats) {
  MetricProvider::Cost cost;
  const double v = metric_.measure_with_cost(underlay_, from, to, rng_, cost);
  stats.elapsed += lossy_elapsed(from, to, cost.messages, cost.elapsed, stats);
  return v;
}

bool Session::parallel_probes_enabled(std::size_t batch) const {
  // Below this size the pool handoff costs more than the probes; typical
  // walk batches (parent + children, <= ~6) stay on the serial path and the
  // big refinement / flash-crowd candidate sets go wide.
  constexpr std::size_t kMinParallelProbes = 8;
  return params_.threads != 1 && batch >= kMinParallelProbes &&
         underlay_.concurrent_reads() && metric_.concurrent_probe_safe();
}

std::span<const double> Session::measure_parallel(
    net::HostId from, std::span<const net::HostId> targets,
    std::vector<double>& out, OpStats& stats) {
  out.clear();
  out.reserve(targets.size());
  sim::Time slowest = 0.0;
  if (parallel_probes_enabled(targets.size())) {
    ++totals_.parallel_probe_batches;
    // Pure phase in parallel: per-target underlay reads land in per-index
    // slots. Serial commit below applies the rng draws in FIFO target
    // order, so values, costs and the rng stream match the serial path bit
    // for bit (MetricProvider contract: measure == finish_probe(probe_base)).
    scratch_.probe_bases.resize(targets.size());
    scratch_.probe_costs.resize(targets.size());
    util::TaskPool::global().for_n(
        targets.size(), static_cast<std::size_t>(params_.threads),
        [&](const util::TaskPool::Context& ctx) {
          const net::HostId t = targets[ctx.index];
          scratch_.probe_bases[ctx.index] = metric_.probe_base(underlay_, from, t);
          scratch_.probe_costs[ctx.index] = {metric_.messages_per_measurement(),
                                     metric_.measurement_time(underlay_, from, t)};
        });
    for (std::size_t i = 0; i < targets.size(); ++i) {
      out.push_back(metric_.finish_probe(scratch_.probe_bases[i], rng_));
      slowest = std::max(
          slowest, lossy_elapsed(from, targets[i], scratch_.probe_costs[i].messages,
                                 scratch_.probe_costs[i].elapsed, stats));
    }
    stats.elapsed += slowest;
    return out;
  }
  for (const net::HostId t : targets) {
    MetricProvider::Cost cost;
    out.push_back(metric_.measure_with_cost(underlay_, from, t, rng_, cost));
    slowest = std::max(slowest,
                       lossy_elapsed(from, t, cost.messages, cost.elapsed, stats));
  }
  stats.elapsed += slowest;
  return out;
}

std::vector<double> Session::measure_parallel(net::HostId from,
                                              std::span<const net::HostId> targets,
                                              OpStats& stats) {
  std::vector<double> out;
  measure_parallel(from, targets, out, stats);
  return out;
}

void Session::charge_exchange(net::HostId from, net::HostId with, OpStats& stats) {
  stats.elapsed += lossy_elapsed(from, with, 2, underlay_.rtt(from, with), stats);
}

sim::Time Session::lossy_elapsed(net::HostId from, net::HostId with, int messages,
                                 sim::Time base, OpStats& stats) {
  stats.messages += messages;
  const FaultParams& f = params_.faults;
  if (!f.lossy_control) return base;
  // An exchange survives only if both the request and the reply get
  // through; each leg drops with the path loss compounded by the extra
  // control-plane loss. p == 0 draws nothing (Rng::chance contract), so a
  // lossless underlay with the knob at zero stays bit-identical.
  const double p =
      1.0 - (1.0 - underlay_.loss(from, with)) * (1.0 - f.control_loss_extra);
  if (p <= 0.0) return base;
  sim::Time waited = 0.0;
  double timeout = f.retry_timeout;
  for (int attempt = 0; attempt < f.max_retries; ++attempt) {
    const bool lost = rng_.chance(p) || rng_.chance(p);  // request, then reply
    if (!lost) return waited + base;
    stats.messages += messages;  // the retransmission
    waited += timeout;
    timeout = std::min(timeout * f.backoff_factor, f.retry_timeout_max);
  }
  // Retries exhausted: the control channel is reliable-with-retries — loss
  // manifests as latency and message overhead, never as protocol failure —
  // so the final retransmission is treated as delivered.
  return waited + base;
}

void Session::charge_notification(int count, OpStats& stats) {
  stats.messages += count;
}

bool Session::eligible_parent(net::HostId joiner, net::HostId candidate) const {
  if (candidate == joiner) return false;
  if (!tree_.member(candidate).alive) return false;
  return !tree_.is_ancestor(joiner, candidate);
}

void Session::arm_refinement(net::HostId h) {
  std::vector<std::uint64_t>& slab = walk_scratch_->refine_events;
  if (slab.size() < tree_.num_hosts()) {
    slab.resize(tree_.num_hosts(), transport::kInvalidTimer);
  }
  if (slab[h] != transport::kInvalidTimer) reactor_.cancel(slab[h]);
  const sim::Time period = protocol_.refinement_period();
  // The tick re-arms into its own slab slot (reschedule_current_in keeps the
  // id), so the stored EventId stays valid for the member's whole tenure.
  // Disarming mid-tick suppresses the re-arm via the simulator's
  // firing-cancelled state, exactly like Periodic::stop() did.
  slab[h] = reactor_.schedule_in(period, [this, h, period] {
    refine(h);
    reactor_.reschedule_current_in(period);
  });
}

void Session::disarm_refinement(net::HostId h) {
  std::vector<std::uint64_t>& slab = walk_scratch_->refine_events;
  if (h < slab.size() && slab[h] != transport::kInvalidTimer) {
    reactor_.cancel(slab[h]);
    slab[h] = transport::kInvalidTimer;
  }
}

void Session::ensure_heartbeat(net::HostId h) {
  if (params_.faults.heartbeat_period <= 0.0) return;
  HeartbeatState& hb = heartbeats_[h];
  hb.misses = 0;
  hb.orphaned = false;
  hb.orphaned_at = 0.0;
  hb.first_miss_at = 0.0;
  if (hb.pending_detect != transport::kInvalidTimer) {
    reactor_.cancel(hb.pending_detect);
    hb.pending_detect = transport::kInvalidTimer;
  }
  // Recreate the timer only when it is missing or was stopped by a full
  // miss streak; destroying a stopped PeriodicTimer is safe from any event
  // (never from inside its own tick — the streak stops it first and the
  // recreation happens in complete_detection, a plain event).
  if (!hb.timer || !hb.timer->running()) {
    hb.timer = std::make_unique<transport::PeriodicTimer>(
        reactor_, params_.faults.heartbeat_period,
        [this, h] { heartbeat_tick(h); });
  }
}

void Session::disarm_heartbeat(net::HostId h) {
  const auto it = heartbeats_.find(h);
  if (it == heartbeats_.end()) return;
  if (it->second.pending_detect != transport::kInvalidTimer) {
    reactor_.cancel(it->second.pending_detect);
  }
  heartbeats_.erase(it);
}

void Session::forget_crash_orphan(net::HostId h) {
  const auto it = std::find(crash_orphans_.begin(), crash_orphans_.end(), h);
  if (it != crash_orphans_.end()) crash_orphans_.erase(it);
}

void Session::heartbeat_tick(net::HostId h) {
  HeartbeatState& hb = heartbeats_.at(h);
  const MemberState& m = tree_.member(h);
  VDM_REQUIRE_MSG(m.alive, "heartbeat ticking on a dead member");
  const FaultParams& f = params_.faults;

  bool missed;
  if (m.parent == kInvalidHost) {
    // The parent crashed (or the member is detached): the probe goes out
    // and nothing answers.
    ++window_.control_messages;
    ++totals_.control_messages;
    missed = true;
  } else {
    // Probe + ack; losing either leg is a miss. p == 0 draws nothing, so
    // heartbeats over a lossless control plane cost messages but never
    // perturb the rng stream.
    window_.control_messages += 2;
    totals_.control_messages += 2;
    double p = 0.0;
    if (f.lossy_control) {
      p = 1.0 -
          (1.0 - underlay_.loss(h, m.parent)) * (1.0 - f.control_loss_extra);
    }
    missed = rng_.chance(p) || rng_.chance(p);
  }

  if (!missed) {
    hb.misses = 0;
    return;
  }
  ++hb.misses;
  if (hb.misses == 1) hb.first_miss_at = reactor_.now();
  if (hb.misses >= f.heartbeat_misses &&
      hb.pending_detect == transport::kInvalidTimer) {
    // Verdict reached: stop probing and declare the parent dead once the
    // final probe's own timeout expires. The timer must not be destroyed
    // from inside its own tick — stop() it and let complete_detection (a
    // plain scheduled event) recreate it after the rejoin.
    hb.timer->stop();
    hb.pending_detect = reactor_.schedule_in(f.heartbeat_timeout,
                                         [this, h] { complete_detection(h); });
  }
}

void Session::complete_detection(net::HostId h) {
  HeartbeatState& hb = heartbeats_.at(h);
  hb.pending_detect = transport::kInvalidTimer;
  const MemberState& m = tree_.member(h);
  VDM_REQUIRE_MSG(m.alive, "detection completing on a dead member");

  sim::Time detection;
  if (hb.orphaned) {
    // True positive: latency from the parent's actual crash to this verdict.
    detection = reactor_.now() - hb.orphaned_at;
    forget_crash_orphan(h);
  } else {
    // False positive: the miss streak was pure control loss and the parent
    // is still alive. The node acts on its verdict anyway — detach and
    // rejoin in the same sim event, so the only data-plane gap is the
    // rejoin handshake itself.
    detection = reactor_.now() - hb.first_miss_at;
    if (m.parent != kInvalidHost) tree_.detach(h);
  }
  // NOTE: run_join re-enters ensure_heartbeat, which may rehash
  // heartbeats_ — `hb` is dead past this point.
  run_join(h, reconnect_start(h), /*is_reconnect=*/true, detection);
  if (params_.paranoid_checks) tree_.validate();
}

void Session::reset_window() { window_ = Counters{}; }

std::vector<TimingRecord> Session::take_startup_records() {
  return std::exchange(scratch_.startup_records, {});
}

std::vector<TimingRecord> Session::take_reconnect_records() {
  return std::exchange(scratch_.reconnect_records, {});
}

void Session::drain_startup_records(std::vector<TimingRecord>& out) {
  out.clear();
  std::swap(out, scratch_.startup_records);
}

void Session::drain_reconnect_records(std::vector<TimingRecord>& out) {
  out.clear();
  std::swap(out, scratch_.reconnect_records);
}

void Session::emit_chunk() {
  const PhaseTimer timer(params_.profile, profile_.flood_secs);
  ++window_.chunks_emitted;
  ++totals_.chunks_emitted;
  const sim::Time now = reactor_.now();
  const sim::Time buffered_now = now + params_.buffer_seconds;

  // Flood the chunk down the tree. A node is *expected* to see the chunk
  // once it has completed its initial join; it actually *receives* it only
  // if it is not inside a reconnection outage, its parent received it, and
  // the overlay-path loss draw succeeds. Descendants of an outaged node
  // therefore miss chunks too — exactly the churn loss the paper measures.
  //
  // This is the hottest loop of a whole run (every overlay edge, every
  // chunk), so it runs allocation-free on reusable scratch, memoizes each
  // child's uplink loss, and accumulates session counters in locals. All
  // per-member state the flood touches lives in the Membership FloodTable's
  // parallel arrays (SoA), so at 100k+ members an edge visit streams a few
  // contiguous cache lines instead of fetching a scattered member struct.
  // Leaves are never pushed, and the rng draw order matches the naive
  // traversal exactly (skipped leaf frames drew nothing), preserving
  // determinism.
  FloodTable& fl = tree_.flood();
  FloodShard total;
  if (parallel_flood_enabled()) {
    ++totals_.parallel_floods;
    // Sharded flood: the source's own edges run serially (preserving child
    // order for the shard seeds), then each source-child subtree floods on
    // its own worker. Shards are disjoint — every FloodTable row belongs to
    // exactly one subtree — and a zero_loss() underlay means no edge ever
    // draws (Rng::chance(0) is draw-free in the serial path too), so the
    // counters, the per-member tables and the rng stream are all
    // bit-identical to the serial traversal for any worker count.
    scratch_.flood_seeds.clear();
    for (const net::HostId c : tree_.member_unchecked(params_.source).children) {
      bool delivered = false;
      ++total.transmissions;
      if (buffered_now >= fl.receiving_since[c]) {
        if (fl.uplink_loss_parent[c] != params_.source) {
          fl.uplink_loss_parent[c] = params_.source;
          fl.uplink_loss[c] = underlay_.loss(params_.source, c);
        }
        delivered = !rng_.chance(fl.uplink_loss[c]);
      }
      if (now >= fl.in_session_since[c]) {
        ++fl.chunks_expected[c];
        ++total.expected;
        if (delivered) {
          ++fl.chunks_received[c];
          ++total.delivered;
        }
      }
      if (!tree_.member_unchecked(c).children.empty()) {
        scratch_.flood_seeds.push_back({c, delivered});
      }
    }
    scratch_.flood_results.assign(scratch_.flood_seeds.size(), FloodShard{});
    if (scratch_.flood_stacks.size() < scratch_.flood_seeds.size()) {
      scratch_.flood_stacks.resize(scratch_.flood_seeds.size());
    }
    util::TaskPool::global().for_n(
        scratch_.flood_seeds.size(), static_cast<std::size_t>(params_.threads),
        [&](const util::TaskPool::Context& ctx) {
          flood_subtree(scratch_.flood_seeds[ctx.index], now, buffered_now,
                        scratch_.flood_stacks[ctx.index], scratch_.flood_results[ctx.index]);
        });
    // Serial reduction in fixed seed order (integer sums — associative, but
    // FIFO keeps the policy uniform with the probe path).
    for (const FloodShard& s : scratch_.flood_results) {
      total.transmissions += s.transmissions;
      total.expected += s.expected;
      total.delivered += s.delivered;
    }
  } else {
    scratch_.chunk_stack.clear();
    scratch_.chunk_stack.push_back({params_.source, true});
    while (!scratch_.chunk_stack.empty()) {
      const ChunkFrame f = scratch_.chunk_stack.back();
      scratch_.chunk_stack.pop_back();
      for (const net::HostId c : tree_.member_unchecked(f.host).children) {
        bool delivered = false;
        if (f.delivered) {
          ++total.transmissions;
          // A playout buffer forgives outages that end within
          // buffer_seconds: the chunk is recovered from the new parent
          // before playback needs it, so the viewer never sees the gap.
          if (buffered_now >= fl.receiving_since[c]) {
            if (fl.uplink_loss_parent[c] != f.host) {
              fl.uplink_loss_parent[c] = f.host;
              fl.uplink_loss[c] = underlay_.loss(f.host, c);
            }
            delivered = !rng_.chance(fl.uplink_loss[c]);
          }
        }
        if (now >= fl.in_session_since[c]) {
          ++fl.chunks_expected[c];
          ++total.expected;
          if (delivered) {
            ++fl.chunks_received[c];
            ++total.delivered;
          }
        }
        if (!tree_.member_unchecked(c).children.empty()) {
          scratch_.chunk_stack.push_back({c, delivered});
        }
      }
    }
  }

  // Subtrees detached by a still-undetected crash are invisible to the
  // flood above (nothing links into them), yet their members still expect
  // chunks — that gap IS the churn loss a crash causes. Walk them
  // explicitly; draws nothing and costs nothing when no crash is pending.
  for (const net::HostId root : crash_orphans_) {
    scratch_.chunk_stack.push_back({root, false});
    while (!scratch_.chunk_stack.empty()) {
      const ChunkFrame f = scratch_.chunk_stack.back();
      scratch_.chunk_stack.pop_back();
      if (now >= fl.in_session_since[f.host]) {
        ++fl.chunks_expected[f.host];
        ++total.expected;
      }
      for (const net::HostId c : tree_.member_unchecked(f.host).children) {
        scratch_.chunk_stack.push_back({c, false});
      }
    }
  }

  window_.data_transmissions += total.transmissions;
  totals_.data_transmissions += total.transmissions;
  window_.chunks_expected += total.expected;
  totals_.chunks_expected += total.expected;
  window_.chunks_delivered += total.delivered;
  totals_.chunks_delivered += total.delivered;
}

bool Session::parallel_flood_enabled() const {
  return params_.threads != 1 && underlay_.concurrent_reads() &&
         underlay_.zero_loss();
}

void Session::flood_subtree(ChunkFrame seed, sim::Time now,
                            sim::Time buffered_now,
                            std::vector<ChunkFrame>& stack, FloodShard& res) {
  // The per-worker body of the sharded flood: identical traversal and
  // identical FloodTable writes as the serial loop, except the loss draw —
  // zero_loss() makes it chance(0), which never fires and draws nothing, so
  // `delivered` reduces to the buffered-receiving test.
  FloodTable& fl = tree_.flood();
  stack.clear();
  stack.push_back(seed);
  while (!stack.empty()) {
    const ChunkFrame f = stack.back();
    stack.pop_back();
    for (const net::HostId c : tree_.member_unchecked(f.host).children) {
      bool delivered = false;
      if (f.delivered) {
        ++res.transmissions;
        if (buffered_now >= fl.receiving_since[c]) {
          if (fl.uplink_loss_parent[c] != f.host) {
            fl.uplink_loss_parent[c] = f.host;
            fl.uplink_loss[c] = underlay_.loss(f.host, c);
          }
          delivered = true;
        }
      }
      if (now >= fl.in_session_since[c]) {
        ++fl.chunks_expected[c];
        ++res.expected;
        if (delivered) {
          ++fl.chunks_received[c];
          ++res.delivered;
        }
      }
      if (!tree_.member_unchecked(c).children.empty()) {
        stack.push_back({c, delivered});
      }
    }
  }
}

}  // namespace vdm::overlay
