#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "net/types.hpp"
#include "overlay/protocol.hpp"

namespace vdm::overlay {

class Session;
class PipelineSupport;

/// One Case-II adoption decided during a walk: the joiner takes `child`'s
/// slot under the current node and re-parents `child` (measured
/// joiner->child virtual distance rides along). Lives in WalkScratch so a
/// join plan never allocates.
struct WalkAdoption {
  net::HostId child;
  double dist;
};

/// Fixed-size storage for one in-flight walker's protocol step-policy state
/// (the pipeline's placement-new target). Policies are small trivially
/// destructible structs (references + a few scalars); 64 bytes holds the
/// largest (VDM's) with room to spare, and keeping the state inline in the
/// walker table means a batch of thousands of concurrent walks allocates
/// nothing per walker.
struct PolicySlot {
  alignas(16) std::byte bytes[64];
};

/// One arrival queued for the next concurrent-join drain.
struct PendingJoin {
  net::HostId host = net::kInvalidHost;
  int degree_limit = 0;
};

/// Lifecycle of one concurrent-join walker inside a drain.
enum class JoinPhase : std::uint8_t {
  kStart,   ///< locate an entry node and initialize the step policy
  kWalk,    ///< one walk iteration per turn
  kCommit,  ///< reservation held; validate and attach next turn
};

/// Per-walker state of the concurrent join pipeline. Everything a suspended
/// walk needs to resume lives here (position, policy slot, accumulated
/// stats, the decided stop), flat and reusable across drains.
struct JoinWalker {
  net::HostId host = net::kInvalidHost;
  int degree_limit = 0;
  net::HostId cur = net::kInvalidHost;
  int step_index = 0;
  JoinPhase phase = JoinPhase::kStart;
  OpStats stats;
  /// Stop result (valid in kCommit): chosen parent and its measured
  /// distance when the stopping policy had probed it.
  net::HostId parent = net::kInvalidHost;
  double parent_dist = 0.0;
  bool parent_has_dist = false;
  /// This walker's slice of WalkScratch::adoption_pool (VDM Case II
  /// adoptions copied out of the shared scratch at stop time, before the
  /// next walker's turn clobbers it).
  std::uint32_t adoptions_off = 0;
  std::uint32_t adoptions_len = 0;
  PolicySlot slot;
};

/// Reusable buffers of the tree-walk engine. One instance lives on each
/// Session (all walks of a run share it — walks never nest), and the
/// experiment runner shuttles it through the per-worker RunScratch arenas so
/// steady-state sweeps re-run entire experiments without the walk path
/// allocating at all.
struct WalkScratch {
  /// Eligibility-filtered children of the current node.
  std::vector<net::HostId> kids;
  /// Probe target list when the current node is probed alongside its kids.
  std::vector<net::HostId> targets;
  /// measure_parallel output (span-out overload writes here).
  std::vector<double> dist;
  /// Case-II adoption candidates / decided adoptions (VDM).
  std::vector<WalkAdoption> adoptions;

  // --- concurrent join pipeline pools (join_mode == kConcurrent) ----------
  /// Arrivals queued since the last drain (one drain event per timestamp
  /// services the whole batch, so the result is invariant to how callers
  /// group same-time join() calls).
  std::vector<PendingJoin> pending_joins;
  /// Walker table of the current drain, indexed by the queues below.
  std::vector<JoinWalker> walkers;
  /// Round-robin turn queue (FIFO via head cursor; indices into walkers).
  std::vector<std::uint32_t> queue;
  /// Walkers parked after a capacity abort, woken FIFO as commits free or
  /// create slots.
  std::vector<std::uint32_t> parked;
  /// Per-host count of slots reserved by stopped-but-uncommitted walkers.
  std::vector<int> reserved;
  /// Stable copies of each walker's decided adoptions (see JoinWalker).
  std::vector<WalkAdoption> adoption_pool;

  /// Per-member refinement-timer slab, indexed by host id: the sim::EventId
  /// of the member's pending refine tick (0 == sim::kInvalidEvent when
  /// disarmed). Rides this scratch so the table's capacity survives between
  /// runs with the rest of the per-member state — arming and disarming
  /// refinement timers allocates nothing in steady state. Session::start()
  /// zeroes it, since ids from a previous run are meaningless after the
  /// simulator resets.
  std::vector<std::uint64_t> refine_events;

  /// Heap bytes currently reserved — folded into RunScratch::capacity_bytes
  /// so the arena grow gate (arena_grow_per_iter == 0) covers the walk path.
  std::size_t capacity_bytes() const {
    return (kids.capacity() + targets.capacity()) * sizeof(net::HostId) +
           dist.capacity() * sizeof(double) +
           (adoptions.capacity() + adoption_pool.capacity()) *
               sizeof(WalkAdoption) +
           pending_joins.capacity() * sizeof(PendingJoin) +
           walkers.capacity() * sizeof(JoinWalker) +
           (queue.capacity() + parked.capacity()) * sizeof(std::uint32_t) +
           reserved.capacity() * sizeof(int) +
           refine_events.capacity() * sizeof(std::uint64_t);
  }
};

/// How one walk iteration resolved — the tracing vocabulary shared by all
/// protocols (each uses the subset its step policy can produce).
enum class WalkDecision {
  kAttach,             ///< stop: attach to the current node
  kSplice,             ///< stop: VDM Case II — take a child slot, adopt kids
  kDirectionalDescend, ///< VDM Case III: continue towards the closest
                       ///< directional child
  kGreedyDescend,      ///< HMTP: a child is closer than the current node
  kUturnAttach,        ///< stop: HMTP U-turn rule kept us at the current node
  kClosestFreeChild,   ///< stop: saturated fallback to closest child with room
  kCapacityDescend,    ///< saturated fallback: descend into the closest
                       ///< subtree that still has an attachment point
  kRandomStep,         ///< Random: uniform step to a capacity-bearing child
  kAbort,              ///< pipeline only: walk dead-ended on reserved
                       ///< capacity; the walker parks and retries later
};

std::string_view walk_decision_name(WalkDecision decision);

/// One iteration of a walk as reported to a WalkObserver.
struct WalkStep {
  net::HostId joiner = net::kInvalidHost;
  net::HostId node = net::kInvalidHost;  ///< node queried this iteration
  int step = 0;                          ///< 1-based walk-local iteration
  int probes = 0;                        ///< distance measurements issued
  WalkDecision decision = WalkDecision::kAttach;
  net::HostId next = net::kInvalidHost;  ///< descend target / chosen parent
};

/// Tracing seam of the walk engine: installed per protocol
/// (Protocol::set_walk_observer), invoked once per walk iteration. Unset
/// (the default) costs one predictable null-check per iteration — the
/// engine does no formatting or allocation on behalf of an absent observer.
class WalkObserver {
 public:
  virtual ~WalkObserver() = default;
  virtual void on_step(const WalkStep& step) = 0;
};

/// The shared iterative-descent engine under all four protocols (VDM §3.3,
/// HMTP §2.4.7/§3.5, BTP's saturation walk, the Random baseline).
///
/// The engine owns everything the paper's join searches have in common:
/// start normalization (ineligible or capacity-free starts restart from the
/// source), the per-hop info exchange and eligibility-filtered child
/// enumeration, batched probing through Session::measure_parallel into
/// reusable scratch, the shared has-room predicate (a node re-choosing its
/// own parent always has room there), and the saturated-node fallback
/// ladder (closest free child, else descend through the closest
/// capacity-bearing subtree). The protocol supplies only a step policy:
///
///   struct Policy {
///     void on_start(TreeWalk&, OpStats&);          // before iteration 1
///     TreeWalk::Action step(TreeWalk&, OpStats&);  // decide one iteration
///   };
///
/// step() reads the engine's context (cur(), kids(), probe helpers) and
/// returns a stop or descend Action; the engine loops until a stop.
///
/// Determinism contract: the engine preserves the pre-refactor protocols'
/// exact measurement order, rng draw order and OpStats message/iteration
/// counts — run_once scalars are bit-identical to the hand-rolled loops it
/// replaced (pinned by the hexfloat goldens in tests/test_walk.cpp).
class TreeWalk {
 public:
  /// Binds the engine to the session's walk scratch. `observer` may be
  /// null (no tracing); it must outlive the walk.
  explicit TreeWalk(Session& session, WalkObserver* observer = nullptr);

  /// Where the walk stopped. `dist` is the measured joiner->parent virtual
  /// distance when the stopping policy had probed it (`has_dist`); BTP and
  /// Random stop without probing and measure afterwards.
  struct Result {
    net::HostId parent = net::kInvalidHost;
    double dist = 0.0;
    bool has_dist = false;
  };

  /// A policy's verdict for one iteration.
  struct Action {
    enum class Kind { kDescend, kStop, kAbort };
    Kind kind = Kind::kStop;
    WalkDecision decision = WalkDecision::kAttach;
    net::HostId node = net::kInvalidHost;
    double dist = 0.0;
    bool has_dist = false;

    static Action descend(WalkDecision decision, net::HostId node) {
      return {Kind::kDescend, decision, node, 0.0, false};
    }
    static Action descend(WalkDecision decision, net::HostId node, double dist) {
      return {Kind::kDescend, decision, node, dist, true};
    }
    static Action stop(WalkDecision decision, net::HostId parent) {
      return {Kind::kStop, decision, parent, 0.0, false};
    }
    static Action stop(WalkDecision decision, net::HostId parent, double dist) {
      return {Kind::kStop, decision, parent, dist, true};
    }
    /// Pipeline dead-end: every reachable slot is reserved by another
    /// in-flight walker. Only produced when allow_abort() is on.
    static Action aborted() {
      return {Kind::kAbort, WalkDecision::kAbort, net::kInvalidHost, 0.0, false};
    }
  };

  /// Runs the walk for `joiner` from `start` until the policy stops.
  template <typename Policy>
  Result run(net::HostId joiner, net::HostId start, OpStats& stats,
             Policy&& policy) {
    begin(joiner, start);
    policy.on_start(*this, stats);
    for (;;) {
      next_step(stats);
      const Action action = policy.step(*this, stats);
      report(action);
      if (action.kind == Action::Kind::kStop) {
        return Result{action.node, action.dist, action.has_dist};
      }
      cur_ = action.node;
    }
  }

  // --- context read by step policies ------------------------------------

  Session& session() { return session_; }
  net::HostId joiner() const { return joiner_; }
  net::HostId cur() const { return cur_; }

  /// Children of cur() that may serve as the joiner's parent (alive, not
  /// the joiner, not in its subtree), in child-list order.
  std::span<const net::HostId> kids() const { return scratch_.kids; }

  /// Kid distances of the most recent probe call, aligned with kids().
  std::span<const double> kid_dists() const;

  /// "N pings S and all children of S" (VDM §3.2): probes cur() and every
  /// kid concurrently; returns d(joiner, cur).
  double probe_cur_and_kids(OpStats& stats);

  /// Probes every kid concurrently (HMTP/BTP); returns the kid distances.
  std::span<const double> probe_kids(OpStats& stats);

  /// The shared has-room predicate: `candidate` can take the joiner's
  /// uplink — it has a free slot, or it already is the joiner's parent
  /// (re-choosing one's own parent must never look like a full node).
  bool can_accept(net::HostId candidate) const;

  /// Drops kids whose subtree (excluding the joiner's) has no attachment
  /// point left, in place (the Random walk's steppable filter).
  void filter_kids_subtree_capacity();

  /// The saturated-node fallback ladder: stop at the closest kid with room,
  /// else descend through the closest capacity-bearing subtree (which must
  /// exist — the walk never enters a capacity-free subtree).
  Action saturated_fallback(std::span<const double> kid_dist);

  /// The ladder's bottom rung alone (BTP descends without the free-child
  /// stop; its next iteration re-checks room at the new node).
  Action descend_closest_capacity(std::span<const double> kid_dist);

  /// Case-II candidate buffer (cleared by the caller; sorted prefixes of it
  /// back the adoption spans a join plan carries).
  std::vector<WalkAdoption>& adoptions_scratch() { return scratch_.adoptions; }

  // --- concurrent-pipeline seams (overlay/session.cpp drain loop) ---------

  /// Start normalization as a pure function: where a walk for `joiner`
  /// contacted at `start` actually begins (the source when `start` is
  /// ineligible or its subtree has no attachment point left).
  net::HostId normalize_start(net::HostId joiner, net::HostId start) const;

  /// Re-binds the engine to a suspended walker's position without the
  /// begin() normalization; the drain loop calls this before every turn
  /// (walkers share one engine and one scratch — turns are serialized).
  void resume(net::HostId joiner, net::HostId cur, int step_index);

  /// One pipeline walk iteration: prologue (info exchange + child
  /// enumeration), one policy step through `support`, observer report, and
  /// the descend move. The caller persists cur()/step_index() back into its
  /// walker on kDescend and handles kStop/kAbort.
  Action step_once(PipelineSupport& support, PolicySlot& slot, OpStats& stats);

  int step_index() const { return step_index_; }

  /// Binds (or clears, with nullptr) the pipeline's per-host reservation
  /// counts: while bound, can_accept() treats reserved slots as occupied,
  /// so two in-flight walkers can never be granted the same slot. Unbound
  /// (the sequential path) is bit-identical to the pre-pipeline predicate.
  void bind_reservations(const std::vector<int>* reserved) {
    reserved_ = reserved;
  }

  /// While on, capacity dead-ends return Action::aborted() instead of
  /// failing the walk invariant — in a concurrent batch a subtree's last
  /// slots can legitimately be reserved out from under a walker mid-walk.
  void allow_abort(bool allow) { allow_abort_ = allow; }

  /// The dead-end verdict shared by the step policies: abort when allowed,
  /// otherwise the sequential invariant failure.
  Action no_capacity() const;

 private:
  /// Start normalization: restart from the source when the contacted node
  /// is ineligible or its subtree has no attachment point left (e.g. a
  /// saturated degree-1 leaf offered as a reconnection grandparent).
  void begin(net::HostId joiner, net::HostId start);

  /// One iteration prologue: charges the info exchange with cur() and
  /// enumerates eligible children into scratch.
  void next_step(OpStats& stats);

  void report(const Action& action);

  Session& session_;
  WalkScratch& scratch_;
  WalkObserver* observer_;
  net::HostId joiner_ = net::kInvalidHost;
  net::HostId cur_ = net::kInvalidHost;
  int step_index_ = 0;
  int step_probes_ = 0;
  const std::vector<int>* reserved_ = nullptr;
  bool allow_abort_ = false;
  /// Offset of kid distances inside scratch_.dist for the last probe call
  /// (1 when cur() was probed first, 0 otherwise).
  std::size_t kid_dist_offset_ = 0;
};

/// A protocol's adapter to the concurrent join pipeline (Session's drain
/// loop). The sequential path runs each protocol's step policy to
/// completion inside TreeWalk::run; the pipeline instead advances many
/// suspended walks one iteration per turn, so the policy state must live
/// outside the stack — in the walker's PolicySlot, placement-new'ed by
/// start() and advanced by step(). Policies stay the exact structs the
/// sequential path uses; this interface only re-homes them.
///
/// commit() runs one turn after the stop decision, with the slot reserved
/// in between: it re-validates what other walkers may have invalidated
/// (VDM adoptions racing for the same child) and performs the attach,
/// charging the same messages the sequential path would. Returns false when
/// the commit can no longer proceed — the walker releases its reservation
/// and restarts (optimistic retry).
class PipelineSupport {
 public:
  virtual ~PipelineSupport() = default;

  /// Placement-new the protocol's step policy into `slot` (called once per
  /// walk attempt, after the walker's position is normalized). May probe
  /// (HMTP measures d(N, cur) up front).
  virtual void start(TreeWalk& walk, PolicySlot& slot, OpStats& stats) = 0;

  /// One policy iteration over the slot's state (TreeWalk::step_once has
  /// already run the per-hop prologue).
  virtual TreeWalk::Action step(TreeWalk& walk, PolicySlot& slot,
                                OpStats& stats) = 0;

  /// The adoptions decided by the stop returned from step(), viewing the
  /// shared walk scratch — the drain copies them out before the next turn.
  /// Default: protocols without splices adopt nothing.
  virtual std::span<const WalkAdoption> adoptions(const PolicySlot& slot) const;

  /// Validate + attach `joiner` under the stopped-at parent. The default
  /// covers HMTP/BTP/Random: measure the parent distance if the stop had
  /// not, charge the connection handshake, attach. VDM overrides to splice.
  virtual bool commit(Session& session, net::HostId joiner,
                      net::HostId parent, double parent_dist,
                      bool parent_has_dist,
                      std::span<const WalkAdoption> adoptions, OpStats& stats);
};

/// CRTP base implementing PipelineSupport's start()/step() for a protocol
/// whose sequential step policy is a small trivially destructible struct —
/// which all four are. The derived adapter supplies only
///
///   Policy make_policy(TreeWalk& walk) const;
///
/// returning the policy initialized for walk.joiner(); it is placement-new'ed
/// into the walker's PolicySlot (no destruction needed — the slot is reused
/// by overwriting). Protocols with splices or commit-time re-validation
/// additionally override adoptions() / commit().
template <typename Derived, typename Policy>
class PolicyPipeline : public PipelineSupport {
 public:
  void start(TreeWalk& walk, PolicySlot& slot, OpStats& stats) override {
    static_assert(sizeof(Policy) <= sizeof(PolicySlot::bytes),
                  "step policy does not fit the walker's PolicySlot");
    static_assert(alignof(Policy) <= alignof(PolicySlot),
                  "step policy over-aligned for the walker's PolicySlot");
    static_assert(std::is_trivially_destructible_v<Policy>,
                  "walker slots are reused without running destructors");
    Policy* policy = ::new (static_cast<void*>(slot.bytes))
        Policy(static_cast<const Derived*>(this)->make_policy(walk));
    policy->on_start(walk, stats);
  }

  TreeWalk::Action step(TreeWalk& walk, PolicySlot& slot,
                        OpStats& stats) override {
    return policy_of(slot).step(walk, stats);
  }

 protected:
  static Policy& policy_of(PolicySlot& slot) {
    return *std::launder(reinterpret_cast<Policy*>(slot.bytes));
  }
  static const Policy& policy_of(const PolicySlot& slot) {
    return *std::launder(reinterpret_cast<const Policy*>(slot.bytes));
  }
};

}  // namespace vdm::overlay
