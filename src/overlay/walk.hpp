#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "net/types.hpp"
#include "overlay/protocol.hpp"

namespace vdm::overlay {

class Session;

/// One Case-II adoption decided during a walk: the joiner takes `child`'s
/// slot under the current node and re-parents `child` (measured
/// joiner->child virtual distance rides along). Lives in WalkScratch so a
/// join plan never allocates.
struct WalkAdoption {
  net::HostId child;
  double dist;
};

/// Reusable buffers of the tree-walk engine. One instance lives on each
/// Session (all walks of a run share it — walks never nest), and the
/// experiment runner shuttles it through the per-worker RunScratch arenas so
/// steady-state sweeps re-run entire experiments without the walk path
/// allocating at all.
struct WalkScratch {
  /// Eligibility-filtered children of the current node.
  std::vector<net::HostId> kids;
  /// Probe target list when the current node is probed alongside its kids.
  std::vector<net::HostId> targets;
  /// measure_parallel output (span-out overload writes here).
  std::vector<double> dist;
  /// Case-II adoption candidates / decided adoptions (VDM).
  std::vector<WalkAdoption> adoptions;

  /// Heap bytes currently reserved — folded into RunScratch::capacity_bytes
  /// so the arena grow gate (arena_grow_per_iter == 0) covers the walk path.
  std::size_t capacity_bytes() const {
    return (kids.capacity() + targets.capacity()) * sizeof(net::HostId) +
           dist.capacity() * sizeof(double) +
           adoptions.capacity() * sizeof(WalkAdoption);
  }
};

/// How one walk iteration resolved — the tracing vocabulary shared by all
/// protocols (each uses the subset its step policy can produce).
enum class WalkDecision {
  kAttach,             ///< stop: attach to the current node
  kSplice,             ///< stop: VDM Case II — take a child slot, adopt kids
  kDirectionalDescend, ///< VDM Case III: continue towards the closest
                       ///< directional child
  kGreedyDescend,      ///< HMTP: a child is closer than the current node
  kUturnAttach,        ///< stop: HMTP U-turn rule kept us at the current node
  kClosestFreeChild,   ///< stop: saturated fallback to closest child with room
  kCapacityDescend,    ///< saturated fallback: descend into the closest
                       ///< subtree that still has an attachment point
  kRandomStep,         ///< Random: uniform step to a capacity-bearing child
};

std::string_view walk_decision_name(WalkDecision decision);

/// One iteration of a walk as reported to a WalkObserver.
struct WalkStep {
  net::HostId joiner = net::kInvalidHost;
  net::HostId node = net::kInvalidHost;  ///< node queried this iteration
  int step = 0;                          ///< 1-based walk-local iteration
  int probes = 0;                        ///< distance measurements issued
  WalkDecision decision = WalkDecision::kAttach;
  net::HostId next = net::kInvalidHost;  ///< descend target / chosen parent
};

/// Tracing seam of the walk engine: installed per protocol
/// (Protocol::set_walk_observer), invoked once per walk iteration. Unset
/// (the default) costs one predictable null-check per iteration — the
/// engine does no formatting or allocation on behalf of an absent observer.
class WalkObserver {
 public:
  virtual ~WalkObserver() = default;
  virtual void on_step(const WalkStep& step) = 0;
};

/// The shared iterative-descent engine under all four protocols (VDM §3.3,
/// HMTP §2.4.7/§3.5, BTP's saturation walk, the Random baseline).
///
/// The engine owns everything the paper's join searches have in common:
/// start normalization (ineligible or capacity-free starts restart from the
/// source), the per-hop info exchange and eligibility-filtered child
/// enumeration, batched probing through Session::measure_parallel into
/// reusable scratch, the shared has-room predicate (a node re-choosing its
/// own parent always has room there), and the saturated-node fallback
/// ladder (closest free child, else descend through the closest
/// capacity-bearing subtree). The protocol supplies only a step policy:
///
///   struct Policy {
///     void on_start(TreeWalk&, OpStats&);          // before iteration 1
///     TreeWalk::Action step(TreeWalk&, OpStats&);  // decide one iteration
///   };
///
/// step() reads the engine's context (cur(), kids(), probe helpers) and
/// returns a stop or descend Action; the engine loops until a stop.
///
/// Determinism contract: the engine preserves the pre-refactor protocols'
/// exact measurement order, rng draw order and OpStats message/iteration
/// counts — run_once scalars are bit-identical to the hand-rolled loops it
/// replaced (pinned by the hexfloat goldens in tests/test_walk.cpp).
class TreeWalk {
 public:
  /// Binds the engine to the session's walk scratch. `observer` may be
  /// null (no tracing); it must outlive the walk.
  explicit TreeWalk(Session& session, WalkObserver* observer = nullptr);

  /// Where the walk stopped. `dist` is the measured joiner->parent virtual
  /// distance when the stopping policy had probed it (`has_dist`); BTP and
  /// Random stop without probing and measure afterwards.
  struct Result {
    net::HostId parent = net::kInvalidHost;
    double dist = 0.0;
    bool has_dist = false;
  };

  /// A policy's verdict for one iteration.
  struct Action {
    enum class Kind { kDescend, kStop };
    Kind kind = Kind::kStop;
    WalkDecision decision = WalkDecision::kAttach;
    net::HostId node = net::kInvalidHost;
    double dist = 0.0;
    bool has_dist = false;

    static Action descend(WalkDecision decision, net::HostId node) {
      return {Kind::kDescend, decision, node, 0.0, false};
    }
    static Action descend(WalkDecision decision, net::HostId node, double dist) {
      return {Kind::kDescend, decision, node, dist, true};
    }
    static Action stop(WalkDecision decision, net::HostId parent) {
      return {Kind::kStop, decision, parent, 0.0, false};
    }
    static Action stop(WalkDecision decision, net::HostId parent, double dist) {
      return {Kind::kStop, decision, parent, dist, true};
    }
  };

  /// Runs the walk for `joiner` from `start` until the policy stops.
  template <typename Policy>
  Result run(net::HostId joiner, net::HostId start, OpStats& stats,
             Policy&& policy) {
    begin(joiner, start);
    policy.on_start(*this, stats);
    for (;;) {
      next_step(stats);
      const Action action = policy.step(*this, stats);
      report(action);
      if (action.kind == Action::Kind::kStop) {
        return Result{action.node, action.dist, action.has_dist};
      }
      cur_ = action.node;
    }
  }

  // --- context read by step policies ------------------------------------

  Session& session() { return session_; }
  net::HostId joiner() const { return joiner_; }
  net::HostId cur() const { return cur_; }

  /// Children of cur() that may serve as the joiner's parent (alive, not
  /// the joiner, not in its subtree), in child-list order.
  std::span<const net::HostId> kids() const { return scratch_.kids; }

  /// Kid distances of the most recent probe call, aligned with kids().
  std::span<const double> kid_dists() const;

  /// "N pings S and all children of S" (VDM §3.2): probes cur() and every
  /// kid concurrently; returns d(joiner, cur).
  double probe_cur_and_kids(OpStats& stats);

  /// Probes every kid concurrently (HMTP/BTP); returns the kid distances.
  std::span<const double> probe_kids(OpStats& stats);

  /// The shared has-room predicate: `candidate` can take the joiner's
  /// uplink — it has a free slot, or it already is the joiner's parent
  /// (re-choosing one's own parent must never look like a full node).
  bool can_accept(net::HostId candidate) const;

  /// Drops kids whose subtree (excluding the joiner's) has no attachment
  /// point left, in place (the Random walk's steppable filter).
  void filter_kids_subtree_capacity();

  /// The saturated-node fallback ladder: stop at the closest kid with room,
  /// else descend through the closest capacity-bearing subtree (which must
  /// exist — the walk never enters a capacity-free subtree).
  Action saturated_fallback(std::span<const double> kid_dist);

  /// The ladder's bottom rung alone (BTP descends without the free-child
  /// stop; its next iteration re-checks room at the new node).
  Action descend_closest_capacity(std::span<const double> kid_dist);

  /// Case-II candidate buffer (cleared by the caller; sorted prefixes of it
  /// back the adoption spans a join plan carries).
  std::vector<WalkAdoption>& adoptions_scratch() { return scratch_.adoptions; }

 private:
  /// Start normalization: restart from the source when the contacted node
  /// is ineligible or its subtree has no attachment point left (e.g. a
  /// saturated degree-1 leaf offered as a reconnection grandparent).
  void begin(net::HostId joiner, net::HostId start);

  /// One iteration prologue: charges the info exchange with cur() and
  /// enumerates eligible children into scratch.
  void next_step(OpStats& stats);

  void report(const Action& action);

  Session& session_;
  WalkScratch& scratch_;
  WalkObserver* observer_;
  net::HostId joiner_ = net::kInvalidHost;
  net::HostId cur_ = net::kInvalidHost;
  int step_index_ = 0;
  int step_probes_ = 0;
  /// Offset of kid distances inside scratch_.dist for the last probe call
  /// (1 when cur() was probed first, 0 otherwise).
  std::size_t kid_dist_offset_ = 0;
};

}  // namespace vdm::overlay
