#pragma once

#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace vdm::overlay {

using net::HostId;
using net::kInvalidHost;

/// Per-member overlay state: exactly what a VDM/HMTP peer stores — its
/// parent, grandparent, children and the measured virtual distance to each
/// child (§3.2: "Each node has children list and distances to them. They
/// also know their parent and grandparent.").
///
/// This struct is tree structure only. The data-plane flood fields that
/// used to lead it (receiving_since, uplink-loss memo, chunk counters) live
/// in Membership's FloodTable as parallel per-host arrays instead: the
/// chunk flood, heartbeat sweeps and TreeWalk child enumeration then stream
/// contiguous cache lines rather than chasing 100k+ scattered MemberStates,
/// and MemberState itself shrinks to about one cache line.
struct MemberState {
  std::vector<HostId> children;
  /// Virtual distance to children[i] as measured when it connected (the
  /// state a parent reports in info responses). Parallel to `children`;
  /// with degree limits of 2..5 a linear scan beats any map, and the
  /// vector's capacity survives churn where a node-based map's does not.
  std::vector<double> child_dists;

  HostId parent = kInvalidHost;
  HostId grandparent = kInvalidHost;
  bool alive = false;
  /// Maximum number of children this node will feed (uplink capacity).
  int degree_limit = 0;

  /// Number of overlay links this member currently holds: its children plus
  /// its own uplink. DESIGN.md invariant 2 bounds *links*, not children —
  /// an interior node's uplink consumes one unit of its capacity, so a node
  /// with limit L can feed at most L-1 children (the root, having no
  /// parent link, can feed L).
  int overlay_links() const {
    return static_cast<int>(children.size()) + (parent != kInvalidHost ? 1 : 0);
  }
  bool has_free_degree() const { return overlay_links() < degree_limit; }
  bool is_root() const { return alive && parent == kInvalidHost; }
};

/// Hot data-plane member state in struct-of-arrays layout, indexed by host.
/// Session::emit_chunk touches these fields for every overlay edge of every
/// chunk — the hottest loop of a run — so each field is its own contiguous
/// array and an edge visit costs a handful of streamed loads instead of a
/// random 136-byte struct fetch.
struct FloodTable {
  /// When the member (re)gained a working path to the source. Data chunks
  /// arriving earlier are not deliverable to it (join/reconnect outage).
  std::vector<sim::Time> receiving_since;
  /// When the member first completed its initial join of the current stint
  /// (chunks are *expected* from this point; see the loss metric).
  std::vector<sim::Time> in_session_since;
  /// Memoized drop probability of the uplink from uplink_loss_parent[h],
  /// refreshed lazily when the flood sees a different parent; sound because
  /// the underlay is immutable once a session streams.
  std::vector<double> uplink_loss;
  std::vector<HostId> uplink_loss_parent;
  /// Data-plane accounting for the loss-rate metric. 32-bit: even day-long
  /// sessions emit far fewer than 4G chunks per member.
  std::vector<std::uint32_t> chunks_expected;
  std::vector<std::uint32_t> chunks_received;

  /// Sizes every array to `n` hosts and zeroes it (capacity kept).
  void assign(std::size_t n);
  /// Resets host `h` to the just-activated state.
  void reset_host(HostId h);
  std::size_t capacity_bytes() const;
};

/// Observes tree mutations. The placement index (overlay/placement.hpp)
/// keeps its nearest-neighbor structures current by watching every attach
/// and detach instead of rescanning the membership; any other incremental
/// index can hook in the same way. Callbacks fire after an attach completes
/// and before a detach mutates anything, so the observer always sees a
/// consistent tree.
class MembershipObserver {
 public:
  virtual ~MembershipObserver() = default;
  virtual void on_attach(HostId child, HostId parent) = 0;
  virtual void on_detach(HostId child, HostId parent) = 0;
};

/// The overlay tree: owns all MemberStates and keeps parent / child /
/// grandparent pointers mutually consistent through every mutation.
///
/// Protocols express their decisions exclusively through attach / detach /
/// move_child, so structural invariants (single parent, degree bounds,
/// acyclicity) are enforced in one place and are cheap to audit (validate()).
class Membership {
 public:
  explicit Membership(std::size_t num_hosts) { reset(num_hosts); }

  /// Rebinds the tree to `num_hosts` hosts with every member detached and
  /// dead, reusing all existing storage (member slots, children capacity,
  /// flood arrays). A reset Membership is observably identical to a freshly
  /// constructed one — this is what lets a RunScratch shuttle one tree
  /// through consecutive runs with zero steady-state allocations.
  void reset(std::size_t num_hosts);

  std::size_t num_hosts() const { return num_hosts_; }
  const MemberState& member(HostId h) const { return members_.at(h); }
  MemberState& mutable_member(HostId h) { return members_.at(h); }

  /// Bounds-unchecked accessors for per-edge hot loops (the data-plane
  /// chunk flood); callers guarantee h < num_hosts().
  const MemberState& member_unchecked(HostId h) const { return members_[h]; }
  MemberState& mutable_member_unchecked(HostId h) { return members_[h]; }

  /// The SoA data-plane state (see FloodTable). Arrays are indexed by host
  /// and sized num_hosts().
  FloodTable& flood() { return flood_; }
  const FloodTable& flood() const { return flood_; }

  /// Marks `h` alive with the given child capacity; it joins detached.
  void activate(HostId h, int degree_limit);

  /// Marks `h` dead and detaches it from parent and children. Children are
  /// left orphaned (parent = invalid) for the protocol to reconnect.
  /// Returns the orphaned children.
  std::vector<HostId> deactivate(HostId h);

  /// Allocation-free variant: the orphans land in `orphans_out` (cleared
  /// first) — the per-departure call sites reuse one scratch buffer.
  void deactivate(HostId h, std::vector<HostId>& orphans_out);

  /// Connects `child` (alive, currently detached) under `parent` (alive,
  /// with free degree unless `allow_full`). Records the measured virtual
  /// distance and refreshes grandparent pointers of `child`'s children.
  void attach(HostId child, HostId parent, double measured_dist,
              bool allow_full = false);

  /// Disconnects `child` from its parent (keeps it alive and keeps its own
  /// subtree intact).
  void detach(HostId child);

  /// Re-parents `child` from its current parent to `new_parent`
  /// (the Case II "parent change" message). Equivalent to detach + attach.
  void move_child(HostId child, HostId new_parent, double measured_dist,
                  bool allow_full = false);

  /// Distance parent -> child as stored at the parent; requires the edge.
  double stored_child_distance(HostId parent, HostId child) const;

  /// Refreshes the stored distance of an existing edge (a re-measurement
  /// during refinement that kept the same parent must not leave the old
  /// value behind — later directionality classifications read it).
  void update_child_distance(HostId parent, HostId child, double measured_dist);

  /// True if `root`'s subtree (excluding `exclude` and everything below it)
  /// contains a member that can still accept a child. O(1) whenever no
  /// degree-limit-1 member is alive: such members are the only possible
  /// saturated leaves, and every subtree bottoms out in leaves, so capacity
  /// is otherwise guaranteed. Protocol searches use this to avoid
  /// descending into a subtree with no attachment point.
  bool subtree_has_capacity(HostId root, HostId exclude = kInvalidHost) const;

  /// True if `ancestor` appears on `node`'s root path (or equals it).
  bool is_ancestor(HostId ancestor, HostId node) const;

  /// Root path of `node` starting at its parent, ending at the tree root.
  std::vector<HostId> root_path(HostId node) const;

  /// Overlay hop count from `node` up to the root of its fragment (0 for a
  /// fragment root, including a detached member). Use is_ancestor(source,
  /// node) to check whether the fragment is the source's tree.
  std::size_t depth(HostId node) const;

  /// All alive members (connected or not).
  std::vector<HostId> alive_members() const;

  /// Count of alive members, maintained incrementally (no scan, no alloc).
  std::size_t alive_count() const { return alive_count_; }

  /// Registers the single mutation observer (nullptr to clear). Not owned.
  void set_observer(MembershipObserver* observer) { observer_ = observer; }

  /// Members reachable from `root` through parent pointers, including root.
  std::vector<HostId> subtree(HostId root) const;

  /// Heap bytes reserved by member slots, children lists and flood arrays
  /// (RunScratch arena accounting).
  std::size_t capacity_bytes() const;

  /// Throws InvariantError if any structural invariant is violated:
  /// consistent parent/child pointers, degree bounds, no cycles,
  /// grandparent pointers correct, distances stored for every edge.
  void validate() const;

 private:
  void refresh_grandparent_of_children(HostId node);
  /// Index of `child` in `parent`'s children list; throws if absent.
  std::size_t child_index(const MemberState& pm, HostId child) const;

  /// May exceed num_hosts_ after a reset to a smaller pool: slots keep
  /// their children capacity for the next large run instead of being
  /// destroyed. Only [0, num_hosts_) is addressable through the API.
  std::vector<MemberState> members_;
  FloodTable flood_;
  std::size_t num_hosts_ = 0;
  std::size_t alive_count_ = 0;
  MembershipObserver* observer_ = nullptr;
  /// DFS scratch for subtree_has_capacity(); member state (not a local) so
  /// the saturated-descent checks stay allocation-free in steady state.
  mutable std::vector<HostId> capacity_stack_;
  /// Count of alive members with degree_limit == 1. Such members are the
  /// only ones that can be saturated leaves (limit >= 2 leaves always have
  /// a free slot), so subtree_has_capacity() short-circuits to true while
  /// this is zero — the common configuration.
  int limit1_alive_ = 0;
};

}  // namespace vdm::overlay
