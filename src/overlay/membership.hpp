#pragma once

#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace vdm::overlay {

using net::HostId;
using net::kInvalidHost;

/// Per-member overlay state: exactly what a VDM/HMTP peer stores — its
/// parent, grandparent, children and the measured virtual distance to each
/// child (§3.2: "Each node has children list and distances to them. They
/// also know their parent and grandparent.").
struct MemberState {
  // Field order is data-plane-first: the chunk flood touches
  // receiving_since, the chunk counters and the children list for every
  // overlay edge of every chunk, so they share the leading cache line;
  // control-plane state (and the cold child_dist map) follows.

  /// When the member (re)gained a working path to the source. Data chunks
  /// arriving earlier are not deliverable to it (join/reconnect outage).
  sim::Time receiving_since = 0.0;

  /// When the member first completed its initial join of the current stint
  /// (chunks are *expected* from this point; see the loss metric).
  sim::Time in_session_since = 0.0;

  /// Memoized drop probability of the uplink from `uplink_loss_parent`.
  /// Refreshed lazily when the flood sees a different parent; sound because
  /// the underlay is immutable once a session streams.
  double uplink_loss = 0.0;
  HostId uplink_loss_parent = kInvalidHost;

  // Data-plane accounting for the loss-rate metric. 32-bit: even day-long
  // sessions emit far fewer than 4G chunks per member, and the narrower
  // counters keep every flood-touched field inside one cache line.
  std::uint32_t chunks_expected = 0;
  std::uint32_t chunks_received = 0;

  std::vector<HostId> children;

  HostId parent = kInvalidHost;
  HostId grandparent = kInvalidHost;
  bool alive = false;
  /// Maximum number of children this node will feed (uplink capacity).
  int degree_limit = 0;
  /// Virtual distance to each child, keyed by child id, as measured when
  /// the child connected (the state a parent reports in info responses).
  std::unordered_map<HostId, double> child_dist;

  /// Number of overlay links this member currently holds: its children plus
  /// its own uplink. DESIGN.md invariant 2 bounds *links*, not children —
  /// an interior node's uplink consumes one unit of its capacity, so a node
  /// with limit L can feed at most L-1 children (the root, having no
  /// parent link, can feed L).
  int overlay_links() const {
    return static_cast<int>(children.size()) + (parent != kInvalidHost ? 1 : 0);
  }
  bool has_free_degree() const { return overlay_links() < degree_limit; }
  bool is_root() const { return alive && parent == kInvalidHost; }
};

/// The overlay tree: owns all MemberStates and keeps parent / child /
/// grandparent pointers mutually consistent through every mutation.
///
/// Protocols express their decisions exclusively through attach / detach /
/// move_child, so structural invariants (single parent, degree bounds,
/// acyclicity) are enforced in one place and are cheap to audit (validate()).
class Membership {
 public:
  explicit Membership(std::size_t num_hosts) : members_(num_hosts) {}

  std::size_t num_hosts() const { return members_.size(); }
  const MemberState& member(HostId h) const { return members_.at(h); }
  MemberState& mutable_member(HostId h) { return members_.at(h); }

  /// Bounds-unchecked accessors for per-edge hot loops (the data-plane
  /// chunk flood); callers guarantee h < num_hosts().
  const MemberState& member_unchecked(HostId h) const { return members_[h]; }
  MemberState& mutable_member_unchecked(HostId h) { return members_[h]; }

  /// Marks `h` alive with the given child capacity; it joins detached.
  void activate(HostId h, int degree_limit);

  /// Marks `h` dead and detaches it from parent and children. Children are
  /// left orphaned (parent = invalid) for the protocol to reconnect.
  /// Returns the orphaned children.
  std::vector<HostId> deactivate(HostId h);

  /// Connects `child` (alive, currently detached) under `parent` (alive,
  /// with free degree unless `allow_full`). Records the measured virtual
  /// distance and refreshes grandparent pointers of `child`'s children.
  void attach(HostId child, HostId parent, double measured_dist,
              bool allow_full = false);

  /// Disconnects `child` from its parent (keeps it alive and keeps its own
  /// subtree intact).
  void detach(HostId child);

  /// Re-parents `child` from its current parent to `new_parent`
  /// (the Case II "parent change" message). Equivalent to detach + attach.
  void move_child(HostId child, HostId new_parent, double measured_dist,
                  bool allow_full = false);

  /// Distance parent -> child as stored at the parent; requires the edge.
  double stored_child_distance(HostId parent, HostId child) const;

  /// Refreshes the stored distance of an existing edge (a re-measurement
  /// during refinement that kept the same parent must not leave the old
  /// value behind — later directionality classifications read it).
  void update_child_distance(HostId parent, HostId child, double measured_dist);

  /// True if `root`'s subtree (excluding `exclude` and everything below it)
  /// contains a member that can still accept a child. O(1) whenever no
  /// degree-limit-1 member is alive: such members are the only possible
  /// saturated leaves, and every subtree bottoms out in leaves, so capacity
  /// is otherwise guaranteed. Protocol searches use this to avoid
  /// descending into a subtree with no attachment point.
  bool subtree_has_capacity(HostId root, HostId exclude = kInvalidHost) const;

  /// True if `ancestor` appears on `node`'s root path (or equals it).
  bool is_ancestor(HostId ancestor, HostId node) const;

  /// Root path of `node` starting at its parent, ending at the tree root.
  std::vector<HostId> root_path(HostId node) const;

  /// Overlay hop count from `node` up to the root of its fragment (0 for a
  /// fragment root, including a detached member). Use is_ancestor(source,
  /// node) to check whether the fragment is the source's tree.
  std::size_t depth(HostId node) const;

  /// All alive members (connected or not).
  std::vector<HostId> alive_members() const;

  /// Members reachable from `root` through parent pointers, including root.
  std::vector<HostId> subtree(HostId root) const;

  /// Throws InvariantError if any structural invariant is violated:
  /// consistent parent/child pointers, degree bounds, no cycles,
  /// grandparent pointers correct, distances stored for every edge.
  void validate() const;

 private:
  void refresh_grandparent_of_children(HostId node);

  std::vector<MemberState> members_;
  /// Count of alive members with degree_limit == 1. Such members are the
  /// only ones that can be saturated leaves (limit >= 2 leaves always have
  /// a free slot), so subtree_has_capacity() short-circuits to true while
  /// this is zero — the common configuration.
  int limit1_alive_ = 0;
};

}  // namespace vdm::overlay
