#include "overlay/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "net/coord_underlay.hpp"
#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::overlay {

namespace {

/// Spiral search budget: a locate never touches more cells than this before
/// giving up (the caller falls back to the source). Bounds the sparse-index
/// worst case — the first arrivals of a flash crowd spiral over a nearly
/// empty grid — at a constant, while a warm index finds a neighbor within a
/// ring or two.
constexpr std::size_t kMaxCellsScanned = 4096;

}  // namespace

void PlacementIndex::bind(const net::Underlay& underlay, net::HostId source) {
  underlay_ = &underlay;
  source_ = source;
  size_ = 0;
  const std::size_t n = underlay.num_hosts();

  const auto* coord = dynamic_cast<const net::CoordUnderlay*>(&underlay);
  grid_mode_ = coord != nullptr;
  if (grid_mode_) {
    xs_ = &coord->xs();
    ys_ = &coord->ys();
    // ~sqrt(N) cells per axis keeps expected occupancy at one member per
    // cell when everyone is attached; clamped so tiny sessions still get a
    // few cells and huge ones stay within a fixed memory budget.
    const auto dim = static_cast<std::uint32_t>(std::llround(
        std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)))));
    grid_dim_ = std::clamp<std::uint32_t>(dim, 8, 256);
    double max_x = -std::numeric_limits<double>::infinity();
    double max_y = -std::numeric_limits<double>::infinity();
    min_x_ = std::numeric_limits<double>::infinity();
    min_y_ = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      min_x_ = std::min(min_x_, (*xs_)[i]);
      min_y_ = std::min(min_y_, (*ys_)[i]);
      max_x = std::max(max_x, (*xs_)[i]);
      max_y = std::max(max_y, (*ys_)[i]);
    }
    const double range_x = max_x - min_x_;
    const double range_y = max_y - min_y_;
    inv_cell_x_ = range_x > 0.0 ? static_cast<double>(grid_dim_) / range_x : 0.0;
    inv_cell_y_ = range_y > 0.0 ? static_cast<double>(grid_dim_) / range_y : 0.0;
    cell_head_.assign(static_cast<std::size_t>(grid_dim_) * grid_dim_, kNone);
    next_.assign(n, kNone);
    prev_.assign(n, kNone);
    cell_of_.assign(n, kNone);
    return;
  }

  // Landmark mode: L anchor hosts spread over the id space (any host can
  // answer a ping whether or not it is a member), plus the rendezvous ring.
  const std::size_t l = std::min(kLandmarks, n);
  landmarks_.clear();
  for (std::size_t i = 0; i < l; ++i) {
    landmarks_.push_back(static_cast<net::HostId>((i * n) / l));
  }
  ring_host_.assign(kRingSlots, net::kInvalidHost);
  ring_vec_.assign(kRingSlots * landmarks_.size(), 0.0);
  slot_of_.assign(n, kNone);
  next_evict_ = 0;
}

std::uint32_t PlacementIndex::cell_index(net::HostId h) const {
  const double fx = ((*xs_)[h] - min_x_) * inv_cell_x_;
  const double fy = ((*ys_)[h] - min_y_) * inv_cell_y_;
  const auto cx = std::min<std::uint32_t>(
      grid_dim_ - 1, static_cast<std::uint32_t>(std::max(fx, 0.0)));
  const auto cy = std::min<std::uint32_t>(
      grid_dim_ - 1, static_cast<std::uint32_t>(std::max(fy, 0.0)));
  return cy * grid_dim_ + cx;
}

void PlacementIndex::insert(net::HostId member) {
  if (grid_mode_) {
    grid_insert(member);
  } else {
    ring_insert(member);
  }
}

void PlacementIndex::grid_insert(net::HostId member) {
  if (cell_of_[member] != kNone) return;  // already indexed
  const std::uint32_t cell = cell_index(member);
  const std::uint32_t head = cell_head_[cell];
  next_[member] = head;
  prev_[member] = kNone;
  if (head != kNone) prev_[head] = member;
  cell_head_[cell] = member;
  cell_of_[member] = cell;
  ++size_;
}

void PlacementIndex::grid_remove(net::HostId member) {
  const std::uint32_t cell = cell_of_[member];
  if (cell == kNone) return;
  const std::uint32_t nx = next_[member];
  const std::uint32_t pv = prev_[member];
  if (pv != kNone) {
    next_[pv] = nx;
  } else {
    cell_head_[cell] = nx;
  }
  if (nx != kNone) prev_[nx] = pv;
  next_[member] = kNone;
  prev_[member] = kNone;
  cell_of_[member] = kNone;
  --size_;
}

void PlacementIndex::ring_insert(net::HostId member) {
  if (slot_of_[member] != kNone) return;  // already in the rendezvous set
  const std::uint32_t slot = next_evict_;
  next_evict_ = (next_evict_ + 1) % static_cast<std::uint32_t>(kRingSlots);
  const net::HostId old = ring_host_[slot];
  if (old != net::kInvalidHost) {
    slot_of_[old] = kNone;
    --size_;
  }
  ring_host_[slot] = member;
  slot_of_[member] = slot;
  // The member's landmark-distance vector: what it measured once when it
  // joined (the measurement itself was charged to that join's probe
  // rounds); the rendezvous just remembers the numbers.
  const std::size_t l = landmarks_.size();
  for (std::size_t i = 0; i < l; ++i) {
    ring_vec_[slot * l + i] = underlay_->rtt(member, landmarks_[i]);
  }
  ++size_;
}

void PlacementIndex::ring_remove(net::HostId member) {
  const std::uint32_t slot = slot_of_[member];
  if (slot == kNone) return;
  ring_host_[slot] = net::kInvalidHost;
  slot_of_[member] = kNone;
  --size_;
}

void PlacementIndex::on_attach(HostId child, HostId /*parent*/) {
  insert(child);
}

void PlacementIndex::on_detach(HostId child, HostId /*parent*/) {
  if (grid_mode_) {
    grid_remove(child);
  } else {
    ring_remove(child);
  }
}

net::HostId PlacementIndex::grid_locate(net::HostId joiner) const {
  const std::uint32_t cell = cell_index(joiner);
  const std::int64_t cx = cell % grid_dim_;
  const std::int64_t cy = cell / grid_dim_;
  const std::int64_t dim = grid_dim_;

  net::HostId best = net::kInvalidHost;
  double best_d = std::numeric_limits<double>::infinity();
  std::size_t scanned = 0;
  std::int64_t found_ring = -1;

  auto scan_cell = [&](std::int64_t x, std::int64_t y) {
    if (x < 0 || x >= dim || y < 0 || y >= dim) return;
    ++scanned;
    for (std::uint32_t m = cell_head_[static_cast<std::size_t>(y * dim + x)];
         m != kNone; m = next_[m]) {
      if (m == joiner) continue;
      const double d = underlay_->delay(joiner, m);
      if (d < best_d || (d == best_d && m < best)) {
        best_d = d;
        best = m;
      }
    }
  };

  for (std::int64_t r = 0; r < dim; ++r) {
    if (r == 0) {
      scan_cell(cx, cy);
    } else {
      for (std::int64_t x = cx - r; x <= cx + r; ++x) {
        scan_cell(x, cy - r);
        scan_cell(x, cy + r);
      }
      for (std::int64_t y = cy - r + 1; y <= cy + r - 1; ++y) {
        scan_cell(cx - r, y);
        scan_cell(cx + r, y);
      }
    }
    if (best != net::kInvalidHost) {
      // A Chebyshev ring is not a metric ball: scan one more ring so a
      // just-over-the-boundary neighbor can still win, then stop.
      if (found_ring < 0) found_ring = r;
      if (r >= found_ring + 1) break;
    } else if (scanned >= kMaxCellsScanned) {
      break;  // sparse index — the caller falls back to the source
    }
  }
  return best;
}

net::HostId PlacementIndex::locate(net::HostId joiner, Session& session,
                                   OpStats& stats) {
  VDM_REQUIRE_MSG(bound(), "placement index used before bind()");
  const Membership& tree = session.tree();
  // Only attached members (or the root) make useful entry nodes; an alive
  // but detached orphan mid-reconnection would start the walk in a dangling
  // fragment.
  const auto attached = [&](net::HostId m) {
    return tree.member(m).parent != kInvalidHost || m == source_;
  };

  if (grid_mode_) {
    const net::HostId found = grid_locate(joiner);
    return found != net::kInvalidHost && attached(found) ? found
                                                         : net::kInvalidHost;
  }

  if (size_ == 0 || landmarks_.empty()) return net::kInvalidHost;
  // The joiner measures its own landmark vector — a real probe round,
  // charged like any other.
  session.measure_parallel(joiner, landmarks_, joiner_vec_, stats);
  const std::size_t l = landmarks_.size();
  net::HostId best = net::kInvalidHost;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t slot = 0; slot < ring_host_.size(); ++slot) {
    const net::HostId m = ring_host_[slot];
    if (m == net::kInvalidHost || m == joiner || !attached(m)) continue;
    double d2 = 0.0;
    for (std::size_t i = 0; i < l; ++i) {
      const double diff = joiner_vec_[i] - ring_vec_[slot * l + i];
      d2 += diff * diff;
    }
    if (d2 < best_d2 || (d2 == best_d2 && m < best)) {
      best_d2 = d2;
      best = m;
    }
  }
  return best;
}

std::size_t PlacementIndex::capacity_bytes() const {
  return (cell_head_.capacity() + next_.capacity() + prev_.capacity() +
          cell_of_.capacity() + slot_of_.capacity()) *
             sizeof(std::uint32_t) +
         (landmarks_.capacity() + ring_host_.capacity()) * sizeof(net::HostId) +
         (ring_vec_.capacity() + joiner_vec_.capacity()) * sizeof(double);
}

}  // namespace vdm::overlay
