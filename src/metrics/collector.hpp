#pragma once

#include <functional>
#include <span>
#include <vector>

#include "metrics/tree_metrics.hpp"
#include "overlay/session.hpp"

namespace vdm::metrics {

/// One measurement epoch: the settled-tree snapshot plus the control/data
/// window since the previous epoch.
struct EpochSample {
  sim::Time at = 0.0;
  TreeMetrics tree;

  /// 1 - delivered/expected over the window (0 when no chunks flowed).
  double loss_rate = 0.0;
  /// Control messages per data transmission over the window — the paper's
  /// Equation 3.6 overhead.
  double overhead = 0.0;
  /// Control messages per source chunk (the Chapter-5 normalization).
  double overhead_per_chunk = 0.0;

  std::uint64_t control_messages = 0;
  std::uint64_t data_transmissions = 0;
  /// Members alive in the tree at the measurement instant (incl. source) —
  /// the membership axis of workload trajectories.
  std::size_t members = 0;

  std::vector<double> startup_times;
  std::vector<double> reconnect_times;
  /// Failure-detection latencies of the window's crash recoveries (records
  /// whose TimingRecord::detection > 0); empty without heartbeat churn.
  std::vector<double> detection_times;
  /// Full viewer-visible outages of those recoveries: detection + rejoin.
  std::vector<double> outage_times;
};

/// Reusable working memory for a Collector: the epoch-sample slots (and all
/// their nested vectors), the timing-record swap buffers, and the
/// tree-metrics scratch. A per-worker run arena holds one of these so that
/// every run after the first on a worker captures epochs without growing the
/// heap. Carries no state between runs beyond capacity.
struct CollectorScratch {
  std::vector<EpochSample> samples;  ///< slot pool; first `used` are live
  std::size_t used = 0;
  /// Swap buffers for Session::drain_*_records (ping-pong, no allocation).
  std::vector<overlay::TimingRecord> startup_buf;
  std::vector<overlay::TimingRecord> reconnect_buf;
  /// Gather/sort buffer for the percentile accessors.
  std::vector<double> percentile_buf;
  TreeMetricsScratch tree;

  /// Heap bytes reserved across all slots and buffers — the arena-growth
  /// accounting input (a steady-state capture loop keeps this constant).
  std::size_t capacity_bytes() const;
};

/// Captures epochs from a Session at measurement points and aggregates them
/// into the scalar series the paper's figures plot.
class Collector {
 public:
  explicit Collector(overlay::Session& session)
      : session_(&session), scratch_(&owned_) {
    owned_.used = 0;
  }

  /// Borrows an external scratch (a run arena's): sample slots, timing
  /// buffers and tree scratch are reused across Collector lifetimes. Resets
  /// `used`, not capacity. The scratch must outlive the Collector.
  Collector(overlay::Session& session, CollectorScratch& scratch)
      : session_(&session), scratch_(&scratch) {
    scratch.used = 0;
  }

  /// Worker threads for the tree-measurement pass (same semantics as
  /// SessionParams::threads: 1 = serial default, 0 = hardware concurrency).
  /// Bit-identical results for every value.
  void set_threads(int threads) { threads_ = threads; }

  /// Snapshot now, then reset the session's window counters. Call from the
  /// ScenarioDriver's measurement callback.
  void capture(sim::Time at);

  std::span<const EpochSample> samples() const {
    return {scratch_->samples.data(), scratch_->used};
  }

  /// Mean of an epoch field over samples [skip, end).
  double mean_of(const std::function<double(const EpochSample&)>& get,
                 std::size_t skip = 0) const;

  // Convenience accessors matching the figures' y-axes.
  double mean_stress(std::size_t skip = 0) const;
  double mean_stretch(std::size_t skip = 0) const;
  double mean_hopcount(std::size_t skip = 0) const;
  double mean_loss(std::size_t skip = 0) const;
  double mean_overhead(std::size_t skip = 0) const;
  double mean_overhead_per_chunk(std::size_t skip = 0) const;
  double mean_network_usage(std::size_t skip = 0) const;

  /// p-th percentile (p in [0,1]) of all startup durations across epochs,
  /// gathered and sorted in the scratch's percentile buffer — allocation-free
  /// once warm. Returns 0 when no joins completed.
  double startup_percentile(double p) const;

  /// Run-wide summary of one per-event timing family. All zeros when the
  /// family recorded nothing (e.g. no crash churn ran).
  struct EventTimingStats {
    double avg = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };

  /// Scratch-backed summaries of the four timing families: gathered and
  /// sorted in the percentile buffer, so allocation-free once warm — the
  /// form run_once uses instead of the all_*_times copies below.
  EventTimingStats startup_stats() const;
  EventTimingStats reconnect_stats() const;
  EventTimingStats detection_stats() const;
  EventTimingStats outage_stats() const;

  /// All startup / reconnection durations across all epochs.
  std::vector<double> all_startup_times() const;
  std::vector<double> all_reconnect_times() const;
  /// All crash-detection latencies / full outage durations across epochs.
  std::vector<double> all_detection_times() const;
  std::vector<double> all_outage_times() const;

 private:
  EventTimingStats stats_of(std::vector<double> EpochSample::* field) const;

  overlay::Session* session_;
  /// Active scratch: &owned_ for the plain constructor, the caller's arena
  /// for the borrowing one. Reusing slots keeps measure_tree and the epoch
  /// capture loop allocation-free in steady state.
  CollectorScratch* scratch_;
  CollectorScratch owned_;
  int threads_ = 1;
};

}  // namespace vdm::metrics
