#pragma once

#include <functional>
#include <vector>

#include "metrics/tree_metrics.hpp"
#include "overlay/session.hpp"

namespace vdm::metrics {

/// One measurement epoch: the settled-tree snapshot plus the control/data
/// window since the previous epoch.
struct EpochSample {
  sim::Time at = 0.0;
  TreeMetrics tree;

  /// 1 - delivered/expected over the window (0 when no chunks flowed).
  double loss_rate = 0.0;
  /// Control messages per data transmission over the window — the paper's
  /// Equation 3.6 overhead.
  double overhead = 0.0;
  /// Control messages per source chunk (the Chapter-5 normalization).
  double overhead_per_chunk = 0.0;

  std::uint64_t control_messages = 0;
  std::uint64_t data_transmissions = 0;

  std::vector<double> startup_times;
  std::vector<double> reconnect_times;
  /// Failure-detection latencies of the window's crash recoveries (records
  /// whose TimingRecord::detection > 0); empty without heartbeat churn.
  std::vector<double> detection_times;
  /// Full viewer-visible outages of those recoveries: detection + rejoin.
  std::vector<double> outage_times;
};

/// Captures epochs from a Session at measurement points and aggregates them
/// into the scalar series the paper's figures plot.
class Collector {
 public:
  explicit Collector(overlay::Session& session) : session_(&session) {}

  /// Snapshot now, then reset the session's window counters. Call from the
  /// ScenarioDriver's measurement callback.
  void capture(sim::Time at);

  const std::vector<EpochSample>& samples() const { return samples_; }

  /// Mean of an epoch field over samples [skip, end).
  double mean_of(const std::function<double(const EpochSample&)>& get,
                 std::size_t skip = 0) const;

  // Convenience accessors matching the figures' y-axes.
  double mean_stress(std::size_t skip = 0) const;
  double mean_stretch(std::size_t skip = 0) const;
  double mean_hopcount(std::size_t skip = 0) const;
  double mean_loss(std::size_t skip = 0) const;
  double mean_overhead(std::size_t skip = 0) const;
  double mean_overhead_per_chunk(std::size_t skip = 0) const;
  double mean_network_usage(std::size_t skip = 0) const;

  /// All startup / reconnection durations across all epochs.
  std::vector<double> all_startup_times() const;
  std::vector<double> all_reconnect_times() const;
  /// All crash-detection latencies / full outage durations across epochs.
  std::vector<double> all_detection_times() const;
  std::vector<double> all_outage_times() const;

 private:
  overlay::Session* session_;
  std::vector<EpochSample> samples_;
  /// Reused across captures so measure_tree stays allocation-free in
  /// steady state (the hot loop of every run_once epoch sweep).
  TreeMetricsScratch scratch_;
};

}  // namespace vdm::metrics
