#include "metrics/tree_metrics.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace vdm::metrics {

TreeMetrics measure_tree(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay) {
  TreeMetrics out;
  const std::vector<net::HostId> alive = tree.alive_members();
  out.members = alive.size();
  if (!tree.member(source).alive) return out;

  // Per-physical-link traversal counts over all overlay edges -> stress.
  std::unordered_map<net::LinkId, std::size_t> link_count;
  std::size_t traversals = 0;

  util::OnlineStats stretch_all, stretch_leaf, hops_all, hops_leaf;
  // Overlay delay from the source, computed top-down in one pass.
  std::unordered_map<net::HostId, double> overlay_delay;
  overlay_delay[source] = 0.0;

  // BFS down the tree from the source.
  std::vector<net::HostId> queue{source};
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const net::HostId p = queue[i];
    for (const net::HostId c : tree.member(p).children) {
      const double edge_delay = underlay.delay(p, c);
      overlay_delay[c] = overlay_delay[p] + edge_delay;
      out.network_usage += edge_delay;
      for (const net::LinkId l : underlay.path(p, c)) {
        ++link_count[l];
        ++traversals;
      }
      queue.push_back(c);
    }
  }

  for (const net::HostId h : queue) {
    if (h == source) continue;
    const double direct = underlay.delay(source, h);
    const double stretch = direct > 0.0 ? overlay_delay[h] / direct : 1.0;
    const auto hops = static_cast<double>(tree.depth(h));
    stretch_all.add(stretch);
    hops_all.add(hops);
    if (tree.member(h).children.empty()) {
      stretch_leaf.add(stretch);
      hops_leaf.add(hops);
    }
  }

  out.links_used = link_count.size();
  if (!link_count.empty()) {
    std::size_t max_count = 0;
    for (const auto& [link, count] : link_count) max_count = std::max(max_count, count);
    out.stress_avg = static_cast<double>(traversals) / static_cast<double>(link_count.size());
    out.stress_max = static_cast<double>(max_count);
  }
  out.stretch_avg = stretch_all.mean();
  out.stretch_min = stretch_all.empty() ? 0.0 : stretch_all.min();
  out.stretch_max = stretch_all.empty() ? 0.0 : stretch_all.max();
  out.stretch_leaf_avg = stretch_leaf.mean();
  out.hop_avg = hops_all.mean();
  out.hop_max = hops_all.empty() ? 0.0 : hops_all.max();
  out.hop_leaf_avg = hops_leaf.mean();
  return out;
}

}  // namespace vdm::metrics
