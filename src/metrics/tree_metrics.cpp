#include "metrics/tree_metrics.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/stats.hpp"
#include "util/task_pool.hpp"

namespace vdm::metrics {

TreeMetrics measure_tree(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay,
                         TreeMetricsScratch& scratch, int threads) {
  TreeMetrics out;
  const std::size_t num_hosts = tree.num_hosts();
  for (net::HostId h = 0; h < num_hosts; ++h) {
    if (tree.member(h).alive) ++out.members;
  }
  if (!tree.member(source).alive) return out;

  // Size the flat arrays once; capacity persists across captures. The new
  // epoch invalidates every per-link counter in O(1).
  ++scratch.epoch;
  if (scratch.link_count.size() < underlay.num_links()) {
    scratch.link_count.resize(underlay.num_links(), 0);
    scratch.link_epoch.resize(underlay.num_links(), 0);
  }
  if (scratch.overlay_delay.size() < num_hosts) {
    scratch.overlay_delay.resize(num_hosts, 0.0);
  }
  scratch.links_touched.clear();
  scratch.order.clear();

  // Per-physical-link traversal counts over all overlay edges -> stress.
  std::size_t traversals = 0;
  const auto count_link = [&](net::LinkId l) {
    if (scratch.link_epoch[l] != scratch.epoch) {
      scratch.link_epoch[l] = scratch.epoch;
      scratch.link_count[l] = 1;
      scratch.links_touched.push_back(l);
    } else {
      ++scratch.link_count[l];
    }
    ++traversals;
  };

  // BFS down the tree collects the visit order (children-list walks only,
  // no underlay reads yet). order[i]'s tree parent is member(order[i]).parent.
  scratch.order.push_back(source);
  for (std::size_t i = 0; i < scratch.order.size(); ++i) {
    for (const net::HostId c : tree.member(scratch.order[i]).children) {
      scratch.order.push_back(c);
    }
  }

  // Pure pass: the two underlay reads per member (uplink edge delay, direct
  // source->host delay). On a coordinate substrate this arithmetic is the
  // bulk of a capture, so it fans out over the TaskPool when the underlay
  // allows concurrent reads; the values land in per-index slots and every
  // accumulation below runs serially in BFS order — bit-identical to the
  // serial pass for any thread count.
  const std::size_t n_order = scratch.order.size();
  scratch.edge_delay.resize(n_order);
  scratch.direct_delay.resize(n_order);
  const auto read_delays = [&](std::size_t i) {
    const net::HostId h = scratch.order[i];
    scratch.edge_delay[i] = underlay.delay(tree.member(h).parent, h);
    scratch.direct_delay[i] = underlay.delay(source, h);
  };
  if (threads != 1 && underlay.concurrent_reads() && n_order > 1) {
    util::TaskPool::global().for_n(
        n_order - 1, static_cast<std::size_t>(threads),
        [&](const util::TaskPool::Context& ctx) { read_delays(ctx.index + 1); });
  } else {
    for (std::size_t i = 1; i < n_order; ++i) read_delays(i);
  }

  // Serial accumulation in BFS order: overlay delays top-down, network
  // usage, per-link stress counts.
  scratch.overlay_delay[source] = 0.0;
  for (std::size_t i = 1; i < n_order; ++i) {
    const net::HostId c = scratch.order[i];
    const net::HostId p = tree.member(c).parent;
    scratch.overlay_delay[c] = scratch.overlay_delay[p] + scratch.edge_delay[i];
    out.network_usage += scratch.edge_delay[i];
    underlay.for_each_path_link(p, c, count_link);
  }

  util::OnlineStats stretch_all, stretch_leaf, hops_all, hops_leaf;
  for (std::size_t i = 1; i < n_order; ++i) {
    const net::HostId h = scratch.order[i];
    const double direct = scratch.direct_delay[i];
    const double stretch = direct > 0.0 ? scratch.overlay_delay[h] / direct : 1.0;
    const auto hops = static_cast<double>(tree.depth(h));
    stretch_all.add(stretch);
    hops_all.add(hops);
    if (tree.member(h).children.empty()) {
      stretch_leaf.add(stretch);
      hops_leaf.add(hops);
    }
  }

  out.links_used = scratch.links_touched.size();
  if (!scratch.links_touched.empty()) {
    std::uint32_t max_count = 0;
    for (const net::LinkId l : scratch.links_touched) {
      max_count = std::max(max_count, scratch.link_count[l]);
    }
    out.stress_avg = static_cast<double>(traversals) /
                     static_cast<double>(scratch.links_touched.size());
    out.stress_max = static_cast<double>(max_count);
  }
  out.stretch_avg = stretch_all.mean();
  out.stretch_min = stretch_all.empty() ? 0.0 : stretch_all.min();
  out.stretch_max = stretch_all.empty() ? 0.0 : stretch_all.max();
  out.stretch_leaf_avg = stretch_leaf.mean();
  out.hop_avg = hops_all.mean();
  out.hop_max = hops_all.empty() ? 0.0 : hops_all.max();
  out.hop_leaf_avg = hops_leaf.mean();
  return out;
}

TreeMetrics measure_tree(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay) {
  TreeMetricsScratch scratch;
  return measure_tree(tree, source, underlay, scratch);
}

}  // namespace vdm::metrics
