#pragma once

#include <cstddef>

#include "net/underlay.hpp"
#include "overlay/membership.hpp"

namespace vdm::metrics {

/// Structural quality of the overlay tree at one instant — the paper's
/// §3.6.3 / §5.3 definitions.
struct TreeMetrics {
  /// Alive members including the source.
  std::size_t members = 0;

  /// Stress: identical-packet transmissions per used physical link.
  /// avg = total traversals / distinct used links (Equation 3.4); 1.0 is
  /// the IP-multicast optimum.
  double stress_avg = 0.0;
  double stress_max = 0.0;
  std::size_t links_used = 0;

  /// Stretch: overlay source->member delay over direct unicast delay
  /// (Equation 3.5); 1.0 is the unicast optimum. Leaf-average and max are
  /// the worst-case views of Figures 5.16/5.23.
  double stretch_avg = 0.0;
  double stretch_min = 0.0;
  double stretch_max = 0.0;
  double stretch_leaf_avg = 0.0;

  /// Overlay hops from the source (Figures 5.10/5.17/5.24).
  double hop_avg = 0.0;
  double hop_max = 0.0;
  double hop_leaf_avg = 0.0;

  /// Network usage: sum of one-way underlay delays over all tree edges —
  /// the total "length" of consumed paths (§5.3), the quantity compared
  /// against the MST.
  double network_usage = 0.0;
};

/// Measures the current tree. Members that are mid-reconnection (detached)
/// are excluded from path metrics, as the paper measures settled trees.
TreeMetrics measure_tree(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay);

}  // namespace vdm::metrics
