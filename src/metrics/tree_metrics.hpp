#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/underlay.hpp"
#include "overlay/membership.hpp"

namespace vdm::metrics {

/// Structural quality of the overlay tree at one instant — the paper's
/// §3.6.3 / §5.3 definitions.
struct TreeMetrics {
  /// Alive members including the source.
  std::size_t members = 0;

  /// Stress: identical-packet transmissions per used physical link.
  /// avg = total traversals / distinct used links (Equation 3.4); 1.0 is
  /// the IP-multicast optimum.
  double stress_avg = 0.0;
  double stress_max = 0.0;
  std::size_t links_used = 0;

  /// Stretch: overlay source->member delay over direct unicast delay
  /// (Equation 3.5); 1.0 is the unicast optimum. Leaf-average and max are
  /// the worst-case views of Figures 5.16/5.23.
  double stretch_avg = 0.0;
  double stretch_min = 0.0;
  double stretch_max = 0.0;
  double stretch_leaf_avg = 0.0;

  /// Overlay hops from the source (Figures 5.10/5.17/5.24).
  double hop_avg = 0.0;
  double hop_max = 0.0;
  double hop_leaf_avg = 0.0;

  /// Network usage: sum of one-way underlay delays over all tree edges —
  /// the total "length" of consumed paths (§5.3), the quantity compared
  /// against the MST.
  double network_usage = 0.0;
};

/// Reusable working memory for measure_tree. The per-link traversal
/// counters are epoch-stamped flat arrays (no clearing between captures,
/// no hashing), and every buffer keeps its capacity across calls, so a
/// capture loop performs zero heap allocations once warmed up. One scratch
/// serves one measurement consumer (Collector owns one); it carries no
/// state between calls beyond capacity.
struct TreeMetricsScratch {
  std::vector<std::uint32_t> link_count;   // traversals per LinkId this epoch
  std::vector<std::uint64_t> link_epoch;   // validity stamp per LinkId
  std::vector<net::LinkId> links_touched;  // distinct links hit this epoch
  std::vector<double> overlay_delay;       // source->host delay per HostId
  std::vector<net::HostId> order;          // BFS visit order
  /// Per-order-index underlay reads (uplink edge delay, direct
  /// source->host delay) — the pure pass the parallel capture fans out.
  std::vector<double> edge_delay;
  std::vector<double> direct_delay;
  std::uint64_t epoch = 0;
};

/// Measures the current tree. Members that are mid-reconnection (detached)
/// are excluded from path metrics, as the paper measures settled trees.
///
/// `threads` != 1 fans the per-member underlay reads (uplink and direct
/// delays — the dominant cost on a coordinate substrate) over the shared
/// TaskPool when the underlay supports concurrent reads; every accumulation
/// stays serial in BFS order, so the result is bit-identical for any thread
/// count (0 = hardware concurrency).
TreeMetrics measure_tree(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay,
                         TreeMetricsScratch& scratch, int threads = 1);

/// Convenience overload with a throwaway scratch (allocates; fine for tests
/// and one-off measurements, not for capture loops).
TreeMetrics measure_tree(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay);

}  // namespace vdm::metrics
