#include "metrics/collector.hpp"

#include "util/require.hpp"
#include "util/stats.hpp"

namespace vdm::metrics {

std::size_t CollectorScratch::capacity_bytes() const {
  std::size_t bytes = samples.capacity() * sizeof(EpochSample) +
                      (startup_buf.capacity() + reconnect_buf.capacity()) *
                          sizeof(overlay::TimingRecord) +
                      percentile_buf.capacity() * sizeof(double);
  for (const EpochSample& e : samples) {
    bytes += (e.startup_times.capacity() + e.reconnect_times.capacity() +
              e.detection_times.capacity() + e.outage_times.capacity()) *
             sizeof(double);
  }
  bytes += tree.link_count.capacity() * sizeof(std::uint32_t) +
           tree.link_epoch.capacity() * sizeof(std::uint64_t) +
           tree.links_touched.capacity() * sizeof(net::LinkId) +
           tree.overlay_delay.capacity() * sizeof(double) +
           tree.order.capacity() * sizeof(net::HostId) +
           (tree.edge_delay.capacity() + tree.direct_delay.capacity()) *
               sizeof(double);
  return bytes;
}

void Collector::capture(sim::Time at) {
  overlay::Session& s = *session_;
  CollectorScratch& sc = *scratch_;
  if (sc.used == sc.samples.size()) sc.samples.emplace_back();
  EpochSample& e = sc.samples[sc.used];
  ++sc.used;

  // The slot may hold a stale sample from a previous run on this arena:
  // every scalar is assigned, every vector rebuilt in place.
  e.at = at;
  e.members = s.tree().alive_count();
  e.tree = measure_tree(s.tree(), s.source(), s.underlay(), sc.tree, threads_);

  const overlay::Session::Counters& w = s.window();
  e.control_messages = w.control_messages;
  e.data_transmissions = w.data_transmissions;
  e.loss_rate = 0.0;
  e.overhead = 0.0;
  e.overhead_per_chunk = 0.0;
  if (w.chunks_expected > 0) {
    e.loss_rate = 1.0 - static_cast<double>(w.chunks_delivered) /
                            static_cast<double>(w.chunks_expected);
  }
  if (w.data_transmissions > 0) {
    e.overhead = static_cast<double>(w.control_messages) /
                 static_cast<double>(w.data_transmissions);
  }
  if (w.chunks_emitted > 0) {
    e.overhead_per_chunk = static_cast<double>(w.control_messages) /
                           static_cast<double>(w.chunks_emitted);
  }
  auto to_durations = [](const std::vector<overlay::TimingRecord>& recs,
                         std::vector<double>& out) {
    out.clear();
    out.reserve(recs.size());
    for (const auto& r : recs) out.push_back(r.duration);
  };
  s.drain_startup_records(sc.startup_buf);
  to_durations(sc.startup_buf, e.startup_times);
  s.drain_reconnect_records(sc.reconnect_buf);
  to_durations(sc.reconnect_buf, e.reconnect_times);
  e.detection_times.clear();
  e.outage_times.clear();
  for (const auto& r : sc.reconnect_buf) {
    if (r.detection > 0.0) {
      e.detection_times.push_back(r.detection);
      e.outage_times.push_back(r.detection + r.duration);
    }
  }

  s.reset_window();
}

double Collector::mean_of(const std::function<double(const EpochSample&)>& get,
                          std::size_t skip) const {
  VDM_REQUIRE(get != nullptr);
  if (samples().size() <= skip) return 0.0;
  double sum = 0.0;
  for (std::size_t i = skip; i < samples().size(); ++i) sum += get(samples()[i]);
  return sum / static_cast<double>(samples().size() - skip);
}

double Collector::mean_stress(std::size_t skip) const {
  return mean_of([](const EpochSample& e) { return e.tree.stress_avg; }, skip);
}
double Collector::mean_stretch(std::size_t skip) const {
  return mean_of([](const EpochSample& e) { return e.tree.stretch_avg; }, skip);
}
double Collector::mean_hopcount(std::size_t skip) const {
  return mean_of([](const EpochSample& e) { return e.tree.hop_avg; }, skip);
}
double Collector::mean_loss(std::size_t skip) const {
  return mean_of([](const EpochSample& e) { return e.loss_rate; }, skip);
}
double Collector::mean_overhead(std::size_t skip) const {
  return mean_of([](const EpochSample& e) { return e.overhead; }, skip);
}
double Collector::mean_overhead_per_chunk(std::size_t skip) const {
  return mean_of([](const EpochSample& e) { return e.overhead_per_chunk; }, skip);
}
double Collector::mean_network_usage(std::size_t skip) const {
  return mean_of([](const EpochSample& e) { return e.tree.network_usage; }, skip);
}

double Collector::startup_percentile(double p) const {
  std::vector<double>& buf = scratch_->percentile_buf;
  buf.clear();
  for (const auto& e : samples())
    buf.insert(buf.end(), e.startup_times.begin(), e.startup_times.end());
  if (buf.empty()) return 0.0;
  return util::percentile_inplace(buf, p);
}

Collector::EventTimingStats Collector::stats_of(
    std::vector<double> EpochSample::* field) const {
  std::vector<double>& buf = scratch_->percentile_buf;
  buf.clear();
  for (const auto& e : samples()) {
    const std::vector<double>& v = e.*field;
    buf.insert(buf.end(), v.begin(), v.end());
  }
  EventTimingStats s;
  if (buf.empty()) return s;
  double sum = 0.0;
  for (const double d : buf) sum += d;
  s.avg = sum / static_cast<double>(buf.size());
  // percentile_inplace sorts the buffer, so max is the back afterwards.
  s.p50 = util::percentile_inplace(buf, 0.50);
  s.p99 = util::percentile_inplace(buf, 0.99);
  s.max = buf.back();
  return s;
}

Collector::EventTimingStats Collector::startup_stats() const {
  return stats_of(&EpochSample::startup_times);
}
Collector::EventTimingStats Collector::reconnect_stats() const {
  return stats_of(&EpochSample::reconnect_times);
}
Collector::EventTimingStats Collector::detection_stats() const {
  return stats_of(&EpochSample::detection_times);
}
Collector::EventTimingStats Collector::outage_stats() const {
  return stats_of(&EpochSample::outage_times);
}

std::vector<double> Collector::all_startup_times() const {
  std::vector<double> out;
  for (const auto& e : samples())
    out.insert(out.end(), e.startup_times.begin(), e.startup_times.end());
  return out;
}

std::vector<double> Collector::all_reconnect_times() const {
  std::vector<double> out;
  for (const auto& e : samples())
    out.insert(out.end(), e.reconnect_times.begin(), e.reconnect_times.end());
  return out;
}

std::vector<double> Collector::all_detection_times() const {
  std::vector<double> out;
  for (const auto& e : samples())
    out.insert(out.end(), e.detection_times.begin(), e.detection_times.end());
  return out;
}

std::vector<double> Collector::all_outage_times() const {
  std::vector<double> out;
  for (const auto& e : samples())
    out.insert(out.end(), e.outage_times.begin(), e.outage_times.end());
  return out;
}

}  // namespace vdm::metrics
