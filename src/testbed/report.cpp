#include "testbed/report.hpp"

#include <sstream>

#include "util/require.hpp"

namespace vdm::testbed {

std::string continent_of(const std::string& region_name) {
  const auto dash = region_name.find('-');
  return dash == std::string::npos ? region_name : region_name.substr(0, dash);
}

ClusterStats cluster_stats(const overlay::Membership& tree, net::HostId source,
                           const topo::GeoTopology& geo) {
  ClusterStats stats;
  std::vector<net::HostId> queue{source};
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const net::HostId p = queue[i];
    for (const net::HostId c : tree.member(p).children) {
      ++stats.edges;
      const std::size_t rp = geo.hosts.at(p).region;
      const std::size_t rc = geo.hosts.at(c).region;
      if (rp == rc) {
        ++stats.intra_region;
        ++stats.intra_continent;
      } else if (continent_of(geo.region_names.at(rp)) ==
                 continent_of(geo.region_names.at(rc))) {
        ++stats.intra_continent;
      } else {
        ++stats.cross_continent;
      }
      queue.push_back(c);
    }
  }
  return stats;
}

namespace {
void render_node(const overlay::Membership& tree, const topo::GeoTopology& geo,
                 net::HostId node, const std::string& prefix, bool last,
                 bool is_root, std::ostringstream& os) {
  os << prefix;
  if (!is_root) os << (last ? "`-- " : "|-- ");
  os << "node " << node << " [" << geo.region_names.at(geo.hosts.at(node).region)
     << ']';
  if (is_root) os << " (source)";
  os << '\n';
  const auto& children = tree.member(node).children;
  const std::string child_prefix =
      is_root ? prefix : prefix + (last ? "    " : "|   ");
  for (std::size_t i = 0; i < children.size(); ++i) {
    render_node(tree, geo, children[i], child_prefix, i + 1 == children.size(),
                false, os);
  }
}
}  // namespace

std::string render_tree(const overlay::Membership& tree, net::HostId source,
                        const topo::GeoTopology& geo) {
  std::ostringstream os;
  render_node(tree, geo, source, "", true, true, os);
  return os.str();
}

}  // namespace vdm::testbed
