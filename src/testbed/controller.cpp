#include "testbed/controller.hpp"

#include <algorithm>
#include <span>

#include "baselines/mst_overlay.hpp"
#include "util/require.hpp"

namespace vdm::testbed {

FlakyMetric::FlakyMetric(std::unique_ptr<overlay::MetricProvider> inner,
                         std::vector<double> slowness, double noise_frac)
    : inner_(std::move(inner)), slowness_(std::move(slowness)),
      noise_frac_(noise_frac) {
  VDM_REQUIRE(inner_ != nullptr);
}

double FlakyMetric::measure(const net::Underlay& net, net::HostId a,
                            net::HostId b, util::Rng& rng) const {
  double v = inner_->measure(net, a, b, rng);
  if (noise_frac_ > 0.0) v *= std::max(0.1, rng.normal(1.0, noise_frac_));
  return v;
}

sim::Time FlakyMetric::measurement_time(const net::Underlay& net, net::HostId a,
                                        net::HostId b) const {
  const double slow = b < slowness_.size() ? slowness_[b] : 1.0;
  return inner_->measurement_time(net, a, b) * slow;
}

namespace {

overlay::SessionParams session_params(const ControllerParams& params) {
  overlay::SessionParams sp;
  sp.source = params.source;
  sp.source_degree_limit = params.source_degree;
  sp.chunk_rate = params.chunk_rate;
  sp.data_plane = params.data_plane;
  sp.faults = params.faults;
  sp.join_mode = params.join_mode;
  return sp;
}

}  // namespace

MainController::MainController(sim::Simulator& simulator,
                               const net::Underlay& underlay,
                               overlay::Protocol& protocol,
                               const overlay::MetricProvider& metric,
                               const ControllerParams& params, util::Rng rng)
    : underlay_(underlay), params_(params) {
  session_ = std::make_unique<overlay::Session>(
      simulator, underlay, protocol, metric, session_params(params), rng);
  collector_ = std::make_unique<metrics::Collector>(*session_);
}

MainController::MainController(transport::Reactor& reactor,
                               const net::Underlay& underlay,
                               overlay::Protocol& protocol,
                               const overlay::MetricProvider& metric,
                               const ControllerParams& params, util::Rng rng)
    : underlay_(underlay), params_(params) {
  session_ = std::make_unique<overlay::Session>(
      reactor, underlay, protocol, metric, session_params(params), rng);
  collector_ = std::make_unique<metrics::Collector>(*session_);
}

SessionReport MainController::run(const Scenario& scenario) {
  VDM_REQUIRE_MSG(!scenario.events.empty(), "scenario has no events");
  transport::Reactor& reactor = session_->reactor();
  session_->start();

  // Flash bursts name a count, not hosts: expand over the ids unused
  // anywhere else in the scenario (and not the source), in increasing
  // order — a pure function of the scenario text, so replays match.
  std::vector<char> used(underlay_.num_hosts(), 0);
  used[session_->source()] = 1;
  for (const ScenarioEvent& e : scenario.events) {
    if (e.action != ScenarioEvent::Action::kFlash &&
        e.action != ScenarioEvent::Action::kTerminate &&
        e.node < used.size()) {
      used[e.node] = 1;
    }
  }
  net::HostId flash_cursor = 0;

  for (const ScenarioEvent& e : scenario.events) {
    switch (e.action) {
      case ScenarioEvent::Action::kJoin:
        reactor.schedule_at(e.at, [this, e] { session_->join(e.node, e.degree_limit); });
        break;
      case ScenarioEvent::Action::kLeave:
        reactor.schedule_at(e.at, [this, e] { session_->leave(e.node); });
        break;
      case ScenarioEvent::Action::kCrash:
        reactor.schedule_at(e.at, [this, e] { session_->crash(e.node); });
        break;
      case ScenarioEvent::Action::kFlash:
        for (net::HostId burst = 0; burst < e.node; ++burst) {
          while (flash_cursor < used.size() && used[flash_cursor]) ++flash_cursor;
          VDM_REQUIRE_MSG(flash_cursor < used.size(),
                          "flash burst exceeds unused hosts in the underlay");
          const net::HostId h = flash_cursor++;
          reactor.schedule_at(e.at, [this, h, e] { session_->join(h, e.degree_limit); });
        }
        break;
      case ScenarioEvent::Action::kTerminate:
        break;  // implicit: run_until(end_time)
    }
  }
  // Periodic snapshots, then a final one exactly at terminate.
  for (sim::Time t = params_.measure_interval; t < scenario.end_time;
       t += params_.measure_interval) {
    reactor.schedule_at(t, [this] {
      collector_->capture(session_->reactor().now());
    });
  }
  reactor.run_until(scenario.end_time);
  collector_->capture(reactor.now());
  session_->stop();

  SessionReport report;
  const std::span<const metrics::EpochSample> epochs = collector_->samples();
  report.epochs.assign(epochs.begin(), epochs.end());
  report.final_tree =
      metrics::measure_tree(session_->tree(), session_->source(), underlay_);
  report.startup_times = collector_->all_startup_times();
  report.reconnect_times = collector_->all_reconnect_times();
  report.detection_times = collector_->all_detection_times();
  report.outage_times = collector_->all_outage_times();
  report.totals = session_->totals();
  if (report.totals.chunks_expected > 0) {
    report.loss_rate = 1.0 - static_cast<double>(report.totals.chunks_delivered) /
                                 static_cast<double>(report.totals.chunks_expected);
  }
  if (report.totals.data_transmissions > 0) {
    report.overhead = static_cast<double>(report.totals.control_messages) /
                      static_cast<double>(report.totals.data_transmissions);
  }
  if (report.totals.chunks_emitted > 0) {
    report.overhead_per_chunk =
        static_cast<double>(report.totals.control_messages) /
        static_cast<double>(report.totals.chunks_emitted);
  }
  report.mst_ratio =
      baselines::mst_ratio(session_->tree(), session_->source(), underlay_);
  return report;
}

}  // namespace vdm::testbed
