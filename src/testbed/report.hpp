#pragma once

#include <string>

#include "overlay/membership.hpp"
#include "topology/geo.hpp"

namespace vdm::testbed {

/// Geographic coherence of the overlay tree — the quantitative version of
/// Figures 5.5/5.6 ("nodes in United States are connected with each other
/// as in Europe. There is a clear clustering in continents.").
struct ClusterStats {
  std::size_t edges = 0;
  std::size_t intra_region = 0;
  std::size_t intra_continent = 0;
  std::size_t cross_continent = 0;

  double intra_region_fraction() const {
    return edges ? static_cast<double>(intra_region) / static_cast<double>(edges) : 0.0;
  }
  double cross_continent_fraction() const {
    return edges ? static_cast<double>(cross_continent) / static_cast<double>(edges) : 0.0;
  }
};

/// Continent label of a region name ("US-West" -> "US", "EU-North" -> "EU").
std::string continent_of(const std::string& region_name);

ClusterStats cluster_stats(const overlay::Membership& tree, net::HostId source,
                           const topo::GeoTopology& geo);

/// ASCII rendering of the overlay tree with per-node region annotations —
/// the sample-tree view of Figure 5.5/5.6.
std::string render_tree(const overlay::Membership& tree, net::HostId source,
                        const topo::GeoTopology& geo);

}  // namespace vdm::testbed
