#include "testbed/scenario_file.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace vdm::testbed {

void Scenario::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  const bool has_terminate =
      !events.empty() && events.back().action == ScenarioEvent::Action::kTerminate;
  if (!has_terminate) {
    const sim::Time last = events.empty() ? 0.0 : events.back().at;
    events.push_back({std::max(end_time, last), net::kInvalidHost,
                      ScenarioEvent::Action::kTerminate, 0});
  }
  end_time = events.back().at;
}

Scenario generate_scenario(const ScenarioSpec& spec, util::Rng& rng) {
  VDM_REQUIRE(spec.members >= 1);
  VDM_REQUIRE_MSG(spec.nodes.size() >= spec.members,
                  "not enough usable nodes for the requested membership");
  VDM_REQUIRE(spec.degree_min >= 1 && spec.degree_max >= spec.degree_min);

  Scenario sc;
  sc.end_time = spec.total_time;

  std::vector<net::HostId> available = spec.nodes;
  rng.shuffle(available);
  std::vector<net::HostId> in_overlay;

  auto draw_degree = [&] {
    return static_cast<int>(rng.uniform_int(spec.degree_min, spec.degree_max));
  };

  // Warmup joins, staggered over the join phase.
  for (std::size_t i = 0; i < spec.members; ++i) {
    const net::HostId h = available.back();
    available.pop_back();
    in_overlay.push_back(h);
    sc.events.push_back({rng.uniform(0.001, spec.join_phase), h,
                         ScenarioEvent::Action::kJoin, draw_degree()});
  }

  // Churn slots for the remainder. Victims are drawn from the membership
  // snapshot at slot start and joiners from the pool snapshot; bookkeeping
  // is applied only after the whole slot is laid out, so a node never
  // leaves before the join that (re-)admitted it: re-use is deferred to the
  // next slot, which starts after every event time of this one
  // (events land in [slot, slot + 0.75 * interval]).
  const auto churn_count = static_cast<std::size_t>(
      std::llround(spec.churn_rate * static_cast<double>(spec.members)));
  for (sim::Time slot = spec.join_phase; slot + spec.churn_interval <= spec.total_time;
       slot += spec.churn_interval) {
    std::vector<net::HostId> slot_victims;
    std::vector<net::HostId> slot_joiners;
    for (std::size_t i = 0; i < churn_count; ++i) {
      if (in_overlay.empty() || available.empty()) break;
      const auto vi = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(in_overlay.size()) - 1));
      const net::HostId victim = in_overlay[vi];
      in_overlay[vi] = in_overlay.back();
      in_overlay.pop_back();
      slot_victims.push_back(victim);
      // crash_fraction == 0 short-circuits before chance(): the generated
      // stream (and rng state) matches the all-graceful spec exactly.
      const bool crash =
          spec.crash_fraction > 0.0 && rng.chance(spec.crash_fraction);
      sc.events.push_back({slot + rng.uniform(0.0, spec.churn_interval * 0.75), victim,
                           crash ? ScenarioEvent::Action::kCrash
                                 : ScenarioEvent::Action::kLeave,
                           0});

      const net::HostId joiner = available.back();
      available.pop_back();
      slot_joiners.push_back(joiner);
      sc.events.push_back({slot + rng.uniform(0.0, spec.churn_interval * 0.75), joiner,
                           ScenarioEvent::Action::kJoin, draw_degree()});
    }
    in_overlay.insert(in_overlay.end(), slot_joiners.begin(), slot_joiners.end());
    available.insert(available.begin(), slot_victims.begin(), slot_victims.end());
  }

  // Flash crowd: a single burst event; the executor picks the concrete
  // hosts (ids unused elsewhere in the scenario), so the generated stream
  // stays identical to the flash-free one up to this trailing line.
  if (spec.flash_count > 0) {
    sc.events.push_back({spec.flash_at,
                         static_cast<net::HostId>(spec.flash_count),
                         ScenarioEvent::Action::kFlash, draw_degree()});
  }

  sc.normalize();
  return sc;
}

void write_scenario(const Scenario& scenario, std::ostream& os) {
  // Full double precision so a written scenario replays bit-identically.
  os.precision(17);
  os << "# vdm testbed scenario: <time> <action> <node> [degree]\n";
  for (const ScenarioEvent& e : scenario.events) {
    switch (e.action) {
      case ScenarioEvent::Action::kJoin:
        os << e.at << " join " << e.node << ' ' << e.degree_limit << '\n';
        break;
      case ScenarioEvent::Action::kLeave:
        os << e.at << " leave " << e.node << '\n';
        break;
      case ScenarioEvent::Action::kCrash:
        os << e.at << " crash " << e.node << '\n';
        break;
      case ScenarioEvent::Action::kFlash:
        os << e.at << " flash " << e.node << ' ' << e.degree_limit << '\n';
        break;
      case ScenarioEvent::Action::kTerminate:
        os << e.at << " terminate\n";
        break;
    }
  }
}

Scenario parse_scenario(std::istream& is) {
  Scenario sc;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Accept comma-separated fields too, so the workload-trace CSV format
    // ("t,join,host,degree") loads through this layer unchanged.
    std::replace(line.begin(), line.end(), ',', ' ');
    std::istringstream ls(line);
    double at = 0.0;
    std::string action;
    if (!(ls >> at >> action)) continue;  // blank / comment-only line
    ScenarioEvent e;
    e.at = at;
    if (action == "join") {
      std::uint64_t node = 0;
      VDM_REQUIRE_MSG(static_cast<bool>(ls >> node),
                      "scenario line " + std::to_string(line_no) + ": join needs a node");
      e.node = static_cast<net::HostId>(node);
      e.action = ScenarioEvent::Action::kJoin;
      int degree = 4;
      if (ls >> degree) e.degree_limit = degree;
    } else if (action == "leave") {
      std::uint64_t node = 0;
      VDM_REQUIRE_MSG(static_cast<bool>(ls >> node),
                      "scenario line " + std::to_string(line_no) + ": leave needs a node");
      e.node = static_cast<net::HostId>(node);
      e.action = ScenarioEvent::Action::kLeave;
    } else if (action == "crash") {
      std::uint64_t node = 0;
      VDM_REQUIRE_MSG(static_cast<bool>(ls >> node),
                      "scenario line " + std::to_string(line_no) + ": crash needs a node");
      e.node = static_cast<net::HostId>(node);
      e.action = ScenarioEvent::Action::kCrash;
    } else if (action == "flash") {
      std::uint64_t count = 0;
      VDM_REQUIRE_MSG(static_cast<bool>(ls >> count) && count > 0,
                      "scenario line " + std::to_string(line_no) +
                          ": flash needs a positive count");
      e.node = static_cast<net::HostId>(count);
      e.action = ScenarioEvent::Action::kFlash;
      int degree = 4;
      if (ls >> degree) e.degree_limit = degree;
    } else if (action == "terminate") {
      e.action = ScenarioEvent::Action::kTerminate;
    } else {
      VDM_REQUIRE_MSG(false, "scenario line " + std::to_string(line_no) +
                                 ": unknown action '" + action + "'");
    }
    sc.events.push_back(e);
  }
  sc.normalize();
  return sc;
}

Scenario parse_scenario(const std::string& text) {
  std::istringstream is(text);
  return parse_scenario(is);
}

}  // namespace vdm::testbed
