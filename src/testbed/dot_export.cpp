#include "testbed/dot_export.hpp"

#include <ostream>
#include <vector>

#include "testbed/report.hpp"
#include "util/table.hpp"

namespace vdm::testbed {

namespace {

/// Deterministic pastel fill per region index (cycled).
const char* region_color(std::size_t region) {
  static const char* kPalette[] = {"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
                                   "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
                                   "#e31a1c", "#ff7f00", "#6a3d9a", "#b15928"};
  return kPalette[region % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

void write_dot_impl(const overlay::Membership& tree, net::HostId source,
                    const net::Underlay& underlay, const topo::GeoTopology* geo,
                    std::ostream& os, const DotOptions& options) {
  os << "digraph " << options.name << " {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=ellipse, style=filled, fillcolor=white];\n";

  std::vector<net::HostId> queue{source};
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const net::HostId h = queue[i];
    os << "  n" << h << " [label=\"" << h;
    if (geo != nullptr) {
      os << "\\n" << geo->region_names.at(geo->hosts.at(h).region);
    }
    os << '"';
    if (h == source) {
      os << ", shape=doublecircle, fillcolor=\"#fdd835\"";
    } else if (geo != nullptr && options.color_regions) {
      os << ", fillcolor=\"" << region_color(geo->hosts.at(h).region) << '"';
    }
    os << "];\n";
    for (const net::HostId c : tree.member(h).children) {
      queue.push_back(c);
    }
  }
  for (const net::HostId h : queue) {
    for (const net::HostId c : tree.member(h).children) {
      os << "  n" << h << " -> n" << c;
      if (options.edge_delays) {
        os << " [label=\"" << util::Table::fmt(1000.0 * underlay.delay(h, c), 1)
           << "ms\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace

void write_dot(const overlay::Membership& tree, net::HostId source,
               const net::Underlay& underlay, std::ostream& os,
               const DotOptions& options) {
  write_dot_impl(tree, source, underlay, nullptr, os, options);
}

void write_dot(const overlay::Membership& tree, net::HostId source,
               const topo::GeoTopology& geo, std::ostream& os,
               const DotOptions& options) {
  write_dot_impl(tree, source, geo.underlay, &geo, os, options);
}

}  // namespace vdm::testbed
