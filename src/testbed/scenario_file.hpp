#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace vdm::testbed {

/// One line of a testbed scenario — the dissertation's scenario files tell
/// "time, node and action for each event" (§5.2.2).
struct ScenarioEvent {
  enum class Action { kJoin, kLeave, kCrash, kFlash, kTerminate };
  sim::Time at = 0.0;
  /// For kFlash this is the burst size, not a host id: the executor joins
  /// that many hosts unused anywhere else in the scenario, all at `at`.
  net::HostId node = net::kInvalidHost;
  Action action = Action::kJoin;
  /// Degree limit assigned at join time (ignored for other actions).
  int degree_limit = 4;
};

/// A complete, time-ordered scenario.
struct Scenario {
  std::vector<ScenarioEvent> events;
  sim::Time end_time = 0.0;

  /// Sorts by time (stable) and ensures a trailing terminate.
  void normalize();
};

/// Generation spec mirroring the paper's PlanetLab runs: a pool of usable
/// nodes, a join-only warmup, then churn for the remainder of the session.
struct ScenarioSpec {
  std::vector<net::HostId> nodes;  // usable node ids (source excluded)
  std::size_t members = 100;       // how many participate at a time
  sim::Time join_phase = 2000.0;
  sim::Time total_time = 5000.0;
  sim::Time churn_interval = 400.0;
  double churn_rate = 0.05;        // fraction of members replaced / interval
  /// Probability a departure is an ungraceful crash (kCrash) instead of a
  /// graceful leave — the paper's unstable PlanetLab nodes. 0 keeps the
  /// generated event stream identical to the all-graceful one.
  double crash_fraction = 0.0;
  int degree_min = 4, degree_max = 4;
  /// Flash crowd: one kFlash event of `flash_count` burst arrivals at
  /// `flash_at`, on top of the steady membership. 0 disables.
  std::size_t flash_count = 0;
  sim::Time flash_at = 0.0;
};

/// Deterministically generates a scenario from the spec (the role of the
/// paper's scenario generator fed with different seeds).
Scenario generate_scenario(const ScenarioSpec& spec, util::Rng& rng);

/// Text round-trip: "<time> <join|leave|crash|terminate> <node> [degree]"
/// lines plus "<time> flash <count> [degree]" bursts, '#' comments allowed.
void write_scenario(const Scenario& scenario, std::ostream& os);
Scenario parse_scenario(std::istream& is);
Scenario parse_scenario(const std::string& text);

}  // namespace vdm::testbed
