#pragma once

#include <iosfwd>
#include <string>

#include "net/underlay.hpp"
#include "overlay/membership.hpp"
#include "topology/geo.hpp"

namespace vdm::testbed {

/// Options for Graphviz export of an overlay tree.
struct DotOptions {
  /// Graph name in the DOT header.
  std::string name = "vdm_overlay";
  /// Annotate edges with the one-way underlay delay in ms.
  bool edge_delays = true;
  /// Color nodes by region (requires a GeoTopology) so the continental
  /// clustering of Figures 5.5/5.6 is visible at a glance.
  bool color_regions = true;
};

/// Writes the overlay tree rooted at `source` as a Graphviz digraph —
/// `dot -Tsvg tree.dot -o tree.svg` renders the paper's sample-tree
/// figures from any run.
void write_dot(const overlay::Membership& tree, net::HostId source,
               const net::Underlay& underlay, std::ostream& os,
               const DotOptions& options = {});

/// Same, with per-node region labels/colors from a geo deployment.
void write_dot(const overlay::Membership& tree, net::HostId source,
               const topo::GeoTopology& geo, std::ostream& os,
               const DotOptions& options = {});

}  // namespace vdm::testbed
