#pragma once

#include <memory>
#include <vector>

#include "metrics/collector.hpp"
#include "overlay/session.hpp"
#include "testbed/node_pool.hpp"
#include "testbed/scenario_file.hpp"

namespace vdm::testbed {

/// Per-node slowness decorator: probe answers from a lazy PlanetLab node
/// take `slowness x` longer, inflating measured startup / reconnection
/// times without changing which parent is chosen (distances themselves stay
/// honest up to the configured noise). This reproduces the paper's caveat
/// that "sometimes PlanetLab nodes are lazy to answer the information
/// request", so max startup times overstate algorithmic complexity.
class FlakyMetric final : public overlay::MetricProvider {
 public:
  FlakyMetric(std::unique_ptr<overlay::MetricProvider> inner,
              std::vector<double> slowness, double noise_frac = 0.05);

  std::string_view name() const override { return inner_->name(); }
  double measure(const net::Underlay& net, net::HostId a, net::HostId b,
                 util::Rng& rng) const override;
  int messages_per_measurement() const override {
    return inner_->messages_per_measurement();
  }
  sim::Time measurement_time(const net::Underlay& net, net::HostId a,
                             net::HostId b) const override;

 private:
  std::unique_ptr<overlay::MetricProvider> inner_;
  std::vector<double> slowness_;
  double noise_frac_;
};

/// Configuration of one testbed session.
struct ControllerParams {
  net::HostId source = 0;
  int source_degree = 4;
  /// The PlanetLab sender streamed 10 chunks per second (§5.4.2).
  double chunk_rate = 10.0;
  /// Model the data plane inside the session (simulation). vdmd turns this
  /// off: its chunks are real datagrams relayed by the agents, so modeling
  /// them again would double-count.
  bool data_plane = true;
  /// Tree snapshot cadence during the run.
  sim::Time measure_interval = 400.0;
  /// Failure-model knobs (heartbeat detection, lossy control plane) routed
  /// into the underlying Session — the testbed's flaky-node story and the
  /// simulator's share one path. Defaults are all-off.
  overlay::FaultParams faults;
  /// Join pipeline for the session (DESIGN.md §10) — scenario flash bursts
  /// are only worth their name under kConcurrent.
  overlay::JoinMode join_mode = overlay::JoinMode::kSequential;
};

/// End-of-session report — the aggregate the paper's "result calculator"
/// components upload when the terminate message arrives.
struct SessionReport {
  std::vector<metrics::EpochSample> epochs;
  metrics::TreeMetrics final_tree;
  std::vector<double> startup_times;
  std::vector<double> reconnect_times;
  std::vector<double> detection_times;
  std::vector<double> outage_times;
  double loss_rate = 0.0;        // whole-run
  double overhead = 0.0;         // control msgs / data transmissions
  double overhead_per_chunk = 0.0;
  double mst_ratio = 1.0;
  overlay::Session::Counters totals;
};

/// The dissertation's Main Controller (Figure 5.3): executes a scenario
/// file against a deployment, sending connect / disconnect / terminate
/// commands to the per-node agents. In this reproduction, the agent,
/// sender and transceiver roles are played by the shared Session engine —
/// the controller is the orchestration and reporting layer around it.
class MainController {
 public:
  MainController(sim::Simulator& simulator, const net::Underlay& underlay,
                 overlay::Protocol& protocol, const overlay::MetricProvider& metric,
                 const ControllerParams& params, util::Rng rng);

  /// Reactor-hosted controller: the same orchestration over any transport
  /// backend. vdmd passes a UdpReactor and a MeasuredUnderlay here, and the
  /// identical scenario files drive real agents over UDP.
  MainController(transport::Reactor& reactor, const net::Underlay& underlay,
                 overlay::Protocol& protocol, const overlay::MetricProvider& metric,
                 const ControllerParams& params, util::Rng rng);

  /// Runs `scenario` to its terminate event and gathers the report.
  SessionReport run(const Scenario& scenario);

  overlay::Session& session() { return *session_; }

 private:
  const net::Underlay& underlay_;
  ControllerParams params_;
  std::unique_ptr<overlay::Session> session_;
  std::unique_ptr<metrics::Collector> collector_;
};

}  // namespace vdm::testbed
