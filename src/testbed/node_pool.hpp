#pragma once

#include <vector>

#include "topology/geo.hpp"
#include "util/rng.hpp"

namespace vdm::testbed {

/// Health of one synthetic PlanetLab node. The dissertation's node-selection
/// pipeline (Figure 5.2) filters the live pool in three stages:
///   1. drop nodes that do not respond to ping at all,
///   2. drop nodes that cannot send pings themselves,
///   3. drop nodes where the measurement agent fails to start.
/// Surviving nodes may still be "lazy" (slow to answer info requests),
/// which inflates worst-case startup times (§5.3).
struct NodeHealth {
  bool responds_to_ping = true;
  bool can_ping_out = true;
  bool agent_starts = true;
  /// Multiplier on this node's control-plane response latency (1 = prompt;
  /// the paper's lazy nodes are > 1).
  double slowness = 1.0;

  bool usable() const { return responds_to_ping && can_ping_out && agent_starts; }
};

/// Failure-rate knobs for synthesizing a pool.
struct PoolParams {
  std::size_t num_nodes = 140;  // the paper's US pool size
  double frac_unresponsive = 0.10;
  double frac_no_ping_out = 0.05;
  double frac_agent_broken = 0.05;
  double frac_lazy = 0.10;
  double lazy_slowness_min = 2.0, lazy_slowness_max = 6.0;
};

/// A synthetic PlanetLab deployment: geo-embedded latency space plus
/// per-node health.
struct NodePool {
  topo::GeoTopology topology;
  std::vector<NodeHealth> health;

  /// Hosts passing all three filter stages.
  std::vector<net::HostId> usable_nodes() const;
};

/// Builds a pool over the given regions (e.g. topo::us_regions()).
NodePool make_pool(const PoolParams& params, const std::vector<topo::GeoRegion>& regions,
                   util::Rng& rng);

/// Result of running the three-stage filter, for reporting like Figure 5.2.
struct FilterReport {
  std::size_t total = 0;
  std::size_t dropped_unresponsive = 0;
  std::size_t dropped_no_ping_out = 0;
  std::size_t dropped_agent = 0;
  std::size_t usable = 0;
};

FilterReport filter_nodes(const NodePool& pool);

}  // namespace vdm::testbed
