#include "testbed/node_pool.hpp"

#include "util/require.hpp"

namespace vdm::testbed {

std::vector<net::HostId> NodePool::usable_nodes() const {
  std::vector<net::HostId> out;
  for (net::HostId h = 0; h < health.size(); ++h) {
    if (health[h].usable()) out.push_back(h);
  }
  return out;
}

NodePool make_pool(const PoolParams& params,
                   const std::vector<topo::GeoRegion>& regions, util::Rng& rng) {
  VDM_REQUIRE(params.num_nodes >= 2);
  topo::GeoParams gp;
  gp.num_hosts = params.num_nodes;
  gp.regions = regions;

  NodePool pool{topo::make_geo(gp, rng), {}};
  pool.health.resize(params.num_nodes);
  for (auto& h : pool.health) {
    h.responds_to_ping = !rng.chance(params.frac_unresponsive);
    h.can_ping_out = !rng.chance(params.frac_no_ping_out);
    h.agent_starts = !rng.chance(params.frac_agent_broken);
    if (rng.chance(params.frac_lazy)) {
      h.slowness = rng.uniform(params.lazy_slowness_min, params.lazy_slowness_max);
    }
  }
  return pool;
}

FilterReport filter_nodes(const NodePool& pool) {
  FilterReport r;
  r.total = pool.health.size();
  for (const NodeHealth& h : pool.health) {
    // Stages apply in pipeline order, mirroring Figure 5.2: a node failing
    // an earlier stage is never probed by a later one.
    if (!h.responds_to_ping) {
      ++r.dropped_unresponsive;
    } else if (!h.can_ping_out) {
      ++r.dropped_no_ping_out;
    } else if (!h.agent_starts) {
      ++r.dropped_agent;
    } else {
      ++r.usable;
    }
  }
  return r;
}

}  // namespace vdm::testbed
