#include "transport/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>

#include "util/log.hpp"
#include "util/require.hpp"

namespace vdm::transport {

// ---------------------------------------------------------------- BufferPool

BufferPool::Buffer BufferPool::acquire() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slabs_.size());
    slabs_.push_back(std::make_unique<std::byte[]>(kBufferBytes));
  }
  ++in_use_;
  return Buffer{slot, {slabs_[slot].get(), kBufferBytes}};
}

void BufferPool::release(std::uint32_t slot) {
  VDM_REQUIRE(slot < slabs_.size());
  VDM_REQUIRE(in_use_ > 0);
  free_.push_back(slot);
  --in_use_;
}

std::span<std::byte> BufferPool::bytes(std::uint32_t slot) {
  VDM_REQUIRE(slot < slabs_.size());
  return {slabs_[slot].get(), kBufferBytes};
}

// ------------------------------------------------------------------ PeerAddr

PeerAddr parse_peer(const std::string& text) {
  std::string ip_text = "127.0.0.1";
  std::string port_text = text;
  const auto colon = text.rfind(':');
  if (colon != std::string::npos) {
    ip_text = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  in_addr parsed{};
  VDM_REQUIRE_MSG(inet_pton(AF_INET, ip_text.c_str(), &parsed) == 1,
                  "bad IPv4 address: " + ip_text);
  unsigned long port = 0;
  try {
    port = std::stoul(port_text);
  } catch (const std::exception&) {
    port = 65536;  // force the range check below to fail with context
  }
  VDM_REQUIRE_MSG(port <= 65535, "bad port: " + port_text);
  return PeerAddr{ntohl(parsed.s_addr), static_cast<std::uint16_t>(port)};
}

std::string format_peer(const PeerAddr& addr) {
  std::ostringstream os;
  os << ((addr.ip >> 24) & 0xff) << '.' << ((addr.ip >> 16) & 0xff) << '.'
     << ((addr.ip >> 8) & 0xff) << '.' << (addr.ip & 0xff) << ':' << addr.port;
  return os.str();
}

namespace {

sockaddr_in to_sockaddr(const PeerAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.ip);
  sa.sin_port = htons(addr.port);
  return sa;
}

PeerAddr from_sockaddr(const sockaddr_in& sa) {
  return PeerAddr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

// ----------------------------------------------------------------- UdpSocket

UdpSocket::UdpSocket(const PeerAddr& bind_addr) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  VDM_REQUIRE_MSG(fd_ >= 0, "socket() failed");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  VDM_REQUIRE(flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0);
  sockaddr_in sa = to_sockaddr(bind_addr);
  VDM_REQUIRE_MSG(
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0,
      "bind(" + format_peer(bind_addr) + ") failed: " + std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  VDM_REQUIRE(
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0);
  local_ = from_sockaddr(bound);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocket::send(const PeerAddr& to, std::span<const std::byte> frame) {
  const sockaddr_in sa = to_sockaddr(to);
  const ssize_t n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  return n == static_cast<ssize_t>(frame.size());
}

std::size_t UdpSocket::drain(std::span<std::byte> scratch,
                             const RecvHandler& handler) {
  std::size_t delivered = 0;
  for (;;) {
    sockaddr_in from{};
    socklen_t len = sizeof(from);
    const ssize_t n =
        ::recvfrom(fd_, scratch.data(), scratch.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      VDM_WARN() << "recvfrom failed: " << std::strerror(errno);
      break;
    }
    ++delivered;
    handler(from_sockaddr(from),
            std::span<const std::byte>(scratch.data(),
                                       static_cast<std::size_t>(n)));
  }
  return delivered;
}

// ---------------------------------------------------------------- UdpReactor

UdpReactor::UdpReactor() : epoch_(std::chrono::steady_clock::now()) {}

Time UdpReactor::wall() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Time UdpReactor::now() const {
  // Never behind the timer clock: a callback observing now() mid-dispatch
  // must see a time >= its own deadline, as on the DES backend.
  const Time w = wall();
  const Time t = timers_.now();
  return w > t ? w : t;
}

TimerId UdpReactor::schedule_at(Time t, TimerFn fn) {
  // Wall-clock setup can overrun a scenario timestamp; clamp instead of
  // tripping the DES precondition — the timer fires at the next pump.
  const Time floor = timers_.now();
  return timers_.schedule_at(t > floor ? t : floor, std::move(fn));
}

TimerId UdpReactor::schedule_in(Time delay, TimerFn fn) {
  return schedule_at(now() + delay, std::move(fn));
}

void UdpReactor::add_socket(UdpSocket& socket, UdpSocket::RecvHandler handler) {
  sockets_.push_back(Entry{&socket, std::move(handler)});
}

std::size_t UdpReactor::poll_once(Time max_wait) {
  if (sockets_.empty()) {
    if (max_wait > 0) {
      timespec ts;
      ts.tv_sec = static_cast<time_t>(max_wait);
      ts.tv_nsec = static_cast<long>((max_wait - std::floor(max_wait)) * 1e9);
      ::nanosleep(&ts, nullptr);
    }
    return 0;
  }
  std::vector<pollfd> fds;
  fds.reserve(sockets_.size());
  for (const Entry& e : sockets_) {
    fds.push_back(pollfd{e.socket->fd(), POLLIN, 0});
  }
  const int timeout_ms =
      max_wait <= 0 ? 0 : static_cast<int>(std::ceil(max_wait * 1e3));
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;
  std::size_t delivered = 0;
  // Fresh pool buffer per drain: a handler that nests a pump_io (blocking
  // probe transactions do) must not have its in-flight frame overwritten by
  // the nested drain — the pool hands the inner pump a different slot while
  // this one is held. Recycled, so steady state still allocates nothing.
  const BufferPool::Buffer scratch = buffers_.acquire();
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    delivered += sockets_[i].socket->drain(scratch.bytes, sockets_[i].handler);
  }
  buffers_.release(scratch.slot);
  return delivered;
}

std::size_t UdpReactor::run_until(Time t) {
  std::size_t fired = 0;
  while (!stopped_) {
    const Time w = wall();
    // Fire every timer that is due by wall time (bounded by the target).
    fired += timers_.run_until(w < t ? w : t);
    if (stopped_ || wall() >= t) break;
    const Time next = timers_.next_event_time();
    const Time deadline = next < t ? next : t;
    Time wait = deadline - wall();
    // Cap the sleep so stop() from another dispatch path stays responsive.
    if (wait > 0.05) wait = 0.05;
    if (wait < 0) wait = 0;
    poll_once(wait);
  }
  if (!stopped_ && timers_.now() < t) fired += timers_.run_until(t);
  return fired;
}

std::size_t UdpReactor::pump_io(Time max_wait) {
  const Time deadline = wall() + max_wait;
  for (;;) {
    Time wait = deadline - wall();
    if (wait < 0) wait = 0;
    const std::size_t delivered = poll_once(wait);
    if (delivered > 0 || wall() >= deadline) return delivered;
  }
}

// --------------------------------------------------------------- RetrySender

RetrySender::RetrySender(Reactor& reactor, Transport& transport,
                         BufferPool& buffers, RetryPolicy policy)
    : reactor_(reactor),
      transport_(transport),
      buffers_(buffers),
      policy_(policy) {}

RetrySender::~RetrySender() { cancel_all(); }

void RetrySender::send_tracked(std::uint32_t token, const PeerAddr& to,
                               const wire::Message& m) {
  VDM_REQUIRE_MSG(pending_.find(token) == pending_.end(),
                  "duplicate in-flight token");
  const BufferPool::Buffer buf = buffers_.acquire();
  Pending p;
  p.to = to;
  p.slot = buf.slot;
  p.len = static_cast<std::uint16_t>(wire::encode(m, buf.bytes));
  p.attempts = 1;
  p.cur_timeout = policy_.timeout;
  transport_.send(to, buf.bytes.first(p.len));
  arm(token, p);
  pending_.emplace(token, p);
}

void RetrySender::arm(std::uint32_t token, Pending& p) {
  p.timer = reactor_.schedule_in(p.cur_timeout, [this, token] {
    const auto it = pending_.find(token);
    if (it == pending_.end()) return;
    Pending& pend = it->second;
    if (pend.attempts > policy_.max_retries) {
      VDM_WARN() << "retry budget exhausted for token " << token << " to "
                 << format_peer(pend.to) << " after " << pend.attempts
                 << " attempts";
      ++give_ups_;
      buffers_.release(pend.slot);
      pending_.erase(it);
      return;
    }
    ++pend.attempts;
    ++retransmissions_;
    transport_.send(pend.to, buffers_.bytes(pend.slot).first(pend.len));
    pend.cur_timeout = policy_.next_timeout(pend.cur_timeout);
    arm(token, pend);
  });
}

bool RetrySender::complete(std::uint32_t token) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return false;
  reactor_.cancel(it->second.timer);
  buffers_.release(it->second.slot);
  pending_.erase(it);
  return true;
}

void RetrySender::cancel_all() {
  for (auto& [token, p] : pending_) {
    reactor_.cancel(p.timer);
    buffers_.release(p.slot);
  }
  pending_.clear();
}

}  // namespace vdm::transport
