#pragma once

#include "sim/simulator.hpp"
#include "transport/transport.hpp"
#include "util/require.hpp"

namespace vdm::transport {

/// The DES backend of the transport seam: every call delegates 1:1 to the
/// wrapped sim::Simulator, so slot acquisition order, sequence numbers and
/// firing order are exactly the pre-seam ones — a Session re-hosted on this
/// reactor is bit-identical to one talking to the simulator directly (the
/// determinism contract of DESIGN.md §14).
///
/// Rebindable (null simulator) so it can live by value inside Session: the
/// sim-backed constructor binds it, the external-reactor constructor leaves
/// it empty and unused.
class SimReactor final : public Reactor {
 public:
  explicit SimReactor(sim::Simulator* simulator = nullptr) : sim_(simulator) {}

  Time now() const override { return sim().now(); }
  TimerId schedule_at(Time t, TimerFn fn) override {
    return sim().schedule_at(t, std::move(fn));
  }
  TimerId schedule_in(Time delay, TimerFn fn) override {
    return sim().schedule_in(delay, std::move(fn));
  }
  void cancel(TimerId id) override { sim().cancel(id); }
  bool reschedule_current_in(Time delay) override {
    return sim().reschedule_current_in(delay);
  }
  std::size_t run_until(Time t) override { return sim().run_until(t); }

  bool bound() const { return sim_ != nullptr; }

 private:
  sim::Simulator& sim() const {
    VDM_REQUIRE_MSG(sim_ != nullptr, "SimReactor used unbound");
    return *sim_;
  }
  sim::Simulator* sim_;
};

}  // namespace vdm::transport
