#include "transport/transport.hpp"

namespace vdm::transport {

// Mirrors sim::Periodic tick-for-tick: one schedule_in at construction, each
// tick re-arms the same slot in place (id never changes), stop() from inside
// the tick suppresses the re-arm via the backend's firing-cancelled check.
PeriodicTimer::PeriodicTimer(Reactor& reactor, Time interval, TimerFn fn)
    : reactor_(reactor), interval_(interval), fn_(std::move(fn)) {
  pending_ = reactor_.schedule_in(interval_, [this] {
    fn_();
    if (running_) {
      reactor_.reschedule_current_in(interval_);
    } else {
      pending_ = kInvalidTimer;
    }
  });
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidTimer) {
    reactor_.cancel(pending_);
    pending_ = kInvalidTimer;
  }
}

}  // namespace vdm::transport
