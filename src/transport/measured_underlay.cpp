#include "transport/measured_underlay.hpp"

#include "util/require.hpp"

namespace vdm::transport {

MeasuredUnderlay::MeasuredUnderlay(std::size_t num_hosts, ProbeService& probes)
    : num_hosts_(num_hosts), probes_(probes) {
  delay_cache_.assign(num_hosts * num_hosts, -1.0);
}

double& MeasuredUnderlay::cache_at(net::HostId a, net::HostId b) const {
  VDM_REQUIRE(a < num_hosts_ && b < num_hosts_);
  return delay_cache_[static_cast<std::size_t>(a) * num_hosts_ + b];
}

sim::Time MeasuredUnderlay::delay(net::HostId a, net::HostId b) const {
  VDM_REQUIRE_MSG(a != b, "delay(a, a) is undefined");
  double& cached = cache_at(a, b);
  if (cached >= 0.0) return cached;
  ++probes_issued_;
  const double rtt = probes_.probe_rtt(a, b);
  const double one_way = rtt > 0.0 ? rtt / 2.0 : 1e-6;
  cached = one_way;
  cache_at(b, a) = one_way;  // symmetric, like every simulated substrate
  return one_way;
}

void MeasuredUnderlay::put(net::HostId a, net::HostId b, double rtt_seconds) {
  const double one_way = rtt_seconds > 0.0 ? rtt_seconds / 2.0 : 1e-6;
  cache_at(a, b) = one_way;
  cache_at(b, a) = one_way;
}

void MeasuredUnderlay::invalidate(net::HostId h) {
  VDM_REQUIRE(h < num_hosts_);
  for (std::size_t other = 0; other < num_hosts_; ++other) {
    delay_cache_[static_cast<std::size_t>(h) * num_hosts_ + other] = -1.0;
    delay_cache_[other * num_hosts_ + h] = -1.0;
  }
}

}  // namespace vdm::transport
