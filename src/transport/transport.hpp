#pragma once

#include <cstdint>
#include <span>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace vdm::transport {

/// The transport/clock seam (DESIGN.md §14). The protocol core — Session,
/// TreeWalk, Membership, MainController — talks to time and timers only
/// through this interface, so the same code runs on two backends:
///
///  * SimReactor (sim_reactor.hpp): 1:1 delegation to the discrete-event
///    sim::Simulator. Identical slot acquisition, identical sequence
///    numbers, identical firing order — a sim-hosted Session is bit-for-bit
///    the pre-seam Session (the hexfloat goldens in tests/test_walk.cpp
///    pin this).
///  * UdpReactor (udp.hpp): the same slab timer engine paced by the
///    monotonic wall clock, with UDP sockets multiplexed into the waits —
///    the backend `vdmd` runs on.

using Time = sim::Time;

/// Cancellable timer handle. Shares sim::EventId's representation (0 is
/// never valid), so code holding raw ids — the session's refine-event slab —
/// works over either backend unchanged.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// Timer callbacks ride the simulator's small-buffer callable, so the
/// steady-state zero-allocation guarantee carries over to both backends.
using TimerFn = sim::InlineFn;

/// Monotonic time source. Seconds since an epoch the backend defines
/// (simulation start / reactor construction).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Time now() const = 0;
};

/// Clock plus a cancellable timer service plus a bounded event pump — the
/// exact surface Session needs from sim::Simulator, abstracted.
class Reactor : public Clock {
 public:
  /// Schedules `fn` at absolute time `t`. Times earlier than now() fire at
  /// the next pump (the DES backend requires t >= now and callers honour
  /// that; the wall-clock backend clamps, since setup work may overrun a
  /// scenario timestamp).
  virtual TimerId schedule_at(Time t, TimerFn fn) = 0;
  virtual TimerId schedule_in(Time delay, TimerFn fn) = 0;

  /// Cancels a pending timer; no-op when already fired or cancelled.
  virtual void cancel(TimerId id) = 0;

  /// From inside a timer callback: re-arm the firing timer `delay` from now,
  /// keeping its id and callable (see sim::Simulator::reschedule_current_in).
  virtual bool reschedule_current_in(Time delay) = 0;

  /// Runs timers (and, on the UDP backend, socket I/O) until time `t`.
  /// Returns the number of timers fired.
  virtual std::size_t run_until(Time t) = 0;
};

/// Where a datagram peer lives. IPv4 + port, both host byte order; the wire
/// codec ships these fields inside SetParent/Adopt/ProbeRequest messages so
/// agents can talk to peers they have never met.
struct PeerAddr {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  friend bool operator==(const PeerAddr&, const PeerAddr&) = default;
};

/// Unreliable datagram transport. The UDP backend is a real socket; tests
/// fake it with an in-memory loopback.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Best-effort send of one frame. False on local failure (peer loss is
  /// invisible, as UDP has it).
  virtual bool send(const PeerAddr& to, std::span<const std::byte> frame) = 0;
  virtual PeerAddr local_addr() const = 0;
};

/// Retransmission policy of request/response exchanges over the lossy
/// transport: initial timeout, exponential backoff with a cap, bounded
/// retries. Field-for-field the PR 3 lossy-control-plane policy
/// (overlay::FaultParams retry knobs) — the daemon retries for real with
/// the same schedule the simulator charges for.
struct RetryPolicy {
  Time timeout = 0.25;
  double backoff_factor = 2.0;
  Time timeout_max = 4.0;
  int max_retries = 8;

  Time next_timeout(Time current) const {
    const Time t = current * backoff_factor;
    return t < timeout_max ? t : timeout_max;
  }
};

/// RAII periodic timer over any Reactor — transport::PeriodicTimer is to
/// Reactor what sim::Periodic is to Simulator, and replicates its behaviour
/// exactly (one slot for life, in-place re-arm, stop() from inside the tick
/// suppresses the re-arm): a sim-hosted session heartbeat schedules the
/// identical event sequence it did before the seam.
class PeriodicTimer {
 public:
  PeriodicTimer(Reactor& reactor, Time interval, TimerFn fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  Reactor& reactor_;
  Time interval_;
  TimerFn fn_;
  TimerId pending_ = kInvalidTimer;
  bool running_ = true;
};

}  // namespace vdm::transport
