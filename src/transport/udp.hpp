#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "transport/transport.hpp"
#include "wire/wire.hpp"

namespace vdm::transport {

/// Slab of fixed-size, recycled message buffers — the msgb discipline of the
/// osmocom virt_um layer: buffers are acquired from a free list, handed
/// around by slot index, and released back, so a steady-state daemon sends
/// and retries without touching the heap.
class BufferPool {
 public:
  static constexpr std::size_t kBufferBytes = 2048;

  struct Buffer {
    std::uint32_t slot = 0;
    std::span<std::byte> bytes;
  };

  Buffer acquire();
  void release(std::uint32_t slot);
  std::span<std::byte> bytes(std::uint32_t slot);
  std::size_t in_use() const { return in_use_; }
  std::size_t capacity() const { return slabs_.size(); }

 private:
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<std::uint32_t> free_;
  std::size_t in_use_ = 0;
};

/// "ip:port" or "port" (binds 127.0.0.1). Throws util::InvariantError on
/// malformed input.
PeerAddr parse_peer(const std::string& text);
std::string format_peer(const PeerAddr& addr);

/// One non-blocking IPv4 UDP socket. Port 0 binds an ephemeral port;
/// local_addr() reports what the kernel picked.
class UdpSocket final : public Transport {
 public:
  explicit UdpSocket(const PeerAddr& bind_addr);
  ~UdpSocket() override;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  bool send(const PeerAddr& to, std::span<const std::byte> frame) override;
  PeerAddr local_addr() const override { return local_; }
  int fd() const { return fd_; }

  using RecvHandler =
      std::function<void(const PeerAddr& from, std::span<const std::byte>)>;

  /// Reads every queued datagram into `scratch` and hands each to `handler`.
  /// Returns datagrams delivered.
  std::size_t drain(std::span<std::byte> scratch, const RecvHandler& handler);

 private:
  int fd_ = -1;
  PeerAddr local_;
};

/// The wall-clock backend of the transport seam: the same slab timer engine
/// the DES uses (a private sim::Simulator), paced by the monotonic clock,
/// with UDP sockets poll(2)-multiplexed into the waits. Timer semantics —
/// ids, cancel, in-place re-arm — are therefore identical to the simulation
/// backend by construction; only the pacing differs.
class UdpReactor final : public Reactor {
 public:
  UdpReactor();

  Time now() const override;
  TimerId schedule_at(Time t, TimerFn fn) override;
  TimerId schedule_in(Time delay, TimerFn fn) override;
  void cancel(TimerId id) override { timers_.cancel(id); }
  bool reschedule_current_in(Time delay) override {
    return timers_.reschedule_current_in(delay);
  }

  /// Runs timers and socket I/O until wall time `t` (seconds since
  /// construction) or stop(). Returns timers fired.
  std::size_t run_until(Time t) override;

  /// Breaks out of run_until at the next pump.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  /// Re-arms a stopped reactor for another run_until.
  void resume() { stopped_ = false; }

  /// Registers a socket; every datagram that arrives while the reactor runs
  /// (or pumps) is decoded-agnostically handed to `handler`.
  void add_socket(UdpSocket& socket, UdpSocket::RecvHandler handler);

  /// Services socket I/O only — no timers fire — waiting at most `max_wait`
  /// for the first datagram. Returns datagrams delivered. This is the
  /// re-entrancy-safe pump blocking request/response transactions use from
  /// inside a timer callback (a nested timer dispatch could re-enter the
  /// protocol core; a nested I/O dispatch cannot).
  std::size_t pump_io(Time max_wait);

  BufferPool& buffers() { return buffers_; }

 private:
  struct Entry {
    UdpSocket* socket;
    UdpSocket::RecvHandler handler;
  };
  Time wall() const;
  /// poll + drain all sockets once, waiting at most `max_wait`.
  std::size_t poll_once(Time max_wait);

  std::chrono::steady_clock::time_point epoch_;
  sim::Simulator timers_;
  std::vector<Entry> sockets_;
  BufferPool buffers_;
  bool stopped_ = false;
};

/// Reliable-with-retries request sender over an unreliable transport: each
/// tracked request keeps its encoded frame in a recycled pool buffer and
/// retransmits on a RetryPolicy schedule until complete(token) or retries
/// exhaust (a WARN log, matching the simulator's reliable-with-retries
/// semantics where exhaustion is latency, not failure).
class RetrySender {
 public:
  RetrySender(Reactor& reactor, Transport& transport, BufferPool& buffers,
              RetryPolicy policy);
  ~RetrySender();
  RetrySender(const RetrySender&) = delete;
  RetrySender& operator=(const RetrySender&) = delete;

  std::uint32_t next_token() { return ++last_token_; }

  /// Encodes and sends `m`, retrying until complete(token). `token` must be
  /// the token field already carried inside `m`.
  void send_tracked(std::uint32_t token, const PeerAddr& to,
                    const wire::Message& m);

  /// The reply for `token` arrived: stop retrying. False if unknown (late
  /// duplicate reply).
  bool complete(std::uint32_t token);

  void cancel_all();
  std::size_t in_flight() const { return pending_.size(); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t give_ups() const { return give_ups_; }

 private:
  struct Pending {
    PeerAddr to;
    std::uint32_t slot = 0;
    std::uint16_t len = 0;
    int attempts = 0;
    Time cur_timeout = 0.0;
    TimerId timer = kInvalidTimer;
  };
  void arm(std::uint32_t token, Pending& p);

  Reactor& reactor_;
  Transport& transport_;
  BufferPool& buffers_;
  RetryPolicy policy_;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint32_t last_token_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t give_ups_ = 0;
};

}  // namespace vdm::transport
