#pragma once

#include <cstddef>
#include <vector>

#include "net/types.hpp"
#include "net/underlay.hpp"

namespace vdm::transport {

/// Measures a real round-trip time between two hosts, blocking until the
/// probe transaction completes (vdmd implements this with a Ping/Pong
/// exchange over UDP, retried per RetryPolicy). Returns seconds.
class ProbeService {
 public:
  virtual ~ProbeService() = default;
  virtual double probe_rtt(net::HostId a, net::HostId b) = 0;
};

/// The testbed substrate: a net::Underlay whose delays are real measured
/// RTTs, cached per host pair. This is what lets the unchanged protocol core
/// (Session/TreeWalk/Membership) drive real agents — every delay(a, b) the
/// tree walk asks for is answered by an actual probe on first touch and by
/// the cache afterwards, exactly the measurement discipline of the paper's
/// Chapter 5 PlanetLab controller.
///
/// Loss is reported as zero (UDP loss on the testbed is handled by real
/// retransmission in the transport, not by modeling), so the data plane
/// draws no randomness and stress accounting is disabled (num_links() == 0).
class MeasuredUnderlay final : public net::Underlay {
 public:
  MeasuredUnderlay(std::size_t num_hosts, ProbeService& probes);

  std::size_t num_hosts() const override { return num_hosts_; }
  sim::Time delay(net::HostId a, net::HostId b) const override;
  double loss(net::HostId, net::HostId) const override { return 0.0; }
  std::vector<net::LinkId> path(net::HostId, net::HostId) const override {
    return {};
  }
  void for_each_path_link(
      net::HostId, net::HostId,
      util::FunctionRef<void(net::LinkId)>) const override {}
  double link_delay(net::LinkId) const override { return 0.0; }
  std::size_t num_links() const override { return 0; }
  bool zero_loss() const override { return true; }

  /// Pre-seeds the cache (symmetric), bypassing the probe. Tests and the
  /// controller's join fast-path use this when an RTT is already known.
  void put(net::HostId a, net::HostId b, double rtt_seconds);

  /// Drops a host's cached measurements so rejoin after crash re-probes.
  void invalidate(net::HostId h);

  std::size_t probes_issued() const { return probes_issued_; }

 private:
  double& cache_at(net::HostId a, net::HostId b) const;

  std::size_t num_hosts_;
  ProbeService& probes_;
  // Dense symmetric matrix of one-way delays; < 0 means unmeasured. The
  // testbed tops out at a few hundred agents, so O(N²) doubles are cheap.
  mutable std::vector<double> delay_cache_;
  mutable std::size_t probes_issued_ = 0;
};

}  // namespace vdm::transport
