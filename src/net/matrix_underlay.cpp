#include "net/matrix_underlay.hpp"

#include <cmath>

#include "util/require.hpp"

namespace vdm::net {

MatrixUnderlay::MatrixUnderlay(std::size_t n, std::vector<double> delay,
                               std::vector<double> loss)
    : n_(n), delay_(std::move(delay)), loss_(std::move(loss)) {
  VDM_REQUIRE(n_ >= 1);
  VDM_REQUIRE(delay_.size() == n_ * n_);
  VDM_REQUIRE(loss_.empty() || loss_.size() == n_ * n_);
  for (std::size_t a = 0; a < n_; ++a) {
    VDM_REQUIRE_MSG(delay_[a * n_ + a] == 0.0, "diagonal must be zero");
    for (std::size_t b = a + 1; b < n_; ++b) {
      VDM_REQUIRE_MSG(delay_[a * n_ + b] > 0.0, "off-diagonal delays must be positive");
      VDM_REQUIRE_MSG(std::abs(delay_[a * n_ + b] - delay_[b * n_ + a]) < 1e-12,
                      "delay matrix must be symmetric");
      if (!loss_.empty()) {
        VDM_REQUIRE(loss_[a * n_ + b] >= 0.0 && loss_[a * n_ + b] < 1.0);
      }
    }
  }
}

LinkId MatrixUnderlay::pair_link(HostId a, HostId b) const {
  VDM_REQUIRE(a != b && a < n_ && b < n_);
  if (a > b) std::swap(a, b);
  // Row-major index into the strict upper triangle.
  const std::size_t row_start = static_cast<std::size_t>(a) * n_ - static_cast<std::size_t>(a) * (a + 1) / 2;
  return static_cast<LinkId>(row_start + (b - a - 1));
}

std::vector<LinkId> MatrixUnderlay::path(HostId a, HostId b) const {
  if (a == b) return {};
  return {pair_link(a, b)};
}

double MatrixUnderlay::link_delay(LinkId link) const {
  // Invert pair_link: find the row whose triangle contains `link`.
  std::size_t remaining = link;
  for (HostId a = 0; a + 1 < n_; ++a) {
    const std::size_t row_len = n_ - a - 1;
    if (remaining < row_len) {
      const HostId b = static_cast<HostId>(a + 1 + remaining);
      return delay_[idx(a, b)];
    }
    remaining -= row_len;
  }
  VDM_REQUIRE_MSG(false, "pseudo-link id out of range");
  return 0.0;
}

}  // namespace vdm::net
