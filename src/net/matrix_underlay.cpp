#include "net/matrix_underlay.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace vdm::net {

MatrixUnderlay::MatrixUnderlay(std::size_t n, std::vector<double> delay,
                               std::vector<double> loss)
    : n_(n), delay_(std::move(delay)), loss_(std::move(loss)) {
  validate_and_index();
}

void MatrixUnderlay::validate_and_index() {
  VDM_REQUIRE(n_ >= 1);
  VDM_REQUIRE(delay_.size() == n_ * n_);
  VDM_REQUIRE(loss_.empty() || loss_.size() == n_ * n_);
  for (std::size_t a = 0; a < n_; ++a) {
    VDM_REQUIRE_MSG(delay_[a * n_ + a] == 0.0, "diagonal must be zero");
    for (std::size_t b = a + 1; b < n_; ++b) {
      VDM_REQUIRE_MSG(delay_[a * n_ + b] > 0.0, "off-diagonal delays must be positive");
      VDM_REQUIRE_MSG(std::abs(delay_[a * n_ + b] - delay_[b * n_ + a]) < 1e-12,
                      "delay matrix must be symmetric");
      if (!loss_.empty()) {
        VDM_REQUIRE(loss_[a * n_ + b] >= 0.0 && loss_[a * n_ + b] < 1.0);
      }
    }
  }
  row_start_.clear();
  std::size_t start = 0;
  for (std::size_t a = 0; a + 1 < n_; ++a) {
    row_start_.push_back(start);
    start += n_ - a - 1;
  }
  row_start_.push_back(start);  // == num_links() sentinel
}

void MatrixUnderlay::release(std::vector<double>& delay_out,
                             std::vector<double>& loss_out) {
  delay_out = std::move(delay_);
  loss_out = std::move(loss_);
}

void MatrixUnderlay::rebind(std::size_t n, std::vector<double> delay,
                            std::vector<double> loss) {
  n_ = n;
  delay_ = std::move(delay);
  loss_ = std::move(loss);
  validate_and_index();
}

LinkId MatrixUnderlay::pair_link(HostId a, HostId b) const {
  VDM_REQUIRE(a != b && a < n_ && b < n_);
  if (a > b) std::swap(a, b);
  return static_cast<LinkId>(row_start_[a] + (b - a - 1));
}

std::vector<LinkId> MatrixUnderlay::path(HostId a, HostId b) const {
  if (a == b) return {};
  return {pair_link(a, b)};
}

void MatrixUnderlay::for_each_path_link(HostId a, HostId b,
                                        util::FunctionRef<void(LinkId)> visit) const {
  if (a == b) return;
  visit(pair_link(a, b));
}

double MatrixUnderlay::link_delay(LinkId link) const {
  VDM_REQUIRE_MSG(link < num_links(), "pseudo-link id out of range");
  // Invert pair_link: the row is the last row_start_ <= link.
  const auto it = std::upper_bound(row_start_.begin(), row_start_.end(),
                                   static_cast<std::size_t>(link));
  const auto a = static_cast<HostId>(std::distance(row_start_.begin(), it) - 1);
  const auto b = static_cast<HostId>(a + 1 + (link - row_start_[a]));
  return delay_[idx(a, b)];
}

}  // namespace vdm::net
