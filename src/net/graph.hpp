#pragma once

#include <span>
#include <vector>

#include "net/types.hpp"

namespace vdm::net {

/// One undirected physical link: propagation delay (one-way, seconds) and a
/// per-traversal drop probability. Bandwidth is not modeled — the paper's
/// metrics (stress, stretch, loss, overhead) are delay- and loss-driven, and
/// degree limits stand in for uplink capacity exactly as in the dissertation.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double delay = 0.0;
  double loss = 0.0;

  NodeId other(NodeId n) const { return n == a ? b : a; }
};

/// Undirected weighted multigraph used as the physical network.
///
/// Storage is struct-of-arrays with a CSR-style adjacency built lazily on
/// first query, so construction (topology generators appending links) stays
/// O(1) amortized and routing scans are cache-friendly.
class Graph {
 public:
  /// Adds an isolated vertex and returns its id.
  NodeId add_node();

  /// Adds `count` vertices; returns the id of the first.
  NodeId add_nodes(std::size_t count);

  /// Adds an undirected link. Requires distinct existing endpoints,
  /// delay > 0 and loss in [0, 1).
  LinkId add_link(NodeId a, NodeId b, double delay, double loss = 0.0);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_links() const { return links_.size(); }
  const Link& link(LinkId id) const { return links_[id]; }
  /// Bumps version(): the caller may change delay/loss, so routing caches
  /// keyed to the version must treat the graph as mutated. The edit is also
  /// appended to the in-place mutation log, which lets the router repair
  /// just the affected cone of each cached tree instead of recomputing it,
  /// and lets the CSR adjacency patch the two cached arc delays in place.
  Link& mutable_link(LinkId id) {
    ++version_;
    if (!adjacency_dirty_) {
      // The log stores only the link id: repair derives increase/decrease
      // from the tree's own (exact) distance sums, and the CSR patch reads
      // the post-edit delay straight from links_. A structural edit pending
      // rebuild subsumes everything, so nothing is logged in that state.
      if (mutation_log_.size() == kMutationLogCap) {
        mutation_log_.erase(mutation_log_.begin());
      }
      mutation_log_.push_back(id);
      ++mutation_seq_;
      csr_patch_pending_ = true;
    }
    return links_[id];
  }
  const std::vector<Link>& links() const { return links_; }

  // ---------------------------------------------------- in-place mutations
  // Delay/loss edits through mutable_link() are the only non-structural
  // mutation. Consumers that cache per-version state (Router trees, the CSR
  // arc delays) catch up incrementally from this log instead of rebuilding.

  /// Upper bound on retained log entries; older edits force consumers into
  /// a full recompute exactly as a structural change would.
  static constexpr std::size_t kMutationLogCap = 128;

  /// Total in-place link edits ever logged (monotone, never reset). The log
  /// holds the trailing `mutation_log().size()` of them.
  std::uint64_t mutation_seq() const { return mutation_seq_; }

  /// Trailing window of edited link ids, oldest first.
  std::span<const LinkId> mutation_log() const { return mutation_log_; }

  /// Bumped by every structural change (nodes/links added, clear()). A
  /// consumer seeing this move must drop derived state wholesale; a
  /// version() move alone means in-place edits covered by the log.
  std::uint64_t struct_version() const { return struct_version_; }

  /// Half-edge as seen from one endpoint.
  struct Arc {
    NodeId to;
    LinkId link;
    double delay;
  };

  /// Arcs leaving `n`. Triggers (re)building the CSR index if needed; after
  /// in-place delay edits only the two cached arc copies per edited link
  /// are patched, not the whole index.
  std::span<const Arc> arcs(NodeId n) const;

  /// Degree of vertex n (number of incident links).
  std::size_t degree(NodeId n) const { return arcs(n).size(); }

  /// True if the graph is connected (trivially true when empty).
  bool connected() const;

  /// Scratch variant: runs the same DFS through caller-provided visited /
  /// stack buffers, so generators validating every arena rebuild pay no
  /// allocation once the buffers are warm.
  bool connected(std::vector<char>& seen, std::vector<NodeId>& stack) const;

  /// Monotone counter bumped on every mutation; routing caches use it to
  /// detect staleness.
  std::uint64_t version() const { return version_; }

  /// Removes every node and link but keeps all allocated capacity, so a
  /// generator rebuilding into this object allocates nothing once the
  /// object has hosted a same-sized topology. version() keeps increasing
  /// monotonically — caches treat the rebuild as a mutation, never as a
  /// rollback to a previously seen version.
  void clear();

  /// Heap bytes currently reserved by this graph's buffers (links + CSR
  /// adjacency). Arena growth accounting: unchanged across a clear() +
  /// rebuild means the rebuild was allocation-free.
  std::size_t capacity_bytes() const;

 private:
  void mark_structural();
  void rebuild_adjacency() const;
  void patch_csr_delays() const;

  std::size_t num_nodes_ = 0;
  std::vector<Link> links_;
  std::uint64_t version_ = 0;
  std::uint64_t struct_version_ = 0;
  std::vector<LinkId> mutation_log_;
  std::uint64_t mutation_seq_ = 0;

  mutable bool adjacency_dirty_ = true;
  mutable bool csr_patch_pending_ = false;
  mutable std::uint64_t csr_patched_seq_ = 0;
  mutable std::vector<std::size_t> offsets_;  // CSR row starts, size num_nodes_+1
  mutable std::vector<Arc> arcs_;             // CSR payload, 2 * num_links
  mutable std::vector<std::uint32_t> arc_pos_;  // link -> its two arcs_ slots
  mutable std::vector<std::size_t> cursor_;   // rebuild scratch, capacity kept
};

}  // namespace vdm::net
