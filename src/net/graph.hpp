#pragma once

#include <span>
#include <vector>

#include "net/types.hpp"

namespace vdm::net {

/// One undirected physical link: propagation delay (one-way, seconds) and a
/// per-traversal drop probability. Bandwidth is not modeled — the paper's
/// metrics (stress, stretch, loss, overhead) are delay- and loss-driven, and
/// degree limits stand in for uplink capacity exactly as in the dissertation.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double delay = 0.0;
  double loss = 0.0;

  NodeId other(NodeId n) const { return n == a ? b : a; }
};

/// Undirected weighted multigraph used as the physical network.
///
/// Storage is struct-of-arrays with a CSR-style adjacency built lazily on
/// first query, so construction (topology generators appending links) stays
/// O(1) amortized and routing scans are cache-friendly.
class Graph {
 public:
  /// Adds an isolated vertex and returns its id.
  NodeId add_node();

  /// Adds `count` vertices; returns the id of the first.
  NodeId add_nodes(std::size_t count);

  /// Adds an undirected link. Requires distinct existing endpoints,
  /// delay > 0 and loss in [0, 1).
  LinkId add_link(NodeId a, NodeId b, double delay, double loss = 0.0);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_links() const { return links_.size(); }
  const Link& link(LinkId id) const { return links_[id]; }
  /// Bumps version(): the caller may change delay/loss, so routing caches
  /// keyed to the version must treat the graph as mutated.
  Link& mutable_link(LinkId id) {
    adjacency_dirty_ = true;
    ++version_;
    return links_[id];
  }
  const std::vector<Link>& links() const { return links_; }

  /// Half-edge as seen from one endpoint.
  struct Arc {
    NodeId to;
    LinkId link;
    double delay;
  };

  /// Arcs leaving `n`. Triggers (re)building the CSR index if needed.
  std::span<const Arc> arcs(NodeId n) const;

  /// Degree of vertex n (number of incident links).
  std::size_t degree(NodeId n) const { return arcs(n).size(); }

  /// True if the graph is connected (trivially true when empty).
  bool connected() const;

  /// Monotone counter bumped on every mutation; routing caches use it to
  /// detect staleness.
  std::uint64_t version() const { return version_; }

  /// Removes every node and link but keeps all allocated capacity, so a
  /// generator rebuilding into this object allocates nothing once the
  /// object has hosted a same-sized topology. version() keeps increasing
  /// monotonically — caches treat the rebuild as a mutation, never as a
  /// rollback to a previously seen version.
  void clear();

  /// Heap bytes currently reserved by this graph's buffers (links + CSR
  /// adjacency). Arena growth accounting: unchanged across a clear() +
  /// rebuild means the rebuild was allocation-free.
  std::size_t capacity_bytes() const;

 private:
  void rebuild_adjacency() const;

  std::size_t num_nodes_ = 0;
  std::vector<Link> links_;
  std::uint64_t version_ = 0;

  mutable bool adjacency_dirty_ = true;
  mutable std::vector<std::size_t> offsets_;  // CSR row starts, size num_nodes_+1
  mutable std::vector<Arc> arcs_;             // CSR payload, 2 * num_links
  mutable std::vector<std::size_t> cursor_;   // rebuild scratch, capacity kept
};

}  // namespace vdm::net
