#include "net/graph_underlay.hpp"

#include "util/require.hpp"

namespace vdm::net {

GraphUnderlay::GraphUnderlay(Graph graph, std::vector<NodeId> hosts)
    : graph_(std::move(graph)), hosts_(std::move(hosts)), router_(graph_) {
  VDM_REQUIRE_MSG(!hosts_.empty(), "an underlay needs at least one host");
  for (const NodeId v : hosts_) VDM_REQUIRE(v < graph_.num_nodes());
}

sim::Time GraphUnderlay::delay(HostId a, HostId b) const {
  return router_.delay(hosts_.at(a), hosts_.at(b));
}

double GraphUnderlay::loss(HostId a, HostId b) const {
  return router_.path_loss(hosts_.at(a), hosts_.at(b));
}

std::vector<LinkId> GraphUnderlay::path(HostId a, HostId b) const {
  return router_.path(hosts_.at(a), hosts_.at(b));
}

}  // namespace vdm::net
