#include "net/graph_underlay.hpp"

#include "util/require.hpp"

namespace vdm::net {

GraphUnderlay::GraphUnderlay(Graph graph, std::vector<NodeId> hosts)
    : graph_(std::move(graph)), hosts_(std::move(hosts)), router_(graph_) {
  VDM_REQUIRE_MSG(!hosts_.empty(), "an underlay needs at least one host");
  for (const NodeId v : hosts_) VDM_REQUIRE(v < graph_.num_nodes());
}

const Router::PathStats& GraphUnderlay::pair(HostId a, HostId b) const {
  VDM_REQUIRE(a < hosts_.size() && b < hosts_.size());
  if (cached_version_ != graph_.version()) {
    ++epoch_;  // O(1) invalidation of every cached pair
    cached_version_ = graph_.version();
    if (pair_stats_.empty()) {
      const std::size_t n = hosts_.size();
      pair_stats_.resize(n * (n - 1) / 2);
      pair_epoch_.resize(pair_stats_.size(), 0);
    }
  }
  const std::size_t i = pair_index(a, b);
  if (pair_epoch_[i] != epoch_) {
    // Canonical low -> high orientation: on an undirected graph both
    // directions traverse the same links, so caching one makes the result
    // deterministic in query order and exactly symmetric (the reverse walk
    // could differ in the last ulps of the delay sum / loss product).
    const HostId lo = a < b ? a : b;
    const HostId hi = a < b ? b : a;
    pair_stats_[i] = router_.path_stats(hosts_.at(lo), hosts_.at(hi));
    pair_epoch_[i] = epoch_;
  }
  return pair_stats_[i];
}

std::vector<LinkId> GraphUnderlay::path(HostId a, HostId b) const {
  return router_.path(hosts_.at(a), hosts_.at(b));
}

void GraphUnderlay::for_each_path_link(HostId a, HostId b,
                                       util::FunctionRef<void(LinkId)> visit) const {
  router_.for_each_link(hosts_.at(a), hosts_.at(b),
                        [&visit](LinkId l) { visit(l); });
}

}  // namespace vdm::net
