#include "net/graph_underlay.hpp"

#include "util/require.hpp"

namespace vdm::net {

GraphUnderlay::GraphUnderlay(Graph graph, std::vector<NodeId> hosts)
    : graph_(std::move(graph)), hosts_(std::move(hosts)), router_(graph_) {
  VDM_REQUIRE_MSG(!hosts_.empty(), "an underlay needs at least one host");
  for (const NodeId v : hosts_) VDM_REQUIRE(v < graph_.num_nodes());
}

const Router::PathStats& GraphUnderlay::pair(HostId a, HostId b) const {
  VDM_REQUIRE(a < hosts_.size() && b < hosts_.size());
  if (cached_version_ != graph_.version()) {
    ++epoch_;  // O(1) invalidation of every cached pair
    cached_version_ = graph_.version();
    const std::size_t n = hosts_.size();
    const std::size_t want = n * (n - 1) / 2;
    if (pair_stats_.size() != want) {
      // First use, or a rebind() changed the host count. assign() keeps the
      // previously grown capacity, so same-sized rebuilds are free.
      pair_stats_.resize(want);
      pair_epoch_.assign(want, 0);
    }
  }
  const std::size_t i = pair_index(a, b);
  if (pair_epoch_[i] != epoch_) {
    // Canonical low -> high orientation: on an undirected graph both
    // directions traverse the same links, so caching one makes the result
    // deterministic in query order and exactly symmetric (the reverse walk
    // could differ in the last ulps of the delay sum / loss product).
    const HostId lo = a < b ? a : b;
    const HostId hi = a < b ? b : a;
    pair_stats_[i] = router_.path_stats(hosts_.at(lo), hosts_.at(hi));
    pair_epoch_[i] = epoch_;
  }
  return pair_stats_[i];
}

std::vector<LinkId> GraphUnderlay::path(HostId a, HostId b) const {
  return router_.path(hosts_.at(a), hosts_.at(b));
}

void GraphUnderlay::for_each_path_link(HostId a, HostId b,
                                       util::FunctionRef<void(LinkId)> visit) const {
  router_.for_each_link(hosts_.at(a), hosts_.at(b),
                        [&visit](LinkId l) { visit(l); });
}

void GraphUnderlay::release(Graph& graph_out, std::vector<NodeId>& hosts_out) {
  graph_out = std::move(graph_);
  hosts_out = std::move(hosts_);
  // graph_ / hosts_ are now empty husks; router_ still references the
  // graph_ member object (stable address), so rebind() revives everything.
}

void GraphUnderlay::rebind(Graph graph, std::vector<NodeId> hosts) {
  graph_ = std::move(graph);
  hosts_ = std::move(hosts);
  VDM_REQUIRE_MSG(!hosts_.empty(), "an underlay needs at least one host");
  for (const NodeId v : hosts_) VDM_REQUIRE(v < graph_.num_nodes());
  // The rebuilt graph carries a strictly newer version (Graph::clear bumps
  // it), so the router cache and the pair cache invalidate lazily on first
  // query; forcing it here keeps rebind() robust even against an identical
  // version (e.g. a caller that swapped in a fresh Graph object).
  router_.clear_cache();
  cached_version_ = ~0ull;
}

std::size_t GraphUnderlay::arena_capacity_bytes() const {
  return graph_.capacity_bytes() + router_.cache_capacity_bytes() +
         hosts_.capacity() * sizeof(NodeId) +
         pair_stats_.capacity() * sizeof(Router::PathStats) +
         pair_epoch_.capacity() * sizeof(std::uint64_t);
}

}  // namespace vdm::net
