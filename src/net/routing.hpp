#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "net/types.hpp"

namespace vdm::net {

/// Shortest-path (minimum-delay) unicast routing over a Graph — the stand-in
/// for the Internet's unicast forwarding that application-layer multicast
/// rides on.
///
/// Single-source trees are computed with Dijkstra on demand and memoized in
/// a dense per-source cache validated by an epoch stamp, so invalidation on
/// Graph::version() bumps is O(1) and steady-state queries never touch the
/// heap: lookups are flat-array reads, and the visitor / fused-stats APIs
/// walk parent pointers in place instead of materializing a path vector.
/// The class is not thread-safe; each experiment seed owns its own Router
/// (seeds parallelize at a higher level).
class Router {
 public:
  explicit Router(const Graph& graph) : graph_(graph) {}

  /// Everything one parent-pointer walk can answer about the shortest path
  /// src -> dst, fused so callers needing several fields pay for one walk.
  struct PathStats {
    double delay = 0.0;      ///< infinity when unreachable
    double loss = 0.0;       ///< 1 - prod(1 - loss_l) over path links
    std::uint32_t hops = 0;  ///< number of links (0 when unreachable)
  };

  /// One-way propagation delay of the shortest path src -> dst, in seconds.
  /// Infinity if unreachable.
  double delay(NodeId src, NodeId dst) const;

  /// Links of the shortest path src -> dst, in order from src. Empty for
  /// src == dst; empty for unreachable pairs (check delay() for infinity).
  /// Allocates the result; hot paths should prefer for_each_link().
  std::vector<LinkId> path(NodeId src, NodeId dst) const;

  /// End-to-end per-packet drop probability along the shortest path:
  /// 1 - prod(1 - loss_l). Zero for src == dst.
  double path_loss(NodeId src, NodeId dst) const;

  /// Number of links on the shortest path (IP hop count).
  std::size_t hop_count(NodeId src, NodeId dst) const;

  /// delay + loss + hops from a single walk.
  PathStats path_stats(NodeId src, NodeId dst) const;

  /// Visits every link of the shortest path src -> dst in order from src,
  /// without allocating in steady state. No-op for src == dst or
  /// unreachable pairs.
  template <typename Fn>
  void for_each_link(NodeId src, NodeId dst, Fn&& fn) const {
    if (src == dst) return;
    const Sssp& sssp = tree_for(src);
    if (sssp.parent_node[dst] == kInvalidNode) return;  // unreachable
    // The parent walk yields dst -> src; buffer it (reused capacity) so the
    // visitor sees links in forward order, matching path().
    path_scratch_.clear();
    for (NodeId at = dst; at != src; at = sssp.parent_node[at]) {
      path_scratch_.push_back(sssp.parent_link[at]);
    }
    for (auto it = path_scratch_.rbegin(); it != path_scratch_.rend(); ++it) fn(*it);
  }

  /// Drops all memoized shortest-path trees.
  void clear_cache() const;

  /// Heap bytes reserved by the memoized trees and Dijkstra scratch. The
  /// buffers are sized by node count on first use and then only reused, so
  /// a steady value across graph rebuilds proves allocation-free routing.
  std::size_t cache_capacity_bytes() const;

  // ------------------------------------------------------- repair telemetry
  // In-place delay edits (Graph::mutable_link) no longer drop the whole
  // cache: each memoized tree catches up lazily by repairing just the cone
  // the edited link influences (Ramalingam–Reps-style dynamic SSSP).

  /// Cumulative nodes re-settled by incremental repairs. o(V) per edit is
  /// the whole point — compare against num_nodes() * full_recomputes().
  std::uint64_t repair_visits() const { return repair_visits_; }

  /// Cumulative full single-source Dijkstra runs (first queries, structural
  /// changes, log overflows, and cones past the give-up fraction).
  std::uint64_t full_recomputes() const { return full_recomputes_; }

 private:
  struct Sssp {
    std::vector<double> dist;
    std::vector<LinkId> parent_link;  // link towards the source
    std::vector<NodeId> parent_node;
  };

  /// Entry of the indexed 4-ary Dijkstra heap (key cached inline so sifts
  /// never chase the dist array).
  struct HeapEntry {
    double key;
    NodeId node;
  };

  const Sssp& tree_for(NodeId src) const;
  void recompute_tree(NodeId src, Sssp& sssp) const;
  /// Catches a memoized tree up on a batch of logged delay edits in one
  /// pass. Returns false when the affected cone is large enough that a
  /// full recompute is cheaper.
  bool repair_batch(Sssp& sssp, std::span<const LinkId> edits) const;
  void heap_sift_up(std::size_t pos) const;
  void heap_sift_down(std::size_t pos) const;

  // Stamped heap-position lookups: bumping stamp_ resets every node to
  // "unseen" in O(1), which keeps cone repairs o(V) (a per-repair
  // assign(n, kUnseen) would re-touch the whole array).
  std::uint32_t pos_of(NodeId n) const;
  void set_pos(NodeId n, std::uint32_t p) const;

  const Graph& graph_;
  mutable std::uint64_t cached_version_ = ~0ull;
  mutable std::uint64_t cached_struct_version_ = ~0ull;
  /// Current cache generation; trees_[s] is valid iff tree_epoch_[s] == epoch_.
  mutable std::uint64_t epoch_ = 1;
  mutable std::vector<Sssp> trees_;             // dense, indexed by source
  mutable std::vector<std::uint64_t> tree_epoch_;
  /// Graph::mutation_seq() each tree has caught up to (valid trees only).
  mutable std::vector<std::uint64_t> tree_mut_seq_;
  // Reusable indexed-heap state: entry array plus node -> heap position
  // back-pointers, enabling decrease-key instead of lazy duplicates.
  mutable std::vector<HeapEntry> heap_;
  mutable std::vector<std::uint32_t> heap_pos_;
  mutable std::vector<std::uint64_t> pos_stamp_;
  mutable std::uint64_t stamp_ = 0;
  // Cone-collection scratch for increase repairs.
  mutable std::vector<NodeId> cone_;
  mutable std::vector<std::uint64_t> cone_mark_;
  mutable std::uint64_t cone_stamp_ = 0;
  mutable std::vector<LinkId> path_scratch_;
  mutable std::uint64_t repair_visits_ = 0;
  mutable std::uint64_t full_recomputes_ = 0;
};

}  // namespace vdm::net
