#pragma once

#include <unordered_map>
#include <vector>

#include "net/graph.hpp"
#include "net/types.hpp"

namespace vdm::net {

/// Shortest-path (minimum-delay) unicast routing over a Graph — the stand-in
/// for the Internet's unicast forwarding that application-layer multicast
/// rides on.
///
/// Single-source trees are computed with Dijkstra on demand and memoized per
/// source. Caches are keyed to Graph::version(), so a mutated graph simply
/// recomputes. The class is not thread-safe; each experiment seed owns its
/// own Router (seeds parallelize at a higher level).
class Router {
 public:
  explicit Router(const Graph& graph) : graph_(graph) {}

  /// One-way propagation delay of the shortest path src -> dst, in seconds.
  /// Infinity if unreachable.
  double delay(NodeId src, NodeId dst) const;

  /// Links of the shortest path src -> dst, in order from src. Empty for
  /// src == dst; empty for unreachable pairs (check delay() for infinity).
  std::vector<LinkId> path(NodeId src, NodeId dst) const;

  /// End-to-end per-packet drop probability along the shortest path:
  /// 1 - prod(1 - loss_l). Zero for src == dst.
  double path_loss(NodeId src, NodeId dst) const;

  /// Number of links on the shortest path (IP hop count).
  std::size_t hop_count(NodeId src, NodeId dst) const;

  /// Drops all memoized shortest-path trees.
  void clear_cache() const;

 private:
  struct Sssp {
    std::vector<double> dist;
    std::vector<LinkId> parent_link;  // link towards the source
    std::vector<NodeId> parent_node;
  };

  const Sssp& tree_for(NodeId src) const;

  const Graph& graph_;
  mutable std::uint64_t cached_version_ = ~0ull;
  mutable std::unordered_map<NodeId, Sssp> cache_;
};

}  // namespace vdm::net
