#include "net/coord_underlay.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/require.hpp"

namespace vdm::net {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;

double deg2rad(double d) { return d * kPi / 180.0; }
}  // namespace

CoordUnderlay::CoordUnderlay(const Params& params, std::vector<double> x,
                             std::vector<double> y)
    : params_(params), x_(std::move(x)), y_(std::move(y)) {
  validate_and_index();
}

void CoordUnderlay::validate_and_index() {
  VDM_REQUIRE_MSG(x_.size() == y_.size(), "coordinate arrays must be parallel");
  VDM_REQUIRE_MSG(x_.size() >= 2, "an underlay needs at least two hosts");
  VDM_REQUIRE(params_.propagation_kms > 0.0);
  VDM_REQUIRE(params_.inflation > 0.0);
  VDM_REQUIRE(params_.min_delay >= 0.0);
  VDM_REQUIRE(params_.loss >= 0.0 && params_.loss < 1.0);
  n_ = x_.size();
  if (params_.space == Space::kSpherical) {
    // Chord form of the great-circle distance: with per-host unit vectors,
    // the central angle of a pair is 2*asin(|u_a - u_b| / 2) — numerically
    // stable for nearby points and mathematically identical to haversine
    // (topo::great_circle_km), at O(1) per query with no per-pair trig.
    ux_.resize(n_);
    uy_.resize(n_);
    uz_.resize(n_);
    for (std::size_t h = 0; h < n_; ++h) {
      const double lat = deg2rad(x_[h]);
      const double lon = deg2rad(y_[h]);
      const double cos_lat = std::cos(lat);
      ux_[h] = cos_lat * std::cos(lon);
      uy_[h] = cos_lat * std::sin(lon);
      uz_[h] = std::sin(lat);
    }
  } else {
    // clear() keeps capacity so a spherical rebind after a Euclidean one
    // does not re-grow the unit-vector buffers.
    ux_.clear();
    uy_.clear();
    uz_.clear();
  }
}

sim::Time CoordUnderlay::delay(HostId a, HostId b) const {
  if (a == b) return 0.0;
  double km;
  if (params_.space == Space::kSpherical) {
    const double dx = ux_[a] - ux_[b];
    const double dy = uy_[a] - uy_[b];
    const double dz = uz_[a] - uz_[b];
    const double half_chord = 0.5 * std::sqrt(dx * dx + dy * dy + dz * dz);
    km = 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, half_chord));
  } else {
    const double dx = x_[a] - x_[b];
    const double dy = y_[a] - y_[b];
    km = std::sqrt(dx * dx + dy * dy);
  }
  return std::max(params_.min_delay,
                  km * params_.inflation / params_.propagation_kms);
}

std::vector<LinkId> CoordUnderlay::path(HostId, HostId) const { return {}; }

void CoordUnderlay::for_each_path_link(HostId, HostId,
                                       util::FunctionRef<void(LinkId)>) const {}

double CoordUnderlay::link_delay(LinkId) const {
  VDM_REQUIRE_MSG(false, "a coordinate underlay has no links");
  return 0.0;
}

void CoordUnderlay::release(std::vector<double>& x_out, std::vector<double>& y_out) {
  x_out = std::move(x_);
  y_out = std::move(y_);
  n_ = 0;
}

void CoordUnderlay::rebind(const Params& params, std::vector<double> x,
                           std::vector<double> y) {
  params_ = params;
  x_ = std::move(x);
  y_ = std::move(y);
  validate_and_index();
}

}  // namespace vdm::net
