#pragma once

#include <vector>

#include "net/underlay.hpp"

namespace vdm::net {

/// Underlay where every host is a point in an embedded metric space and
/// every distance is pure arithmetic over the two endpoints' coordinates:
/// no router graph, no Dijkstra, no O(N²) host-pair matrix, zero per-pair
/// cached state. Memory and construction cost are O(N), which is what lets
/// run_once scale to 100k+ members (the dense-matrix substrate needs 32 GB
/// at N=65536 before the first chunk flows).
///
/// Two coordinate spaces are supported: spherical (lat/lon degrees, the
/// geo/testbed placement model, great-circle distance) and Euclidean (a
/// synthetic planar embedding in km for large-N scaling runs). Delay is
/// distance x a fixed path-inflation factor over the propagation speed,
/// floored at min_delay — the geo substrate's model minus its per-pair
/// inflation draw, which would be per-pair state.
///
/// There are no links, pseudo or otherwise: num_links() == 0 and paths are
/// empty, so stress reads as 0 and the collector's stretch falls out as
/// overlay delay versus the direct coordinate distance (tree_metrics needs
/// no special case). Loss is a single uniform per-pair probability.
class CoordUnderlay final : public Underlay {
 public:
  enum class Space {
    kSpherical,  ///< x = latitude deg, y = longitude deg; great-circle km
    kEuclidean,  ///< x/y in km on a plane; straight-line km
  };

  struct Params {
    Space space = Space::kSpherical;
    /// Signal propagation speed in fiber, km/s (~2/3 c).
    double propagation_kms = 200000.0;
    /// Fixed path-inflation factor: the midpoint of the geo substrate's
    /// per-pair [1.4, 2.4] range (a per-pair draw is exactly the O(N²)
    /// state this substrate exists to avoid).
    double inflation = 1.9;
    /// Floor on one-way delay (local processing + last mile), seconds.
    double min_delay = 0.0005;
    /// Uniform per-pair drop probability in [0, 1); 0 = lossless.
    double loss = 0.0;
  };

  /// `x` and `y` are parallel per-host coordinate arrays (lat/lon degrees
  /// for kSpherical, km for kEuclidean); topo::make_coord_into fills them.
  CoordUnderlay(const Params& params, std::vector<double> x, std::vector<double> y);

  std::size_t num_hosts() const override { return n_; }
  sim::Time delay(HostId a, HostId b) const override;
  double loss(HostId a, HostId b) const override {
    return a == b ? 0.0 : params_.loss;
  }
  /// No physical links exist in a coordinate space: paths are empty and the
  /// visitor is never called, so per-link stress accounting reports zero.
  std::vector<LinkId> path(HostId a, HostId b) const override;
  void for_each_path_link(HostId a, HostId b,
                          util::FunctionRef<void(LinkId)> visit) const override;
  double link_delay(LinkId link) const override;
  std::size_t num_links() const override { return 0; }
  /// Pure arithmetic over immutable coordinate arrays: no caches, no state.
  bool concurrent_reads() const override { return true; }
  bool zero_loss() const override { return params_.loss == 0.0; }

  const Params& params() const { return params_; }

  /// Raw per-host coordinates (lat/lon degrees or km, see Space). The
  /// placement index bins these directly — same arrays delay() reads, so a
  /// grid nearest-neighbor is consistent with the delay metric by
  /// construction.
  Space space() const { return params_.space; }
  const std::vector<double>& xs() const { return x_; }
  const std::vector<double>& ys() const { return y_; }

  // ------------------------------------------------------------ arena reuse
  /// Moves the coordinate arrays out so a generator can refill the same
  /// storage; queries are invalid until rebind() seats new coordinates.
  void release(std::vector<double>& x_out, std::vector<double>& y_out);

  /// Seats freshly filled coordinates (same contract as the constructor),
  /// keeping the derived unit-vector buffers' capacity.
  void rebind(const Params& params, std::vector<double> x, std::vector<double> y);

  /// Heap bytes reserved by the coordinate and unit-vector arrays.
  std::size_t arena_capacity_bytes() const {
    return (x_.capacity() + y_.capacity() + ux_.capacity() + uy_.capacity() +
            uz_.capacity()) *
           sizeof(double);
  }

 private:
  void validate_and_index();

  Params params_;
  std::size_t n_ = 0;
  std::vector<double> x_;
  std::vector<double> y_;
  /// Spherical fast path: each host's 3D unit vector on the sphere,
  /// precomputed once so delay() is a chord length + one asin — no per-pair
  /// trig re-derivation. Empty in Euclidean mode.
  std::vector<double> ux_, uy_, uz_;
};

}  // namespace vdm::net
