#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/graph.hpp"
#include "net/routing.hpp"
#include "net/underlay.hpp"

namespace vdm::net {

/// Underlay backed by an explicit router graph (transit-stub, Waxman, ...).
///
/// Hosts are graph vertices registered via attach_host(); topology
/// generators create them as leaves hanging off stub routers with access
/// links, matching how GT-ITM experiments place end systems.
///
/// Host-pair queries are memoized in a flat triangular delay/loss/hops
/// cache filled lazily from the router's fused path walk. Repeated probes
/// of the same pair — the common case under refinement, churn, and the
/// per-chunk data plane — are a single array read. The cache is stamped
/// per-pair with an epoch that bumps when Graph::version() changes, so
/// invalidation is O(1) and allocation-free.
class GraphUnderlay final : public Underlay {
 public:
  /// Takes ownership of the graph. `hosts` maps HostId -> graph vertex.
  GraphUnderlay(Graph graph, std::vector<NodeId> hosts);

  /// Movable (the router is re-bound to the moved graph); not copyable.
  GraphUnderlay(GraphUnderlay&& other) noexcept
      : graph_(std::move(other.graph_)), hosts_(std::move(other.hosts_)),
        router_(graph_), pair_stats_(std::move(other.pair_stats_)),
        pair_epoch_(std::move(other.pair_epoch_)), epoch_(other.epoch_),
        cached_version_(other.cached_version_) {}
  GraphUnderlay& operator=(GraphUnderlay&&) = delete;
  GraphUnderlay(const GraphUnderlay&) = delete;
  GraphUnderlay& operator=(const GraphUnderlay&) = delete;

  std::size_t num_hosts() const override { return hosts_.size(); }
  sim::Time delay(HostId a, HostId b) const override {
    return a == b ? 0.0 : pair(a, b).delay;
  }
  double loss(HostId a, HostId b) const override {
    return a == b ? 0.0 : pair(a, b).loss;
  }
  std::vector<LinkId> path(HostId a, HostId b) const override;
  void for_each_path_link(HostId a, HostId b,
                          util::FunctionRef<void(LinkId)> visit) const override;
  double link_delay(LinkId link) const override { return graph_.link(link).delay; }
  std::size_t num_links() const override { return graph_.num_links(); }

  /// IP hop count of the unicast path a -> b (0 for a == b / unreachable).
  std::size_t path_hops(HostId a, HostId b) const {
    return a == b ? 0 : pair(a, b).hops;
  }

  const Graph& graph() const { return graph_; }
  Graph& mutable_graph() { return graph_; }
  const Router& router() const { return router_; }
  NodeId host_vertex(HostId h) const { return hosts_.at(h); }

  // ------------------------------------------------------------ arena reuse
  // A sweep worker runs many seeds of the same configuration; rebuilding the
  // underlay from scratch each seed re-allocates the graph, the router's
  // dense tree cache and the O(n^2) pair cache. release()/rebind() instead
  // shuttle the graph buffers out to the topology generator and back, so a
  // steady-state rebuild performs zero scaffolding allocations.

  /// Moves the topology out (into the caller's arena variables) so a
  /// generator can rebuild into the same storage. Queries are invalid until
  /// rebind() seats a new topology.
  void release(Graph& graph_out, std::vector<NodeId>& hosts_out);

  /// Seats a freshly built topology, keeping the capacity of every cache.
  /// The router and pair caches invalidate via the graph's monotone
  /// version, exactly as a mutation would.
  void rebind(Graph graph, std::vector<NodeId> hosts);

  /// Heap bytes reserved by the graph, router cache, pair cache and host
  /// map — the underlay's whole arena footprint.
  std::size_t arena_capacity_bytes() const;

 private:
  /// Strict-upper-triangle index of the unordered host pair {a, b}, a != b.
  std::size_t pair_index(HostId a, HostId b) const {
    if (a > b) std::swap(a, b);
    const std::size_t n = hosts_.size();
    return static_cast<std::size_t>(a) * n -
           static_cast<std::size_t>(a) * (a + 1) / 2 + (b - a - 1);
  }

  const Router::PathStats& pair(HostId a, HostId b) const;

  Graph graph_;
  std::vector<NodeId> hosts_;
  Router router_;

  mutable std::vector<Router::PathStats> pair_stats_;  // triangular, lazy
  mutable std::vector<std::uint64_t> pair_epoch_;
  mutable std::uint64_t epoch_ = 1;
  mutable std::uint64_t cached_version_ = ~0ull;
};

}  // namespace vdm::net
