#pragma once

#include <memory>
#include <vector>

#include "net/graph.hpp"
#include "net/routing.hpp"
#include "net/underlay.hpp"

namespace vdm::net {

/// Underlay backed by an explicit router graph (transit-stub, Waxman, ...).
///
/// Hosts are graph vertices registered via attach_host(); topology
/// generators create them as leaves hanging off stub routers with access
/// links, matching how GT-ITM experiments place end systems.
class GraphUnderlay final : public Underlay {
 public:
  /// Takes ownership of the graph. `hosts` maps HostId -> graph vertex.
  GraphUnderlay(Graph graph, std::vector<NodeId> hosts);

  /// Movable (the router is re-bound to the moved graph); not copyable.
  GraphUnderlay(GraphUnderlay&& other) noexcept
      : graph_(std::move(other.graph_)), hosts_(std::move(other.hosts_)),
        router_(graph_) {}
  GraphUnderlay& operator=(GraphUnderlay&&) = delete;
  GraphUnderlay(const GraphUnderlay&) = delete;
  GraphUnderlay& operator=(const GraphUnderlay&) = delete;

  std::size_t num_hosts() const override { return hosts_.size(); }
  sim::Time delay(HostId a, HostId b) const override;
  double loss(HostId a, HostId b) const override;
  std::vector<LinkId> path(HostId a, HostId b) const override;
  double link_delay(LinkId link) const override { return graph_.link(link).delay; }
  std::size_t num_links() const override { return graph_.num_links(); }

  const Graph& graph() const { return graph_; }
  Graph& mutable_graph() { return graph_; }
  const Router& router() const { return router_; }
  NodeId host_vertex(HostId h) const { return hosts_.at(h); }

 private:
  Graph graph_;
  std::vector<NodeId> hosts_;
  Router router_;
};

}  // namespace vdm::net
