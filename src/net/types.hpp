#pragma once

#include <cstdint>
#include <limits>

namespace vdm::net {

/// Vertex in the underlay graph (router or end host).
using NodeId = std::uint32_t;
/// Physical (or pseudo-) link in the underlay.
using LinkId = std::uint32_t;
/// End host participating in the overlay, indexed 0..num_hosts()-1.
/// Host ids are dense regardless of how the underlay maps them to vertices.
using HostId = std::uint32_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();
constexpr HostId kInvalidHost = std::numeric_limits<HostId>::max();

}  // namespace vdm::net
