#pragma once

#include <vector>

#include "net/underlay.hpp"

namespace vdm::net {

/// Underlay given directly as symmetric host-to-host delay and loss
/// matrices — the PlanetLab-style substrate where only end-to-end paths are
/// observable. Each unordered host pair is exposed as one pseudo-link, so
/// "network usage" (sum of used virtual-link latencies, §5.3 of the paper)
/// falls out of the same accounting as stress does on a router graph.
///
/// delay()/loss() are already O(1) matrix reads (this substrate *is* the
/// host-pair cache GraphUnderlay builds lazily); the fast-path work here is
/// the allocation-free pseudo-link visitor and an O(log n) link -> pair
/// inversion via precomputed triangle row offsets.
class MatrixUnderlay final : public Underlay {
 public:
  /// `delay` must be an n*n row-major matrix of one-way delays with a zero
  /// diagonal and positive symmetric off-diagonal entries. `loss` (same
  /// shape, probabilities in [0,1)) may be empty for a loss-free network.
  MatrixUnderlay(std::size_t n, std::vector<double> delay, std::vector<double> loss = {});

  std::size_t num_hosts() const override { return n_; }
  sim::Time delay(HostId a, HostId b) const override { return delay_[idx(a, b)]; }
  double loss(HostId a, HostId b) const override {
    return loss_.empty() ? 0.0 : loss_[idx(a, b)];
  }
  std::vector<LinkId> path(HostId a, HostId b) const override;
  void for_each_path_link(HostId a, HostId b,
                          util::FunctionRef<void(LinkId)> visit) const override;
  double link_delay(LinkId link) const override;
  std::size_t num_links() const override { return n_ * (n_ - 1) / 2; }
  /// Plain reads of immutable matrices: safe from any number of threads.
  bool concurrent_reads() const override { return true; }
  bool zero_loss() const override { return loss_.empty(); }

  /// Pseudo-link id of the unordered pair {a, b}, a != b.
  LinkId pair_link(HostId a, HostId b) const;

  // ------------------------------------------------------------ arena reuse
  /// Moves the matrices out so a generator can refill the same storage;
  /// queries are invalid until rebind() seats new matrices.
  void release(std::vector<double>& delay_out, std::vector<double>& loss_out);

  /// Seats freshly filled matrices (same contract as the constructor),
  /// keeping the row-offset buffer's capacity.
  void rebind(std::size_t n, std::vector<double> delay, std::vector<double> loss);

  /// Heap bytes reserved by the matrices and the row-offset index.
  std::size_t arena_capacity_bytes() const {
    return (delay_.capacity() + loss_.capacity()) * sizeof(double) +
           row_start_.capacity() * sizeof(std::size_t);
  }

 private:
  void validate_and_index();

  std::size_t idx(HostId a, HostId b) const { return static_cast<std::size_t>(a) * n_ + b; }

  std::size_t n_;
  std::vector<double> delay_;
  std::vector<double> loss_;
  /// row_start_[a] = pseudo-link id of pair {a, a+1}; row_start_[n-1] =
  /// num_links() sentinel. Lets link_delay invert pair_link by binary search.
  std::vector<std::size_t> row_start_;
};

}  // namespace vdm::net
